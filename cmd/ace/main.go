// ace is the compiler command-line driver: it compiles an ONNX model for
// encrypted inference, optionally emits a standalone Go program (the
// paper's code-generation step), runs encrypted inference on a random or
// provided input, or just reports the compilation (parameters, key
// analysis, per-IR timings).
//
// Usage:
//
//	ace compile [-profile paper|test] [-o outdir] model.onnx
//	ace run     [-profile paper|test] model.onnx
//	ace info    [-profile paper|test] model.onnx
//	ace demo    [-depth 8]            (build + run a reduced ResNet)
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"time"

	"antace"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ace <compile|run|info|demo> [flags] [model.onnx]")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	profile := fs.String("profile", "test", "compilation profile: paper (128-bit security) or test (reduced scale)")
	outDir := fs.String("o", "ace_out", "output directory for generated code (compile)")
	depth := fs.Int("depth", 8, "ResNet depth for demo")
	if err := fs.Parse(os.Args[2:]); err != nil {
		usage()
	}

	prof := ace.TestProfile()
	if *profile == "paper" {
		prof = ace.PaperProfile()
	}

	var model *ace.Model
	var err error
	switch cmd {
	case "demo":
		model, err = onnx.BuildResNet(onnx.ResNetConfig{Depth: *depth, InputSize: 8, BaseChannels: 4, Classes: 10})
	case "compile", "run", "info":
		if fs.NArg() != 1 {
			usage()
		}
		model, err = ace.LoadONNX(fs.Arg(0))
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	prog, err := ace.Compile(model, prof)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "compiled %s in %s\n", model.Graph.Name, time.Since(start).Round(time.Millisecond))
	ace.Describe(prog, os.Stderr)

	switch cmd {
	case "info":
		return
	case "compile":
		if err := ace.EmitGo(prog, *outDir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "generated %s/main.go and %s/weights.bin\n", *outDir, *outDir)
	case "run", "demo":
		if *profile == "paper" {
			fmt.Fprintln(os.Stderr, "note: paper-profile execution at N=2^16 takes hours per image")
		}
		rt, err := ace.NewRuntime(prog)
		if err != nil {
			fatal(err)
		}
		shape := prog.NN.Main().Params[0].Type.Shape
		rng := rand.New(rand.NewPCG(uint64(time.Now().UnixNano()), 1))
		image := tensor.New(shape...)
		for i := range image.Data {
			image.Data[i] = rng.Float64()*2 - 1
		}
		start = time.Now()
		enc, err := rt.Infer(image)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "encrypted inference: %s\n", time.Since(start).Round(time.Millisecond))
		plain, _ := ace.InferPlain(prog, image)
		fmt.Println("encrypted:", head(enc.Data))
		fmt.Println("plaintext:", head(plain.Data))
		fmt.Printf("argmax: encrypted=%d plaintext=%d\n", tensor.ArgMax(enc), tensor.ArgMax(plain))
	}
}

func head(v []float64) []float64 {
	if len(v) > 10 {
		return v[:10]
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ace:", err)
	os.Exit(1)
}
