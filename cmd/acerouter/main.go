// acerouter is the stateless front of an aced cluster: it
// consistent-hashes session ids across the shard list, forwards
// POST /v1/sessions (minting the session id so its placement is known
// before the session exists) and POST /v1/infer with retry and
// failover to the session's replica shard, and aggregates the shards'
// GET /metrics, /v1/statz and /v1/profilez pages cluster-wide.
//
// It keeps no per-session state: placement is a pure function of the
// session id and the shard list, so any number of router replicas can
// run side by side, and a router restart loses nothing.
//
// Quick start against three shards (see README "Running a cluster"):
//
//	acerouter -addr :8080 -shards http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"antace/internal/cluster"
	"antace/internal/fault"
	"antace/internal/fheclient"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		shards     = flag.String("shards", "", "comma-separated base URLs of the aced shards (required)")
		probeEvery = flag.Duration("probe-every", 500*time.Millisecond, "readiness poll period per shard (negative = disabled)")
		attempts   = flag.Int("attempts", 0, "failover rounds across the candidate shards (0 = default 4)")
		hedgeAfter = flag.Duration("hedge-after", 0, "fixed delay before hedging an inference to the replica shard (0 = adaptive per-shard p95, negative = hedging off)")
		hedgeMin   = flag.Duration("hedge-min", 0, "floor for the adaptive hedge delay (0 = default 20ms)")
		hedgeMax   = flag.Duration("hedge-max", 0, "ceiling for the adaptive hedge delay (0 = default 2s)")
		suspectAft = flag.Int("suspect-after", 0, "consecutive failed readiness probes before a shard is marked suspect (0 = default 3, negative = disabled)")
		ejectAfter = flag.Duration("eject-after", 0, "how long a shard may stay suspect before the router force-removes it from the ring (0 = never eject)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests)")
		logFormat  = flag.String("log-format", "json", "log output format: json or text")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acerouter: %v\n", err)
		return 1
	}
	slog.SetDefault(logger)

	if armed, err := fault.ArmFromEnv(); err != nil {
		logger.Error("bad ACE_FAULTS", slog.String("err", err.Error()))
		return 1
	} else if armed {
		for _, p := range fault.Snapshot() {
			logger.Info("fault armed", slog.String("point", p.Point),
				slog.Uint64("seed", p.Seed), slog.Uint64("count", p.Count))
		}
	}

	if *shards == "" {
		logger.Error("missing -shards")
		return 1
	}
	ring, err := cluster.NewRing(strings.Split(*shards, ","), 0)
	if err != nil {
		logger.Error("bad -shards", slog.String("err", err.Error()))
		return 1
	}
	router := cluster.NewRouter(ring, cluster.RouterConfig{
		Retry:        fheclient.RetryPolicy{MaxAttempts: *attempts},
		ProbeEvery:   *probeEvery,
		HedgeAfter:   *hedgeAfter,
		HedgeMin:     *hedgeMin,
		HedgeMax:     *hedgeMax,
		SuspectAfter: *suspectAft,
		EjectAfter:   *ejectAfter,
		Logger:       logger,
	})
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", slog.String("err", err.Error()))
		return 1
	}
	if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
		logger.Error("addr-file write failed", slog.String("err", err.Error()))
		_ = ln.Close()
		return 1
	}
	httpSrv := &http.Server{Handler: router}
	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", slog.String("addr", ln.Addr().String()),
			slog.Int("shards", ring.Len()))
		errc <- httpSrv.Serve(ln)
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	exitCode := 0
	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", slog.String("err", err.Error()))
			exitCode = 1
		}
	case <-ctx.Done():
	}

	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", slog.String("err", err.Error()))
	}
	fault.Disarm()
	return exitCode
}

func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want json or text)", format)
	}
}

func writeAddrFile(path, addr string) error {
	if path == "" {
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
