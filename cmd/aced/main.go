// aced is the encrypted-inference daemon: it compiles one model at
// startup and serves the v1 HTTP API (see internal/serve). Clients
// fetch GET /v1/program, upload their evaluation keys once via
// POST /v1/sessions, then stream ciphertexts through POST /v1/infer;
// GET /v1/healthz and /v1/statz expose liveness and counters. SIGTERM
// drains accepted requests before exit. With -data-dir the daemon is
// durable: registered sessions spill to disk, idempotent jobs are
// journaled and checkpointed, and a restarted daemon (even after
// kill -9) reloads sessions lazily and finishes in-flight jobs from
// their last checkpoint.
//
// Quick start (demo model, reduced-scale parameters):
//
//	aced -addr :8080
//
// Production scale (hours per image, exactly as the paper measures):
//
//	aced -addr :8080 -model resnet20.onnx -profile paper
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"antace"
	"antace/internal/fault"
	"antace/internal/onnx"
	"antace/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		modelPath    = flag.String("model", "", "ONNX model to serve (default: built-in 64-feature linear demo)")
		profile      = flag.String("profile", "test", "compilation profile: test (reduced scale) or paper (128-bit security)")
		workers      = flag.Int("workers", 0, "evaluation worker pool size (0 = auto)")
		queue        = flag.Int("queue", 0, "request queue depth (0 = 4x workers)")
		budgetMB     = flag.Int64("session-budget-mb", 256, "resident evaluation-key budget in MiB")
		deadline     = flag.Duration("deadline", time.Minute, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "clamp on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		dataDir      = flag.String("data-dir", "", "durability directory: sessions, job journal and checkpoints survive restarts (empty = RAM-only)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint journaled jobs every N instructions (0 = use -checkpoint-interval)")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "checkpoint journaled jobs on this wall-clock period (0 with -checkpoint-every 0 = 2s default)")
		diskBudgetMB = flag.Int64("disk-budget-mb", 1024, "on-disk session spill budget in MiB")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests)")
		instrDelay   = flag.Duration("instr-delay", 0, "artificial per-instruction delay (chaos/e2e only)")
	)
	flag.Parse()

	// Chaos runs arm deterministic fault injection via ACE_FAULTS (see
	// internal/fault); outside of them this is a no-op.
	if armed, err := fault.ArmFromEnv(); err != nil {
		log.Fatalf("aced: ACE_FAULTS: %v", err)
	} else if armed {
		for _, p := range fault.Snapshot() {
			log.Printf("aced: fault armed: %s (seed %d, count %d)", p.Point, p.Seed, p.Count)
		}
	}

	model, name, err := loadModel(*modelPath)
	if err != nil {
		log.Fatalf("aced: %v", err)
	}
	var prof ace.Profile
	switch *profile {
	case "test":
		prof = ace.TestProfile()
	case "paper":
		prof = ace.PaperProfile()
	default:
		log.Fatalf("aced: unknown profile %q (want test or paper)", *profile)
	}

	log.Printf("aced: compiling %s (profile %s)", name, *profile)
	start := time.Now()
	prog, err := ace.Compile(model, prof)
	if err != nil {
		log.Fatalf("aced: compile: %v", err)
	}
	log.Printf("aced: compiled in %s", time.Since(start).Round(time.Millisecond))
	ace.Describe(prog, os.Stderr)

	srv, err := serve.New(serve.Program{
		Name:   name,
		CKKS:   prog.CKKS,
		VecLen: prog.VectorLen(),
	}, serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		SessionBudget:    *budgetMB << 20,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		DataDir:          *dataDir,
		DiskBudget:       *diskBudgetMB << 20,
		CheckpointEveryN: *ckptEvery,
		CheckpointEvery:  *ckptInterval,
		InstrDelay:       *instrDelay,
	})
	if err != nil {
		log.Fatalf("aced: %v", err)
	}
	if *dataDir != "" {
		st := srv.StatzSnapshot()
		log.Printf("aced: durability on under %s (restart #%d, %d bytes on disk)", *dataDir, st.Restarts, st.StoreBytes)
	}

	// Bind the listener before announcing the address: by the time
	// -addr-file appears, connections are being accepted and recovery
	// has already claimed every journaled job.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("aced: listen: %v", err)
	}
	if *addrFile != "" {
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("aced: addr-file: %v", err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatalf("aced: addr-file: %v", err)
		}
	}

	httpSrv := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("aced: serving %s on %s", name, ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Fatalf("aced: listen: %v", err)
	case <-ctx.Done():
	}

	// SIGTERM: stop the listener and drain accepted work in parallel —
	// handlers blocked on queued jobs return once the workers finish
	// them, which is what Shutdown waits for.
	log.Printf("aced: draining (up to %s)...", *drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(shCtx) }()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("aced: http shutdown: %v", err)
	}
	drainErr := <-drained

	// Flush the final counters and close any armed fault injectors so a
	// chaos run's log ends with a reconcilable account of what happened.
	st := srv.StatzSnapshot()
	log.Printf("aced: final counters: served=%d rejected=%d timed_out=%d failed=%d panics=%d idem_replays=%d faults_fired=%d"+
		" restarts=%d sessions_recovered=%d jobs_resumed=%d checkpoint_bytes=%d",
		st.Served, st.Rejected, st.TimedOut, st.Failed, st.Panics, st.IdemReplays, st.FaultsFired,
		st.Restarts, st.SessionsRecovered, st.JobsResumed, st.CheckpointBytes)
	for _, p := range fault.Snapshot() {
		log.Printf("aced: fault %s fired %d/%d (calls %d)", p.Point, p.Fired, p.Count, p.Calls)
	}
	fault.Disarm()

	if drainErr != nil {
		log.Printf("aced: drain incomplete: %v", drainErr)
		os.Exit(1)
	}
	log.Printf("aced: drained cleanly")
}

// loadModel reads the ONNX file, or builds the demo linear classifier
// when no path is given (the quickstart example's model).
func loadModel(path string) (*ace.Model, string, error) {
	if path == "" {
		m, err := onnx.BuildLinear(64, 10, 42)
		if err != nil {
			return nil, "", err
		}
		return m, "linear-demo-64x10", nil
	}
	m, err := ace.LoadONNX(path)
	if err != nil {
		return nil, "", fmt.Errorf("loading %s: %w", path, err)
	}
	return m, path, nil
}
