// aced is the encrypted-inference daemon: it compiles one model at
// startup and serves the v1 HTTP API (see internal/serve). Clients
// fetch GET /v1/program, upload their evaluation keys once via
// POST /v1/sessions, then stream ciphertexts through POST /v1/infer;
// GET /v1/healthz and /v1/statz expose liveness and counters,
// GET /metrics the same in Prometheus text format, and GET /v1/profilez
// the aggregated per-opcode FHE profile. SIGTERM drains accepted
// requests before exit. With -data-dir the daemon is durable:
// registered sessions spill to disk, idempotent jobs are journaled and
// checkpointed, and a restarted daemon (even after kill -9) reloads
// sessions lazily and finishes in-flight jobs from their last
// checkpoint.
//
// Logs are structured (JSON by default, one event per line); every
// event belonging to a request carries its trace id under "trace", the
// same id echoed to the client in the X-ACE-Trace response header.
//
// Quick start (demo model, reduced-scale parameters):
//
//	aced -addr :8080
//
// Production scale (hours per image, exactly as the paper measures):
//
//	aced -addr :8080 -model resnet20.onnx -profile paper
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"antace"
	"antace/internal/cluster"
	"antace/internal/fault"
	"antace/internal/onnx"
	"antace/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		modelPath    = flag.String("model", "", "ONNX model to serve (default: built-in 64-feature linear demo)")
		profile      = flag.String("profile", "test", "compilation profile: test (reduced scale) or paper (128-bit security)")
		workers      = flag.Int("workers", 0, "evaluation worker pool size (0 = auto)")
		queue        = flag.Int("queue", 0, "request queue depth (0 = 4x workers)")
		budgetMB     = flag.Int64("session-budget-mb", 256, "resident evaluation-key budget in MiB")
		deadline     = flag.Duration("deadline", time.Minute, "default per-request deadline")
		maxDeadline  = flag.Duration("max-deadline", 10*time.Minute, "clamp on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
		batchMax     = flag.Int("batch-max", 0, "coalesce up to N concurrent inferences into one fused evaluation (0 or 1 = off; capped by spare slot lanes)")
		batchWindow  = flag.Duration("batch-window", 0, "how long an arriving inference waits for lane-mates before evaluating (0 with -batch-max > 1 = 20ms default)")
		forceLogN    = flag.Int("force-logn", 0, "override the ring degree to 2^n, leaving spare slot lanes for batching (0 = automatic; test profile only)")
		dataDir      = flag.String("data-dir", "", "durability directory: sessions, job journal and checkpoints survive restarts (empty = RAM-only)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "checkpoint journaled jobs every N instructions (0 = use -checkpoint-interval)")
		ckptInterval = flag.Duration("checkpoint-interval", 0, "checkpoint journaled jobs on this wall-clock period (0 with -checkpoint-every 0 = 2s default)")
		diskBudgetMB = flag.Int64("disk-budget-mb", 1024, "on-disk session spill budget in MiB")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests)")
		clusterSelf  = flag.String("cluster-self", "", "this shard's base URL as peers see it (enables session/journal replication; requires -cluster-peers)")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated base URLs of every shard in the cluster, this one included")
		instrDelay   = flag.Duration("instr-delay", 0, "artificial per-instruction delay (chaos/e2e only)")
		logFormat    = flag.String("log-format", "json", "log output format: json or text")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; off by default)")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aced: %v\n", err)
		return 1
	}
	slog.SetDefault(logger)

	// Chaos runs arm deterministic fault injection via ACE_FAULTS (see
	// internal/fault); outside of them this is a no-op.
	if armed, err := fault.ArmFromEnv(); err != nil {
		logger.Error("bad ACE_FAULTS", slog.String("err", err.Error()))
		return 1
	} else if armed {
		for _, p := range fault.Snapshot() {
			logger.Info("fault armed", slog.String("point", p.Point),
				slog.Uint64("seed", p.Seed), slog.Uint64("count", p.Count))
		}
	}

	model, name, err := loadModel(*modelPath)
	if err != nil {
		logger.Error("loading model", slog.String("err", err.Error()))
		return 1
	}
	var prof ace.Profile
	switch *profile {
	case "test":
		prof = ace.TestProfile()
	case "paper":
		prof = ace.PaperProfile()
	default:
		logger.Error("unknown profile (want test or paper)", slog.String("profile", *profile))
		return 1
	}
	if *forceLogN != 0 {
		prof.CKKS.ForceLogN = *forceLogN
	}

	logger.Info("compiling", slog.String("model", name), slog.String("profile", *profile))
	start := time.Now()
	prog, err := ace.Compile(model, prof)
	if err != nil {
		logger.Error("compile failed", slog.String("err", err.Error()))
		return 1
	}
	logger.Info("compiled", slog.Duration("elapsed", time.Since(start).Round(time.Millisecond)))
	if *logFormat == "text" {
		ace.Describe(prog, os.Stderr)
	}

	// Cluster replication: every shard computes the same consistent-hash
	// ring from the shared peer list (placement is deterministic, no
	// coordinator), and ships each session's durable state to that
	// session's ring successor. The shipper is built before the server so
	// even crash-recovery completions replicate.
	var shipper *cluster.Shipper
	if (*clusterSelf == "") != (*clusterPeers == "") {
		logger.Error("-cluster-self and -cluster-peers must be set together")
		return 1
	}
	if *clusterSelf != "" {
		ring, err := cluster.NewRing(strings.Split(*clusterPeers, ","), 0)
		if err != nil {
			logger.Error("bad -cluster-peers", slog.String("err", err.Error()))
			return 1
		}
		if shipper, err = cluster.NewShipper(ring, *clusterSelf, nil, logger); err != nil {
			logger.Error("cluster shipper init failed", slog.String("err", err.Error()))
			return 1
		}
		defer shipper.Close()
		logger.Info("cluster replication on", slog.String("self", *clusterSelf),
			slog.Int("shards", ring.Len()))
	}

	// A nil *Shipper must stay a nil interface, or serve would call
	// through it.
	var repl serve.Replicator
	if shipper != nil {
		repl = shipper
	}
	// Closed when a router broadcast removed this shard from the ring and
	// the handoff was acknowledged — the daemon then drains and exits just
	// like a SIGTERM. The serve layer fires OnLeave at most once.
	leavec := make(chan struct{})
	srv, err := serve.New(serve.Program{
		Name:   name,
		CKKS:   prog.CKKS,
		VecLen: prog.VectorLen(),
	}, serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		SessionBudget:    *budgetMB << 20,
		DefaultDeadline:  *deadline,
		MaxDeadline:      *maxDeadline,
		DataDir:          *dataDir,
		DiskBudget:       *diskBudgetMB << 20,
		CheckpointEveryN: *ckptEvery,
		CheckpointEvery:  *ckptInterval,
		BatchMax:         *batchMax,
		BatchWindow:      *batchWindow,
		InstrDelay:       *instrDelay,
		Replicator:       repl,
		OnLeave:          func() { close(leavec) },
		Logger:           logger,
		Pprof:            *pprofOn,
	})
	if err != nil {
		logger.Error("server init failed", slog.String("err", err.Error()))
		return 1
	}
	if *dataDir != "" {
		st := srv.StatzSnapshot()
		logger.Info("durability on", slog.String("dir", *dataDir),
			slog.Uint64("restart", st.Restarts), slog.Int64("store_bytes", st.StoreBytes))
	}
	if *batchMax > 1 {
		st := srv.StatzSnapshot()
		logger.Info("batching on", slog.Int("stride", st.BatchStride),
			slog.Int("lanes", st.BatchLanes), slog.Duration("window", *batchWindow))
	}

	// From here the server exists: workers run and recovery may already be
	// re-executing journaled jobs, so every failure path below must drain
	// rather than exit abruptly — log.Fatalf here would abandon resumed
	// work mid-checkpoint and waste the recovery the next boot repeats.
	exitCode := 0
	fail := func(msg string, err error) {
		logger.Error(msg, slog.String("err", err.Error()))
		exitCode = 1
	}

	// Bind the listener before announcing the address: by the time
	// -addr-file appears, connections are being accepted and recovery
	// has already claimed every journaled job.
	var httpSrv *http.Server
	errc := make(chan error, 1)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen failed", err)
	} else if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
		fail("addr-file write failed", err)
		_ = ln.Close()
	} else {
		httpSrv = &http.Server{Handler: srv}
		go func() {
			logger.Info("serving", slog.String("model", name), slog.String("addr", ln.Addr().String()))
			errc <- httpSrv.Serve(ln)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if exitCode == 0 {
		select {
		case err := <-errc:
			if !errors.Is(err, http.ErrServerClosed) {
				fail("serve failed", err)
			}
		case <-ctx.Done():
		case <-leavec:
			logger.Info("cluster handoff acknowledged, leaving the ring")
		}
	}

	// Shutdown (signal or post-bind failure): stop the listener and drain
	// accepted work in parallel — handlers blocked on queued jobs return
	// once the workers finish them, which is what Shutdown waits for.
	logger.Info("draining", slog.Duration("timeout", *drainTimeout))
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(shCtx) }()
	if httpSrv != nil {
		if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("http shutdown", slog.String("err", err.Error()))
		}
	}
	drainErr := <-drained

	// Flush the final counters and close any armed fault injectors so a
	// chaos run's log ends with a reconcilable account of what happened.
	st := srv.StatzSnapshot()
	logger.Info("final counters",
		slog.Uint64("served", st.Served), slog.Uint64("rejected", st.Rejected),
		slog.Uint64("timed_out", st.TimedOut), slog.Uint64("failed", st.Failed),
		slog.Uint64("panics", st.Panics), slog.Uint64("idem_replays", st.IdemReplays),
		slog.Uint64("batches", st.Batches), slog.Uint64("batched_jobs", st.BatchedJobs),
		slog.Uint64("solo_fallbacks", st.SoloFallbacks), slog.Uint64("queue_expired", st.QueueExpired),
		slog.Uint64("faults_fired", st.FaultsFired), slog.Uint64("restarts", st.Restarts),
		slog.Uint64("sessions_recovered", st.SessionsRecovered),
		slog.Uint64("jobs_resumed", st.JobsResumed),
		slog.Uint64("checkpoint_bytes", st.CheckpointBytes))
	for _, p := range fault.Snapshot() {
		logger.Info("fault summary", slog.String("point", p.Point),
			slog.Uint64("fired", p.Fired), slog.Uint64("count", p.Count), slog.Uint64("calls", p.Calls))
	}
	fault.Disarm()

	if drainErr != nil {
		logger.Error("drain incomplete", slog.String("err", drainErr.Error()))
		return 1
	}
	logger.Info("drained cleanly")
	return exitCode
}

// buildLogger assembles the daemon's structured logger from the
// -log-format and -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want json or text)", format)
	}
}

// writeAddrFile atomically publishes the bound address; a no-op when no
// path was requested.
func writeAddrFile(path, addr string) error {
	if path == "" {
		return nil
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadModel reads the ONNX file, or builds a synthetic model when no
// path (the quickstart linear demo) or a builtin: name is given.
// builtin:resnet20 is the reduced CIFAR ResNet-20 the batching
// benchmark serves: real residual structure, small enough that one
// encrypted inference finishes in minutes rather than hours.
func loadModel(path string) (*ace.Model, string, error) {
	switch path {
	case "", "builtin:linear":
		m, err := onnx.BuildLinear(64, 10, 42)
		if err != nil {
			return nil, "", err
		}
		return m, "linear-demo-64x10", nil
	case "builtin:resnet20":
		m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 20, InputSize: 8, BaseChannels: 4, Classes: 10})
		if err != nil {
			return nil, "", err
		}
		return m, "resnet20-reduced-8x8x4", nil
	}
	m, err := ace.LoadONNX(path)
	if err != nil {
		return nil, "", fmt.Errorf("loading %s: %w", path, err)
	}
	return m, path, nil
}
