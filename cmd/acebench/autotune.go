package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"antace/internal/ckks"
	"antace/internal/core"
	"antace/internal/costmodel"
	"antace/internal/experiments"
	"antace/internal/obs"
	"antace/internal/ring"
	"antace/internal/serve/api"
	"antace/internal/vecir"
	"antace/internal/vm"
)

// runCalibrateFrom recalibrates the cost model from a live daemon: the
// served geometry comes from /v1/program, the measured aggregates from
// /v1/profilez, and costmodel.FromProfile inverts them into constants
// for this machine. The same fit runs server-side behind /v1/costmodelz;
// doing it client-side lets an operator recalibrate against any shard
// without shell access to it.
func runCalibrateFrom(base string, w io.Writer) error {
	var spec api.ProgramSpec
	if err := getJSON(base+api.PathProgram, &spec); err != nil {
		return fmt.Errorf("fetching program spec: %w", err)
	}
	var lit ckks.ParametersLiteral
	if err := lit.UnmarshalBinary(spec.Params); err != nil {
		return fmt.Errorf("decoding served parameters: %w", err)
	}
	var snap obs.ProfileSnapshot
	if err := getJSON(base+api.PathProfilez, &snap); err != nil {
		return fmt.Errorf("fetching profile: %w", err)
	}
	geom := costmodel.Geometry{LogN: lit.LogN, Alpha: len(lit.LogP), K: len(lit.LogP)}
	cal, fits, err := costmodel.FromProfile(snap, geom, costmodel.DefaultCalibration())
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}

	fmt.Fprintf(w, "recalibrated from %s (%s, %d runs, logN=%d alpha=%d)\n\n",
		base, spec.Name, snap.Runs, geom.LogN, geom.Alpha)
	def := costmodel.DefaultCalibration()
	row := func(name string, fitted, base float64) {
		fmt.Fprintf(w, "%-18s %12.3e %12.3e %8.2fx\n", name, fitted, base, fitted/base)
	}
	fmt.Fprintf(w, "%-18s %12s %12s %8s\n", "constant", "fitted", "default", "ratio")
	row("ntt/butterfly", cal.NTTPerButterfly, def.NTTPerButterfly)
	row("pointwise/coeff", cal.PointwisePerCoeff, def.PointwisePerCoeff)
	row("bconv/coeff", cal.BConvPerCoeff, def.BConvPerCoeff)
	row("modup/unit", cal.ModUpPerUnit, def.ModUpPerUnit)
	row("muladd/unit", cal.MulAddPerUnit, def.MulAddPerUnit)
	row("moddown/unit", cal.ModDownPerUnit, def.ModDownPerUnit)
	fmt.Fprintf(w, "\nper-op agreement under the fitted constants:\n")
	fmt.Fprintf(w, "%-18s %7s %12s %12s %7s\n", "op", "count", "measured_ms", "predicted_ms", "ratio")
	for _, f := range fits {
		fmt.Fprintf(w, "%-18s %7d %12.4f %12.4f %6.2fx\n", f.Op, f.Count, f.MeasuredMs, f.PredictedMs, f.Ratio)
	}
	return nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// categoryRow is one Figure-6 category's measured-vs-predicted line in
// the autotune report.
type categoryRow struct {
	Category     string  `json:"category"`
	MeasuredSec  float64 `json:"measured_sec"`
	PredDefault  float64 `json:"predicted_default_sec"`
	PredLive     float64 `json:"predicted_live_sec"`
	RatioDefault float64 `json:"ratio_default"`
	RatioLive    float64 `json:"ratio_live"`
}

// autotuneReport is the BENCH_autotune.json schema: the plan search
// outcome, the measured wall-clock of the default and chosen plans, and
// the per-category model agreement on the default plan's run.
type autotuneReport struct {
	Model       string                `json:"model"`
	Calibration costmodel.Calibration `json:"calibration"`
	Plans       *core.PlanReport      `json:"plan_search"`

	DefaultMeasuredSec float64 `json:"default_measured_sec"`
	ChosenMeasuredSec  float64 `json:"chosen_measured_sec"`
	MeasuredSpeedup    float64 `json:"measured_speedup"`

	Categories []categoryRow         `json:"categories"`
	LiveCal    costmodel.Calibration `json:"live_calibration"`
	Within2x   bool                  `json:"per_category_within_2x"`
}

// measurePlan runs one warmup and one measured encrypted inference of a
// compiled plan and returns the measured wall-clock plus its profile
// aggregate (runs = 1). The warmup matters for the same reason it does
// in Calibrate: the first run builds NTT twiddle tables and faults in
// every pooled polynomial, which would otherwise be charged to the
// measured ops.
func measurePlan(c *core.Compiled) (float64, obs.ProfileSnapshot, error) {
	machine, client, err := vm.New(c.CKKS, c.VectorLen(), ring.SeedFromInt(42))
	if err != nil {
		return 0, obs.ProfileSnapshot{}, err
	}
	input := make([]float64, c.VectorLen())
	for i := range input {
		input[i] = float64(i%7)/7 - 0.5
	}
	ct, err := client.Encrypt(input)
	if err != nil {
		return 0, obs.ProfileSnapshot{}, err
	}
	if _, err := machine.Run(c.CKKS.Module, ct); err != nil {
		return 0, obs.ProfileSnapshot{}, err
	}
	machine.Prof = obs.NewRunProfile()
	start := time.Now()
	out, err := machine.Run(c.CKKS.Module, ct)
	if err != nil {
		return 0, obs.ProfileSnapshot{}, err
	}
	wall := time.Since(start)
	_ = client.Decrypt(out)
	agg := obs.NewAggregate()
	agg.Merge(machine.Prof, wall)
	return wall.Seconds(), agg.Snapshot(), nil
}

// runAutotune is the calibrate → enumerate → measure loop behind `make
// autotune`: microbenchmark-calibrate the cost model, search the plan
// space for the reduced ResNet-20, then run the hand-picked default and
// the chosen plan for real and report predicted vs measured — the
// experiment EXPERIMENTS.md's "Autotuned layout search" table records.
func runAutotune(w io.Writer, outPath string, cal costmodel.Calibration) error {
	spec := experiments.ModelSpec{Name: "ResNet-20", Depth: 20, Classes: 10}
	m, err := experiments.BuildModel(spec, experiments.ScaleReduced)
	if err != nil {
		return err
	}
	cfg := experiments.ReducedConfig()
	// The hand-picked baseline the search must beat is the naive conv
	// schedule — one rotation per kernel offset, the structure an expert
	// writes by hand before any BSGS-style splitting. The enumerator's
	// giant-step candidates share rotations across offsets and should
	// win on any machine where rotations dominate conv time.
	cfg.Vec.Conv = vecir.ConvNaive

	fmt.Fprintf(w, "plan search over %s (reduced scale), calibration source %q\n\n", spec.Name, cal.Source)
	chosen, report, err := core.CompileAuto(m, cfg, cal)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %12s %6s %7s %11s %10s\n", "plan", "predicted_s", "logN", "levels", "bootstraps", "rotations")
	for _, pc := range report.Candidates {
		marker := " "
		switch {
		case pc.Chosen:
			marker = "*"
		case pc.Default:
			marker = "d"
		}
		if pc.Err != "" {
			fmt.Fprintf(w, "%s %-26s %12s (skipped: %s)\n", marker, pc.Plan, "-", pc.Err)
			continue
		}
		fmt.Fprintf(w, "%s %-26s %12.3f %6d %7d %11d %10d\n",
			marker, pc.Plan, pc.PredictedSec, pc.LogN, pc.Levels, pc.Bootstraps, pc.Rotations)
	}
	fmt.Fprintf(w, "\nchosen %s over default %s: predicted speedup %.2fx\n",
		report.ChosenPlan, report.DefaultPlan, report.PredictedSpeedup)

	// Measure the default plan with the profiler attached: its run
	// exercises every category (the default bootstraps), so it is the
	// run the per-category model agreement is judged on.
	def, err := core.Compile(m, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmeasuring default plan %s ...\n", report.DefaultPlan)
	defWall, defSnap, err := measurePlan(def)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "measuring chosen plan %s ...\n", report.ChosenPlan)
	chosenWall, _, err := measurePlan(chosen)
	if err != nil {
		return err
	}

	geom := costmodel.GeometryOf(def.CKKS)
	meas, err := costmodel.MeasuredBreakdown(defSnap)
	if err != nil {
		return err
	}
	live, _, err := costmodel.FromProfile(defSnap, geom, cal)
	if err != nil {
		return err
	}
	live = costmodel.FitSchedule(live, geom, def.CKKS, defSnap)
	predDef := geom.Model(cal).InferenceCost(def.CKKS)
	predLive := geom.Model(live).InferenceCost(def.CKKS)

	rep := autotuneReport{
		Model:              spec.Name + "-reduced",
		Calibration:        cal,
		Plans:              report,
		DefaultMeasuredSec: defWall,
		ChosenMeasuredSec:  chosenWall,
		LiveCal:            live,
		Within2x:           true,
	}
	if chosenWall > 0 {
		rep.MeasuredSpeedup = defWall / chosenWall
	}

	fmt.Fprintf(w, "\ndefault %s: measured %.2fs   chosen %s: measured %.2fs   speedup %.2fx\n",
		report.DefaultPlan, defWall, report.ChosenPlan, chosenWall, rep.MeasuredSpeedup)

	fmt.Fprintf(w, "\nper-category agreement on the default plan (measured vs model, s/run):\n")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %9s %9s\n", "category", "measured", "pred(def)", "pred(live)", "ratio(d)", "ratio(l)")
	ratio := func(pred, meas float64) float64 {
		if meas <= 0 {
			return 0
		}
		return pred / meas
	}
	for _, cat := range []struct {
		name      string
		m, pd, pl float64
	}{
		{"Conv", meas.Conv, predDef.Conv, predLive.Conv},
		{"Bootstrap", meas.Bootstrap, predDef.Bootstrap, predLive.Bootstrap},
		{"ReLU", meas.ReLU, predDef.ReLU, predLive.ReLU},
	} {
		row := categoryRow{
			Category: cat.name, MeasuredSec: cat.m,
			PredDefault: cat.pd, PredLive: cat.pl,
			RatioDefault: ratio(cat.pd, cat.m), RatioLive: ratio(cat.pl, cat.m),
		}
		rep.Categories = append(rep.Categories, row)
		for _, r := range []float64{row.RatioDefault, row.RatioLive} {
			if r < 0.5 || r > 2 {
				rep.Within2x = false
			}
		}
		fmt.Fprintf(w, "%-10s %10.3f %12.3f %12.3f %8.2fx %8.2fx\n",
			cat.name, cat.m, cat.pd, cat.pl, row.RatioDefault, row.RatioLive)
	}
	fmt.Fprintf(w, "\nper-category within 2x: %v\n", rep.Within2x)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", outPath)
	if rep.MeasuredSpeedup < 1 {
		return fmt.Errorf("autotuned plan %s (%.2fs) did not beat the default %s (%.2fs)",
			report.ChosenPlan, chosenWall, report.DefaultPlan, defWall)
	}
	if !rep.Within2x {
		return fmt.Errorf("model predictions strayed past 2x of measurements")
	}
	return nil
}
