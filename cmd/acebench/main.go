// acebench regenerates the paper's evaluation artifacts (Figures 5–7,
// Tables 10–11) at either full paper scale or reduced CI scale.
//
// Usage:
//
//	acebench -all                     # everything, reduced scale
//	acebench -all -scale paper        # the full six-ResNet suite
//	acebench -fig 6 -scale paper
//	acebench -tab 11 -images 1000
//	acebench -tab 8                   # repository LoC breakdown
//	acebench -profile-ops             # measured per-opcode profile
//	acebench -load http://host:8080 -clients 8 -duration 60s
//	                                  # concurrent-client load generator
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"antace/internal/costmodel"
	"antace/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (5, 6, 7)")
	tab := flag.Int("tab", 0, "table to regenerate (8, 10, 11)")
	all := flag.Bool("all", false, "regenerate everything")
	scaleFlag := flag.String("scale", "reduced", "experiment scale: paper or reduced")
	images := flag.Int("images", 200, "Table 11: images for the trained-CNN accuracy run")
	resnetImages := flag.Int("resnet-images", 50, "Table 11: images for the ResNet agreement runs")
	calibrate := flag.Bool("calibrate", true, "microbenchmark the runtime for the cost model")
	calibrateFrom := flag.String("calibrate-from", "", "base URL of a live aced: recalibrate the cost model from its /v1/profilez aggregates and print the fit")
	autotune := flag.Bool("autotune", false, "calibrate, enumerate compilation plans for the reduced ResNet-20, measure chosen vs default and write -autotune-out")
	autotuneOut := flag.String("autotune-out", "BENCH_autotune.json", "autotune mode: file the report is written to")
	profileOps := flag.Bool("profile-ops", false, "compile the demo model, run one encrypted inference and print the measured per-opcode profile (Figure 6's measured analogue)")
	load := flag.String("load", "", "base URL of a live aced: run the concurrent-client load generator instead of the paper artifacts")
	clients := flag.Int("clients", 8, "load mode: number of concurrent clients")
	window := flag.Duration("duration", time.Minute, "load mode: measurement window (extended until at least one inference completes)")
	reqDeadline := flag.Duration("request-deadline", 30*time.Minute, "load mode: per-request deadline forwarded to the server")
	routerMode := flag.Bool("router", false, "load mode: the -load URL is an acerouter; scrape its cluster statz afterwards and write per-shard request counts to -cluster-out")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "router mode: file the cluster report is written to")
	flag.Parse()

	if *load != "" {
		if err := runLoad(*load, *clients, *window, *reqDeadline, *routerMode, *clusterOut); err != nil {
			fmt.Fprintf(os.Stderr, "load failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *profileOps {
		if err := runOpProfile(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "profile-ops failed: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *calibrateFrom != "" {
		if err := runCalibrateFrom(*calibrateFrom, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "calibrate-from failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := experiments.ScaleReduced
	if *scaleFlag == "paper" {
		scale = experiments.ScalePaper
	}
	cal := costmodel.DefaultCalibration()
	if *calibrate {
		if c, err := costmodel.Calibrate(); err == nil {
			cal = c
			fmt.Printf("calibration: ntt=%.2e/butterfly pointwise=%.2e/coeff bconv=%.2e/coeff modup=%.2e muladd=%.2e moddown=%.2e (keyswitch cross-check: measured %.3gs vs predicted %.3gs)\n\n",
				c.NTTPerButterfly, c.PointwisePerCoeff, c.BConvPerCoeff,
				c.ModUpPerUnit, c.MulAddPerUnit, c.ModDownPerUnit,
				c.KeySwitchMeasuredSec, c.KeySwitchPredictedSec)
		}
	}

	if *autotune {
		if err := runAutotune(os.Stdout, *autotuneOut, cal); err != nil {
			fmt.Fprintf(os.Stderr, "autotune failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	want := func(f, t int) bool {
		return *all || (f != 0 && *fig == f) || (t != 0 && *tab == t)
	}

	if want(5, 0) {
		run("Figure 5", func() error { return experiments.Figure5(os.Stdout, scale) })
	}
	if want(6, 0) {
		run("Figure 6", func() error { _, err := experiments.Figure6(os.Stdout, scale, cal); return err })
	}
	if want(7, 0) {
		run("Figure 7", func() error { _, err := experiments.Figure7(os.Stdout, scale, cal); return err })
	}
	if want(0, 8) {
		run("Table 8 (LoC breakdown of this repository)", table8)
	}
	if want(0, 10) {
		run("Table 10", func() error { _, err := experiments.Table10(os.Stdout, scale); return err })
	}
	if want(0, 11) {
		run("Table 11", func() error { _, err := experiments.Table11(os.Stdout, *images, *resnetImages); return err })
	}
	if !*all && *fig == 0 && *tab == 0 {
		flag.Usage()
	}
}

// table8 counts lines of code per component, mirroring the paper's
// Table 8 presentation.
func table8() error {
	groups := map[string][]string{
		"Infrastructure":    {"internal/ir", "internal/onnx", "internal/core", "internal/codegen", "internal/vm", "internal/experiments", "internal/costmodel", "cmd", "internal/tensor", "internal/dataset", "internal/train"},
		"NN IR":             {"internal/nnir"},
		"VECTOR IR":         {"internal/vecir"},
		"SIHE IR":           {"internal/sihe", "internal/poly"},
		"CKKS IR":           {"internal/ckksir"},
		"POLY IR":           {"internal/polyir"},
		"Run-Time Library":  {"internal/nt", "internal/ring", "internal/ckks", "internal/bootstrap"},
		"Examples + facade": {"examples", "."},
	}
	order := []string{"Infrastructure", "NN IR", "VECTOR IR", "SIHE IR", "CKKS IR", "POLY IR", "Run-Time Library", "Examples + facade"}
	fmt.Printf("%-18s %8s %8s\n", "Component", "LOC", "Tests")
	totalLoc, totalTest := 0, 0
	for _, name := range order {
		loc, test := 0, 0
		for _, dir := range groups[name] {
			l, t := countDir(dir, name == "Examples + facade" && dir == ".")
			loc += l
			test += t
		}
		totalLoc += loc
		totalTest += test
		fmt.Printf("%-18s %8d %8d\n", name, loc, test)
	}
	fmt.Printf("%-18s %8d %8d\n", "Total", totalLoc, totalTest)
	return nil
}

func countDir(dir string, topOnly bool) (loc, test int) {
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			if info != nil && info.IsDir() && topOnly && path != dir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		n := strings.Count(string(data), "\n")
		if strings.HasSuffix(path, "_test.go") {
			test += n
		} else {
			loc += n
		}
		return nil
	})
	return
}
