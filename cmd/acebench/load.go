// Load mode: a concurrent-client generator that measures the serving
// throughput of a live aced, the experiment behind BENCH_batch.json.
// N clients share one registered session (one key upload) and fire
// encrypted inferences back to back for a fixed window; the report is
// client-observed inferences/sec and latency quantiles plus the
// server-side batching counters scraped from /metrics.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"antace/internal/cluster"
	"antace/internal/fheclient"
)

// loadReport is the machine-readable result of one load run, printed as
// a single JSON line on stdout so bench scripts can consume it.
type loadReport struct {
	URL          string             `json:"url"`
	Clients      int                `json:"clients"`
	WindowSec    float64            `json:"window_sec"`  // requested measurement window
	ElapsedSec   float64            `json:"elapsed_sec"` // actual window (extended to the first completion)
	Served       int                `json:"served"`
	Errors       int                `json:"errors"`
	InferPerSec  float64            `json:"inferences_per_sec"`
	LatSecP50    float64            `json:"latency_sec_p50"`
	LatSecP90    float64            `json:"latency_sec_p90"`
	LatSecP99    float64            `json:"latency_sec_p99"`
	LatSecMean   float64            `json:"latency_sec_mean"`
	LatSecMax    float64            `json:"latency_sec_max"`
	ServerScrape map[string]float64 `json:"server_metrics,omitempty"`
}

// clusterReport is the -router mode artifact (BENCH_cluster.json): the
// client-observed load report plus the router's view of how the work
// spread — forward/failover counters and per-shard request counts —
// and each shard's own served/replica counters.
type clusterReport struct {
	Load    loadReport           `json:"load"`
	Cluster cluster.ClusterStatz `json:"cluster"`
}

// runLoad drives the generator end to end and emits the report.
// The window is extended until at least one inference completes, so a
// model whose single-inference latency exceeds the window still yields
// a meaningful rate; requests still in flight at the cutoff are
// canceled and count as neither served nor failed. With routerMode the
// target is an acerouter: the run additionally scrapes the aggregated
// cluster statz and writes the per-shard breakdown to clusterOut.
func runLoad(url string, clients int, window, reqDeadline time.Duration, routerMode bool, clusterOut string) error {
	if clients < 1 {
		return fmt.Errorf("load: need at least 1 client, got %d", clients)
	}
	// Setup (keygen + key upload) is not part of the measured window but
	// scales with the ring and the rotation set — at logN 12 with a
	// batching rotation set it runs minutes, so it gets the same generous
	// deadline as a request.
	setupCtx, cancelSetup := context.WithTimeout(context.Background(), reqDeadline)
	defer cancelSetup()
	cl, err := fheclient.Dial(setupCtx, url, nil)
	if err != nil {
		return err
	}
	spec := cl.Spec()
	fmt.Fprintf(os.Stderr, "load: program %q vec_len=%d batch_stride=%d; registering session (keygen)...\n",
		spec.Name, spec.VecLen, spec.BatchStride)
	regStart := time.Now()
	if _, err := cl.Register(setupCtx, nil); err != nil {
		return fmt.Errorf("load: registering session: %w", err)
	}
	fmt.Fprintf(os.Stderr, "load: session registered in %v; running %d clients for %v\n",
		time.Since(regStart).Round(time.Millisecond), clients, window)

	var (
		mu        sync.Mutex
		latencies []float64
		errCount  int
		firstDone = make(chan struct{})
		closeOnce sync.Once
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			// Each client's input is distinct so lanes of one batch carry
			// different data — the differential suite proves correctness,
			// the load run just needs realistic non-identical traffic.
			values := make([]float64, spec.VecLen)
			for j := range values {
				values[j] = math.Sin(float64(j) + float64(idx)*0.37)
			}
			ct, err := cl.Encrypt(values)
			if err != nil {
				mu.Lock()
				errCount++
				mu.Unlock()
				return
			}
			for ctx.Err() == nil {
				t0 := time.Now()
				rctx, rcancel := context.WithTimeout(ctx, reqDeadline)
				out, lane, stride, err := cl.InferCipherLane(rctx, ct)
				rcancel()
				if err != nil {
					if ctx.Err() != nil {
						return // phase cutoff, not a failure
					}
					mu.Lock()
					errCount++
					mu.Unlock()
					continue
				}
				if _, err := cl.DecryptLane(out, lane, max(stride, 1)); err != nil {
					mu.Lock()
					errCount++
					mu.Unlock()
					continue
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0).Seconds())
				served := len(latencies)
				mu.Unlock()
				closeOnce.Do(func() { close(firstDone) })
				fmt.Fprintf(os.Stderr, "load: client %d served inference #%d in %v\n",
					idx, served, time.Since(t0).Round(time.Millisecond))
			}
		}(i)
	}

	// The window closes at max(window, first completion): a run shorter
	// than one inference would otherwise report a rate of zero. After the
	// first completion a short grace lets the rest of its wave land —
	// lane-mates of one fused evaluation finish together, and cutting at
	// the first member would credit the batch a single inference.
	<-time.After(window)
	select {
	case <-firstDone:
	default:
		fmt.Fprintf(os.Stderr, "load: window elapsed with nothing served yet; extending until the first completion\n")
		<-firstDone
	}
	grace := window / 4
	if grace > 15*time.Second {
		grace = 15 * time.Second
	}
	time.Sleep(grace)
	elapsed := time.Since(start)
	cancel()
	wg.Wait()

	sort.Float64s(latencies)
	rep := loadReport{
		URL:        url,
		Clients:    clients,
		WindowSec:  window.Seconds(),
		ElapsedSec: elapsed.Seconds(),
		Served:     len(latencies),
		Errors:     errCount,
	}
	if rep.ElapsedSec > 0 {
		rep.InferPerSec = float64(rep.Served) / rep.ElapsedSec
	}
	if n := len(latencies); n > 0 {
		rep.LatSecP50 = quantile(latencies, 0.5)
		rep.LatSecP90 = quantile(latencies, 0.9)
		rep.LatSecP99 = quantile(latencies, 0.99)
		rep.LatSecMax = latencies[n-1]
		sum := 0.0
		for _, v := range latencies {
			sum += v
		}
		rep.LatSecMean = sum / float64(n)
	}
	if m, err := scrapeMetrics(url); err != nil {
		fmt.Fprintf(os.Stderr, "load: scraping /metrics: %v\n", err)
	} else {
		rep.ServerScrape = m
	}

	fmt.Fprintf(os.Stderr, "load: served %d in %v (%.4f inferences/sec), %d errors\n",
		rep.Served, elapsed.Round(time.Second), rep.InferPerSec, rep.Errors)
	out, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if routerMode {
		return writeClusterReport(url, rep, clusterOut)
	}
	return nil
}

// writeClusterReport scrapes the router's aggregated statz and writes
// the BENCH_cluster.json artifact: the load report plus per-shard
// request counts, so a bench run shows how the ring spread the work.
func writeClusterReport(url string, rep loadReport, path string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/statz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("load: scraping router statz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("load: router statz returned %s", resp.Status)
	}
	var cs cluster.ClusterStatz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&cs); err != nil {
		return fmt.Errorf("load: decoding router statz: %w", err)
	}
	data, err := json.MarshalIndent(clusterReport{Load: rep, Cluster: cs}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, line := range shardSummary(cs) {
		fmt.Fprintln(os.Stderr, line)
	}
	fmt.Fprintf(os.Stderr, "load: cluster report written to %s\n", path)
	return nil
}

// shardSummary renders the per-shard spread for the run log.
func shardSummary(cs cluster.ClusterStatz) []string {
	eps := make([]string, 0, len(cs.Router.ShardRequests))
	for ep := range cs.Router.ShardRequests {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	lines := make([]string, 0, len(eps)+1)
	lines = append(lines, fmt.Sprintf("load: router forwarded=%d failovers=%d errors=%d",
		cs.Router.Forwarded, cs.Router.Failovers, cs.Router.Errors))
	for _, ep := range eps {
		served := uint64(0)
		if st, ok := cs.Shards[ep]; ok {
			served = st.Served
		}
		lines = append(lines, fmt.Sprintf("load: shard %s requests=%d served=%d ready=%v",
			ep, cs.Router.ShardRequests[ep], served, cs.Router.Ready[ep]))
	}
	return lines
}

// quantile reads the q-th quantile from an already-sorted sample using
// the nearest-rank method.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// loadScrapeSeries is the subset of the server's exposition the report
// embeds: the batching counters the benchmark compares, the scheduler
// drop counters, and the server-observed latency quantiles.
var loadScrapeSeries = []string{
	"ace_requests_served_total",
	"ace_requests_rejected_total",
	"ace_queue_expired_total",
	"ace_batches_total",
	"ace_batched_jobs_total",
	"ace_batch_solo_fallbacks_total",
	"ace_batch_lanes",
	"ace_batch_stride",
	`ace_latency_ms{quantile="0.5"}`,
	`ace_latency_ms{quantile="0.9"}`,
	`ace_latency_ms{quantile="0.99"}`,
}

// scrapeMetrics pulls /metrics and extracts the series in
// loadScrapeSeries from the Prometheus text format.
func scrapeMetrics(url string) (map[string]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics returned %s", resp.Status)
	}
	want := make(map[string]bool, len(loadScrapeSeries))
	for _, s := range loadScrapeSeries {
		want[s] = true
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 4<<20))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		name := strings.TrimSpace(line[:sp])
		if !want[name] {
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64); err == nil {
			out[name] = v
		}
	}
	return out, sc.Err()
}
