package main

import (
	"fmt"
	"io"
	"strings"
	"time"

	"antace"
	"antace/internal/obs"
	"antace/internal/onnx"
	"antace/internal/ring"
	"antace/internal/vm"
)

// runOpProfile compiles the built-in demo model at test scale, runs one
// encrypted inference with the VM profiler attached, and prints the
// measured per-opcode cost table plus the level/scale trajectory — the
// measured counterpart of Figure 6's modeled per-operation breakdown,
// and the same data a live daemon aggregates behind /v1/profilez.
func runOpProfile(w io.Writer) error {
	model, err := onnx.BuildLinear(64, 10, 42)
	if err != nil {
		return err
	}
	prog, err := ace.Compile(model, ace.TestProfile())
	if err != nil {
		return err
	}
	machine, client, err := vm.New(prog.CKKS, prog.VectorLen(), ring.SeedFromInt(42))
	if err != nil {
		return err
	}
	input := make([]float64, prog.VectorLen())
	for i := range input {
		input[i] = float64(i%7)/7 - 0.5
	}
	ct, err := client.Encrypt(input)
	if err != nil {
		return err
	}

	machine.Prof = obs.NewRunProfile()
	start := time.Now()
	out, err := machine.Run(prog.CKKS.Module, ct)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	_ = client.Decrypt(out)

	fmt.Fprintf(w, "per-opcode profile (linear-demo-64x10, test profile, 1 inference)\n\n")
	fmt.Fprintf(w, "%-18s %7s %10s %10s %10s %7s\n", "op", "count", "total_ms", "mean_ms", "max_ms", "share")
	opSum := machine.Prof.Total()
	for _, st := range machine.Prof.Ops() {
		share := 0.0
		if opSum > 0 {
			share = st.TotalMs / (float64(opSum) / float64(time.Millisecond)) * 100
		}
		fmt.Fprintf(w, "%-18s %7d %10.3f %10.4f %10.4f %6.1f%%\n",
			st.Op, st.Count, st.TotalMs, st.MeanMs, st.MaxMs, share)
	}
	fmt.Fprintf(w, "\ninstructions: %d   op-time sum: %.3fms   wall: %.3fms (gap is loop overhead)\n",
		machine.Prof.Steps(), float64(opSum)/float64(time.Millisecond), float64(wall)/float64(time.Millisecond))

	if kernels := machine.Prof.Kernels(); len(kernels) > 0 {
		fmt.Fprintf(w, "\nfused kernels (sub-measurements inside the ops above; not additive with op-time)\n\n")
		fmt.Fprintf(w, "%-18s %7s %10s %10s %10s  %s\n", "kernel", "count", "total_ms", "mean_ms", "max_ms", "replaces")
		for _, st := range kernels {
			replaces := "-"
			if cs := obs.FusedConstituents[st.Op]; len(cs) > 0 {
				replaces = strings.Join(cs, "+")
			}
			fmt.Fprintf(w, "%-18s %7d %10.3f %10.4f %10.4f  %s\n",
				st.Op, st.Count, st.TotalMs, st.MeanMs, st.MaxMs, replaces)
		}
	}

	fmt.Fprintf(w, "\nlevel/scale trajectory (first %d steps):\n", min(len(machine.Prof.Trajectory), 24))
	fmt.Fprintf(w, "%5s %-18s %6s %12s\n", "pc", "op", "level", "scale")
	for i, pt := range machine.Prof.Trajectory {
		if i >= 24 {
			fmt.Fprintf(w, "... %d more steps\n", len(machine.Prof.Trajectory)-24)
			break
		}
		fmt.Fprintf(w, "%5d %-18s %6d %12.3e\n", pt.PC, pt.Op, pt.Level, pt.Scale)
	}
	return nil
}
