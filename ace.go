// Package ace is the public interface of the ANT-ACE-in-Go FHE compiler
// framework: it compiles ONNX neural-network inference models into
// programs that run on encrypted data under the RNS-CKKS scheme, fully
// automatically — operator lowering through five IR levels, nonlinear
// (ReLU) polynomial approximation, scale and level management, minimal-
// level bootstrapping placement, security parameter selection, and
// rotation-key analysis.
//
// Quick start:
//
//	model, _ := ace.LoadONNX("resnet20.onnx")
//	prog, _ := ace.Compile(model, ace.TestProfile())
//	rt, _ := ace.NewRuntime(prog)
//	out, _ := rt.Infer(image)           // image: *tensor.Tensor, NCHW
//
// See examples/ for complete programs.
package ace

import (
	"fmt"
	"io"

	"antace/internal/bootstrap"
	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/codegen"
	"antace/internal/core"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/tensor"
	"antace/internal/vm"
)

// Model is an ONNX inference model.
type Model = onnx.Model

// Tensor is the dense tensor type used for inputs and outputs.
type Tensor = tensor.Tensor

// Profile is a compilation configuration.
type Profile = core.Config

// Program is a compiled model: the full five-level IR stack plus the
// selected CKKS parameters.
type Program = core.Compiled

// LoadONNX reads an ONNX model from disk.
func LoadONNX(path string) (*Model, error) { return onnx.Load(path) }

// SaveONNX writes an ONNX model to disk.
func SaveONNX(m *Model, path string) error { return onnx.Save(m, path) }

// PaperProfile compiles at the paper's full deployment scale: 128-bit
// security, q0 = 2^60, Delta = 2^56 (Table 10 reproduces on the ResNet
// family: log2 N = 16). Compilation takes seconds per model; actual
// encrypted execution at this scale takes hours per image, exactly as
// the paper reports.
func PaperProfile() Profile {
	return core.Config{
		SIHE: sihe.Options{ReLUAlpha: 9, ReLUEps: 1.0 / 8},
		CKKS: ckksir.Options{
			LogQ0:    60,
			LogScale: 56,
			Mode:     ckksir.BootstrapAlways,
			Boot:     bootstrap.Parameters{EvalModDegree: 24, DoubleAngle: 2},
		},
	}
}

// TestProfile compiles at reduced scale for functional runs: the ring
// degree follows the slot demand rather than the 128-bit security floor,
// so real encrypted inference of small models completes in seconds.
// Never deploy with this profile.
func TestProfile() Profile {
	return core.Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{LogScale: 40, Mode: ckksir.BootstrapAuto, IgnoreSecurity: true},
		SkipPoly: true,
	}
}

// Compile runs the full pipeline on a model.
func Compile(m *Model, p Profile) (*Program, error) { return core.Compile(m, p) }

// EmitGo generates a standalone Go program (plus external weights file)
// for a compiled model, the analogue of the paper's C/C++ code
// generation.
func EmitGo(prog *Program, dir string) error { return codegen.Generate(prog, dir) }

// Runtime executes a compiled program on encrypted data. It bundles the
// server side (parameters, evaluation keys, evaluator, bootstrapper) and
// the client side (secret key, encoder, packing) for in-process use; a
// real deployment would split the two halves.
type Runtime struct {
	prog    *Program
	machine *vm.Machine
	client  *vm.Client
}

// NewRuntime instantiates parameters and keys for a compiled program.
func NewRuntime(prog *Program) (*Runtime, error) {
	machine, client, err := vm.New(prog.CKKS, prog.VectorLen(), nil)
	if err != nil {
		return nil, err
	}
	return &Runtime{prog: prog, machine: machine, client: client}, nil
}

// Infer runs encrypted inference on one input tensor: pack, encrypt,
// evaluate homomorphically, decrypt, unpack.
func (rt *Runtime) Infer(image *Tensor) (*Tensor, error) {
	ct, err := rt.Encrypt(image)
	if err != nil {
		return nil, err
	}
	out, err := rt.machine.Run(rt.prog.CKKS.Module, ct)
	if err != nil {
		return nil, err
	}
	return rt.Decrypt(out)
}

// Encrypt packs and encrypts an input tensor (the ANT-ACE-generated
// encryptor of the paper's threat model).
func (rt *Runtime) Encrypt(image *Tensor) (*ckks.Ciphertext, error) {
	packed, err := rt.prog.Vec.InLayout.Pack(image.Data)
	if err != nil {
		return nil, err
	}
	return rt.client.Encrypt(packed)
}

// Run evaluates the compiled program on an encrypted input (server side).
func (rt *Runtime) Run(ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	return rt.machine.Run(rt.prog.CKKS.Module, ct)
}

// Decrypt decrypts and unpacks an output ciphertext (the generated
// decryptor).
func (rt *Runtime) Decrypt(ct *ckks.Ciphertext) (*Tensor, error) {
	vals, err := rt.prog.Vec.OutLayout.Unpack(rt.client.Decrypt(ct))
	if err != nil {
		return nil, err
	}
	return tensor.FromData(vals, rt.prog.Vec.OutLayout.C), nil
}

// KeyCount reports the number of Galois keys the runtime generated
// (the compiler's rotation analysis plus the bootstrap circuit's).
func (rt *Runtime) KeyCount() int { return rt.machine.KeyCount }

// InferPlain runs the unencrypted reference for comparison.
func InferPlain(prog *Program, image *Tensor) (*Tensor, error) { return prog.RunPlain(image) }

// InferSim runs the encrypted-arithmetic simulator (identical polynomial
// approximations, no noise) — useful for accuracy sweeps where real FHE
// would take hours.
func InferSim(prog *Program, image *Tensor) (*Tensor, error) { return prog.RunSim(image) }

// Describe prints a human-readable compilation report.
func Describe(prog *Program, w io.Writer) {
	fmt.Fprintln(w, prog.Summary())
	fmt.Fprintf(w, "  parameters: logN=%d, chain=%v, logP=%v\n",
		prog.CKKS.Literal.LogN, prog.CKKS.Literal.LogQ, prog.CKKS.Literal.LogP)
	fmt.Fprintf(w, "  input: level %d, scale 2^%d; segments %v\n",
		prog.CKKS.InputLevel, prog.CKKS.Literal.LogScale, prog.CKKS.SegmentDepths)
	for _, t := range prog.Timings {
		fmt.Fprintf(w, "  %-7s %-18s %s\n", t.Level, t.Pass, t.Duration)
	}
}
