// Package antace's benchmarks regenerate every table and figure of the
// paper's evaluation (§6) plus the ablations DESIGN.md calls out. Run
// with:
//
//	go test -bench=. -benchmem                     # reduced scale
//	go test -bench=Paper -benchtime=1x -timeout=2h # full paper scale
//
// Benchmarks report the reproduced quantities as custom metrics
// (seconds, bytes, accuracy) so `go test -bench` output documents the
// artifact; cmd/acebench prints the same data as formatted tables.
package ace

import (
	"io"
	"path/filepath"
	"testing"
	"time"

	"antace/internal/bootstrap"
	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/core"
	"antace/internal/costmodel"
	"antace/internal/experiments"
	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/poly"
	"antace/internal/ring"
	"antace/internal/sihe"
	"antace/internal/store"
	"antace/internal/tensor"
	"antace/internal/vecir"
	"antace/internal/vm"
)

// --- Figure 5: compile times -------------------------------------------

func benchCompile(b *testing.B, spec experiments.ModelSpec, scale experiments.Scale) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m, err := experiments.BuildModel(spec, scale)
		if err != nil {
			b.Fatal(err)
		}
		cfg := experiments.ReducedConfig()
		if scale == experiments.ScalePaper {
			cfg = experiments.PaperConfig()
		}
		cfg.SkipPoly = false
		c, err := core.Compile(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for level, d := range c.LevelBreakdown() {
				b.ReportMetric(d.Seconds(), level+"-s")
			}
		}
	}
}

func BenchmarkFigure5CompileTimes(b *testing.B) {
	for _, spec := range experiments.ReducedModels() {
		b.Run(spec.Name, func(b *testing.B) { benchCompile(b, spec, experiments.ScaleReduced) })
	}
}

func BenchmarkFigure5CompileTimesPaper(b *testing.B) {
	if testing.Short() {
		b.Skip("paper scale")
	}
	for _, spec := range experiments.PaperModels()[:2] {
		b.Run(spec.Name, func(b *testing.B) { benchCompile(b, spec, experiments.ScalePaper) })
	}
}

// --- Figure 6: inference time, ACE vs Expert ---------------------------

func BenchmarkFigure6Inference(b *testing.B) {
	cal := costmodel.DefaultCalibration()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(io.Discard, experiments.ScaleReduced, cal)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Speedup, "speedup-"+shorten(r.Model))
			}
		}
	}
}

// --- Figure 7: memory --------------------------------------------------

func BenchmarkFigure7Memory(b *testing.B) {
	cal := costmodel.DefaultCalibration()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(io.Discard, experiments.ScaleReduced, cal)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.Saving, "saving%-"+shorten(r.Model))
				b.ReportMetric(100*r.KeyShare, "keyshare%-"+shorten(r.Model))
			}
		}
	}
}

// --- Table 10: parameter selection --------------------------------------

func BenchmarkTable10Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table10(io.Discard, experiments.ScaleReduced)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.LogN), "logN-"+shorten(r.Model))
			}
		}
	}
}

// --- Table 11: accuracy --------------------------------------------------

func BenchmarkTable11Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table11(io.Discard, 100, 20)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(100*r.Unencrypted, "plain%-"+shorten(r.Model))
				b.ReportMetric(100*r.Encrypted, "enc%-"+shorten(r.Model))
			}
		}
	}
}

// --- End-to-end encrypted inference (real FHE, reduced scale) ----------

func BenchmarkEncryptedInference(b *testing.B) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, InputSize: 8, BaseChannels: 4, Classes: 10})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(m, TestProfile())
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		b.Fatal(err)
	}
	image := tensor.New(1, 3, 8, 8)
	for i := range image.Data {
		image.Data[i] = float64(i%16)/16 - 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Infer(image); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Durability: checkpoint overhead (BENCH_durability.json) ------------

// BenchmarkCheckpointOverheadResNet20 measures what VM checkpointing
// costs on the ResNet-20 serving path (reduced scale): the same
// encrypted inference with checkpoints off, on a 2s wall-clock policy
// (the serve default), and on an aggressive every-10-instructions
// policy. Snapshots go through the real store.WriteFile fsync path.
// The acceptance budget is <5% for the wall-clock policy.
func BenchmarkCheckpointOverheadResNet20(b *testing.B) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 20, InputSize: 8, BaseChannels: 4, Classes: 10})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(m, TestProfile())
	if err != nil {
		b.Fatal(err)
	}
	image := tensor.New(1, 3, 8, 8)
	for i := range image.Data {
		image.Data[i] = float64(i%16)/16 - 0.5
	}
	ckptPath := filepath.Join(b.TempDir(), "bench.ckpt")
	policies := []struct {
		name string
		mk   func() *vm.CheckpointPolicy
	}{
		{"off", func() *vm.CheckpointPolicy { return nil }},
		{"every2s", func() *vm.CheckpointPolicy {
			return &vm.CheckpointPolicy{Every: 2 * time.Second,
				Sink: func(snap []byte) error { return store.WriteFile(ckptPath, snap) }}
		}},
		{"every10instr", func() *vm.CheckpointPolicy {
			return &vm.CheckpointPolicy{EveryN: 10,
				Sink: func(snap []byte) error { return store.WriteFile(ckptPath, snap) }}
		}},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			rt, err := NewRuntime(prog)
			if err != nil {
				b.Fatal(err)
			}
			rt.machine.Ckpt = pol.mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Infer(image); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md) ----------------------------------------------

// Ablation 1: cross-channel rotation sharing vs naive conv lowering.
func BenchmarkAblationConvRotationSharing(b *testing.B) {
	m, _ := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, InputSize: 8, BaseChannels: 4, Classes: 10})
	for i := 0; i < b.N; i++ {
		nn, err := nnir.Import(m)
		if err != nil {
			b.Fatal(err)
		}
		pm := &ir.PassManager{}
		pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
		if err := pm.Run(nn); err != nil {
			b.Fatal(err)
		}
		shared, err := vecir.Lower(nn, vecir.Options{})
		if err != nil {
			b.Fatal(err)
		}
		naive, err := vecir.Lower(nn, vecir.Options{NaiveConv: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(vecir.Analyze(shared.Module.Main()).Rotations), "rot-shared")
			b.ReportMetric(float64(vecir.Analyze(naive.Module.Main()).Rotations), "rot-naive")
		}
	}
}

// Ablation 2: lazy (waterline) vs eager rescaling.
func BenchmarkAblationLazyRescale(b *testing.B) {
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 4})
	for i := 0; i < b.N; i++ {
		nn, _ := nnir.Import(m)
		pm := &ir.PassManager{}
		pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
		if err := pm.Run(nn); err != nil {
			b.Fatal(err)
		}
		if err := nnir.CalibrateReLUBounds(nn.Main(), 2, 1.5, 1); err != nil {
			b.Fatal(err)
		}
		vres, _ := vecir.Lower(nn, vecir.Options{})
		sm, _ := sihe.Lower(vres.Module, sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125})
		res, err := ckksir.Lower(sm, ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true})
		if err != nil {
			b.Fatal(err)
		}
		eager, _ := ckksir.CountOps(res.Module.Main())
		pm2 := &ir.PassManager{}
		pm2.Add(ckksir.LazyRescale(), ir.DCE())
		if err := pm2.Run(res.Module); err != nil {
			b.Fatal(err)
		}
		lazy, _ := ckksir.CountOps(res.Module.Main())
		if i == 0 {
			b.ReportMetric(float64(eager["ckks.rescale"]), "rescales-eager")
			b.ReportMetric(float64(lazy["ckks.rescale"]), "rescales-lazy")
		}
	}
}

// Ablation 3: minimal-level vs full-level bootstrapping (cost model).
func BenchmarkAblationBootstrapLevel(b *testing.B) {
	cal := costmodel.DefaultCalibration()
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 4})
	for i := 0; i < b.N; i++ {
		var totals [2]float64
		for j, slack := range []int{0, 4} {
			cfg := experiments.ReducedConfig()
			cfg.CKKS.ExpertSlack = slack
			c, err := core.Compile(m, cfg)
			if err != nil {
				b.Fatal(err)
			}
			model := &costmodel.Model{Cal: cal, LogN: 16, Alpha: 2, K: 2}
			totals[j] = model.InferenceCost(c.CKKS).Bootstrap
		}
		if i == 0 {
			b.ReportMetric(totals[1]/totals[0], "fullvsmin-ratio")
		}
	}
}

// Ablation 4: key-switching digit count (dnum sweep, runtime measured).
func BenchmarkAblationKeySwitchDigits(b *testing.B) {
	for _, logP := range [][]int{{60}, {60, 60}, {50, 50, 50}} {
		name := map[int]string{1: "alpha1", 2: "alpha2", 3: "alpha3"}[len(logP)]
		b.Run(name, func(b *testing.B) {
			params, err := ckks.NewParameters(ckks.ParametersLiteral{
				LogN: 12, LogQ: []int{50, 40, 40, 40, 40, 40, 40}, LogP: logP, LogScale: 40,
			})
			if err != nil {
				b.Fatal(err)
			}
			kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(1))
			sk := kg.GenSecretKey()
			keys := &ckks.EvaluationKeySet{Rlk: kg.GenRelinearizationKey(sk)}
			enc := ckks.NewEncoder(params)
			encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
			eval := ckks.NewEvaluator(params, keys)
			vals := make([]float64, params.Slots())
			for i := range vals {
				vals[i] = 0.5
			}
			pt, _ := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
			ct := encryptor.Encrypt(pt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eval.MulRelin(ct, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Runtime microbenchmarks (calibration substrate) --------------------

func BenchmarkRuntimeNTT(b *testing.B) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 13, LogQ: []int{50, 40, 40}, LogP: []int{50}, LogScale: 40})
	if err != nil {
		b.Fatal(err)
	}
	rQ := params.RingQ()
	p := rQ.NewPoly(rQ.MaxLevel())
	s := ring.NewSampler(rQ, ring.SeedFromInt(2))
	s.Uniform(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rQ.NTT(p, p)
	}
}

func BenchmarkRuntimeRotate(b *testing.B) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 12, LogQ: []int{50, 40, 40, 40}, LogP: []int{50, 50}, LogScale: 40})
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(3))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{Galois: kg.GenGaloisKeys([]int{1}, false, sk)}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
	eval := ckks.NewEvaluator(params, keys)
	vals := make([]float64, params.Slots())
	pt, _ := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	ct := encryptor.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Rotate(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeBootstrap(b *testing.B) {
	logQ := []int{60, 40, 40}
	for i := 0; i < 12; i++ {
		logQ = append(logQ, 60)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 8, LogQ: logQ, LogP: []int{61, 61}, LogScale: 40})
	if err != nil {
		b.Fatal(err)
	}
	bt, err := bootstrap.NewBootstrapper(params, bootstrap.Parameters{}, params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(6))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys(bt.RequiredRotations(), true, sk),
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
	eval := ckks.NewEvaluator(params, keys)
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = 0.25
	}
	pt, _ := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	ct := encryptor.Encrypt(pt)
	eval.DropLevel(ct, ct.Level())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bt.Bootstrap(eval, ct, bt.MaxOutputLevel()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Limb-level microbenchmarks (parallel ring engine) -------------------
//
// These isolate the RNS-limb hot loops that internal/par distributes across
// the worker pool, so limb-level speedups (and allocation hygiene) are
// visible separately from the end-to-end Figure 6 numbers. Run with
// ACE_WORKERS=1 and ACE_WORKERS=N to compare serial vs parallel.

func BenchmarkNTT(b *testing.B) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 13, LogQ: []int{50, 40, 40, 40, 40, 40}, LogP: []int{50}, LogScale: 40})
	if err != nil {
		b.Fatal(err)
	}
	rQ := params.RingQ()
	p := rQ.NewPoly(rQ.MaxLevel())
	s := ring.NewSampler(rQ, ring.SeedFromInt(2))
	s.Uniform(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rQ.NTT(p, p)
	}
}

func keySwitchBenchSetup(b *testing.B) (*ckks.Evaluator, *ckks.Ciphertext) {
	b.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 12, LogQ: []int{50, 40, 40, 40, 40, 40}, LogP: []int{50, 50}, LogScale: 40,
	})
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(7))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys([]int{1, 2, 4, 8}, false, sk),
	}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
	eval := ckks.NewEvaluator(params, keys)
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = float64(i%13)/13 - 0.5
	}
	pt, err := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	return eval, encryptor.Encrypt(pt)
}

// BenchmarkKeySwitch measures one ciphertext multiplication plus
// relinearisation: tensor product, digit decomposition, ModUp, MulAcc
// against the key, ModDown.
func BenchmarkKeySwitch(b *testing.B) {
	eval, ct := keySwitchBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.MulRelin(ct, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHoistedRotations measures a batch of rotations sharing one
// hoisted digit decomposition (the baby-step pattern of BSGS linear
// transforms and the bootstrapping DFTs).
func BenchmarkHoistedRotations(b *testing.B) {
	eval, ct := keySwitchBenchSetup(b)
	ks := []int{1, 2, 4, 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RotateHoisted(ct, ks); err != nil {
			b.Fatal(err)
		}
	}
}

// ReLU polynomial evaluation (the dominant compute outside bootstrap).
func BenchmarkRuntimeReLU(b *testing.B) {
	logQ := []int{50}
	for i := 0; i < 16; i++ {
		logQ = append(logQ, 40)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{LogN: 10, LogQ: logQ, LogP: []int{50, 50}, LogScale: 40})
	if err != nil {
		b.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(4))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{Rlk: kg.GenRelinearizationKey(sk)}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
	eval := ckks.NewEvaluator(params, keys)
	stages, err := poly.SignComposite(0.125, 6)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = float64(i%17)/17 - 0.5
	}
	pt, _ := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	ct := encryptor.Encrypt(pt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.EvaluateReLU(ct, stages, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func shorten(s string) string {
	var b []byte
	for i := 0; i < len(s) && len(b) < 10; i++ {
		c := s[i]
		if c == ' ' || c == '(' || c == ')' || c == '*' {
			continue
		}
		b = append(b, c)
	}
	return string(b)
}
