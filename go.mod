module antace

go 1.22
