#!/usr/bin/env bash
# bench_batch.sh — cross-request slot batching throughput experiment.
#
# Serves the reduced ResNet-20 with the ring degree forced to 2^LOGN so
# the program has spare slot lanes, then measures inferences/sec under
# CLIENTS concurrent clients twice: batched (-batch-max) and unbatched.
# Both daemons run the SAME forced ring on ONE worker, so the ratio
# isolates what coalescing buys. acebench -load extends its window until
# at least one inference completes, so rates are meaningful even when a
# single inference takes longer than WINDOW.
#
# Best-of-RUNS per mode; the summary lands in OUT (BENCH_batch.json).
# The full run is slow: one encrypted inference of the reduced
# ResNet-20 at logN 12 takes ~12.5 minutes on a single-core box, and
# each of the 2*RUNS phases pays one inference plus one client keygen.
#
# Tunables (env): MODEL LOGN CLIENTS BATCH_MAX BATCH_WINDOW WINDOW RUNS OUT
set -euo pipefail
cd "$(dirname "$0")/.."

MODEL=${MODEL:-builtin:resnet20}
LOGN=${LOGN:-12}
CLIENTS=${CLIENTS:-8}
BATCH_MAX=${BATCH_MAX:-8}
BATCH_WINDOW=${BATCH_WINDOW:-2s}
WINDOW=${WINDOW:-60s}
RUNS=${RUNS:-3}
OUT=${OUT:-BENCH_batch.json}
REQ_DEADLINE=${REQ_DEADLINE:-35m}

WORKDIR=$(mktemp -d)
ACED_PID=""
cleanup() {
    [ -n "$ACED_PID" ] && kill -TERM "$ACED_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "bench-batch: building binaries" >&2
go build -o "$WORKDIR/aced" ./cmd/aced
go build -o "$WORKDIR/acebench" ./cmd/acebench

# run_one MODE IDX: boot a fresh daemon, drive one load run against it,
# print the load report JSON line.
run_one() {
    local mode=$1 idx=$2
    local addrfile="$WORKDIR/addr.$mode.$idx"
    local batchflags=()
    if [ "$mode" = batched ]; then
        batchflags=(-batch-max "$BATCH_MAX" -batch-window "$BATCH_WINDOW")
    fi
    "$WORKDIR/aced" -addr 127.0.0.1:0 -addr-file "$addrfile" \
        -model "$MODEL" -profile test -force-logn "$LOGN" \
        -workers 1 -queue 32 -deadline 30m -max-deadline 40m \
        -session-budget-mb 16384 \
        -drain-timeout 10s -log-level warn \
        "${batchflags[@]}" >"$WORKDIR/aced.$mode.$idx.log" 2>&1 &
    ACED_PID=$!
    local i
    for i in $(seq 1 120); do
        [ -s "$addrfile" ] && break
        if ! kill -0 "$ACED_PID" 2>/dev/null; then
            echo "bench-batch: aced ($mode #$idx) died at startup:" >&2
            cat "$WORKDIR/aced.$mode.$idx.log" >&2
            exit 1
        fi
        sleep 1
    done
    [ -s "$addrfile" ] || { echo "bench-batch: aced never bound" >&2; exit 1; }
    local url="http://$(cat "$addrfile")"
    echo "bench-batch: $mode run $idx against $url" >&2
    "$WORKDIR/acebench" -load "$url" -clients "$CLIENTS" -duration "$WINDOW" \
        -request-deadline "$REQ_DEADLINE" 2>>"$WORKDIR/load.$mode.$idx.log"
    kill -TERM "$ACED_PID" 2>/dev/null || true
    wait "$ACED_PID" 2>/dev/null || true
    ACED_PID=""
}

rate_of() { # extract inferences_per_sec from a report line
    sed -n 's/.*"inferences_per_sec":\([0-9.eE+-]*\).*/\1/p' <<<"$1"
}

declare -a BATCHED_RUNS UNBATCHED_RUNS
BEST_BATCHED=0
BEST_UNBATCHED=0
for idx in $(seq 1 "$RUNS"); do
    for mode in batched unbatched; do
        rep=$(run_one "$mode" "$idx")
        r=$(rate_of "$rep")
        if [ -z "$r" ]; then
            echo "bench-batch: $mode run $idx produced no report; load log:" >&2
            tail -20 "$WORKDIR/load.$mode.$idx.log" >&2 || true
            exit 1
        fi
        echo "bench-batch: $mode run $idx: $r inferences/sec" >&2
        if [ "$mode" = batched ]; then
            BATCHED_RUNS+=("$rep")
            BEST_BATCHED=$(awk -v a="$BEST_BATCHED" -v b="$r" 'BEGIN{print (b>a)?b:a}')
        else
            UNBATCHED_RUNS+=("$rep")
            BEST_UNBATCHED=$(awk -v a="$BEST_UNBATCHED" -v b="$r" 'BEGIN{print (b>a)?b:a}')
        fi
    done
done

SPEEDUP=$(awk -v b="$BEST_BATCHED" -v u="$BEST_UNBATCHED" 'BEGIN{if (u>0) printf "%.2f", b/u; else print 0}')

join_runs() { local IFS=,; echo "$*"; }

cat >"$OUT" <<EOF
{
  "description": "Serving throughput of cross-request slot batching (internal/batch): $CLIENTS concurrent clients drive one aced worker serving $MODEL with the ring forced to logN=$LOGN, so the program has spare slot lanes. 'batched' coalesces up to $BATCH_MAX requests per fused evaluation (-batch-max $BATCH_MAX -batch-window $BATCH_WINDOW); 'unbatched' is the same daemon, same ring, batching off. Rates are client-observed completed inferences per second from acebench -load (window $WINDOW, extended until the first completion); best of $RUNS runs per mode. The speedup isolates coalescing: per-inference evaluation cost is identical in both modes by construction.",
  "environment": {
    "goos": "$(go env GOOS)",
    "goarch": "$(go env GOARCH)",
    "num_cpu": $(getconf _NPROCESSORS_ONLN),
    "note": "Single-worker daemon; one encrypted inference of the reduced ResNet-20 at logN 12 takes ~12.5 min on this box, so each load phase completes roughly one evaluation wave. Batched waves carry up to $BATCH_MAX requests in one ciphertext."
  },
  "config": {
    "model": "$MODEL",
    "force_logn": $LOGN,
    "clients": $CLIENTS,
    "batch_max": $BATCH_MAX,
    "batch_window": "$BATCH_WINDOW",
    "window": "$WINDOW",
    "runs": $RUNS
  },
  "batched": {
    "best_inferences_per_sec": $BEST_BATCHED,
    "runs": [$(join_runs "${BATCHED_RUNS[@]}")]
  },
  "unbatched": {
    "best_inferences_per_sec": $BEST_UNBATCHED,
    "runs": [$(join_runs "${UNBATCHED_RUNS[@]}")]
  },
  "speedup": $SPEEDUP
}
EOF

echo "bench-batch: batched $BEST_BATCHED vs unbatched $BEST_UNBATCHED inferences/sec -> ${SPEEDUP}x (wrote $OUT)" >&2
