package core

import (
	"testing"

	"antace/internal/ckksir"
	"antace/internal/costmodel"
	"antace/internal/onnx"
	"antace/internal/sihe"
)

func TestCompileAuto(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{Mode: ckksir.BootstrapAlways, IgnoreSecurity: true},
		SkipPoly: true,
	}
	chosen, report, err := CompileAuto(m, cfg, costmodel.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if chosen == nil || chosen.CKKS == nil {
		t.Fatal("no compiled program returned")
	}
	if len(report.Candidates) < 4 {
		t.Fatalf("only %d candidates enumerated", len(report.Candidates))
	}
	var sawChosen, sawDefault bool
	var chosenCost, defaultCost float64
	for _, pc := range report.Candidates {
		if pc.Err != "" {
			continue
		}
		if pc.PredictedSec <= 0 {
			t.Errorf("plan %s: non-positive predicted cost %g", pc.Plan, pc.PredictedSec)
		}
		if pc.Chosen {
			sawChosen, chosenCost = true, pc.PredictedSec
		}
		if pc.Default {
			sawDefault, defaultCost = true, pc.PredictedSec
		}
	}
	if !sawChosen || !sawDefault {
		t.Fatalf("report missing chosen (%v) or default (%v) plan", sawChosen, sawDefault)
	}
	// The search must commit to the global minimum: no surviving
	// candidate may be cheaper than the chosen plan.
	for _, pc := range report.Candidates {
		if pc.Err == "" && pc.PredictedSec < chosenCost {
			t.Fatalf("plan %s (%.3fs) cheaper than chosen %s (%.3fs)",
				pc.Plan, pc.PredictedSec, report.ChosenPlan, chosenCost)
		}
	}
	if chosenCost > defaultCost {
		t.Fatalf("chosen plan (%.3fs) worse than default (%.3fs)", chosenCost, defaultCost)
	}
	if report.PredictedSpeedup < 1 {
		t.Fatalf("predicted speedup %.3f below 1", report.PredictedSpeedup)
	}
	// Candidates are reported cheapest-first with failures at the end.
	for i := 1; i < len(report.Candidates); i++ {
		a, b := report.Candidates[i-1], report.Candidates[i]
		if a.Err == "" && b.Err == "" && a.PredictedSec > b.PredictedSec {
			t.Fatalf("candidates not sorted: %s (%.3f) before %s (%.3f)",
				a.Plan, a.PredictedSec, b.Plan, b.PredictedSec)
		}
		if a.Err != "" && b.Err == "" {
			t.Fatal("failed candidate sorted before a successful one")
		}
	}
}

// TestCompileAutoHonoursLegacyNaive: a caller still using the NaiveConv
// bool gets it folded into the default plan, not silently dropped.
func TestCompileAutoHonoursLegacyNaive(t *testing.T) {
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{Mode: ckksir.BootstrapAlways, IgnoreSecurity: true},
		SkipPoly: true,
	}
	cfg.Vec.NaiveConv = true
	_, report, err := CompileAuto(m, cfg, costmodel.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if report.DefaultPlan != "naive/boot-always" {
		t.Fatalf("default plan %q, want naive/boot-always", report.DefaultPlan)
	}
}
