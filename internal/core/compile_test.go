package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/tensor"
	"antace/internal/vm"
)

// tinyReluModel builds conv3x3 -> relu -> gap -> fc on a small input:
// the smallest model exercising every lowering path including the
// nonlinear approximation.
func tinyReluModel(t *testing.T, inputSize, channels, classes int) *onnx.Model {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	b := onnx.NewBuilder("tiny_relu")
	x := b.Input("image", 1, 1, int64(inputSize), int64(inputSize))
	w1 := tensor.New(channels, 1, 3, 3)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.4
	}
	bias1 := tensor.New(channels)
	for i := range bias1.Data {
		bias1.Data[i] = rng.NormFloat64() * 0.1
	}
	cur := b.Conv(x, b.Weight("conv.weight", w1), b.Weight("conv.bias", bias1), 1, 1)
	cur = b.Relu(cur)
	cur = b.GlobalAveragePool(cur)
	cur = b.Flatten(cur)
	wf := tensor.New(classes, channels)
	for i := range wf.Data {
		wf.Data[i] = rng.NormFloat64()
	}
	bf := tensor.New(classes)
	cur = b.Gemm(cur, b.Weight("fc.weight", wf), b.Weight("fc.bias", bf))
	b.Output(cur, 1, int64(classes))
	m := b.Model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func randInput(shape []int, seed uint64) *tensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 23))
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	return x
}

func TestCompilePipelineStages(t *testing.T) {
	m := tinyReluModel(t, 4, 2, 3)
	c, err := Compile(m, Config{
		CKKS: ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.NN == nil || c.Vec == nil || c.SIHE == nil || c.CKKS == nil || c.Poly == nil {
		t.Fatal("missing pipeline stage output")
	}
	levels := c.LevelBreakdown()
	for _, l := range []string{"NN", "VECTOR", "SIHE", "CKKS", "POLY"} {
		if _, ok := levels[l]; !ok {
			t.Fatalf("no timing recorded for level %s", l)
		}
	}
	// Simulator must track the plaintext reference closely.
	x := randInput([]int{1, 1, 4, 4}, 1)
	want, err := c.RunPlain(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.RunSim(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 0.15 {
			t.Fatalf("sim output %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestEndToEndEncryptedInference(t *testing.T) {
	m := tinyReluModel(t, 4, 2, 3)
	c, err := Compile(m, Config{
		SIHE: siheOptsFast(),
		CKKS: ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true, LogScale: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(c.Summary())

	machine, client, err := vm.New(c.CKKS, c.VectorLen(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput([]int{1, 1, 4, 4}, 2)
	want, err := c.RunSim(x) // encrypted result should match the simulator
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.RunPlain(x)
	if err != nil {
		t.Fatal(err)
	}

	packed, err := c.Vec.InLayout.Pack(x.Data)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(packed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(c.CKKS.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	vec := client.Decrypt(out)
	got, err := c.Vec.OutLayout.Unpack(vec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got[i]-want.Data[i]) > 1e-2 {
			t.Fatalf("encrypted output %d: %g, simulator %g, plaintext %g", i, got[i], want.Data[i], plain.Data[i])
		}
		if math.Abs(got[i]-plain.Data[i]) > 0.2 {
			t.Fatalf("encrypted output %d drifted from plaintext: %g vs %g", i, got[i], plain.Data[i])
		}
	}
}

func TestEndToEndEncryptedWithBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrap end-to-end test is slow")
	}
	m := tinyReluModel(t, 4, 2, 3)
	c, err := Compile(m, Config{
		SIHE: siheOptsFast(),
		CKKS: ckksir.Options{Mode: ckksir.BootstrapAlways, IgnoreSecurity: true, LogScale: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.CKKS.Bootstraps == 0 {
		t.Fatal("expected at least one bootstrap")
	}
	t.Log(c.Summary())

	machine, client, err := vm.New(c.CKKS, c.VectorLen(), nil)
	if err != nil {
		t.Fatal(err)
	}
	x := randInput([]int{1, 1, 4, 4}, 3)
	want, err := c.RunSim(x)
	if err != nil {
		t.Fatal(err)
	}
	packed, _ := c.Vec.InLayout.Pack(x.Data)
	ct, err := client.Encrypt(packed)
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(c.CKKS.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Vec.OutLayout.Unpack(client.Decrypt(out))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got[i]-want.Data[i]) > 5e-2 {
			t.Fatalf("encrypted output %d: %g vs simulator %g", i, got[i], want.Data[i])
		}
	}
}

// siheOptsFast keeps the sign composite shallow for fast tests.
func siheOptsFast() sihe.Options {
	return sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125}
}

// TestEndToEndSigmoidMLP exercises the Chebyshev nonlinearity path: a
// small gemm->sigmoid->gemm MLP runs fully encrypted.
func TestEndToEndSigmoidMLP(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	b := onnx.NewBuilder("mlp_sigmoid")
	x := b.Input("image", 1, 8)
	w1 := tensor.New(6, 8)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.5
	}
	b1 := tensor.New(6)
	h := b.Gemm(x, b.Weight("w1", w1), b.Weight("b1", b1))
	h = b.Node("Sigmoid", []string{h})
	w2 := tensor.New(3, 6)
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.5
	}
	out := b.Gemm(h, b.Weight("w2", w2), b.Weight("b2", tensor.New(3)))
	b.Output(out, 1, 3)
	m := b.Model()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	c, err := Compile(m, Config{
		SIHE: sihe.Options{SmoothDegree: 15},
		CKKS: ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true, LogScale: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	machine, client, err := vm.New(c.CKKS, c.VectorLen(), nil)
	if err != nil {
		t.Fatal(err)
	}
	img := randInput([]int{1, 8}, 5)
	want, err := c.RunPlain(img)
	if err != nil {
		t.Fatal(err)
	}
	packed, _ := c.Vec.InLayout.Pack(img.Data)
	ct, err := client.Encrypt(packed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(c.CKKS.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Vec.OutLayout.Unpack(client.Decrypt(res))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got[i]-want.Data[i]) > 2e-2 {
			t.Fatalf("output %d: encrypted %g vs plaintext %g", i, got[i], want.Data[i])
		}
	}
}
