package core

import (
	"fmt"
	"sort"

	"antace/internal/ckksir"
	"antace/internal/costmodel"
	"antace/internal/onnx"
	"antace/internal/vecir"
)

// Plan is one point in the compilation search space the auto-layout
// search enumerates: a BSGS convolution split crossed with a bootstrap
// placement policy. The per-plan knobs are the ones the paper leaves to
// the expert; everything else (levels, scales, keys) the compiler
// already derives.
type Plan struct {
	Conv vecir.ConvMode       `json:"-"`
	Boot ckksir.BootstrapMode `json:"-"`
}

func bootModeName(m ckksir.BootstrapMode) string {
	switch m {
	case ckksir.BootstrapNever:
		return "boot-never"
	case ckksir.BootstrapAlways:
		return "boot-always"
	}
	return "boot-auto"
}

// Name is the plan's stable identifier in reports and benchmarks.
func (p Plan) Name() string { return p.Conv.String() + "/" + bootModeName(p.Boot) }

// EnumeratePlans lists the candidate plans: every convolution split
// crossed with every bootstrap policy. The default (hand-picked) plan —
// channel-giant babies with the caller's bootstrap mode — is always
// first, so reports can show chosen-vs-default at a glance.
func EnumeratePlans(defaultBoot ckksir.BootstrapMode) []Plan {
	plans := []Plan{{Conv: vecir.ConvChannelGiant, Boot: defaultBoot}}
	for _, bm := range []ckksir.BootstrapMode{ckksir.BootstrapAlways, ckksir.BootstrapAuto, ckksir.BootstrapNever} {
		for _, cm := range vecir.ConvModes() {
			p := Plan{Conv: cm, Boot: bm}
			if p == plans[0] {
				continue
			}
			plans = append(plans, p)
		}
	}
	return plans
}

// PlanCost is one candidate's evaluation under the calibrated model.
type PlanCost struct {
	Plan         string  `json:"plan"`
	PredictedSec float64 `json:"predicted_sec"`
	LogN         int     `json:"log_n"`
	Levels       int     `json:"levels"`
	Bootstraps   int     `json:"bootstraps"`
	Rotations    int     `json:"rotations"`
	Chosen       bool    `json:"chosen"`
	Default      bool    `json:"default"`
	// Err records why a candidate could not be compiled (and was skipped).
	Err string `json:"error,omitempty"`
}

// PlanReport is the outcome of an auto-layout search.
type PlanReport struct {
	Candidates []PlanCost `json:"candidates"`
	// ChosenPlan / DefaultPlan name the winner and the hand-picked
	// baseline; PredictedSpeedup = default predicted / chosen predicted.
	ChosenPlan       string  `json:"chosen_plan"`
	DefaultPlan      string  `json:"default_plan"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	CalibrationSrc   string  `json:"calibration_source"`
}

// CompileAuto runs the plan search: it compiles every candidate plan,
// prices each schedule under the calibrated cost model, and commits to
// the cheapest. cfg supplies every non-searched option; cfg.Vec.Conv and
// cfg.CKKS.Mode give the default plan the search is measured against.
// Candidates that fail to compile (e.g. BootstrapNever overflowing the
// modulus chain at full scale) are recorded and skipped rather than
// aborting the search.
func CompileAuto(model *onnx.Model, cfg Config, cal costmodel.Calibration) (*Compiled, *PlanReport, error) {
	if cfg.Vec.NaiveConv {
		cfg.Vec.Conv = vecir.ConvNaive
		cfg.Vec.NaiveConv = false
	}
	defaultPlan := Plan{Conv: cfg.Vec.Conv, Boot: cfg.CKKS.Mode}
	report := &PlanReport{DefaultPlan: defaultPlan.Name(), CalibrationSrc: cal.Source}

	type candidate struct {
		plan Plan
		c    *Compiled
		cost float64
	}
	var best *candidate
	for _, p := range EnumeratePlans(cfg.CKKS.Mode) {
		pcfg := cfg
		pcfg.Vec.Conv = p.Conv
		pcfg.CKKS.Mode = p.Boot
		pc := PlanCost{Plan: p.Name(), Default: p == defaultPlan}
		c, err := Compile(model, pcfg)
		if err != nil {
			pc.Err = err.Error()
			report.Candidates = append(report.Candidates, pc)
			continue
		}
		m := costmodel.GeometryOf(c.CKKS).Model(cal)
		pc.PredictedSec = m.InferenceCost(c.CKKS).Total()
		pc.LogN = c.CKKS.Literal.LogN
		pc.Levels = len(c.CKKS.Literal.LogQ)
		pc.Bootstraps = c.CKKS.Bootstraps
		pc.Rotations = vecir.Analyze(c.Vec.Module.Main()).Rotations
		report.Candidates = append(report.Candidates, pc)
		if best == nil || pc.PredictedSec < best.cost {
			best = &candidate{plan: p, c: c, cost: pc.PredictedSec}
		}
	}
	if best == nil {
		return nil, report, fmt.Errorf("core: no candidate plan compiled")
	}
	report.ChosenPlan = best.plan.Name()
	for i := range report.Candidates {
		pc := &report.Candidates[i]
		pc.Chosen = pc.Plan == report.ChosenPlan && pc.Err == ""
		if pc.Default && pc.Err == "" && best.cost > 0 {
			report.PredictedSpeedup = pc.PredictedSec / best.cost
		}
	}
	sort.SliceStable(report.Candidates, func(i, j int) bool {
		a, b := report.Candidates[i], report.Candidates[j]
		if (a.Err == "") != (b.Err == "") {
			return a.Err == ""
		}
		return a.PredictedSec < b.PredictedSec
	})
	return best.c, report, nil
}
