// Package core is the compiler driver — the paper's primary
// contribution glued end to end: ONNX front end → NN IR → VECTOR IR →
// SIHE IR → CKKS IR → POLY IR, with per-level timing (Figure 5),
// automatic ReLU-bound calibration, security parameter selection
// (Table 10), and handles for running the result on the real FHE
// runtime or the plaintext reference.
package core

import (
	"fmt"
	"time"

	"antace/internal/ckksir"
	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/polyir"
	"antace/internal/sihe"
	"antace/internal/tensor"
	"antace/internal/vecir"
)

// LowerPoly expands a compiled CKKS module into the POLY IR with its
// fusion passes applied.
func LowerPoly(res *ckksir.Result) (*ir.Module, error) {
	return polyir.LowerFromCKKS(res)
}

// Config assembles the options of every stage.
type Config struct {
	Vec  vecir.Options
	SIHE sihe.Options
	CKKS ckksir.Options
	// CalibrationSamples drives ReLU bound calibration (0 = 4 samples).
	CalibrationSamples int
	// CalibrationHeadroom multiplies the observed ReLU input maxima
	// (0 = 1.5).
	CalibrationHeadroom float64
	// Expert compiles the hand-tuned baseline configuration (used for
	// the paper's Figures 6 and 7 comparisons): the same multiplexed
	// convolutions as Lee et al. [35], but with a hand-provisioned level
	// budget (slack) instead of the compiler's tight per-segment
	// minimum, full-chain key generation, and a coarser bootstrap DFT
	// grouping (modelled in the cost model).
	Expert bool
	// SkipPoly disables the POLY IR lowering (used by latency-sensitive
	// callers that only need the executable CKKS form).
	SkipPoly bool
	Seed     uint64
}

// Compiled is the result of a full compilation.
type Compiled struct {
	Name    string
	NN      *ir.Module
	Vec     *vecir.Result
	SIHE    *ir.Module
	CKKS    *ckksir.Result
	Poly    *ir.Module
	Timings []ir.PassTiming
}

// VectorLen returns the slot-vector length of the compiled program.
func (c *Compiled) VectorLen() int { return c.Vec.InLayout.L }

// Compile runs the whole pipeline on an ONNX model.
func Compile(model *onnx.Model, cfg Config) (*Compiled, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Expert {
		if cfg.CKKS.ExpertSlack == 0 {
			// A hand-provisioned chain keeps a generic level budget
			// rather than the compiler's tight per-segment minimum.
			cfg.CKKS.ExpertSlack = 1
		}
	}
	out := &Compiled{Name: model.Graph.Name}
	record := func(level, pass string, start time.Time) {
		out.Timings = append(out.Timings, ir.PassTiming{Pass: pass, Level: level, Duration: time.Since(start)})
	}

	// NN IR: import, fuse, calibrate.
	start := time.Now()
	nn, err := nnir.Import(model)
	if err != nil {
		return nil, err
	}
	record("NN", "import", start)
	start = time.Now()
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		return nil, err
	}
	record("NN", "fuse+dce", start)
	start = time.Now()
	if err := nnir.CalibrateReLUBounds(nn.Main(), cfg.CalibrationSamples, cfg.CalibrationHeadroom, cfg.Seed); err != nil {
		return nil, err
	}
	record("NN", "calibrate-relu", start)
	out.NN = nn

	// VECTOR IR.
	start = time.Now()
	vres, err := vecir.Lower(nn, cfg.Vec)
	if err != nil {
		return nil, err
	}
	record("VECTOR", "lower", start)
	start = time.Now()
	pmv := &ir.PassManager{}
	pmv.Add(ir.CSE(), ir.DCE())
	if err := pmv.Run(vres.Module); err != nil {
		return nil, err
	}
	record("VECTOR", "cse+dce", start)
	out.Vec = vres

	// SIHE IR.
	start = time.Now()
	sm, err := sihe.Lower(vres.Module, cfg.SIHE)
	if err != nil {
		return nil, err
	}
	record("SIHE", "lower", start)
	out.SIHE = sm

	// CKKS IR.
	start = time.Now()
	cres, err := ckksir.Lower(sm, cfg.CKKS)
	if err != nil {
		return nil, err
	}
	record("CKKS", "lower", start)
	start = time.Now()
	pmc := &ir.PassManager{}
	pmc.Add(ckksir.LazyRescale(), ir.DCE())
	if err := pmc.Run(cres.Module); err != nil {
		return nil, err
	}
	record("CKKS", "lazy-rescale", start)
	out.CKKS = cres

	// POLY IR (analysis and code generation substrate).
	if !cfg.SkipPoly {
		start = time.Now()
		pm, err := LowerPoly(cres)
		if err != nil {
			return nil, err
		}
		record("POLY", "lower+fuse", start)
		out.Poly = pm
	}
	return out, nil
}

// RunPlain executes the unencrypted reference on an input image.
func (c *Compiled) RunPlain(image *tensor.Tensor) (*tensor.Tensor, error) {
	f := c.NN.Main()
	return nnir.Run(f, map[string]*tensor.Tensor{f.Params[0].Name: image})
}

// RunSim executes the SIHE-level simulator: identical arithmetic to the
// encrypted run (including the polynomial ReLU) but without noise. Used
// by the accuracy experiments in place of hour-long FHE runs.
func (c *Compiled) RunSim(image *tensor.Tensor) (*tensor.Tensor, error) {
	packed, err := c.Vec.InLayout.Pack(image.Data)
	if err != nil {
		return nil, err
	}
	outVec, err := sihe.Run(c.SIHE.Main(), packed)
	if err != nil {
		return nil, err
	}
	vals, err := c.Vec.OutLayout.Unpack(outVec)
	if err != nil {
		return nil, err
	}
	return tensor.FromData(vals, c.Vec.OutLayout.C), nil
}

// LevelBreakdown aggregates compile time per IR level (Figure 5).
func (c *Compiled) LevelBreakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range c.Timings {
		out[t.Level] += t.Duration
	}
	return out
}

// Summary prints headline statistics.
func (c *Compiled) Summary() string {
	vecStats := vecir.Analyze(c.Vec.Module.Main())
	return fmt.Sprintf("%s: vecLen=%d rotations=%d (distinct %d) mults=%d relus=%d | logN=%d chain=%d levels bootstraps=%d keys(rot)=%d",
		c.Name, c.VectorLen(), vecStats.Rotations, vecStats.DistinctRotations, vecStats.Mults, vecStats.ReLUs,
		c.CKKS.Literal.LogN, len(c.CKKS.Literal.LogQ), c.CKKS.Bootstraps, len(c.CKKS.Rotations))
}
