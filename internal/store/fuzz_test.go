package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzStoreReplay feeds arbitrary bytes through log replay and
// snapshot unframing: any input must yield records or a typed error,
// never a panic or an allocation driven by forged length fields.
func FuzzStoreReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(append([]byte(nil), logMagic...))
	valid := append([]byte(nil), logMagic...)
	valid = binary.LittleEndian.AppendUint32(valid, 5)
	valid = binary.LittleEndian.AppendUint32(valid, crc32.Checksum([]byte("hello"), crcTable))
	valid = append(valid, []byte("hello")...)
	f.Add(valid)
	f.Add(valid[:len(valid)-2])              // torn tail
	f.Add(append(valid, 0xFF, 0xFF, 0xFF))   // trailing garbage
	huge := append([]byte(nil), logMagic...) // forged 4 GiB length
	huge = binary.LittleEndian.AppendUint32(huge, 0xFFFFFFF0)
	huge = append(huge, 0, 0, 0, 0)
	f.Add(huge)
	snap := append([]byte(nil), snapMagic...)
	snap = binary.LittleEndian.AppendUint32(snap, 3)
	snap = binary.LittleEndian.AppendUint32(snap, crc32.Checksum([]byte("abc"), crcTable))
	f.Add(append(snap, []byte("abc")...))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, good, err := Replay(data)
		if err == nil && len(data) > 0 && good != int64(len(data)) {
			t.Fatalf("clean replay consumed %d of %d bytes", good, len(data))
		}
		// Round-trip invariant: whatever replayed intact must survive a
		// rewrite + replay unchanged.
		if len(records) > 0 {
			img := append([]byte(nil), logMagic...)
			for _, r := range records {
				img = binary.LittleEndian.AppendUint32(img, uint32(len(r)))
				img = binary.LittleEndian.AppendUint32(img, crc32.Checksum(r, crcTable))
				img = append(img, r...)
			}
			again, _, err := Replay(img)
			if err != nil || len(again) != len(records) {
				t.Fatalf("rewritten image failed replay: %d/%d records, %v", len(again), len(records), err)
			}
			for i := range records {
				if !bytes.Equal(again[i], records[i]) {
					t.Fatalf("record %d changed across rewrite", i)
				}
			}
		}
		_, _ = Unframe(data)
	})
}
