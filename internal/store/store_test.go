package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"antace/internal/fault"
)

func openT(t *testing.T, path string) (*Log, [][]byte) {
	t.Helper()
	l, recs, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{0xAB}, 4096)}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	_, got := openT(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestLogTornTailHealed simulates a crash mid-append by truncating the
// file inside the last frame: replay must surface every earlier record
// and OpenLog must truncate the tail so subsequent appends are clean.
func TestLogTornTailHealed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, _ := openT(t, path)
	if err := l.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("torn-away")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, _, rerr := Replay(data[:len(data)-4]); !errors.Is(rerr, ErrTorn) {
		t.Fatalf("torn tail replayed as %v, want ErrTorn", rerr)
	}

	l2, recs := openT(t, path)
	if len(recs) != 1 || string(recs[0]) != "keep-me" {
		t.Fatalf("healed replay got %q", recs)
	}
	if err := l2.Append([]byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, recs = openT(t, path)
	if len(recs) != 2 || string(recs[1]) != "after-heal" {
		t.Fatalf("post-heal replay got %q", recs)
	}
}

// TestLogCorruptRecordRejected flips a payload bit: replay must stop at
// the corrupt record with a typed error, and OpenLog must refuse to
// heal it silently.
func TestLogCorruptRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, _ := openT(t, path)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	recs, _, rerr := Replay(data)
	if !errors.Is(rerr, ErrCorrupt) {
		t.Fatalf("corrupt record replayed as %v, want ErrCorrupt", rerr)
	}
	if len(recs) != 1 || string(recs[0]) != "first" {
		t.Fatalf("intact prefix %q", recs)
	}
	if _, _, err := OpenLog(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLog healed a corrupt record: %v", err)
	}
}

// TestLogInjectedTornWrite arms store.write.torn: the append must fail
// with the injected error, the file must roll back to the last good
// record, and the next append must succeed cleanly.
func TestLogInjectedTornWrite(t *testing.T) {
	if err := fault.Arm(fault.StoreWriteTorn + ":1:0"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()

	path := filepath.Join(t.TempDir(), "j.log")
	l, _ := openT(t, path)
	if err := l.Append(bytes.Repeat([]byte("x"), 64)); err == nil {
		t.Fatal("armed torn write did not fail the append")
	}
	if err := l.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs := openT(t, path)
	if len(recs) != 1 || string(recs[0]) != "recovered" {
		t.Fatalf("replay after torn write got %q", recs)
	}
}

func TestLogRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.log")
	l, _ := openT(t, path)
	for _, r := range []string{"a", "b", "c", "d"} {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Rewrite([][]byte{[]byte("b"), []byte("d")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("e")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs := openT(t, path)
	if len(recs) != 3 || string(recs[0]) != "b" || string(recs[2]) != "e" {
		t.Fatalf("compacted replay got %q", recs)
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.snap")
	payload := bytes.Repeat([]byte{1, 2, 3}, 100)
	if err := WriteFile(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot payload mismatch")
	}

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot read as %v, want ErrCorrupt", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrTorn) {
		t.Fatalf("truncated snapshot read as %v, want ErrTorn", err)
	}

	// Overwrite replaces atomically: the new payload wins in full.
	if err := WriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadFile(path); err != nil || string(got) != "v2" {
		t.Fatalf("overwrite read %q, %v", got, err)
	}
}
