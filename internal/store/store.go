// Package store is the serving layer's crash-safe persistence
// primitive set: an append-only log of length+CRC-framed records with
// torn-write detection on replay, and atomic whole-file snapshots
// (temp file + fsync + rename). It has no dependencies beyond the
// standard library and makes exactly two durability promises:
//
//  1. A record returned by Replay was written completely and matches
//     its checksum — a crash mid-append leaves a torn tail that replay
//     detects and reports (the caller usually truncates it away), never
//     a silently short or bit-flipped record.
//  2. A snapshot file read back by ReadFile is either the complete
//     previous version or the complete new version — rename is the
//     commit point, so a crash mid-write leaves only an ignored temp
//     file.
//
// Callers own record semantics; store moves opaque byte slices.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"antace/internal/fault"
)

// ErrTorn marks a record cut short by a crash mid-write: the frame
// header or body extends past the end of the file. Everything before
// the torn record is intact; the standard recovery is to truncate the
// tail (OpenLog does this automatically).
var ErrTorn = errors.New("store: torn record")

// ErrCorrupt marks a record whose checksum or framing is wrong: the
// bytes are all there but do not hash to what was written. Unlike a
// torn tail this is not an expected crash artifact, so it is never
// healed silently.
var ErrCorrupt = errors.New("store: corrupt record")

// logMagic opens every log file; a file that does not start with it is
// rejected as corrupt rather than misparsed as frames.
var logMagic = []byte("ACELOG1\n")

// maxRecordLen bounds a single record frame. Evaluation-key bundles are
// the largest records the serving layer writes (hundreds of MB at
// deployment scale), so the cap is generous; its real job is to make a
// corrupted length field fail fast instead of driving a giant
// allocation.
const maxRecordLen = 1 << 31

// crcTable is Castagnoli, hardware-accelerated on the platforms the
// daemon targets.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame layout: u32 little-endian payload length, u32 CRC32-C of the
// payload, payload bytes.
const frameHeader = 8

// Replay parses a log image into its records. It returns every intact
// record plus the byte offset where parsing stopped; err is nil on a
// clean end, ErrTorn (wrapped) when the file ends inside a frame, and
// ErrCorrupt (wrapped) on a checksum or framing violation. Records
// alias data.
func Replay(data []byte) (records [][]byte, good int64, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < len(logMagic) {
		return nil, 0, fmt.Errorf("%w: short magic", ErrTorn)
	}
	if string(data[:len(logMagic)]) != string(logMagic) {
		return nil, 0, fmt.Errorf("%w: bad log magic", ErrCorrupt)
	}
	off := int64(len(logMagic))
	rest := data[len(logMagic):]
	for len(rest) > 0 {
		if len(rest) < frameHeader {
			return records, off, fmt.Errorf("%w: %d header bytes at offset %d", ErrTorn, len(rest), off)
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxRecordLen {
			return records, off, fmt.Errorf("%w: implausible record length %d at offset %d", ErrCorrupt, n, off)
		}
		if int64(len(rest))-frameHeader < n {
			return records, off, fmt.Errorf("%w: record of %d bytes cut at offset %d", ErrTorn, n, off)
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(payload, crcTable) != sum {
			return records, off, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
		}
		records = append(records, payload)
		off += frameHeader + n
		rest = rest[frameHeader+n:]
	}
	return records, off, nil
}

// Image builds a complete in-memory ACELOG1 log image from records:
// magic followed by one CRC-framed record per entry. It is the
// log-shipping primitive — a shard streams replication batches to its
// successor as images, so the receive side applies them with Replay and
// inherits the same CRC checking and torn-tail tolerance a crashed
// local log gets.
func Image(records [][]byte) []byte {
	n := len(logMagic)
	for _, rec := range records {
		n += frameHeader + len(rec)
	}
	buf := make([]byte, 0, n)
	buf = append(buf, logMagic...)
	for _, rec := range records {
		buf = AppendFrame(buf, rec)
	}
	return buf
}

// AppendFrame appends one CRC-framed record to an image under
// construction (buf must already start with the magic, e.g. from Image
// or ImageHeader).
func AppendFrame(buf, rec []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec, crcTable))
	return append(buf, rec...)
}

// ImageHeader returns the bytes every log image starts with.
func ImageHeader() []byte { return append([]byte(nil), logMagic...) }

// Log is an append-only record log backed by one file. Append frames,
// checksums and fsyncs each record; methods are safe for one writer
// (the serving layer serializes appends itself).
type Log struct {
	f    *os.File
	path string
	size int64
	// broken is a sticky error set when the open handle no longer
	// matches the on-disk image (compaction renamed a new image in but
	// reopening it failed). Every later operation refuses with it —
	// appending to the unlinked old inode would be silently lost across
	// a restart.
	broken error
}

// OpenLog opens (creating if absent) the log at path and replays it.
// A torn tail — the signature of a crash mid-append — is truncated
// away and the intact prefix returned; a checksum violation anywhere
// is returned as ErrCorrupt with the intact prefix, leaving the file
// untouched for forensics. The returned records are copies and remain
// valid after further appends.
func OpenLog(path string) (*Log, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o600)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	records, good, rerr := Replay(data)
	out := make([][]byte, len(records))
	for i, r := range records {
		out[i] = append([]byte(nil), r...)
	}
	l := &Log{f: f, path: path, size: good}
	switch {
	case rerr == nil:
	case errors.Is(rerr, ErrTorn):
		// Crash artifact: drop the tail and keep going.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	default:
		f.Close()
		return nil, out, rerr
	}
	if len(data) == 0 {
		if err := l.writeMagic(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(l.size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, out, nil
}

func (l *Log) writeMagic() error {
	if _, err := l.f.Write(logMagic); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = int64(len(logMagic))
	return nil
}

// Append frames rec, writes it and fsyncs. When the append fails
// partway (disk full, injected torn write) the file is truncated back
// to the last good record so the in-memory view and the disk image
// stay consistent.
func (l *Log) Append(rec []byte) error {
	if l.broken != nil {
		return l.broken
	}
	frame := make([]byte, frameHeader+len(rec))
	binary.LittleEndian.PutUint32(frame, uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(rec, crcTable))
	copy(frame[frameHeader:], rec)
	// Chaos hook: an armed store.write.torn writes only a prefix of the
	// frame — exactly what a crash mid-append leaves behind — and then
	// fails, exercising both the truncate-back path here and torn-tail
	// replay after a restart.
	if ferr := fault.Inject(fault.StoreWriteTorn); ferr != nil {
		_, _ = l.f.Write(frame[:frameHeader+len(rec)/2])
		_ = l.f.Sync()
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("store: append: %w", ferr)
	}
	if _, err := l.f.Write(frame); err != nil {
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("store: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		// Same discipline as a failed write: the frame's bytes are in the
		// file but not durable, so drop them and restore the offset rather
		// than leave the disk image ahead of l.size (a later truncate to
		// l.size would otherwise chop an acknowledged record's tail).
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("store: append sync: %w", err)
	}
	l.size += int64(frameHeader + len(rec))
	return nil
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the backing file path.
func (l *Log) Path() string { return l.path }

// Close closes the backing file. A broken log's handle was already
// closed when it broke.
func (l *Log) Close() error {
	if l.broken != nil {
		return l.broken
	}
	return l.f.Close()
}

// Rewrite atomically replaces the log's contents with the given
// records (compaction): the new image is built in a temp file, fsynced
// and renamed over the old one, so a crash leaves either the full old
// log or the full new one.
func (l *Log) Rewrite(records [][]byte) error {
	if l.broken != nil {
		return l.broken
	}
	buf := append([]byte(nil), logMagic...)
	for _, rec := range records {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(rec, crcTable))
		buf = append(buf, rec...)
	}
	if err := writeRaw(l.path, buf); err != nil {
		return fmt.Errorf("store: rewrite: %w", err)
	}
	// The rename has committed the new image; from here on l.f refers to
	// an unlinked inode, so a failure to reopen must brick the log rather
	// than let appends land in a file no replay will ever see.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o600)
	if err != nil {
		return l.breakLog(fmt.Errorf("store: rewrite reopen: %w", err))
	}
	if _, err := f.Seek(int64(len(buf)), io.SeekStart); err != nil {
		f.Close()
		return l.breakLog(fmt.Errorf("store: rewrite seek: %w", err))
	}
	old := l.f
	l.f, l.size = f, int64(len(buf))
	return old.Close()
}

// breakLog marks the log permanently unusable, closes the stale handle
// and returns the sticky error.
func (l *Log) breakLog(err error) error {
	l.broken = err
	_ = l.f.Close()
	return err
}

// snapMagic opens every snapshot file written by WriteFile.
var snapMagic = []byte("ACESNP1\n")

// WriteFile atomically writes a checksummed snapshot file: the payload
// is framed (magic, length, CRC32-C), written to a temp file in the
// same directory, fsynced, renamed over path, and the directory
// fsynced so the rename itself is durable. Readers never observe a
// partial file.
func WriteFile(path string, payload []byte) error {
	buf := make([]byte, 0, len(snapMagic)+frameHeader+len(payload))
	buf = append(buf, snapMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	return writeRaw(path, buf)
}

// writeRaw is the shared atomic-replace implementation: temp file in
// the target directory, write, fsync, rename, fsync the directory.
func writeRaw(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".store-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// ReadFile reads a snapshot written by WriteFile, verifying the frame.
// Truncation is reported as ErrTorn, checksum or framing violations as
// ErrCorrupt.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unframe(data)
}

// Unframe verifies a snapshot image (as written by WriteFile) and
// returns its payload.
func Unframe(data []byte) ([]byte, error) {
	if len(data) < len(snapMagic)+frameHeader {
		return nil, fmt.Errorf("%w: snapshot of %d bytes", ErrTorn, len(data))
	}
	if string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	rest := data[len(snapMagic):]
	n := int64(binary.LittleEndian.Uint32(rest))
	sum := binary.LittleEndian.Uint32(rest[4:])
	if n > maxRecordLen {
		return nil, fmt.Errorf("%w: implausible snapshot length %d", ErrCorrupt, n)
	}
	payload := rest[frameHeader:]
	if int64(len(payload)) < n {
		return nil, fmt.Errorf("%w: snapshot body %d < %d", ErrTorn, len(payload), n)
	}
	if int64(len(payload)) > n {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, int64(len(payload))-n)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
