package batch

import (
	"math/rand/v2"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/ir"
)

// buildTestModule emits a small but representative CKKS program over L
// logical slots: an encoded mask multiply, a rotate-and-add reduction,
// a scalar multiply, a polynomial and a reinterpret — every lane-relevant
// op class the compiler produces.
func buildTestModule(l int) *ir.Module {
	mod := ir.NewModule("batchtest")
	f := mod.NewFunc("main")
	x := f.NewParam("x", ir.CipherType(l))
	x.Level, x.Scale = 3, 1 << 40

	mask := make([]float64, l)
	for i := range mask {
		mask[i] = float64(i%5) * 0.25
	}
	cm := f.NewConst("mask", ir.VectorType(l), mask)
	pt := f.Emit(ckksir.OpEncode, ir.PlainType(l), []*ir.Value{cm},
		map[string]any{"level": 3, "scale": float64(1 << 40)})
	pt.Level, pt.Scale = 3, 1<<40

	prod := f.Emit(ckksir.OpMulPlain, ir.CipherType(l), []*ir.Value{x, pt}, nil)
	prod.Level, prod.Scale = 3, 1<<80
	rs := f.Emit(ckksir.OpRescale, ir.CipherType(l), []*ir.Value{prod}, nil)
	rs.Level, rs.Scale = 2, 1<<40

	acc := rs
	for k := 1; k < l; k <<= 1 {
		rot := f.Emit(ckksir.OpRotate, ir.CipherType(l), []*ir.Value{acc}, map[string]any{"k": k})
		rot.Level, rot.Scale = acc.Level, acc.Scale
		sum := f.Emit(ckksir.OpAdd, ir.CipherType(l), []*ir.Value{acc, rot}, nil)
		sum.Level, sum.Scale = acc.Level, acc.Scale
		acc = sum
	}
	mc := f.Emit(ckksir.OpMulConst, ir.CipherType(l), []*ir.Value{acc},
		map[string]any{"c": 0.5, "const_scale": 1.0})
	mc.Level, mc.Scale = acc.Level, acc.Scale
	po := f.Emit(ckksir.OpPoly, ir.CipherType(l), []*ir.Value{mc},
		map[string]any{"coeffs": []float64{0.1, 0.9, 0, -0.3}, "target": 0})
	po.Level, po.Scale = 1, 1<<40
	ri := f.Emit(ckksir.OpReinterpret, ir.CipherType(l), []*ir.Value{po},
		map[string]any{"factor": 2.0})
	ri.Level, ri.Scale = 1, 1<<39
	f.Ret = ri
	return mod
}

func TestTransformStructure(t *testing.T) {
	l, stride := 8, 4
	mod := buildTestModule(l)
	bm, err := Transform(mod, stride)
	if err != nil {
		t.Fatal(err)
	}
	sf, bf := mod.Main(), bm.Main()
	if len(bf.Body) != len(sf.Body) {
		t.Fatalf("batched body has %d instrs, solo %d", len(bf.Body), len(sf.Body))
	}
	for i, in := range sf.Body {
		bin := bf.Body[i]
		if bin.Op != in.Op {
			t.Fatalf("instr %d: op %s != %s", i, bin.Op, in.Op)
		}
		if bin.Result.Level != in.Result.Level || bin.Result.Scale != in.Result.Scale {
			t.Fatalf("instr %d: level/scale not preserved", i)
		}
		switch in.Op {
		case ckksir.OpRotate:
			if got, want := bin.AttrInt("k", 0), in.AttrInt("k", 0)*stride; got != want {
				t.Fatalf("instr %d: rotation %d, want %d", i, got, want)
			}
		case ckksir.OpEncode:
			solo := in.Args[0].Const.([]float64)
			rep := bin.Args[0].Const.([]float64)
			if len(rep) != len(solo)*stride {
				t.Fatalf("instr %d: replicated const length %d, want %d", i, len(rep), len(solo)*stride)
			}
			for b := 0; b < stride; b++ {
				lane, err := ExtractLane(rep, b, stride)
				if err != nil {
					t.Fatal(err)
				}
				for j := range solo {
					if lane[j] != solo[j] {
						t.Fatalf("instr %d: lane %d of replicated const differs at %d", i, b, j)
					}
				}
			}
		}
	}
	// The original module must be untouched.
	if k := sf.Body[3].AttrInt("k", 0); k != 1 {
		t.Fatalf("transform mutated the source module: first rotation now %d", k)
	}
	if got := Rotations(bm); len(got) == 0 || got[0] != stride {
		t.Fatalf("Rotations(batched) = %v, want first %d", got, stride)
	}
}

// TestSimDifferentialBitIdentical is the core batching-correctness
// property: run B independent inputs through the solo module, pack the
// same inputs into lanes of one strided vector, run once through the
// transformed module, extract each lane — every float64 must be
// BIT-IDENTICAL (==, no epsilon), including partially filled batches.
func TestSimDifferentialBitIdentical(t *testing.T) {
	l, stride := 8, 4
	mod := buildTestModule(l)
	bm, err := Transform(mod, stride)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 9))
	for _, fill := range []int{1, 2, stride} { // partial and full batches
		inputs := make([][]float64, fill)
		packed := make([]float64, l*stride)
		for b := range inputs {
			inputs[b] = make([]float64, l)
			for i := range inputs[b] {
				inputs[b][i] = rng.Float64()*2 - 1
			}
			exp, err := ExpandLane(inputs[b], b, stride)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range exp {
				packed[i] += x
			}
		}
		batched, err := SimRun(bm, packed)
		if err != nil {
			t.Fatal(err)
		}
		for b := range inputs {
			solo, err := SimRun(mod, inputs[b])
			if err != nil {
				t.Fatal(err)
			}
			lane, err := ExtractLane(batched, b, stride)
			if err != nil {
				t.Fatal(err)
			}
			for i := range solo {
				if lane[i] != solo[i] {
					t.Fatalf("fill %d lane %d slot %d: batched %v != solo %v (not bit-identical)",
						fill, b, i, lane[i], solo[i])
				}
			}
		}
	}
}
