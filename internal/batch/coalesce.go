package batch

import (
	"sync"
	"time"
)

// Coalescer groups items that arrive within a latency window, keyed by a
// compatibility key (the serving layer keys on the session, since every
// job in a group is evaluated — and its packed lanes decrypted — under
// one client's key material). The first item of a key opens a window;
// the group flushes when the window elapses or the group reaches max,
// whichever comes first. Flush callbacks run outside the coalescer's
// lock: the max-trigger flush on the adding goroutine, the window flush
// on the timer goroutine, and CloseAndFlush's final sweep on the caller.
type Coalescer[T any] struct {
	window time.Duration
	max    int
	flush  func(items []T, final bool)

	mu      sync.Mutex
	pending map[string]*group[T]
	gen     uint64
	closed  bool
}

type group[T any] struct {
	items []T
	timer *time.Timer
	gen   uint64 // guards the timer against flushing a successor group
}

// NewCoalescer builds a coalescer. window <= 0 flushes every item
// immediately as a singleton group (batching effectively off); max < 1
// is treated as 1. The flush callback receives final=true only from
// CloseAndFlush, so the serving layer can switch from load-shedding to
// blocking submission while draining.
func NewCoalescer[T any](window time.Duration, max int, flush func(items []T, final bool)) *Coalescer[T] {
	if max < 1 {
		max = 1
	}
	return &Coalescer[T]{window: window, max: max, flush: flush, pending: map[string]*group[T]{}}
}

// Add appends an item under a compatibility key, flushing the group if
// it reached max. It returns false when the coalescer is closed (the
// server is draining) and the item was not accepted.
func (c *Coalescer[T]) Add(key string, item T) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	if c.window <= 0 || c.max == 1 {
		c.mu.Unlock()
		c.flush([]T{item}, false)
		return true
	}
	g := c.pending[key]
	if g == nil {
		c.gen++
		g = &group[T]{gen: c.gen}
		c.pending[key] = g
		gen := g.gen
		g.timer = time.AfterFunc(c.window, func() { c.flushKey(key, gen) })
	}
	g.items = append(g.items, item)
	if len(g.items) >= c.max {
		items := g.items
		g.timer.Stop()
		delete(c.pending, key)
		c.mu.Unlock()
		c.flush(items, false)
		return true
	}
	c.mu.Unlock()
	return true
}

// flushKey is the window-expiry path. The generation check makes a
// stale timer (one whose group was already flushed by the max trigger,
// with a new group since opened under the same key) a no-op.
func (c *Coalescer[T]) flushKey(key string, gen uint64) {
	c.mu.Lock()
	g := c.pending[key]
	if g == nil || g.gen != gen {
		c.mu.Unlock()
		return
	}
	items := g.items
	delete(c.pending, key)
	c.mu.Unlock()
	if len(items) > 0 {
		c.flush(items, false)
	}
}

// CloseAndFlush stops accepting items and synchronously flushes every
// open window with final=true. Safe to call more than once.
func (c *Coalescer[T]) CloseAndFlush() {
	c.mu.Lock()
	c.closed = true
	var groups [][]T
	for key, g := range c.pending {
		g.timer.Stop()
		if len(g.items) > 0 {
			groups = append(groups, g.items)
		}
		delete(c.pending, key)
	}
	c.mu.Unlock()
	for _, items := range groups {
		c.flush(items, true)
	}
}

// Pending reports items currently waiting in open windows (tests).
func (c *Coalescer[T]) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, g := range c.pending {
		n += len(g.items)
	}
	return n
}
