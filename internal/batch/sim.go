package batch

import (
	"fmt"

	"antace/internal/ckksir"
	"antace/internal/ir"
)

// SimRun executes a CKKS IR module slotwise on cleartext float64 slots —
// the ckksir analogue of vecir.Run. Every op the compiler emits is
// either elementwise or a cyclic rotation, so the simulator is exact
// (no noise, no approximation of the approximations: ckks.poly
// evaluates the compiled polynomial itself, ckks.bootstrap is the
// identity the ideal circuit computes).
//
// Its role here is the bit-identity proof behind batching: for the same
// instruction stream, lane b of SimRun(Transform(mod, S), packed) and
// SimRun(mod, input_b) perform literally the same float64 operations in
// the same order on every logical slot, so the differential tests can
// assert exact equality (==), not epsilon closeness — any index-math
// bug in the lane layout or the transform breaks bit-identity
// immediately.
func SimRun(mod *ir.Module, input []float64) ([]float64, error) {
	f := mod.Main()
	if f == nil {
		return nil, fmt.Errorf("batch: sim: empty module")
	}
	if len(f.Params) != 1 {
		return nil, fmt.Errorf("batch: sim: expected one parameter, have %d", len(f.Params))
	}
	n := len(input)
	if n == 0 {
		return nil, fmt.Errorf("batch: sim: empty input")
	}
	env := map[*ir.Value][]float64{f.Params[0]: input}
	get := func(v *ir.Value) ([]float64, error) {
		if x, ok := env[v]; ok {
			return x, nil
		}
		return nil, fmt.Errorf("batch: sim: %s not computed", v)
	}
	// fit pads or truncates an encoded constant to the slot width, the
	// way the CKKS encoder zero-extends short vectors.
	fit := func(c []float64) []float64 {
		if len(c) == n {
			return c
		}
		out := make([]float64, n)
		copy(out, c)
		return out
	}
	for idx, in := range f.Body {
		arg := func(i int) ([]float64, error) { return get(in.Args[i]) }
		var out []float64
		var err error
		switch in.Op {
		case ckksir.OpEncode:
			vec, ok := in.Args[0].Const.([]float64)
			if !ok {
				return nil, fmt.Errorf("batch: sim: instr %d: encode argument is not a vector constant", idx)
			}
			out = fit(vec)
		case ckksir.OpAdd, ckksir.OpAddPlain:
			var a, b []float64
			if a, err = arg(0); err == nil {
				b, err = arg(1)
			}
			if err == nil {
				out = make([]float64, n)
				for i := range out {
					out[i] = a[i] + b[i]
				}
			}
		case ckksir.OpMul, ckksir.OpMulPlain:
			var a, b []float64
			if a, err = arg(0); err == nil {
				b, err = arg(1)
			}
			if err == nil {
				out = make([]float64, n)
				for i := range out {
					out[i] = a[i] * b[i]
				}
			}
		case ckksir.OpRotate:
			k := in.AttrInt("k", 0)
			k %= n
			if k < 0 {
				k += n
			}
			var a []float64
			if a, err = arg(0); err == nil {
				out = make([]float64, n)
				for i := range out {
					out[i] = a[(i+k)%n]
				}
			}
		case ckksir.OpMulConst:
			c := in.AttrFloat("c", 1)
			var a []float64
			if a, err = arg(0); err == nil {
				out = make([]float64, n)
				for i := range out {
					out[i] = a[i] * c
				}
			}
		case ckksir.OpReinterpret:
			// Dividing the declared scale by factor multiplies the decoded
			// value by factor.
			factor := in.AttrFloat("factor", 1)
			var a []float64
			if a, err = arg(0); err == nil {
				out = make([]float64, n)
				for i := range out {
					out[i] = a[i] * factor
				}
			}
		case ckksir.OpPoly:
			coeffs, ok := in.Attrs["coeffs"].([]float64)
			if !ok {
				return nil, fmt.Errorf("batch: sim: instr %d: poly without coeffs", idx)
			}
			basis, _ := in.Attrs["basis"].(string)
			a2, b2 := in.AttrFloat("a", -1), in.AttrFloat("b", 1)
			var a []float64
			if a, err = arg(0); err == nil {
				out = make([]float64, n)
				for i := range out {
					if basis == "cheb" {
						out[i] = evalCheb(coeffs, a[i], a2, b2)
					} else {
						out[i] = evalMonomial(coeffs, a[i])
					}
				}
			}
		case ckksir.OpRelin, ckksir.OpRescale, ckksir.OpModSwitch, ckksir.OpBootstrap:
			// Level/scale bookkeeping and refresh: the ideal slot values
			// pass through unchanged.
			out, err = arg(0)
		default:
			return nil, fmt.Errorf("batch: sim: unknown op %q", in.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("batch: sim: instr %d (%s): %w", idx, in.Op, err)
		}
		env[in.Result] = out
	}
	return get(f.Ret)
}

// evalMonomial evaluates Σ coeffs[i]·x^i by Horner's rule.
func evalMonomial(coeffs []float64, x float64) float64 {
	acc := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = acc*x + coeffs[i]
	}
	return acc
}

// evalCheb evaluates Σ coeffs[i]·T_i(t) with t = (2x−a−b)/(b−a) by the
// Clenshaw recurrence.
func evalCheb(coeffs []float64, x, a, b float64) float64 {
	t := (2*x - a - b) / (b - a)
	var b1, b2 float64
	for i := len(coeffs) - 1; i >= 1; i-- {
		b1, b2 = 2*t*b1-b2+coeffs[i], b1
	}
	return t*b1 - b2 + coeffs[0]
}
