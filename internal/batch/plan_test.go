package batch

import (
	"math/rand/v2"
	"testing"
)

func TestStride(t *testing.T) {
	cases := []struct{ slots, vecLen, want int }{
		{2048, 256, 8},
		{256, 256, 1},
		{256, 64, 4},
		{256, 192, 1},  // not a power of two
		{256, 0, 1},    // degenerate
		{100, 25, 1},   // slots not binary multiple of vecLen
		{4096, 512, 8},
	}
	for _, c := range cases {
		if got := Stride(c.slots, c.vecLen); got != c.want {
			t.Errorf("Stride(%d,%d) = %d, want %d", c.slots, c.vecLen, got, c.want)
		}
	}
}

func TestExpandExtractRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, stride := range []int{1, 2, 4, 8} {
		l := 16
		lanes := make([][]float64, stride)
		packed := make([]float64, l*stride)
		for b := 0; b < stride; b++ {
			lanes[b] = make([]float64, l)
			for i := range lanes[b] {
				lanes[b][i] = rng.Float64()
			}
			exp, err := ExpandLane(lanes[b], b, stride)
			if err != nil {
				t.Fatal(err)
			}
			for i, x := range exp {
				packed[i] += x
			}
		}
		for b := 0; b < stride; b++ {
			got, err := ExtractLane(packed, b, stride)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != lanes[b][i] {
					t.Fatalf("stride %d lane %d slot %d: %g != %g", stride, b, i, got[i], lanes[b][i])
				}
			}
		}
	}
}

func TestReplicateLanes(t *testing.T) {
	m := []float64{1, 2, 3}
	got := ReplicateLanes(m, 2)
	want := []float64{1, 1, 2, 2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReplicateLanes = %v, want %v", got, want)
		}
	}
	for b := 0; b < 2; b++ {
		lane, err := ExtractLane(got, b, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m {
			if lane[i] != m[i] {
				t.Fatalf("lane %d of replicated mask differs: %v", b, lane)
			}
		}
	}
}

func TestLaneBoundsErrors(t *testing.T) {
	if _, err := ExpandLane([]float64{1}, 2, 2); err == nil {
		t.Error("ExpandLane accepted lane out of range")
	}
	if _, err := ExtractLane([]float64{1, 2, 3}, 0, 2); err == nil {
		t.Error("ExtractLane accepted length not divisible by stride")
	}
	if _, err := ExtractLane([]float64{1, 2}, -1, 2); err == nil {
		t.Error("ExtractLane accepted negative lane")
	}
}

// FuzzLaneIndexMath cross-checks the pack/extract index math: any mix of
// lanes written through ExpandLane into a shared vector must extract
// back exactly, lanes must never collide, and a logical rotation by k
// must commute with the lane layout (rotate the strided vector by
// k·stride = rotate every lane's logical vector by k).
func FuzzLaneIndexMath(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(1), int16(3))
	f.Add(uint8(4), uint8(8), uint8(7), int16(-5))
	f.Fuzz(func(t *testing.T, logL, strideB, laneB uint8, k16 int16) {
		l := 1 << (logL%6 + 1)         // 2..64
		stride := int(strideB)%8 + 1   // 1..8
		lane := int(laneB) % stride    // 0..stride-1
		k := int(k16)
		rng := rand.New(rand.NewPCG(uint64(logL), uint64(strideB)))
		v := make([]float64, l)
		for i := range v {
			v[i] = rng.Float64()
		}
		exp, err := ExpandLane(v, lane, stride)
		if err != nil {
			t.Fatal(err)
		}
		if len(exp) != l*stride {
			t.Fatalf("expanded length %d, want %d", len(exp), l*stride)
		}
		// No collision: all other lanes stay zero.
		for b := 0; b < stride; b++ {
			got, err := ExtractLane(exp, b, stride)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				want := 0.0
				if b == lane {
					want = v[i]
				}
				if got[i] != want {
					t.Fatalf("lane %d slot %d: %g, want %g", b, i, got[i], want)
				}
			}
		}
		// Rotation commutes with the layout.
		rot := func(u []float64, k int) []float64 {
			n := len(u)
			k %= n
			if k < 0 {
				k += n
			}
			out := make([]float64, n)
			for i := range out {
				out[i] = u[(i+k)%n]
			}
			return out
		}
		viaLanes, err := ExtractLane(rot(exp, k*stride), lane, stride)
		if err != nil {
			t.Fatal(err)
		}
		direct := rot(v, k)
		for i := range direct {
			if viaLanes[i] != direct[i] {
				t.Fatalf("rotation k=%d stride=%d lane=%d slot %d: %g != %g",
					k, stride, lane, i, viaLanes[i], direct[i])
			}
		}
	})
}
