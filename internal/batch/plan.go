// Package batch implements cross-request slot batching: packing several
// concurrent inference requests into the spare slot lanes of one shared
// ciphertext so that every key switch, rescale and bootstrap of a single
// fused evaluation is amortised across the whole group (the nGraph-HE2
// observation, applied across requests instead of across one client's
// minibatch).
//
// The layout is strided interleaving. A compiled program operates on a
// logical slot vector of length L; a ring with slots = N/2 ≥ L·S leaves
// room for S lanes at stride S = slots/L. Lane b of a batched ciphertext
// holds job b's logical slot i at physical slot i·S+b. Three facts make
// the whole scheme exact (verified against the real encoder/evaluator in
// this package's tests):
//
//   - A full-ring Galois rotation by k·S maps physical slot i·S+b to
//     ((i−k) mod L)·S+b: every lane rotates by k logical slots, and no
//     value ever crosses a lane boundary.
//   - Every other CKKS op the compiler emits (add, mul, mul_plain,
//     rescale, relin, modswitch, poly, bootstrap, reinterpret) acts
//     slotwise, so it is lane-preserving by construction.
//   - Clients encode inputs at stride S with zeros between lanes, so a
//     group of B ≤ S inputs packs exactly as Σ_b Rotate(ct_b, −b): the
//     zero gaps guarantee the lane sums never collide, no masking (and
//     therefore no level or scale consumption) is needed.
//
// Transform rewrites a compiled module for this layout (rotations scaled
// by S, encoded constants replicated across lanes); Coalescer groups
// compatible queued jobs within a latency window; the lane index math
// lives in this file. Extraction is free: the reply ciphertext carries
// its lane, and the owning client decodes slots i·S+lane.
package batch

import "fmt"

// Stride returns the lane capacity of a ring: how many length-vecLen
// programs interleave into slots physical slots. It is 1 (no batching
// capacity) unless vecLen is a power of two that divides the slot count,
// which is the layout contract the rotation algebra relies on.
func Stride(slots, vecLen int) int {
	if vecLen <= 0 || slots <= 0 || vecLen&(vecLen-1) != 0 || slots%vecLen != 0 {
		return 1
	}
	return slots / vecLen
}

// ExpandLane spreads a logical vector into a strided one: out has length
// len(v)·stride with v[i] at i·stride+lane and zeros elsewhere. This is
// the client-side encoding of a batchable input; lane is 0 on the wire
// (the server assigns real lanes by rotating at pack time).
func ExpandLane(v []float64, lane, stride int) ([]float64, error) {
	if stride < 1 || lane < 0 || lane >= stride {
		return nil, fmt.Errorf("batch: lane %d out of range for stride %d", lane, stride)
	}
	out := make([]float64, len(v)*stride)
	for i, x := range v {
		out[i*stride+lane] = x
	}
	return out, nil
}

// ExtractLane recovers one lane's logical vector from a strided one.
func ExtractLane(u []float64, lane, stride int) ([]float64, error) {
	if stride < 1 || lane < 0 || lane >= stride {
		return nil, fmt.Errorf("batch: lane %d out of range for stride %d", lane, stride)
	}
	if len(u)%stride != 0 {
		return nil, fmt.Errorf("batch: vector length %d is not a multiple of stride %d", len(u), stride)
	}
	out := make([]float64, len(u)/stride)
	for i := range out {
		out[i] = u[i*stride+lane]
	}
	return out, nil
}

// ReplicateLanes turns a logical plaintext vector (a mask or weight
// diagonal the compiler encoded for the solo program) into its batched
// form: m[i] lands at i·stride+b for every lane b, so a single
// mul_plain applies the same constant to every lane — exactly what the
// solo program would have done to each request separately.
func ReplicateLanes(m []float64, stride int) []float64 {
	out := make([]float64, len(m)*stride)
	for i, x := range m {
		for b := 0; b < stride; b++ {
			out[i*stride+b] = x
		}
	}
	return out
}
