package batch

import (
	"sync"
	"testing"
	"time"
)

type flushRec struct {
	mu     sync.Mutex
	groups [][]int
	finals []bool
}

func (r *flushRec) flush(items []int, final bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.groups = append(r.groups, items)
	r.finals = append(r.finals, final)
}

func (r *flushRec) snapshot() [][]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]int(nil), r.groups...)
}

func TestCoalescerMaxTrigger(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(time.Hour, 3, rec.flush)
	for i := 0; i < 7; i++ {
		if !c.Add("s", i) {
			t.Fatal("Add refused before close")
		}
	}
	groups := rec.snapshot()
	if len(groups) != 2 || len(groups[0]) != 3 || len(groups[1]) != 3 {
		t.Fatalf("groups = %v, want two full groups of 3", groups)
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
	c.CloseAndFlush()
	groups = rec.snapshot()
	if len(groups) != 3 || len(groups[2]) != 1 {
		t.Fatalf("after close groups = %v, want trailing singleton", groups)
	}
	rec.mu.Lock()
	final := rec.finals[2]
	rec.mu.Unlock()
	if !final {
		t.Fatal("close-time flush not marked final")
	}
}

func TestCoalescerWindowTrigger(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(20*time.Millisecond, 100, rec.flush)
	c.Add("s", 1)
	c.Add("s", 2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if groups := rec.snapshot(); len(groups) == 1 {
			if len(groups[0]) != 2 {
				t.Fatalf("window flush carried %v, want both items", groups[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	c.CloseAndFlush()
}

func TestCoalescerKeysAreIndependent(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(time.Hour, 2, rec.flush)
	c.Add("a", 1)
	c.Add("b", 2)
	c.Add("a", 3)
	groups := rec.snapshot()
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][0] != 1 || groups[0][1] != 3 {
		t.Fatalf("groups = %v, want [[1 3]]", groups)
	}
	c.CloseAndFlush()
	groups = rec.snapshot()
	if len(groups) != 2 || len(groups[1]) != 1 || groups[1][0] != 2 {
		t.Fatalf("groups = %v, want [[1 3] [2]]", groups)
	}
}

func TestCoalescerClosedRefusesAdds(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(time.Hour, 2, rec.flush)
	c.CloseAndFlush()
	if c.Add("s", 1) {
		t.Fatal("Add accepted after close")
	}
	c.CloseAndFlush() // idempotent
}

func TestCoalescerImmediateModeWithoutWindow(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(0, 8, rec.flush)
	c.Add("s", 1)
	c.Add("s", 2)
	groups := rec.snapshot()
	if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 1 {
		t.Fatalf("groups = %v, want two singletons", groups)
	}
}

// TestCoalescerConcurrent hammers one coalescer from many goroutines and
// checks every item is flushed exactly once (run under -race).
func TestCoalescerConcurrent(t *testing.T) {
	var rec flushRec
	c := NewCoalescer(5*time.Millisecond, 4, rec.flush)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add("s", w*per+i)
				if i%7 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	c.CloseAndFlush()
	seen := map[int]int{}
	for _, g := range rec.snapshot() {
		if len(g) > 4 {
			t.Fatalf("group of %d exceeds max 4", len(g))
		}
		for _, it := range g {
			seen[it]++
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("flushed %d distinct items, want %d", len(seen), workers*per)
	}
	for it, n := range seen {
		if n != 1 {
			t.Fatalf("item %d flushed %d times", it, n)
		}
	}
}
