package batch

import (
	"fmt"

	"antace/internal/ckksir"
	"antace/internal/ir"
)

// Transform clones a compiled CKKS module into its batched counterpart
// for the given stride: every ckks.rotate amount k becomes k·stride and
// every ckks.encode constant is lane-replicated. All other instructions
// are slotwise, so they are copied unchanged (levels, scales and
// attributes included — the vm's per-instruction level/scale check
// passes on the batched module exactly as on the solo one).
//
// The clone is deterministic: value IDs are assigned in body order, so a
// server that rebuilds the batched module after a restart reproduces it
// bit for bit, which keeps execution checkpoints replayable.
func Transform(mod *ir.Module, stride int) (*ir.Module, error) {
	if stride < 1 {
		return nil, fmt.Errorf("batch: stride %d", stride)
	}
	out := ir.NewModule(mod.Name)
	for k, v := range mod.Attrs {
		out.Attrs[k] = v
	}
	for _, f := range mod.Funcs {
		if err := transformFunc(out, f, stride); err != nil {
			return nil, fmt.Errorf("batch: func %s: %w", f.Name, err)
		}
	}
	return out, nil
}

// scaleType widens a slot-vector type by the stride (cipher<L> becomes
// cipher<L·stride>); scalar and shapeless types pass through.
func scaleType(t ir.Type, stride int) ir.Type {
	switch t.Kind {
	case ir.KindVector, ir.KindPlain, ir.KindCipher, ir.KindCipher3:
		if len(t.Shape) == 1 {
			return ir.Type{Kind: t.Kind, Shape: []int{t.Shape[0] * stride}}
		}
	}
	return t
}

func transformFunc(out *ir.Module, f *ir.Func, stride int) error {
	nf := out.NewFunc(f.Name)
	vmap := make(map[*ir.Value]*ir.Value, len(f.Body)+len(f.Params))
	copyMeta := func(dst, src *ir.Value) {
		dst.Level = src.Level
		dst.Scale = src.Scale
	}
	for _, p := range f.Params {
		np := nf.NewParam(p.Name, scaleType(p.Type, stride))
		copyMeta(np, p)
		vmap[p] = np
	}
	mapArg := func(a *ir.Value, replicate bool) (*ir.Value, error) {
		if na, ok := vmap[a]; ok {
			return na, nil
		}
		if !a.IsConst() {
			return nil, fmt.Errorf("value %s used before definition", a)
		}
		var payload any = a.Const
		if replicate {
			vec, ok := a.Const.([]float64)
			if !ok {
				return nil, fmt.Errorf("encode constant %s is not a vector", a)
			}
			payload = ReplicateLanes(vec, stride)
		}
		na := nf.NewConst(a.Name, scaleType(a.Type, stride), payload)
		copyMeta(na, a)
		vmap[a] = na
		return na, nil
	}
	for _, in := range f.Body {
		args := make([]*ir.Value, len(in.Args))
		for i, a := range in.Args {
			na, err := mapArg(a, in.Op == ckksir.OpEncode && i == 0)
			if err != nil {
				return err
			}
			args[i] = na
		}
		attrs := make(map[string]any, len(in.Attrs))
		for k, v := range in.Attrs {
			attrs[k] = v
		}
		if in.Op == ckksir.OpRotate {
			attrs["k"] = in.AttrInt("k", 0) * stride
		}
		res := nf.Emit(in.Op, scaleType(in.Result.Type, stride), args, attrs)
		copyMeta(res, in.Result)
		res.Name = in.Result.Name
		vmap[in.Result] = res
	}
	ret, ok := vmap[f.Ret]
	if !ok {
		return fmt.Errorf("return value never computed")
	}
	nf.Ret = ret
	return nil
}

// Rotations walks a module and returns the distinct rotation amounts its
// ckks.rotate instructions use, in ascending order of first appearance.
// The serving layer derives the batched program's Galois-key demand from
// the transformed module with this.
func Rotations(mod *ir.Module) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range mod.Funcs {
		for _, in := range f.Body {
			if in.Op != ckksir.OpRotate {
				continue
			}
			k := in.AttrInt("k", 0)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}
