package batch

import (
	"math/rand/v2"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/core"
	"antace/internal/onnx"
	"antace/internal/sihe"
)

// TestCompiledModelSimDifferential runs the bit-identity differential on
// a real compiler artifact (the demo linear classifier) instead of a
// hand-written module, so the transform is exercised against everything
// the lowering pipeline actually emits — vecir masks, the rotation
// reduction tree, ReLU polynomial segments, scale management.
func TestCompiledModelSimDifferential(t *testing.T) {
	model, err := onnx.BuildLinear(64, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(model, core.Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{LogScale: 40, Mode: ckksir.BootstrapAuto, IgnoreSecurity: true},
		SkipPoly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mod := prog.CKKS.Module
	l := prog.VectorLen()
	stride := 4
	bm, err := Transform(mod, stride)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 13))
	inputs := make([][]float64, 3) // partial batch: 3 of 4 lanes occupied
	packed := make([]float64, l*stride)
	for b := range inputs {
		inputs[b] = make([]float64, l)
		for i := 0; i < 64; i++ {
			inputs[b][i] = rng.Float64()*0.5 - 0.25
		}
		exp, err := ExpandLane(inputs[b], b, stride)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range exp {
			packed[i] += x
		}
	}
	batched, err := SimRun(bm, packed)
	if err != nil {
		t.Fatal(err)
	}
	for b := range inputs {
		solo, err := SimRun(mod, inputs[b])
		if err != nil {
			t.Fatal(err)
		}
		lane, err := ExtractLane(batched, b, stride)
		if err != nil {
			t.Fatal(err)
		}
		for i := range solo {
			if lane[i] != solo[i] {
				t.Fatalf("lane %d slot %d: batched %v != solo %v (not bit-identical)", b, i, lane[i], solo[i])
			}
		}
	}
}
