package codegen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/core"
	"antace/internal/onnx"
	"antace/internal/sihe"
)

func TestGenerateCompilesAndRuns(t *testing.T) {
	m, err := onnx.BuildLinear(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(m, core.Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true},
		SkipPoly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generate into a directory inside the module so the generated code
	// can import the internal packages.
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "gen_test_artifact")
	t.Cleanup(func() { os.RemoveAll(dir) })
	if err := Generate(c, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "weights.bin")); err != nil {
		t.Fatal("weights.bin missing")
	}
	src, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "Code generated") {
		t.Fatal("missing generation header")
	}
	// The generated program must build.
	build := exec.Command("go", "build", "-o", os.DevNull, "./gen_test_artifact")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("generated program does not build: %v\n%s", err, out)
	}
	// And run end to end (it performs real keygen + encrypted inference).
	run := exec.Command("go", "run", "./gen_test_artifact")
	run.Dir = dir // weights.bin lives here
	run.Args = []string{"go", "run", filepath.Join(root, "gen_test_artifact")}
	out, err := run.CombinedOutput()
	if err != nil {
		t.Fatalf("generated program failed: %v\n%s", err, out)
	}
	if len(strings.Fields(string(out))) < 4 {
		t.Fatalf("unexpected output: %s", out)
	}
}

// moduleRoot walks up to the directory containing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
