// Package ir provides the multi-level intermediate representation
// infrastructure of the compiler: typed SSA-style functions over dialect
// ops (nn.*, vec.*, sihe.*, ckks.*, poly.*), a pass manager with per-
// level timing (the paper's Figure 5 measures these), an op registry
// with verifiers, a textual printer, and the generic optimisation passes
// (DCE, CSE).
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies value types across all IR levels.
type Kind uint8

const (
	KindInvalid Kind = iota
	KindInt          // scalar integer attribute-like value
	KindFloat        // scalar float
	KindTensor       // NN IR: dense tensor
	KindVector       // VECTOR IR: cleartext vector
	KindPlain        // SIHE/CKKS: encoded plaintext
	KindCipher       // SIHE/CKKS: ciphertext (2 polynomials at CKKS level)
	KindCipher3      // CKKS: degree-2 ciphertext awaiting relinearisation
	KindPoly         // POLY IR: RNS polynomial vector
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTensor:
		return "tensor"
	case KindVector:
		return "vector"
	case KindPlain:
		return "plain"
	case KindCipher:
		return "cipher"
	case KindCipher3:
		return "cipher3"
	case KindPoly:
		return "poly"
	}
	return "invalid"
}

// Type is a value type: a kind plus a shape (tensor dims, or a single
// length for vector-like kinds).
type Type struct {
	Kind  Kind
	Shape []int
}

// TensorType builds a tensor type.
func TensorType(shape ...int) Type { return Type{Kind: KindTensor, Shape: shape} }

// VectorType builds a vector type of the given length.
func VectorType(n int) Type { return Type{Kind: KindVector, Shape: []int{n}} }

// CipherType builds a ciphertext type over n slots.
func CipherType(n int) Type { return Type{Kind: KindCipher, Shape: []int{n}} }

// PlainType builds a plaintext type over n slots.
func PlainType(n int) Type { return Type{Kind: KindPlain, Shape: []int{n}} }

// Len returns the element count.
func (t Type) Len() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

func (t Type) String() string {
	if len(t.Shape) == 0 {
		return t.Kind.String()
	}
	parts := make([]string, len(t.Shape))
	for i, d := range t.Shape {
		parts[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("%s<%s>", t.Kind, strings.Join(parts, "x"))
}

// Equal reports type equality.
func (t Type) Equal(o Type) bool {
	if t.Kind != o.Kind || len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Value is an SSA value: produced by at most one instruction (Def) or
// born as a parameter/constant.
type Value struct {
	ID   int
	Name string
	Type Type
	Def  *Instr // nil for parameters and constants
	// Const holds the payload for constant values: *tensor.Tensor,
	// []float64, float64 or int, depending on Kind.
	Const any
	// Level and Scale carry the CKKS metadata assigned by the scale
	// management pass (meaningful for cipher/plain kinds only).
	Level int
	Scale float64
}

// IsConst reports whether the value is a compile-time constant.
func (v *Value) IsConst() bool { return v.Const != nil }

func (v *Value) String() string {
	if v.Name != "" {
		return "%" + v.Name
	}
	return fmt.Sprintf("%%v%d", v.ID)
}

// Instr is a single-result instruction.
type Instr struct {
	Op     string // dialect-qualified, e.g. "nn.conv"
	Args   []*Value
	Attrs  map[string]any
	Result *Value
}

// Attr returns an attribute or nil.
func (in *Instr) Attr(name string) any {
	if in.Attrs == nil {
		return nil
	}
	return in.Attrs[name]
}

// AttrInt returns an int attribute with a default.
func (in *Instr) AttrInt(name string, def int) int {
	if v, ok := in.Attrs[name].(int); ok {
		return v
	}
	return def
}

// AttrFloat returns a float attribute with a default.
func (in *Instr) AttrFloat(name string, def float64) float64 {
	if v, ok := in.Attrs[name].(float64); ok {
		return v
	}
	return def
}

// AttrInts returns an int-slice attribute.
func (in *Instr) AttrInts(name string) []int {
	v, _ := in.Attrs[name].([]int)
	return v
}

// Dialect returns the op's dialect prefix ("nn", "vec", ...).
func (in *Instr) Dialect() string {
	if i := strings.IndexByte(in.Op, '.'); i >= 0 {
		return in.Op[:i]
	}
	return ""
}

// Func is a function: parameters, a straight-line body (the compiler
// fully unrolls NN inference), and a single return value.
type Func struct {
	Name   string
	Params []*Value
	Body   []*Instr
	Ret    *Value
	nextID int
}

// Module is a compilation unit.
type Module struct {
	Name  string
	Funcs []*Func
	Attrs map[string]any
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Attrs: map[string]any{}}
}

// NewFunc appends a new function to the module.
func (m *Module) NewFunc(name string) *Func {
	f := &Func{Name: name}
	m.Funcs = append(m.Funcs, f)
	return f
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Main returns the first function (the inference entry point).
func (m *Module) Main() *Func {
	if len(m.Funcs) == 0 {
		return nil
	}
	return m.Funcs[0]
}

// NewValue creates a fresh unbound value.
func (f *Func) NewValue(name string, t Type) *Value {
	f.nextID++
	return &Value{ID: f.nextID, Name: name, Type: t}
}

// NewParam appends a parameter.
func (f *Func) NewParam(name string, t Type) *Value {
	v := f.NewValue(name, t)
	f.Params = append(f.Params, v)
	return v
}

// NewConst creates a constant value.
func (f *Func) NewConst(name string, t Type, payload any) *Value {
	v := f.NewValue(name, t)
	v.Const = payload
	return v
}

// Emit appends an instruction producing a fresh result of type t.
func (f *Func) Emit(op string, t Type, args []*Value, attrs map[string]any) *Value {
	res := f.NewValue("", t)
	in := &Instr{Op: op, Args: args, Attrs: attrs, Result: res}
	res.Def = in
	f.Body = append(f.Body, in)
	return res
}

// InstrCount returns the number of instructions, optionally filtered by
// op prefix.
func (f *Func) InstrCount(prefix string) int {
	n := 0
	for _, in := range f.Body {
		if strings.HasPrefix(in.Op, prefix) {
			n++
		}
	}
	return n
}

// OpHistogram counts instructions per op.
func (f *Func) OpHistogram() map[string]int {
	h := map[string]int{}
	for _, in := range f.Body {
		h[in.Op]++
	}
	return h
}

// sortedAttrKeys returns attribute keys in deterministic order.
func sortedAttrKeys(attrs map[string]any) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
