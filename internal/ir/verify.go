package ir

import (
	"fmt"
	"sync"
)

// OpSpec describes an op for verification: argument kind sets (nil entry
// accepts anything), variadic tail, and the result kind.
type OpSpec struct {
	Name string
	// Args lists acceptable kinds per argument position; each entry is a
	// set of kinds. A nil set accepts any kind.
	Args [][]Kind
	// MinArgs permits optional trailing arguments (e.g. bias); when 0,
	// len(Args) is required exactly.
	MinArgs int
	// Result is the required result kind (KindInvalid accepts any).
	Result Kind
	// RequiredAttrs must be present.
	RequiredAttrs []string
}

var (
	opRegistry   = map[string]OpSpec{}
	opRegistryMu sync.RWMutex
)

// RegisterOp installs an op spec. Dialect packages call this from init.
func RegisterOp(spec OpSpec) {
	opRegistryMu.Lock()
	defer opRegistryMu.Unlock()
	if _, dup := opRegistry[spec.Name]; dup {
		panic("ir: duplicate op registration: " + spec.Name)
	}
	opRegistry[spec.Name] = spec
}

// LookupOp fetches an op spec.
func LookupOp(name string) (OpSpec, bool) {
	opRegistryMu.RLock()
	defer opRegistryMu.RUnlock()
	s, ok := opRegistry[name]
	return s, ok
}

// VerifyFunc checks every instruction against the registry plus SSA
// structural invariants (arguments defined before use).
func VerifyFunc(f *Func) error {
	defined := map[*Value]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	for idx, in := range f.Body {
		spec, ok := LookupOp(in.Op)
		if !ok {
			return fmt.Errorf("instr %d: unregistered op %q", idx, in.Op)
		}
		min := spec.MinArgs
		if min == 0 {
			min = len(spec.Args)
		}
		if len(in.Args) < min || len(in.Args) > len(spec.Args) {
			return fmt.Errorf("instr %d (%s): %d args, want %d..%d", idx, in.Op, len(in.Args), min, len(spec.Args))
		}
		for i, a := range in.Args {
			if a == nil {
				return fmt.Errorf("instr %d (%s): nil argument %d", idx, in.Op, i)
			}
			if !a.IsConst() && a.Def == nil && !isParam(f, a) {
				return fmt.Errorf("instr %d (%s): argument %d has no definition", idx, in.Op, i)
			}
			if !a.IsConst() && a.Def != nil && !defined[a] {
				return fmt.Errorf("instr %d (%s): argument %s used before definition", idx, in.Op, a)
			}
			if set := spec.Args[i]; set != nil {
				okKind := false
				for _, k := range set {
					if a.Type.Kind == k {
						okKind = true
						break
					}
				}
				if !okKind {
					return fmt.Errorf("instr %d (%s): argument %d has kind %s, want one of %v", idx, in.Op, i, a.Type.Kind, set)
				}
			}
		}
		for _, attr := range spec.RequiredAttrs {
			if in.Attr(attr) == nil {
				return fmt.Errorf("instr %d (%s): missing attribute %q", idx, in.Op, attr)
			}
		}
		if spec.Result != KindInvalid && in.Result.Type.Kind != spec.Result {
			return fmt.Errorf("instr %d (%s): result kind %s, want %s", idx, in.Op, in.Result.Type.Kind, spec.Result)
		}
		defined[in.Result] = true
	}
	if f.Ret != nil && !defined[f.Ret] && !f.Ret.IsConst() && !isParam(f, f.Ret) {
		return fmt.Errorf("return value %s never defined", f.Ret)
	}
	return nil
}

func isParam(f *Func, v *Value) bool {
	for _, p := range f.Params {
		if p == v {
			return true
		}
	}
	return false
}
