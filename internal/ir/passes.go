package ir

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Pass transforms a module. Level names a paper IR level
// ("NN", "VECTOR", "SIHE", "CKKS", "POLY", or "Others") so the pass
// manager can attribute compile time per level (Figure 5).
type Pass interface {
	Name() string
	Level() string
	Run(m *Module) error
}

// FuncPass adapts a per-function transformation into a Pass.
type FuncPass struct {
	PassName  string
	PassLevel string
	Fn        func(f *Func) error
}

func (p FuncPass) Name() string  { return p.PassName }
func (p FuncPass) Level() string { return p.PassLevel }
func (p FuncPass) Run(m *Module) error {
	for _, f := range m.Funcs {
		if err := p.Fn(f); err != nil {
			return fmt.Errorf("%s: %s: %w", p.PassName, f.Name, err)
		}
	}
	return nil
}

// PassManager runs a pipeline and records per-pass and per-level wall
// times.
type PassManager struct {
	passes  []Pass
	Trace   io.Writer
	Timings []PassTiming
}

// PassTiming records one pass execution.
type PassTiming struct {
	Pass     string
	Level    string
	Duration time.Duration
}

// Add appends passes to the pipeline.
func (pm *PassManager) Add(ps ...Pass) { pm.passes = append(pm.passes, ps...) }

// Run executes the pipeline.
func (pm *PassManager) Run(m *Module) error {
	for _, p := range pm.passes {
		start := time.Now()
		err := p.Run(m)
		d := time.Since(start)
		pm.Timings = append(pm.Timings, PassTiming{Pass: p.Name(), Level: p.Level(), Duration: d})
		if pm.Trace != nil {
			fmt.Fprintf(pm.Trace, "pass %-30s %-7s %12v %v\n", p.Name(), p.Level(), d, errString(err))
		}
		if err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return "ERROR: " + err.Error()
}

// LevelBreakdown aggregates pass timings per IR level.
func (pm *PassManager) LevelBreakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range pm.Timings {
		out[t.Level] += t.Duration
	}
	return out
}

// DCE removes instructions whose results are never used (transitively).
func DCE() Pass {
	return FuncPass{PassName: "dce", PassLevel: "Others", Fn: func(f *Func) error {
		live := map[*Value]bool{}
		if f.Ret != nil {
			live[f.Ret] = true
		}
		// Walk backwards: an instruction is live if its result is.
		kept := make([]*Instr, 0, len(f.Body))
		for i := len(f.Body) - 1; i >= 0; i-- {
			in := f.Body[i]
			if !live[in.Result] && !hasSideEffects(in.Op) {
				continue
			}
			kept = append(kept, in)
			for _, a := range in.Args {
				live[a] = true
			}
		}
		// Reverse back into program order.
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		f.Body = kept
		return nil
	}}
}

func hasSideEffects(op string) bool {
	return strings.HasSuffix(op, ".debug") || strings.HasSuffix(op, ".output")
}

// CSE merges structurally identical instructions (same op, args, attrs).
func CSE() Pass {
	return FuncPass{PassName: "cse", PassLevel: "Others", Fn: func(f *Func) error {
		seen := map[string]*Value{}
		replace := map[*Value]*Value{}
		kept := f.Body[:0]
		for _, in := range f.Body {
			for i, a := range in.Args {
				if r, ok := replace[a]; ok {
					in.Args[i] = r
				}
			}
			key := instrKey(in)
			if prev, ok := seen[key]; ok {
				replace[in.Result] = prev
				continue
			}
			seen[key] = in.Result
			kept = append(kept, in)
		}
		f.Body = kept
		if r, ok := replace[f.Ret]; ok {
			f.Ret = r
		}
		return nil
	}}
}

// instrKey builds a structural hash key for CSE. Constant values are
// keyed by identity (the lowering interns shared constants).
func instrKey(in *Instr) string {
	var sb strings.Builder
	sb.WriteString(in.Op)
	for _, a := range in.Args {
		fmt.Fprintf(&sb, "|%d", a.ID)
	}
	for _, k := range sortedAttrKeys(in.Attrs) {
		fmt.Fprintf(&sb, "|%s=%v", k, attrKeyString(in.Attrs[k]))
	}
	return sb.String()
}

func attrKeyString(v any) string {
	switch t := v.(type) {
	case []int:
		return fmt.Sprint(t)
	case []float64:
		if len(t) > 8 {
			// Long payloads: identity is cheaper and safe (they are
			// interned by the lowerings).
			return fmt.Sprintf("f64@%p", t)
		}
		return fmt.Sprint(t)
	default:
		return fmt.Sprint(v)
	}
}

// VerifyPass runs the registered op verifiers over the module.
func VerifyPass(level string) Pass {
	return FuncPass{PassName: "verify-" + strings.ToLower(level), PassLevel: "Others", Fn: func(f *Func) error {
		return VerifyFunc(f)
	}}
}

// Print renders a function as text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: %s", p, p.Type)
	}
	sb.WriteString(") {\n")
	for _, in := range f.Body {
		sb.WriteString("  ")
		fmt.Fprintf(&sb, "%s = %s", in.Result, in.Op)
		for _, a := range in.Args {
			if a.IsConst() {
				fmt.Fprintf(&sb, " const:%s", a.Type)
			} else {
				fmt.Fprintf(&sb, " %s", a)
			}
		}
		if len(in.Attrs) > 0 {
			parts := []string{}
			for _, k := range sortedAttrKeys(in.Attrs) {
				parts = append(parts, fmt.Sprintf("%s=%s", k, attrKeyString(in.Attrs[k])))
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(parts, ", "))
		}
		fmt.Fprintf(&sb, " : %s\n", in.Result.Type)
	}
	if f.Ret != nil {
		fmt.Fprintf(&sb, "  return %s\n", f.Ret)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String renders the whole module.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	keys := sortedAttrKeys(m.Attrs)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  attr %s = %v\n", k, m.Attrs[k])
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
