package ir

import (
	"strings"
	"testing"
)

func init() {
	RegisterOp(OpSpec{Name: "test.unary", Args: [][]Kind{{KindVector}}, Result: KindVector})
	RegisterOp(OpSpec{Name: "test.binary", Args: [][]Kind{{KindVector}, {KindVector}}, Result: KindVector})
	RegisterOp(OpSpec{Name: "test.attr", Args: [][]Kind{{KindVector}}, Result: KindVector, RequiredAttrs: []string{"k"}})
	RegisterOp(OpSpec{Name: "test.opt", Args: [][]Kind{{KindVector}, {KindVector}}, MinArgs: 1, Result: KindVector})
}

func TestTypeString(t *testing.T) {
	cases := map[string]Type{
		"tensor<1x3x32x32>": TensorType(1, 3, 32, 32),
		"vector<64>":        VectorType(64),
		"cipher<128>":       CipherType(128),
		"plain<128>":        PlainType(128),
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
	if !TensorType(2, 3).Equal(TensorType(2, 3)) {
		t.Error("equal types not equal")
	}
	if TensorType(2, 3).Equal(TensorType(3, 2)) {
		t.Error("unequal types equal")
	}
	if TensorType(2, 3).Len() != 6 {
		t.Error("Len wrong")
	}
}

func TestEmitAndVerify(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	v := f.Emit("test.unary", VectorType(8), []*Value{p}, nil)
	f.Ret = v
	if err := VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	// Unregistered op.
	f2 := m.NewFunc("bad")
	p2 := f2.NewParam("x", VectorType(8))
	f2.Ret = f2.Emit("test.nonexistent", VectorType(8), []*Value{p2}, nil)
	if err := VerifyFunc(f2); err == nil {
		t.Fatal("expected unregistered-op error")
	}
}

func TestVerifyCatchesArityAndKind(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	f.Ret = f.Emit("test.binary", VectorType(8), []*Value{p}, nil) // missing arg
	if err := VerifyFunc(f); err == nil {
		t.Fatal("expected arity error")
	}

	f2 := m.NewFunc("kinds")
	p2 := f2.NewParam("x", CipherType(8))
	f2.Ret = f2.Emit("test.unary", VectorType(8), []*Value{p2}, nil)
	if err := VerifyFunc(f2); err == nil {
		t.Fatal("expected kind error")
	}

	f3 := m.NewFunc("attrs")
	p3 := f3.NewParam("x", VectorType(8))
	f3.Ret = f3.Emit("test.attr", VectorType(8), []*Value{p3}, nil)
	if err := VerifyFunc(f3); err == nil {
		t.Fatal("expected missing-attr error")
	}

	f4 := m.NewFunc("optional")
	p4 := f4.NewParam("x", VectorType(8))
	f4.Ret = f4.Emit("test.opt", VectorType(8), []*Value{p4}, nil)
	if err := VerifyFunc(f4); err != nil {
		t.Fatalf("optional arg rejected: %v", err)
	}
}

func TestVerifyUseBeforeDef(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	a := f.Emit("test.unary", VectorType(8), []*Value{p}, nil)
	b := f.Emit("test.unary", VectorType(8), []*Value{a}, nil)
	f.Ret = b
	// Swap the instructions to break dominance.
	f.Body[0], f.Body[1] = f.Body[1], f.Body[0]
	if err := VerifyFunc(f); err == nil {
		t.Fatal("expected use-before-def error")
	}
}

func TestDCE(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	live := f.Emit("test.unary", VectorType(8), []*Value{p}, nil)
	f.Emit("test.unary", VectorType(8), []*Value{p}, nil) // dead
	f.Ret = live
	if err := DCE().Run(m); err != nil {
		t.Fatal(err)
	}
	if len(f.Body) != 1 {
		t.Fatalf("DCE left %d instructions", len(f.Body))
	}
}

func TestCSE(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	a := f.Emit("test.attr", VectorType(8), []*Value{p}, map[string]any{"k": 3})
	b := f.Emit("test.attr", VectorType(8), []*Value{p}, map[string]any{"k": 3})
	c := f.Emit("test.attr", VectorType(8), []*Value{p}, map[string]any{"k": 4})
	sum := f.Emit("test.binary", VectorType(8), []*Value{a, b}, nil)
	sum2 := f.Emit("test.binary", VectorType(8), []*Value{sum, c}, nil)
	f.Ret = sum2
	if err := CSE().Run(m); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, in := range f.Body {
		if in.Op == "test.attr" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("CSE kept %d test.attr ops, want 2 (k=3 merged, k=4 kept)", count)
	}
	if err := VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
}

func TestPrinter(t *testing.T) {
	m := NewModule("printme")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(4))
	f.Ret = f.Emit("test.attr", VectorType(4), []*Value{p}, map[string]any{"k": 7})
	s := m.String()
	for _, frag := range []string{"module printme", "func main", "test.attr", "k=7", "return"} {
		if !strings.Contains(s, frag) {
			t.Errorf("printer output missing %q:\n%s", frag, s)
		}
	}
}

func TestOpHistogramAndCounts(t *testing.T) {
	m := NewModule("test")
	f := m.NewFunc("main")
	p := f.NewParam("x", VectorType(8))
	a := f.Emit("test.unary", VectorType(8), []*Value{p}, nil)
	f.Ret = f.Emit("test.binary", VectorType(8), []*Value{a, a}, nil)
	h := f.OpHistogram()
	if h["test.unary"] != 1 || h["test.binary"] != 1 {
		t.Fatalf("histogram %v", h)
	}
	if f.InstrCount("test.") != 2 {
		t.Fatal("InstrCount prefix filter wrong")
	}
}
