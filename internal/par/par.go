// Package par is the shared parallel execution layer for the FHE runtime:
// a fixed worker pool sized from GOMAXPROCS (overridable with the
// ACE_WORKERS environment variable) and a For primitive that distributes
// independent loop iterations — RNS limbs, key-switching digits,
// ciphertext batches — across the pool.
//
// Design constraints, in order:
//
//  1. Determinism. Workers only ever execute disjoint index ranges of a
//     caller-provided body; no reduction order is introduced, so results
//     are bit-identical to the serial loop (the modular arithmetic in
//     internal/ring is exact).
//  2. No deadlock under nesting. A For body may itself call For (the
//     evaluator parallelises over limbs inside digits). The calling
//     goroutine always participates in its own loop and helper dispatch
//     is non-blocking, so progress never depends on a free worker.
//  3. Cheap fallback. Loops whose total work is below a grain threshold
//     run inline on the caller with zero scheduling overhead, keeping the
//     tiny rings used by unit tests fast.
//
// The pool is process-global: limb counts are small (tens), so a single
// pool shared by every Ring and Evaluator wastes no parallelism and
// avoids per-object goroutine churn.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// pool is a fixed set of worker goroutines consuming closures from a
// buffered channel. Submission is non-blocking: if every worker is busy
// and the queue is full, the caller runs the work itself.
type pool struct {
	tasks chan func()
}

// grow spawns extra worker goroutines consuming from the shared queue.
func (p *pool) grow(extra int) {
	for i := 0; i < extra; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
}

// tryRun submits f to the pool without blocking. It reports false when
// the queue is full, in which case the caller must run f (or fold its
// work into its own loop).
func (p *pool) tryRun(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

var (
	mu          sync.Mutex
	numWorkers  int
	poolSize    int // goroutines alive in defaultPool
	defaultPool *pool
)

func init() {
	SetWorkers(workersFromEnv())
}

// workersFromEnv resolves the worker count: ACE_WORKERS if set and
// positive, else GOMAXPROCS.
func workersFromEnv() int {
	if s := os.Getenv("ACE_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current worker count (1 means fully serial).
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return numWorkers
}

// SetWorkers sets the degree of parallelism. n < 1 is clamped to 1 (fully
// serial). Intended for tests (the differential serial-vs-parallel suite)
// and for embedders that know better than GOMAXPROCS. The pool only ever
// grows — shrinking just caps how many chunks For dispatches, and the
// surplus goroutines idle on an empty channel — so resizing is safe while
// other goroutines are mid-For.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	defer mu.Unlock()
	numWorkers = n
	want := n - 1 // the calling goroutine is always worker #0
	if want <= poolSize {
		return
	}
	if defaultPool == nil {
		defaultPool = &pool{tasks: make(chan func(), 64)}
	}
	defaultPool.grow(want - poolSize)
	poolSize = want
}

// For executes fn over the half-open range [0, n) split into contiguous
// chunks of at least grain iterations, distributing chunks across the
// worker pool. fn is called as fn(start, end) on disjoint ranges covering
// [0, n) exactly once; chunk boundaries never depend on timing, only on
// (n, grain, Workers()), so any per-chunk scratch is used deterministically.
//
// When the pool is serial, n <= 0, or n <= grain, fn runs inline as a
// single fn(0, n) call. grain < 1 is treated as 1.
//
// A panic in fn is contained: helpers recover it, every participant
// drains out, and the first panic value is re-raised on the calling
// goroutine after the barrier — so callers can recover a parallel loop's
// panic exactly like a serial one, with no helper still running.
func For(n, grain int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	mu.Lock()
	w := numWorkers
	p := defaultPool
	mu.Unlock()
	if w <= 1 || n <= grain || p == nil {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	size := (n + chunks - 1) / chunks

	var next int64
	body := func() {
		for {
			i := atomic.AddInt64(&next, 1) - 1
			start := int(i) * size
			if start >= n {
				return
			}
			end := start + size
			if end > n {
				end = n
			}
			fn(start, end)
		}
	}

	// Panic containment: a panic in fn on a pool goroutine would kill the
	// whole process (nothing above a bare worker can recover it), so every
	// participant recovers and parks the first panic value; the caller
	// re-raises it after the barrier. The barrier is what makes recovery
	// at higher layers (vm, serve) sound: when For panics out, no helper
	// is still writing to the caller's buffers.
	var (
		panicOnce sync.Once
		panicVal  any
	)
	safeBody := func() {
		defer func() {
			if rec := recover(); rec != nil {
				panicOnce.Do(func() { panicVal = rec })
				// Drain the remaining chunks so sibling participants exit
				// promptly instead of computing doomed work.
				atomic.AddInt64(&next, int64(chunks))
			}
		}()
		body()
	}

	var wg sync.WaitGroup
	for i := 1; i < chunks; i++ {
		wg.Add(1)
		if !p.tryRun(func() { defer wg.Done(); safeBody() }) {
			wg.Done()
			break // saturated: caller and already-dispatched helpers finish the range
		}
	}
	safeBody() // the caller always participates — nesting cannot deadlock
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Inline reports whether For(n, grain, fn) would run fn inline on the
// calling goroutine as a single fn(0, n) call. Zero-alloc kernels branch
// on it: a func literal passed to For escapes to the heap even when For
// ends up invoking it inline, so hot callers (the NTT row loops) call a
// named method directly in the serial case and only construct the
// closure when it will actually be dispatched to workers.
func Inline(n, grain int) bool {
	if n <= 0 {
		return true
	}
	if grain < 1 {
		grain = 1
	}
	mu.Lock()
	w := numWorkers
	p := defaultPool
	mu.Unlock()
	return w <= 1 || n <= grain || p == nil
}

// Do runs the given functions, possibly concurrently, and returns when
// all have completed. It is a convenience for small static task sets
// (e.g. the two halves of a key-switch output).
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	For(len(fns), 1, func(start, end int) {
		for i := start; i < end; i++ {
			fns[i]()
		}
	})
}

// minWork is the serial/parallel break-even point in coefficient
// operations per chunk; see Grain. Overridable for tests via SetMinWork.
var minWork int64 = 1 << 13

// SetMinWork overrides the work threshold below which loops stay serial.
// n <= 0 restores the default. Tests use SetMinWork(1) to force parallel
// chunking on the tiny rings they construct; note rings capture their
// grain at construction time, so call this before NewRing/NewParameters.
func SetMinWork(n int) {
	if n <= 0 {
		n = 1 << 13
	}
	atomic.StoreInt64(&minWork, int64(n))
}

// Grain returns a chunk size (in items) such that each chunk carries at
// least minWork units of work, given the per-item cost. It never returns
// less than 1. Ring operations use this to stay serial on the tiny
// degrees exercised by unit tests while splitting real parameter sets
// limb-per-worker.
func Grain(itemCost int) int {
	mw := int(atomic.LoadInt64(&minWork))
	if itemCost <= 0 {
		return mw
	}
	g := mw / itemCost
	if g < 1 {
		g = 1
	}
	return g
}
