package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversRangeExactlyOnce checks every index is visited once, for a
// spread of sizes, grains and worker counts (including shrink/grow).
func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	for _, w := range []int{1, 2, 4, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
			for _, grain := range []int{0, 1, 3, 100, 5000} {
				hits := make([]int32, n)
				For(n, grain, func(start, end int) {
					if start < 0 || end > n || start >= end {
						t.Errorf("w=%d n=%d grain=%d: bad chunk [%d,%d)", w, n, grain, start, end)
					}
					for i := start; i < end; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("w=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

// TestForNested checks that a For body calling For makes progress even
// when the pool is saturated.
func TestForNested(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	SetWorkers(4)
	var total int64
	For(16, 1, func(start, end int) {
		for i := start; i < end; i++ {
			For(32, 1, func(s, e int) {
				atomic.AddInt64(&total, int64(e-s))
			})
		}
	})
	if total != 16*32 {
		t.Fatalf("nested For executed %d inner iterations, want %d", total, 16*32)
	}
}

// TestForDeterministicChunks checks chunk boundaries depend only on
// (n, grain, workers), which lets callers key per-chunk scratch off start.
func TestForDeterministicChunks(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	SetWorkers(3)
	collect := func() map[int]int {
		m := make(map[int]int)
		var mu32 int32
		For(100, 10, func(start, end int) {
			for !atomic.CompareAndSwapInt32(&mu32, 0, 1) {
			}
			m[start] = end
			atomic.StoreInt32(&mu32, 0)
		})
		return m
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunking not deterministic: %v vs %v", a, b)
	}
	for s, e := range a {
		if b[s] != e {
			t.Fatalf("chunking not deterministic at start=%d: %d vs %d", s, e, b[s])
		}
	}
}

func TestDo(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	SetWorkers(2)
	var a, b int32
	Do(func() { atomic.StoreInt32(&a, 1) }, func() { atomic.StoreInt32(&b, 1) })
	if a != 1 || b != 1 {
		t.Fatalf("Do skipped a task: a=%d b=%d", a, b)
	}
}

func TestGrain(t *testing.T) {
	if g := Grain(1 << 20); g != 1 {
		t.Fatalf("Grain(large) = %d, want 1", g)
	}
	if g := Grain(16); g < 2 {
		t.Fatalf("Grain(16) = %d, want a serial-friendly chunk", g)
	}
	if g := Grain(0); g < 1 {
		t.Fatalf("Grain(0) = %d", g)
	}
}

// TestForPanicPropagates: a panic in the loop body — including on a pool
// helper goroutine — must surface on the calling goroutine after every
// participant has drained, and the pool must stay usable afterwards.
func TestForPanicPropagates(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	for _, w := range []int{1, 4, 8} {
		SetWorkers(w)
		var rec any
		func() {
			defer func() { rec = recover() }()
			For(64, 1, func(start, end int) {
				for i := start; i < end; i++ {
					if i == 37 {
						panic("boom at 37")
					}
				}
			})
		}()
		if rec == nil {
			t.Fatalf("workers=%d: panic did not propagate", w)
		}
		if s, ok := rec.(string); !ok || s != "boom at 37" {
			t.Fatalf("workers=%d: propagated %v, want the original panic value", w, rec)
		}

		// The pool survives: a healthy loop still covers its range.
		var n atomic.Int64
		For(128, 1, func(start, end int) { n.Add(int64(end - start)) })
		if n.Load() != 128 {
			t.Fatalf("workers=%d: pool broken after panic: covered %d/128", w, n.Load())
		}
	}
}

// TestDoPanicPropagates covers the Do convenience wrapper.
func TestDoPanicPropagates(t *testing.T) {
	defer SetWorkers(workersFromEnv())
	SetWorkers(4)
	var rec any
	func() {
		defer func() { rec = recover() }()
		Do(
			func() {},
			func() { panic("do-boom") },
		)
	}()
	if rec == nil {
		t.Fatal("Do did not propagate the panic")
	}
}
