package cluster

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Hedging defaults. The adaptive delay is the router's own per-shard p95
// observation clamped to [DefaultHedgeMin, DefaultHedgeMax]; until a
// shard has hedgeMinSamples observations the estimator answers the
// conservative maximum, so a cold router never hedges eagerly.
const (
	DefaultHedgeMin = 20 * time.Millisecond
	DefaultHedgeMax = 2 * time.Second

	hedgeWindow     = 256
	hedgeMinSamples = 8
	hedgeQuantile   = 0.95
)

// latencyEstimator keeps a sliding window of observed infer latencies per
// shard and answers ceil-rank quantiles over it. Hedge-won requests
// record their *total* latency against the primary that failed to answer
// — otherwise a uniformly slow shard would teach the estimator its own
// slowness and hedging would stop firing exactly where it pays most.
type latencyEstimator struct {
	mu     sync.Mutex
	shards map[string]*latencyRing
}

type latencyRing struct {
	buf  [hedgeWindow]float64 // milliseconds
	n    int                  // filled entries
	next int                  // ring cursor
}

func newLatencyEstimator() *latencyEstimator {
	return &latencyEstimator{shards: make(map[string]*latencyRing)}
}

func (e *latencyEstimator) observe(shard string, d time.Duration) {
	if shard == "" || d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.shards[shard]
	if r == nil {
		r = &latencyRing{}
		e.shards[shard] = r
	}
	r.buf[r.next] = float64(d) / float64(time.Millisecond)
	r.next = (r.next + 1) % hedgeWindow
	if r.n < hedgeWindow {
		r.n++
	}
}

// p95 returns the shard's windowed p95 latency and whether enough
// samples back it. Quantile is ceil-rank (nearest-rank, matching the
// serve layer's latency window) so small windows stay conservative.
func (e *latencyEstimator) p95(shard string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.shards[shard]
	if r == nil || r.n < hedgeMinSamples {
		return 0, false
	}
	samples := make([]float64, r.n)
	copy(samples, r.buf[:r.n])
	sort.Float64s(samples)
	rank := int(math.Ceil(hedgeQuantile*float64(len(samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(samples) {
		rank = len(samples) - 1
	}
	return time.Duration(samples[rank] * float64(time.Millisecond)), true
}

// forget drops a shard's window (it left the ring; a rejoin should not
// inherit stale observations).
func (e *latencyEstimator) forget(shard string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.shards, shard)
}
