package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"

	"antace/internal/serve/api"
)

// Membership is the cluster topology state machine the router runs: an
// epoch counter plus the ring it was committed with. Transitions are
// two-phase — propose the next ring, synchronize it to every member
// (broadcast + re-replication of the ownership delta), and only then
// commit the epoch bump. A failed synchronization commits nothing, so
// readers never observe a ring the shards have not adopted.
//
// Transitions serialize on transMu; Current/View are cheap concurrent
// reads. Epochs increment by exactly one per committed transition.
type Membership struct {
	transMu sync.Mutex // serializes whole transitions, sync phase included

	mu    sync.RWMutex // guards epoch+ring for readers
	epoch uint64
	ring  *Ring
}

// NewMembership builds the epoch-0 membership over the initial member
// list (the router's -shards flag).
func NewMembership(members []string) (*Membership, error) {
	ring, err := NewRing(members, 0)
	if err != nil {
		return nil, err
	}
	return &Membership{ring: ring}, nil
}

// Current returns the committed epoch and ring. The ring is immutable;
// callers may hold it across requests.
func (m *Membership) Current() (uint64, *Ring) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.epoch, m.ring
}

// View returns the committed membership as its wire DTO.
func (m *Membership) View() api.Membership {
	epoch, ring := m.Current()
	return api.Membership{Epoch: epoch, Members: ring.Endpoints()}
}

// SyncFunc pushes a proposed update to the cluster and blocks until every
// member has adopted it and re-replicated its ownership delta. A non-nil
// error aborts the transition without committing.
type SyncFunc func(update api.ClusterUpdate) error

// ErrNoChange is returned by Join/Leave when the requested endpoint is
// already in / already absent from the ring; the membership is unchanged
// and no epoch was spent.
var ErrNoChange = errors.New("cluster: membership unchanged")

// Join adds endpoint to the ring. It validates the endpoint, synchronizes
// the proposed ring via sync, and commits epoch+1 on success. Joining an
// existing member returns ErrNoChange.
func (m *Membership) Join(endpoint string, sync SyncFunc) (api.Membership, error) {
	return m.transition(func(members []string) ([]string, string, error) {
		for _, ep := range members {
			if ep == endpoint {
				return nil, "", ErrNoChange
			}
		}
		return append(members, endpoint), "", nil
	}, sync)
}

// Leave removes endpoint from the ring. The proposed update names the
// endpoint in Leaving so the departing shard knows to hand off and drain;
// force (an ejection) clears Leaving — the dead member is not consulted
// and the survivors re-replicate its orphaned state. Removing the last
// member or a non-member is an error.
func (m *Membership) Leave(endpoint string, force bool, sync SyncFunc) (api.Membership, error) {
	return m.transition(func(members []string) ([]string, string, error) {
		next := members[:0]
		found := false
		for _, ep := range members {
			if ep == endpoint {
				found = true
				continue
			}
			next = append(next, ep)
		}
		if !found {
			return nil, "", ErrNoChange
		}
		if len(next) == 0 {
			return nil, "", errors.New("cluster: refusing to remove the last member")
		}
		leaving := endpoint
		if force {
			leaving = ""
		}
		return next, leaving, nil
	}, sync)
}

func (m *Membership) transition(mutate func([]string) ([]string, string, error), sync SyncFunc) (api.Membership, error) {
	m.transMu.Lock()
	defer m.transMu.Unlock()

	epoch, ring := m.Current()
	next, leaving, err := mutate(ring.Endpoints())
	if err != nil {
		if errors.Is(err, ErrNoChange) {
			return api.Membership{Epoch: epoch, Members: ring.Endpoints()}, err
		}
		return api.Membership{}, err
	}
	nextRing, err := NewRing(next, 0)
	if err != nil {
		return api.Membership{}, fmt.Errorf("cluster: proposed membership invalid: %w", err)
	}
	update := api.ClusterUpdate{Epoch: epoch + 1, Members: nextRing.Endpoints(), Leaving: leaving}
	if sync != nil {
		if err := sync(update); err != nil {
			return api.Membership{}, fmt.Errorf("cluster: membership sync failed, epoch %d not committed: %w", update.Epoch, err)
		}
	}
	m.mu.Lock()
	m.epoch = update.Epoch
	m.ring = nextRing
	m.mu.Unlock()
	return api.Membership{Epoch: update.Epoch, Members: nextRing.Endpoints()}, nil
}

// Wire-message parsing. All cluster control messages are small JSON
// bodies; these helpers bound, strictly decode and validate them so the
// handlers (and the fuzz target) share one hardened path.

// maxControlBody bounds cluster control-message bodies; the largest
// legitimate message is a ClusterUpdate listing maxEndpoints endpoints.
const maxControlBody = 256 << 10

func decodeStrict(data []byte, v any) error {
	if len(data) > maxControlBody {
		return fmt.Errorf("cluster: control message too large (%d bytes)", len(data))
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: bad control message: %w", err)
	}
	if dec.More() {
		return errors.New("cluster: trailing data after control message")
	}
	return nil
}

// ParseUpdate decodes and validates a ClusterUpdate body: a nonzero
// epoch, a member list that builds a valid ring, and a Leaving endpoint
// (when present) that is syntactically valid. Returns the update and the
// ring it describes.
func ParseUpdate(data []byte) (api.ClusterUpdate, *Ring, error) {
	var u api.ClusterUpdate
	if err := decodeStrict(data, &u); err != nil {
		return api.ClusterUpdate{}, nil, err
	}
	if u.Epoch == 0 {
		return api.ClusterUpdate{}, nil, errors.New("cluster: update epoch must be nonzero")
	}
	ring, err := NewRing(u.Members, 0)
	if err != nil {
		return api.ClusterUpdate{}, nil, err
	}
	if u.Leaving != "" {
		if err := validateEndpoint(u.Leaving); err != nil {
			return api.ClusterUpdate{}, nil, err
		}
	}
	return u, ring, nil
}

// ParseMembership decodes and validates a Membership body (the 409 reply
// of an epoch-stale shipment, or GET /v1/cluster/membership).
func ParseMembership(data []byte) (api.Membership, *Ring, error) {
	var mv api.Membership
	if err := decodeStrict(data, &mv); err != nil {
		return api.Membership{}, nil, err
	}
	ring, err := NewRing(mv.Members, 0)
	if err != nil {
		return api.Membership{}, nil, err
	}
	return mv, ring, nil
}

// ParseJoin decodes and validates a JoinRequest body.
func ParseJoin(data []byte) (api.JoinRequest, error) {
	var jr api.JoinRequest
	if err := decodeStrict(data, &jr); err != nil {
		return api.JoinRequest{}, err
	}
	if err := validateEndpoint(jr.Endpoint); err != nil {
		return api.JoinRequest{}, err
	}
	return jr, nil
}

// ParseLeave decodes and validates a LeaveRequest body.
func ParseLeave(data []byte) (api.LeaveRequest, error) {
	var lr api.LeaveRequest
	if err := decodeStrict(data, &lr); err != nil {
		return api.LeaveRequest{}, err
	}
	if err := validateEndpoint(lr.Endpoint); err != nil {
		return api.LeaveRequest{}, err
	}
	return lr, nil
}

// validateEndpoint applies the same syntactic rules NewRing enforces per
// endpoint, so a value accepted here can always be placed on a ring.
func validateEndpoint(ep string) error {
	if ep == "" || strings.TrimSpace(ep) != ep || strings.ContainsAny(ep, ", \t\r\n") {
		return fmt.Errorf("cluster: invalid endpoint %q", ep)
	}
	return nil
}

// StateSource enumerates the replicable state a shard holds, for delta
// re-replication on a membership change. Implemented by serve.Server:
// session bundles come from the durable tier when present (raw bytes)
// or are re-marshaled from the RAM cache; completions are the
// idempotency cache's completed entries.
type StateSource interface {
	ForEachSessionBundle(fn func(id string, bundle []byte))
	ForEachCompletion(fn func(key string, lane, stride int, body []byte))
}
