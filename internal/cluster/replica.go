package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/serve/api"
	"antace/internal/store"
)

// Replication record kinds. A shipment is an ACELOG1 log image whose
// frames each hold one of these records: the kind byte followed by
// uint16-length-prefixed strings and a trailing opaque payload — the
// same framing discipline as the serve journal, checked end to end by
// the store layer's CRCs.
const (
	// RecSession replicates a registered evaluation-key bundle:
	// session id, bundle bytes.
	RecSession = byte(1)
	// RecComplete replicates one idempotency-journal completion:
	// key, lane (uint16), stride (uint16), result bytes.
	RecComplete = byte(2)
	// RecForget withdraws a previously replicated completion: key.
	RecForget = byte(3)
)

// Record is one decoded replication record.
type Record struct {
	Kind      byte
	SessionID string // RecSession
	Bundle    []byte // RecSession
	Key       string // RecComplete, RecForget
	Lane      int    // RecComplete
	Stride    int    // RecComplete
	Body      []byte // RecComplete
}

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("cluster: record string of %d bytes exceeds %d", len(s), math.MaxUint16)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func readString(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("cluster: truncated record string")
	}
	n := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if len(data) < n {
		return "", nil, fmt.Errorf("cluster: record string %d > %d bytes", n, len(data))
	}
	return string(data[:n]), data[n:], nil
}

// EncodeSession builds a RecSession record.
func EncodeSession(id string, bundle []byte) ([]byte, error) {
	buf, err := appendString([]byte{RecSession}, id)
	if err != nil {
		return nil, err
	}
	return append(buf, bundle...), nil
}

// EncodeComplete builds a RecComplete record.
func EncodeComplete(key string, lane, stride int, body []byte) ([]byte, error) {
	if lane < 0 || lane > math.MaxUint16 || stride < 0 || stride > math.MaxUint16 {
		return nil, fmt.Errorf("cluster: lane %d/stride %d out of range", lane, stride)
	}
	buf, err := appendString([]byte{RecComplete}, key)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(lane))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(stride))
	return append(buf, body...), nil
}

// EncodeForget builds a RecForget record.
func EncodeForget(key string) ([]byte, error) {
	return appendString([]byte{RecForget}, key)
}

// DecodeRecord parses one replication record (a frame payload that
// already passed the store layer's CRC).
func DecodeRecord(raw []byte) (Record, error) {
	if len(raw) < 1 {
		return Record{}, fmt.Errorf("cluster: empty replication record")
	}
	kind, rest := raw[0], raw[1:]
	switch kind {
	case RecSession:
		id, rest, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, SessionID: id, Bundle: rest}, nil
	case RecComplete:
		key, rest, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		if len(rest) < 4 {
			return Record{}, fmt.Errorf("cluster: truncated lane in completion record")
		}
		lane := int(binary.LittleEndian.Uint16(rest))
		stride := int(binary.LittleEndian.Uint16(rest[2:]))
		return Record{Kind: kind, Key: key, Lane: lane, Stride: stride, Body: rest[4:]}, nil
	case RecForget:
		key, _, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, Key: key}, nil
	default:
		return Record{}, fmt.Errorf("cluster: unknown replication record kind %d", kind)
	}
}

// ShipperStats are the Shipper's monotone counters.
type ShipperStats struct {
	Shipped    uint64 `json:"shipped"`    // records acknowledged by a replica
	Reshipped  uint64 `json:"reshipped"`  // records re-sent after a torn apply
	Errors     uint64 `json:"errors"`     // shipments abandoned after retries
	Rebalanced uint64 `json:"rebalanced"` // records re-shipped by membership changes
}

// Shipper implements the serve layer's Replicator against a cluster
// ring: every session's durable state ships to the ring successor of
// that session's primary. Session-bundle shipments are synchronous —
// when registration answers 201, the replica can already serve the
// session — while journal completions ride an ordered async queue, so
// the request fast path never waits on a peer (a lost completion only
// costs a deterministic re-execution on failover).
type Shipper struct {
	self string
	hc   *http.Client
	log  *slog.Logger
	pol  fheclient.RetryPolicy

	// ring and epoch swap atomically on membership changes: Adopt installs
	// the new topology first, so everything enqueued afterwards targets the
	// new owners, then Rebalance re-ships the ownership delta.
	ringMu sync.RWMutex
	ring   *Ring
	epoch  uint64

	mu     sync.Mutex
	queue  []shipItem
	kick   chan struct{}
	closed bool
	wg     sync.WaitGroup

	stats struct {
		mu                                     sync.Mutex
		shipped, reshipped, errors, rebalanced uint64
	}
}

// shipItem carries the session-scoped key alongside the encoded record:
// the target shard is computed from the key at drain time, so records
// queued across a membership change land on the post-change successor.
type shipItem struct {
	key string
	rec []byte
}

// NewShipper builds a Shipper for the shard at self (which must be a
// ring member). A nil http.Client uses a dedicated one with sane
// timeouts; a nil logger discards.
func NewShipper(ring *Ring, self string, hc *http.Client, log *slog.Logger) (*Shipper, error) {
	ok := false
	for _, ep := range ring.Endpoints() {
		if ep == self {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("cluster: shipper self %q is not a ring member %v", self, ring.Endpoints())
	}
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Shipper{
		ring: ring,
		self: self,
		hc:   hc,
		log:  log,
		pol:  fheclient.DefaultRetryPolicy(),
		kick: make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.pump()
	return s, nil
}

// Stats returns a snapshot of the shipment counters.
func (s *Shipper) Stats() ShipperStats {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return ShipperStats{Shipped: s.stats.shipped, Reshipped: s.stats.reshipped, Errors: s.stats.errors, Rebalanced: s.stats.rebalanced}
}

// Self returns the endpoint this shipper ships on behalf of.
func (s *Shipper) Self() string { return s.self }

// current returns the topology the shipper is operating under.
func (s *Shipper) current() (*Ring, uint64) {
	s.ringMu.RLock()
	defer s.ringMu.RUnlock()
	return s.ring, s.epoch
}

// View returns the shipper's adopted membership (epoch 0 until the first
// ClusterUpdate arrives — the static -cluster-peers boot ring).
func (s *Shipper) View() api.Membership {
	ring, epoch := s.current()
	return api.Membership{Epoch: epoch, Members: ring.Endpoints()}
}

// Adopt installs a newer topology. Older or equal epochs are ignored
// (duplicate broadcasts, races with a 409 adoption) unless the shipper is
// still at epoch 0 and the ring differs. Returns whether it was adopted.
// Unlike construction, self need not be a member — a draining shard
// adopts the ring it is leaving so its final shipments target the new
// owners.
func (s *Shipper) Adopt(epoch uint64, ring *Ring) bool {
	if ring == nil {
		return false
	}
	s.ringMu.Lock()
	defer s.ringMu.Unlock()
	if epoch <= s.epoch {
		return false
	}
	s.ring, s.epoch = ring, epoch
	return true
}

// successor picks the replica for a session key: the first ring node
// for that key that is not this shard. When this shard is the key's
// primary that is the ring successor; when a failover made this shard
// the registrar, state ships back toward the (possibly dead) primary,
// fail-open.
func (s *Shipper) successor(key string) string {
	ring, _ := s.current()
	for _, ep := range ring.LookupN(key, 2) {
		if ep != s.self {
			return ep
		}
	}
	return ""
}

// ShipSession replicates a registered key bundle to the session's
// successor shard, synchronously with retries: a 201 from registration
// implies the replica holds the keys, which is what makes shard death
// cost zero re-registration.
func (s *Shipper) ShipSession(id string, bundle []byte) error {
	rec, err := EncodeSession(id, bundle)
	if err != nil {
		s.countErr()
		return err
	}
	if err := s.shipKeyed(id, [][]byte{rec}); err != nil {
		s.countErr()
		return fmt.Errorf("cluster: replicating session %s: %w", id, err)
	}
	return nil
}

// shipKeyed ships records for one session key to its current successor,
// re-resolving the target when the receiver proves the topology moved
// underneath us (a 409 epoch-stale reply adopts the newer ring).
func (s *Shipper) shipKeyed(key string, recs [][]byte) error {
	var lastErr error
	for round := 0; round < 3; round++ {
		target := s.successor(key)
		if target == "" {
			return nil // single-shard ring: nowhere to replicate
		}
		err := s.shipSync(target, recs)
		if err == nil {
			return nil
		}
		lastErr = err
		if !errors.Is(err, errStaleEpoch) {
			return err
		}
		// shipSync already adopted the newer membership; loop to re-target.
	}
	return lastErr
}

// ShipComplete replicates one idempotency completion asynchronously.
// The key is session-scoped ("<sessionid>/<idemkey>"), so the target is
// derived from its session half.
func (s *Shipper) ShipComplete(key string, lane, stride int, body []byte) {
	rec, err := EncodeComplete(key, lane, stride, body)
	s.enqueue(key, rec, err)
}

// ShipForget withdraws a completion from the replica asynchronously.
func (s *Shipper) ShipForget(key string) {
	rec, err := EncodeForget(key)
	s.enqueue(key, rec, err)
}

func (s *Shipper) enqueue(key string, rec []byte, err error) {
	if err != nil {
		s.countErr()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, shipItem{key: sessionOf(key), rec: rec})
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// sessionOf extracts the session half of a serve idempotency key
// ("<sessionid>/<clientkey>"); a key without the separator hashes
// whole.
func sessionOf(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i]
		}
	}
	return key
}

// pump drains the async queue, batching everything queued for one
// target into a single image per shipment.
func (s *Shipper) pump() {
	defer s.wg.Done()
	for range s.kick {
		for {
			s.mu.Lock()
			if len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			// Take the longest prefix that resolves to one target under the
			// current ring, so ordering per target is preserved (a forget must
			// never overtake its complete).
			target := s.successor(s.queue[0].key)
			var recs [][]byte
			var keys []string
			rest := s.queue[:0]
			taken := true
			for _, it := range s.queue {
				if taken && s.successor(it.key) == target {
					recs = append(recs, it.rec)
					keys = append(keys, it.key)
					continue
				}
				taken = false
				rest = append(rest, it)
			}
			s.queue = append([]shipItem(nil), rest...)
			s.mu.Unlock()
			if target == "" {
				continue // single-member ring: nothing to ship to
			}
			err := s.shipSync(target, recs)
			if errors.Is(err, errStaleEpoch) {
				// The receiver is on a newer ring (now adopted): re-queue the
				// batch at the front so it re-resolves under the new topology
				// without overtaking anything.
				s.mu.Lock()
				requeue := make([]shipItem, 0, len(recs)+len(s.queue))
				for i, rec := range recs {
					requeue = append(requeue, shipItem{key: keys[i], rec: rec})
				}
				s.queue = append(requeue, s.queue...)
				s.mu.Unlock()
				continue
			}
			if err != nil {
				s.countErr()
				s.log.Warn("replica.ship.failed", slog.String("target", target),
					slog.Int("records", len(recs)), slog.String("err", err.Error()))
			}
		}
	}
}

// Close flushes the async queue and stops the pump. Safe to call once.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// One final kick so the pump drains anything still queued, then stop.
	select {
	case s.kick <- struct{}{}:
	default:
	}
	close(s.kick)
	s.wg.Wait()
}

// errStaleEpoch reports that a receiver on a newer membership epoch
// rejected a shipment; the shipper has already adopted the newer ring
// and the caller should re-resolve targets and re-send.
var errStaleEpoch = errors.New("cluster: shipment epoch stale, membership adopted")

// shipSync POSTs one image of records to target's /v1/replica with
// RetryPolicy backoff, re-shipping the cut tail when the replica
// reports a torn apply. The replica.ship.torn fault point truncates the
// image mid-frame before the POST — the wire shape of a shard dying
// mid-stream — to exercise exactly that path. A 409 epoch-stale reply
// adopts the receiver's membership and returns errStaleEpoch so the
// caller can re-target under the new ring.
func (s *Shipper) shipSync(target string, recs [][]byte) error {
	pol := s.pol
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		image := store.Image(recs)
		if ferr := fault.Inject(fault.ReplicaShipTorn); ferr != nil && len(recs) > 0 {
			// Cut inside the last frame: the replica must apply the intact
			// prefix and report how far it got.
			cut := len(image) - len(recs[len(recs)-1])/2 - 1
			if cut < len(store.ImageHeader()) {
				cut = len(store.ImageHeader())
			}
			image = image[:cut]
		}
		applied, stale, err := s.postImage(target, image)
		if err == nil && stale != nil {
			if mv, ring, perr := ParseMembership(*stale); perr == nil && s.Adopt(mv.Epoch, ring) {
				s.log.Info("replica.ship.adopted", slog.Uint64("epoch", mv.Epoch), slog.String("from", target))
				return errStaleEpoch
			}
			// Could not adopt anything newer — retry as a plain failure so a
			// confused receiver cannot wedge the queue in a re-target loop.
			lastErr = fmt.Errorf("replica apply at %s rejected epoch as stale", target)
			if attempt < pol.MaxAttempts {
				time.Sleep(pol.Backoff(attempt, 0))
			}
			continue
		}
		if err == nil {
			s.stats.mu.Lock()
			s.stats.shipped += uint64(applied)
			s.stats.mu.Unlock()
			if applied >= len(recs) {
				return nil
			}
			// Torn apply: everything before the cut landed; re-ship the rest.
			s.stats.mu.Lock()
			s.stats.reshipped += uint64(len(recs) - applied)
			s.stats.mu.Unlock()
			recs = recs[applied:]
			continue
		}
		lastErr = err
		if attempt < pol.MaxAttempts {
			time.Sleep(pol.Backoff(attempt, 0))
		}
	}
	return lastErr
}

// postImage ships one image. A 409 reply returns the receiver's
// membership body in stale instead of an error.
func (s *Shipper) postImage(target string, image []byte) (applied int, stale *[]byte, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+api.PathReplica, bytes.NewReader(image))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	_, epoch := s.current()
	req.Header.Set(api.HeaderEpoch, strconv.FormatUint(epoch, 10))
	resp, err := s.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, maxControlBody+1))
		return 0, &body, nil
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return 0, nil, fmt.Errorf("replica apply returned %d: %s", resp.StatusCode, body)
	}
	var reply api.ReplicaApply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply); err != nil {
		return 0, nil, fmt.Errorf("decoding replica apply reply: %w", err)
	}
	return reply.Applied, nil, nil
}

func (s *Shipper) countErr() {
	s.stats.mu.Lock()
	s.stats.errors++
	s.stats.mu.Unlock()
}

// Rebalance adopts a broadcast ClusterUpdate and re-ships the ownership
// delta from src: every session this shard holds whose owner set gained
// a member that cannot already hold its state gets its bundle and
// completed results shipped there. When this shard is the one leaving,
// the delta is everything it holds, shipped to every new owner — the
// handoff that lets it drain without losing a session. Shipments are
// synchronous; the returned count is records shipped. Duplicate ships
// (two holders re-shipping the same session after an ejection) are
// harmless: replica apply is idempotent.
func (s *Shipper) Rebalance(update api.ClusterUpdate, newRing *Ring, src StateSource) (int, error) {
	oldRing, _ := s.current()
	if !s.Adopt(update.Epoch, newRing) {
		// Already on this epoch or newer: the delta was (or is being)
		// shipped by the adoption that got there first.
		return 0, nil
	}
	if src == nil {
		return 0, nil
	}
	leaving := update.Leaving == s.self
	if !leaving {
		leaving = true
		for _, ep := range update.Members {
			if ep == s.self {
				leaving = false
				break
			}
		}
	}

	oldOwners := func(id string) map[string]bool {
		set := make(map[string]bool, 2)
		for _, ep := range oldRing.LookupN(id, 2) {
			set[ep] = true
		}
		return set
	}

	// Group completions by session so each target receives the bundle
	// followed by its results in one ordered image.
	completions := make(map[string][][]byte)
	var encErr error
	src.ForEachCompletion(func(key string, lane, stride int, body []byte) {
		rec, err := EncodeComplete(key, lane, stride, body)
		if err != nil {
			encErr = err
			return
		}
		sid := sessionOf(key)
		completions[sid] = append(completions[sid], rec)
	})

	shipped := 0
	var firstErr error
	src.ForEachSessionBundle(func(id string, bundle []byte) {
		was := oldOwners(id)
		var targets []string
		for _, ep := range newRing.LookupN(id, 2) {
			if ep == s.self {
				continue
			}
			// A leaver must place its state on every new owner; a survivor
			// only ships to owners the old ring could not have populated.
			if leaving || !was[ep] {
				targets = append(targets, ep)
			}
		}
		if len(targets) == 0 {
			return
		}
		rec, err := EncodeSession(id, bundle)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		recs := append([][]byte{rec}, completions[id]...)
		for _, target := range targets {
			err := s.shipSync(target, recs)
			if errors.Is(err, errStaleEpoch) {
				// An even newer epoch arrived mid-rebalance; its own
				// rebalance owns the delta from here.
				continue
			}
			if err != nil {
				s.countErr()
				s.log.Warn("replica.rebalance.failed", slog.String("target", target),
					slog.String("session", id), slog.String("err", err.Error()))
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			shipped += len(recs)
		}
	})
	if firstErr == nil {
		firstErr = encErr
	}
	s.stats.mu.Lock()
	s.stats.rebalanced += uint64(shipped)
	s.stats.mu.Unlock()
	s.log.Info("replica.rebalance", slog.Uint64("epoch", update.Epoch),
		slog.Int("records", shipped), slog.Bool("leaving", leaving))
	return shipped, firstErr
}
