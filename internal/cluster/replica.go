package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/serve/api"
	"antace/internal/store"
)

// Replication record kinds. A shipment is an ACELOG1 log image whose
// frames each hold one of these records: the kind byte followed by
// uint16-length-prefixed strings and a trailing opaque payload — the
// same framing discipline as the serve journal, checked end to end by
// the store layer's CRCs.
const (
	// RecSession replicates a registered evaluation-key bundle:
	// session id, bundle bytes.
	RecSession = byte(1)
	// RecComplete replicates one idempotency-journal completion:
	// key, lane (uint16), stride (uint16), result bytes.
	RecComplete = byte(2)
	// RecForget withdraws a previously replicated completion: key.
	RecForget = byte(3)
)

// Record is one decoded replication record.
type Record struct {
	Kind      byte
	SessionID string // RecSession
	Bundle    []byte // RecSession
	Key       string // RecComplete, RecForget
	Lane      int    // RecComplete
	Stride    int    // RecComplete
	Body      []byte // RecComplete
}

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("cluster: record string of %d bytes exceeds %d", len(s), math.MaxUint16)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func readString(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("cluster: truncated record string")
	}
	n := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if len(data) < n {
		return "", nil, fmt.Errorf("cluster: record string %d > %d bytes", n, len(data))
	}
	return string(data[:n]), data[n:], nil
}

// EncodeSession builds a RecSession record.
func EncodeSession(id string, bundle []byte) ([]byte, error) {
	buf, err := appendString([]byte{RecSession}, id)
	if err != nil {
		return nil, err
	}
	return append(buf, bundle...), nil
}

// EncodeComplete builds a RecComplete record.
func EncodeComplete(key string, lane, stride int, body []byte) ([]byte, error) {
	if lane < 0 || lane > math.MaxUint16 || stride < 0 || stride > math.MaxUint16 {
		return nil, fmt.Errorf("cluster: lane %d/stride %d out of range", lane, stride)
	}
	buf, err := appendString([]byte{RecComplete}, key)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(lane))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(stride))
	return append(buf, body...), nil
}

// EncodeForget builds a RecForget record.
func EncodeForget(key string) ([]byte, error) {
	return appendString([]byte{RecForget}, key)
}

// DecodeRecord parses one replication record (a frame payload that
// already passed the store layer's CRC).
func DecodeRecord(raw []byte) (Record, error) {
	if len(raw) < 1 {
		return Record{}, fmt.Errorf("cluster: empty replication record")
	}
	kind, rest := raw[0], raw[1:]
	switch kind {
	case RecSession:
		id, rest, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, SessionID: id, Bundle: rest}, nil
	case RecComplete:
		key, rest, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		if len(rest) < 4 {
			return Record{}, fmt.Errorf("cluster: truncated lane in completion record")
		}
		lane := int(binary.LittleEndian.Uint16(rest))
		stride := int(binary.LittleEndian.Uint16(rest[2:]))
		return Record{Kind: kind, Key: key, Lane: lane, Stride: stride, Body: rest[4:]}, nil
	case RecForget:
		key, _, err := readString(rest)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, Key: key}, nil
	default:
		return Record{}, fmt.Errorf("cluster: unknown replication record kind %d", kind)
	}
}

// ShipperStats are the Shipper's monotone counters.
type ShipperStats struct {
	Shipped   uint64 `json:"shipped"`    // records acknowledged by a replica
	Reshipped uint64 `json:"reshipped"`  // records re-sent after a torn apply
	Errors    uint64 `json:"errors"`     // shipments abandoned after retries
}

// Shipper implements the serve layer's Replicator against a cluster
// ring: every session's durable state ships to the ring successor of
// that session's primary. Session-bundle shipments are synchronous —
// when registration answers 201, the replica can already serve the
// session — while journal completions ride an ordered async queue, so
// the request fast path never waits on a peer (a lost completion only
// costs a deterministic re-execution on failover).
type Shipper struct {
	ring *Ring
	self string
	hc   *http.Client
	log  *slog.Logger
	pol  fheclient.RetryPolicy

	mu     sync.Mutex
	queue  []shipItem
	kick   chan struct{}
	closed bool
	wg     sync.WaitGroup

	stats struct {
		mu                         sync.Mutex
		shipped, reshipped, errors uint64
	}
}

type shipItem struct {
	target string
	rec    []byte
}

// NewShipper builds a Shipper for the shard at self (which must be a
// ring member). A nil http.Client uses a dedicated one with sane
// timeouts; a nil logger discards.
func NewShipper(ring *Ring, self string, hc *http.Client, log *slog.Logger) (*Shipper, error) {
	ok := false
	for _, ep := range ring.Endpoints() {
		if ep == self {
			ok = true
			break
		}
	}
	if !ok {
		return nil, fmt.Errorf("cluster: shipper self %q is not a ring member %v", self, ring.Endpoints())
	}
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Shipper{
		ring: ring,
		self: self,
		hc:   hc,
		log:  log,
		pol:  fheclient.DefaultRetryPolicy(),
		kick: make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.pump()
	return s, nil
}

// Stats returns a snapshot of the shipment counters.
func (s *Shipper) Stats() ShipperStats {
	s.stats.mu.Lock()
	defer s.stats.mu.Unlock()
	return ShipperStats{Shipped: s.stats.shipped, Reshipped: s.stats.reshipped, Errors: s.stats.errors}
}

// successor picks the replica for a session key: the first ring node
// for that key that is not this shard. When this shard is the key's
// primary that is the ring successor; when a failover made this shard
// the registrar, state ships back toward the (possibly dead) primary,
// fail-open.
func (s *Shipper) successor(key string) string {
	for _, ep := range s.ring.LookupN(key, 2) {
		if ep != s.self {
			return ep
		}
	}
	return ""
}

// ShipSession replicates a registered key bundle to the session's
// successor shard, synchronously with retries: a 201 from registration
// implies the replica holds the keys, which is what makes shard death
// cost zero re-registration.
func (s *Shipper) ShipSession(id string, bundle []byte) error {
	target := s.successor(id)
	if target == "" {
		return nil // single-shard ring: nowhere to replicate
	}
	rec, err := EncodeSession(id, bundle)
	if err != nil {
		s.countErr()
		return err
	}
	if err := s.shipSync(target, [][]byte{rec}); err != nil {
		s.countErr()
		return fmt.Errorf("cluster: replicating session %s to %s: %w", id, target, err)
	}
	return nil
}

// ShipComplete replicates one idempotency completion asynchronously.
// The key is session-scoped ("<sessionid>/<idemkey>"), so the target is
// derived from its session half.
func (s *Shipper) ShipComplete(key string, lane, stride int, body []byte) {
	rec, err := EncodeComplete(key, lane, stride, body)
	s.enqueue(key, rec, err)
}

// ShipForget withdraws a completion from the replica asynchronously.
func (s *Shipper) ShipForget(key string) {
	rec, err := EncodeForget(key)
	s.enqueue(key, rec, err)
}

func (s *Shipper) enqueue(key string, rec []byte, err error) {
	if err != nil {
		s.countErr()
		return
	}
	target := s.successor(sessionOf(key))
	if target == "" {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, shipItem{target: target, rec: rec})
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// sessionOf extracts the session half of a serve idempotency key
// ("<sessionid>/<clientkey>"); a key without the separator hashes
// whole.
func sessionOf(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i]
		}
	}
	return key
}

// pump drains the async queue, batching everything queued for one
// target into a single image per shipment.
func (s *Shipper) pump() {
	defer s.wg.Done()
	for range s.kick {
		for {
			s.mu.Lock()
			if len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			// Take the longest same-target prefix so ordering per target is
			// preserved (a forget must never overtake its complete).
			target := s.queue[0].target
			var recs [][]byte
			rest := s.queue[:0]
			taken := true
			for _, it := range s.queue {
				if taken && it.target == target {
					recs = append(recs, it.rec)
					continue
				}
				taken = false
				rest = append(rest, it)
			}
			s.queue = append([]shipItem(nil), rest...)
			s.mu.Unlock()
			if err := s.shipSync(target, recs); err != nil {
				s.countErr()
				s.log.Warn("replica.ship.failed", slog.String("target", target),
					slog.Int("records", len(recs)), slog.String("err", err.Error()))
			}
		}
	}
}

// Close flushes the async queue and stops the pump. Safe to call once.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// One final kick so the pump drains anything still queued, then stop.
	select {
	case s.kick <- struct{}{}:
	default:
	}
	close(s.kick)
	s.wg.Wait()
}

// shipSync POSTs one image of records to target's /v1/replica with
// RetryPolicy backoff, re-shipping the cut tail when the replica
// reports a torn apply. The replica.ship.torn fault point truncates the
// image mid-frame before the POST — the wire shape of a shard dying
// mid-stream — to exercise exactly that path.
func (s *Shipper) shipSync(target string, recs [][]byte) error {
	pol := s.pol
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		image := store.Image(recs)
		if ferr := fault.Inject(fault.ReplicaShipTorn); ferr != nil && len(recs) > 0 {
			// Cut inside the last frame: the replica must apply the intact
			// prefix and report how far it got.
			cut := len(image) - len(recs[len(recs)-1])/2 - 1
			if cut < len(store.ImageHeader()) {
				cut = len(store.ImageHeader())
			}
			image = image[:cut]
		}
		applied, err := s.postImage(target, image)
		if err == nil {
			s.stats.mu.Lock()
			s.stats.shipped += uint64(applied)
			s.stats.mu.Unlock()
			if applied >= len(recs) {
				return nil
			}
			// Torn apply: everything before the cut landed; re-ship the rest.
			s.stats.mu.Lock()
			s.stats.reshipped += uint64(len(recs) - applied)
			s.stats.mu.Unlock()
			recs = recs[applied:]
			continue
		}
		lastErr = err
		if attempt < pol.MaxAttempts {
			time.Sleep(pol.Backoff(attempt, 0))
		}
	}
	return lastErr
}

func (s *Shipper) postImage(target string, image []byte) (applied int, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+api.PathReplica, bytes.NewReader(image))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	resp, err := s.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return 0, fmt.Errorf("replica apply returned %d: %s", resp.StatusCode, body)
	}
	var reply api.ReplicaApply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply); err != nil {
		return 0, fmt.Errorf("decoding replica apply reply: %w", err)
	}
	return reply.Applied, nil
}

func (s *Shipper) countErr() {
	s.stats.mu.Lock()
	s.stats.errors++
	s.stats.mu.Unlock()
}
