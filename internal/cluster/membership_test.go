package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"antace/internal/serve/api"
)

// TestMembershipEpochPerTransition pins the two-phase contract: every
// committed transition costs exactly one epoch, no-ops cost none, and a
// failed sync commits nothing at all.
func TestMembershipEpochPerTransition(t *testing.T) {
	m, err := NewMembership([]string{"http://a", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	if ep, ring := m.Current(); ep != 0 || ring.Len() != 2 {
		t.Fatalf("fresh membership: epoch %d, %d members", ep, ring.Len())
	}

	var synced []api.ClusterUpdate
	record := func(u api.ClusterUpdate) error { synced = append(synced, u); return nil }

	view, err := m.Join("http://c", record)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || len(view.Members) != 3 {
		t.Fatalf("join committed %+v", view)
	}
	if len(synced) != 1 || synced[0].Epoch != 1 || synced[0].Leaving != "" {
		t.Fatalf("join synced %+v", synced)
	}

	// Joining an existing member spends no epoch.
	if _, err := m.Join("http://c", record); !errors.Is(err, ErrNoChange) {
		t.Fatalf("duplicate join: %v", err)
	}
	if ep, _ := m.Current(); ep != 1 {
		t.Fatalf("duplicate join moved the epoch to %d", ep)
	}

	// A graceful leave names the leaver so the broadcast can contact it
	// first; an ejection must not (the dead shard is not consulted).
	view, err = m.Leave("http://b", false, record)
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 2 || synced[1].Leaving != "http://b" {
		t.Fatalf("leave committed %+v, synced %+v", view, synced[1])
	}
	if _, err := m.Leave("http://b", false, record); !errors.Is(err, ErrNoChange) {
		t.Fatalf("double leave: %v", err)
	}
	if _, err := m.Leave("http://c", true, record); err != nil {
		t.Fatal(err)
	}
	if synced[2].Leaving != "" {
		t.Fatalf("ejection named the dead shard in Leaving: %+v", synced[2])
	}

	// Failed sync: nothing commits, the next attempt proposes the same
	// epoch again.
	boom := errors.New("broadcast died")
	if _, err := m.Join("http://d", func(api.ClusterUpdate) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("failed sync: %v", err)
	}
	if ep, ring := m.Current(); ep != 3 || ring.Len() != 1 {
		t.Fatalf("failed sync committed: epoch %d, %d members", ep, ring.Len())
	}
	if _, err := m.Join("http://d", record); err != nil {
		t.Fatal(err)
	}
	if synced[len(synced)-1].Epoch != 4 {
		t.Fatalf("retry after failed sync proposed epoch %d, want 4", synced[len(synced)-1].Epoch)
	}

	// The last member can never be removed — the cluster would have no
	// owner for any session.
	if _, err := m.Leave("http://d", true, record); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Leave("http://a", true, record); err == nil || errors.Is(err, ErrNoChange) {
		t.Fatalf("removing the last member: %v", err)
	}

	// Invalid endpoints are rejected before any sync fires.
	before := len(synced)
	if _, err := m.Join("http://x,http://y", record); err == nil {
		t.Fatal("comma-bearing endpoint accepted")
	}
	if len(synced) != before {
		t.Fatal("invalid join reached the sync phase")
	}
}

// TestMembershipConcurrentConvergence hammers one Membership with
// concurrent joins, leaves and ejections under -race. Invariants: the
// epoch advances by exactly one per successful sync, and the final view
// equals the last update that synced — transitions serialize, so no
// commit can interleave with another's sync phase.
func TestMembershipConcurrentConvergence(t *testing.T) {
	m, err := NewMembership([]string{"http://seed"})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var last api.ClusterUpdate
	var commits uint64
	record := func(u api.ClusterUpdate) error {
		mu.Lock()
		defer mu.Unlock()
		if u.Epoch != commits+1 {
			t.Errorf("sync saw epoch %d after %d commits", u.Epoch, commits)
		}
		commits++
		last = u
		return nil
	}

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := fmt.Sprintf("http://shard-%d", w)
			for i := 0; i < 25; i++ {
				_, _ = m.Join(ep, record)
				_, _ = m.Leave(ep, i%2 == 0, record)
			}
			_, _ = m.Join(ep, record)
		}(w)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	ep, ring := m.Current()
	if ep != commits {
		t.Fatalf("final epoch %d, %d commits", ep, commits)
	}
	if ep != last.Epoch {
		t.Fatalf("final epoch %d but last synced update was %d", ep, last.Epoch)
	}
	got := ring.Endpoints()
	if len(got) != len(last.Members) {
		t.Fatalf("final ring %v, last synced %v", got, last.Members)
	}
	want := map[string]bool{}
	for _, e := range last.Members {
		want[e] = true
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("final ring member %q never synced; ring %v, synced %v", e, got, last.Members)
		}
	}
}

// FuzzMembershipWire feeds arbitrary bytes to every cluster control-
// message parser. Contract: no panic ever; and an accepted message is
// stable — re-encoding and re-parsing yields the same value, and its
// member list always builds a ring (so a handler can never accept a
// message it cannot act on).
func FuzzMembershipWire(f *testing.F) {
	f.Add([]byte(`{"epoch":1,"members":["http://a","http://b"],"leaving":"http://a"}`))
	f.Add([]byte(`{"epoch":3,"members":["http://a"]}`))
	f.Add([]byte(`{"endpoint":"http://c"}`))
	f.Add([]byte(`{"endpoint":"http://c","force":true}`))
	f.Add([]byte(`{"epoch":0,"members":[]}`))
	f.Add([]byte(`{"epoch":1,"members":["http://a"]}{"epoch":2}`))
	f.Add([]byte(`{"epoch":18446744073709551615,"members":[" http://pad "]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if u, ring, err := ParseUpdate(data); err == nil {
			if ring == nil || ring.Len() != len(u.Members) {
				t.Fatalf("accepted update %+v with ring %v", u, ring)
			}
			re, err := json.Marshal(u)
			if err != nil {
				t.Fatal(err)
			}
			u2, _, err := ParseUpdate(re)
			if err != nil {
				t.Fatalf("re-encoded update rejected: %v", err)
			}
			if u2.Epoch != u.Epoch || u2.Leaving != u.Leaving || len(u2.Members) != len(u.Members) {
				t.Fatalf("update round-trip drifted: %+v vs %+v", u, u2)
			}
		}
		if mv, ring, err := ParseMembership(data); err == nil {
			if ring == nil || ring.Len() != len(mv.Members) {
				t.Fatalf("accepted membership %+v with ring %v", mv, ring)
			}
			re, err := json.Marshal(mv)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := ParseMembership(re); err != nil {
				t.Fatalf("re-encoded membership rejected: %v", err)
			}
		}
		if jr, err := ParseJoin(data); err == nil {
			if err := validateEndpoint(jr.Endpoint); err != nil {
				t.Fatalf("accepted join with endpoint %q", jr.Endpoint)
			}
			re, _ := json.Marshal(jr)
			if jr2, err := ParseJoin(re); err != nil || !bytes.Equal([]byte(jr2.Endpoint), []byte(jr.Endpoint)) {
				t.Fatalf("join round-trip drifted: %v %+v", err, jr2)
			}
		}
		if lr, err := ParseLeave(data); err == nil {
			if err := validateEndpoint(lr.Endpoint); err != nil {
				t.Fatalf("accepted leave with endpoint %q", lr.Endpoint)
			}
			re, _ := json.Marshal(lr)
			if lr2, err := ParseLeave(re); err != nil || lr2 != lr {
				t.Fatalf("leave round-trip drifted: %v %+v", err, lr2)
			}
		}
	})
}
