package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"antace/internal/cluster"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// tryInfer is rawInfer without t.Fatal, safe for load goroutines.
func tryInfer(base, session, idemKey string, ctBytes []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, base+api.PathInfer, bytes.NewReader(ctBytes))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(api.HeaderSession, session)
	req.Header.Set(api.HeaderIdemKey, idemKey)
	req.Header.Set(api.HeaderDeadlineMs, "120000")
	resp, err := (&http.Client{Timeout: 3 * time.Minute}).Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// chaosFleet is the subprocess fleet shared by the membership chaos
// tests: n aced shards wired for replication plus one acerouter.
type chaosFleet struct {
	aced, acerouter string
	urls            []string
	peers           string
	procs           map[string]*exec.Cmd
	routerURL       string
}

// startChaosFleet boots n shards and a router. extraArgs[i] is appended
// to shard i's command line.
func startChaosFleet(t *testing.T, n int, extraArgs map[int][]string) *chaosFleet {
	t.Helper()
	f := &chaosFleet{
		aced:      buildBin(t, "antace/cmd/aced"),
		acerouter: buildBin(t, "antace/cmd/acerouter"),
		procs:     map[string]*exec.Cmd{},
	}
	ports := freePorts(t, n)
	for _, p := range ports {
		f.urls = append(f.urls, fmt.Sprintf("http://127.0.0.1:%d", p))
	}
	f.peers = strings.Join(f.urls, ",")
	for i, p := range ports {
		args := []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", p),
			"-workers", "1",
			"-cluster-self", f.urls[i],
			"-cluster-peers", f.peers,
		}
		args = append(args, extraArgs[i]...)
		cmd, _ := startProc(t, f.aced, args...)
		f.procs[f.urls[i]] = cmd
	}
	_, f.routerURL = startProc(t, f.acerouter, "-addr", "127.0.0.1:0", "-shards", f.peers)
	return f
}

// registerVia registers a fresh client through url and returns it with
// its session id and a marshaled input ciphertext.
func registerVia(t *testing.T, url string, seed uint64, pattern func(int) float64) (*fheclient.Client, string, []byte) {
	t.Helper()
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Register(ctx, ring.SeedFromInt(seed))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = pattern(i)
	}
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return c, id, ctBytes
}

func fetchMembership(t *testing.T, base string) api.Membership {
	t.Helper()
	resp, err := http.Get(base + api.PathClusterMembership)
	if err != nil {
		t.Fatal(err)
	}
	var view api.Membership
	err = jsonBody(resp, &view)
	resp.Body.Close()
	if err != nil || view.Epoch == 0 {
		t.Fatalf("membership from %s: %+v err %v", base, view, err)
	}
	return view
}

// TestChaosMembershipJoinMidLoad: a brand-new shard — booted knowing
// only itself — joins a 3-shard cluster through the router while
// requests are in flight. The join must be invisible to clients: no
// re-registration, every response (during and after the change)
// byte-identical to the uninterrupted reference.
func TestChaosMembershipJoinMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	f := startChaosFleet(t, 3, nil)
	_, sessID, ctBytes := registerVia(t, f.routerURL, 71, func(i int) float64 { return float64(i%9)/9 - 0.4 })

	resp, want := rawInfer(t, f.routerURL, sessID, "ref", ctBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: status %d body %s", resp.StatusCode, want)
	}

	// Continuous load across the membership change.
	type loadResult struct {
		key    string
		status int
		body   []byte
		err    error
	}
	stop := make(chan struct{})
	done := make(chan []loadResult, 1)
	go func() {
		var results []loadResult
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- results
				return
			default:
			}
			key := fmt.Sprintf("load-%04d", i)
			status, body, err := tryInfer(f.routerURL, sessID, key, ctBytes)
			results = append(results, loadResult{key: key, status: status, body: body, err: err})
		}
	}()

	// The joiner boots with itself as its whole world; the router's join
	// broadcast hands it the authoritative ring.
	port := freePorts(t, 1)[0]
	joinerURL := fmt.Sprintf("http://127.0.0.1:%d", port)
	joiner, _ := startProc(t, f.aced,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-workers", "1",
		"-cluster-self", joinerURL,
		"-cluster-peers", joinerURL)
	_ = joiner

	body := `{"endpoint":"` + joinerURL + `"}`
	jr, err := http.Post(f.routerURL+api.PathClusterJoin, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view api.Membership
	err = jsonBody(jr, &view)
	jr.Body.Close()
	if err != nil || jr.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d err %v", jr.StatusCode, err)
	}
	if view.Epoch != 1 || len(view.Members) != 4 {
		t.Fatalf("join committed %+v", view)
	}

	// Keep the load running against the 4-shard ring, then settle it.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	results := <-done
	if len(results) == 0 {
		t.Fatal("the load loop never completed a request")
	}
	for _, r := range results {
		if r.err != nil {
			t.Fatalf("load %s: %v", r.key, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("load %s: status %d body %s", r.key, r.status, r.body)
		}
		if !bytes.Equal(r.body, want) {
			t.Fatalf("load %s answered different bytes across the join", r.key)
		}
	}
	t.Logf("%d requests rode the join unharmed", len(results))

	// The joined shard serves traffic: infer again (routing may now pick
	// it as primary) and confirm the router reports epoch 1.
	resp, got := rawInfer(t, f.routerURL, sessID, "post-join", ctBytes)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-join inference: status %d, identical=%v", resp.StatusCode, bytes.Equal(got, want))
	}
	if mv := fetchMembership(t, f.routerURL); mv.Epoch != 1 || len(mv.Members) != 4 {
		t.Fatalf("router membership after join: %+v", mv)
	}
}

// TestChaosMembershipDrainMidLoad: POST /v1/cluster/leave drains a
// loaded shard. The leaver must hand off every session and journal
// entry before the epoch commits, finish its in-flight requests
// bit-identically, and then exit zero on its own.
func TestChaosMembershipDrainMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	// -instr-delay widens the in-flight window so the drain genuinely
	// races live evaluations.
	f := startChaosFleet(t, 3, map[int][]string{
		0: {"-instr-delay", "10ms"}, 1: {"-instr-delay", "10ms"}, 2: {"-instr-delay", "10ms"},
	})
	_, sessID, ctBytes := registerVia(t, f.routerURL, 72, func(i int) float64 { return float64(i%7)/7 - 0.3 })

	resp, want := rawInfer(t, f.routerURL, sessID, "ref", ctBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: status %d body %s", resp.StatusCode, want)
	}

	rg, err := cluster.NewRing(f.urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := rg.LookupN(sessID, 2)[0]

	// In-flight requests racing the drain.
	const inflight = 3
	type res struct {
		status int
		body   []byte
		err    error
	}
	var wg sync.WaitGroup
	results := make([]res, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body, err := tryInfer(f.routerURL, sessID, fmt.Sprintf("doomed-%d", i), ctBytes)
			results[i] = res{status, body, err}
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let them reach the victim

	lr, err := http.Post(f.routerURL+api.PathClusterLeave, "application/json",
		strings.NewReader(`{"endpoint":"`+victim+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	var view api.Membership
	err = jsonBody(lr, &view)
	lr.Body.Close()
	if err != nil || lr.StatusCode != http.StatusOK {
		t.Fatalf("leave: status %d err %v", lr.StatusCode, err)
	}
	if view.Epoch != 1 || len(view.Members) != 2 {
		t.Fatalf("leave committed %+v", view)
	}

	// The drained daemon exits on its own, cleanly, after handing off.
	exited := make(chan error, 1)
	go func() { exited <- f.procs[victim].Wait() }()
	select {
	case werr := <-exited:
		if werr != nil {
			t.Fatalf("drained shard exited uncleanly: %v", werr)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drained shard never exited")
	}

	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("in-flight %d: %v", i, r.err)
		}
		if r.status != http.StatusOK {
			t.Fatalf("in-flight %d: status %d body %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, want) {
			t.Fatalf("in-flight %d answered different bytes across the drain", i)
		}
	}

	// The survivors own everything: fresh execution and journal replay
	// both answer bit-identically, with zero client re-registration.
	resp, got := rawInfer(t, f.routerURL, sessID, "post-drain", ctBytes)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-drain inference: status %d, identical=%v", resp.StatusCode, bytes.Equal(got, want))
	}
	resp, replayed := rawInfer(t, f.routerURL, sessID, "ref", ctBytes)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(replayed, want) {
		t.Fatalf("journal replay after drain: status %d, identical=%v", resp.StatusCode, bytes.Equal(replayed, want))
	}
	if resp.Header.Get(api.HeaderIdemReplayed) != "1" {
		t.Error("pre-drain completion was not replayed from the re-shipped journal")
	}
	if mv := fetchMembership(t, f.routerURL); mv.Epoch != 1 || len(mv.Members) != 2 {
		t.Fatalf("router membership after drain: %+v", mv)
	}
}

// TestChaosMembershipStragglerHedging: one shard is pathologically slow
// (-instr-delay). For a session whose primary is the straggler, router-
// side hedging must keep the observed p99 under 2x the healthy p99 —
// the hedge fires after the latency SLO, the replica answers first, and
// every response stays byte-identical and exactly-once.
func TestChaosMembershipStragglerHedging(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	// Every shard gets a small per-instruction delay so evaluation time
	// dominates scheduler noise and the healthy baseline is stable; the
	// straggler is an order of magnitude slower on top.
	f := startChaosFleet(t, 3, map[int][]string{
		0: {"-instr-delay", "30ms"},
		1: {"-instr-delay", "3ms"},
		2: {"-instr-delay", "3ms"},
	})
	straggler := f.urls[0]
	rg, err := cluster.NewRing(f.urls, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Draw sessions until one lands on a healthy primary and one on the
	// straggler; placement is uniform, so a handful of draws suffice.
	var healthyID, slowID string
	var healthyCT, slowCT []byte
	for seed := uint64(500); seed < 560 && (healthyID == "" || slowID == ""); seed++ {
		_, id, ct := registerVia(t, f.routerURL, seed, func(i int) float64 { return float64(i%6)/6 - 0.25 })
		if rg.LookupN(id, 2)[0] == straggler {
			if slowID == "" {
				slowID, slowCT = id, ct
			}
		} else if healthyID == "" {
			healthyID, healthyCT = id, ct
		}
	}
	if healthyID == "" || slowID == "" {
		t.Fatal("placement draws never covered both a healthy and a straggler primary")
	}

	// Healthy baseline through the default router.
	const baseline = 12
	healthyP99 := time.Duration(0)
	var healthyRef []byte
	for i := 0; i < baseline; i++ {
		start := time.Now()
		resp, body := rawInfer(t, f.routerURL, healthyID, fmt.Sprintf("base-%d", i), healthyCT)
		el := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			healthyRef = body
		} else if !bytes.Equal(body, healthyRef) {
			t.Fatalf("baseline %d not deterministic", i)
		}
		if el > healthyP99 {
			healthyP99 = el
		}
	}

	// A second stateless router fronts the same shards with the hedge
	// SLO set from the measured baseline — a third of the healthy p99,
	// floored against scheduler jitter.
	hedgeAfter := healthyP99 / 3
	if hedgeAfter < 5*time.Millisecond {
		hedgeAfter = 5 * time.Millisecond
	}
	_, hedgedRouter := startProc(t, f.acerouter,
		"-addr", "127.0.0.1:0",
		"-shards", f.peers,
		"-hedge-after", hedgeAfter.String())

	// Reference bytes for the straggler's session (any path: evaluation
	// is deterministic).
	resp, slowWant := rawInfer(t, hedgedRouter, slowID, "slow-ref", slowCT)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("straggler reference: status %d", resp.StatusCode)
	}

	const loads = 15
	worst := time.Duration(0)
	for i := 0; i < loads; i++ {
		start := time.Now()
		status, body, err := tryInfer(hedgedRouter, slowID, fmt.Sprintf("hedged-%d", i), slowCT)
		el := time.Since(start)
		if err != nil || status != http.StatusOK {
			t.Fatalf("hedged %d: status %d err %v", i, status, err)
		}
		if !bytes.Equal(body, slowWant) {
			t.Fatalf("hedged %d answered different bytes", i)
		}
		if el > worst {
			worst = el
		}
	}

	if worst >= 2*healthyP99 {
		t.Errorf("straggler p99 %v with hedging, want < 2x healthy p99 (%v)", worst, 2*healthyP99)
	}

	// The router's counters prove the mechanism: hedges fired and the
	// replica won at least once.
	sresp, err := http.Get(hedgedRouter + api.PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.ClusterStatz
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.Hedged == 0 {
		t.Error("ace_hedged_requests = 0: the hedge never fired against the straggler")
	}
	if st.Router.HedgeWins == 0 {
		t.Error("ace_hedge_wins = 0: the replica never beat the straggler")
	}
	t.Logf("healthy p99 %v, hedge-after %v, straggler p99 with hedging %v, hedged=%d wins=%d",
		healthyP99, hedgeAfter, worst, st.Router.Hedged, st.Router.HedgeWins)
}
