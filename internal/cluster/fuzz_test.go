package cluster

import (
	"strings"
	"testing"
)

// FuzzNewRing feeds hostile endpoint lists (comma-split from arbitrary
// bytes) to ring construction. The contract under attack: NewRing
// either rejects the list with an error or returns a ring whose every
// lookup lands on one of the accepted endpoints, with primary != replica
// whenever two members exist — never a panic, never a placement outside
// the member set.
func FuzzNewRing(f *testing.F) {
	f.Add("http://a:1,http://b:2,http://c:3", "deadbeef")
	f.Add("", "k")
	f.Add(",,,", "k")
	f.Add("a a,b\tb", "k")
	f.Add("x", "")
	f.Add("http://a:1,http://a:1", "k")
	f.Fuzz(func(t *testing.T, list, key string) {
		eps := strings.Split(list, ",")
		r, err := NewRing(eps, len(key)%7)
		if err != nil {
			return
		}
		members := map[string]bool{}
		for _, ep := range r.Endpoints() {
			members[ep] = true
		}
		got := r.LookupN(key, 2)
		if len(got) == 0 {
			t.Fatalf("accepted ring returned no placement for %q", key)
		}
		for _, ep := range got {
			if !members[ep] {
				t.Fatalf("lookup returned %q, not a ring member", ep)
			}
		}
		if len(got) == 2 && got[0] == got[1] {
			t.Fatalf("replica equals primary %q", got[0])
		}
		// Determinism within one ring.
		again := r.LookupN(key, 2)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("lookup unstable: %v then %v", got, again)
			}
		}
	})
}
