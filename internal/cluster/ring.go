// Package cluster turns N independent aced daemons into one sharded
// serving system: a deterministic consistent-hash ring assigns every
// session to a primary shard and a successor replica, a Shipper
// replicates session key bundles and idempotency-journal records to
// that successor as CRC-framed ACELOG1 images, and a Router fronts the
// shards — routing by session id, failing over to the replica when the
// primary dies, and aggregating /metrics, /v1/statz and /v1/profilez
// cluster-wide. The design goal is the ROADMAP's: a backend death costs
// reconnect latency, never client re-registration.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// DefaultVnodes is the virtual-node count per endpoint. 128 keeps the
// worst-case load skew of a 3-shard ring under a few percent while the
// ring stays small enough to rebuild on every membership change.
const DefaultVnodes = 128

// maxEndpoints bounds ring construction; a hostile endpoint list must
// fail fast, not allocate vnodes forever.
const maxEndpoints = 1024

// Ring is an immutable consistent-hash ring over backend endpoints.
// Construction is a pure function of the (order-insensitive) endpoint
// set and the vnode count, so every process handed the same member list
// — the router, each shard, a test — computes identical placements
// without any coordination service.
type Ring struct {
	endpoints []string // sorted, deduplicated
	points    []ringPoint
}

type ringPoint struct {
	hash uint64
	ep   int // index into endpoints
}

// NewRing validates and builds a ring. Endpoints are trimmed; empty
// entries, embedded whitespace or commas (the list separators on every
// flag that feeds this), duplicates after trimming, and absurd list
// sizes are rejected rather than silently folded, because two processes
// that "heal" a malformed list differently would route the same session
// to different shards. vnodes <= 0 selects DefaultVnodes.
func NewRing(endpoints []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one endpoint")
	}
	if len(endpoints) > maxEndpoints {
		return nil, fmt.Errorf("cluster: %d endpoints exceeds the %d limit", len(endpoints), maxEndpoints)
	}
	seen := make(map[string]bool, len(endpoints))
	clean := make([]string, 0, len(endpoints))
	for _, raw := range endpoints {
		ep := strings.TrimSpace(raw)
		if ep == "" {
			return nil, fmt.Errorf("cluster: empty endpoint in %q", strings.Join(endpoints, ","))
		}
		if strings.ContainsAny(ep, " \t\n\r,") {
			return nil, fmt.Errorf("cluster: endpoint %q contains whitespace or a comma", ep)
		}
		if seen[ep] {
			return nil, fmt.Errorf("cluster: endpoint %q listed twice", ep)
		}
		seen[ep] = true
		clean = append(clean, ep)
	}
	// Sort members before placing vnodes so the ring is identical no
	// matter what order the list arrived in.
	sort.Strings(clean)
	r := &Ring{endpoints: clean}
	r.points = make([]ringPoint, 0, len(clean)*vnodes)
	for i, ep := range clean {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", ep, v)), ep: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare, but the fuzzer will find crafted
		// ones) break deterministically by endpoint index.
		return r.points[a].ep < r.points[b].ep
	})
	return r, nil
}

// ringHash is FNV-1a 64: stable across processes, architectures and Go
// releases, which is the whole point — placement must be a protocol,
// not an implementation detail.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Endpoints returns the ring members, sorted.
func (r *Ring) Endpoints() []string { return append([]string(nil), r.endpoints...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.endpoints) }

// Lookup returns the primary endpoint for key: the owner of the first
// ring point at or after the key's hash, wrapping at the top.
func (r *Ring) Lookup(key string) string { return r.LookupN(key, 1)[0] }

// LookupN walks the ring clockwise from the key's hash and returns the
// first n distinct endpoints: index 0 is the primary, index 1 the
// successor that replicas for this key live on, and so forth. n is
// clamped to the member count.
func (r *Ring) LookupN(key string, n int) []string {
	if n > len(r.endpoints) {
		n = len(r.endpoints)
	}
	if n <= 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.ep] {
			continue
		}
		taken[p.ep] = true
		out = append(out, r.endpoints[p.ep])
	}
	return out
}

// Replica returns the successor shard holding key's replicated state,
// or "" on a single-member ring (nowhere to replicate to).
func (r *Ring) Replica(key string) string {
	n := r.LookupN(key, 2)
	if len(n) < 2 {
		return ""
	}
	return n[1]
}
