package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%032x", i*2654435761)
	}
	return keys
}

// TestRingDeterministic proves placement is a pure function of the
// member set: two independently built rings — one from a shuffled list,
// as a restarted process would see it — agree on every key, primary and
// replica alike. This is the property that lets the router and every
// shard compute placements without talking to each other.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"http://s1:1", "http://s2:2", "http://s3:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://s3:3", "http://s1:1", "http://s2:2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(10000) {
		pa, pb := a.LookupN(key, 2), b.LookupN(key, 2)
		if pa[0] != pb[0] || pa[1] != pb[1] {
			t.Fatalf("key %s: ring A places %v, ring B places %v", key, pa, pb)
		}
		if pa[0] == pa[1] {
			t.Fatalf("key %s: replica equals primary %q", key, pa[0])
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract: when
// a shard joins (or symmetrically, leaves), only the keys that move to
// (or from) that shard remap — everything else stays put. The accepted
// ceiling is 2/N of keys, twice the ideal 1/N to absorb vnode placement
// variance.
func TestRingMinimalMovement(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		eps := make([]string, n)
		for i := range eps {
			eps[i] = fmt.Sprintf("http://shard-%d:80", i)
		}
		before, err := NewRing(eps, 0)
		if err != nil {
			t.Fatal(err)
		}
		joined := fmt.Sprintf("http://shard-%d:80", n)
		after, err := NewRing(append(append([]string(nil), eps...), joined), 0)
		if err != nil {
			t.Fatal(err)
		}
		keys := testKeys(20000)
		moved := 0
		for _, key := range keys {
			pb, pa := before.Lookup(key), after.Lookup(key)
			if pb == pa {
				continue
			}
			if pa != joined {
				t.Fatalf("%d shards: key %s moved %s -> %s, neither the new shard", n, key, pb, pa)
			}
			moved++
		}
		frac := float64(moved) / float64(len(keys))
		limit := 2.0 / float64(n+1)
		if frac > limit {
			t.Errorf("%d->%d shards: %.3f of keys moved, limit %.3f", n, n+1, frac, limit)
		}
		if moved == 0 {
			t.Errorf("%d->%d shards: nothing moved to the new shard", n, n+1)
		}
	}
}

// TestRingBalance sanity-checks vnode spreading: no shard owns more
// than 2x its fair share of a large key sample.
func TestRingBalance(t *testing.T) {
	eps := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r, err := NewRing(eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, key := range keys {
		counts[r.Lookup(key)]++
	}
	fair := len(keys) / len(eps)
	for ep, c := range counts {
		if c > 2*fair {
			t.Errorf("%s owns %d of %d keys (fair share %d)", ep, c, len(keys), fair)
		}
		if c == 0 {
			t.Errorf("%s owns no keys", ep)
		}
	}
}

func TestRingRejectsHostileLists(t *testing.T) {
	cases := [][]string{
		nil,
		{},
		{""},
		{"  "},
		{"http://a:1", "http://a:1"},
		{"http://a:1", " http://a:1 "}, // duplicate after trimming
		{"http://a:1,http://b:1"},      // unsplit list
		{"http://a b:1"},
		{"http://a:1\nhttp://b:1"},
	}
	for _, eps := range cases {
		if _, err := NewRing(eps, 0); err == nil {
			t.Errorf("NewRing(%q) accepted a hostile list", eps)
		}
	}
	huge := make([]string, maxEndpoints+1)
	for i := range huge {
		huge[i] = fmt.Sprintf("http://h%d:1", i)
	}
	if _, err := NewRing(huge, 0); err == nil {
		t.Error("NewRing accepted an oversized list")
	}
}

func TestRingLookupN(t *testing.T) {
	r, err := NewRing([]string{"http://a:1", "http://b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.LookupN("k", 5); len(got) != 2 {
		t.Fatalf("LookupN clamped to %d, want 2", len(got))
	}
	if got := r.LookupN("k", 0); got != nil {
		t.Fatalf("LookupN(0) = %v, want nil", got)
	}
	single, err := NewRing([]string{"http://solo:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep := single.Replica("k"); rep != "" {
		t.Fatalf("single-member replica = %q, want empty", rep)
	}
}
