package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"antace/internal/cluster"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve"
	"antace/internal/serve/api"
)

// postCluster POSTs one cluster control message to the router and
// decodes the membership view it answers with.
func postCluster(t *testing.T, routerURL, path, body string) (int, api.Membership) {
	t.Helper()
	resp, err := http.Post(routerURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view api.Membership
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw.Bytes(), &view); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", path, raw.String(), err)
		}
	} else {
		t.Logf("POST %s: status %d body %s", path, resp.StatusCode, raw.String())
	}
	return resp.StatusCode, view
}

// registeredSession is one client registered through the router with a
// marshaled ciphertext and its uninterrupted reference answer —
// deterministic evaluation makes those bytes the yardstick every
// post-topology-change request must reproduce exactly.
type registeredSession struct {
	c    *fheclient.Client
	id   string
	ct   []byte
	want []byte
}

func registerSessions(t *testing.T, routerURL string, n, seedBase int) []registeredSession {
	t.Helper()
	ctx := context.Background()
	out := make([]registeredSession, 0, n)
	for i := 0; i < n; i++ {
		c, err := fheclient.Dial(ctx, routerURL, nil)
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Register(ctx, ring.SeedFromInt(uint64(seedBase+i)))
		if err != nil {
			t.Fatal(err)
		}
		input := make([]float64, c.Spec().VecLen)
		for j := range input {
			input[j] = float64((i+j)%11)/11 - 0.4
		}
		ct, err := c.Encrypt(input)
		if err != nil {
			t.Fatal(err)
		}
		ctBytes, err := ct.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		resp, want := rawInfer(t, routerURL, id, "ref", ctBytes)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference run for session %d: status %d body %s", i, resp.StatusCode, want)
		}
		out = append(out, registeredSession{c: c, id: id, ct: ctBytes, want: want})
	}
	return out
}

// TestMembershipJoinInProcess: a shard that knows only itself joins a
// serving 3-shard cluster through the router's join endpoint. The epoch
// commits only after the ownership delta re-replicated, pre-join
// sessions keep answering bit-identically with zero client
// re-registration, and the joiner holds every session the new ring
// assigns it.
func TestMembershipJoinInProcess(t *testing.T) {
	tc := startCluster(t, 3)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})
	sessions := registerSessions(t, routerURL, 5, 700)

	newURL := tc.addShard(t)
	status, view := postCluster(t, routerURL, api.PathClusterJoin, `{"endpoint":"`+newURL+`"}`)
	if status != http.StatusOK {
		t.Fatalf("join: status %d", status)
	}
	if view.Epoch != 1 || len(view.Members) != 4 {
		t.Fatalf("join committed %+v", view)
	}

	// Joining again is idempotent: no epoch spent.
	status, view = postCluster(t, routerURL, api.PathClusterJoin, `{"endpoint":"`+newURL+`"}`)
	if status != http.StatusOK || view.Epoch != 1 {
		t.Fatalf("duplicate join: status %d view %+v", status, view)
	}

	// Every pre-join session re-executes bit-identically through the
	// post-join ring — whichever shard now owns it.
	for i, s := range sessions {
		resp, got := rawInfer(t, routerURL, s.id, "post-join", s.ct)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d after join: status %d body %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, s.want) {
			t.Fatalf("session %d answered different bytes after the join", i)
		}
	}

	// The join broadcast re-replicated the delta before the epoch
	// committed: the joiner already holds every pre-join session the new
	// ring assigns it (rebalanced duplicates may inflate the count, so
	// >= the exact owed number).
	newRing, err := cluster.NewRing(append(append([]string(nil), tc.urls...), newURL), 0)
	if err != nil {
		t.Fatal(err)
	}
	owed := 0
	for _, s := range sessions {
		for _, ep := range newRing.LookupN(s.id, 2) {
			if ep == newURL {
				owed++
			}
		}
	}
	resp, err := http.Get(newURL + api.PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	var st api.Statz
	err = jsonBody(resp, &st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int(st.ReplicaSessions) < owed {
		t.Fatalf("joiner holds %d replicated sessions, the new ring owes it %d", st.ReplicaSessions, owed)
	}

	// New registrations land on the 4-shard ring as usual.
	post := registerSessions(t, routerURL, 1, 790)
	if resp, _ := rawInfer(t, routerURL, post[0].id, "fresh", post[0].ct); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-join registration cannot infer: status %d", resp.StatusCode)
	}
}

// TestMembershipDrainInProcess: a graceful leave of a loaded shard.
// In-flight requests fired before the leave and requests issued after
// it must all answer bit-identically; the drained shard's OnLeave fires
// only after the handoff is acknowledged; the client never re-registers
// and (being router-dialed) never adopts the shard list.
func TestMembershipDrainInProcess(t *testing.T) {
	tc := startCluster(t, 3)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})
	sessions := registerSessions(t, routerURL, 4, 800)

	victim := tc.ring.LookupN(sessions[0].id, 2)[0]

	// In-flight load: one re-execution per session, racing the drain.
	type reply struct {
		i      int
		status int
		body   []byte
	}
	replies := make(chan reply, len(sessions))
	for i, s := range sessions {
		go func(i int, s registeredSession) {
			resp, body := rawInfer(t, routerURL, s.id, "inflight", s.ct)
			replies <- reply{i: i, status: resp.StatusCode, body: body}
		}(i, s)
	}

	status, view := postCluster(t, routerURL, api.PathClusterLeave, `{"endpoint":"`+victim+`"}`)
	if status != http.StatusOK {
		t.Fatalf("leave: status %d", status)
	}
	if view.Epoch != 1 || len(view.Members) != 2 {
		t.Fatalf("leave committed %+v", view)
	}
	for _, ep := range view.Members {
		if ep == victim {
			t.Fatalf("drained shard still in the ring: %v", view.Members)
		}
	}

	// OnLeave fired after the ACK: the shard drains and goes away, like
	// the daemon exiting.
	select {
	case gone := <-tc.left:
		if gone != victim {
			t.Fatalf("shard %s left, expected %s", gone, victim)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("drained shard never fired OnLeave")
	}

	for range sessions {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("in-flight request %d: status %d body %s", r.i, r.status, r.body)
		}
		if !bytes.Equal(r.body, sessions[r.i].want) {
			t.Fatalf("in-flight request %d answered different bytes across the drain", r.i)
		}
	}

	// Every session keeps serving from the survivors, bit for bit.
	for i, s := range sessions {
		resp, got := rawInfer(t, routerURL, s.id, "post-drain", s.ct)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %d after drain: status %d body %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, s.want) {
			t.Fatalf("session %d answered different bytes after the drain", i)
		}
	}

	// Router-dialed clients must keep fronting the router: the guard in
	// refreshMembership refuses a view that lists shards, not the router.
	input := make([]float64, sessions[0].c.Spec().VecLen)
	if _, err := sessions[0].c.Infer(context.Background(), input); err != nil {
		t.Fatalf("client inference after drain: %v", err)
	}
	if ep := sessions[0].c.MembershipEpoch(); ep != 0 {
		t.Fatalf("router-dialed client adopted the shard list (epoch %d)", ep)
	}

	// Leaving the same endpoint again is a no-op, not another epoch.
	status, view = postCluster(t, routerURL, api.PathClusterLeave, `{"endpoint":"`+victim+`"}`)
	if status != http.StatusOK || view.Epoch != 1 {
		t.Fatalf("duplicate leave: status %d view %+v", status, view)
	}
}

// TestMembershipClientRefetch: a shard-dialed client rides a topology
// change. Its registration endpoint drains away; the next inference
// hits a survivor that does not own the session (404), which triggers
// the membership re-fetch — the client adopts the fresh shard list and
// lands on the new owner within its ordinary attempt budget, instead of
// cycling the stale list until it is exhausted.
func TestMembershipClientRefetch(t *testing.T) {
	tc := startCluster(t, 4)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})
	ctx := context.Background()

	// The client's first base registers the session; after that base
	// drains, its successor list is [bases[1], ...]. Pick a client whose
	// post-drain first candidate does NOT own the session, so the 404 ->
	// refetch path is what serves the request (a client whose rotation
	// happens to land on an owner would pass without exercising it).
	first := tc.urls[0]
	rest := append([]string(nil), tc.urls[1:]...)
	survivors, err := cluster.NewRing(rest, 0)
	if err != nil {
		t.Fatal(err)
	}
	var c *fheclient.Client
	var sessID string
	for seed := uint64(900); seed < 930; seed++ {
		cand, err := fheclient.DialMulti(ctx, append([]string{first}, rest...), nil)
		if err != nil {
			t.Fatal(err)
		}
		id, err := cand.Register(ctx, ring.SeedFromInt(seed))
		if err != nil {
			t.Fatal(err)
		}
		owners := survivors.LookupN(id, 2)
		if owners[0] != rest[0] && owners[1] != rest[0] {
			c, sessID = cand, id
			break
		}
	}
	if c == nil {
		t.Fatal("no session placement hit the 404 path in 30 draws")
	}

	// One ciphertext, inferred before and after the change: deterministic
	// re-execution must answer bit-identical result ciphertexts.
	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = float64(i%5)/5 - 0.2
	}
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.InferCipher(ctx, ct)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Drain the registration endpoint via the router so the whole
	// cluster adopts epoch 1 and the session re-ships to its new owners.
	if status, _ := postCluster(t, routerURL, api.PathClusterLeave, `{"endpoint":"`+first+`"}`); status != http.StatusOK {
		t.Fatalf("leave: status %d", status)
	}
	select {
	case <-tc.left:
	case <-time.After(15 * time.Second):
		t.Fatal("drained shard never left")
	}

	out, err := c.InferCipher(ctx, ct)
	if err != nil {
		t.Fatalf("inference across the topology change: %v", err)
	}
	got, err := out.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result ciphertext differs across the topology change")
	}
	if ep := c.MembershipEpoch(); ep != 1 {
		t.Fatalf("client membership epoch %d, want 1 (the refetch must have fired)", ep)
	}
	if c.SessionID() != sessID {
		t.Fatal("client re-registered")
	}
}

// TestMembershipHandoffReadyz pins the drain-for-handoff contract at
// the shard level, without a router: a shard that finds itself removed
// by a ClusterUpdate answers the update only after re-shipping its
// delta, reports the new epoch as its membership, and flips its
// readiness to 503 handing-off so no prober routes new work to it.
func TestMembershipHandoffReadyz(t *testing.T) {
	// Two shards without an OnLeave hook, so the leaver stays up after
	// the handoff and its readiness can be asserted deterministically.
	prog, _ := compileLinear(t)
	var urls []string
	var listeners []net.Listener
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	rg, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ln := range listeners {
		sh, err := cluster.NewShipper(rg, urls[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(prog, serve.Config{Workers: 1, Replicator: sh})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go func() { _ = hs.Serve(ln) }()
		t.Cleanup(func() {
			_ = hs.Close()
			sh.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Drain(ctx)
		})
	}
	leaver, survivor := urls[0], urls[1]

	// Before any handoff the leaver is ready.
	resp, err := http.Get(leaver + api.PathReadyz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-handoff readyz: status %d", resp.StatusCode)
	}

	update := `{"epoch":1,"members":["` + survivor + `"],"leaving":"` + leaver + `"}`
	resp, err = http.Post(leaver+api.PathClusterUpdate, "application/json", strings.NewReader(update))
	if err != nil {
		t.Fatal(err)
	}
	var reply api.ClusterUpdateReply
	err = jsonBody(resp, &reply)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster update: status %d err %v", resp.StatusCode, err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("update acknowledged epoch %d, want 1", reply.Epoch)
	}

	// The leaver's membership view reflects the adopted ring...
	resp, err = http.Get(leaver + api.PathClusterMembership)
	if err != nil {
		t.Fatal(err)
	}
	var view api.Membership
	err = jsonBody(resp, &view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if view.Epoch != 1 || len(view.Members) != 1 || view.Members[0] != survivor {
		t.Fatalf("leaver's adopted membership: %+v", view)
	}

	// ...and its readiness is 503 handing-off: no prober routes new work
	// to a shard that acknowledged its own removal.
	resp, err = http.Get(leaver + api.PathReadyz)
	if err != nil {
		t.Fatal(err)
	}
	var rz api.Readyz
	err = jsonBody(resp, &rz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || rz.Status != "handing-off" {
		t.Fatalf("post-handoff readyz: status %d %+v, want 503 handing-off", resp.StatusCode, rz)
	}

	// A duplicate broadcast is acknowledged idempotently, on the leaver
	// and the survivor alike.
	for _, ep := range urls {
		resp, err = http.Post(ep+api.PathClusterUpdate, "application/json", strings.NewReader(update))
		if err != nil {
			t.Fatal(err)
		}
		err = jsonBody(resp, &reply)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || reply.Epoch != 1 {
			t.Fatalf("duplicate update to %s: status %d reply %+v err %v", ep, resp.StatusCode, reply, err)
		}
	}
}
