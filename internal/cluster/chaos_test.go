package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"antace/internal/cluster"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// buildBin compiles one of the repo's binaries once per test run.
func buildBin(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freePorts reserves n distinct TCP ports by binding and releasing
// them. Placement is a pure function of the shard list, so every shard
// must know the full list — ports included — before any shard starts,
// which rules out :0 self-assignment.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, 0, n)
	listeners := make([]net.Listener, 0, n)
	for len(ports) < n {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, ln)
		ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
	}
	for _, ln := range listeners {
		_ = ln.Close()
	}
	return ports
}

// startProc launches a daemon and waits for its -addr-file.
func startProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, append([]string{"-addr-file", addrFile}, args...)...)
	logs := new(bytes.Buffer)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(90 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(raw))
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("%s never became ready; logs:\n%s", bin, logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func rawInfer(t *testing.T, base, session, idemKey string, ctBytes []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+api.PathInfer, bytes.NewReader(ctBytes))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderSession, session)
	req.Header.Set(api.HeaderIdemKey, idemKey)
	req.Header.Set(api.HeaderDeadlineMs, "120000")
	resp, err := (&http.Client{Timeout: 3 * time.Minute}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestChaosShardKillFailover is the tentpole's end-to-end proof against
// the real binaries: three aced shards replicate sessions and journal
// settlements around a hash ring, an acerouter fronts them, and a
// SIGKILL takes the session's primary shard down mid-inference — no
// drain, no warning. The router must fail the in-flight request over to
// the replica shard, which re-executes it under the replicated key
// bundle and answers bytes bit-identical to the uninterrupted reference
// run; the pre-kill success must replay bit-identically from the
// replicated idempotency journal; and the client never re-registers.
func TestChaosShardKillFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	aced := buildBin(t, "antace/cmd/aced")
	acerouter := buildBin(t, "antace/cmd/acerouter")

	const shards = 3
	ports := freePorts(t, shards)
	urls := make([]string, shards)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	peers := strings.Join(urls, ",")

	procs := make(map[string]*exec.Cmd, shards)
	dataDirs := make(map[string]string, shards)
	for i, p := range ports {
		dir := t.TempDir()
		// -instr-delay stretches each instruction so "mid-inference" is a
		// wide target; -checkpoint-every 1 makes in-flight progress visible
		// on disk, which is the kill trigger.
		cmd, _ := startProc(t, aced,
			"-addr", fmt.Sprintf("127.0.0.1:%d", p),
			"-data-dir", dir,
			"-workers", "1",
			"-instr-delay", "25ms",
			"-checkpoint-every", "1",
			"-cluster-self", urls[i],
			"-cluster-peers", peers)
		procs[urls[i]] = cmd
		dataDirs[urls[i]] = dir
	}
	_, routerURL := startProc(t, acerouter, "-addr", "127.0.0.1:0", "-shards", peers)

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, routerURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(61))
	if err != nil {
		t.Fatal(err)
	}
	rg, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	candidates := rg.LookupN(sessID, 2)
	primary, replica := candidates[0], candidates[1]

	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = float64(i%9)/9 - 0.4
	}
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run through the router: deterministic
	// evaluation makes this the byte-exact answer every later attempt —
	// failover re-execution or journal replay — must reproduce.
	resp, want := rawInfer(t, routerURL, sessID, "warm", ctBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: status %d body %s", resp.StatusCode, want)
	}

	// Wait until the warm settlement has replicated to the successor:
	// completions ship asynchronously, and the replay check below needs
	// the journal entry on the replica before the primary dies.
	waitReplicaResults(t, replica)

	// The doomed request: fired through the router, killed under it.
	type result struct {
		status   int
		replayed string
		body     []byte
	}
	doomed := make(chan result, 1)
	go func() {
		resp, body := rawInfer(t, routerURL, sessID, "crashy", ctBytes)
		doomed <- result{status: resp.StatusCode, replayed: resp.Header.Get(api.HeaderIdemReplayed), body: body}
	}()

	// A checkpoint on the primary's disk proves "crashy" is mid-flight
	// there. Then kill -9: no drain, no journal finalization, no goodbye.
	waitForCheckpoint(t, filepath.Join(dataDirs[primary], "jobs"))
	if err := procs[primary].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = procs[primary].Process.Wait()

	// The in-flight request survives the shard it was running on: the
	// router fails it over to the replica, which re-executes under the
	// replicated key bundle — bit-identical by determinism.
	res := <-doomed
	if res.status != http.StatusOK {
		t.Fatalf("doomed request after shard kill: status %d body %s", res.status, res.body)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatal("failover re-execution differs from the uninterrupted run")
	}

	// The pre-kill success replays from the replicated journal, bit for
	// bit, with zero client re-registration anywhere in this test.
	resp, replayed := rawInfer(t, routerURL, sessID, "warm", ctBytes)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm replay after shard kill: status %d body %s", resp.StatusCode, replayed)
	}
	if resp.Header.Get(api.HeaderIdemReplayed) != "1" {
		t.Error("pre-kill success was not served from the replicated idempotency journal")
	}
	if !bytes.Equal(replayed, want) {
		t.Fatal("replicated journal replayed different bytes")
	}

	// Router-side accounting: at least one failover happened and the
	// cluster replicated the session.
	st := fetchClusterStatz(t, routerURL)
	if st.Router.Failovers == 0 {
		t.Error("router counted no failovers across a shard kill")
	}
	if st.Cluster.ReplicaSessions == 0 {
		t.Error("cluster counted no replicated sessions")
	}
}

func jsonBody(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func waitReplicaResults(t *testing.T, shardURL string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(shardURL + api.PathStatz)
		if err == nil {
			var st api.Statz
			err := jsonBody(resp, &st)
			resp.Body.Close()
			if err == nil && st.ReplicaResults > 0 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("warm settlement never replicated to the successor shard")
}

func waitForCheckpoint(t *testing.T, jobDir string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(jobDir)
		if err == nil {
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".ckpt") {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no checkpoint ever appeared on the primary")
}
