package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/obs"
	"antace/internal/serve/api"
)

// Router is the stateless cluster front: it consistent-hashes session
// ids across the aced shards, forwards registration and inference with
// retry and failover, and aggregates the shards' metrics, statz and
// profilez pages cluster-wide. It keeps no per-session state of its own
// — placement is recomputed from the id on every request, so any number
// of router replicas can run behind one load balancer.
//
// Failover invariant: a session's key bundle lives on its primary shard
// AND the ring successor (the shards replicate synchronously at
// registration), so when the primary is dead, draining or freshly
// restarted-empty the router re-routes to the successor and the request
// succeeds with zero client re-registration. The router mints an
// idempotency key for keyless inferences, making its own cross-shard
// retries exactly-once.
type Router struct {
	mem *Membership
	hc  *http.Client
	log *slog.Logger
	pol fheclient.RetryPolicy
	mux *http.ServeMux

	// Hedging: when the primary has not answered an infer within the
	// hedge delay (fixed, or the shard's observed p95), the same request
	// — same idempotency key — races to the replica and the first answer
	// wins. hedgeAfter < 0 disables; 0 selects the adaptive estimate.
	hedgeAfter time.Duration
	hedgeMin   time.Duration
	hedgeMax   time.Duration
	est        *latencyEstimator

	// Health prober: shards answering /v1/readyz 200 are preferred
	// targets; unready ones are skipped while any alternative exists
	// (but still tried as a last resort — the prober is advisory).
	// Consecutive failures past suspectAfter mark a shard suspect; a
	// shard suspect for longer than ejectAfter is force-removed from the
	// membership, its orphaned replicas re-replicated by the survivors.
	probeEvery   time.Duration
	suspectAfter int
	ejectAfter   time.Duration
	mu           sync.RWMutex
	unready      map[string]bool
	probeFails   map[string]int
	suspectSince map[string]time.Time
	ejecting     map[string]bool

	// Per-shard statz scrape cache: an unreachable shard's last good
	// snapshot still counts toward cluster totals (a stale lower bound
	// beats a silent zero) and its staleness is reported explicitly.
	scrapeMu  sync.Mutex
	lastStatz map[string]scrapedStatz

	stats struct {
		mu            sync.Mutex
		forwarded     uint64
		failovers     uint64
		errors        uint64
		hedged        uint64
		hedgeWins     uint64
		shardRequests map[string]uint64
	}

	stop chan struct{}
	wg   sync.WaitGroup
}

type scrapedStatz struct {
	at time.Time
	st api.Statz
}

// RouterConfig tunes a Router; zero values select the noted defaults.
type RouterConfig struct {
	// HTTPClient used for all shard traffic (default: dedicated client,
	// 5m timeout — inference requests legitimately run minutes).
	HTTPClient *http.Client
	// Retry paces cross-shard failover (default fheclient.DefaultRetryPolicy).
	Retry fheclient.RetryPolicy
	// ProbeEvery is the readiness poll period (default 500ms; negative
	// disables probing and every candidate is always tried in ring order).
	ProbeEvery time.Duration
	// Logger receives forward/failover events; nil discards.
	Logger *slog.Logger

	// HedgeAfter is the infer hedging delay: 0 (the default) hedges
	// adaptively at the primary's observed p95 latency, clamped to
	// [HedgeMin, HedgeMax]; a positive value hedges at that fixed delay;
	// a negative value disables hedging.
	HedgeAfter time.Duration
	// HedgeMin/HedgeMax clamp the adaptive delay (defaults
	// DefaultHedgeMin/DefaultHedgeMax).
	HedgeMin time.Duration
	HedgeMax time.Duration

	// SuspectAfter is how many consecutive readyz probe failures mark a
	// shard suspect (default 3; negative disables suspicion tracking).
	SuspectAfter int
	// EjectAfter force-removes a shard from the membership once it has
	// been suspect this long (default 0 = never eject automatically).
	EjectAfter time.Duration
}

// RouterStatz is the router's own half of the aggregated statz page.
type RouterStatz struct {
	Forwarded uint64 `json:"forwarded"`
	Failovers uint64 `json:"failovers"`
	Errors    uint64 `json:"errors"`
	// Hedged counts infer requests that fired a duplicate to the replica
	// after the hedge delay; HedgeWins counts those the replica answered
	// first (the hedge actually cut latency).
	Hedged    uint64 `json:"hedged"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Epoch is the committed membership epoch the router is serving.
	Epoch uint64 `json:"epoch"`
	// ShardRequests counts requests the router sent to each shard
	// (attempts, not successes — a failover counts against both shards).
	ShardRequests map[string]uint64 `json:"shard_requests"`
	// Ready is the prober's current view of each shard.
	Ready map[string]bool `json:"ready"`
	// Suspect lists shards with suspectAfter+ consecutive probe failures,
	// with how long each has been suspect.
	Suspect map[string]float64 `json:"suspect_sec,omitempty"`
}

// ClusterStatz is returned by the router's GET /v1/statz: the router's
// own counters, per-shard statz snapshots, and cluster-wide sums of the
// shards' monotone counters. An unreachable shard is named in
// Unreachable and contributes its last successful scrape (aged per
// ScrapeAgeSec) to Shards and Cluster — a stale lower bound, never a
// silent zero.
type ClusterStatz struct {
	Router  RouterStatz          `json:"router"`
	Cluster api.Statz            `json:"cluster"`
	Shards  map[string]api.Statz `json:"shards"`
	// Unreachable lists ring members whose statz scrape failed just now.
	Unreachable []string `json:"unreachable,omitempty"`
	// ScrapeAgeSec is the age of each shard's snapshot in Shards: 0 for a
	// fresh scrape, the time since the last successful one otherwise.
	ScrapeAgeSec map[string]float64 `json:"scrape_age_sec,omitempty"`
}

// NewRouter builds a router over the given shard ring and starts its
// readiness prober; Close stops it.
func NewRouter(ring *Ring, cfg RouterConfig) *Router {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	probe := cfg.ProbeEvery
	if probe == 0 {
		probe = 500 * time.Millisecond
	}
	hedgeMin := cfg.HedgeMin
	if hedgeMin <= 0 {
		hedgeMin = DefaultHedgeMin
	}
	hedgeMax := cfg.HedgeMax
	if hedgeMax <= 0 {
		hedgeMax = DefaultHedgeMax
	}
	suspectAfter := cfg.SuspectAfter
	if suspectAfter == 0 {
		suspectAfter = 3
	}
	mem := &Membership{ring: ring}
	rt := &Router{
		mem:          mem,
		hc:           hc,
		log:          log,
		pol:          cfg.Retry.WithDefaults(),
		hedgeAfter:   cfg.HedgeAfter,
		hedgeMin:     hedgeMin,
		hedgeMax:     hedgeMax,
		est:          newLatencyEstimator(),
		probeEvery:   probe,
		suspectAfter: suspectAfter,
		ejectAfter:   cfg.EjectAfter,
		unready:      map[string]bool{},
		probeFails:   map[string]int{},
		suspectSince: map[string]time.Time{},
		ejecting:     map[string]bool{},
		lastStatz:    map[string]scrapedStatz{},
		stop:         make(chan struct{}),
	}
	rt.stats.shardRequests = map[string]uint64{}

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathProgram, rt.handleProgram)
	mux.HandleFunc("POST "+api.PathSessions, rt.handleRegister)
	mux.HandleFunc("DELETE "+api.PathSessions+"/{id}", rt.handleDrop)
	mux.HandleFunc("POST "+api.PathInfer, rt.handleInfer)
	mux.HandleFunc("GET "+api.PathHealthz, rt.handleHealthz)
	mux.HandleFunc("GET "+api.PathReadyz, rt.handleReadyz)
	mux.HandleFunc("GET "+api.PathStatz, rt.handleStatz)
	mux.HandleFunc("GET "+api.PathProfilez, rt.handleProfilez)
	mux.HandleFunc("GET "+api.PathMetrics, rt.handleMetrics)
	mux.HandleFunc("GET "+api.PathClusterMembership, rt.handleClusterMembership)
	mux.HandleFunc("POST "+api.PathClusterJoin, rt.handleClusterJoin)
	mux.HandleFunc("POST "+api.PathClusterLeave, rt.handleClusterLeave)
	rt.mux = mux

	if probe > 0 {
		rt.wg.Add(1)
		go rt.probeLoop()
	}
	return rt
}

// curRing returns the committed membership ring; placements are always
// computed against the epoch the cluster has actually adopted.
func (rt *Router) curRing() *Ring {
	_, ring := rt.mem.Current()
	return ring
}

// Membership returns the router's committed membership view.
func (rt *Router) Membership() api.Membership { return rt.mem.View() }

// ServeHTTP dispatches to the router API.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the readiness prober.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	rt.wg.Wait()
}

// --- readiness probing ---------------------------------------------------

func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	rt.probeOnce()
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeOnce()
		}
	}
}

func (rt *Router) probeOnce() {
	members := rt.curRing().Endpoints()
	var wg sync.WaitGroup
	for _, ep := range members {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			ready := false
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ep+api.PathReadyz, nil)
			if err == nil {
				if resp, err := rt.hc.Do(req); err == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
					resp.Body.Close()
					ready = resp.StatusCode == http.StatusOK
				}
			}
			rt.mu.Lock()
			was := !rt.unready[ep]
			rt.unready[ep] = !ready
			if ready {
				rt.probeFails[ep] = 0
				delete(rt.suspectSince, ep)
			} else if rt.suspectAfter > 0 {
				rt.probeFails[ep]++
				if rt.probeFails[ep] == rt.suspectAfter {
					rt.suspectSince[ep] = time.Now()
					rt.log.Warn("router.shard.suspect", slog.String("shard", ep),
						slog.Int("consecutive_failures", rt.probeFails[ep]))
				}
			}
			rt.mu.Unlock()
			if was != ready {
				rt.log.Info("router.shard", slog.String("shard", ep), slog.Bool("ready", ready))
			}
		}(ep)
	}
	wg.Wait()
	rt.maybeEject()
}

// maybeEject force-removes shards that have been suspect longer than the
// eject deadline: a Leave with Force, so the dead member is not waited
// on and the survivors re-replicate its orphaned sessions.
func (rt *Router) maybeEject() {
	if rt.ejectAfter <= 0 {
		return
	}
	var victims []string
	rt.mu.Lock()
	for ep, since := range rt.suspectSince {
		if time.Since(since) >= rt.ejectAfter && !rt.ejecting[ep] {
			rt.ejecting[ep] = true
			victims = append(victims, ep)
		}
	}
	rt.mu.Unlock()
	for _, ep := range victims {
		go func(ep string) {
			defer func() {
				rt.mu.Lock()
				delete(rt.ejecting, ep)
				rt.mu.Unlock()
			}()
			if rt.curRing().Len() <= 1 {
				return // never eject the last shard: degraded beats empty
			}
			rt.log.Warn("router.shard.eject", slog.String("shard", ep))
			if _, err := rt.leave(ep, true); err != nil && !errorsIsNoChange(err) {
				rt.log.Warn("router.shard.eject.failed", slog.String("shard", ep), slog.String("err", err.Error()))
				return
			}
			rt.forgetShard(ep)
		}(ep)
	}
}

// forgetShard clears per-shard prober and estimator state after a member
// left the ring.
func (rt *Router) forgetShard(ep string) {
	rt.mu.Lock()
	delete(rt.unready, ep)
	delete(rt.probeFails, ep)
	delete(rt.suspectSince, ep)
	rt.mu.Unlock()
	rt.est.forget(ep)
}

// orderCandidates returns the candidates with ready shards first,
// preserving ring order within each class: preference, not exclusion —
// with a stale prober view the unready ones are still tried last.
func (rt *Router) orderCandidates(candidates []string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ordered := make([]string, 0, len(candidates))
	for _, ep := range candidates {
		if !rt.unready[ep] {
			ordered = append(ordered, ep)
		}
	}
	for _, ep := range candidates {
		if rt.unready[ep] {
			ordered = append(ordered, ep)
		}
	}
	return ordered
}

// --- membership ----------------------------------------------------------

func errorsIsNoChange(err error) bool { return errors.Is(err, ErrNoChange) }

// join runs the full join transition: propose the ring with endpoint
// added, broadcast the update to every member (the joiner included — the
// broadcast is what hands it the authoritative ring), wait for each ACK
// (existing holders re-replicate the ownership delta before answering),
// then commit the epoch.
func (rt *Router) join(endpoint string) (api.Membership, error) {
	return rt.mem.Join(endpoint, func(update api.ClusterUpdate) error {
		return rt.broadcastUpdate(update, nil)
	})
}

// leave runs the drain (or, with force, ejection) transition. A drain
// contacts the leaver first: it re-ships everything it holds and begins
// handoff before the survivors adopt the ring. An ejection never
// contacts the dead shard.
func (rt *Router) leave(endpoint string, force bool) (api.Membership, error) {
	return rt.mem.Leave(endpoint, force, func(update api.ClusterUpdate) error {
		var firstTargets []string
		if !force {
			firstTargets = []string{endpoint}
		}
		return rt.broadcastUpdate(update, firstTargets)
	})
}

// broadcastUpdate POSTs the proposed update to first (in order, each
// must ACK) and then to every update.Members concurrently, requiring an
// ACK from each: an ACK means the shard adopted the ring and finished
// re-shipping its share of the ownership delta, which is exactly the
// condition for committing the epoch.
func (rt *Router) broadcastUpdate(update api.ClusterUpdate, first []string) error {
	body, err := json.Marshal(update)
	if err != nil {
		return err
	}
	push := func(ep string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		res, err := rt.roundTrip(ctx, ep, http.MethodPost, api.PathClusterUpdate, http.Header{"Content-Type": []string{"application/json"}}, body)
		if err != nil {
			return fmt.Errorf("cluster update to %s: %w", ep, err)
		}
		if res.status != http.StatusOK {
			return fmt.Errorf("cluster update to %s: status %d: %s", ep, res.status, truncateBody(res.body))
		}
		var reply api.ClusterUpdateReply
		if err := json.Unmarshal(res.body, &reply); err != nil {
			return fmt.Errorf("cluster update to %s: bad ack: %w", ep, err)
		}
		if reply.Epoch < update.Epoch {
			return fmt.Errorf("cluster update to %s: acked stale epoch %d < %d", ep, reply.Epoch, update.Epoch)
		}
		rt.log.Info("router.cluster.update.ack", slog.String("shard", ep),
			slog.Uint64("epoch", reply.Epoch), slog.Int("reshipped", reply.Reshipped))
		return nil
	}
	seen := map[string]bool{}
	for _, ep := range first {
		seen[ep] = true
		if err := push(ep); err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(update.Members))
	for _, ep := range update.Members {
		if seen[ep] {
			continue
		}
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			if err := push(ep); err != nil {
				errs <- err
			}
		}(ep)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func truncateBody(b []byte) string {
	const n = 512
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

func (rt *Router) handleClusterMembership(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.mem.View())
}

func (rt *Router) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorReply{Error: err.Error()})
		return
	}
	jr, err := ParseJoin(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorReply{Error: err.Error()})
		return
	}
	view, err := rt.join(jr.Endpoint)
	switch {
	case errorsIsNoChange(err):
		writeJSON(w, http.StatusOK, view) // already a member: idempotent
	case err != nil:
		writeJSON(w, http.StatusBadGateway, api.ErrorReply{Error: err.Error()})
	default:
		rt.log.Info("router.cluster.join", slog.String("shard", jr.Endpoint), slog.Uint64("epoch", view.Epoch))
		writeJSON(w, http.StatusOK, view)
	}
}

func (rt *Router) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorReply{Error: err.Error()})
		return
	}
	lr, err := ParseLeave(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, api.ErrorReply{Error: err.Error()})
		return
	}
	view, err := rt.leave(lr.Endpoint, lr.Force)
	switch {
	case errorsIsNoChange(err):
		writeJSON(w, http.StatusOK, view) // already gone: idempotent
	case err != nil:
		writeJSON(w, http.StatusBadGateway, api.ErrorReply{Error: err.Error()})
	default:
		rt.forgetShard(lr.Endpoint)
		rt.log.Info("router.cluster.leave", slog.String("shard", lr.Endpoint),
			slog.Bool("force", lr.Force), slog.Uint64("epoch", view.Epoch))
		writeJSON(w, http.StatusOK, view)
	}
}

// --- forwarding ----------------------------------------------------------

// fwdResult is one shard's complete buffered response.
type fwdResult struct {
	status int
	header http.Header
	body   []byte
	shard  string
}

// maxRouterBody bounds any single body the router buffers (bundles and
// ciphertexts both; buffering is what makes cross-shard retry possible).
const maxRouterBody = 1 << 30

// copiedHeaders are the response headers relayed back to the client.
var copiedHeaders = []string{
	"Content-Type", "Retry-After",
	api.HeaderTrace, api.HeaderIdemReplayed, api.HeaderLane, api.HeaderLaneStride,
}

// forward tries candidates in order, with up to Retry.MaxAttempts
// rounds and backoff between rounds. A candidate "fails over" on a
// connection error, a 503 (draining/recovering), a 429 (queue full —
// the replica may have capacity) or — when allow404 — a 404 (the shard
// restarted empty but its peer holds the replicated session); any other
// response is the answer and is returned as-is.
// The router.forward.err fault point fails the first candidate of the
// first round artificially, forcing the failover path under test.
func (rt *Router) forward(ctx context.Context, candidates []string, method, path string, header http.Header, body []byte, allow404 bool) (fwdResult, error) {
	var lastRes fwdResult
	var lastErr error
	haveRes := false
	first := true
	for attempt := 1; attempt <= rt.pol.MaxAttempts; attempt++ {
		for _, ep := range rt.orderCandidates(candidates) {
			rt.countShard(ep)
			if first {
				first = false
				if ferr := fault.Inject(fault.RouterForwardErr); ferr != nil {
					rt.countFailover()
					rt.log.Warn("router.forward", slog.String("shard", ep), slog.String("err", ferr.Error()))
					lastErr = ferr
					continue
				}
			}
			res, err := rt.roundTrip(ctx, ep, method, path, header, body)
			if err != nil {
				rt.countFailover()
				rt.log.Warn("router.forward", slog.String("shard", ep), slog.String("err", err.Error()))
				lastErr = err
				continue
			}
			if res.status == http.StatusServiceUnavailable || res.status == http.StatusTooManyRequests ||
				(allow404 && res.status == http.StatusNotFound) {
				rt.countFailover()
				rt.log.Info("router.failover", slog.String("shard", ep), slog.Int("status", res.status))
				lastRes, haveRes = res, true
				continue
			}
			return res, nil
		}
		if attempt < rt.pol.MaxAttempts {
			select {
			case <-ctx.Done():
				return fwdResult{}, ctx.Err()
			case <-time.After(rt.pol.Backoff(attempt, 0)):
			}
		}
	}
	if haveRes {
		// Every candidate kept answering 503/404: relay the last shard
		// reply rather than inventing one.
		return lastRes, nil
	}
	rt.countErr()
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no candidates for %s %s", method, path)
	}
	return fwdResult{}, lastErr
}

func (rt *Router) roundTrip(ctx context.Context, ep, method, path string, header http.Header, body []byte) (fwdResult, error) {
	req, err := http.NewRequestWithContext(ctx, method, ep+path, bytes.NewReader(body))
	if err != nil {
		return fwdResult{}, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return fwdResult{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody))
	if err != nil {
		return fwdResult{}, err
	}
	return fwdResult{status: resp.StatusCode, header: resp.Header, body: data, shard: ep}, nil
}

func (rt *Router) relay(w http.ResponseWriter, res fwdResult) {
	for _, k := range copiedHeaders {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

func (rt *Router) relayErr(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadGateway, api.ErrorReply{Error: fmt.Sprintf("cluster: %v", err)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func mintHex32() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: minting id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// --- request handlers ----------------------------------------------------

// handleProgram forwards the spec fetch to any shard (every shard
// serves the same compiled program).
func (rt *Router) handleProgram(w http.ResponseWriter, r *http.Request) {
	res, err := rt.forward(r.Context(), rt.curRing().Endpoints(), http.MethodGet, api.PathProgram, nil, nil, false)
	if err != nil {
		rt.relayErr(w, err)
		return
	}
	rt.countForwarded()
	rt.relay(w, res)
}

// handleRegister mints the session id BEFORE the session exists — that
// is the trick that makes stateless routing possible: the id's hash
// decides its primary shard, the registration is forwarded there with
// the id pre-assigned (X-ACE-Session), and the shard replicates the
// bundle to the ring successor before answering 201. Every later
// request re-derives both shards from the id alone.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorReply{Error: err.Error()})
		return
	}
	id, err := mintHex32()
	if err != nil {
		rt.relayErr(w, err)
		return
	}
	header := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		header.Set("Content-Type", ct)
	}
	header.Set(api.HeaderSession, id)
	// Candidates are the id's primary then its successor: when the
	// primary is down the bundle registers directly on the successor,
	// which serves the session until the primary returns.
	res, err := rt.forward(r.Context(), rt.curRing().LookupN(id, 2), http.MethodPost, api.PathSessions, header, body, false)
	if err != nil {
		rt.relayErr(w, err)
		return
	}
	rt.countForwarded()
	rt.relay(w, res)
}

// handleDrop fans the delete out to the session's primary and replica;
// 204 if either held it.
func (rt *Router) handleDrop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dropped := false
	for _, ep := range rt.curRing().LookupN(id, 2) {
		rt.countShard(ep)
		res, err := rt.roundTrip(r.Context(), ep, http.MethodDelete, api.PathSessions+"/"+id, nil, nil)
		if err == nil && res.status == http.StatusNoContent {
			dropped = true
		}
	}
	rt.countForwarded()
	if dropped {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusNotFound, api.ErrorReply{Error: "unknown session"})
}

// handleInfer routes by the session id's ring placement with failover
// to the replica. A request arriving without an idempotency key gets
// one minted here: the router may deliver the same inference to two
// shards (failover mid-flight), and the key is what makes that
// exactly-once instead of twice-executed.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(api.HeaderSession)
	if id == "" {
		id = r.URL.Query().Get("session")
	}
	if id == "" {
		writeJSON(w, http.StatusBadRequest, api.ErrorReply{Error: "missing " + api.HeaderSession + " header"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, api.ErrorReply{Error: err.Error()})
		return
	}
	header := http.Header{}
	for _, k := range []string{"Content-Type", api.HeaderSession, api.HeaderIdemKey, api.HeaderDeadlineMs, api.HeaderTrace} {
		if v := r.Header.Get(k); v != "" {
			header.Set(k, v)
		}
	}
	header.Set(api.HeaderSession, id)
	if header.Get(api.HeaderIdemKey) == "" {
		key, err := mintHex32()
		if err != nil {
			rt.relayErr(w, err)
			return
		}
		header.Set(api.HeaderIdemKey, key)
	}
	res, err := rt.forwardInfer(r.Context(), rt.curRing().LookupN(id, 2), header, body)
	if err != nil {
		rt.relayErr(w, err)
		return
	}
	rt.countForwarded()
	rt.relay(w, res)
}

// forwardInfer is the hedged infer forward: the request goes to the
// primary, and if no answer lands within the hedge delay the identical
// request (same idempotency key — exactly-once by construction, both
// shards compute the same deterministic bytes) races to the replica.
// First conclusive answer wins and the loser's context is cancelled. A
// failover-class result (conn error / 503 / 429 / 404) from both
// contenders falls back to the ordinary retry loop. The router.hedge.fire fault
// point forces the hedge to fire immediately.
func (rt *Router) forwardInfer(ctx context.Context, candidates []string, header http.Header, body []byte) (fwdResult, error) {
	ordered := rt.orderCandidates(candidates)
	if rt.hedgeAfter < 0 || len(ordered) < 2 {
		return rt.forward(ctx, candidates, http.MethodPost, api.PathInfer, header, body, true)
	}
	primary, backup := ordered[0], ordered[1]
	delay := rt.hedgeDelay(primary)
	if ferr := fault.Inject(fault.RouterHedgeFire); ferr != nil {
		delay = 0
	}

	type attempt struct {
		res   fwdResult
		err   error
		ep    string
		hedge bool
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attempt, 2)
	start := time.Now()
	launch := func(ep string, hedge bool) {
		rt.countShard(ep)
		if !hedge {
			if ferr := fault.Inject(fault.RouterForwardErr); ferr != nil {
				ch <- attempt{err: ferr, ep: ep, hedge: hedge}
				return
			}
		}
		res, err := rt.roundTrip(cctx, ep, http.MethodPost, api.PathInfer, header, body)
		ch <- attempt{res: res, err: err, ep: ep, hedge: hedge}
	}
	go launch(primary, false)

	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedged := false
	landed := 0
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				rt.countHedged()
				rt.log.Info("router.hedge", slog.String("primary", primary),
					slog.String("backup", backup), slog.Duration("after", delay))
				go launch(backup, true)
			}
		case a := <-ch:
			landed++
			conclusive := a.err == nil && a.res.status != http.StatusServiceUnavailable &&
				a.res.status != http.StatusNotFound && a.res.status != http.StatusTooManyRequests
			if conclusive {
				// Either way the total latency charges to the primary's window:
				// a hedge win means the primary was too slow, and teaching the
				// estimator that is what keeps hedging firing against a
				// uniformly slow shard.
				rt.est.observe(primary, time.Since(start))
				if a.hedge {
					rt.countHedgeWin()
					rt.log.Info("router.hedge.win", slog.String("backup", backup),
						slog.Duration("latency", time.Since(start)))
				}
				cancel()
				return a.res, nil
			}
			rt.countFailover()
			if a.err != nil {
				rt.log.Warn("router.forward", slog.String("shard", a.ep), slog.String("err", a.err.Error()))
			} else {
				rt.log.Info("router.failover", slog.String("shard", a.ep), slog.Int("status", a.res.status))
			}
			want := 1
			if hedged {
				want = 2
			}
			if landed >= want {
				// Both contenders (or the sole one) answered failover-class:
				// hand the request to the ordinary retry/failover loop, which
				// also owns relaying a final 503/404 if nothing recovers.
				cancel()
				return rt.forward(ctx, candidates, http.MethodPost, api.PathInfer, header, body, true)
			}
		case <-ctx.Done():
			return fwdResult{}, ctx.Err()
		}
	}
}

// hedgeDelay picks the hedge delay for a primary: the configured fixed
// delay, or the shard's observed p95 clamped to [hedgeMin, hedgeMax] —
// conservative (hedgeMax) until enough samples exist.
func (rt *Router) hedgeDelay(primary string) time.Duration {
	if rt.hedgeAfter > 0 {
		return rt.hedgeAfter
	}
	p95, ok := rt.est.p95(primary)
	if !ok {
		return rt.hedgeMax
	}
	if p95 < rt.hedgeMin {
		return rt.hedgeMin
	}
	if p95 > rt.hedgeMax {
		return rt.hedgeMax
	}
	return p95
}

// handleHealthz is the router's own liveness: it holds no state, so
// alive means ok.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Healthz{Status: "ok"})
}

// handleReadyz reports the router ready while at least one shard is:
// with every shard down there is nothing to route to.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	members := rt.curRing().Endpoints()
	rt.mu.RLock()
	ready := 0
	for _, ep := range members {
		if !rt.unready[ep] {
			ready++
		}
	}
	rt.mu.RUnlock()
	if ready == 0 {
		writeJSON(w, http.StatusServiceUnavailable, api.Readyz{Status: "no ready shards"})
		return
	}
	writeJSON(w, http.StatusOK, api.Readyz{Status: "ready"})
}

// --- aggregation ---------------------------------------------------------

// scrapeAll fetches one path from every shard concurrently; shards that
// fail are reported with a nil body.
func (rt *Router) scrapeAll(ctx context.Context, path string) map[string][]byte {
	ring := rt.curRing()
	out := make(map[string][]byte, ring.Len())
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ep := range ring.Endpoints() {
		wg.Add(1)
		go func(ep string) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			var body []byte
			if res, err := rt.roundTrip(cctx, ep, http.MethodGet, path, nil, nil); err == nil && res.status == http.StatusOK {
				body = res.body
			}
			mu.Lock()
			out[ep] = body
			mu.Unlock()
		}(ep)
	}
	wg.Wait()
	return out
}

// handleStatz aggregates every shard's statz into per-shard snapshots
// plus cluster-wide sums of the monotone counters. A shard whose scrape
// failed is named in Unreachable and represented by its last successful
// snapshot with a nonzero ScrapeAgeSec — explicit staleness instead of
// a silent hole in the totals.
func (rt *Router) handleStatz(w http.ResponseWriter, r *http.Request) {
	shards := map[string]api.Statz{}
	var unreachable []string
	ages := map[string]float64{}
	var sum api.Statz
	now := time.Now()
	for ep, body := range rt.scrapeAll(r.Context(), api.PathStatz) {
		var st api.Statz
		if body != nil && json.Unmarshal(body, &st) == nil {
			rt.scrapeMu.Lock()
			rt.lastStatz[ep] = scrapedStatz{at: now, st: st}
			rt.scrapeMu.Unlock()
			ages[ep] = 0
		} else {
			unreachable = append(unreachable, ep)
			rt.scrapeMu.Lock()
			cached, ok := rt.lastStatz[ep]
			rt.scrapeMu.Unlock()
			if !ok {
				continue // never scraped successfully: nothing to report
			}
			st = cached.st
			ages[ep] = now.Sub(cached.at).Seconds()
		}
		shards[ep] = st
		sum.Served += st.Served
		sum.Rejected += st.Rejected
		sum.TimedOut += st.TimedOut
		sum.Failed += st.Failed
		sum.Panics += st.Panics
		sum.IdemReplays += st.IdemReplays
		sum.FaultsFired += st.FaultsFired
		sum.QueueExpired += st.QueueExpired
		sum.QueueDepth += st.QueueDepth
		sum.QueueCap += st.QueueCap
		sum.Workers += st.Workers
		sum.Batches += st.Batches
		sum.BatchedJobs += st.BatchedJobs
		sum.SoloFallbacks += st.SoloFallbacks
		sum.Sessions += st.Sessions
		sum.SessionBytes += st.SessionBytes
		sum.SessionBudget += st.SessionBudget
		sum.SessionHits += st.SessionHits
		sum.SessionMisses += st.SessionMisses
		sum.SessionEvictions += st.SessionEvictions
		sum.Restarts += st.Restarts
		sum.SessionsRecovered += st.SessionsRecovered
		sum.JobsResumed += st.JobsResumed
		sum.CheckpointBytes += st.CheckpointBytes
		sum.StoreBytes += st.StoreBytes
		sum.StoreErrs += st.StoreErrs
		sum.PendingRecovery += st.PendingRecovery
		sum.ReplicaSessions += st.ReplicaSessions
		sum.ReplicaResults += st.ReplicaResults
		sum.ReplicaShipErrs += st.ReplicaShipErrs
	}
	epoch, ring := rt.mem.Current()
	rt.mu.RLock()
	ready := make(map[string]bool, ring.Len())
	for _, ep := range ring.Endpoints() {
		ready[ep] = !rt.unready[ep]
	}
	suspect := map[string]float64{}
	for ep, since := range rt.suspectSince {
		suspect[ep] = now.Sub(since).Seconds()
	}
	rt.mu.RUnlock()
	rt.stats.mu.Lock()
	rstat := RouterStatz{
		Forwarded:     rt.stats.forwarded,
		Failovers:     rt.stats.failovers,
		Errors:        rt.stats.errors,
		Hedged:        rt.stats.hedged,
		HedgeWins:     rt.stats.hedgeWins,
		Epoch:         epoch,
		ShardRequests: make(map[string]uint64, len(rt.stats.shardRequests)),
		Ready:         ready,
		Suspect:       suspect,
	}
	for ep, n := range rt.stats.shardRequests {
		rstat.ShardRequests[ep] = n
	}
	rt.stats.mu.Unlock()
	sort.Strings(unreachable)
	writeJSON(w, http.StatusOK, ClusterStatz{
		Router: rstat, Cluster: sum, Shards: shards,
		Unreachable: unreachable, ScrapeAgeSec: ages,
	})
}

// handleProfilez returns every shard's per-opcode FHE profile keyed by
// shard endpoint. Profiles are dense aggregates, not counters; summing
// them would hide exactly the per-shard skew this page exists to show.
func (rt *Router) handleProfilez(w http.ResponseWriter, r *http.Request) {
	out := map[string]json.RawMessage{}
	for ep, body := range rt.scrapeAll(r.Context(), api.PathProfilez) {
		if body == nil {
			continue
		}
		out[ep] = json.RawMessage(body)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics federates the shards' Prometheus pages: every sample is
// strict-parsed and re-emitted with a "shard" label added, one family
// per metric name — histograms, counters and gauges all keep their
// native type, and a scraper sees the whole cluster on one page. The
// router's own counters ride along as ace_router_* families.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type parsed struct {
		ep  string
		fam map[string]*obs.ParsedFamily
	}
	epoch, ring := rt.mem.Current()
	var pages []parsed
	eps := make([]string, 0, ring.Len())
	for ep, body := range rt.scrapeAll(r.Context(), api.PathMetrics) {
		if body == nil {
			continue
		}
		fams, err := obs.ParseExposition(bytes.NewReader(body))
		if err != nil {
			rt.log.Warn("router.metrics.parse", slog.String("shard", ep), slog.String("err", err.Error()))
			continue
		}
		pages = append(pages, parsed{ep: ep, fam: fams})
		eps = append(eps, ep)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].ep < pages[j].ep })

	e := obs.NewExposition()
	for _, pg := range pages {
		names := make([]string, 0, len(pg.fam))
		for name := range pg.fam {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f := pg.fam[name]
			fw := e.Family(name, f.Help, obs.MetricType(f.Type))
			for _, s := range f.Samples {
				labels := make([]obs.Label, 0, len(s.Labels)+1)
				labels = append(labels, obs.Label{Name: "shard", Value: pg.ep})
				lnames := make([]string, 0, len(s.Labels))
				for ln := range s.Labels {
					lnames = append(lnames, ln)
				}
				sort.Strings(lnames)
				for _, ln := range lnames {
					labels = append(labels, obs.Label{Name: ln, Value: s.Labels[ln]})
				}
				fw.AddRaw(s.Name, s.Value, labels...)
			}
		}
	}

	rt.stats.mu.Lock()
	fwd, fo, errs := rt.stats.forwarded, rt.stats.failovers, rt.stats.errors
	hedged, hedgeWins := rt.stats.hedged, rt.stats.hedgeWins
	perShard := make(map[string]uint64, len(rt.stats.shardRequests))
	for ep, n := range rt.stats.shardRequests {
		perShard[ep] = n
	}
	rt.stats.mu.Unlock()
	e.Family("ace_router_forwarded_total", "Requests the router forwarded to a shard and answered.", obs.Counter).Add(float64(fwd))
	e.Family("ace_router_failovers_total", "Forward attempts that failed over to the next candidate shard.", obs.Counter).Add(float64(fo))
	e.Family("ace_router_errors_total", "Requests that exhausted every candidate shard.", obs.Counter).Add(float64(errs))
	e.Family("ace_hedged_requests", "Infer requests that fired a duplicate to the replica after the hedge delay.", obs.Counter).Add(float64(hedged))
	e.Family("ace_hedge_wins", "Hedged infer requests the replica answered first.", obs.Counter).Add(float64(hedgeWins))
	e.Family("ace_cluster_epoch", "Committed cluster membership epoch.", obs.Gauge).Add(float64(epoch))
	sf := e.Family("ace_router_shard_requests_total", "Forward attempts per shard.", obs.Counter)
	sort.Strings(eps)
	shardKeys := make([]string, 0, len(perShard))
	for ep := range perShard {
		shardKeys = append(shardKeys, ep)
	}
	sort.Strings(shardKeys)
	for _, ep := range shardKeys {
		sf.Add(float64(perShard[ep]), obs.Label{Name: "shard", Value: ep})
	}
	e.Family("ace_router_shards", "Shards in the routing ring.", obs.Gauge).Add(float64(ring.Len()))

	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		writeJSON(w, http.StatusInternalServerError, api.ErrorReply{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// --- counters ------------------------------------------------------------

func (rt *Router) countForwarded() {
	rt.stats.mu.Lock()
	rt.stats.forwarded++
	rt.stats.mu.Unlock()
}

func (rt *Router) countFailover() {
	rt.stats.mu.Lock()
	rt.stats.failovers++
	rt.stats.mu.Unlock()
}

func (rt *Router) countErr() {
	rt.stats.mu.Lock()
	rt.stats.errors++
	rt.stats.mu.Unlock()
}

func (rt *Router) countShard(ep string) {
	rt.stats.mu.Lock()
	rt.stats.shardRequests[ep]++
	rt.stats.mu.Unlock()
}

func (rt *Router) countHedged() {
	rt.stats.mu.Lock()
	rt.stats.hedged++
	rt.stats.mu.Unlock()
}

func (rt *Router) countHedgeWin() {
	rt.stats.mu.Lock()
	rt.stats.hedgeWins++
	rt.stats.mu.Unlock()
}
