package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antace/internal/fault"
	"antace/internal/serve/api"
)

func TestLatencyEstimator(t *testing.T) {
	est := newLatencyEstimator()
	if _, ok := est.p95("s"); ok {
		t.Fatal("empty estimator reported a p95")
	}
	// Below the sample floor the estimator stays conservative.
	for i := 0; i < hedgeMinSamples-1; i++ {
		est.observe("s", 10*time.Millisecond)
	}
	if _, ok := est.p95("s"); ok {
		t.Fatalf("p95 reported with %d samples, floor is %d", hedgeMinSamples-1, hedgeMinSamples)
	}
	est.observe("s", 10*time.Millisecond)
	if p, ok := est.p95("s"); !ok || p != 10*time.Millisecond {
		t.Fatalf("uniform samples: p95 %v ok=%v", p, ok)
	}
	// 100 samples of 1..100ms: the ceil-rank p95 is the 95th value.
	est.forget("s")
	for i := 1; i <= 100; i++ {
		est.observe("t", time.Duration(i)*time.Millisecond)
	}
	if p, ok := est.p95("t"); !ok || p != 95*time.Millisecond {
		t.Fatalf("1..100ms samples: p95 %v ok=%v, want 95ms", p, ok)
	}
	// The window slides: a shard that got fast pulls its p95 down.
	for i := 0; i < hedgeWindow; i++ {
		est.observe("t", 2*time.Millisecond)
	}
	if p, _ := est.p95("t"); p != 2*time.Millisecond {
		t.Fatalf("after recovery p95 %v, want 2ms", p)
	}
	if _, ok := est.p95("s"); ok {
		t.Fatal("forgotten shard still has samples")
	}
}

// fakeShard is a minimal shard stand-in for router-only tests: it
// answers /v1/infer with its own marker after a settable delay, and
// /v1/statz with fixed counters (or 500 when failing). Real-shard
// behavior is covered by the e2e suite; these fakes isolate the
// router's hedging race from FHE evaluation time.
type fakeShard struct {
	srv     *httptest.Server
	delayMs atomic.Int64
	failing atomic.Bool
	hits    atomic.Int64

	mu       sync.Mutex
	idemKeys []string
}

func newFakeShard(t *testing.T, marker string) *fakeShard {
	t.Helper()
	f := &fakeShard{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathInfer, func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		f.mu.Lock()
		f.idemKeys = append(f.idemKeys, r.Header.Get(api.HeaderIdemKey))
		f.mu.Unlock()
		if d := f.delayMs.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		_, _ = w.Write([]byte(marker))
	})
	mux.HandleFunc("GET "+api.PathStatz, func(w http.ResponseWriter, r *http.Request) {
		if f.failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(api.Statz{Served: 7})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// hedgeFixture wires two fake shards behind a router and returns the
// pieces, with the slow/fast roles assigned by the ring's actual
// placement of sessID so the test never depends on hash luck.
func hedgeFixture(t *testing.T, cfg RouterConfig) (routerURL, sessID string, primary, backup *fakeShard) {
	t.Helper()
	a, b := newFakeShard(t, "answer-a"), newFakeShard(t, "answer-b")
	ring, err := NewRing([]string{a.srv.URL, b.srv.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(ring, cfg)
	ts := httptest.NewServer(rt)
	t.Cleanup(func() { ts.Close(); rt.Close() })
	sessID = "00000000000000000000000000000042"
	owners := ring.LookupN(sessID, 2)
	primary, backup = a, b
	if owners[0] == b.srv.URL {
		primary, backup = b, a
	}
	return ts.URL, sessID, primary, backup
}

func routerInfer(t *testing.T, routerURL, sessID string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, routerURL+api.PathInfer, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderSession, sessID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body [64]byte
	n, _ := resp.Body.Read(body[:])
	return resp.StatusCode, string(body[:n])
}

func routerStatz(t *testing.T, routerURL string) ClusterStatz {
	t.Helper()
	resp, err := http.Get(routerURL + api.PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterHedgingSlowPrimary: the primary stalls past the fixed hedge
// delay, the router duplicates the request to the replica with the same
// idempotency key, and the replica's (first) answer is the one relayed.
func TestRouterHedgingSlowPrimary(t *testing.T) {
	routerURL, sessID, primary, backup := hedgeFixture(t, RouterConfig{
		ProbeEvery: -1, HedgeAfter: 20 * time.Millisecond,
	})
	primary.delayMs.Store(2000)

	start := time.Now()
	status, body := routerInfer(t, routerURL, sessID)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged infer: status %d body %q", status, body)
	}
	if backup.hits.Load() == 0 {
		t.Fatal("backup never saw the hedged request")
	}
	if elapsed > time.Second {
		t.Fatalf("hedged request took %v, the hedge did not cut the stall", elapsed)
	}
	primary.mu.Lock()
	pKeys := append([]string(nil), primary.idemKeys...)
	primary.mu.Unlock()
	backup.mu.Lock()
	bKeys := append([]string(nil), backup.idemKeys...)
	backup.mu.Unlock()
	if len(pKeys) != 1 || len(bKeys) != 1 || pKeys[0] != bKeys[0] || pKeys[0] == "" {
		t.Fatalf("hedge must reuse the idempotency key: primary %v backup %v", pKeys, bKeys)
	}

	st := routerStatz(t, routerURL)
	if st.Router.Hedged == 0 {
		t.Error("ace_hedged_requests stayed 0 across a fired hedge")
	}
	if st.Router.HedgeWins == 0 {
		t.Error("ace_hedge_wins stayed 0 although the backup answered first")
	}
}

// TestRouterHedgeAdaptiveDelay: with no fixed -hedge-after the router
// hedges on the primary's own p95. Warm the estimator with fast
// primary answers, then stall the primary — the adaptive delay is the
// clamped p95, far below the conservative 2s ceiling, so the hedge
// fires and the replica answers.
func TestRouterHedgeAdaptiveDelay(t *testing.T) {
	routerURL, sessID, primary, backup := hedgeFixture(t, RouterConfig{ProbeEvery: -1})
	for i := 0; i < hedgeMinSamples; i++ {
		if status, _ := routerInfer(t, routerURL, sessID); status != http.StatusOK {
			t.Fatalf("warmup %d failed", i)
		}
	}
	if backup.hits.Load() != 0 {
		t.Fatalf("backup hit %d times during fast warmup (conservative delay must hold)", backup.hits.Load())
	}
	primary.delayMs.Store(5000)
	start := time.Now()
	status, _ := routerInfer(t, routerURL, sessID)
	if status != http.StatusOK {
		t.Fatalf("adaptive hedged infer: status %d", status)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("adaptive hedge answered in %v, want well under the primary's 5s stall", elapsed)
	}
	if backup.hits.Load() == 0 {
		t.Fatal("adaptive hedge never fired")
	}
}

// TestRouterHedgeFireFault: the router.hedge.fire chaos point forces the
// hedge immediately, regardless of the (here enormous) configured delay.
func TestRouterHedgeFireFault(t *testing.T) {
	if err := fault.Arm(fault.RouterHedgeFire + ":1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()

	routerURL, sessID, primary, backup := hedgeFixture(t, RouterConfig{
		ProbeEvery: -1, HedgeAfter: time.Hour,
	})
	primary.delayMs.Store(3000)
	start := time.Now()
	status, _ := routerInfer(t, routerURL, sessID)
	if status != http.StatusOK {
		t.Fatalf("forced hedge: status %d", status)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("forced hedge answered in %v", elapsed)
	}
	if backup.hits.Load() == 0 {
		t.Fatal("router.hedge.fire did not force the hedge")
	}
	fired := false
	for _, p := range fault.Snapshot() {
		if p.Point == fault.RouterHedgeFire && p.Fired > 0 {
			fired = true
		}
	}
	if !fired {
		t.Error("router.hedge.fire never fired")
	}
}

// TestRouterStatzStaleness: a shard whose scrape fails is named in
// Unreachable and represented by its last successful snapshot with a
// nonzero age — an explicit stale lower bound instead of a silent zero
// in the cluster sums.
func TestRouterStatzStaleness(t *testing.T) {
	routerURL, _, primary, backup := hedgeFixture(t, RouterConfig{ProbeEvery: -1})

	st := routerStatz(t, routerURL)
	if len(st.Unreachable) != 0 {
		t.Fatalf("healthy cluster reported unreachable shards: %v", st.Unreachable)
	}
	if st.Cluster.Served != 14 {
		t.Fatalf("cluster sum %d, want 7+7", st.Cluster.Served)
	}

	backup.failing.Store(true)
	time.Sleep(20 * time.Millisecond) // make the snapshot age observable
	st = routerStatz(t, routerURL)
	if len(st.Unreachable) != 1 || st.Unreachable[0] != backup.srv.URL {
		t.Fatalf("unreachable = %v, want exactly the failing shard", st.Unreachable)
	}
	if st.Cluster.Served != 14 {
		t.Fatalf("cluster sum dropped to %d: the cached snapshot must still count", st.Cluster.Served)
	}
	if age := st.ScrapeAgeSec[backup.srv.URL]; age <= 0 {
		t.Fatalf("stale shard's scrape age = %v, want > 0", age)
	}
	if age := st.ScrapeAgeSec[primary.srv.URL]; age != 0 {
		t.Fatalf("fresh shard's scrape age = %v, want 0", age)
	}
	if _, ok := st.Shards[backup.srv.URL]; !ok {
		t.Fatal("stale shard's last snapshot missing from the per-shard map")
	}
}
