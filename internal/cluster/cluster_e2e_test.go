package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"antace/internal/ckksir"
	"antace/internal/cluster"
	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/nnir"
	"antace/internal/obs"
	"antace/internal/onnx"
	"antace/internal/ring"
	"antace/internal/serve"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

// compileLinear lowers the paper's running-example model, mirroring the
// serve package's test pipeline.
func compileLinear(t testing.TB) (serve.Program, *vecir.Result) {
	t.Helper()
	m, err := onnx.BuildLinear(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckksir.Lower(sm, ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	return serve.Program{Name: "linear_infer", CKKS: res, VecLen: vres.InLayout.L}, vres
}

// testCluster is an in-process shard fleet: every shard is a real
// serve.Server with a real Shipper behind a real TCP listener, so the
// replication path crosses actual HTTP boundaries.
type testCluster struct {
	urls     []string
	ring     *cluster.Ring
	shards   map[string]*http.Server
	shippers map[string]*cluster.Shipper
	prog     serve.Program
	vres     *vecir.Result
	// left receives a shard's URL after its OnLeave fired (the membership
	// handoff was acknowledged) and its HTTP server drained and closed —
	// the in-process equivalent of the aced daemon exiting.
	left chan string
}

// startCluster binds n listeners first — placement is a pure function
// of the endpoint list, so every shard needs the full list before any
// shard starts — then wires shipper and server per shard.
func startCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	prog, vres := compileLinear(t)
	tc := &testCluster{
		shards:   map[string]*http.Server{},
		shippers: map[string]*cluster.Shipper{},
		prog:     prog,
		vres:     vres,
		left:     make(chan string, 16),
	}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		tc.urls = append(tc.urls, "http://"+ln.Addr().String())
	}
	rg, err := cluster.NewRing(tc.urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc.ring = rg
	for i, ln := range listeners {
		tc.startShard(t, tc.urls[i], rg, ln)
	}
	return tc
}

// startShard wires one shard — shipper, server, listener — into the
// fleet. OnLeave mirrors the aced daemon: once a membership handoff is
// acknowledged, the shard drains its HTTP server and goes away.
func (tc *testCluster) startShard(t *testing.T, self string, rg *cluster.Ring, ln net.Listener) {
	t.Helper()
	sh, err := cluster.NewShipper(rg, self, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hs *http.Server
	srv, err := serve.New(tc.prog, serve.Config{Workers: 1, Replicator: sh, OnLeave: func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		tc.left <- self
	}})
	if err != nil {
		t.Fatal(err)
	}
	hs = &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	tc.shards[self] = hs
	tc.shippers[self] = sh
	t.Cleanup(func() {
		_ = hs.Close()
		sh.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Drain(ctx)
	})
}

// addShard boots a brand-new shard that knows only itself — the joiner
// pattern: it serves from an epoch-0 single-member ring until a router
// join broadcast hands it the authoritative topology.
func (tc *testCluster) addShard(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + ln.Addr().String()
	solo, err := cluster.NewRing([]string{self}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc.startShard(t, self, solo, ln)
	return self
}

func (tc *testCluster) kill(t *testing.T, url string) {
	t.Helper()
	if err := tc.shards[url].Close(); err != nil {
		t.Fatal(err)
	}
}

func startRouter(t *testing.T, tc *testCluster, cfg cluster.RouterConfig) string {
	t.Helper()
	rt := cluster.NewRouter(tc.ring, cfg)
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return ts.URL
}

func checkReference(t *testing.T, vres *vecir.Result, input, got []float64) {
	t.Helper()
	want, err := vecir.Run(vres.Module.Main(), input)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < vres.OutLayout.C; k++ {
		slot := vres.OutLayout.Slot(k, 0, 0)
		if math.Abs(got[slot]-want[slot]) > 1e-4 {
			t.Fatalf("class %d: served %g, reference %g", k, got[slot], want[slot])
		}
	}
}

func fetchClusterStatz(t *testing.T, routerURL string) cluster.ClusterStatz {
	t.Helper()
	resp, err := http.Get(routerURL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cluster.ClusterStatz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterFailoverAfterShardDeath is the in-process half of the
// tentpole proof: register and infer through the router, kill the
// session's primary shard, and infer again — the router re-routes to
// the ring successor, which holds the replicated key bundle, so the
// request succeeds with zero client re-registration.
func TestRouterFailoverAfterShardDeath(t *testing.T) {
	tc := startCluster(t, 3)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, routerURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Register(ctx, ring.SeedFromInt(51))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, tc.vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%7)/7 - 0.3
	}
	got, err := c.Infer(ctx, input)
	if err != nil {
		t.Fatal(err)
	}
	checkReference(t, tc.vres, input, got)

	// The replica already holds the bundle: registration shipped it
	// synchronously before answering 201.
	candidates := tc.ring.LookupN(id, 2)
	if len(candidates) != 2 {
		t.Fatalf("LookupN(%q, 2) = %v", id, candidates)
	}
	tc.kill(t, candidates[0])

	got, err = c.Infer(ctx, input)
	if err != nil {
		t.Fatalf("inference after primary death: %v", err)
	}
	checkReference(t, tc.vres, input, got)

	st := fetchClusterStatz(t, routerURL)
	if st.Router.Failovers == 0 {
		t.Errorf("router failovers = 0, want > 0 after shard death")
	}
	if st.Cluster.ReplicaSessions == 0 {
		t.Errorf("cluster replica_sessions = 0, want > 0")
	}
	if len(st.Shards) < 2 {
		t.Errorf("statz aggregated %d shards, want >= 2 live", len(st.Shards))
	}
	if st.Router.ShardRequests[candidates[0]] == 0 || st.Router.ShardRequests[candidates[1]] == 0 {
		t.Errorf("shard_requests missing a candidate: %v", st.Router.ShardRequests)
	}
}

// TestRouterForwardFault arms the router.forward.err injection point:
// the first forward dies inside the router — indistinguishable from a
// backend lost between health probes — and the request must still
// succeed via failover.
func TestRouterForwardFault(t *testing.T) {
	if err := fault.Arm(fault.RouterForwardErr + ":1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()

	tc := startCluster(t, 2)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, routerURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(52)); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, tc.vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%4) / 8
	}
	got, err := c.Infer(ctx, input)
	if err != nil {
		t.Fatalf("inference with forward fault armed: %v", err)
	}
	checkReference(t, tc.vres, input, got)

	st := fetchClusterStatz(t, routerURL)
	if st.Router.Failovers == 0 {
		t.Error("injected forward error did not count a failover")
	}
	fired := false
	for _, p := range fault.Snapshot() {
		if p.Point == fault.RouterForwardErr && p.Fired > 0 {
			fired = true
		}
	}
	if !fired {
		t.Error("router.forward.err never fired")
	}
}

// TestShipperTornReship arms replica.ship.torn: the first session
// shipment is truncated mid-frame, the replica applies the intact
// prefix, and the shipper re-sends the cut records — after which the
// replica must be able to serve the session on failover.
func TestShipperTornReship(t *testing.T) {
	if err := fault.Arm(fault.ReplicaShipTorn + ":1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()

	tc := startCluster(t, 2)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, routerURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Register(ctx, ring.SeedFromInt(53))
	if err != nil {
		t.Fatal(err)
	}

	candidates := tc.ring.LookupN(id, 2)
	primary := candidates[0]
	reshipped := false
	for _, sh := range tc.shippers {
		if st := sh.Stats(); st.Reshipped > 0 {
			reshipped = true
		}
	}
	if !reshipped {
		t.Fatal("torn shipment was never re-shipped")
	}

	tc.kill(t, primary)
	input := make([]float64, tc.vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%3)/6 - 0.1
	}
	got, err := c.Infer(ctx, input)
	if err != nil {
		t.Fatalf("inference from replica after torn re-ship: %v", err)
	}
	checkReference(t, tc.vres, input, got)
}

// TestRouterMetricsFederation: the federated /metrics page must
// strict-parse, carry per-shard samples labeled shard="...", and
// include the router's own families.
func TestRouterMetricsFederation(t *testing.T) {
	tc := startCluster(t, 2)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: -1})

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, routerURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(54)); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, tc.vres.InLayout.L)
	if _, err := c.Infer(ctx, input); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(routerURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	fams, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("federated page does not strict-parse: %v\n%s", err, page)
	}
	served, ok := fams["ace_requests_served_total"]
	if !ok {
		t.Fatalf("federated page missing ace_requests_served_total:\n%s", page)
	}
	sawShard := false
	for _, s := range served.Samples {
		if s.Labels["shard"] != "" {
			sawShard = true
		}
	}
	if !sawShard {
		t.Error("federated samples carry no shard label")
	}
	if _, ok := fams["ace_router_shards"]; !ok {
		t.Error("federated page missing ace_router_shards")
	}
	if _, ok := fams["ace_router_forwarded_total"]; !ok {
		t.Error("federated page missing ace_router_forwarded_total")
	}
}

// TestRouterReadyzReflectsShards: the router reports ready while any
// shard is, and 503 once the prober has seen every shard die.
func TestRouterReadyzReflectsShards(t *testing.T) {
	tc := startCluster(t, 2)
	routerURL := startRouter(t, tc, cluster.RouterConfig{ProbeEvery: 25 * time.Millisecond})

	waitStatus := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(routerURL + "/v1/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == want {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("router readyz never reached %d", want)
	}
	waitStatus(http.StatusOK)
	for _, url := range tc.urls {
		tc.kill(t, url)
	}
	waitStatus(http.StatusServiceUnavailable)
}
