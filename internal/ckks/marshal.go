package ckks

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"antace/internal/ring"
)

// Binary serialization for the client/server boundary of the threat
// model (Figure 2 of the paper): the client ships an encrypted image and
// the public evaluation keys to the server; the server returns the
// encrypted result. The format is little-endian and versioned.

const marshalMagic = 0xACE0

// putHeader writes magic, version and a kind tag.
func putHeader(buf []byte, kind uint16) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, marshalMagic)
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	return binary.LittleEndian.AppendUint16(buf, kind)
}

func checkHeader(data []byte, kind uint16) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("ckks: truncated header")
	}
	if binary.LittleEndian.Uint16(data) != marshalMagic {
		return nil, fmt.Errorf("ckks: bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[2:]); v != 1 {
		return nil, fmt.Errorf("ckks: unsupported version %d", v)
	}
	if k := binary.LittleEndian.Uint16(data[4:]); k != kind {
		return nil, fmt.Errorf("ckks: wrong object kind %d, want %d", k, kind)
	}
	return data[6:], nil
}

const (
	kindCiphertext uint16 = iota + 1
	kindPlaintext
	kindPublicKey
	kindSwitchingKey
	kindRelinearizationKey
	kindGaloisKey
	kindEvaluationKeySet
	kindParams
)

// appendPoly serializes an RNS polynomial.
func appendPoly(buf []byte, p *ring.Poly) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs)))
	if len(p.Coeffs) > 0 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs[0])))
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, 0)
	}
	for _, row := range p.Coeffs {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

func readPoly(data []byte) (*ring.Poly, []byte, error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("ckks: truncated polynomial header")
	}
	rows := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if rows < 0 || rows > 64 || n < 0 || n > 1<<20 {
		return nil, nil, fmt.Errorf("ckks: implausible polynomial dimensions %dx%d", rows, n)
	}
	need := rows * n * 8
	if len(data) < need {
		return nil, nil, fmt.Errorf("ckks: truncated polynomial body (%d < %d)", len(data), need)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, rows)}
	for i := 0; i < rows; i++ {
		row := make([]uint64, n)
		for j := 0; j < n; j++ {
			row[j] = binary.LittleEndian.Uint64(data[8*(i*n+j):])
		}
		p.Coeffs[i] = row
	}
	return p, data[need:], nil
}

// MarshalBinary serializes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindCiphertext)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ct.Scale))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ct.Value)))
	for _, p := range ct.Value {
		buf = appendPoly(buf, p)
	}
	return buf, nil
}

// UnmarshalBinary deserializes a ciphertext.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindCiphertext)
	if err != nil {
		return err
	}
	if len(rest) < 12 {
		return fmt.Errorf("ckks: truncated ciphertext")
	}
	ct.Scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	count := int(binary.LittleEndian.Uint32(rest[8:]))
	rest = rest[12:]
	if count < 1 || count > 4 {
		return fmt.Errorf("ckks: implausible ciphertext degree %d", count-1)
	}
	ct.Value = make([]*ring.Poly, count)
	for i := range ct.Value {
		var p *ring.Poly
		p, rest, err = readPoly(rest)
		if err != nil {
			return err
		}
		ct.Value[i] = p
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	return nil
}

// MarshalBinary serializes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindPlaintext)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Scale))
	return appendPoly(buf, pt.Value), nil
}

// UnmarshalBinary deserializes a plaintext.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindPlaintext)
	if err != nil {
		return err
	}
	if len(rest) < 8 {
		return fmt.Errorf("ckks: truncated plaintext")
	}
	pt.Scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	p, rest, err := readPoly(rest[8:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	pt.Value = p
	return nil
}

// MarshalBinary serializes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindPublicKey)
	buf = appendPoly(buf, pk.B)
	return appendPoly(buf, pk.A), nil
}

// UnmarshalBinary deserializes a public key.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindPublicKey)
	if err != nil {
		return err
	}
	b, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	a, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	pk.B, pk.A = b, a
	return nil
}

// maxSwitchingKeyDigits bounds the digit count accepted off the wire; real
// parameter sets use dnum <= len(LogQ) <= 64.
const maxSwitchingKeyDigits = 64

// appendSwitchingKeyBody serializes a switching key without a header, so
// the same body encoding nests inside relinearization keys, Galois keys
// and the evaluation-key bundle.
func appendSwitchingKeyBody(buf []byte, swk *SwitchingKey) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(swk.BQ)))
	for d := range swk.BQ {
		buf = appendPoly(buf, swk.BQ[d])
		buf = appendPoly(buf, swk.BP[d])
		buf = appendPoly(buf, swk.AQ[d])
		buf = appendPoly(buf, swk.AP[d])
	}
	return buf
}

func readSwitchingKeyBody(data []byte) (*SwitchingKey, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("ckks: truncated switching key")
	}
	dnum := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if dnum < 1 || dnum > maxSwitchingKeyDigits {
		return nil, nil, fmt.Errorf("ckks: implausible switching-key digit count %d", dnum)
	}
	swk := &SwitchingKey{
		BQ: make([]*ring.Poly, dnum), BP: make([]*ring.Poly, dnum),
		AQ: make([]*ring.Poly, dnum), AP: make([]*ring.Poly, dnum),
	}
	var err error
	for d := 0; d < dnum; d++ {
		for _, dst := range []*[]*ring.Poly{&swk.BQ, &swk.BP, &swk.AQ, &swk.AP} {
			if (*dst)[d], data, err = readPoly(data); err != nil {
				return nil, nil, fmt.Errorf("ckks: switching key digit %d: %w", d, err)
			}
		}
	}
	return swk, data, nil
}

// MarshalBinary serializes the switching key.
func (swk *SwitchingKey) MarshalBinary() ([]byte, error) {
	return appendSwitchingKeyBody(putHeader(nil, kindSwitchingKey), swk), nil
}

// UnmarshalBinary deserializes a switching key.
func (swk *SwitchingKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindSwitchingKey)
	if err != nil {
		return err
	}
	k, rest, err := readSwitchingKeyBody(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	*swk = *k
	return nil
}

// MarshalBinary serializes the relinearization key.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	return appendSwitchingKeyBody(putHeader(nil, kindRelinearizationKey), &rlk.SwitchingKey), nil
}

// UnmarshalBinary deserializes a relinearization key.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindRelinearizationKey)
	if err != nil {
		return err
	}
	k, rest, err := readSwitchingKeyBody(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	rlk.SwitchingKey = *k
	return nil
}

func appendGaloisKeyBody(buf []byte, gk *GaloisKey) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, gk.GaloisElement)
	return appendSwitchingKeyBody(buf, &gk.SwitchingKey)
}

func readGaloisKeyBody(data []byte) (*GaloisKey, []byte, error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("ckks: truncated Galois key")
	}
	gk := &GaloisKey{GaloisElement: binary.LittleEndian.Uint64(data)}
	swk, rest, err := readSwitchingKeyBody(data[8:])
	if err != nil {
		return nil, nil, err
	}
	gk.SwitchingKey = *swk
	return gk, rest, nil
}

// MarshalBinary serializes the Galois key.
func (gk *GaloisKey) MarshalBinary() ([]byte, error) {
	return appendGaloisKeyBody(putHeader(nil, kindGaloisKey), gk), nil
}

// UnmarshalBinary deserializes a Galois key.
func (gk *GaloisKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindGaloisKey)
	if err != nil {
		return err
	}
	k, rest, err := readGaloisKeyBody(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	*gk = *k
	return nil
}

// MarshalBinary serializes the full evaluation-key bundle a client ships
// to the server: the relinearization key (optional) and all Galois keys,
// sorted by Galois element so the encoding is deterministic.
func (s *EvaluationKeySet) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindEvaluationKeySet)
	if s.Rlk != nil {
		buf = append(buf, 1)
		buf = appendSwitchingKeyBody(buf, &s.Rlk.SwitchingKey)
	} else {
		buf = append(buf, 0)
	}
	els := make([]uint64, 0, len(s.Galois))
	for gal := range s.Galois {
		els = append(els, gal)
	}
	slices.Sort(els)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(els)))
	for _, gal := range els {
		buf = appendGaloisKeyBody(buf, s.Galois[gal])
	}
	return buf, nil
}

// UnmarshalBinary deserializes an evaluation-key bundle. The Galois map
// is grown one parsed key at a time, so a forged count field cannot force
// a large allocation up front.
func (s *EvaluationKeySet) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindEvaluationKeySet)
	if err != nil {
		return err
	}
	if len(rest) < 5 {
		return fmt.Errorf("ckks: truncated evaluation-key set")
	}
	hasRlk := rest[0]
	rest = rest[1:]
	if hasRlk > 1 {
		return fmt.Errorf("ckks: bad relinearization-key flag %d", hasRlk)
	}
	var rlk *RelinearizationKey
	if hasRlk == 1 {
		swk, r, err := readSwitchingKeyBody(rest)
		if err != nil {
			return fmt.Errorf("ckks: relinearization key: %w", err)
		}
		rlk = &RelinearizationKey{*swk}
		rest = r
	}
	if len(rest) < 4 {
		return fmt.Errorf("ckks: truncated Galois-key count")
	}
	count := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	// Each Galois key needs at least its element, a digit count and one
	// polynomial header per component.
	if count < 0 || count > len(rest)/(8+4) {
		return fmt.Errorf("ckks: implausible Galois-key count %d for %d bytes", count, len(rest))
	}
	galois := make(map[uint64]*GaloisKey, count)
	for i := 0; i < count; i++ {
		gk, r, err := readGaloisKeyBody(rest)
		if err != nil {
			return fmt.Errorf("ckks: Galois key %d: %w", i, err)
		}
		if _, dup := galois[gk.GaloisElement]; dup {
			return fmt.Errorf("ckks: duplicate Galois element %d", gk.GaloisElement)
		}
		galois[gk.GaloisElement] = gk
		rest = r
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	s.Rlk, s.Galois = rlk, galois
	return nil
}

// MarshalBinary serializes a parameter literal. Prime chains travel as
// bit sizes, not prime values: generation is deterministic, so client and
// server derive identical moduli from the same literal.
func (lit ParametersLiteral) MarshalBinary() ([]byte, error) {
	if len(lit.LogQ) > 255 || len(lit.LogP) > 255 {
		return nil, fmt.Errorf("ckks: modulus chain too long to serialize (%d/%d)", len(lit.LogQ), len(lit.LogP))
	}
	buf := putHeader(nil, kindParams)
	buf = append(buf, uint8(lit.LogN), uint8(lit.LogScale), uint8(lit.Dnum))
	buf = append(buf, uint8(len(lit.LogQ)))
	for _, lq := range lit.LogQ {
		if lq < 1 || lq > 63 {
			return nil, fmt.Errorf("ckks: LogQ entry %d out of [1,63]", lq)
		}
		buf = append(buf, uint8(lq))
	}
	buf = append(buf, uint8(len(lit.LogP)))
	for _, lp := range lit.LogP {
		if lp < 1 || lp > 63 {
			return nil, fmt.Errorf("ckks: LogP entry %d out of [1,63]", lp)
		}
		buf = append(buf, uint8(lp))
	}
	return buf, nil
}

// UnmarshalBinary deserializes a parameter literal.
func (lit *ParametersLiteral) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindParams)
	if err != nil {
		return err
	}
	if len(rest) < 5 {
		return fmt.Errorf("ckks: truncated parameter literal")
	}
	out := ParametersLiteral{LogN: int(rest[0]), LogScale: int(rest[1]), Dnum: int(rest[2])}
	rest = rest[3:]
	readChain := func(name string) ([]int, error) {
		n := int(rest[0])
		rest = rest[1:]
		if len(rest) < n {
			return nil, fmt.Errorf("ckks: truncated %s chain (%d < %d)", name, len(rest), n)
		}
		chain := make([]int, n)
		for i := 0; i < n; i++ {
			if rest[i] < 1 || rest[i] > 63 {
				return nil, fmt.Errorf("ckks: %s entry %d out of [1,63]", name, rest[i])
			}
			chain[i] = int(rest[i])
		}
		rest = rest[n:]
		return chain, nil
	}
	if out.LogQ, err = readChain("LogQ"); err != nil {
		return err
	}
	if len(rest) < 1 {
		return fmt.Errorf("ckks: truncated parameter literal")
	}
	if out.LogP, err = readChain("LogP"); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	*lit = out
	return nil
}

// MarshalBinary serializes the literal this parameter set was compiled
// from; ParamsFromBytes reverses it (re-deriving the prime chains).
func (p *Parameters) MarshalBinary() ([]byte, error) {
	return p.lit.MarshalBinary()
}

// ParamsFromBytes decodes a serialized parameter literal and compiles it
// into a full parameter set. Prime generation is deterministic, so two
// parties decoding the same bytes hold identical rings.
func ParamsFromBytes(data []byte) (*Parameters, error) {
	var lit ParametersLiteral
	if err := lit.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return NewParameters(lit)
}

// Size returns the serialized size in bytes of the ciphertext (the
// paper's communication-cost unit).
func (ct *Ciphertext) Size() int {
	total := 6 + 8 + 4
	for _, p := range ct.Value {
		total += 8 + len(p.Coeffs)*p.N()*8
	}
	return total
}
