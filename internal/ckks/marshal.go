package ckks

import (
	"encoding/binary"
	"fmt"
	"math"

	"antace/internal/ring"
)

// Binary serialization for the client/server boundary of the threat
// model (Figure 2 of the paper): the client ships an encrypted image and
// the public evaluation keys to the server; the server returns the
// encrypted result. The format is little-endian and versioned.

const marshalMagic = 0xACE0

// putHeader writes magic, version and a kind tag.
func putHeader(buf []byte, kind uint16) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, marshalMagic)
	buf = binary.LittleEndian.AppendUint16(buf, 1)
	return binary.LittleEndian.AppendUint16(buf, kind)
}

func checkHeader(data []byte, kind uint16) ([]byte, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("ckks: truncated header")
	}
	if binary.LittleEndian.Uint16(data) != marshalMagic {
		return nil, fmt.Errorf("ckks: bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[2:]); v != 1 {
		return nil, fmt.Errorf("ckks: unsupported version %d", v)
	}
	if k := binary.LittleEndian.Uint16(data[4:]); k != kind {
		return nil, fmt.Errorf("ckks: wrong object kind %d, want %d", k, kind)
	}
	return data[6:], nil
}

const (
	kindCiphertext uint16 = iota + 1
	kindPlaintext
	kindPublicKey
)

// appendPoly serializes an RNS polynomial.
func appendPoly(buf []byte, p *ring.Poly) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs)))
	if len(p.Coeffs) > 0 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Coeffs[0])))
	} else {
		buf = binary.LittleEndian.AppendUint32(buf, 0)
	}
	for _, row := range p.Coeffs {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

func readPoly(data []byte) (*ring.Poly, []byte, error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("ckks: truncated polynomial header")
	}
	rows := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	data = data[8:]
	if rows < 0 || rows > 64 || n < 0 || n > 1<<20 {
		return nil, nil, fmt.Errorf("ckks: implausible polynomial dimensions %dx%d", rows, n)
	}
	need := rows * n * 8
	if len(data) < need {
		return nil, nil, fmt.Errorf("ckks: truncated polynomial body (%d < %d)", len(data), need)
	}
	p := &ring.Poly{Coeffs: make([][]uint64, rows)}
	for i := 0; i < rows; i++ {
		row := make([]uint64, n)
		for j := 0; j < n; j++ {
			row[j] = binary.LittleEndian.Uint64(data[8*(i*n+j):])
		}
		p.Coeffs[i] = row
	}
	return p, data[need:], nil
}

// MarshalBinary serializes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindCiphertext)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(ct.Scale))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ct.Value)))
	for _, p := range ct.Value {
		buf = appendPoly(buf, p)
	}
	return buf, nil
}

// UnmarshalBinary deserializes a ciphertext.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindCiphertext)
	if err != nil {
		return err
	}
	if len(rest) < 12 {
		return fmt.Errorf("ckks: truncated ciphertext")
	}
	ct.Scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	count := int(binary.LittleEndian.Uint32(rest[8:]))
	rest = rest[12:]
	if count < 1 || count > 4 {
		return fmt.Errorf("ckks: implausible ciphertext degree %d", count-1)
	}
	ct.Value = make([]*ring.Poly, count)
	for i := range ct.Value {
		var p *ring.Poly
		p, rest, err = readPoly(rest)
		if err != nil {
			return err
		}
		ct.Value[i] = p
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	return nil
}

// MarshalBinary serializes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindPlaintext)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Scale))
	return appendPoly(buf, pt.Value), nil
}

// UnmarshalBinary deserializes a plaintext.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindPlaintext)
	if err != nil {
		return err
	}
	if len(rest) < 8 {
		return fmt.Errorf("ckks: truncated plaintext")
	}
	pt.Scale = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	p, rest, err := readPoly(rest[8:])
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	pt.Value = p
	return nil
}

// MarshalBinary serializes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf := putHeader(nil, kindPublicKey)
	buf = appendPoly(buf, pk.B)
	return appendPoly(buf, pk.A), nil
}

// UnmarshalBinary deserializes a public key.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	rest, err := checkHeader(data, kindPublicKey)
	if err != nil {
		return err
	}
	b, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	a, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes", len(rest))
	}
	pk.B, pk.A = b, a
	return nil
}

// Size returns the serialized size in bytes of the ciphertext (the
// paper's communication-cost unit).
func (ct *Ciphertext) Size() int {
	total := 6 + 8 + 4
	for _, p := range ct.Value {
		total += 8 + len(p.Coeffs)*p.N()*8
	}
	return total
}
