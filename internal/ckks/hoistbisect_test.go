package ckks

import "testing"

func TestHoistedVsPlainLinearTransform(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	m := make([][]complex128, slots)
	for i := range m {
		m[i] = make([]complex128, slots)
		for j := range m[i] {
			if (i+j)%7 == 0 {
				m[i][j] = complex(float64(i-j)/float64(slots), 0.25)
			}
		}
	}
	lt := NewLinearTransformFromMatrix(m)
	kg := tc.kg
	keys := tc.eval.keys
	keys.Galois = kg.GenGaloisKeys(lt.Rotations(), true, tc.sk)

	values := randomComplexVector(slots, 1, 321)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	want := lt.MulVec(values)
	for _, hoisted := range []bool{false, true} {
		useHoistedBabies = hoisted
		out, err := tc.eval.EvaluateLinearTransform(ct, lt, tc.enc, tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		got := tc.enc.Decode(tc.dec.Decrypt(out), slots)
		if e := maxErr(got, want); e > 1e-3 {
			t.Errorf("hoisted=%v: max error %.3e", hoisted, e)
		}
	}
	useHoistedBabies = true
}
