package ckks

import (
	"fmt"
	"math"
	"math/big"
	"time"

	"antace/internal/fault"
	"antace/internal/nt"
	"antace/internal/par"
	"antace/internal/ring"
)

// Evaluator performs homomorphic operations on ciphertexts. It is not
// safe for concurrent use (it owns the automorphism index cache and
// pooled scratch mid-operation); create one per goroutine. Evaluators are
// cheap — parameters, keys and the ring-level scratch pools are shared —
// and each operation internally fans its RNS-limb work out over the
// internal/par worker pool, so a single Evaluator already uses every
// core.
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeySet

	autIndexCache map[uint64][]int

	// KernelObserver, when non-nil, receives the duration of every fused
	// kernel execution (poly.decomp_modup, poly.hw_modmuladd,
	// poly.mod_down) on the evaluator's goroutine. The VM wires it to the
	// run profile so /v1/profilez can attribute key-switch time below the
	// instruction level.
	KernelObserver func(op string, d time.Duration)
}

// NewEvaluator creates an evaluator with the given key set (which may be
// nil for evaluators that only add/multiply by plaintexts).
func NewEvaluator(params *Parameters, keys *EvaluationKeySet) *Evaluator {
	return &Evaluator{params: params, keys: keys, autIndexCache: map[uint64][]int{}}
}

// Params returns the evaluator's parameters.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// Keys returns the evaluation-key set the evaluator was built with
// (nil for plaintext-only evaluators).
func (ev *Evaluator) Keys() *EvaluationKeySet { return ev.keys }

// scaleClose reports whether two scales agree to within 1 part in 2^20.
func scaleClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= math.Max(a, b)*math.Exp2(-20)
}

// alignLevels drops both ciphertexts to their common level, returning
// copies when truncation is needed.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext, error) {
	la, lb := a.Level(), b.Level()
	if la == lb {
		return a, b, nil
	}
	var err error
	if la > lb {
		a = a.CopyNew()
		err = ev.DropLevel(a, la-lb)
	} else {
		b = b.CopyNew()
		err = ev.DropLevel(b, lb-la)
	}
	return a, b, err
}

// Add returns a + b. Scales must match; levels are aligned automatically.
func (ev *Evaluator) Add(a, b *Ciphertext) (*Ciphertext, error) {
	if !scaleClose(a.Scale, b.Scale) {
		return nil, fmt.Errorf("ckks: addition scale mismatch: %g vs %g", a.Scale, b.Scale)
	}
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	rQ := ev.params.RingQ()
	deg := max(a.Degree(), b.Degree())
	out := NewCiphertext(ev.params, deg, a.Level())
	out.Scale = math.Max(a.Scale, b.Scale)
	for i := 0; i <= deg; i++ {
		switch {
		case i <= a.Degree() && i <= b.Degree():
			rQ.Add(a.Value[i], b.Value[i], out.Value[i])
		case i <= a.Degree():
			a.Value[i].Copy(out.Value[i])
		default:
			b.Value[i].Copy(out.Value[i])
		}
	}
	return out, nil
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) (*Ciphertext, error) {
	nb := ev.Neg(b)
	return ev.Add(a, nb)
}

// Neg returns -a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	rQ := ev.params.RingQ()
	out := NewCiphertext(ev.params, a.Degree(), a.Level())
	out.Scale = a.Scale
	for i := range a.Value {
		rQ.Neg(a.Value[i], out.Value[i])
	}
	return out
}

// AddPlain returns a + pt. The plaintext scale must match.
func (ev *Evaluator) AddPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if !scaleClose(a.Scale, pt.Scale) {
		return nil, fmt.Errorf("ckks: plaintext addition scale mismatch: %g vs %g", a.Scale, pt.Scale)
	}
	level := min(a.Level(), pt.Level())
	out := a.CopyNew()
	if err := ev.DropLevel(out, a.Level()-level); err != nil {
		return nil, err
	}
	ev.params.RingQ().Add(out.Value[0], pt.Value, out.Value[0])
	return out, nil
}

// SubPlain returns a - pt.
func (ev *Evaluator) SubPlain(a *Ciphertext, pt *Plaintext) (*Ciphertext, error) {
	if !scaleClose(a.Scale, pt.Scale) {
		return nil, fmt.Errorf("ckks: plaintext subtraction scale mismatch: %g vs %g", a.Scale, pt.Scale)
	}
	level := min(a.Level(), pt.Level())
	out := a.CopyNew()
	if err := ev.DropLevel(out, a.Level()-level); err != nil {
		return nil, err
	}
	ev.params.RingQ().Sub(out.Value[0], pt.Value, out.Value[0])
	return out, nil
}

// MulPlain returns a * pt; the output scale is the product of scales.
func (ev *Evaluator) MulPlain(a *Ciphertext, pt *Plaintext) *Ciphertext {
	rQ := ev.params.RingQ()
	level := min(a.Level(), pt.Level())
	out := NewCiphertext(ev.params, a.Degree(), level)
	out.Scale = a.Scale * pt.Scale
	for i := range a.Value {
		rQ.MulCoeffs(a.Value[i], pt.Value, out.Value[i])
	}
	return out
}

// Mul returns the degree-2 tensor product a*b (no relinearisation).
// Inputs must be degree-1.
func (ev *Evaluator) Mul(a, b *Ciphertext) (*Ciphertext, error) {
	if a.Degree() != 1 || b.Degree() != 1 {
		return nil, fmt.Errorf("ckks: Mul requires degree-1 inputs (got %d and %d); relinearise first", a.Degree(), b.Degree())
	}
	a, b, err := ev.alignLevels(a, b)
	if err != nil {
		return nil, err
	}
	rQ := ev.params.RingQ()
	out := NewCiphertext(ev.params, 2, a.Level())
	out.Scale = a.Scale * b.Scale
	rQ.MulCoeffs(a.Value[0], b.Value[0], out.Value[0])
	// The middle term a0*b1 + a1*b0 is a two-digit inner product: one
	// fused pass with a single reduction per coefficient, no scratch poly.
	rQ.InnerProduct(
		[]*ring.Poly{a.Value[0], a.Value[1]},
		[]*ring.Poly{b.Value[1], b.Value[0]},
		out.Value[1],
	)
	rQ.MulCoeffs(a.Value[1], b.Value[1], out.Value[2])
	return out, nil
}

// MulRelin returns relin(a*b).
func (ev *Evaluator) MulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	ct, err := ev.Mul(a, b)
	if err != nil {
		return nil, err
	}
	return ev.Relinearize(ct)
}

// Relinearize converts a degree-2 ciphertext back to degree 1 using the
// relinearisation key.
func (ev *Evaluator) Relinearize(ct *Ciphertext) (*Ciphertext, error) {
	if ct.Degree() == 1 {
		return ct, nil
	}
	if ct.Degree() != 2 {
		return nil, fmt.Errorf("ckks: cannot relinearise degree-%d ciphertext", ct.Degree())
	}
	if ev.keys == nil || ev.keys.Rlk == nil {
		return nil, fmt.Errorf("ckks: no relinearisation key")
	}
	d0, d1, err := ev.keySwitch(ct.Value[2], &ev.keys.Rlk.SwitchingKey)
	if err != nil {
		return nil, err
	}
	rQ := ev.params.RingQ()
	out := NewCiphertext(ev.params, 1, ct.Level())
	out.Scale = ct.Scale
	rQ.Add(ct.Value[0], d0, out.Value[0])
	rQ.Add(ct.Value[1], d1, out.Value[1])
	rQ.PutPoly(d0)
	rQ.PutPoly(d1)
	return out, nil
}

// Rescale divides the ciphertext by its last prime, dropping one level
// and dividing the scale accordingly.
func (ev *Evaluator) Rescale(ct *Ciphertext) (*Ciphertext, error) {
	if ferr := fault.Inject(fault.CKKSRescaleErr); ferr != nil {
		return nil, ferr
	}
	level := ct.Level()
	if level == 0 {
		return nil, fmt.Errorf("ckks: cannot rescale at level 0")
	}
	rQ := ev.params.RingQ()
	ql := rQ.Moduli[level]
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Scale: ct.Scale / float64(ql)}
	for i := range ct.Value {
		out.Value[i] = rQ.NewPoly(level)
		if err := rQ.DivRoundByLastModulusNTT(ct.Value[i], out.Value[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DropLevel truncates the ciphertext by n levels in place (exact RNS
// modulus switching: the scale is unchanged). Dropping below level 0 is
// reported as an error — compiled programs can legitimately reach it
// when level tracking and runtime state diverge, and the serving layer
// must surface that as a request failure, not a crash.
func (ev *Evaluator) DropLevel(ct *Ciphertext, n int) error {
	if n <= 0 {
		return nil
	}
	level := ct.Level()
	if n > level {
		return fmt.Errorf("ckks: cannot drop %d levels from level %d", n, level)
	}
	for i := range ct.Value {
		ct.Value[i].Resize(level-n, ev.params.N())
	}
	return nil
}

// ScaleUp multiplies the ciphertext by the integer u and declares the
// scale multiplied by u: the underlying message is unchanged. This is the
// paper's "upscale" operation, used to align scales before additions.
func (ev *Evaluator) ScaleUp(ct *Ciphertext, u uint64) *Ciphertext {
	rQ := ev.params.RingQ()
	out := NewCiphertext(ev.params, ct.Degree(), ct.Level())
	out.Scale = ct.Scale * float64(u)
	for i := range ct.Value {
		rQ.MulScalar(ct.Value[i], u, out.Value[i])
	}
	return out
}

// constResidues rounds v to the nearest integer (via big.Int when |v|
// exceeds the exact float64 integer range) and returns its residues
// modulo the first level+1 primes.
func (ev *Evaluator) constResidues(v float64, level int) []uint64 {
	rQ := ev.params.RingQ()
	out := make([]uint64, level+1)
	if math.Abs(v) < float64(1<<62) {
		neg := v < 0
		u := uint64(math.Round(math.Abs(v)))
		for i := 0; i <= level; i++ {
			r := nt.BRedAdd(u, rQ.Mods[i])
			if neg {
				r = nt.Neg(r, rQ.Moduli[i])
			}
			out[i] = r
		}
		return out
	}
	b := new(big.Int)
	scaleToBig(v, b)
	tmp := new(big.Int)
	for i := 0; i <= level; i++ {
		tmp.Mod(b, new(big.Int).SetUint64(rQ.Moduli[i]))
		out[i] = tmp.Uint64()
	}
	return out
}

// MulByConst multiplies the ciphertext by a real constant, consuming no
// level: the constant is rounded at the given auxiliary scale and the
// ciphertext scale is multiplied by it. A follow-up Rescale restores the
// waterline.
func (ev *Evaluator) MulByConst(ct *Ciphertext, c float64, constScale float64) *Ciphertext {
	rQ := ev.params.RingQ()
	level := ct.Level()
	res := ev.constResidues(c*constScale, level)
	out := NewCiphertext(ev.params, ct.Degree(), level)
	out.Scale = ct.Scale * constScale
	for i := range ct.Value {
		src, dst := ct.Value[i], out.Value[i]
		par.For(level+1, par.Grain(rQ.N), func(start, end int) {
			for l := start; l < end; l++ {
				q := rQ.Moduli[l]
				u := res[l]
				uShoup := nt.ShoupPrec(u, q)
				a, b := src.Coeffs[l], dst.Coeffs[l]
				for j := range a {
					b[j] = nt.MulModShoup(a[j], u, uShoup, q)
				}
			}
		})
	}
	return out
}

// AddConst adds a real constant to the ciphertext without changing its
// scale or level: adding c*scale to every NTT evaluation point adds the
// constant polynomial, i.e. c to every slot.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	rQ := ev.params.RingQ()
	out := ct.CopyNew()
	level := ct.Level()
	res := ev.constResidues(c*ct.Scale, level)
	par.For(level+1, par.Grain(rQ.N), func(start, end int) {
		for i := start; i < end; i++ {
			q := rQ.Moduli[i]
			u := res[i]
			row := out.Value[0].Coeffs[i]
			for j := range row {
				row[j] = nt.Add(row[j], u, q)
			}
		}
	})
	return out
}

// SetScale re-targets the ciphertext to exactly the given scale at the
// cost of one level (a constant multiplication by ~1 plus a rescale).
func (ev *Evaluator) SetScale(ct *Ciphertext, target float64) (*Ciphertext, error) {
	ql := ev.params.RingQ().Moduli[ct.Level()]
	cs := target * float64(ql) / ct.Scale
	if cs < 1 {
		return nil, fmt.Errorf("ckks: SetScale ratio %g below 1 (target %g from %g)", cs, target, ct.Scale)
	}
	out, err := ev.Rescale(ev.MulByConst(ct, 1, cs))
	if err != nil {
		return nil, err
	}
	out.Scale = target
	return out, nil
}

// Rotate cyclically rotates the slot vector by k positions (positive k
// rotates towards lower indices, matching the VECTOR IR roll semantics).
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) {
	if k == 0 {
		return ct.CopyNew(), nil
	}
	gal := ev.params.RingQ().GaloisElementForRotation(k)
	return ev.automorphism(ct, gal)
}

// Conjugate applies complex conjugation to the slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	gal := ev.params.RingQ().GaloisElementForConjugation()
	return ev.automorphism(ct, gal)
}

func (ev *Evaluator) automorphism(ct *Ciphertext, gal uint64) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: automorphism requires a degree-1 ciphertext")
	}
	key, err := ev.keys.GaloisKeyFor(gal)
	if err != nil {
		return nil, err
	}
	rQ := ev.params.RingQ()
	idx, ok := ev.autIndexCache[gal]
	if !ok {
		idx = rQ.AutomorphismNTTIndex(gal)
		ev.autIndexCache[gal] = idx
	}
	level := ct.Level()
	out := NewCiphertext(ev.params, 1, level)
	out.Scale = ct.Scale
	// phi(ct) decrypts under phi(s); key-switch phi(c1) back to s.
	phi0 := rQ.GetPolyNoZero(level)
	phi1 := rQ.GetPolyNoZero(level)
	rQ.AutomorphismNTT(ct.Value[0], idx, phi0)
	rQ.AutomorphismNTT(ct.Value[1], idx, phi1)
	d0, d1, err := ev.keySwitch(phi1, &key.SwitchingKey)
	rQ.PutPoly(phi1)
	if err != nil {
		rQ.PutPoly(phi0)
		return nil, err
	}
	rQ.Add(phi0, d0, out.Value[0])
	d1.Copy(out.Value[1])
	rQ.PutPoly(phi0)
	rQ.PutPoly(d0)
	rQ.PutPoly(d1)
	return out, nil
}

// keySwitch computes (d0, d1) with d0 + d1*s ~= c1*sFrom, for c1 in NTT
// domain at its level, using hybrid RNS-digit key switching. The returned
// polynomials are pooled scratch owned by the caller, who must release
// them with RingQ().PutPoly once consumed.
//
// It is the one-shot form of the hoisted path: decompose with the fused
// decomp_modup kernel, then inner-product and mod-down with the fused
// hw_modmuladd / mod_down kernels. Relinearisation, automorphisms and
// hoisted rotations therefore all execute the identical fused pipeline.
func (ev *Evaluator) keySwitch(c1 *ring.Poly, swk *SwitchingKey) (d0, d1 *ring.Poly, err error) {
	h := ev.decomposeForKeySwitch(c1)
	defer h.release(ev.params.RingQ(), ev.params.RingP())
	return ev.applyKeySwitchHoisted(h, swk)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
