// Package ckks implements the RNS-CKKS approximate homomorphic encryption
// scheme (Cheon–Kim–Kim–Song with the full-RNS optimisations of
// Cheon–Han–Kim–Kim–Song): encoding via the canonical embedding,
// encryption, and the full evaluator (addition, multiplication,
// relinearisation, rescaling, rotations, conjugation and modulus
// switching) on top of hybrid RNS key switching.
//
// This is the runtime library the ANT-ACE compiler targets (the paper's
// "ACEfhe"). Bootstrapping lives in the sibling package
// antace/internal/bootstrap.
package ckks

import (
	"fmt"
	"math"

	"antace/internal/nt"
	"antace/internal/ring"
)

// ParametersLiteral is the user-facing description of a CKKS parameter
// set: ring degree 2^LogN, a ciphertext modulus chain with prime bit sizes
// LogQ (LogQ[0] is the "output" prime q0), special-prime bit sizes LogP
// for hybrid key switching, and the default encoding scale 2^LogScale.
type ParametersLiteral struct {
	LogN     int
	LogQ     []int
	LogP     []int
	LogScale int
	// Dnum is the number of key-switching digits; 0 means
	// ceil(len(LogQ)/len(LogP)), the smallest (cheapest in memory) choice.
	Dnum int
}

// Parameters is a compiled, validated CKKS parameter set.
type Parameters struct {
	logN     int
	logScale int
	scale    float64
	ringQ    *ring.Ring
	ringP    *ring.Ring
	be       *ring.BasisExtender
	alpha    int // primes per key-switching digit
	dnum     int
	lit      ParametersLiteral
}

// maxLogQP maps log2(N) to the maximum log2(Q*P) that retains 128-bit
// classical security with ternary secrets, following the Homomorphic
// Encryption Standard tables (Albrecht et al.).
var maxLogQP = map[int]int{
	10: 27,
	11: 54,
	12: 109,
	13: 218,
	14: 438,
	15: 881,
	16: 1772,
	17: 3576,
}

// MaxLogQP returns the 128-bit security bound on log2(QP) for ring degree
// 2^logN, or 0 if logN is outside the standardised range.
func MaxLogQP(logN int) int { return maxLogQP[logN] }

// MinLogN returns the smallest logN for which a modulus of logQP bits
// retains 128-bit security.
func MinLogN(logQP int) int {
	for logN := 10; logN <= 17; logN++ {
		if maxLogQP[logN] >= logQP {
			return logN
		}
	}
	return 18 // beyond the standardised table; caller must reject
}

// NewParameters validates and compiles a parameter literal, generating the
// NTT-friendly prime chains.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 4 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN %d out of supported range [4,17]", lit.LogN)
	}
	if len(lit.LogQ) == 0 {
		return nil, fmt.Errorf("ckks: empty LogQ chain")
	}
	if len(lit.LogP) == 0 {
		return nil, fmt.Errorf("ckks: empty LogP chain (hybrid key switching needs at least one special prime)")
	}
	if lit.LogScale <= 0 {
		return nil, fmt.Errorf("ckks: LogScale must be positive")
	}
	n := 1 << lit.LogN
	qPrimes, pPrimes, err := GeneratePrimes(lit)
	if err != nil {
		return nil, err
	}

	ringQ, err := ring.NewRing(n, qPrimes)
	if err != nil {
		return nil, err
	}
	ringP, err := ring.NewRing(n, pPrimes)
	if err != nil {
		return nil, err
	}

	dnum := lit.Dnum
	alpha := len(pPrimes)
	if dnum == 0 {
		dnum = (len(qPrimes) + alpha - 1) / alpha
	}

	return &Parameters{
		logN:     lit.LogN,
		logScale: lit.LogScale,
		scale:    math.Exp2(float64(lit.LogScale)),
		ringQ:    ringQ,
		ringP:    ringP,
		be:       ring.NewBasisExtender(ringQ, ringP),
		alpha:    alpha,
		dnum:     dnum,
		lit:      lit,
	}, nil
}

// GeneratePrimes deterministically derives the Q and P prime chains for
// a parameter literal: callers that only need the modulus values (the
// compiler's scale planner) can avoid instantiating the rings.
func GeneratePrimes(lit ParametersLiteral) (qPrimes, pPrimes []uint64, err error) {
	nthRoot := uint64(2) << lit.LogN
	var used []uint64
	pick := func(logQ int) (uint64, error) {
		ps, err := nt.GenerateNTTPrimes(uint64(logQ), nthRoot, 1, used...)
		if err != nil {
			return 0, err
		}
		used = append(used, ps[0])
		return ps[0], nil
	}
	for _, lq := range lit.LogQ {
		p, err := pick(lq)
		if err != nil {
			return nil, nil, err
		}
		qPrimes = append(qPrimes, p)
	}
	for _, lp := range lit.LogP {
		p, err := pick(lp)
		if err != nil {
			return nil, nil, err
		}
		pPrimes = append(pPrimes, p)
	}
	return qPrimes, pPrimes, nil
}

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// N returns the ring degree.
func (p *Parameters) N() int { return p.ringQ.N }

// Slots returns the number of plaintext slots (N/2).
func (p *Parameters) Slots() int { return p.ringQ.N / 2 }

// MaxLevel returns the top ciphertext level.
func (p *Parameters) MaxLevel() int { return p.ringQ.MaxLevel() }

// DefaultScale returns the default encoding scale.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// LogScale returns log2 of the default encoding scale.
func (p *Parameters) LogScale() int { return p.logScale }

// RingQ returns the ciphertext ring.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// RingP returns the special-modulus ring.
func (p *Parameters) RingP() *ring.Ring { return p.ringP }

// Alpha returns the number of special primes (digit width).
func (p *Parameters) Alpha() int { return p.alpha }

// Dnum returns the number of key-switching digits.
func (p *Parameters) Dnum() int { return p.dnum }

// Q returns the ciphertext prime chain.
func (p *Parameters) Q() []uint64 { return p.ringQ.Moduli }

// P returns the special prime chain.
func (p *Parameters) P() []uint64 { return p.ringP.Moduli }

// LogQP returns the total bit size of the modulus Q*P (rounded up per
// prime).
func (p *Parameters) LogQP() int {
	total := 0.0
	for _, q := range p.ringQ.Moduli {
		total += math.Log2(float64(q))
	}
	for _, q := range p.ringP.Moduli {
		total += math.Log2(float64(q))
	}
	return int(math.Ceil(total))
}

// CheckSecurity reports whether the parameter set retains 128-bit
// security per the HE standard table.
func (p *Parameters) CheckSecurity() error {
	bound, ok := maxLogQP[p.logN]
	if !ok {
		return fmt.Errorf("ckks: no security estimate for LogN=%d", p.logN)
	}
	if got := p.LogQP(); got > bound {
		return fmt.Errorf("ckks: logQP %d exceeds 128-bit bound %d for LogN=%d", got, bound, p.logN)
	}
	return nil
}

// Literal returns the literal this parameter set was compiled from.
func (p *Parameters) Literal() ParametersLiteral { return p.lit }

// BasisExtender exposes the Q<->P conversion engine (used by the
// evaluator and the bootstrapper).
func (p *Parameters) BasisExtender() *ring.BasisExtender { return p.be }

// DiscardScratch orphans the scratch pools of both rings. Recovery
// boundaries call it after catching a panic that unwound through pooled
// buffers: whatever state those buffers were left in, they are never
// recycled into later evaluations. Safe under concurrent use — healthy
// in-flight operations at worst lose their buffers to the GC.
func (p *Parameters) DiscardScratch() {
	p.ringQ.DiscardPools()
	p.ringP.DiscardPools()
}
