package ckks

import (
	"testing"

	"antace/internal/par"
	"antace/internal/ring"
)

func runWithWorkers(n int, fn func()) {
	prev := par.Workers()
	par.SetWorkers(n)
	defer par.SetWorkers(prev)
	fn()
}

// equalCiphertexts reports bit-identical polynomial coefficients.
func equalCiphertexts(a, b *Ciphertext) bool {
	if len(a.Value) != len(b.Value) || a.Scale != b.Scale {
		return false
	}
	for i := range a.Value {
		if !a.Value[i].Equal(b.Value[i]) {
			return false
		}
	}
	return true
}

// TestParallelMatchesSerial fixes the input ciphertext bytes (keygen and
// encryption happen once, outside the measured ops) and asserts each
// evaluator operation yields bit-identical ciphertexts under 1 and 8
// workers. par.SetMinWork(1) runs first so the rings built by
// newTestContext capture a grain that parallelises even at LogN 8.
func TestParallelMatchesSerial(t *testing.T) {
	par.SetMinWork(1)
	defer par.SetMinWork(0)

	tc := newTestContext(t, []int{1, 2, 3})
	level := tc.params.MaxLevel()
	scale := tc.params.DefaultScale()

	va := randomComplexVector(tc.params.Slots(), 1, 101)
	vb := randomComplexVector(tc.params.Slots(), 1, 202)
	pa, err := tc.enc.Encode(va, level, scale)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := tc.enc.Encode(vb, level, scale)
	if err != nil {
		t.Fatal(err)
	}
	cta := tc.encSk.Encrypt(pa)
	ctb := tc.encSk.Encrypt(pb)

	cases := []struct {
		name string
		run  func() *Ciphertext
	}{
		{"Encode", func() *Ciphertext {
			pt, err := tc.enc.Encode(va, level, scale)
			if err != nil {
				t.Fatal(err)
			}
			return &Ciphertext{Value: []*ring.Poly{pt.Value}, Scale: pt.Scale}
		}},
		{"MulRelin", func() *Ciphertext {
			out, err := tc.eval.MulRelin(cta.CopyNew(), ctb.CopyNew())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"Rescale", func() *Ciphertext {
			prod, err := tc.eval.Mul(cta.CopyNew(), ctb.CopyNew())
			if err != nil {
				t.Fatal(err)
			}
			out, err := tc.eval.Rescale(prod)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"Rotate", func() *Ciphertext {
			out, err := tc.eval.Rotate(cta.CopyNew(), 2)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"Conjugate", func() *Ciphertext {
			out, err := tc.eval.Conjugate(cta.CopyNew())
			if err != nil {
				t.Fatal(err)
			}
			return out
		}},
		{"RotateHoisted", func() *Ciphertext {
			outs, err := tc.eval.RotateHoisted(cta.CopyNew(), []int{1, 2, 3})
			if err != nil {
				t.Fatal(err)
			}
			// Fold the rotations into one ciphertext so a single compare
			// covers every hoisted output.
			acc := outs[1]
			for _, k := range []int{2, 3} {
				if acc, err = tc.eval.Add(acc, outs[k]); err != nil {
					t.Fatal(err)
				}
			}
			return acc
		}},
		{"MulByConst", func() *Ciphertext {
			return tc.eval.MulByConst(cta.CopyNew(), 1.5, scale)
		}},
		{"AddConst", func() *Ciphertext {
			return tc.eval.AddConst(cta.CopyNew(), 0.25)
		}},
		{"ModRaise", func() *Ciphertext {
			low := cta.CopyNew()
			tc.eval.DropLevel(low, low.Level())
			return tc.eval.ModRaise(low, level)
		}},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var serial, parallel *Ciphertext
			runWithWorkers(1, func() { serial = c.run() })
			runWithWorkers(8, func() { parallel = c.run() })
			if !equalCiphertexts(serial, parallel) {
				t.Fatal("ciphertexts differ between 1 and 8 workers")
			}
		})
	}
}
