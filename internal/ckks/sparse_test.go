package ckks

import (
	"math"
	"testing"
)

// TestSparseRotation verifies that a vector encoded into n < N/2 slots
// (gap packing) rotates by k under the same Galois element as a full
// vector: the compiler's VECTOR IR relies on this to run rotation
// programs over logical vectors shorter than the slot count.
func TestSparseRotation(t *testing.T) {
	tc := newTestContext(t, []int{1, 3, 7})
	for _, n := range []int{4, 16, 64} {
		values := make([]complex128, n)
		for i := range values {
			values[i] = complex(float64(i+1), 0)
		}
		pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		ct := tc.encPk.Encrypt(pt)
		for _, k := range []int{1, 3, 7} {
			rot, err := tc.eval.Rotate(ct, k)
			if err != nil {
				t.Fatal(err)
			}
			got := tc.enc.Decode(tc.dec.Decrypt(rot), n)
			for i := range got {
				want := values[(i+k)%n]
				if math.Abs(real(got[i])-real(want)) > 1e-4 {
					t.Fatalf("n=%d k=%d slot %d: got %g want %g", n, k, i, real(got[i]), real(want))
				}
			}
		}
	}
}

// TestSparseMulAlignment checks that sparse plaintexts multiply sparse
// ciphertexts slotwise at matching logical positions.
func TestSparseMulAlignment(t *testing.T) {
	tc := newTestContext(t, nil)
	n := 16
	v := make([]complex128, n)
	m := make([]complex128, n)
	for i := range v {
		v[i] = complex(float64(i+1), 0)
		m[i] = complex(float64(2*i), 0)
	}
	pt, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	mp, _ := tc.enc.Encode(m, tc.params.MaxLevel(), tc.params.DefaultScale())
	prod := tc.eval.MulPlain(ct, mp)
	res, err := tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.dec.Decrypt(res), n)
	for i := range got {
		want := real(v[i]) * real(m[i])
		if math.Abs(real(got[i])-want) > 1e-3 {
			t.Fatalf("slot %d: got %g want %g", i, real(got[i]), want)
		}
	}
}
