package ckks

import "antace/internal/par"

// MulByXPow multiplies the ciphertext by the monomial X^k: exact, free of
// noise growth, and scale-preserving. X^(N/2) multiplies every slot by i,
// which the bootstrapper uses to recombine real and imaginary parts.
func (ev *Evaluator) MulByXPow(ct *Ciphertext, k int) *Ciphertext {
	rQ := ev.params.RingQ()
	level := ct.Level()
	mono := rQ.GetPoly(level)
	kk := ((k % (2 * rQ.N)) + 2*rQ.N) % (2 * rQ.N)
	for i := range mono.Coeffs {
		if kk < rQ.N {
			mono.Coeffs[i][kk] = 1
		} else {
			mono.Coeffs[i][kk-rQ.N] = rQ.Moduli[i] - 1
		}
	}
	rQ.NTT(mono, mono)
	out := NewCiphertext(ev.params, ct.Degree(), level)
	out.Scale = ct.Scale
	for i := range ct.Value {
		rQ.MulCoeffs(ct.Value[i], mono, out.Value[i])
	}
	rQ.PutPoly(mono)
	return out
}

// MulByI multiplies every slot by the imaginary unit.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	return ev.MulByXPow(ct, ev.params.N()/2)
}

// ModRaise re-interprets a level-0 ciphertext modulo the larger modulus
// Q_toLevel: decryption afterwards yields t = m + q0*I(X) for a small
// integer polynomial I. The declared scale is preserved.
func (ev *Evaluator) ModRaise(ct *Ciphertext, toLevel int) *Ciphertext {
	rQ := ev.params.RingQ()
	if ct.Level() != 0 {
		panic("ckks: ModRaise expects a level-0 ciphertext")
	}
	q0 := rQ.Moduli[0]
	out := NewCiphertext(ev.params, ct.Degree(), toLevel)
	out.Scale = ct.Scale
	for i := range ct.Value {
		c := rQ.GetPolyNoZero(0)
		ct.Value[i].Copy(c)
		rQ.INTT(c, c)
		row0 := c.Coeffs[0]
		dstPoly := out.Value[i]
		par.For(toLevel+1, par.Grain(rQ.N), func(start, end int) {
			for l := start; l < end; l++ {
				ql := rQ.Moduli[l]
				dst := dstPoly.Coeffs[l]
				for j := range row0 {
					v := row0[j]
					if v > q0/2 {
						// Centered lift: v - q0 (negative).
						dst[j] = ql - (q0-v)%ql
						if dst[j] == ql {
							dst[j] = 0
						}
					} else {
						dst[j] = v % ql
					}
				}
			}
		})
		rQ.PutPoly(c)
		rQ.NTT(dstPoly, dstPoly)
	}
	return out
}

// SpecialFFT exposes the decoding-direction special FFT (for building
// bootstrapping matrices).
func (e *Encoder) SpecialFFT(vals []complex128) { e.specialFFT(vals) }

// SpecialFFTInv exposes the encoding-direction special FFT.
func (e *Encoder) SpecialFFTInv(vals []complex128) { e.specialFFTInv(vals) }
