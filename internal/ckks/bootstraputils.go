package ckks

// MulByXPow multiplies the ciphertext by the monomial X^k: exact, free of
// noise growth, and scale-preserving. X^(N/2) multiplies every slot by i,
// which the bootstrapper uses to recombine real and imaginary parts.
func (ev *Evaluator) MulByXPow(ct *Ciphertext, k int) *Ciphertext {
	rQ := ev.params.RingQ()
	level := ct.Level()
	mono := rQ.NewPoly(level)
	kk := ((k % (2 * rQ.N)) + 2*rQ.N) % (2 * rQ.N)
	for i := range mono.Coeffs {
		if kk < rQ.N {
			mono.Coeffs[i][kk] = 1
		} else {
			mono.Coeffs[i][kk-rQ.N] = rQ.Moduli[i] - 1
		}
	}
	rQ.NTT(mono, mono)
	out := NewCiphertext(ev.params, ct.Degree(), level)
	out.Scale = ct.Scale
	for i := range ct.Value {
		rQ.MulCoeffs(ct.Value[i], mono, out.Value[i])
	}
	return out
}

// MulByI multiplies every slot by the imaginary unit.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	return ev.MulByXPow(ct, ev.params.N()/2)
}

// ModRaise re-interprets a level-0 ciphertext modulo the larger modulus
// Q_toLevel: decryption afterwards yields t = m + q0*I(X) for a small
// integer polynomial I. The declared scale is preserved.
func (ev *Evaluator) ModRaise(ct *Ciphertext, toLevel int) *Ciphertext {
	rQ := ev.params.RingQ()
	if ct.Level() != 0 {
		panic("ckks: ModRaise expects a level-0 ciphertext")
	}
	q0 := rQ.Moduli[0]
	out := NewCiphertext(ev.params, ct.Degree(), toLevel)
	out.Scale = ct.Scale
	for i := range ct.Value {
		c := ct.Value[i].CopyNew()
		rQ.INTT(c, c)
		row0 := c.Coeffs[0]
		for l := 0; l <= toLevel; l++ {
			ql := rQ.Moduli[l]
			dst := out.Value[i].Coeffs[l]
			for j := range row0 {
				v := row0[j]
				if v > q0/2 {
					// Centered lift: v - q0 (negative).
					dst[j] = ql - (q0-v)%ql
					if dst[j] == ql {
						dst[j] = 0
					}
				} else {
					dst[j] = v % ql
				}
			}
		}
		rQ.NTT(out.Value[i], out.Value[i])
	}
	return out
}

// SpecialFFT exposes the decoding-direction special FFT (for building
// bootstrapping matrices).
func (e *Encoder) SpecialFFT(vals []complex128) { e.specialFFT(vals) }

// SpecialFFTInv exposes the encoding-direction special FFT.
func (e *Encoder) SpecialFFTInv(vals []complex128) { e.specialFFTInv(vals) }
