package ckks

import (
	"testing"
	"testing/quick"
)

func TestCiphertextRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	values := randomComplexVector(tc.params.Slots(), 1, 77)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != ct.Size() {
		t.Fatalf("Size() %d != serialized %d", ct.Size(), len(data))
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Scale != ct.Scale || back.Degree() != ct.Degree() || back.Level() != ct.Level() {
		t.Fatal("metadata lost")
	}
	// The deserialized ciphertext must decrypt identically.
	got := tc.enc.Decode(tc.dec.Decrypt(&back), tc.params.Slots())
	requireClose(t, got, values, 1e-6, "round-tripped ciphertext")
}

func TestPlaintextAndPublicKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	values := randomComplexVector(tc.params.Slots(), 1, 78)
	pt, _ := tc.enc.Encode(values, 2, tc.params.DefaultScale())
	data, err := pt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Plaintext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Value.Equal(pt.Value) || back.Scale != pt.Scale {
		t.Fatal("plaintext round trip lost data")
	}

	pkData, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk2 PublicKey
	if err := pk2.UnmarshalBinary(pkData); err != nil {
		t.Fatal(err)
	}
	if !pk2.A.Equal(tc.pk.A) || !pk2.B.Equal(tc.pk.B) {
		t.Fatal("public key round trip lost data")
	}
	// Encrypting with the round-tripped key must still decrypt.
	enc2 := NewEncryptor(tc.params, &pk2)
	ct := enc2.Encrypt(pt)
	got := tc.enc.Decode(tc.dec.Decrypt(ct), tc.params.Slots())
	requireClose(t, got, values, 1e-6, "encryption under round-tripped key")
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var ct Ciphertext
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0xE0, 0xAC, 1, 0, 1, 0},       // right magic, truncated
		{0x00, 0x00, 1, 0, 1, 0, 0, 0}, // wrong magic
	}
	for i, data := range cases {
		if err := ct.UnmarshalBinary(data); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Wrong kind: a plaintext blob fed to a ciphertext.
	tc := newTestContext(t, nil)
	pt, _ := tc.enc.Encode(make([]complex128, 4), 1, tc.params.DefaultScale())
	blob, _ := pt.MarshalBinary()
	if err := ct.UnmarshalBinary(blob); err == nil {
		t.Fatal("expected kind mismatch error")
	}
}

func TestMarshalFuzzSafety(t *testing.T) {
	// Property: arbitrary byte strings never panic the unmarshaler.
	f := func(data []byte) bool {
		var ct Ciphertext
		_ = ct.UnmarshalBinary(data)
		var pt Plaintext
		_ = pt.UnmarshalBinary(data)
		var pk PublicKey
		_ = pk.UnmarshalBinary(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
