package ckks

import (
	"math/cmplx"
	"testing"
	"testing/quick"
)

// Property-based checks of the homomorphism laws on small random
// vectors: Dec(Enc(x) ⊕ Enc(y)) = x + y and Dec(Enc(x) ⊗ Enc(y)) = x*y,
// plus structural identities the compiler relies on.

func TestPropertyAdditiveHomomorphism(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	f := func(seed1, seed2 uint64) bool {
		v1 := randomComplexVector(slots, 1, seed1)
		v2 := randomComplexVector(slots, 1, seed2)
		pt1, _ := tc.enc.Encode(v1, tc.params.MaxLevel(), tc.params.DefaultScale())
		pt2, _ := tc.enc.Encode(v2, tc.params.MaxLevel(), tc.params.DefaultScale())
		sum, err := tc.eval.Add(tc.encPk.Encrypt(pt1), tc.encPk.Encrypt(pt2))
		if err != nil {
			return false
		}
		got := tc.enc.Decode(tc.dec.Decrypt(sum), slots)
		for i := range got {
			if cmplx.Abs(got[i]-(v1[i]+v2[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMultiplicativeHomomorphism(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	f := func(seed1, seed2 uint64) bool {
		v1 := randomComplexVector(slots, 1, seed1)
		v2 := randomComplexVector(slots, 1, seed2)
		pt1, _ := tc.enc.Encode(v1, tc.params.MaxLevel(), tc.params.DefaultScale())
		pt2, _ := tc.enc.Encode(v2, tc.params.MaxLevel(), tc.params.DefaultScale())
		prod, err := tc.eval.MulRelin(tc.encPk.Encrypt(pt1), tc.encPk.Encrypt(pt2))
		if err != nil {
			return false
		}
		prod, err = tc.eval.Rescale(prod)
		if err != nil {
			return false
		}
		got := tc.enc.Decode(tc.dec.Decrypt(prod), slots)
		for i := range got {
			if cmplx.Abs(got[i]-v1[i]*v2[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRotationComposition(t *testing.T) {
	// rot(rot(x, a), b) == rot(x, a+b) for keyed rotations.
	tc := newTestContext(t, []int{1, 2, 3})
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 91)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	r1, err := tc.eval.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := tc.eval.Rotate(r1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := tc.eval.Rotate(ct, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := tc.enc.Decode(tc.dec.Decrypt(r12), slots)
	b := tc.enc.Decode(tc.dec.Decrypt(r3), slots)
	requireClose(t, a, b, 1e-4, "rotation composition")
}

func TestPropertyConjugationInvolution(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 92)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	c1, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := tc.eval.Conjugate(c1)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.dec.Decrypt(c2), slots)
	requireClose(t, got, values, 1e-4, "conjugation involution")
}

func TestPropertyDistributivity(t *testing.T) {
	// pt ⊙ (x ⊕ y) == pt ⊙ x ⊕ pt ⊙ y
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	vx := randomComplexVector(slots, 1, 93)
	vy := randomComplexVector(slots, 1, 94)
	vm := randomComplexVector(slots, 1, 95)
	ptx, _ := tc.enc.Encode(vx, tc.params.MaxLevel(), tc.params.DefaultScale())
	pty, _ := tc.enc.Encode(vy, tc.params.MaxLevel(), tc.params.DefaultScale())
	ptm, _ := tc.enc.Encode(vm, tc.params.MaxLevel(), tc.params.DefaultScale())
	x := tc.encPk.Encrypt(ptx)
	y := tc.encPk.Encrypt(pty)

	sum, err := tc.eval.Add(x, y)
	if err != nil {
		t.Fatal(err)
	}
	lhs := tc.eval.MulPlain(sum, ptm)
	px := tc.eval.MulPlain(x, ptm)
	py := tc.eval.MulPlain(y, ptm)
	rhs, err := tc.eval.Add(px, py)
	if err != nil {
		t.Fatal(err)
	}
	a := tc.enc.Decode(tc.dec.Decrypt(lhs), slots)
	b := tc.enc.Decode(tc.dec.Decrypt(rhs), slots)
	requireClose(t, a, b, 1e-4, "distributivity")
}
