package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/cmplx"

	"antace/internal/par"
	"antace/internal/ring"
)

// Plaintext is an encoded (unencrypted) message: a single ring element
// carrying its scale. Plaintexts produced by the Encoder are in NTT
// domain, matching ciphertexts.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
}

// Level returns the plaintext level.
func (p *Plaintext) Level() int { return p.Value.Level() }

// CopyNew returns a deep copy.
func (p *Plaintext) CopyNew() *Plaintext {
	return &Plaintext{Value: p.Value.CopyNew(), Scale: p.Scale}
}

// Encoder maps complex vectors to CKKS plaintexts through the canonical
// embedding: the special FFT over the orbit of the rotation group
// <5> x <-1> of Z_2N^*. Slot i of a vector of s slots lands on the
// evaluation points so that the Galois element 5^k realises a cyclic
// rotation by k and 2N-1 realises conjugation.
type Encoder struct {
	params   *Parameters
	roots    []complex128 // roots[j] = exp(2*pi*i*j/2N), j in [0, 2N)
	rotGroup []int        // 5^i mod 2N for i in [0, N/2)
}

// NewEncoder creates an encoder for the given parameters.
func NewEncoder(params *Parameters) *Encoder {
	n := params.N()
	m := 2 * n
	e := &Encoder{
		params:   params,
		roots:    make([]complex128, m+1),
		rotGroup: make([]int, n/2),
	}
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.roots[j] = cmplx.Rect(1, angle)
	}
	five := 1
	for i := 0; i < n/2; i++ {
		e.rotGroup[i] = five
		five = five * 5 % m
	}
	return e
}

// specialFFTInv applies the inverse special FFT in place (encoding
// direction). size must be a power of two <= N/2.
func (e *Encoder) specialFFTInv(vals []complex128) {
	size := len(vals)
	m := 2 * e.params.N()
	for length := size; length >= 1; length >>= 1 {
		for i := 0; i < size; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := vals[i+j] - vals[i+j+lenh]
				v *= e.roots[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReversePermute(vals)
	inv := complex(1/float64(size), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// specialFFT applies the forward special FFT in place (decoding
// direction).
func (e *Encoder) specialFFT(vals []complex128) {
	size := len(vals)
	m := 2 * e.params.N()
	bitReversePermute(vals)
	for length := 2; length <= size; length <<= 1 {
		for i := 0; i < size; i += length {
			lenh := length >> 1
			lenq := length << 2
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.roots[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

func bitReversePermute(vals []complex128) {
	n := len(vals)
	j := 0
	for i := 1; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// Encode encodes values (len a power of two <= N/2; shorter vectors are
// implicitly padded with zeros to the next power of two) into a plaintext
// at the given level and scale.
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*Plaintext, error) {
	n := e.params.N()
	slots := nextPow2(len(values))
	if slots > n/2 {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), n/2)
	}
	if slots == 0 {
		slots = 1
	}
	vals := make([]complex128, slots)
	copy(vals, values)
	e.specialFFTInv(vals)

	gap := (n / 2) / slots
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		coeffs[i] = big.NewInt(0)
	}
	for i, idx := 0, 0; i < slots; i, idx = i+1, idx+gap {
		scaleToBig(real(vals[i])*scale, coeffs[idx])
		scaleToBig(imag(vals[i])*scale, coeffs[idx+n/2])
	}
	pt := &Plaintext{Value: e.params.RingQ().NewPoly(level), Scale: scale}
	setBigCoeffs(e.params.RingQ(), pt.Value, coeffs)
	e.params.RingQ().NTT(pt.Value, pt.Value)
	return pt, nil
}

// EncodeReal is Encode for real-valued vectors.
func (e *Encoder) EncodeReal(values []float64, level int, scale float64) (*Plaintext, error) {
	cv := make([]complex128, len(values))
	for i, v := range values {
		cv[i] = complex(v, 0)
	}
	return e.Encode(cv, level, scale)
}

// EncodeCoeffs encodes raw polynomial coefficients (no embedding): value i
// is placed, scaled, into coefficient i. Used by bootstrapping tests and
// the SlotsToCoeffs path.
func (e *Encoder) EncodeCoeffs(values []float64, level int, scale float64) (*Plaintext, error) {
	n := e.params.N()
	if len(values) > n {
		return nil, fmt.Errorf("ckks: %d coefficients exceed degree %d", len(values), n)
	}
	coeffs := make([]*big.Int, n)
	for i := range coeffs {
		coeffs[i] = big.NewInt(0)
	}
	for i, v := range values {
		scaleToBig(v*scale, coeffs[i])
	}
	pt := &Plaintext{Value: e.params.RingQ().NewPoly(level), Scale: scale}
	setBigCoeffs(e.params.RingQ(), pt.Value, coeffs)
	e.params.RingQ().NTT(pt.Value, pt.Value)
	return pt, nil
}

// Decode decodes a plaintext into the given number of slots.
func (e *Encoder) Decode(pt *Plaintext, slots int) []complex128 {
	n := e.params.N()
	if slots <= 0 || slots > n/2 {
		slots = n / 2
	}
	coeffPoly := pt.Value.CopyNew()
	e.params.RingQ().INTT(coeffPoly, coeffPoly)
	coeffs := centeredBigCoeffs(e.params.RingQ(), coeffPoly)

	gap := (n / 2) / slots
	vals := make([]complex128, slots)
	for i, idx := 0, 0; i < slots; i, idx = i+1, idx+gap {
		re := bigToFloat(coeffs[idx]) / pt.Scale
		im := bigToFloat(coeffs[idx+n/2]) / pt.Scale
		vals[i] = complex(re, im)
	}
	e.specialFFT(vals)
	return vals
}

// DecodeReal decodes the real parts of the slots.
func (e *Encoder) DecodeReal(pt *Plaintext, slots int) []float64 {
	cv := e.Decode(pt, slots)
	out := make([]float64, len(cv))
	for i, v := range cv {
		out[i] = real(v)
	}
	return out
}

// DecodeCoeffs returns the raw (un-embedded) scaled coefficients.
func (e *Encoder) DecodeCoeffs(pt *Plaintext) []float64 {
	coeffPoly := pt.Value.CopyNew()
	e.params.RingQ().INTT(coeffPoly, coeffPoly)
	coeffs := centeredBigCoeffs(e.params.RingQ(), coeffPoly)
	out := make([]float64, len(coeffs))
	for i, c := range coeffs {
		out[i] = bigToFloat(c) / pt.Scale
	}
	return out
}

// scaleToBig rounds v to the nearest integer as a big.Int.
func scaleToBig(v float64, out *big.Int) {
	if math.Abs(v) < 9.007199254740992e15 { // 2^53: exact int64 fast path
		out.SetInt64(int64(math.Round(v)))
		return
	}
	bf := new(big.Float).SetPrec(128).SetFloat64(v)
	bf.Add(bf, big.NewFloat(math.Copysign(0.5, v)))
	bf.Int(out)
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}

// setBigCoeffs writes signed big integer coefficients into RNS form.
func setBigCoeffs(r *ring.Ring, p *ring.Poly, coeffs []*big.Int) {
	par.For(len(p.Coeffs), par.Grain(r.N), func(start, end int) {
		tmp := new(big.Int)
		q := new(big.Int)
		for i := start; i < end; i++ {
			q.SetUint64(r.Moduli[i])
			row := p.Coeffs[i]
			for j, c := range coeffs {
				tmp.Mod(c, q)
				row[j] = tmp.Uint64()
			}
		}
	})
}

// centeredBigCoeffs CRT-reconstructs the integer coefficients of p
// (coefficient domain) centered in (-Q/2, Q/2].
func centeredBigCoeffs(r *ring.Ring, p *ring.Poly) []*big.Int {
	l := p.Level()
	Q := r.ModulusAtLevel(l)
	half := new(big.Int).Rsh(Q, 1)
	// Precompute CRT weights: w_i = (Q/q_i) * ((Q/q_i)^-1 mod q_i).
	weights := make([]*big.Int, l+1)
	for i := 0; i <= l; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i])
		qoveri := new(big.Int).Quo(Q, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qoveri, qi), qi)
		weights[i] = new(big.Int).Mul(qoveri, inv)
	}
	n := p.N()
	out := make([]*big.Int, n)
	tmp := new(big.Int)
	for j := 0; j < n; j++ {
		acc := new(big.Int)
		for i := 0; i <= l; i++ {
			tmp.SetUint64(p.Coeffs[i][j])
			tmp.Mul(tmp, weights[i])
			acc.Add(acc, tmp)
		}
		acc.Mod(acc, Q)
		if acc.Cmp(half) > 0 {
			acc.Sub(acc, Q)
		}
		out[j] = acc
	}
	return out
}

func nextPow2(x int) int {
	if x <= 1 {
		return 1
	}
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}
