package ckks

import (
	"testing"
	"time"

	"antace/internal/obs"
)

// TestKernelOpNamesMatchObs pins the kernel name constants to the obs
// fused-constituent registry: ckks cannot import polyir (cycle through
// ckksir), so the names are duplicated as string literals and this test
// is what keeps them from drifting. The polyir side of the same contract
// lives in internal/polyir.
func TestKernelOpNamesMatchObs(t *testing.T) {
	for _, op := range []string{opDecompModUp, opModMulAdd, opModDown} {
		if _, ok := obs.FusedConstituents[op]; !ok {
			t.Errorf("kernel op %q has no entry in obs.FusedConstituents", op)
		}
	}
	if len(obs.FusedConstituents) != 3 {
		t.Errorf("obs.FusedConstituents has %d entries, ckks emits 3 — registries drifted", len(obs.FusedConstituents))
	}
}

// TestKernelObserverCoversKeySwitch runs relinearization and a rotation
// with the observer attached and checks every fused kernel fires with a
// sane duration, and that observed names stay inside the registry — the
// wiring /v1/profilez depends on.
func TestKernelObserverCoversKeySwitch(t *testing.T) {
	tc := newTestContext(t, []int{1})
	seen := map[string]int{}
	tc.eval.KernelObserver = func(op string, d time.Duration) {
		if d < 0 {
			t.Errorf("kernel %q reported negative duration %v", op, d)
		}
		if _, ok := obs.FusedConstituents[op]; !ok {
			t.Errorf("kernel %q not in obs.FusedConstituents", op)
		}
		seen[op]++
	}
	defer func() { tc.eval.KernelObserver = nil }()

	values := randomComplexVector(tc.params.Slots(), 1, 3)
	pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encSk.Encrypt(pt)
	if _, err := tc.eval.MulRelin(ct, ct); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.eval.Rotate(ct, 1); err != nil {
		t.Fatal(err)
	}
	for _, op := range []string{opDecompModUp, opModMulAdd, opModDown} {
		if seen[op] < 2 {
			t.Errorf("kernel %q observed %d times, want >= 2 (relinearization and rotation)", op, seen[op])
		}
	}
}
