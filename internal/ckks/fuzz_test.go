package ckks

import (
	"encoding/binary"
	"testing"
)

// The unmarshalers sit on the serving layer's trust boundary: every byte
// they see comes off the network. The fuzz targets assert the two
// properties the server relies on — corrupted input returns an error
// instead of panicking, and length fields are validated against the
// actual payload size before any allocation, so a 6-byte datagram cannot
// request gigabytes.

// seedCorpus adds a valid encoding plus systematic corruptions of it.
func seedCorpus(f *testing.F, valid []byte) {
	f.Helper()
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:6])                                // header only
	f.Add(valid[:len(valid)/2])                     // truncated body
	f.Add(append(append([]byte{}, valid...), 0xAB)) // trailing byte
	// Oversized length field: blow up the first u32 after the header.
	if len(valid) > 10 {
		huge := append([]byte{}, valid...)
		binary.LittleEndian.PutUint32(huge[6:], 0xFFFFFFF0)
		f.Add(huge)
	}
	// Wrong kind tag.
	wrong := append([]byte{}, valid...)
	wrong[4] ^= 0x7F
	f.Add(wrong)
}

func fuzzContext(f *testing.F) (*testContext, *EvaluationKeySet) {
	f.Helper()
	tc := newTestContext(f, []int{1})
	keys := &EvaluationKeySet{
		Rlk:    tc.kg.GenRelinearizationKey(tc.sk),
		Galois: tc.kg.GenGaloisKeys([]int{1}, false, tc.sk),
	}
	return tc, keys
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	tc, _ := fuzzContext(f)
	values := randomComplexVector(tc.params.Slots(), 1, 5)
	pt, _ := tc.enc.Encode(values, 1, tc.params.DefaultScale())
	data, _ := tc.encPk.Encrypt(pt).MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var ct Ciphertext
		_ = ct.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalPlaintext(f *testing.F) {
	tc, _ := fuzzContext(f)
	values := randomComplexVector(tc.params.Slots(), 1, 6)
	pt, _ := tc.enc.Encode(values, 1, tc.params.DefaultScale())
	data, _ := pt.MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var pt Plaintext
		_ = pt.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalPublicKey(f *testing.F) {
	tc, _ := fuzzContext(f)
	data, _ := tc.pk.MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var pk PublicKey
		_ = pk.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalSwitchingKey(f *testing.F) {
	tc, _ := fuzzContext(f)
	data, _ := tc.kg.GenSwitchingKey(tc.sk.Q, tc.sk).MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var swk SwitchingKey
		_ = swk.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalRelinearizationKey(f *testing.F) {
	_, keys := fuzzContext(f)
	data, _ := keys.Rlk.MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var rlk RelinearizationKey
		_ = rlk.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalGaloisKey(f *testing.F) {
	_, keys := fuzzContext(f)
	var data []byte
	for _, gk := range keys.Galois {
		data, _ = gk.MarshalBinary()
		break
	}
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var gk GaloisKey
		_ = gk.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalEvaluationKeySet(f *testing.F) {
	_, keys := fuzzContext(f)
	data, _ := keys.MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var s EvaluationKeySet
		_ = s.UnmarshalBinary(b)
	})
}

func FuzzUnmarshalParams(f *testing.F) {
	lit := ParametersLiteral{LogN: 8, LogQ: []int{50, 40, 40}, LogP: []int{50}, LogScale: 40}
	data, _ := lit.MarshalBinary()
	seedCorpus(f, data)
	f.Fuzz(func(t *testing.T, b []byte) {
		var out ParametersLiteral
		if err := out.UnmarshalBinary(b); err != nil {
			return
		}
		// Anything that decodes must re-encode to the same bytes (the
		// format has a single canonical form).
		re, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded literal %+v failed to re-encode: %v", out, err)
		}
		if string(re) != string(b) {
			t.Fatalf("non-canonical encoding: % x -> % x", b, re)
		}
	})
}
