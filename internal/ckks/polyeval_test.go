package ckks

import (
	"math"
	"testing"

	"antace/internal/poly"
	"antace/internal/ring"
)

// deepTestContext builds a parameter set with enough levels for
// polynomial evaluation tests.
func deepTestContext(t testing.TB, levels int) *testContext {
	t.Helper()
	logQ := make([]int, levels+1)
	logQ[0] = 50
	for i := 1; i <= levels; i++ {
		logQ[i] = 40
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     logQ,
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params, ring.SeedFromInt(99))
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := &EvaluationKeySet{Rlk: kg.GenRelinearizationKey(sk)}
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		encPk:  NewEncryptor(params, pk),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, keys),
	}
}

func evalPolyCase(t *testing.T, tc *testContext, p *poly.Polynomial, inputs []float64, tol float64) {
	t.Helper()
	slots := tc.params.Slots()
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = inputs[i%len(inputs)]
	}
	pt, err := tc.enc.EncodeReal(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encPk.Encrypt(pt)
	res, err := tc.eval.EvaluatePolynomial(ct, p, tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeReal(tc.dec.Decrypt(res), slots)
	for i := range got {
		want := p.Eval(vals[i])
		if math.Abs(got[i]-want) > tol {
			t.Fatalf("p(%g): got %g, want %g (err %.2e)", vals[i], got[i], want, math.Abs(got[i]-want))
		}
	}
	// Depth audit: consumed levels must equal the polynomial depth.
	consumed := tc.params.MaxLevel() - res.Level()
	if consumed > p.Depth()+1 {
		t.Fatalf("evaluation consumed %d levels for depth-%d polynomial", consumed, p.Depth())
	}
}

func TestEvaluatePolynomialMonomial(t *testing.T) {
	tc := deepTestContext(t, 8)
	inputs := []float64{-1, -0.6, -0.25, 0, 0.3, 0.71, 1}
	// Low degree (direct path).
	evalPolyCase(t, tc, poly.NewMonomial(0.5, -1, 0.25), inputs, 1e-5)
	// Degree 7, odd (the f_3 flattening polynomial).
	evalPolyCase(t, tc, poly.FN(3), inputs, 1e-4)
	// Degree 15 with mixed parity.
	coeffs := make([]float64, 16)
	for i := range coeffs {
		coeffs[i] = 1 / float64(i+1) * math.Pow(-1, float64(i))
	}
	evalPolyCase(t, tc, poly.NewMonomial(coeffs...), inputs, 1e-3)
}

func TestEvaluatePolynomialChebyshev(t *testing.T) {
	tc := deepTestContext(t, 8)
	inputs := []float64{-0.95, -0.5, 0, 0.33, 0.8, 0.99}
	p := poly.ChebyshevInterpolate(math.Sin, -1, 1, 15)
	evalPolyCase(t, tc, p, inputs, 1e-3)
}

func TestEvaluatePolynomialChebyshevShiftedDomain(t *testing.T) {
	tc := deepTestContext(t, 9)
	inputs := []float64{0.1, 0.5, 1.2, 2.7, 3.9}
	p := poly.Exp(0, 4, 15)
	slots := tc.params.Slots()
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = inputs[i%len(inputs)]
	}
	pt, _ := tc.enc.EncodeReal(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	res, err := tc.eval.EvaluatePolynomial(ct, p, tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeReal(tc.dec.Decrypt(res), slots)
	for i := range got {
		want := math.Exp(vals[i])
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("exp(%g): got %g, want %g", vals[i], got[i], want)
		}
	}
}

func TestEvaluateComposite(t *testing.T) {
	tc := deepTestContext(t, 13)
	slots := tc.params.Slots()
	stages := []*poly.Polynomial{poly.FN(3), poly.FN(3), poly.FN(3)}
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = -1 + 2*float64(i)/float64(slots-1)
	}
	pt, _ := tc.enc.EncodeReal(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	res, err := tc.eval.EvaluateComposite(ct, stages)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeReal(tc.dec.Decrypt(res), slots)
	for i := range got {
		want := poly.EvalComposite(stages, vals[i])
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("composite(%g): got %g, want %g", vals[i], got[i], want)
		}
	}
}

func TestEvaluateReLU(t *testing.T) {
	tc := deepTestContext(t, 20)
	slots := tc.params.Slots()
	stages, err := poly.SignComposite(0.3, 6)
	if err != nil {
		t.Fatal(err)
	}
	bound := 8.0
	vals := make([]float64, slots)
	for i := range vals {
		vals[i] = -bound + 2*bound*float64(i)/float64(slots-1)
	}
	pt, _ := tc.enc.EncodeReal(vals, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	res, err := tc.eval.EvaluateReLU(ct, stages, bound)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeReal(tc.dec.Decrypt(res), slots)
	for i := range got {
		want := math.Max(0, vals[i])
		tol := 0.05 * bound // values inside the eps-gap are approximated loosely
		if math.Abs(vals[i])/bound > 0.3 {
			tol = 0.02
		}
		if math.Abs(got[i]-want) > tol {
			t.Fatalf("relu(%g): got %g, want %g", vals[i], got[i], want)
		}
	}
}
