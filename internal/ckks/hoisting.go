package ckks

import (
	"fmt"
	"time"

	"antace/internal/par"
	"antace/internal/ring"
)

// Fused-kernel op names, as attributed by the KernelObserver. These are
// string-equal to the internal/polyir opcode constants (OpDecompModUp,
// OpModMulAdd, OpModDown) — importing polyir here would cycle through
// ckksir, so the equality is asserted by a test in polyir instead.
const (
	opDecompModUp = "poly.decomp_modup"
	opModMulAdd   = "poly.hw_modmuladd"
	opModDown     = "poly.mod_down"
)

// observe reports one fused-kernel execution to the evaluator's
// KernelObserver, if any.
func (ev *Evaluator) observe(op string, start time.Time) {
	if ev.KernelObserver != nil {
		ev.KernelObserver(op, time.Since(start))
	}
}

// Hoisted rotations (Halevi–Shoup): the expensive part of a rotation is
// decomposing c1 into key-switching digits (INTT, base extension, forward
// NTTs). Digit decomposition commutes with Galois automorphisms, so many
// rotations of the same ciphertext can share one decomposition: each
// rotation then only permutes the decomposed digits, multiplies by its
// key and mod-downs. Linear transforms (and the bootstrapping DFTs built
// on them) use this for their baby-step rotations.

// hoistedDecomp holds the NTT-domain digit decomposition of one
// polynomial over the basis Q∪P. Its polynomials are pooled scratch:
// whoever ends up holding the decomposition must call release.
type hoistedDecomp struct {
	level int
	tQ    []*ring.Poly // per digit, rows 0..level
	tP    []*ring.Poly // per digit, all P rows
}

// release returns the decomposition's polynomials to the ring pools.
func (h *hoistedDecomp) release(rQ, rP *ring.Ring) {
	for _, p := range h.tQ {
		rQ.PutPoly(p)
	}
	for _, p := range h.tP {
		rP.PutPoly(p)
	}
	h.tQ, h.tP = nil, nil
}

// decomposeForKeySwitch computes the shared digit decomposition of c1
// (NTT domain, at its level) with the fused decomp_modup kernel: each
// digit is decomposed, base-extended and forward-NTT'd row by row
// without materialising a coefficient-domain intermediate.
func (ev *Evaluator) decomposeForKeySwitch(c1 *ring.Poly) *hoistedDecomp {
	t0 := time.Now()
	params := ev.params
	rQ, rP := params.RingQ(), params.RingP()
	be := params.BasisExtender()
	level := c1.Level()
	alpha := params.Alpha()
	digits := (level + 1 + alpha - 1) / alpha

	c1c := rQ.GetPolyNoZero(level)
	c1.Copy(c1c)
	rQ.INTT(c1c, c1c)

	h := &hoistedDecomp{level: level}
	for d := 0; d < digits; d++ {
		start := d * alpha
		end := start + alpha
		if end > level+1 {
			end = level + 1
		}
		tQ := rQ.GetPolyNoZero(level)
		tP := rP.GetPolyNoZero(rP.MaxLevel())
		be.DecompModUpNTT(c1c, start, end, level, tQ, tP)
		h.tQ = append(h.tQ, tQ)
		h.tP = append(h.tP, tP)
	}
	rQ.PutPoly(c1c)
	ev.observe(opDecompModUp, t0)
	return h
}

// applyKeySwitchHoisted finishes a key switch from a (possibly permuted)
// decomposition: the evaluation-key inner product runs as the fused
// hw_modmuladd kernel (128-bit lazy accumulation, one reduction per
// digit sum), and the divide-by-P tail as the fused ModDownNTT pass.
// The returned polynomials are pooled scratch owned by the caller
// (release with RingQ().PutPoly).
func (ev *Evaluator) applyKeySwitchHoisted(h *hoistedDecomp, swk *SwitchingKey) (d0, d1 *ring.Poly, err error) {
	params := ev.params
	rQ, rP := params.RingQ(), params.RingP()
	be := params.BasisExtender()
	nd := len(h.tQ)
	if nd > len(swk.BQ) {
		return nil, nil, fmt.Errorf("ckks: switching key has %d digits, need %d", len(swk.BQ), nd)
	}
	// InnerProduct fully overwrites the accumulators, so the pooled polys
	// need no zeroing pass.
	accQ0 := rQ.GetPolyNoZero(h.level)
	accQ1 := rQ.GetPolyNoZero(h.level)
	accP0 := rP.GetPolyNoZero(rP.MaxLevel())
	accP1 := rP.GetPolyNoZero(rP.MaxLevel())
	t0 := time.Now()
	rQ.InnerProduct(h.tQ, swk.BQ[:nd], accQ0)
	rP.InnerProduct(h.tP, swk.BP[:nd], accP0)
	rQ.InnerProduct(h.tQ, swk.AQ[:nd], accQ1)
	rP.InnerProduct(h.tP, swk.AP[:nd], accP1)
	ev.observe(opModMulAdd, t0)
	// The two output halves are independent pipelines; run them as two
	// coarse tasks on top of the limb-level parallelism inside each.
	t1 := time.Now()
	par.Do(
		func() { be.ModDownNTT(accQ0, accP0) },
		func() { be.ModDownNTT(accQ1, accP1) },
	)
	ev.observe(opModDown, t1)
	rP.PutPoly(accP0)
	rP.PutPoly(accP1)
	return accQ0, accQ1, nil
}

// permute applies a Galois automorphism (as an NTT index table) to every
// digit, yielding the decomposition of the rotated polynomial. The result
// is pooled scratch; release it after use.
func (h *hoistedDecomp) permute(rQ, rP *ring.Ring, idxQ, idxP []int) *hoistedDecomp {
	out := &hoistedDecomp{level: h.level}
	for d := range h.tQ {
		tQ := rQ.GetPolyNoZero(h.level)
		tP := rP.GetPolyNoZero(rP.MaxLevel())
		rQ.AutomorphismNTT(h.tQ[d], idxQ, tQ)
		rP.AutomorphismNTT(h.tP[d], idxP, tP)
		out.tQ = append(out.tQ, tQ)
		out.tP = append(out.tP, tP)
	}
	return out
}

// RotateHoisted rotates ct by every offset in ks, sharing one digit
// decomposition across all of them. Offsets of 0 return a copy. The
// result map is keyed by offset.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) (map[int]*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("ckks: hoisted rotation requires a degree-1 ciphertext")
	}
	out := make(map[int]*Ciphertext, len(ks))
	var h *hoistedDecomp
	rQ, rP := ev.params.RingQ(), ev.params.RingP()
	defer func() {
		if h != nil {
			h.release(rQ, rP)
		}
	}()
	level := ct.Level()
	for _, k := range ks {
		if _, done := out[k]; done {
			continue
		}
		if k == 0 {
			out[0] = ct.CopyNew()
			continue
		}
		if h == nil {
			h = ev.decomposeForKeySwitch(ct.Value[1])
		}
		gal := rQ.GaloisElementForRotation(k)
		key, err := ev.keys.GaloisKeyFor(gal)
		if err != nil {
			return nil, err
		}
		idxQ, ok := ev.autIndexCache[gal]
		if !ok {
			idxQ = rQ.AutomorphismNTTIndex(gal)
			ev.autIndexCache[gal] = idxQ
		}
		// P uses the same degree, so the index table is identical.
		idxP := idxQ
		if rP.N != rQ.N {
			idxP = rP.AutomorphismNTTIndex(gal)
		}
		hk := h.permute(rQ, rP, idxQ, idxP)
		d0, d1, err := ev.applyKeySwitchHoisted(hk, &key.SwitchingKey)
		hk.release(rQ, rP)
		if err != nil {
			return nil, err
		}
		res := NewCiphertext(ev.params, 1, level)
		res.Scale = ct.Scale
		rQ.AutomorphismNTT(ct.Value[0], idxQ, res.Value[0])
		rQ.Add(res.Value[0], d0, res.Value[0])
		d1.Copy(res.Value[1])
		rQ.PutPoly(d0)
		rQ.PutPoly(d1)
		out[k] = res
	}
	return out, nil
}
