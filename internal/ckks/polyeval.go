package ckks

import (
	"fmt"

	"antace/internal/poly"
)

// PowerBasis caches the ciphertext powers x^i (monomial basis) or
// Chebyshev polynomials T_i(x) used by BSGS polynomial evaluation.
type PowerBasis struct {
	basis poly.Basis
	ct    map[int]*Ciphertext
}

// NewPowerBasis starts a power basis from x itself.
func (ev *Evaluator) NewPowerBasis(ct *Ciphertext, basis poly.Basis) *PowerBasis {
	return &PowerBasis{basis: basis, ct: map[int]*Ciphertext{1: ct}}
}

// Get returns the cached ciphertext for index i.
func (pb *PowerBasis) Get(i int) *Ciphertext { return pb.ct[i] }

// Gen ensures index i is available, recursively generating dependencies.
func (pb *PowerBasis) Gen(ev *Evaluator, i int) error {
	if i < 1 {
		return fmt.Errorf("ckks: power basis index %d < 1", i)
	}
	if _, ok := pb.ct[i]; ok {
		return nil
	}
	// Split i = a + b with a the largest power of two < i.
	a := 1
	for a*2 < i {
		a *= 2
	}
	b := i - a
	if err := pb.Gen(ev, a); err != nil {
		return err
	}
	if err := pb.Gen(ev, b); err != nil {
		return err
	}
	ta, tb := pb.ct[a], pb.ct[b]
	prod, err := ev.Mul(ta, tb)
	if err != nil {
		return err
	}
	if pb.basis == poly.Chebyshev {
		// T_{a+b} = 2*T_a*T_b - T_{|a-b|}
		two, err := ev.Add(prod, prod)
		if err != nil {
			return err
		}
		c := a - b
		if c == 0 {
			two = ev.AddConst(two, -1)
		} else {
			if err := pb.Gen(ev, c); err != nil {
				return err
			}
			tc := pb.ct[c]
			// Bring T_c to the product's scale with a free constant
			// multiplication, then align levels and subtract.
			adj := ev.MulByConst(tc, 1, two.Scale/tc.Scale)
			adj.Scale = two.Scale
			two, err = ev.Sub(two, adj)
			if err != nil {
				return err
			}
		}
		prod = two
	}
	rl, err := ev.Relinearize(prod)
	if err != nil {
		return err
	}
	rs, err := ev.Rescale(rl)
	if err != nil {
		return err
	}
	pb.ct[i] = rs
	return nil
}

// EvaluatePolynomial evaluates p homomorphically on ct using
// baby-step/giant-step evaluation with exact scale bookkeeping. The
// result has scale targetScale (pass 0 for the parameter default). The
// multiplicative depth consumed is p.Depth() (+1 if the Chebyshev domain
// [A,B] differs from [-1,1], for the affine input map).
func (ev *Evaluator) EvaluatePolynomial(ct *Ciphertext, p *poly.Polynomial, targetScale float64) (*Ciphertext, error) {
	if targetScale == 0 {
		targetScale = ev.params.DefaultScale()
	}
	x := ct
	if p.Basis == poly.Chebyshev && (p.A != -1 || p.B != 1) {
		// u = (2x - (A+B)) / (B-A), landing exactly on the default scale.
		alpha := 2 / (p.B - p.A)
		beta := -(p.A + p.B) / (p.B - p.A)
		ql := ev.params.RingQ().Moduli[ct.Level()]
		cs := ev.params.DefaultScale() * float64(ql) / ct.Scale
		scaled := ev.MulByConst(ct, alpha, cs)
		rs, err := ev.Rescale(scaled)
		if err != nil {
			return nil, err
		}
		rs.Scale = ev.params.DefaultScale()
		x = ev.AddConst(rs, beta)
	}

	deg := p.Degree()
	if deg == 0 {
		// Constant polynomial: encrypt-free — return c0 added to a zeroed
		// copy of ct at the right scale.
		out := ev.MulByConst(x, 0, targetScale/x.Scale)
		out.Scale = targetScale
		return ev.AddConst(out, p.Coeffs[0]), nil
	}

	// Choose the baby-step size m = 2^ceil(logD/2).
	logD := 0
	for (1 << logD) < deg+1 {
		logD++
	}
	m := 1 << ((logD + 1) / 2)
	if m > deg {
		m = 1 << (logD - 1)
		if m < 1 {
			m = 1
		}
	}

	pb := ev.NewPowerBasis(x, p.Basis)
	for i := 1; i <= m && i <= deg; i++ {
		if err := pb.Gen(ev, i); err != nil {
			return nil, err
		}
	}
	g := m
	for 2*g <= deg {
		g *= 2
		if err := pb.Gen(ev, g); err != nil {
			return nil, err
		}
	}

	pe := &polyEvalState{ev: ev, pb: pb, basis: p.Basis, m: m}
	if pe.levelOf(p.Coeffs) < 0 {
		return nil, fmt.Errorf("ckks: insufficient levels to evaluate degree-%d polynomial", deg)
	}
	res, err := pe.recurse(p.Coeffs, targetScale)
	if err != nil {
		return nil, err
	}
	if res == nil {
		out := ev.MulByConst(x, 0, 1)
		out.Scale = targetScale
		return out, nil
	}
	return res, nil
}

type polyEvalState struct {
	ev    *Evaluator
	pb    *PowerBasis
	basis poly.Basis
	m     int
}

func polyDeg(coeffs []float64) int {
	for i := len(coeffs) - 1; i >= 0; i-- {
		if coeffs[i] != 0 {
			return i
		}
	}
	return -1
}

// split writes p = q*X^g + r (monomial) or p = q*T_g + r (Chebyshev).
func (pe *polyEvalState) split(coeffs []float64, g int) (q, r []float64) {
	if pe.basis == poly.Chebyshev {
		return splitChebyshev(coeffs, g)
	}
	return append([]float64(nil), coeffs[g:]...), append([]float64(nil), coeffs[:g]...)
}

func (pe *polyEvalState) giantFor(deg int) int {
	g := pe.m
	for 2*g <= deg {
		g *= 2
	}
	return g
}

// levelOf predicts the output level of recurse for these coefficients
// without performing any homomorphic work. The recursion in recurse must
// mirror this computation exactly.
//
// Note: the evaluation consumes ceil(log2(deg+1)) + 1 levels. The extra
// level relative to the theoretical optimum is deliberate: an unrescaled
// baby-step sum would force its coefficients to be encoded at scale ~1,
// quantising them to integers.
func (pe *polyEvalState) levelOf(coeffs []float64) int {
	deg := polyDeg(coeffs)
	if deg < 0 {
		return 1 << 30 // "any level": a nil result imposes no constraint
	}
	if deg <= pe.m {
		return pe.minUsedBasisLevel(coeffs) - 1
	}
	g := pe.giantFor(deg)
	qc, _ := pe.split(coeffs, g)
	lq := pe.levelOf(qc)
	lg := pe.pb.Get(g).Level()
	lp := lq
	if lg < lp {
		lp = lg
	}
	return lp - 1
}

// minUsedBasisLevel returns the smallest level among the power-basis
// elements a baby-step evaluation of coeffs will touch.
func (pe *polyEvalState) minUsedBasisLevel(coeffs []float64) int {
	level := pe.pb.Get(1).Level()
	for i := 1; i < len(coeffs); i++ {
		if coeffs[i] == 0 {
			continue
		}
		if l := pe.pb.Get(i).Level(); l < level {
			level = l
		}
	}
	return level
}

// recurse returns a ciphertext holding the polynomial with the given
// coefficients at exactly the requested scale (and at the deterministic
// level computed by levelOf), or nil if all coefficients are zero.
func (pe *polyEvalState) recurse(coeffs []float64, scale float64) (*Ciphertext, error) {
	deg := polyDeg(coeffs)
	if deg < 0 {
		return nil, nil
	}
	ev := pe.ev
	if deg <= pe.m {
		return pe.evalBaby(coeffs[:deg+1], scale)
	}
	g := pe.giantFor(deg)
	qc, rc := pe.split(coeffs, g)
	pbg := pe.pb.Get(g)

	// The product q*T_g rescales at the level where the operands meet.
	lq := pe.levelOf(qc)
	lp := min(lq, pbg.Level())
	if lp < 1 {
		return nil, fmt.Errorf("ckks: insufficient levels in polynomial evaluation")
	}
	ql := ev.params.RingQ().Moduli[lp]
	qTargetScale := scale * float64(ql) / pbg.Scale
	q, err := pe.recurse(qc, qTargetScale)
	if err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("ckks: internal error: zero quotient for degree-%d split", deg)
	}
	if q.Level() != lq {
		return nil, fmt.Errorf("ckks: level prediction mismatch (have %d, predicted %d)", q.Level(), lq)
	}
	prod, err := ev.Mul(q, pbg)
	if err != nil {
		return nil, err
	}
	rl, err := ev.Relinearize(prod)
	if err != nil {
		return nil, err
	}
	rs, err := ev.Rescale(rl)
	if err != nil {
		return nil, err
	}
	rs.Scale = scale // exact by construction of qTargetScale
	r, err := pe.recurse(rc, scale)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return rs, nil
	}
	return ev.Add(rs, r)
}

// evalBaby evaluates a degree <= m polynomial directly from the power
// basis at exactly the requested scale.
func (pe *polyEvalState) evalBaby(coeffs []float64, scale float64) (*Ciphertext, error) {
	ev := pe.ev
	lcom := pe.minUsedBasisLevel(coeffs)
	if lcom < 1 {
		return nil, fmt.Errorf("ckks: insufficient levels in baby-step evaluation")
	}
	ql := ev.params.RingQ().Moduli[lcom]
	s := scale * float64(ql)
	var acc *Ciphertext
	for i := 1; i < len(coeffs); i++ {
		if coeffs[i] == 0 {
			continue
		}
		base := pe.pb.Get(i)
		if base == nil {
			return nil, fmt.Errorf("ckks: missing power basis element %d", i)
		}
		term := ev.MulByConst(base, coeffs[i], s/base.Scale)
		term.Scale = s
		if term.Level() > lcom {
			if err := ev.DropLevel(term, term.Level()-lcom); err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = term
			continue
		}
		var err error
		acc, err = ev.Add(acc, term)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		// Only the constant coefficient: build a zero ciphertext.
		base := pe.pb.Get(1)
		acc = ev.MulByConst(base, 0, 1)
		acc.Scale = s
		if acc.Level() > lcom {
			if err := ev.DropLevel(acc, acc.Level()-lcom); err != nil {
				return nil, err
			}
		}
	}
	if coeffs[0] != 0 {
		acc = ev.AddConst(acc, coeffs[0])
	}
	out, err := ev.Rescale(acc)
	if err != nil {
		return nil, err
	}
	out.Scale = scale
	return out, nil
}

// splitChebyshev writes p = q*T_g + r using
// T_{g+j} = 2 T_g T_j - T_{g-j}; requires deg(p) < 2g.
func splitChebyshev(coeffs []float64, g int) (q, r []float64) {
	q = make([]float64, len(coeffs)-g)
	r = append([]float64(nil), coeffs[:g]...)
	q[0] = coeffs[g]
	for j := 1; j < len(q); j++ {
		q[j] = 2 * coeffs[g+j]
		r[g-j] -= coeffs[g+j]
	}
	return q, r
}

// EvaluateComposite evaluates a composition of polynomials (applied left
// to right), e.g. a sign composite, re-targeting the default scale at
// every stage.
func (ev *Evaluator) EvaluateComposite(ct *Ciphertext, stages []*poly.Polynomial) (*Ciphertext, error) {
	cur := ct
	var err error
	for i, st := range stages {
		cur, err = ev.EvaluatePolynomial(cur, st, ev.params.DefaultScale())
		if err != nil {
			return nil, fmt.Errorf("ckks: composite stage %d: %w", i, err)
		}
	}
	return cur, nil
}

// EvaluateReLU evaluates relu(x) ~= 0.5*x*(1+sign(x)) given a sign
// composition valid on [-bound, bound] (inputs are normalised by 1/bound
// first, and the result is multiplied back).
func (ev *Evaluator) EvaluateReLU(ct *Ciphertext, stages []*poly.Polynomial, bound float64) (*Ciphertext, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("ckks: empty sign composition")
	}
	// Normalise: y = x / bound, landing exactly on the default scale.
	ql := ev.params.RingQ().Moduli[ct.Level()]
	cs := ev.params.DefaultScale() * float64(ql) / ct.Scale
	norm := ev.MulByConst(ct, 1/bound, cs)
	y, err := ev.Rescale(norm)
	if err != nil {
		return nil, err
	}
	y.Scale = ev.params.DefaultScale()
	// Fold 0.5*(1+sign) into the last stage: h = 0.5 + 0.5*sign.
	adjusted := make([]*poly.Polynomial, len(stages))
	copy(adjusted, stages[:len(stages)-1])
	last := stages[len(stages)-1]
	half := &poly.Polynomial{Coeffs: make([]float64, len(last.Coeffs)), Basis: last.Basis, A: last.A, B: last.B}
	for i, c := range last.Coeffs {
		half.Coeffs[i] = 0.5 * c
	}
	half.Coeffs[0] += 0.5
	adjusted[len(stages)-1] = half

	h, err := ev.EvaluateComposite(y, adjusted)
	if err != nil {
		return nil, err
	}
	// relu(x) = x * h(x/bound): multiply by the original ciphertext.
	xd := ct.CopyNew()
	if xd.Level() > h.Level() {
		if err := ev.DropLevel(xd, xd.Level()-h.Level()); err != nil {
			return nil, err
		}
	}
	prod, err := ev.Mul(xd, h)
	if err != nil {
		return nil, err
	}
	rl, err := ev.Relinearize(prod)
	if err != nil {
		return nil, err
	}
	out, err := ev.Rescale(rl)
	if err != nil {
		return nil, err
	}
	return out, nil
}
