package ckks

import (
	cryptorand "crypto/rand"

	"antace/internal/ring"
)

// Ciphertext is an RLWE ciphertext: Degree()+1 ring elements in NTT
// domain, with an associated scale. Degree 1 is the normal form; degree 2
// arises from ciphertext-ciphertext multiplication until relinearisation.
type Ciphertext struct {
	Value []*ring.Poly
	Scale float64
}

// NewCiphertext allocates a zero ciphertext of the given degree and level.
func NewCiphertext(params *Parameters, degree, level int) *Ciphertext {
	ct := &Ciphertext{Value: make([]*ring.Poly, degree+1), Scale: params.DefaultScale()}
	for i := range ct.Value {
		ct.Value[i] = params.RingQ().NewPoly(level)
	}
	return ct
}

// Degree returns the ciphertext degree (number of polynomials minus one).
func (ct *Ciphertext) Degree() int { return len(ct.Value) - 1 }

// Level returns the ciphertext level.
func (ct *Ciphertext) Level() int { return ct.Value[0].Level() }

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	out := &Ciphertext{Value: make([]*ring.Poly, len(ct.Value)), Scale: ct.Scale}
	for i := range ct.Value {
		out.Value[i] = ct.Value[i].CopyNew()
	}
	return out
}

// Encryptor encrypts plaintexts under a public key (or, if constructed
// from a secret key, symmetrically).
type Encryptor struct {
	params  *Parameters
	pk      *PublicKey
	sk      *SecretKey
	sampler *ring.Sampler
}

// NewEncryptor creates a public-key encryptor.
func NewEncryptor(params *Parameters, pk *PublicKey) *Encryptor {
	return &Encryptor{params: params, pk: pk, sampler: ring.NewSampler(params.RingQ(), randSeed())}
}

// NewEncryptorFromSecretKey creates a symmetric encryptor.
func NewEncryptorFromSecretKey(params *Parameters, sk *SecretKey) *Encryptor {
	return &Encryptor{params: params, sk: sk, sampler: ring.NewSampler(params.RingQ(), randSeed())}
}

func randSeed() *[32]byte {
	var s [32]byte
	if _, err := cryptorand.Read(s[:]); err != nil {
		panic("ckks: crypto/rand failure: " + err.Error())
	}
	return &s
}

// Encrypt encrypts pt at the plaintext's level and scale.
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	rQ := e.params.RingQ()
	level := pt.Level()
	ct := &Ciphertext{Value: []*ring.Poly{rQ.NewPoly(level), rQ.NewPoly(level)}, Scale: pt.Scale}
	if e.pk != nil {
		// (v*b + e0 + m, v*a + e1)
		v := rQ.NewPoly(level)
		e.sampler.Ternary(v)
		rQ.NTT(v, v)
		e0 := rQ.NewPoly(level)
		e1 := rQ.NewPoly(level)
		e.sampler.Gaussian(e0)
		e.sampler.Gaussian(e1)
		rQ.NTT(e0, e0)
		rQ.NTT(e1, e1)
		rQ.MulCoeffs(v, e.pk.B, ct.Value[0])
		rQ.Add(ct.Value[0], e0, ct.Value[0])
		rQ.Add(ct.Value[0], pt.Value, ct.Value[0])
		rQ.MulCoeffs(v, e.pk.A, ct.Value[1])
		rQ.Add(ct.Value[1], e1, ct.Value[1])
		return ct
	}
	// Symmetric: (-(a*s) + e + m, a)
	a := rQ.NewPoly(level)
	e.sampler.Uniform(a)
	err := rQ.NewPoly(level)
	e.sampler.Gaussian(err)
	rQ.NTT(err, err)
	rQ.MulCoeffs(a, e.sk.Q, ct.Value[0])
	rQ.Neg(ct.Value[0], ct.Value[0])
	rQ.Add(ct.Value[0], err, ct.Value[0])
	rQ.Add(ct.Value[0], pt.Value, ct.Value[0])
	ct.Value[1] = a
	return ct
}

// EncryptZero returns a fresh encryption of zero at the given level.
func (e *Encryptor) EncryptZero(level int, scale float64) *Ciphertext {
	pt := &Plaintext{Value: e.params.RingQ().NewPoly(level), Scale: scale}
	return e.Encrypt(pt)
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor creates a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes m = c0 + c1*s (+ c2*s^2 for degree-2 ciphertexts).
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rQ := d.params.RingQ()
	level := ct.Level()
	pt := &Plaintext{Value: ct.Value[0].CopyNew(), Scale: ct.Scale}
	sPow := d.sk.Q
	tmp := rQ.NewPoly(level)
	sAcc := d.sk.Q.CopyNew()
	for i := 1; i < len(ct.Value); i++ {
		rQ.MulCoeffs(ct.Value[i], sAcc, tmp)
		rQ.Add(pt.Value, tmp, pt.Value)
		if i+1 < len(ct.Value) {
			rQ.MulCoeffs(sAcc, sPow, sAcc)
		}
	}
	return pt
}
