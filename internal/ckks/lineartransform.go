package ckks

import (
	"fmt"
	"sort"
)

// LinearTransform is a slots x slots complex matrix in diagonal form:
// Diags[d][i] = M[i][(i+d) mod slots]. Homomorphic evaluation computes
// slots(out) = M * slots(in) using baby-step/giant-step rotations.
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128
	// N1 is the baby-step count; 0 selects sqrt of the diagonal count.
	N1 int
}

// NewLinearTransformFromMatrix converts a dense row-major matrix into
// diagonal form, dropping all-zero diagonals.
func NewLinearTransformFromMatrix(m [][]complex128) *LinearTransform {
	n := len(m)
	lt := &LinearTransform{Slots: n, Diags: map[int][]complex128{}}
	for d := 0; d < n; d++ {
		diag := make([]complex128, n)
		zero := true
		for i := 0; i < n; i++ {
			diag[i] = m[i][(i+d)%n]
			if diag[i] != 0 {
				zero = false
			}
		}
		if !zero {
			lt.Diags[d] = diag
		}
	}
	return lt
}

// MulVec applies the transform to a plaintext vector (reference
// implementation for tests).
func (lt *LinearTransform) MulVec(in []complex128) []complex128 {
	out := make([]complex128, lt.Slots)
	for d, diag := range lt.Diags {
		for i := 0; i < lt.Slots; i++ {
			out[i] += diag[i] * in[(i+d)%lt.Slots]
		}
	}
	return out
}

// babyGiant splits the diagonal indices into baby and giant components.
func (lt *LinearTransform) babyGiant() (n1 int, index map[int][]int) {
	count := len(lt.Diags)
	n1 = lt.N1
	if n1 == 0 {
		n1 = 1
		for n1*n1 < count {
			n1 <<= 1
		}
	}
	index = map[int][]int{}
	for d := range lt.Diags {
		g := d - d%n1
		index[g] = append(index[g], d%n1)
	}
	for g := range index {
		sort.Ints(index[g])
	}
	return n1, index
}

// Rotations returns the slot rotations required to evaluate the
// transform (callers must generate the corresponding Galois keys).
func (lt *LinearTransform) Rotations() []int {
	n1, index := lt.babyGiant()
	_ = n1
	set := map[int]bool{}
	for g, babies := range index {
		if g != 0 {
			set[g] = true
		}
		for _, b := range babies {
			if b != 0 {
				set[b] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// EvaluateLinearTransform applies lt to ct. The encoder is used to encode
// the (rotated) diagonals at the level and scale required for an exact
// landing on targetScale (0 selects the parameter default) after the
// single rescale this operation consumes. The ciphertext must use the
// full N/2 slots.
func (ev *Evaluator) EvaluateLinearTransform(ct *Ciphertext, lt *LinearTransform, enc *Encoder, targetScale float64) (*Ciphertext, error) {
	if lt.Slots != ev.params.Slots() {
		return nil, fmt.Errorf("ckks: linear transform over %d slots, parameters have %d", lt.Slots, ev.params.Slots())
	}
	if targetScale == 0 {
		targetScale = ev.params.DefaultScale()
	}
	level := ct.Level()
	if level < 1 {
		return nil, fmt.Errorf("ckks: linear transform needs at least one level")
	}
	ql := ev.params.RingQ().Moduli[level]
	ptScale := targetScale * float64(ql) / ct.Scale
	if ptScale < 2 {
		return nil, fmt.Errorf("ckks: linear transform plaintext scale %g collapses (target %g from ciphertext scale %g)", ptScale, targetScale, ct.Scale)
	}

	n1, index := lt.babyGiant()
	slots := lt.Slots

	// Baby rotations of the input share one hoisted decomposition.
	var babyKs []int
	for _, bs := range index {
		babyKs = append(babyKs, bs...)
	}
	babies, err := ev.rotateBabiesForTest(ct, babyKs)
	if err != nil {
		return nil, err
	}
	babies[0] = ct
	_ = n1

	var acc *Ciphertext
	giants := make([]int, 0, len(index))
	for g := range index {
		giants = append(giants, g)
	}
	sort.Ints(giants)
	for _, g := range giants {
		var inner *Ciphertext
		for _, b := range index[g] {
			diag := lt.Diags[g+b]
			// Pre-rotate the diagonal by -g so the outer giant rotation
			// aligns it: rot_g(rot_{-g}(diag) ⊙ rot_b(x)) = diag ⊙ rot_{g+b}(x).
			rotated := make([]complex128, slots)
			for i := 0; i < slots; i++ {
				rotated[i] = diag[((i-g)%slots+slots)%slots]
			}
			pt, err := enc.Encode(rotated, level, ptScale)
			if err != nil {
				return nil, err
			}
			term := ev.MulPlain(babies[b], pt)
			if inner == nil {
				inner = term
				continue
			}
			inner, err = ev.Add(inner, term)
			if err != nil {
				return nil, err
			}
		}
		if g != 0 {
			var err error
			inner, err = ev.Rotate(inner, g)
			if err != nil {
				return nil, err
			}
		}
		if acc == nil {
			acc = inner
			continue
		}
		var err error
		acc, err = ev.Add(acc, inner)
		if err != nil {
			return nil, err
		}
	}
	if acc == nil {
		return nil, fmt.Errorf("ckks: linear transform has no diagonals")
	}
	out, err := ev.Rescale(acc)
	if err != nil {
		return nil, err
	}
	out.Scale = targetScale
	return out, nil
}

// rotateBabiesForTest switches between hoisted and plain rotations.
var useHoistedBabies = true

func (ev *Evaluator) rotateBabiesForTest(ct *Ciphertext, ks []int) (map[int]*Ciphertext, error) {
	if useHoistedBabies {
		return ev.RotateHoisted(ct, ks)
	}
	out := map[int]*Ciphertext{}
	for _, k := range ks {
		if _, ok := out[k]; ok {
			continue
		}
		if k == 0 {
			out[0] = ct.CopyNew()
			continue
		}
		r, err := ev.Rotate(ct, k)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}
