package ckks

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"

	"antace/internal/ring"
)

type testContext struct {
	params *Parameters
	enc    *Encoder
	kg     *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	encPk  *Encryptor
	encSk  *Encryptor
	dec    *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, rotations []int) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{50, 50},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(params, ring.SeedFromInt(7))
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := &EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys(rotations, true, sk),
	}
	return &testContext{
		params: params,
		enc:    NewEncoder(params),
		kg:     kg,
		sk:     sk,
		pk:     pk,
		encPk:  NewEncryptor(params, pk),
		encSk:  NewEncryptorFromSecretKey(params, sk),
		dec:    NewDecryptor(params, sk),
		eval:   NewEvaluator(params, keys),
	}
}

func randomComplexVector(n int, bound float64, seed uint64) []complex128 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return v
}

func maxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func requireClose(t *testing.T, got, want []complex128, tol float64, msg string) {
	t.Helper()
	if e := maxErr(got, want); e > tol {
		t.Fatalf("%s: max error %.3e exceeds tolerance %.3e", msg, e, tol)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 1)
	pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt, slots)
	requireClose(t, got, values, 1e-8, "encode/decode")
}

func TestEncodeDecodeSparse(t *testing.T) {
	tc := newTestContext(t, nil)
	for _, slots := range []int{1, 2, 8, 64} {
		values := randomComplexVector(slots, 1, uint64(slots))
		pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
		if err != nil {
			t.Fatal(err)
		}
		got := tc.enc.Decode(pt, slots)
		requireClose(t, got, values, 1e-8, "sparse encode/decode")
	}
}

func TestEncodeCoeffsRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	n := tc.params.N()
	rng := rand.New(rand.NewPCG(2, 3))
	values := make([]float64, n)
	for i := range values {
		values[i] = rng.Float64()*2 - 1
	}
	pt, err := tc.enc.EncodeCoeffs(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.DecodeCoeffs(pt)
	for i := range values {
		if math.Abs(got[i]-values[i]) > 1e-8 {
			t.Fatalf("coeff %d: got %f want %f", i, got[i], values[i])
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 4)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())

	for name, enc := range map[string]*Encryptor{"pk": tc.encPk, "sk": tc.encSk} {
		ct := enc.Encrypt(pt)
		got := tc.enc.Decode(tc.dec.Decrypt(ct), slots)
		requireClose(t, got, values, 1e-6, name+" encrypt/decrypt")
	}
}

func TestHomomorphicAddSub(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	v1 := randomComplexVector(slots, 1, 5)
	v2 := randomComplexVector(slots, 1, 6)
	pt1, _ := tc.enc.Encode(v1, tc.params.MaxLevel(), tc.params.DefaultScale())
	pt2, _ := tc.enc.Encode(v2, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct1 := tc.encPk.Encrypt(pt1)
	ct2 := tc.encPk.Encrypt(pt2)

	sum, err := tc.eval.Add(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v1[i] + v2[i]
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(sum), slots), want, 1e-6, "ct+ct")

	diff, err := tc.eval.Sub(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = v1[i] - v2[i]
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(diff), slots), want, 1e-6, "ct-ct")

	// ct + pt
	sp, err := tc.eval.AddPlain(ct1, pt2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = v1[i] + v2[i]
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(sp), slots), want, 1e-6, "ct+pt")
}

func TestScaleMismatchRejected(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	v := randomComplexVector(slots, 1, 7)
	pt1, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	pt2, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale()*4)
	ct1 := tc.encPk.Encrypt(pt1)
	ct2 := tc.encPk.Encrypt(pt2)
	if _, err := tc.eval.Add(ct1, ct2); err == nil {
		t.Fatal("expected scale mismatch error")
	}
}

func TestMulPlainRescale(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	v1 := randomComplexVector(slots, 1, 8)
	v2 := randomComplexVector(slots, 1, 9)
	pt1, _ := tc.enc.Encode(v1, tc.params.MaxLevel(), tc.params.DefaultScale())
	pt2, _ := tc.enc.Encode(v2, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt1)

	prod := tc.eval.MulPlain(ct, pt2)
	rescaled, err := tc.eval.Rescale(prod)
	if err != nil {
		t.Fatal(err)
	}
	if rescaled.Level() != ct.Level()-1 {
		t.Fatalf("level after rescale: %d, want %d", rescaled.Level(), ct.Level()-1)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v1[i] * v2[i]
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(rescaled), slots), want, 1e-5, "ct*pt rescaled")
}

func TestMulRelinRescale(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	v1 := randomComplexVector(slots, 1, 10)
	v2 := randomComplexVector(slots, 1, 11)
	pt1, _ := tc.enc.Encode(v1, tc.params.MaxLevel(), tc.params.DefaultScale())
	pt2, _ := tc.enc.Encode(v2, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct1 := tc.encPk.Encrypt(pt1)
	ct2 := tc.encPk.Encrypt(pt2)

	// Without relinearisation the degree-2 ciphertext must still decrypt.
	raw, err := tc.eval.Mul(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = v1[i] * v2[i]
	}
	rawRescaled, err := tc.eval.Rescale(raw)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(rawRescaled), slots), want, 1e-4, "degree-2 ct*ct")

	rl, err := tc.eval.MulRelin(ct1, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Degree() != 1 {
		t.Fatalf("degree after relin: %d", rl.Degree())
	}
	rlRescaled, err := tc.eval.Rescale(rl)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(rlRescaled), slots), want, 1e-4, "relinearised ct*ct")
}

func TestDeepMultiplicationChain(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 12)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	want := append([]complex128(nil), values...)
	// Square down the whole chain.
	for ct.Level() > 0 {
		var err error
		ct, err = tc.eval.MulRelin(ct, ct)
		if err != nil {
			t.Fatal(err)
		}
		ct, err = tc.eval.Rescale(ct)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] *= want[i]
		}
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(ct), slots), want, 1e-2, "squaring chain to level 0")
}

func TestRotate(t *testing.T) {
	rots := []int{1, 2, 5, -1, 64}
	tc := newTestContext(t, rots)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 13)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	for _, k := range rots {
		rot, err := tc.eval.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, slots)
		for i := range want {
			want[i] = values[((i+k)%slots+slots)%slots]
		}
		requireClose(t, tc.enc.Decode(tc.dec.Decrypt(rot), slots), want, 1e-5, "rotate")
	}

	// Rotation by 0 is identity without keys.
	rot0, err := tc.eval.Rotate(ct, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(rot0), slots), values, 1e-6, "rotate 0")
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 14)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	conj, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = cmplx.Conj(values[i])
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(conj), slots), want, 1e-5, "conjugate")
}

func TestConstOps(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 15)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	add := tc.eval.AddConst(ct, 3.5)
	want := make([]complex128, slots)
	for i := range want {
		want[i] = values[i] + 3.5
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(add), slots), want, 1e-5, "add const")

	mul := tc.eval.MulByConst(ct, -0.75, tc.params.DefaultScale())
	res, err := tc.eval.Rescale(mul)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = values[i] * -0.75
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(res), slots), want, 1e-5, "mul const")

	up := tc.eval.ScaleUp(ct, 1<<10)
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(up), slots), values, 1e-5, "scale up preserves message")
	if up.Scale != ct.Scale*float64(1<<10) {
		t.Fatal("ScaleUp did not adjust the scale")
	}
}

func TestDropLevelAndModSwitch(t *testing.T) {
	tc := newTestContext(t, nil)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 16)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	tc.eval.DropLevel(ct, 2)
	if ct.Level() != tc.params.MaxLevel()-2 {
		t.Fatalf("level after drop: %d", ct.Level())
	}
	requireClose(t, tc.enc.Decode(tc.dec.Decrypt(ct), slots), values, 1e-5, "message survives modulus switch")
}

func TestParameterValidation(t *testing.T) {
	if _, err := NewParameters(ParametersLiteral{LogN: 3, LogQ: []int{40}, LogP: []int{40}, LogScale: 30}); err == nil {
		t.Fatal("expected error for tiny LogN")
	}
	if _, err := NewParameters(ParametersLiteral{LogN: 10, LogQ: nil, LogP: []int{40}, LogScale: 30}); err == nil {
		t.Fatal("expected error for empty LogQ")
	}
	if _, err := NewParameters(ParametersLiteral{LogN: 10, LogQ: []int{40}, LogP: nil, LogScale: 30}); err == nil {
		t.Fatal("expected error for empty LogP")
	}
	p, err := NewParameters(ParametersLiteral{LogN: 12, LogQ: []int{40, 30}, LogP: []int{35}, LogScale: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckSecurity(); err != nil {
		t.Fatalf("105-bit chain at LogN=12 should satisfy security: %v", err)
	}
	big, err := NewParameters(ParametersLiteral{LogN: 10, LogQ: []int{50, 50}, LogP: []int{50}, LogScale: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := big.CheckSecurity(); err == nil {
		t.Fatal("150-bit chain at LogN=10 must fail the security check")
	}
}

func TestMinLogN(t *testing.T) {
	cases := map[int]int{100: 12, 109: 12, 110: 13, 438: 14, 439: 15, 1500: 16}
	for logQP, want := range cases {
		if got := MinLogN(logQP); got != want {
			t.Errorf("MinLogN(%d) = %d, want %d", logQP, got, want)
		}
	}
}

func TestRotateHoistedMatchesRotate(t *testing.T) {
	rots := []int{1, 2, 5, -3, 64}
	tc := newTestContext(t, rots)
	slots := tc.params.Slots()
	values := randomComplexVector(slots, 1, 55)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	hoisted, err := tc.eval.RotateHoisted(ct, append([]int{0}, rots...))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range append([]int{0}, rots...) {
		want, err := tc.eval.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		gw := tc.enc.Decode(tc.dec.Decrypt(want), slots)
		gh := tc.enc.Decode(tc.dec.Decrypt(hoisted[k]), slots)
		requireClose(t, gh, gw, 1e-4, "hoisted rotation")
	}
}
