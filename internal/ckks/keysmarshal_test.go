package ckks

import (
	"reflect"
	"testing"

	"antace/internal/ring"
)

func switchingKeysEqual(a, b *SwitchingKey) bool {
	if len(a.BQ) != len(b.BQ) {
		return false
	}
	for d := range a.BQ {
		if !a.BQ[d].Equal(b.BQ[d]) || !a.BP[d].Equal(b.BP[d]) ||
			!a.AQ[d].Equal(b.AQ[d]) || !a.AP[d].Equal(b.AP[d]) {
			return false
		}
	}
	return true
}

func TestSwitchingKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	swk := tc.kg.GenSwitchingKey(tc.sk.Q, tc.sk)
	data, err := swk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SwitchingKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !switchingKeysEqual(swk, &back) {
		t.Fatal("switching key round trip lost data")
	}
	if err := back.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("expected a truncation error")
	}
}

func TestRelinearizationKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t, nil)
	rlk := tc.kg.GenRelinearizationKey(tc.sk)
	data, err := rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The relin key must not be confusable with a bare switching key.
	if err := new(SwitchingKey).UnmarshalBinary(data); err == nil {
		t.Fatal("relin key decoded as a switching key")
	}
	var back RelinearizationKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !switchingKeysEqual(&rlk.SwitchingKey, &back.SwitchingKey) {
		t.Fatal("relinearization key round trip lost data")
	}
}

func TestGaloisKeyRoundTrip(t *testing.T) {
	tc := newTestContext(t, []int{1})
	gal := tc.params.RingQ().GaloisElementForRotation(1)
	gk := tc.kg.GenGaloisKey(gal, tc.sk)
	data, err := gk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back GaloisKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.GaloisElement != gal || !switchingKeysEqual(&gk.SwitchingKey, &back.SwitchingKey) {
		t.Fatal("Galois key round trip lost data")
	}
}

// TestEvaluationKeySetRoundTrip serializes a full client key bundle and
// verifies the deserialized keys actually work: a rotate + relinearized
// multiply evaluated under the round-tripped set must decrypt correctly.
func TestEvaluationKeySetRoundTrip(t *testing.T) {
	tc := newTestContext(t, []int{1, 2})
	keys := &EvaluationKeySet{
		Rlk:    tc.kg.GenRelinearizationKey(tc.sk),
		Galois: tc.kg.GenGaloisKeys([]int{1, 2}, true, tc.sk),
	}
	data, err := keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(data, data2) {
		t.Fatal("evaluation-key encoding is not deterministic")
	}
	var back EvaluationKeySet
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Galois) != len(keys.Galois) {
		t.Fatalf("galois count %d, want %d", len(back.Galois), len(keys.Galois))
	}
	for gal, gk := range keys.Galois {
		bk, err := back.GaloisKeyFor(gal)
		if err != nil {
			t.Fatal(err)
		}
		if !switchingKeysEqual(&gk.SwitchingKey, &bk.SwitchingKey) {
			t.Fatalf("galois key %d round trip lost data", gal)
		}
	}

	ev := NewEvaluator(tc.params, &back)
	values := randomComplexVector(tc.params.Slots(), 1, 91)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	rot, err := ev.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ev.MulRelin(rot, ct)
	if err != nil {
		t.Fatal(err)
	}
	// Differential check against an evaluator holding the original keys:
	// both key sets must produce bit-identical ciphertexts.
	ev0 := NewEvaluator(tc.params, keys)
	rot0, err := ev0.Rotate(ct, 1)
	if err != nil {
		t.Fatal(err)
	}
	prod0, err := ev0.MulRelin(rot0, ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prod.Value {
		if !prod.Value[i].Equal(prod0.Value[i]) {
			t.Fatalf("component %d differs under round-tripped keys", i)
		}
	}
}

func TestEvaluationKeySetWithoutRlk(t *testing.T) {
	tc := newTestContext(t, []int{4})
	keys := &EvaluationKeySet{Galois: tc.kg.GenGaloisKeys([]int{4}, false, tc.sk)}
	data, err := keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back EvaluationKeySet
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Rlk != nil {
		t.Fatal("phantom relinearization key appeared")
	}
	if len(back.Galois) != 1 {
		t.Fatalf("galois count %d, want 1", len(back.Galois))
	}
}

func TestParametersLiteralRoundTrip(t *testing.T) {
	lits := []ParametersLiteral{
		{LogN: 8, LogQ: []int{50, 40, 40, 40}, LogP: []int{50, 50}, LogScale: 40},
		{LogN: 13, LogQ: []int{60, 56, 56}, LogP: []int{60}, LogScale: 56, Dnum: 3},
	}
	for _, lit := range lits {
		data, err := lit.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back ParametersLiteral
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lit, back) {
			t.Fatalf("literal round trip: got %+v, want %+v", back, lit)
		}
		// Decoding to compiled parameters must reproduce the same primes.
		p1, err := NewParameters(lit)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := ParamsFromBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p1.Q(), p2.Q()) || !reflect.DeepEqual(p1.P(), p2.P()) {
			t.Fatal("prime chains diverged after round trip")
		}
	}
}

func TestParametersLiteralRejectsBad(t *testing.T) {
	if _, err := (ParametersLiteral{LogN: 8, LogQ: []int{70}, LogP: []int{50}, LogScale: 40}).MarshalBinary(); err == nil {
		t.Fatal("expected an error for a 70-bit prime request")
	}
	lit := ParametersLiteral{LogN: 8, LogQ: []int{50}, LogP: []int{50}, LogScale: 40}
	data, _ := lit.MarshalBinary()
	var back ParametersLiteral
	if err := back.UnmarshalBinary(data[:len(data)-1]); err == nil {
		t.Fatal("expected a truncation error")
	}
	if err := back.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("expected a trailing-bytes error")
	}
}

// TestSwitchingKeyOverUniqueSeeds guards the encoding against aliasing:
// two keys generated from different randomness must serialize differently.
func TestSwitchingKeyOverUniqueSeeds(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN: 8, LogQ: []int{50, 40}, LogP: []int{50}, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgA := NewKeyGenerator(params, ring.SeedFromInt(1))
	kgB := NewKeyGenerator(params, ring.SeedFromInt(2))
	skA, skB := kgA.GenSecretKey(), kgB.GenSecretKey()
	a, _ := kgA.GenRelinearizationKey(skA).MarshalBinary()
	b, _ := kgB.GenRelinearizationKey(skB).MarshalBinary()
	if reflect.DeepEqual(a, b) {
		t.Fatal("distinct keys serialized identically")
	}
}
