package ckks

import (
	"fmt"
	"math/big"

	"antace/internal/nt"
	"antace/internal/par"
	"antace/internal/ring"
)

// SecretKey is a ternary secret held in NTT domain over both the Q and P
// bases.
type SecretKey struct {
	Q *ring.Poly // all Q rows, NTT domain
	P *ring.Poly // all P rows, NTT domain
}

// PublicKey is an encryption of zero under the secret key: (b, a) with
// b = -(a*s + e), in NTT domain at the top level.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts (the product with) one secret under another:
// per key-switching digit i it stores (b_i, a_i) over the basis Q ∪ P with
// b_i = -(a_i*s + e_i) + P*w_i*sFrom, where w_i is the RNS gadget
// selecting digit i.
type SwitchingKey struct {
	BQ, BP []*ring.Poly // [digit]
	AQ, AP []*ring.Poly
}

// RelinearizationKey switches s^2 -> s.
type RelinearizationKey struct{ SwitchingKey }

// GaloisKey switches phi_gal(s) -> s, enabling rotation/conjugation.
type GaloisKey struct {
	GaloisElement uint64
	SwitchingKey
}

// EvaluationKeySet bundles the keys an evaluator may need.
type EvaluationKeySet struct {
	Rlk    *RelinearizationKey
	Galois map[uint64]*GaloisKey
}

// GaloisKeyFor returns the key for the given Galois element, or an error
// naming the missing element (the compiler's key analysis should have
// planned for it).
func (s *EvaluationKeySet) GaloisKeyFor(gal uint64) (*GaloisKey, error) {
	if s == nil || s.Galois == nil {
		return nil, fmt.Errorf("ckks: no Galois keys available")
	}
	k, ok := s.Galois[gal]
	if !ok {
		return nil, fmt.Errorf("ckks: missing Galois key for element %d", gal)
	}
	return k, nil
}

// KeyGenerator produces all key material.
type KeyGenerator struct {
	params   *Parameters
	sampler  *ring.Sampler
	samplerP *ring.Sampler
}

// NewKeyGenerator creates a key generator. A nil seed uses crypto/rand.
func NewKeyGenerator(params *Parameters, seed *[32]byte) *KeyGenerator {
	var seedP *[32]byte
	if seed != nil {
		s2 := *seed
		s2[31] ^= 0xAA
		seedP = &s2
	}
	return &KeyGenerator{
		params:   params,
		sampler:  ring.NewSampler(params.RingQ(), seed),
		samplerP: ring.NewSampler(params.RingP(), seedP),
	}
}

// SecretHammingWeight is the number of nonzero coefficients in secret
// keys. Sparse ternary secrets (h=192, the HE-standard bootstrapping
// convention) keep the ModRaise overflow polynomial I small independent
// of the ring degree, which the bootstrapper's EvalMod range (K) relies
// on.
const SecretHammingWeight = 192

// GenSecretKey samples a fresh sparse ternary secret key.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	rQ, rP := kg.params.RingQ(), kg.params.RingP()
	sk := &SecretKey{
		Q: rQ.NewPoly(rQ.MaxLevel()),
		P: rP.NewPoly(rP.MaxLevel()),
	}
	h := SecretHammingWeight
	if h > rQ.N/2 {
		h = rQ.N / 2
	}
	kg.sampler.TernarySparse(sk.Q, h)
	// Mirror the same integer secret into the P basis: re-derive the
	// signed values from the Q representation.
	signed := signedFromRNS(rQ, sk.Q)
	rP.SetSigned(sk.P, signed)
	rQ.NTT(sk.Q, sk.Q)
	rP.NTT(sk.P, sk.P)
	return sk
}

// signedFromRNS reads back a small signed polynomial from row 0.
func signedFromRNS(r *ring.Ring, p *ring.Poly) []int64 {
	q := r.Moduli[0]
	out := make([]int64, r.N)
	for j := 0; j < r.N; j++ {
		v := p.Coeffs[0][j]
		if v > q/2 {
			out[j] = -int64(q - v)
		} else {
			out[j] = int64(v)
		}
	}
	return out
}

// GenPublicKey derives a public key from sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	rQ := kg.params.RingQ()
	a := rQ.NewPoly(rQ.MaxLevel())
	kg.sampler.Uniform(a) // uniform in NTT domain is uniform
	e := rQ.NewPoly(rQ.MaxLevel())
	kg.sampler.Gaussian(e)
	rQ.NTT(e, e)
	b := rQ.NewPoly(rQ.MaxLevel())
	rQ.MulCoeffs(a, sk.Q, b)
	rQ.Neg(b, b)
	rQ.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// GenSwitchingKey produces a key switching sFrom -> sk. Both secrets are
// in NTT domain over Q (sFrom only needs its Q representation).
func (kg *KeyGenerator) GenSwitchingKey(sFrom *ring.Poly, sk *SecretKey) *SwitchingKey {
	params := kg.params
	rQ, rP := params.RingQ(), params.RingP()
	L := rQ.MaxLevel()
	K := rP.MaxLevel()
	alpha := params.Alpha()
	dnum := (L + 1 + alpha - 1) / alpha

	swk := &SwitchingKey{
		BQ: make([]*ring.Poly, dnum), BP: make([]*ring.Poly, dnum),
		AQ: make([]*ring.Poly, dnum), AP: make([]*ring.Poly, dnum),
	}
	P := rP.ModulusAtLevel(K)
	Q := rQ.ModulusAtLevel(L)
	for d := 0; d < dnum; d++ {
		start := d * alpha
		end := start + alpha
		if end > L+1 {
			end = L + 1
		}
		// Gadget w_d = P * (Q/D_d) * ((Q/D_d)^-1 mod D_d) mod q_i, and 0 mod p_j
		// contributions handled by construction below (w_d mod p_j is
		// P*... ≡ 0 mod p_j since P | w_d... it is not: w_d contains P as a
		// factor so w_d ≡ 0 mod every p_j).
		D := big.NewInt(1)
		for i := start; i < end; i++ {
			D.Mul(D, new(big.Int).SetUint64(rQ.Moduli[i]))
		}
		QoverD := new(big.Int).Quo(Q, D)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(QoverD, D), D)
		w := new(big.Int).Mul(QoverD, inv)
		w.Mul(w, P)

		aQ := rQ.NewPoly(L)
		aP := rP.NewPoly(K)
		kg.sampler.Uniform(aQ)
		kg.samplerP.Uniform(aP)
		eQ := rQ.NewPoly(L)
		eP := rP.NewPoly(K)
		kg.sampler.Gaussian(eQ)
		// The error must be the same integer polynomial across Q and P.
		rP.SetSigned(eP, signedFromRNS(rQ, eQ))
		rQ.NTT(eQ, eQ)
		rP.NTT(eP, eP)

		bQ := rQ.NewPoly(L)
		bP := rP.NewPoly(K)
		rQ.MulCoeffs(aQ, sk.Q, bQ)
		rQ.Neg(bQ, bQ)
		rQ.Add(bQ, eQ, bQ)
		rP.MulCoeffs(aP, sk.P, bP)
		rP.Neg(bP, bP)
		rP.Add(bP, eP, bP)

		// Add w_d * sFrom on the Q side (w_d ≡ 0 mod p_j, so P side
		// receives nothing).
		tmp := rQ.GetPolyNoZero(L)
		par.For(L+1, par.Grain(rQ.N), func(start, end int) {
			wm := new(big.Int)
			qi := new(big.Int)
			for i := start; i < end; i++ {
				qi.SetUint64(rQ.Moduli[i])
				wi := wm.Mod(w, qi).Uint64()
				wiShoup := nt.ShoupPrec(wi, rQ.Moduli[i])
				row := tmp.Coeffs[i]
				src := sFrom.Coeffs[i]
				for j := 0; j < rQ.N; j++ {
					row[j] = nt.MulModShoup(src[j], wi, wiShoup, rQ.Moduli[i])
				}
			}
		})
		rQ.Add(bQ, tmp, bQ)
		rQ.PutPoly(tmp)

		swk.BQ[d], swk.BP[d] = bQ, bP
		swk.AQ[d], swk.AP[d] = aQ, aP
	}
	return swk
}

// GenRelinearizationKey produces the s^2 -> s key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	rQ := kg.params.RingQ()
	s2 := rQ.NewPoly(rQ.MaxLevel())
	rQ.MulCoeffs(sk.Q, sk.Q, s2)
	return &RelinearizationKey{*kg.GenSwitchingKey(s2, sk)}
}

// GenGaloisKey produces the key for one Galois element.
func (kg *KeyGenerator) GenGaloisKey(gal uint64, sk *SecretKey) *GaloisKey {
	rQ := kg.params.RingQ()
	idx := rQ.AutomorphismNTTIndex(gal)
	sGal := rQ.NewPoly(rQ.MaxLevel())
	rQ.AutomorphismNTT(sk.Q, idx, sGal)
	return &GaloisKey{GaloisElement: gal, SwitchingKey: *kg.GenSwitchingKey(sGal, sk)}
}

// GenGaloisKeys produces keys for a set of rotations (by slot offset) and
// optionally conjugation.
func (kg *KeyGenerator) GenGaloisKeys(rotations []int, conjugate bool, sk *SecretKey) map[uint64]*GaloisKey {
	rQ := kg.params.RingQ()
	out := make(map[uint64]*GaloisKey)
	for _, k := range rotations {
		gal := rQ.GaloisElementForRotation(k)
		if _, ok := out[gal]; !ok {
			out[gal] = kg.GenGaloisKey(gal, sk)
		}
	}
	if conjugate {
		gal := rQ.GaloisElementForConjugation()
		out[gal] = kg.GenGaloisKey(gal, sk)
	}
	return out
}
