// Package serve is the encrypted-inference serving layer: the paper's
// client/server threat model (Figure 2) made operational. A daemon loads
// one compiled FHE program at startup; clients fetch the program spec,
// generate their own key material, upload the public evaluation keys
// once (POST /v1/sessions — they are tens of megabytes, cached under an
// LRU byte budget and reused across requests), then stream ciphertexts
// through POST /v1/infer. A bounded queue feeds a pool of workers, each
// evaluating with its own per-request Evaluator around shared read-only
// parameters, encoder and bootstrapper; deadlines propagate into the
// instruction loop via context, queue overflow answers 429 with
// Retry-After, and SIGTERM drains accepted work before exit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"antace/internal/batch"
	"antace/internal/bootstrap"
	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/fault"
	"antace/internal/ir"
	"antace/internal/obs"
	"antace/internal/serve/api"
	"antace/internal/vm"
)

// Config tunes the serving layer; zero values select the defaults noted
// on each field.
type Config struct {
	// Workers is the evaluation pool size (default GOMAXPROCS capped at
	// 4 — each evaluation already fans limb work across internal/par).
	Workers int
	// QueueDepth bounds the request queue (default 4×Workers). A full
	// queue answers 429 rather than buffering unbounded ciphertexts.
	QueueDepth int
	// SessionBudget caps resident evaluation-key bytes (default 256 MiB).
	SessionBudget int64
	// MaxUploadBytes caps one key-bundle upload (default SessionBudget).
	MaxUploadBytes int64
	// MaxCipherBytes caps one request ciphertext (default 64 MiB).
	MaxCipherBytes int64
	// DefaultDeadline applies when a request carries no deadline header
	// (default 60s); MaxDeadline clamps client-supplied values
	// (default 10m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// LatencyWindow is the sample count behind the statz quantiles
	// (default 1024).
	LatencyWindow int
	// IdemEntries bounds the idempotency result cache (default 256
	// retained successes; in-flight executions are uncounted).
	IdemEntries int

	// BatchMax > 1 enables cross-request slot batching: concurrent
	// inference requests on the same session that arrive within
	// BatchWindow are packed into spare slot lanes of one shared
	// ciphertext and evaluated together, up to min(BatchMax, stride)
	// jobs per evaluation, where stride = slots/VecLen. The program is
	// lane-transformed at startup (every rotation scaled by the stride,
	// every constant replicated per lane), so clients must encode inputs
	// strided per the spec's BatchStride and extract their lane from
	// replies. 0 or 1 disables batching and serves exactly the solo
	// path. BatchWindow defaults to 20ms when batching is on: latency
	// traded per request for up-to-stride-fold throughput.
	BatchMax    int
	BatchWindow time.Duration

	// DataDir, when set, enables the durability layer: registered key
	// bundles spill to disk, idempotent jobs are journaled, and
	// executions checkpoint so a restarted daemon resumes them. Empty
	// means RAM-only serving (the pre-durability behavior).
	DataDir string
	// DiskBudget caps spilled session bytes on disk (default 1 GiB);
	// oldest-used bundles are evicted past it.
	DiskBudget int64
	// CheckpointEveryN checkpoints a journaled execution every N
	// instructions; CheckpointEvery does so on a wall-clock period.
	// Either (or both) may be set; when neither is, journaled jobs
	// checkpoint every 2s — cheap enough to stay under the overhead
	// budget on deep programs, frequent enough to bound re-execution.
	CheckpointEveryN int
	CheckpointEvery  time.Duration
	// InstrDelay stretches every VM instruction (chaos/e2e knob for
	// making "mid-flight" a wide target; zero in production).
	InstrDelay time.Duration

	// Replicator, when set, receives every durable state change for
	// shipment to a successor shard (see the Replicator interface); nil
	// keeps the exact single-node behavior. Set it here rather than after
	// New so crash-recovery completions — which begin before the listener
	// exists — are replicated too.
	Replicator Replicator

	// OnLeave is invoked (once, on its own goroutine) after this shard
	// acknowledged a cluster update that removes it from the ring: the
	// handoff re-shipped its state, readiness answers 503 "handing-off",
	// and the process should drain and exit. cmd/aced wires this into its
	// shutdown path; nil ignores the signal.
	OnLeave func()

	// Logger receives the server's structured events (request lifecycle,
	// recovery, checkpointing), each carrying the request's trace id. Nil
	// discards them — the daemon always provides one; library users and
	// tests opt in.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server mux.
	// Off by default: the profiler exposes heap contents, which on this
	// server include evaluation-key material.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.SessionBudget <= 0 {
		c.SessionBudget = 256 << 20
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = c.SessionBudget
	}
	if c.MaxCipherBytes <= 0 {
		c.MaxCipherBytes = 64 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.IdemEntries <= 0 {
		c.IdemEntries = 256
	}
	if c.BatchMax > 1 && c.BatchWindow <= 0 {
		c.BatchWindow = 20 * time.Millisecond
	}
	if c.DiskBudget <= 0 {
		c.DiskBudget = 1 << 30
	}
	if c.DataDir != "" && c.CheckpointEveryN <= 0 && c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
	return c
}

// Program is the compiled artifact the daemon serves: the executable
// CKKS module plus the metadata clients need to participate. It is the
// serving-layer view of core.Compiled, kept structural so tests can
// assemble one straight from a ckksir.Result.
type Program struct {
	Name   string
	CKKS   *ckksir.Result
	VecLen int
}

// Server implements the v1 HTTP API over one compiled program.
type Server struct {
	cfg    Config
	name   string
	module *ir.Module
	// ckks is the cost-model view of the served program: the original
	// compile result with Module swapped for the (possibly
	// batch-transformed) module this server actually executes, so
	// /v1/costmodelz prices the schedule the profile measures.
	ckks     *ckksir.Result
	params   *ckks.Parameters
	enc      *ckks.Encoder
	boot     *bootstrap.Bootstrapper
	spec     api.ProgramSpec
	required []uint64 // Galois elements every session must provide
	needRlk  bool

	// Cross-request batching: stride is the lane spacing the served
	// module was transformed for (1 = batching off), maxLanes the most
	// jobs one evaluation carries, and coal the per-session coalescing
	// window in front of the queue (nil when batching is off).
	stride   int
	maxLanes int
	coal     *batch.Coalescer[*job]

	sessions *sessionCache
	sched    *scheduler
	idem     *idemCache
	stats    counters
	lat      *latencyWindow
	mux      *http.ServeMux

	// Observability: structured logs, per-opcode profile aggregation and
	// the request-level histograms behind /metrics.
	log       *slog.Logger
	prof      *obs.Aggregate
	queueWait *obs.Histogram
	evalHist  *obs.Histogram

	// dur is the disk tier; nil without a DataDir. restarts is the data
	// dir's prior start count, fixed at boot.
	dur      *durable
	restarts uint64

	// repl ships durable state to a successor shard; nil outside cluster
	// wiring. recovering counts journaled jobs crash recovery is still
	// re-executing — readiness answers 503 until it reaches zero, so a
	// router never routes to a shard whose idempotency state is still
	// being rebuilt.
	repl       Replicator
	recovering atomic.Int64
	// handingOff is set when a cluster update removed this shard from the
	// ring: state re-shipped, readiness 503s, exit imminent. leaveOnce
	// guards the OnLeave callback.
	handingOff atomic.Bool
	leaveOnce  sync.Once

	mu       sync.RWMutex // guards draining/stopped vs. queue sends and close
	draining bool
	// stopped is set after the coalescer's final sweep and before the
	// queue closes; flush callbacks check it under mu so no send can
	// race the close.
	stopped bool

	// beforeExec is a test hook invoked by workers ahead of evaluation;
	// nil outside tests.
	beforeExec func(*job)
}

// New builds a server for a compiled program: parameters and (when the
// program bootstraps) the bootstrap circuit are instantiated once here
// and shared read-only across all workers and sessions.
func New(prog Program, cfg Config) (*Server, error) {
	res := prog.CKKS
	if res == nil || res.Module == nil || res.Module.Main() == nil {
		return nil, fmt.Errorf("serve: program has no executable module")
	}
	cfg = cfg.withDefaults()
	params, err := ckks.NewParameters(res.Literal)
	if err != nil {
		return nil, err
	}

	// Cross-request batching: when the ring has spare slot capacity
	// (stride = slots/VecLen > 1), serve a lane-transformed clone of the
	// module — every rotation scaled by the stride, every constant
	// replicated across lanes — so up to min(BatchMax, stride) packed
	// inputs evaluate in one pass. The transform preserves per-slot
	// semantics exactly (see internal/batch), so stride 1 and batching
	// off serve byte-identical programs.
	module := res.Module
	stride := 1
	if cfg.BatchMax > 1 {
		stride = batch.Stride(params.Slots(), prog.VecLen)
	}
	maxLanes := 1
	var rotations []int
	if stride > 1 {
		bmod, terr := batch.Transform(res.Module, stride)
		if terr != nil {
			return nil, fmt.Errorf("serve: batch transform: %w", terr)
		}
		module = bmod
		maxLanes = min(cfg.BatchMax, stride)
		rotations = batch.Rotations(bmod)
		// Packing rotates job b's lane-0 ciphertext by −b before the
		// additive merge, so the session needs those Galois keys too.
		for b := 1; b < maxLanes; b++ {
			rotations = append(rotations, -b)
		}
	} else {
		rotations = append([]int(nil), res.Rotations...)
	}

	var bt *bootstrap.Bootstrapper
	conj := false
	if res.Boot != nil {
		if bt, err = bootstrap.NewBootstrapper(params, *res.Boot, res.InputScale); err != nil {
			return nil, err
		}
		// Bootstrap rotations are over the full slot count and
		// lane-oblivious; they are never stride-scaled.
		rotations = append(rotations, bt.RequiredRotations()...)
		conj = true
	}
	slices.Sort(rotations)
	rotations = slices.Compact(rotations)

	paramBytes, err := res.Literal.MarshalBinary()
	if err != nil {
		return nil, err
	}
	specStride := 0
	if stride > 1 {
		specStride = stride
	}
	ckksView := *res
	ckksView.Module = module
	s := &Server{
		cfg:      cfg,
		name:     prog.Name,
		module:   module,
		ckks:     &ckksView,
		params:   params,
		enc:      ckks.NewEncoder(params),
		boot:     bt,
		stride:   stride,
		maxLanes: maxLanes,
		spec: api.ProgramSpec{
			Name:        prog.Name,
			Params:      paramBytes,
			LogN:        res.Literal.LogN,
			VecLen:      prog.VecLen,
			InputLevel:  res.InputLevel,
			InputScale:  res.InputScale,
			Rotations:   rotations,
			Conjugation: conj,
			NeedRlk:     true,
			Bootstraps:  res.Bootstraps,
			BatchStride: specStride,
		},
		needRlk:   true,
		sessions:  newSessionCache(cfg.SessionBudget),
		idem:      newIdemCache(cfg.IdemEntries),
		lat:       newLatencyWindow(cfg.LatencyWindow),
		repl:      cfg.Replicator,
		log:       cfg.Logger,
		prof:      obs.NewAggregate(),
		queueWait: obs.NewHistogram(nil),
		evalHist:  obs.NewHistogram(nil),
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	rQ := params.RingQ()
	for _, k := range rotations {
		s.required = append(s.required, rQ.GaloisElementForRotation(k))
	}
	if conj {
		s.required = append(s.required, rQ.GaloisElementForConjugation())
	}
	s.sched = newScheduler(cfg.QueueDepth, cfg.Workers, s.executeGroup,
		func(*job) { s.stats.queueExpired.Add(1) })
	if maxLanes > 1 {
		s.coal = batch.NewCoalescer[*job](cfg.BatchWindow, maxLanes, s.flushBatch)
	}

	if cfg.DataDir != "" {
		if err := s.openDurability(); err != nil {
			s.sched.stop()
			return nil, err
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathProgram, s.handleProgram)
	mux.HandleFunc("POST "+api.PathSessions, s.handleRegister)
	mux.HandleFunc("DELETE "+api.PathSessions+"/{id}", s.handleDrop)
	mux.HandleFunc("POST "+api.PathInfer, s.handleInfer)
	mux.HandleFunc("GET "+api.PathHealthz, s.handleHealthz)
	mux.HandleFunc("GET "+api.PathReadyz, s.handleReadyz)
	mux.HandleFunc("POST "+api.PathReplica, s.handleReplicaApply)
	mux.HandleFunc("POST "+api.PathClusterUpdate, s.handleClusterUpdate)
	mux.HandleFunc("GET "+api.PathClusterMembership, s.handleClusterMembership)
	mux.HandleFunc("GET "+api.PathStatz, s.handleStatz)
	mux.HandleFunc("GET "+api.PathProfilez, s.handleProfilez)
	mux.HandleFunc("GET "+api.PathCostmodelz, s.handleCostmodelz)
	mux.HandleFunc("GET "+api.PathMetrics, s.handleMetrics)
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s, nil
}

// openDurability attaches the disk tier and runs crash recovery: replay
// the job journal, seed the idempotency cache with journaled successes,
// claim and re-enqueue every pending job (resuming from its checkpoint
// when one survives), then compact the journal and prune orphan
// checkpoint files. Called from New before the listener exists, so a
// post-restart retry can never race recovery for job ownership.
func (s *Server) openDurability() error {
	dur, st, err := openDurable(s.cfg.DataDir, s.cfg.DiskBudget, s.cfg.IdemEntries)
	if err != nil {
		return err
	}
	s.dur = dur
	s.restarts = dur.bumpRestarts()

	// Journaled successes become pre-completed idempotency entries:
	// post-restart retries replay them bit for bit. Oldest first, so the
	// LRU retains the most recent IdemEntries of them.
	done := st.done
	if len(done) > s.cfg.IdemEntries {
		done = done[len(done)-s.cfg.IdemEntries:]
	}
	for _, key := range done {
		c := st.completed[key]
		s.idem.restore(key, c.body, c.lane, c.stride)
	}

	// Compact to live state and drop checkpoints with no pending accept,
	// so a crash loop cannot accrete journal or checkpoint garbage. This
	// must happen before any recovery job runs: rewrite rebuilds the log
	// purely from the replayed fold, so a completion appended by a fast
	// recovered job would be silently discarded by a later rewrite.
	dur.mu.Lock()
	if err := dur.rewrite(st); err != nil {
		dur.storeErrs.Add(1)
	}
	dur.mu.Unlock()
	dur.pruneCheckpoints(st)

	// Claim every pending job's idempotency entry synchronously; the
	// actual re-execution runs in the background once workers exist. The
	// recovering gauge is raised here, before any goroutine starts, so
	// readiness observes the full backlog from the first probe.
	for _, key := range st.order {
		entry, owner := s.idem.begin(key)
		if !owner {
			continue
		}
		s.recovering.Add(1)
		go s.recoverJob(key, st.pending[key], entry)
	}
	return nil
}

// recoverJob finishes one journaled in-flight job after a restart. Any
// failure settles the idempotency entry as failed — followers get 503
// and the client's retry loop re-executes from scratch.
//
// The recovered job runs under the client's journaled deadline, not a
// fresh MaxDeadline: a client that asked for 2s of work must not have
// its job resurrected into a 10-minute zombie occupying a worker long
// after the caller gave up. Jobs whose deadline already passed are
// dropped outright (journaled as forgotten, so a retry re-executes).
func (s *Server) recoverJob(key string, a acceptRec, entry *idemEntry) {
	defer s.recovering.Add(-1)
	trace := obs.NewTraceID()
	log := s.log.With(slog.String("trace", trace), slog.String("idem_key", key))
	if err := fault.Inject(fault.ServeRecoverErr); err != nil {
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	budget := s.cfg.MaxDeadline
	if !a.deadline.IsZero() {
		rem := time.Until(a.deadline)
		if rem <= 0 {
			log.Info("recover.expired", slog.Time("deadline", a.deadline))
			s.completeIdem(entry, false, nil, 0, 0)
			return
		}
		if rem < budget {
			budget = rem
		}
	}
	sess, ok := s.lookupSession(a.sessID)
	if !ok {
		// The keys did not survive (disk eviction or RAM-only
		// registration); the client re-registers and re-executes.
		log.Info("recover.nosession", slog.String("session", a.sessID))
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(a.input); err != nil {
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	ctx, cancel := context.WithTimeout(obs.WithTrace(context.Background(), trace), budget)
	defer cancel()
	resume := s.dur.readCheckpoint(key)
	log.Info("recover.start",
		slog.String("session", a.sessID),
		slog.Duration("budget", budget),
		slog.Bool("checkpoint", resume != nil))
	j := &job{ctx: ctx, sess: sess, ct: ct, done: make(chan jobResult, 1),
		enqueued: time.Now(), idemKey: key, resume: resume}
	if !s.enqueueBlocking(j) {
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	res := <-j.done
	if res.err != nil {
		log.Warn("recover.failed", slog.String("err", res.err.Error()))
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	out, err := res.ct.MarshalBinary()
	if err != nil {
		s.completeIdem(entry, false, nil, 0, 0)
		return
	}
	s.completeIdem(entry, true, out, res.lane, res.stride)
	s.stats.served.Add(1)
	log.Info("recover.done")
}

// enqueueBlocking submits a recovered job as a singleton group, waiting
// for queue space rather than bouncing 429 (nobody is holding an HTTP
// connection open for it). Returns false if the server is draining.
// Recovered jobs never coalesce: their journaled input is a complete
// ciphertext and their checkpoint (if any) is mid-execution state that
// only makes sense solo.
func (s *Server) enqueueBlocking(j *job) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	s.sched.queue <- &batchGroup{jobs: []*job{j}}
	return true
}

// lookupSession resolves a session id through both tiers: the RAM LRU
// first, then the disk spill, promoting a hit back into RAM so repeat
// requests pay the decode once.
func (s *Server) lookupSession(id string) (*session, bool) {
	if sess, ok := s.sessions.get(id); ok {
		return sess, true
	}
	if s.dur == nil {
		return nil, false
	}
	raw, err := s.dur.loadSession(id)
	if err != nil {
		return nil, false
	}
	keys := &ckks.EvaluationKeySet{}
	if err := keys.UnmarshalBinary(raw); err != nil {
		s.dur.storeErrs.Add(1)
		return nil, false
	}
	sess, err := s.sessions.putWithID(id, keys, int64(len(raw)))
	if err != nil {
		return nil, false
	}
	s.stats.sessionsRecovered.Add(1)
	return sess, true
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Spec returns the program spec served at /v1/program.
func (s *Server) Spec() api.ProgramSpec { return s.spec }

// Drain stops accepting inference work, waits for every accepted request
// to finish (each carries a deadline, so the wait is bounded), then
// stops the workers. Safe to call once; the HTTP listener should be shut
// down alongside it.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		// Order matters: new arrivals are already refused (draining),
		// so sweep the coalescer's open windows into the queue first
		// (blocking — accepted work must run), then flip stopped so no
		// flush can send again, then close the queue.
		if s.coal != nil {
			s.coal.CloseAndFlush()
		}
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		s.sched.stop()
		if s.dur != nil {
			s.dur.close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tryEnqueue submits a singleton group unless the server drains or the
// queue is full. The read lock pairs with Drain's write lock so no send
// can race the queue close.
func (s *Server) tryEnqueue(j *job) (ok, draining bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false, true
	}
	select {
	case s.sched.queue <- &batchGroup{jobs: []*job{j}}:
		return true, false
	default:
		return false, false
	}
}

// Sentinel results for jobs a batch flush could not hand to the queue;
// finish maps them onto the same 429/503 responses the solo admission
// path produces.
var (
	errQueueFull    = errors.New("serve: queue full at batch flush")
	errDrainingDrop = errors.New("serve: server draining")
)

// flushBatch is the coalescer's flush callback: hand one closed window
// to the worker queue as a group. A timer- or max-triggered flush
// load-sheds on a full queue exactly like the solo path (each member
// answers 429); the final drain-time sweep blocks instead, because
// every member was already accepted and must be served before the
// workers stop. Holding the read lock across the send pairs with
// Drain's write-locked stopped flip, so no send races the queue close.
func (s *Server) flushBatch(jobs []*job, final bool) {
	if len(jobs) == 1 {
		s.stats.soloFallbacks.Add(1)
	}
	g := &batchGroup{jobs: jobs}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.stopped {
		for _, j := range jobs {
			j.done <- jobResult{err: errDrainingDrop}
		}
		return
	}
	if final {
		s.sched.queue <- g
		return
	}
	select {
	case s.sched.queue <- g:
	default:
		for _, j := range jobs {
			j.done <- jobResult{err: errQueueFull}
		}
	}
}

// executeGroup is the worker entry point: singleton groups run the solo
// path (which keeps checkpointing for journaled jobs), multi-job groups
// run the fused batched evaluation. Either way every job's done channel
// is settled here.
func (s *Server) executeGroup(g *batchGroup) {
	if len(g.jobs) == 1 {
		j := g.jobs[0]
		j.done <- s.execute(j)
		return
	}
	s.executeBatch(g)
}

// execute runs one job on a fresh per-request machine around the shared
// read-only parts; it is called from worker goroutines.
//
// It is also the serve-side panic isolation boundary: vm.RunCtx already
// recovers panics below itself, so the recover here catches everything
// outside it — test hooks, machine construction, the armed
// serve.worker.panic injection point — and converts it to the same typed
// failure. Either way the worker goroutine survives, the pool keeps its
// size, and the now-suspect pooled scratch is discarded rather than
// recycled.
func (s *Server) execute(j *job) (res jobResult) {
	defer func() {
		if rec := recover(); rec != nil {
			s.params.DiscardScratch()
			res = jobResult{err: fault.FromPanic("serve.worker", rec)}
		}
		var re *fault.RuntimeError
		if res.err != nil && errors.As(res.err, &re) && re.Code == fault.CodeEvalPanic {
			s.stats.panics.Add(1)
		}
	}()
	if s.beforeExec != nil {
		s.beforeExec(j)
	}
	wait := time.Since(j.enqueued)
	s.queueWait.Observe(wait)
	log := obs.Logger(j.ctx, s.log)
	log.Info("infer.exec", slog.Duration("queue_wait", wait))
	fault.InjectPanic(fault.ServeWorkerPanic)
	m := vm.NewMachine(s.params, j.sess.keys, s.boot, s.enc)
	m.StepDelay = s.cfg.InstrDelay
	m.Prof = obs.NewRunProfile()
	if s.dur != nil && j.idemKey != "" {
		key := j.idemKey
		m.Ckpt = &vm.CheckpointPolicy{
			EveryN: s.cfg.CheckpointEveryN,
			Every:  s.cfg.CheckpointEvery,
			Sink: func(snap []byte) error {
				log.Debug("infer.checkpoint", slog.Int("bytes", len(snap)))
				return s.dur.writeCheckpoint(key, snap)
			},
		}
	}
	in := j.ct
	if j.resume != nil {
		// A bad checkpoint is not fatal: fall back to re-executing the
		// journaled input from instruction 0.
		if err := m.Restore(s.module, j.resume); err == nil {
			in = nil
			s.stats.jobsResumed.Add(1)
		}
	}
	evalStart := time.Now()
	out, err := m.RunCtx(j.ctx, s.module, in)
	eval := time.Since(evalStart)
	s.evalHist.Observe(eval)
	s.prof.Merge(m.Prof, eval)
	if err != nil {
		log.Warn("infer.eval", slog.Duration("eval", eval), slog.String("err", err.Error()))
	} else {
		log.Info("infer.eval", slog.Duration("eval", eval),
			slog.Uint64("instrs", m.Prof.Steps()))
	}
	// Under a batched server even a solo run executes the
	// lane-transformed module, so the caller's result lives in lane 0 of
	// a strided layout and the reply must say so.
	return jobResult{ct: out, lane: 0, stride: s.stride, err: err}
}

// executeBatch runs a coalesced multi-job group as one fused
// evaluation: each member's lane-0 ciphertext is rotated into its own
// lane (Rotate by −b costs one key switch, no level), the rotated
// inputs are summed into a single packed ciphertext — lanes are
// disjoint by construction, so addition is exact — and the transformed
// module runs once. Every surviving member receives the same output
// ciphertext tagged with its lane.
//
// It is the batch-wide panic and failure boundary the batch.flush.panic
// injection point exercises: a panic or evaluation error fails every
// job in THIS group (each answers 500) and nothing outside it — the
// worker survives, other groups are untouched.
func (s *Server) executeBatch(g *batchGroup) {
	jobs := g.jobs
	fail := func(err error) {
		var re *fault.RuntimeError
		if errors.As(err, &re) && re.Code == fault.CodeEvalPanic {
			s.stats.panics.Add(1)
		}
		for _, j := range jobs {
			j.done <- jobResult{err: err}
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.params.DiscardScratch()
			fail(fault.FromPanic("serve.worker", rec))
		}
	}()

	// A member whose input is not at the compiled level/scale would
	// poison the whole pack; fail it alone before touching the others.
	live := jobs[:0]
	for _, j := range jobs {
		if j.ct.Level() != s.spec.InputLevel || !scaleClose(j.ct.Scale, s.spec.InputScale) {
			j.done <- jobResult{err: fmt.Errorf(
				"serve: batched input at level %d scale %g, compiled for level %d scale %g",
				j.ct.Level(), j.ct.Scale, s.spec.InputLevel, s.spec.InputScale)}
			continue
		}
		live = append(live, j)
	}
	jobs = live
	switch len(jobs) {
	case 0:
		return
	case 1:
		jobs[0].done <- s.execute(jobs[0])
		return
	}

	s.stats.batches.Add(1)
	s.stats.batchedJobs.Add(uint64(len(jobs)))

	// The fused run serves every member, so it gets the most patient
	// member's deadline; a member whose own deadline lapses mid-flight
	// times out at its handler without dooming its lane-mates.
	trace := obs.NewTraceID()
	deadline := time.Time{}
	for _, j := range jobs {
		if d, ok := j.ctx.Deadline(); ok && d.After(deadline) {
			deadline = d
		}
		if s.beforeExec != nil {
			s.beforeExec(j)
		}
		wait := time.Since(j.enqueued)
		s.queueWait.Observe(wait)
	}
	ctx := obs.WithTrace(context.Background(), trace)
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	log := obs.Logger(ctx, s.log)
	log.Info("batch.exec", slog.Int("jobs", len(jobs)), slog.Int("stride", s.stride))

	fault.InjectPanic(fault.BatchFlushPanic)
	m := vm.NewMachine(s.params, jobs[0].sess.keys, s.boot, s.enc)
	m.StepDelay = s.cfg.InstrDelay
	m.Prof = obs.NewRunProfile()

	in := jobs[0].ct
	for b := 1; b < len(jobs); b++ {
		rot, err := m.Eval.Rotate(jobs[b].ct, -b)
		if err == nil {
			in, err = m.Eval.Add(in, rot)
		}
		if err != nil {
			fail(fmt.Errorf("serve: packing lane %d: %w", b, err))
			return
		}
	}

	evalStart := time.Now()
	out, err := m.RunCtx(ctx, s.module, in)
	eval := time.Since(evalStart)
	s.evalHist.Observe(eval)
	s.prof.Merge(m.Prof, eval)
	if err != nil {
		log.Warn("batch.eval", slog.Duration("eval", eval), slog.String("err", err.Error()))
		fail(err)
		return
	}
	log.Info("batch.eval", slog.Duration("eval", eval),
		slog.Uint64("instrs", m.Prof.Steps()))
	for b, j := range jobs {
		j.done <- jobResult{ct: out, lane: b, stride: s.stride}
	}
}

// scaleClose mirrors the vm's scale tolerance (1e-6 relative).
func scaleClose(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*b
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorReply{Error: fmt.Sprintf(format, args...)})
}

// setRetryAfter stamps the configured back-off hint on a response about
// to carry a retryable rejection (429 queue-full, 503 draining or
// recovering): every load-shed answer tells the client when to come
// back, so routers and retry loops back off instead of hammering.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter/time.Second)))
}

// writeErrCode writes a failure with a stable machine-readable code from
// the fault taxonomy alongside the human-readable message.
func writeErrCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorReply{Error: fmt.Sprintf(format, args...), Code: code})
}

// readBody reads a bounded octet-stream body.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return body, nil
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.spec)
}

// validateKeys rejects bundles that would fail mid-request: the server
// checks key completeness at registration time, when the client can
// still fix it, rather than at evaluation time.
func (s *Server) validateKeys(keys *ckks.EvaluationKeySet) error {
	if s.needRlk && keys.Rlk == nil {
		return fmt.Errorf("bundle is missing the relinearization key")
	}
	var missing []uint64
	for _, gal := range s.required {
		if _, err := keys.GaloisKeyFor(gal); err != nil {
			missing = append(missing, gal)
		}
	}
	if len(missing) > 0 {
		if len(missing) > 8 {
			return fmt.Errorf("bundle is missing %d Galois keys (first: %v)", len(missing), missing[:8])
		}
		return fmt.Errorf("bundle is missing Galois keys for elements %v", missing)
	}
	return nil
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, s.cfg.MaxUploadBytes)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "key upload: %v", err)
		return
	}
	keys := &ckks.EvaluationKeySet{}
	if err := keys.UnmarshalBinary(body); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding key bundle: %v", err)
		return
	}
	if err := s.validateKeys(keys); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A cluster router pre-assigns the session id (X-ACE-Session on the
	// registration) so the id's hash placement is decided before the id
	// exists anywhere: the router mints it, picks this shard by ring
	// lookup, and every process can later re-derive primary and replica
	// from the id alone. Anything but the exact newSessionID shape is
	// rejected — ids become file names and ring keys.
	var sess *session
	if want := r.Header.Get(api.HeaderSession); want != "" {
		if !validSessionID(want) {
			writeErr(w, http.StatusBadRequest, "pre-assigned session id must be 32 lowercase hex characters")
			return
		}
		sess, err = s.sessions.putWithID(want, keys, int64(len(body)))
	} else {
		sess, err = s.sessions.put(keys, int64(len(body)))
	}
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	if s.dur != nil {
		// Spill the bundle so the session survives both RAM eviction and
		// restarts. Fail open: a disk error leaves the session RAM-only
		// and is counted in storeErrs rather than failing registration.
		_ = s.dur.saveSession(sess.id, body)
	}
	if s.repl != nil {
		// Synchronous: when the 201 below reaches the client, the replica
		// already holds the keys — that is what makes shard death cost
		// zero re-registration. Fail open past retries (counted); a lone
		// surviving shard still serves.
		if err := s.repl.ShipSession(sess.id, body); err != nil {
			s.stats.replicaShipErrs.Add(1)
			s.log.Warn("replica.ship.session", slog.String("session", sess.id),
				slog.String("err", err.Error()))
		}
	}
	writeJSON(w, http.StatusCreated, api.SessionReply{
		SessionID: sess.id,
		KeyBytes:  sess.bytes,
		GaloisLen: len(keys.Galois),
	})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ram := s.sessions.drop(id)
	disk := s.dur != nil && s.dur.dropSession(id)
	if !ram && !disk {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// deadline resolves the per-request deadline from the header, clamped to
// the configured maximum.
func (s *Server) deadline(r *http.Request) (time.Duration, error) {
	h := r.Header.Get(api.HeaderDeadlineMs)
	if h == "" {
		return s.cfg.DefaultDeadline, nil
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("bad %s header %q", api.HeaderDeadlineMs, h)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// maxIdemKeyBytes caps the client-chosen idempotency key. Keys are
// journaled behind uint16 length framing and live in in-memory maps for
// the LRU's lifetime, so an unbounded header is rejected with 400.
const maxIdemKeyBytes = 256

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get(api.HeaderSession)
	if id == "" {
		id = r.URL.Query().Get("session")
	}
	if id == "" {
		writeErr(w, http.StatusBadRequest, "missing %s header", api.HeaderSession)
		return
	}
	idemKey := r.Header.Get(api.HeaderIdemKey)
	if len(idemKey) > maxIdemKeyBytes {
		// The key becomes a journal record field behind a uint16 length —
		// an unbounded client string is a framing hazard, not a retry token.
		writeErr(w, http.StatusBadRequest, "%s of %d bytes exceeds the %d-byte limit",
			api.HeaderIdemKey, len(idemKey), maxIdemKeyBytes)
		return
	}
	d, err := s.deadline(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := readBody(w, r, s.cfg.MaxCipherBytes)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "ciphertext: %v", err)
		return
	}
	ct := &ckks.Ciphertext{}
	if err := ct.UnmarshalBinary(body); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding ciphertext: %v", err)
		return
	}
	sess, ok := s.lookupSession(id)
	if !ok {
		// Stamp the adopted membership epoch: a 404 here after a topology
		// change usually means the client's endpoint list is stale, and
		// the epoch tells it to re-fetch /v1/cluster/membership.
		s.stampEpoch(w)
		writeErr(w, http.StatusNotFound, "unknown session %s (register keys first)", id)
		return
	}

	// One trace id per request, minted here unless the client supplied a
	// valid one, echoed on the response and attached to the context so
	// every structured event — accept through reply, including worker
	// events on other goroutines — carries the same greppable id.
	trace := r.Header.Get(api.HeaderTrace)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	w.Header().Set(api.HeaderTrace, trace)
	deadline := time.Now().Add(d)

	ctx, cancel := context.WithTimeout(obs.WithTrace(r.Context(), trace), d)
	defer cancel()
	log := obs.Logger(ctx, s.log)
	log.Info("infer.accept",
		slog.String("session", sess.id),
		slog.String("idem_key", idemKey),
		slog.Int64("deadline_ms", d.Milliseconds()),
		slog.Int("cipher_bytes", len(body)))

	// Idempotency: a keyed request either owns the execution, replays a
	// stored success bit for bit, or attaches to the in-flight attempt.
	// Owned keyed executions are additionally journaled (with the input
	// ciphertext) before entering the queue, so a crash at any later
	// point leaves enough on disk to finish the job after restart.
	var entry *idemEntry
	var idemFull string
	if idemKey != "" {
		idemFull = sess.id + "/" + idemKey
		var owner bool
		entry, owner = s.idem.begin(idemFull)
		if !owner {
			s.followIdem(w, ctx, entry, d)
			return
		}
		if s.dur != nil {
			// Fail open on a journal error: the job still runs, it just
			// will not survive a crash (counted in storeErrs).
			_ = s.dur.accept(idemFull, sess.id, deadline, body)
		}
	}

	j := &job{ctx: ctx, sess: sess, ct: ct, done: make(chan jobResult, 1), enqueued: time.Now(), idemKey: idemFull}
	if s.coal != nil {
		// Batched admission: the job waits in the session's coalescing
		// window; the flush callback performs the actual queue send and
		// reports full-queue load shedding through the job's done
		// channel (finish maps it to the same 429).
		if !s.coal.Add(sess.id, j) {
			s.completeIdem(entry, false, nil, 0, 0)
			s.setRetryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		log.Info("infer.coalesce", slog.String("session", sess.id))
	} else {
		ok, draining := s.tryEnqueue(j)
		if draining {
			s.completeIdem(entry, false, nil, 0, 0)
			s.setRetryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		if !ok {
			s.completeIdem(entry, false, nil, 0, 0)
			s.stats.rejected.Add(1)
			log.Info("infer.reject", slog.Int("queue_depth", s.cfg.QueueDepth))
			s.setRetryAfter(w)
			writeErr(w, http.StatusTooManyRequests, "queue full (%d deep)", s.cfg.QueueDepth)
			return
		}
		log.Info("infer.enqueue", slog.Int("queue_depth", len(s.sched.queue)))
	}

	select {
	case res := <-j.done:
		s.finish(w, j, entry, res)
	case <-ctx.Done():
		// Still queued or mid-evaluation; the worker observes the same
		// context and abandons the job. The idempotency entry dies with
		// the attempt — the execution did not complete, so a retry must
		// re-execute.
		s.completeIdem(entry, false, nil, 0, 0)
		log.Info("infer.reply", slog.String("outcome", "timeout"))
		s.failCtx(w, ctx.Err(), d)
	}
}

// followIdem serves a request whose idempotency key is already known:
// wait for the owning execution (bounded by our own deadline), then
// replay its stored bytes, or — when the owner failed — answer 503 so
// the client's retry loop re-issues against a now-clean key.
func (s *Server) followIdem(w http.ResponseWriter, ctx context.Context, entry *idemEntry, d time.Duration) {
	select {
	case <-entry.done:
	case <-ctx.Done():
		s.failCtx(w, ctx.Err(), d)
		return
	}
	if !entry.ok {
		s.setRetryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, "previous attempt under this idempotency key failed; retry")
		return
	}
	s.stats.idemReplays.Add(1)
	w.Header().Set("Content-Type", api.ContentTypeBinary)
	w.Header().Set(api.HeaderIdemReplayed, "1")
	setLaneHeaders(w, entry.lane, entry.stride)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(entry.body)
}

// completeIdem finalizes an owned idempotency entry; nil entries (no key
// on the request) are ignored. With a disk tier attached the outcome is
// journaled first — success persists the reply bytes for post-restart
// replay, failure (or an abandoned attempt) forgets the job so a retry
// re-executes rather than resuming a doomed checkpoint. A batched
// success additionally records the lane the caller's slots live in, so
// a replay — in-memory or post-restart — carries the same lane headers
// as the original response.
func (s *Server) completeIdem(entry *idemEntry, ok bool, body []byte, lane, stride int) {
	if entry == nil {
		return
	}
	if s.dur != nil {
		if ok {
			s.dur.complete(entry.key, body, lane, stride)
		} else {
			s.dur.forget(entry.key)
		}
	}
	if s.repl != nil && ok {
		// Asynchronous: the settlement rides the shipper's ordered queue,
		// off the reply path, replicating the exact reply bytes so a
		// failover retry replays bit-identically. Failures and abandoned
		// attempts ship nothing: no completion was ever replicated under
		// this key, so there is nothing to withdraw — and a forget crossing
		// another shard's legitimate completion (a hedged duplicate losing
		// the race) would destroy a settled result.
		s.repl.ShipComplete(entry.key, lane, stride, body)
	}
	s.idem.complete(entry, ok, body, lane, stride)
}

// finish writes a completed job's response. Evaluation failures carry a
// stable code from the fault taxonomy so clients and dashboards can
// distinguish a recovered worker panic from an ordinary evaluation
// error without parsing message text.
func (s *Server) finish(w http.ResponseWriter, j *job, entry *idemEntry, res jobResult) {
	log := obs.Logger(j.ctx, s.log)
	if res.err != nil {
		s.completeIdem(entry, false, nil, 0, 0)
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			log.Info("infer.reply", slog.String("outcome", "timeout"))
			s.failCtx(w, res.err, 0)
			return
		}
		if errors.Is(res.err, errQueueFull) {
			s.stats.rejected.Add(1)
			log.Info("infer.reject", slog.Int("queue_depth", s.cfg.QueueDepth))
			s.setRetryAfter(w)
			writeErr(w, http.StatusTooManyRequests, "queue full (%d deep)", s.cfg.QueueDepth)
			return
		}
		if errors.Is(res.err, errDrainingDrop) {
			s.setRetryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.stats.failed.Add(1)
		re := fault.AsRuntime(fault.CodeEvalError, "serve.infer", res.err)
		log.Warn("infer.reply", slog.String("outcome", "error"), slog.String("code", re.Code))
		writeErrCode(w, http.StatusInternalServerError, re.Code, "evaluation failed: %v", res.err)
		return
	}
	out, err := res.ct.MarshalBinary()
	if err != nil {
		s.completeIdem(entry, false, nil, 0, 0)
		s.stats.failed.Add(1)
		writeErrCode(w, http.StatusInternalServerError, fault.CodeEvalError, "encoding result: %v", err)
		return
	}
	s.completeIdem(entry, true, out, res.lane, res.stride)
	s.stats.served.Add(1)
	s.lat.add(time.Since(j.enqueued))
	log.Info("infer.reply", slog.String("outcome", "ok"),
		slog.Duration("total", time.Since(j.enqueued)), slog.Int("bytes", len(out)))
	w.Header().Set("Content-Type", api.ContentTypeBinary)
	setLaneHeaders(w, res.lane, res.stride)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out)
}

// setLaneHeaders tags a batched reply with the caller's lane; solo
// replies (stride <= 1) stay header-free, keeping the unbatched wire
// format byte-identical to the pre-batching server.
func setLaneHeaders(w http.ResponseWriter, lane, stride int) {
	if stride <= 1 {
		return
	}
	w.Header().Set(api.HeaderLane, strconv.Itoa(lane))
	w.Header().Set(api.HeaderLaneStride, strconv.Itoa(stride))
}

// failCtx maps a context error to its HTTP status: an expired deadline is
// 504; a client that went away gets a best-effort 499 (nobody reads it).
func (s *Server) failCtx(w http.ResponseWriter, err error, d time.Duration) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.stats.timedOut.Add(1)
		if d > 0 {
			writeErr(w, http.StatusGatewayTimeout, "deadline of %s exceeded", d)
		} else {
			writeErr(w, http.StatusGatewayTimeout, "deadline exceeded")
		}
		return
	}
	w.WriteHeader(499) // client closed request (nginx convention)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, api.Healthz{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, api.Healthz{Status: "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatzSnapshot())
}

// StatzSnapshot assembles the /v1/statz counters. The daemon also calls
// it on shutdown to flush the final state to the log, so post-mortem
// counters survive the process.
func (s *Server) StatzSnapshot() api.Statz {
	count, used, hits, misses, evictions := s.sessions.snapshot()
	p50, p90, p99 := s.lat.quantiles()
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	st := api.Statz{
		Served:           s.stats.served.Load(),
		Rejected:         s.stats.rejected.Load(),
		TimedOut:         s.stats.timedOut.Load(),
		Failed:           s.stats.failed.Load(),
		Panics:           s.stats.panics.Load(),
		IdemReplays:      s.stats.idemReplays.Load(),
		QueueExpired:     s.stats.queueExpired.Load(),
		Batches:          s.stats.batches.Load(),
		BatchedJobs:      s.stats.batchedJobs.Load(),
		SoloFallbacks:    s.stats.soloFallbacks.Load(),
		BatchLanes:       s.maxLanes,
		BatchStride:      s.stride,
		FaultsFired:      fault.TotalFired(),
		QueueDepth:       len(s.sched.queue),
		QueueCap:         s.cfg.QueueDepth,
		Workers:          s.cfg.Workers,
		Draining:         draining,
		Sessions:         count,
		SessionBytes:     used,
		SessionBudget:    s.cfg.SessionBudget,
		SessionHits:      hits,
		SessionMisses:    misses,
		SessionEvictions: evictions,
		LatencyMsP50:     p50,
		LatencyMsP90:     p90,
		LatencyMsP99:     p99,
	}
	st.Restarts = s.restarts
	st.SessionsRecovered = s.stats.sessionsRecovered.Load()
	st.JobsResumed = s.stats.jobsResumed.Load()
	st.PendingRecovery = s.recovering.Load()
	st.ReplicaSessions = s.stats.replicaSessions.Load()
	st.ReplicaResults = s.stats.replicaResults.Load()
	st.ReplicaShipErrs = s.stats.replicaShipErrs.Load()
	if s.dur != nil {
		st.CheckpointBytes = s.dur.ckptWritten.Load()
		st.StoreBytes = s.dur.diskBytes()
		st.StoreErrs = s.dur.storeErrs.Load()
	}
	return st
}
