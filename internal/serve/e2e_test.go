package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/fheclient"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/ring"
	"antace/internal/serve/api"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

// compileLinear lowers the paper's running-example model to an
// executable CKKS program, mirroring the vm package's test pipeline.
func compileLinear(t testing.TB) (Program, *vecir.Result) {
	t.Helper()
	m, err := onnx.BuildLinear(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckksir.Lower(sm, ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	return Program{Name: "linear_infer", CKKS: res, VecLen: vres.InLayout.L}, vres
}

func startServer(t testing.TB, cfg Config) (*Server, *httptest.Server, *vecir.Result) {
	t.Helper()
	prog, vres := compileLinear(t)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts, vres
}

func testInput(n int) []float64 {
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i%5)/5 - 0.4
	}
	return in
}

// checkAgainstReference compares decrypted output slots against the
// VECTOR IR executor on the same input.
func checkAgainstReference(t *testing.T, vres *vecir.Result, input, got []float64) {
	t.Helper()
	want, err := vecir.Run(vres.Module.Main(), input)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < vres.OutLayout.C; k++ {
		slot := vres.OutLayout.Slot(k, 0, 0)
		if math.Abs(got[slot]-want[slot]) > 1e-4 {
			t.Fatalf("class %d: served %g, reference %g", k, got[slot], want[slot])
		}
	}
}

// TestLoopbackInference is the serving layer's end-to-end check: spec
// fetch, key generation, session registration and encrypted inference
// all cross a real HTTP boundary through the full wire format, and the
// decrypted result must match the plaintext reference.
func TestLoopbackInference(t *testing.T) {
	// DataDir makes the smoke test cover the durable serving path too:
	// registration spills keys, the keyed request journals, and statz
	// reports store bytes.
	s, ts, vres := startServer(t, Config{Workers: 2, DataDir: t.TempDir()})
	ctx := context.Background()

	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec().VecLen != vres.InLayout.L {
		t.Fatalf("spec vec_len %d, want %d", c.Spec().VecLen, vres.InLayout.L)
	}
	if _, err := c.Infer(ctx, testInput(vres.InLayout.L)); err == nil {
		t.Fatal("inference before Register must fail")
	}
	id, err := c.Register(ctx, ring.SeedFromInt(21))
	if err != nil {
		t.Fatal(err)
	}
	if id == "" || c.SessionID() != id {
		t.Fatalf("bad session id %q", id)
	}

	input := testInput(vres.InLayout.L)
	got, err := c.Infer(ctx, input)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, vres, input, got)

	// Counters reflect the round trip.
	st := fetchStatz(t, ts.URL)
	if st.Served != 1 || st.Sessions != 1 || st.SessionHits != 1 {
		t.Fatalf("statz after one request: %+v", st)
	}
	if st.LatencyMsP50 <= 0 {
		t.Fatalf("latency quantiles not recorded: %+v", st)
	}
	if st.StoreBytes <= 0 {
		t.Fatalf("durable smoke: store_bytes = %d, want > 0", st.StoreBytes)
	}

	// Dropping the session invalidates it.
	if err := c.Drop(ctx); err != nil {
		t.Fatal(err)
	}
	_ = s
}

// TestConcurrentClientsShareSession exercises the documented concurrency
// contract under -race: several goroutines share one registered session
// while workers evaluate with per-request machines.
func TestConcurrentClientsShareSession(t *testing.T) {
	_, ts, vres := startServer(t, Config{Workers: 4, QueueDepth: 32})
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(22)); err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				input := testInput(vres.InLayout.L)
				input[0] = float64(g) / 10
				got, err := c.Infer(ctx, input)
				if err != nil {
					errs <- err
					return
				}
				want, err := vecir.Run(vres.Module.Main(), input)
				if err != nil {
					errs <- err
					return
				}
				slot := vres.OutLayout.Slot(0, 0, 0)
				if math.Abs(got[slot]-want[slot]) > 1e-4 {
					errs <- errors.New("concurrent inference diverged from reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := fetchStatz(t, ts.URL)
	if st.Served != goroutines*perG {
		t.Fatalf("served %d, want %d", st.Served, goroutines*perG)
	}
}

// TestQueueFullAndDeadline pins the two robustness paths: a full queue
// answers 429 with Retry-After, and a deadline expiring while queued
// answers 504. A test hook parks the single worker so both states are
// deterministic.
func TestQueueFullAndDeadline(t *testing.T) {
	prog, vres := compileLinear(t)
	s, err := New(prog, Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	running := make(chan struct{}, 8)
	s.beforeExec = func(*job) {
		running <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(23)); err != nil {
		t.Fatal(err)
	}
	// This test pins the raw wire behavior (one 429, one 504), so switch
	// off the client's automatic retries.
	c.SetRetryPolicy(fheclient.RetryPolicy{MaxAttempts: 1})
	input := testInput(vres.InLayout.L)

	// Request 1 occupies the worker (parked on the gate).
	r1 := make(chan error, 1)
	go func() {
		rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		_, err := c.Infer(rctx, input)
		r1 <- err
	}()
	<-running

	// Request 2 fills the queue; its deadline expires while queued.
	r2 := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		_, err := c.Infer(dctx, input)
		r2 <- err
	}()
	waitQueueDepth(t, ts.URL, 1)

	// Request 3 finds the queue full: 429 with a Retry-After hint.
	_, err = c.Infer(ctx, input)
	var apiErr *fheclient.APIError
	if !errors.As(err, &apiErr) || !apiErr.IsQueueFull() {
		t.Fatalf("expected queue-full 429, got %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("429 carried no Retry-After: %+v", apiErr)
	}

	// Request 2 times out in the queue: 504.
	err = <-r2
	if !errors.As(err, &apiErr) || !apiErr.IsDeadline() {
		t.Fatalf("expected deadline 504, got %v", err)
	}

	// Release the worker: request 1 completes normally.
	release()
	if err := <-r1; err != nil {
		t.Fatal(err)
	}

	st := fetchStatz(t, ts.URL)
	if st.Served != 1 || st.Rejected != 1 || st.TimedOut != 1 {
		t.Fatalf("counters after the storm: %+v", st)
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
}

// TestDrainRefusesNewWork covers the SIGTERM path: after Drain, health
// reports draining and inference is refused with 503, while already
// accepted work has finished by construction.
func TestDrainRefusesNewWork(t *testing.T) {
	prog, vres := compileLinear(t)
	s, err := New(prog, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(24)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Infer(ctx, testInput(vres.InLayout.L)); err != nil {
		t.Fatal(err)
	}

	dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(dctx); err != nil { // idempotent
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + api.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	_, err = c.Infer(ctx, testInput(vres.InLayout.L))
	var apiErr *fheclient.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("expected 503 while draining, got %v", err)
	}
}

// TestRegisterRejectsIncompleteBundle: a key bundle missing required
// rotation keys is refused at registration time with a message naming
// the gap, not at evaluation time.
func TestRegisterRejectsIncompleteBundle(t *testing.T) {
	s, ts, _ := startServer(t, Config{Workers: 1})
	params, err := ckks.ParamsFromBytes(s.Spec().Params)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(25))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: map[uint64]*ckks.GaloisKey{}, // no rotation keys at all
	}
	bundle, err := keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+api.PathSessions, api.ContentTypeBinary, strings.NewReader(string(bundle)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incomplete bundle accepted with %d", resp.StatusCode)
	}
}

// TestInferUnknownSession: 404 before any registration.
func TestInferUnknownSession(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+api.PathInfer, strings.NewReader("junk"))
	req.Header.Set(api.HeaderSession, "deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expected 400/404, got %d", resp.StatusCode)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func fetchStatz(t testing.TB, base string) api.Statz {
	t.Helper()
	resp, err := http.Get(base + api.PathStatz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.Statz
	if err := jsonDecode(resp, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitQueueDepth(t testing.TB, base string, depth int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if fetchStatz(t, base).QueueDepth >= depth {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", depth)
}
