package serve

import (
	"bytes"
	"testing"
)

// TestIdemRestorePromotesOverAbandonedAttempt: a replicated completion
// arriving while a local attempt under the same key is in flight (a
// hedged duplicate racing the original's shipped settlement) must not
// be lost when that local attempt is abandoned — the stashed bytes are
// promoted and later retries replay them.
func TestIdemRestorePromotesOverAbandonedAttempt(t *testing.T) {
	c := newIdemCache(8)
	entry, owner := c.begin("sess/k")
	if !owner {
		t.Fatal("first begin did not own the key")
	}

	// The authoritative settlement lands from the replica stream while
	// the local attempt is still running.
	c.restore("sess/k", []byte("settled"), 3, 4)

	// The local attempt is abandoned (hedge loser cancelled): instead of
	// forgetting the key, the replicated result takes its place.
	c.complete(entry, false, nil, 0, 0)

	again, owner := c.begin("sess/k")
	if owner {
		t.Fatal("key was forgotten despite a stashed replicated completion")
	}
	<-again.done
	if !again.ok || !bytes.Equal(again.body, []byte("settled")) || again.lane != 3 || again.stride != 4 {
		t.Fatalf("promoted entry = ok=%v body=%q lane=%d stride=%d, want the replicated settlement",
			again.ok, again.body, again.lane, again.stride)
	}
}

// TestIdemRestoreDoesNotOverrideLocalSuccess: a stash must never clobber
// a local attempt that completes successfully — its own bytes win (they
// are bit-identical by determinism anyway).
func TestIdemRestoreDoesNotOverrideLocalSuccess(t *testing.T) {
	c := newIdemCache(8)
	entry, _ := c.begin("sess/k")
	c.restore("sess/k", []byte("replicated"), 0, 0)
	c.complete(entry, true, []byte("local"), 1, 2)

	again, owner := c.begin("sess/k")
	if owner {
		t.Fatal("completed key was not retained")
	}
	if !bytes.Equal(again.body, []byte("local")) || again.lane != 1 || again.stride != 2 {
		t.Fatalf("entry = %q lane=%d stride=%d, want the local success", again.body, again.lane, again.stride)
	}
}

// TestIdemRestoreCompletedUntouched: restore against an already-retained
// success is a no-op.
func TestIdemRestoreCompletedUntouched(t *testing.T) {
	c := newIdemCache(8)
	entry, _ := c.begin("sess/k")
	c.complete(entry, true, []byte("first"), 0, 0)
	c.restore("sess/k", []byte("second"), 0, 0)

	again, _ := c.begin("sess/k")
	if !bytes.Equal(again.body, []byte("first")) {
		t.Fatalf("retained body %q, want the original", again.body)
	}
}
