package serve

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// buildAced compiles the real daemon binary once per test run.
func buildAced(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aced")
	cmd := exec.Command("go", "build", "-o", bin, "antace/cmd/aced")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building aced: %v\n%s", err, out)
	}
	return bin
}

// startAced launches the daemon and waits for its -addr-file, which the
// binary writes only after the listener is bound and recovery has
// claimed all journaled jobs. The returned buffer accumulates the
// daemon's combined output; read it only after the process has exited
// (exec.Cmd writes into it from a background goroutine until then).
func startAced(t *testing.T, bin string, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile}, args...)...)
	logs := new(bytes.Buffer)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	deadline := time.Now().Add(90 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil && len(raw) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(raw)), logs
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("aced never became ready; logs:\n%s", logs.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitForCheckpoint polls the data dir until a job checkpoint file
// lands on disk, proving the in-flight execution has durable progress.
func waitForCheckpoint(t *testing.T, jobDir string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(jobDir)
		if err == nil {
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".ckpt") {
					return
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no checkpoint ever appeared")
}

// TestCrashRestartResumesInflightJob is the tentpole's end-to-end
// proof, against the real binary: register a session, start a long
// inference, SIGKILL the daemon mid-flight (no drain, no warning),
// restart it over the same data dir, and retry the request. The retry
// must return a result bit-identical to an uninterrupted run, with the
// daemon reporting a recovered session and a checkpoint-resumed job.
func TestCrashRestartResumesInflightJob(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildAced(t)
	dataDir := t.TempDir()

	// Generation A: checkpoint after every instruction and stretch each
	// instruction so "mid-flight" is a wide, deterministic target.
	cmdA, urlA, _ := startAced(t, bin,
		"-data-dir", dataDir, "-checkpoint-every", "1", "-instr-delay", "25ms", "-workers", "1")

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, urlA, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(41))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = float64(i%9)/9 - 0.4
	}
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run of the same ciphertext: evaluation is
	// deterministic given keys and input, so this is the byte-exact
	// answer the crashed job must eventually produce.
	req, _ := http.NewRequest(http.MethodPost, urlA+api.PathInfer, bytes.NewReader(ctBytes))
	req.Header.Set(api.HeaderSession, sessID)
	req.Header.Set(api.HeaderIdemKey, "warm")
	req.Header.Set(api.HeaderDeadlineMs, "120000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	want := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: status %d body %s", resp.StatusCode, want)
	}

	// The doomed request: fire and forget — the daemon dies under it.
	go func() {
		req, _ := http.NewRequest(http.MethodPost, urlA+api.PathInfer, bytes.NewReader(ctBytes))
		req.Header.Set(api.HeaderSession, sessID)
		req.Header.Set(api.HeaderIdemKey, "crashy")
		req.Header.Set(api.HeaderDeadlineMs, "120000")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitForCheckpoint(t, filepath.Join(dataDir, "jobs"))

	// kill -9: no drain, no journal finalization, no goodbye.
	if err := cmdA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmdA.Process.Wait()

	// Generation B over the same data dir; no instruction delay, so the
	// recovered job finishes quickly from its checkpoint.
	_, urlB, _ := startAced(t, bin, "-data-dir", dataDir, "-checkpoint-every", "1", "-workers", "1")

	// The client rides its reconnect window conceptually; here the retry
	// targets the restarted daemon's address directly.
	req, _ = http.NewRequest(http.MethodPost, urlB+api.PathInfer, bytes.NewReader(ctBytes))
	req.Header.Set(api.HeaderSession, sessID)
	req.Header.Set(api.HeaderIdemKey, "crashy")
	req.Header.Set(api.HeaderDeadlineMs, "120000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after crash: status %d body %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-crash result differs from the uninterrupted run")
	}

	st := fetchStatz(t, urlB)
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", st.Restarts)
	}
	if st.SessionsRecovered == 0 {
		t.Error("sessions_recovered = 0, want > 0")
	}
	if st.JobsResumed == 0 {
		t.Error("jobs_resumed = 0, want > 0")
	}
	if st.CheckpointBytes == 0 {
		t.Error("checkpoint_bytes = 0, want > 0")
	}
	if st.StoreBytes <= 0 {
		t.Errorf("store_bytes = %d, want > 0", st.StoreBytes)
	}

	// The pre-crash success replays bit-identically from the journal.
	req, _ = http.NewRequest(http.MethodPost, urlB+api.PathInfer, bytes.NewReader(ctBytes))
	req.Header.Set(api.HeaderSession, sessID)
	req.Header.Set(api.HeaderIdemKey, "warm")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	replayed := readAll(t, resp)
	if resp.Header.Get(api.HeaderIdemReplayed) != "1" {
		t.Error("pre-crash success was not served from the idempotency cache")
	}
	if !bytes.Equal(replayed, want) {
		t.Error("pre-crash success replayed with different bytes")
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
