package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counters are the monotone request counters behind /v1/statz.
type counters struct {
	served       atomic.Uint64 // completed with a 200
	rejected     atomic.Uint64 // 429: queue full
	timedOut     atomic.Uint64 // 504: deadline expired while queued or running
	failed       atomic.Uint64 // 5xx: evaluation error
	panics       atomic.Uint64 // evaluations that died in a recovered panic
	idemReplays  atomic.Uint64 // 200s served from the idempotency cache
	queueExpired atomic.Uint64 // jobs dropped by workers: deadline passed while queued

	batches       atomic.Uint64 // multi-job fused evaluations
	batchedJobs   atomic.Uint64 // jobs carried by those fused evaluations
	soloFallbacks atomic.Uint64 // coalesced windows that closed with one job

	sessionsRecovered atomic.Uint64 // key bundles reloaded from disk
	jobsResumed       atomic.Uint64 // journaled jobs resumed from a checkpoint

	replicaSessions atomic.Uint64 // replicated key bundles applied on this shard
	replicaResults  atomic.Uint64 // replicated journal completions applied here
	replicaShipErrs atomic.Uint64 // replication shipments this shard failed to send
}

// latencyWindow keeps the most recent request latencies in a fixed ring
// and computes quantiles on demand — O(1) memory, no dependency, and
// precise enough for a /statz page (exact over the window).
type latencyWindow struct {
	mu     sync.Mutex
	buf    []time.Duration
	next   int
	filled int
}

func newLatencyWindow(size int) *latencyWindow {
	if size <= 0 {
		size = 1024
	}
	return &latencyWindow{buf: make([]time.Duration, size)}
}

func (w *latencyWindow) add(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.filled < len(w.buf) {
		w.filled++
	}
	w.mu.Unlock()
}

// quantiles returns the p50/p90/p99 latencies in milliseconds over the
// window, or zeros when nothing has been recorded.
func (w *latencyWindow) quantiles() (p50, p90, p99 float64) {
	w.mu.Lock()
	sample := make([]time.Duration, w.filled)
	copy(sample, w.buf[:w.filled])
	w.mu.Unlock()
	if len(sample) == 0 {
		return 0, 0, 0
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	// Nearest-rank with a ceiling: the q-quantile is the smallest sample
	// such that at least q·n samples are ≤ it. Flooring the rank instead
	// (the previous behavior) reported p99 as p~90 on a 10-sample window
	// — an outlier-hiding bias in exactly the quantile that exists to
	// expose outliers.
	at := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(sample))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sample) {
			rank = len(sample)
		}
		return float64(sample[rank-1]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.90), at(0.99)
}
