package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"antace/internal/fheclient"
	"antace/internal/obs"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// syncBuffer is a goroutine-safe log sink: worker goroutines and the
// handler goroutine both emit events for the same request.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) String() string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.String()
}

// jsonEvents parses one slog JSON event per line.
func jsonEvents(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var events []map[string]any
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// tracesByMsg collects, per event name, the set of trace ids seen.
func tracesByMsg(events []map[string]any) map[string][]string {
	out := map[string][]string{}
	for _, ev := range events {
		msg, _ := ev["msg"].(string)
		trace, _ := ev["trace"].(string)
		if msg != "" && trace != "" {
			out[msg] = append(out[msg], trace)
		}
	}
	return out
}

// TestMetricsExposition scrapes /metrics after real traffic and runs the
// page through the package's own strict parser — the grammar a real
// Prometheus scraper enforces. A page that renders but does not parse is
// exactly the bug class this guards against.
func TestMetricsExposition(t *testing.T) {
	s, ts, vres := startServer(t, Config{Workers: 1})
	_ = s
	ctx := context.Background()

	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(7)); err != nil {
		t.Fatal(err)
	}
	input := testInput(vres.InLayout.L)
	if _, err := c.Infer(ctx, input); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != contentTypeExposition {
		t.Errorf("Content-Type = %q, want %q", got, contentTypeExposition)
	}
	page := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(page))
	if err != nil {
		t.Fatalf("strict parser rejected our own /metrics page: %v\npage:\n%s", err, page)
	}

	for _, name := range []string{
		"ace_requests_served_total", "ace_requests_rejected_total",
		"ace_queue_depth", "ace_workers", "ace_sessions",
		"ace_latency_ms", "ace_queue_wait_seconds", "ace_eval_seconds",
		"ace_op_seconds", "ace_profiled_runs_total", "ace_program_info",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from /metrics", name)
		}
	}
	if f := fams["ace_requests_served_total"]; f != nil {
		if f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
			t.Errorf("ace_requests_served_total = %+v, want one counter sample of 1", f)
		}
	}
	if f := fams["ace_eval_seconds"]; f != nil {
		if f.Type != "histogram" {
			t.Errorf("ace_eval_seconds type = %s, want histogram", f.Type)
		}
		count := -1.0
		for _, smp := range f.Samples {
			if smp.Name == "ace_eval_seconds_count" {
				count = smp.Value
			}
		}
		if count != 1 {
			t.Errorf("ace_eval_seconds_count = %v, want 1 after one inference", count)
		}
	}
	if f := fams["ace_op_seconds"]; f != nil {
		ops := map[string]bool{}
		for _, smp := range f.Samples {
			if op := smp.Labels["op"]; op != "" {
				ops[op] = true
			}
		}
		if len(ops) == 0 {
			t.Error("ace_op_seconds carries no op labels after an inference")
		}
	}
	if f := fams["ace_program_info"]; f != nil {
		if len(f.Samples) != 1 || f.Samples[0].Labels["name"] != "linear_infer" {
			t.Errorf("ace_program_info = %+v, want name=linear_infer", f.Samples)
		}
	}
}

// TestProfilezTracksEval: after a few inferences /v1/profilez must show
// per-opcode totals that account for the evaluation wall time — the
// acceptance criterion is agreement within 10%, which holds because the
// per-instruction timer wraps everything the eval loop does per op.
func TestProfilezTracksEval(t *testing.T) {
	_, ts, vres := startServer(t, Config{Workers: 1})
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(9)); err != nil {
		t.Fatal(err)
	}
	input := testInput(vres.InLayout.L)
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := c.Infer(ctx, input); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(ts.URL + api.PathProfilez)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/profilez: status %d body %s", resp.StatusCode, body)
	}
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding profilez: %v\n%s", err, body)
	}
	if snap.Runs != runs {
		t.Errorf("profilez runs = %d, want %d", snap.Runs, runs)
	}
	if len(snap.Ops) == 0 {
		t.Fatal("profilez has no per-opcode rows")
	}
	if snap.OpMsTotal <= 0 || snap.EvalMsTotal <= 0 {
		t.Fatalf("profilez totals: op %gms eval %gms, want both > 0", snap.OpMsTotal, snap.EvalMsTotal)
	}
	if snap.OpMsTotal > snap.EvalMsTotal {
		t.Errorf("op-time sum %gms exceeds eval wall %gms", snap.OpMsTotal, snap.EvalMsTotal)
	}
	if snap.OpMsTotal < 0.9*snap.EvalMsTotal {
		t.Errorf("op-time sum %gms accounts for <90%% of eval wall %gms", snap.OpMsTotal, snap.EvalMsTotal)
	}
	if len(snap.LastTrajectory) == 0 {
		t.Error("profilez has no level/scale trajectory")
	}
	for _, pt := range snap.LastTrajectory {
		if pt.Level < 0 || pt.Scale <= 0 {
			t.Fatalf("trajectory point %+v has nonsense level/scale", pt)
		}
	}
}

// TestTracePropagation proves one trace id survives the whole distance:
// set on the client context, sent as X-ACE-Trace, adopted by the server,
// echoed on the response, and present on every structured event the
// request produced — accept, exec, eval and reply, across handler and
// worker goroutines (run under -race).
func TestTracePropagation(t *testing.T) {
	sink := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(sink, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts, vres := startServer(t, Config{Workers: 2, Logger: logger})
	ctx := context.Background()

	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(5)); err != nil {
		t.Fatal(err)
	}

	const trace = "feedc0de5eedbeeffeedc0de5eedbeef"
	if !obs.ValidTraceID(trace) {
		t.Fatal("test trace id is not valid")
	}
	input := testInput(vres.InLayout.L)
	if _, err := c.Infer(obs.WithTrace(ctx, trace), input); err != nil {
		t.Fatal(err)
	}

	byMsg := tracesByMsg(jsonEvents(t, sink.String()))
	for _, msg := range []string{"infer.accept", "infer.exec", "infer.eval", "infer.reply"} {
		traces := byMsg[msg]
		if len(traces) == 0 {
			t.Errorf("no %s event was logged", msg)
			continue
		}
		for _, got := range traces {
			if got != trace {
				t.Errorf("%s carries trace %q, want %q", msg, got, trace)
			}
		}
	}

	// Header echo: a raw request with a valid client trace gets it back
	// verbatim; an invalid one is replaced with a freshly minted id.
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	post := func(traceHeader string) string {
		req, err := http.NewRequest(http.MethodPost, ts.URL+api.PathInfer, bytes.NewReader(ctBytes))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(api.HeaderSession, c.SessionID())
		if traceHeader != "" {
			req.Header.Set(api.HeaderTrace, traceHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer with trace %q: status %d", traceHeader, resp.StatusCode)
		}
		return resp.Header.Get(api.HeaderTrace)
	}
	if got := post(trace); got != trace {
		t.Errorf("valid client trace echoed as %q, want %q", got, trace)
	}
	if got := post("NOT!a&trace"); !obs.ValidTraceID(got) || got == "NOT!a&trace" {
		t.Errorf("invalid client trace echoed as %q, want a freshly minted valid id", got)
	}
}

// TestObsSmokeAced is the observability smoke test against the real
// binary: boot aced with JSON logs, run one traced inference through the
// client library, strict-parse /metrics, check /v1/profilez accounts for
// the evaluation, then SIGTERM and verify the one trace id strings the
// daemon's accept/exec/eval/reply log events together.
func TestObsSmokeAced(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildAced(t)
	cmd, url, logs := startAced(t, bin, "-workers", "1")

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(11)); err != nil {
		t.Fatal(err)
	}
	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = float64(i%7)/7 - 0.5
	}
	const trace = "ace0b5e55a0ecafeace0b5e55a0ecafe"
	if _, err := c.Infer(obs.WithTrace(ctx, trace), input); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(url + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	page := readAll(t, resp)
	fams, err := obs.ParseExposition(bytes.NewReader(page))
	if err != nil {
		t.Fatalf("strict parser rejected the live daemon's /metrics: %v\npage:\n%s", err, page)
	}
	if f := fams["ace_requests_served_total"]; f == nil || len(f.Samples) != 1 || f.Samples[0].Value != 1 {
		t.Errorf("ace_requests_served_total = %+v, want 1", f)
	}

	resp, err = http.Get(url + api.PathProfilez)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding profilez: %v\n%s", err, body)
	}
	if snap.Runs != 1 || len(snap.Ops) == 0 {
		t.Fatalf("profilez after one inference: runs=%d ops=%d", snap.Runs, len(snap.Ops))
	}
	if snap.OpMsTotal < 0.9*snap.EvalMsTotal || snap.OpMsTotal > snap.EvalMsTotal {
		t.Errorf("op-time sum %gms vs eval wall %gms, want within 10%% and below",
			snap.OpMsTotal, snap.EvalMsTotal)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("aced exited uncleanly after SIGTERM: %v\nlogs:\n%s", err, logs.String())
	}

	byMsg := tracesByMsg(jsonEvents(t, logs.String()))
	for _, msg := range []string{"infer.accept", "infer.exec", "infer.eval", "infer.reply"} {
		traces := byMsg[msg]
		if len(traces) != 1 {
			t.Errorf("daemon logged %d %s events with a trace, want exactly 1", len(traces), msg)
			continue
		}
		if traces[0] != trace {
			t.Errorf("%s carries trace %q, want %q", msg, traces[0], trace)
		}
	}
}

// TestCrashRestartHonorsDeadline is the regression test for the
// recovered-zombie bug: a journaled job whose client asked for a short
// deadline must not be resurrected after that deadline passed. The
// restarted daemon drops it (jobs_resumed stays 0) and a fresh retry
// under the same key re-executes from scratch.
func TestCrashRestartHonorsDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildAced(t)
	dataDir := t.TempDir()

	cmdA, urlA, _ := startAced(t, bin,
		"-data-dir", dataDir, "-checkpoint-every", "1", "-instr-delay", "25ms", "-workers", "1")

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, urlA, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(17))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, c.Spec().VecLen)
	for i := range input {
		input[i] = float64(i%9)/9 - 0.4
	}
	ct, err := c.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// A short-deadline job: the 25ms instruction delay guarantees it is
	// still running (and checkpointed) when the daemon dies.
	const deadlineMs = 5000
	sent := time.Now()
	go func() {
		req, _ := http.NewRequest(http.MethodPost, urlA+api.PathInfer, bytes.NewReader(ctBytes))
		req.Header.Set(api.HeaderSession, sessID)
		req.Header.Set(api.HeaderIdemKey, "short-fuse")
		req.Header.Set(api.HeaderDeadlineMs, "5000")
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	waitForCheckpoint(t, filepath.Join(dataDir, "jobs"))

	if err := cmdA.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmdA.Process.Wait()

	// Let the journaled deadline expire while the daemon is down.
	time.Sleep(time.Until(sent.Add(deadlineMs*time.Millisecond + 500*time.Millisecond)))

	_, urlB, _ := startAced(t, bin, "-data-dir", dataDir, "-workers", "1")

	// Retry under the same key until recovery settles the entry: the
	// expired job was dropped, so the retry re-executes fresh (200, not a
	// replay) rather than attaching to a zombie.
	var status int
	var replayed bool
	for i := 0; i < 100; i++ {
		status, _, replayed = rawInfer(t, urlB, sessID, "short-fuse", ctBytes)
		if status == http.StatusOK {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if status != http.StatusOK {
		t.Fatalf("retry after expired recovery never succeeded: last status %d", status)
	}
	if replayed {
		t.Error("retry was served as an idempotency replay; the expired job must not have completed")
	}

	st := fetchStatz(t, urlB)
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", st.Restarts)
	}
	if st.JobsResumed != 0 {
		t.Errorf("jobs_resumed = %d, want 0: an expired job was resurrected", st.JobsResumed)
	}
}

// TestAcedAddrFileFailureDrains: a post-bind startup failure (the addr
// file cannot be written) must exit 1 through the graceful path — drain
// runs and the final counters flush — instead of dying mid-recovery the
// way log.Fatalf used to.
func TestAcedAddrFileFailureDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e")
	}
	bin := buildAced(t)
	badAddrFile := filepath.Join(t.TempDir(), "does-not-exist", "addr")

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-addr-file", badAddrFile)
	var logs bytes.Buffer
	cmd.Stdout = &logs
	cmd.Stderr = &logs
	err := cmd.Run()
	if err == nil {
		t.Fatalf("aced exited 0 despite addr-file failure; logs:\n%s", logs.String())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("aced exit = %v, want exit code 1; logs:\n%s", err, logs.String())
	}
	out := logs.String()
	if !strings.Contains(out, "addr-file write failed") {
		t.Errorf("logs do not report the addr-file failure:\n%s", out)
	}
	if !strings.Contains(out, "drained cleanly") {
		t.Errorf("failure did not route through the drain path:\n%s", out)
	}
	if !strings.Contains(out, "final counters") {
		t.Errorf("final counters were not flushed on the failure path:\n%s", out)
	}
}
