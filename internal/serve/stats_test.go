package serve

import (
	"testing"
	"time"
)

// TestQuantilesCeilRank pins the nearest-rank-with-ceiling definition:
// the q-quantile is the smallest sample with at least q·n samples ≤ it.
// The old floor-rank code reported p99 of a 10-sample window as the 9th
// value — systematically hiding the very outlier p99 exists to surface.
func TestQuantilesCeilRank(t *testing.T) {
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	cases := []struct {
		name          string
		size          int
		add           []time.Duration
		p50, p90, p99 float64
	}{
		{
			name: "empty window reports zeros",
			size: 8,
		},
		{
			name: "single sample is every quantile",
			size: 8,
			add:  []time.Duration{ms(7)},
			p50:  7, p90: 7, p99: 7,
		},
		{
			// ceil(0.5·10)=5 → 5ms; ceil(0.9·10)=9 → 9ms; ceil(0.99·10)=10
			// → the maximum. Floor-rank gave 9ms for p99 here.
			name: "ten samples: p99 is the max",
			size: 16,
			add:  []time.Duration{ms(10), ms(3), ms(7), ms(1), ms(9), ms(5), ms(2), ms(8), ms(4), ms(6)},
			p50:  5, p90: 9, p99: 10,
		},
		{
			// Six inserts into a 4-slot ring: 1ms and 2ms are overwritten,
			// the window holds {3,4,5,6}. ceil(0.5·4)=2 → 4ms;
			// ceil(0.9·4)=4 and ceil(0.99·4)=4 → 6ms.
			name: "wrap-around keeps only the newest samples",
			size: 4,
			add:  []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6)},
			p50:  4, p90: 6, p99: 6,
		},
		{
			// Two samples: p50 is the smaller (ceil(0.5·2)=1), p90/p99 the
			// larger.
			name: "two samples split at the median",
			size: 8,
			add:  []time.Duration{ms(20), ms(10)},
			p50:  10, p90: 20, p99: 20,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newLatencyWindow(tc.size)
			for _, d := range tc.add {
				w.add(d)
			}
			p50, p90, p99 := w.quantiles()
			if p50 != tc.p50 || p90 != tc.p90 || p99 != tc.p99 {
				t.Errorf("quantiles() = %g/%g/%g, want %g/%g/%g",
					p50, p90, p99, tc.p50, tc.p90, tc.p99)
			}
		})
	}
}

// TestQuantilesWrapReadsFullRing: after exactly size inserts the window
// is full; quantiles must read the whole ring, not just the prefix
// before next wrapped to 0.
func TestQuantilesWrapReadsFullRing(t *testing.T) {
	w := newLatencyWindow(4)
	for i := 1; i <= 4; i++ {
		w.add(time.Duration(i) * time.Millisecond)
	}
	p50, _, p99 := w.quantiles()
	if p50 != 2 || p99 != 4 {
		t.Errorf("full ring quantiles p50=%g p99=%g, want 2 and 4", p50, p99)
	}
}
