package serve

import (
	"net/http"

	"antace/internal/costmodel"
)

// CostmodelzResponse is the /v1/costmodelz payload: the cost model's
// view of the served program under both the shipped default constants
// and constants recalibrated live from this server's own /v1/profilez
// aggregate, next to the measured ground truth. The ratio columns are
// what the differential tests (and an operator judging whether the
// model still tracks this machine) read.
type CostmodelzResponse struct {
	Program  string             `json:"program"`
	Geometry costmodel.Geometry `json:"geometry"`
	Runs     uint64             `json:"runs"`

	Default costmodel.Calibration `json:"default_calibration"`
	// Live is the profile-fitted calibration; absent until the server
	// has profiled at least one run (LiveErr says why).
	Live    *costmodel.Calibration `json:"live_calibration,omitempty"`
	LiveErr string                 `json:"live_error,omitempty"`
	Fits    []costmodel.OpFit      `json:"op_fits,omitempty"`

	// Per-category seconds per run: what the profile measured, and what
	// the model predicts for the served schedule under each calibration.
	MeasuredSec         *costmodel.Breakdown `json:"measured_sec,omitempty"`
	PredictedDefaultSec costmodel.Breakdown  `json:"predicted_default_sec"`
	PredictedLiveSec    *costmodel.Breakdown `json:"predicted_live_sec,omitempty"`
}

// handleCostmodelz prices the served schedule under the default and the
// live-recalibrated cost model and reports both against the measured
// per-category profile. Everything is computed from the current
// /v1/profilez snapshot on each request — the endpoint is a debug view,
// not a hot path.
func (s *Server) handleCostmodelz(w http.ResponseWriter, r *http.Request) {
	snap := s.prof.Snapshot()
	geom := costmodel.GeometryOf(s.ckks)
	resp := CostmodelzResponse{
		Program:  s.name,
		Geometry: geom,
		Runs:     snap.Runs,
		Default:  costmodel.DefaultCalibration(),
	}
	resp.PredictedDefaultSec = geom.Model(resp.Default).InferenceCost(s.ckks)

	if meas, err := costmodel.MeasuredBreakdown(snap); err == nil {
		resp.MeasuredSec = &meas
	}
	live, fits, err := costmodel.FromProfile(snap, geom, resp.Default)
	if err != nil {
		resp.LiveErr = err.Error()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	live = costmodel.FitSchedule(live, geom, s.ckks, snap)
	resp.Live = &live
	resp.Fits = fits
	pl := geom.Model(live).InferenceCost(s.ckks)
	resp.PredictedLiveSec = &pl
	writeJSON(w, http.StatusOK, resp)
}
