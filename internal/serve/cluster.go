package serve

import (
	"log/slog"
	"net/http"
	"strconv"

	"antace/internal/cluster"
	"antace/internal/serve/api"
)

// clusterView is the slice of the cluster Shipper the serve layer needs
// for live membership: the adopted epoch/ring, the shard's own endpoint,
// and delta re-replication on a topology change. Kept as an interface so
// serve depends on the Replicator contract, not the concrete Shipper —
// a RAM-only or test Replicator simply doesn't implement it and the
// cluster endpoints answer 404.
type clusterView interface {
	Self() string
	View() api.Membership
	Rebalance(update api.ClusterUpdate, ring *cluster.Ring, src cluster.StateSource) (int, error)
}

// clusterMembership returns the shard's adopted membership view when the
// configured Replicator is cluster-aware.
func (s *Server) clusterMembership() (api.Membership, bool) {
	cv, ok := s.repl.(clusterView)
	if !ok {
		return api.Membership{}, false
	}
	return cv.View(), true
}

// stampEpoch adds the adopted membership epoch to a response, so clients
// holding a stale endpoint list can notice the topology moved and
// re-fetch /v1/cluster/membership.
func (s *Server) stampEpoch(w http.ResponseWriter) {
	if view, ok := s.clusterMembership(); ok {
		w.Header().Set(api.HeaderEpoch, strconv.FormatUint(view.Epoch, 10))
	}
}

// handleClusterMembership serves the shard's last-adopted membership:
// epoch 0 with the static boot peers until the first router broadcast.
func (s *Server) handleClusterMembership(w http.ResponseWriter, r *http.Request) {
	view, ok := s.clusterMembership()
	if !ok {
		writeErr(w, http.StatusNotFound, "shard is not cluster-wired")
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleClusterUpdate ingests a router membership broadcast. Ordering is
// the contract that makes handoff lossless:
//
//  1. A shard that finds itself removed from Members flips handing-off
//     first — readiness answers 503 before any state moves, so the
//     router stops preferring it while it still answers in-flight work.
//  2. The shipper adopts the new ring, so every completion produced from
//     here on ships to the post-change owners.
//  3. Rebalance synchronously re-ships the ownership delta (everything
//     the shard holds, when leaving) over the ordinary /v1/replica path.
//  4. Only then is the update acknowledged — the router commits the
//     epoch knowing the transfer settled.
//  5. A leaver fires OnLeave after acknowledging: the daemon drains
//     in-flight requests (their completions ship through the already-
//     adopted new ring) and exits.
func (s *Server) handleClusterUpdate(w http.ResponseWriter, r *http.Request) {
	cv, ok := s.repl.(clusterView)
	if !ok {
		writeErr(w, http.StatusNotFound, "shard is not cluster-wired")
		return
	}
	body, err := readBody(w, r, 1<<20)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "cluster update: %v", err)
		return
	}
	update, ring, err := cluster.ParseUpdate(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "cluster update: %v", err)
		return
	}
	cur := cv.View()
	if update.Epoch <= cur.Epoch {
		// Duplicate or stale broadcast: the adopted epoch already covers
		// it. Idempotent ACK so a router retry converges.
		writeJSON(w, http.StatusOK, api.ClusterUpdateReply{Epoch: cur.Epoch})
		return
	}
	self := cv.Self()
	leaving := update.Leaving == self
	if !leaving {
		leaving = true
		for _, ep := range update.Members {
			if ep == self {
				leaving = false
				break
			}
		}
	}
	if leaving {
		s.handingOff.Store(true)
	}
	reshipped, err := cv.Rebalance(update, ring, s)
	if err != nil {
		// The delta did not fully land. For a leaver this is fatal to the
		// handoff — refuse the ACK so the router aborts the transition
		// rather than commit an epoch that would strand sessions.
		if leaving {
			s.handingOff.Store(false)
			writeErr(w, http.StatusInternalServerError, "cluster handoff failed: %v", err)
			return
		}
		// A survivor's partial delta is fail-open like all replication:
		// the records are counted as ship errors and failover still has
		// the pre-change owners.
		s.log.Warn("cluster.rebalance.partial", slog.Uint64("epoch", update.Epoch),
			slog.String("err", err.Error()))
	}
	s.log.Info("cluster.update", slog.Uint64("epoch", update.Epoch),
		slog.Int("members", len(update.Members)), slog.Bool("leaving", leaving),
		slog.Int("reshipped", reshipped))
	writeJSON(w, http.StatusOK, api.ClusterUpdateReply{Epoch: update.Epoch, Reshipped: reshipped})
	if leaving && s.cfg.OnLeave != nil {
		s.leaveOnce.Do(func() { go s.cfg.OnLeave() })
	}
}

// ForEachSessionBundle enumerates every session this shard holds, disk
// tier first (raw spilled bytes — includes sessions evicted from RAM),
// then RAM-only sessions re-marshaled from their immutable key sets.
// Part of the cluster.StateSource contract.
func (s *Server) ForEachSessionBundle(fn func(id string, bundle []byte)) {
	seen := map[string]bool{}
	if s.dur != nil {
		for _, id := range s.dur.sessionIDs() {
			raw, err := s.dur.loadSession(id)
			if err != nil {
				s.log.Warn("cluster.rebalance.load", slog.String("session", id), slog.String("err", err.Error()))
				continue
			}
			seen[id] = true
			fn(id, raw)
		}
	}
	for _, sess := range s.sessions.all() {
		if seen[sess.id] {
			continue
		}
		raw, err := sess.keys.MarshalBinary()
		if err != nil {
			s.log.Warn("cluster.rebalance.marshal", slog.String("session", sess.id), slog.String("err", err.Error()))
			continue
		}
		fn(sess.id, raw)
	}
}

// ForEachCompletion enumerates the retained idempotency successes, for
// re-replication. Part of the cluster.StateSource contract.
func (s *Server) ForEachCompletion(fn func(key string, lane, stride int, body []byte)) {
	for _, c := range s.idem.completedSnapshot() {
		fn(c.key, c.lane, c.stride, c.body)
	}
}
