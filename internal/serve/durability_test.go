package serve

import (
	"bytes"
	"context"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"antace/internal/ckks"
	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
	"antace/internal/store"
	"antace/internal/vm"
)

// serveOn starts an httptest server on a specific address so a
// "restarted" server can come back where the old one listened — the
// shape clients see when a daemon bounces.
func serveOn(t *testing.T, addr string, s *Server) *httptest.Server {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // the old listener may linger briefly
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ts := &httptest.Server{Listener: l, Config: &http.Server{Handler: s}}
	ts.Start()
	return ts
}

// rawInfer posts a ciphertext with an explicit idempotency key and
// returns status, result bytes and whether the reply was an
// idempotency-cache replay.
func rawInfer(t *testing.T, base, sessID, idemKey string, body []byte) (int, []byte, bool) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+api.PathInfer, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	req.Header.Set(api.HeaderSession, sessID)
	req.Header.Set(api.HeaderIdemKey, idemKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get(api.HeaderIdemReplayed) == "1"
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRejectsHostileSessionIDs: session ids become file names
// under the data dir, so anything but the 32-hex form newSessionID
// produces must be refused before any disk operation — a traversal id
// must not read, touch or delete files outside sessions/.
func TestDurableRejectsHostileSessionIDs(t *testing.T) {
	dir := t.TempDir()
	dur, _, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer dur.close()

	// A store-framed file one level above sessDir — the reachable target
	// of an id like "../victim".
	victim := filepath.Join(dir, "victim.key")
	if err := store.WriteFile(victim, []byte("key material")); err != nil {
		t.Fatal(err)
	}

	hostile := []string{
		"", "..", "../victim", "../../etc/target", "a/b",
		strings.Repeat("z", 32),                          // right length, not hex
		strings.Repeat("A", 32),                          // uppercase is never generated
		strings.Repeat("0", 31), strings.Repeat("0", 33), // wrong length
	}
	for _, id := range hostile {
		if _, err := dur.loadSession(id); err == nil {
			t.Errorf("loadSession(%q) succeeded", id)
		}
		if dur.dropSession(id) {
			t.Errorf("dropSession(%q) deleted a file", id)
		}
		if err := dur.saveSession(id, []byte("x")); err == nil {
			t.Errorf("saveSession(%q) wrote a file", id)
		}
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("victim file outside sessions/ was touched: %v", err)
	}

	good := strings.Repeat("0123456789abcdef", 2)
	if !validSessionID(good) {
		t.Fatalf("generated-form id %q rejected", good)
	}
	if err := dur.saveSession(good, []byte("bundle")); err != nil {
		t.Fatalf("saveSession(valid id): %v", err)
	}
	if raw, err := dur.loadSession(good); err != nil || string(raw) != "bundle" {
		t.Fatalf("loadSession(valid id): %q, %v", raw, err)
	}
}

// TestDropSessionTraversalOverHTTP: a DELETE with an encoded traversal
// id must answer an error, never remove files outside sessions/.
func TestDropSessionTraversalOverHTTP(t *testing.T) {
	dir := t.TempDir()
	prog, _ := compileLinear(t)
	s, err := New(prog, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := serveOn(t, "127.0.0.1:0", s)
	defer func() { ts.Close(); drain(t, s) }()

	victim := filepath.Join(dir, "victim.key")
	if err := store.WriteFile(victim, []byte("key material")); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+api.PathSessions+"/..%2Fvictim", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		t.Fatalf("traversal DELETE answered %d", resp.StatusCode)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("traversal DELETE removed a file outside sessions/: %v", err)
	}
}

// TestOversizedIdemKeyRejected: an idempotency key past the cap is a
// 400 at the door. Before the cap, a >64 KiB key silently truncated the
// journal record's uint16 length framing, and the misframed record
// bricked every subsequent startup.
func TestOversizedIdemKeyRejected(t *testing.T) {
	dir := t.TempDir()
	prog, _ := compileLinear(t)
	s, err := New(prog, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := serveOn(t, "127.0.0.1:0", s)
	defer func() { ts.Close(); drain(t, s) }()

	status, _, _ := rawInfer(t, ts.URL, strings.Repeat("0", 32),
		strings.Repeat("k", maxIdemKeyBytes+1), []byte("ciphertext"))
	if status != http.StatusBadRequest {
		t.Fatalf("oversized idempotency key: status %d, want 400", status)
	}
}

// TestJournalEncodingRejectsOversizedStrings: even if an oversized key
// reaches the journal layer, encoding must fail loudly instead of
// truncating the uint16 length field, and the journal must stay
// replayable.
func TestJournalEncodingRejectsOversizedStrings(t *testing.T) {
	big := strings.Repeat("k", math.MaxUint16+1)
	if _, err := encodeForget(big); err == nil {
		t.Fatal("encodeForget silently truncated an oversized string")
	}
	if _, err := encodeAccept("key", big, time.Time{}, nil); err == nil {
		t.Fatal("encodeAccept silently truncated an oversized session id")
	}

	dir := t.TempDir()
	dur, _, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.accept(big, "sess", time.Time{}, []byte("input")); err == nil {
		t.Fatal("accept journaled an unframeable key")
	}
	dur.complete(big, []byte("result"), 0, 0) // must not write a misframed record
	dur.close()

	dur2, st, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatalf("journal bricked by oversized key: %v", err)
	}
	defer dur2.close()
	if len(st.pending) != 0 || len(st.completed) != 0 {
		t.Fatalf("oversized-key records leaked into the journal: %d pending, %d completed",
			len(st.pending), len(st.completed))
	}
}

// TestRestartRecoversSessionsAndIdemReplay is the in-process restart
// check: a daemon with a data dir is replaced by a fresh instance over
// the same directory, and (a) a session registered before the restart
// keeps working without re-registration, (b) a retry of a completed
// idempotent request replays the exact pre-restart bytes.
func TestRestartRecoversSessionsAndIdemReplay(t *testing.T) {
	dir := t.TempDir()
	progA, vres := compileLinear(t)
	sA, err := New(progA, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := serveOn(t, "127.0.0.1:0", sA)
	addr := tsA.Listener.Addr().String()

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, tsA.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(31))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Encrypt(testInput(vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	status, want, replayed := rawInfer(t, tsA.URL, sessID, "idem-1", ctBytes)
	if status != http.StatusOK || replayed {
		t.Fatalf("first keyed request: status %d replayed %v", status, replayed)
	}
	if st := fetchStatz(t, tsA.URL); st.Restarts != 0 || st.StoreBytes <= 0 {
		t.Fatalf("statz before restart: restarts %d, store_bytes %d", st.Restarts, st.StoreBytes)
	}

	tsA.Close()
	drain(t, sA)

	progB, _ := compileLinear(t)
	sB, err := New(progB, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := serveOn(t, addr, sB)
	defer func() { tsB.Close(); drain(t, sB) }()

	// (b) The retry under the same key replays pre-restart bytes.
	status, got, replayed := rawInfer(t, tsB.URL, sessID, "idem-1", ctBytes)
	if status != http.StatusOK || !replayed {
		t.Fatalf("post-restart retry: status %d replayed %v", status, replayed)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-restart idempotent replay is not bit-identical")
	}

	// (a) The session reloads from disk for a fresh request; the client
	// still points at the same address and session id.
	input2 := testInput(vres.InLayout.L)
	input2[0] = 0.11
	out, err := c.Infer(ctx, input2)
	if err != nil {
		t.Fatalf("inference after restart: %v", err)
	}
	checkAgainstReference(t, vres, input2, out)

	st := fetchStatz(t, tsB.URL)
	if st.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", st.Restarts)
	}
	if st.SessionsRecovered != 1 {
		t.Fatalf("sessions_recovered = %d, want 1", st.SessionsRecovered)
	}
	if st.IdemReplays != 1 {
		t.Fatalf("idem_replays = %d, want 1", st.IdemReplays)
	}
}

// TestRestartResumesJournaledJobFromCheckpoint reconstructs the disk
// state a kill -9 leaves behind — an accepted-but-uncompleted journal
// entry plus a mid-program checkpoint — and checks that a fresh daemon
// finishes the job from the checkpoint and serves the retry the exact
// bytes an uninterrupted run produces.
func TestRestartResumesJournaledJobFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	progA, vres := compileLinear(t)
	sA, err := New(progA, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := serveOn(t, "127.0.0.1:0", sA)

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, tsA.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(32))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Encrypt(testInput(vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Compute the uninterrupted result and capture a mid-program
	// checkpoint on a scratch machine built from the registered keys —
	// the same snapshot a crashed worker would have left on disk.
	sess, ok := sA.lookupSession(sessID)
	if !ok {
		t.Fatal("registered session not found")
	}
	m := vm.NewMachine(sA.params, sess.keys, sA.boot, sA.enc)
	var snaps [][]byte
	m.Ckpt = &vm.CheckpointPolicy{EveryN: 1, Sink: func(b []byte) error {
		snaps = append(snaps, append([]byte(nil), b...))
		return nil
	}}
	in := &ckks.Ciphertext{}
	if err := in.UnmarshalBinary(ctBytes); err != nil {
		t.Fatal(err)
	}
	ref, err := m.RunCtx(ctx, sA.module, in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d checkpoints captured", len(snaps))
	}

	tsA.Close()
	drain(t, sA)

	// Forge the crash residue: journaled accept, no complete, and the
	// mid-program checkpoint under the job's key.
	key := sessID + "/idem-crash"
	dur, _, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.accept(key, sessID, time.Time{}, ctBytes); err != nil {
		t.Fatal(err)
	}
	if err := dur.writeCheckpoint(key, snaps[len(snaps)/2]); err != nil {
		t.Fatal(err)
	}
	dur.close()

	progB, _ := compileLinear(t)
	sB, err := New(progB, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := serveOn(t, "127.0.0.1:0", sB)
	defer func() { tsB.Close(); drain(t, sB) }()

	// The retried request attaches to (or replays) the recovered job.
	status, got, _ := rawInfer(t, tsB.URL, sessID, "idem-crash", ctBytes)
	if status != http.StatusOK {
		t.Fatalf("retry of crashed job: status %d body %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered job result differs from the uninterrupted run")
	}
	st := fetchStatz(t, tsB.URL)
	if st.JobsResumed != 1 {
		t.Fatalf("jobs_resumed = %d, want 1", st.JobsResumed)
	}
	if st.SessionsRecovered == 0 {
		t.Fatalf("sessions_recovered = %d, want > 0", st.SessionsRecovered)
	}
}

// TestRecoveryFaultFailsJobOpen: an armed serve.recover.err makes
// recovery abandon the journaled job; the retry gets 503 (re-execute
// signal), not a hang and not a crash.
func TestRecoveryFaultFailsJobOpen(t *testing.T) {
	dir := t.TempDir()
	progA, vres := compileLinear(t)
	sA, err := New(progA, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := serveOn(t, "127.0.0.1:0", sA)
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, tsA.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	sessID, err := c.Register(ctx, ring.SeedFromInt(33))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Encrypt(testInput(vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	tsA.Close()
	drain(t, sA)

	key := sessID + "/idem-fault"
	dur, _, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.accept(key, sessID, time.Time{}, ctBytes); err != nil {
		t.Fatal(err)
	}
	dur.close()

	if err := fault.Arm(fault.ServeRecoverErr + ":1:0"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	progB, _ := compileLinear(t)
	sB, err := New(progB, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := serveOn(t, "127.0.0.1:0", sB)
	defer func() { tsB.Close(); drain(t, sB) }()

	// The retry sees either 503 (attached while the doomed recovery was
	// still in flight) or a clean re-execution (the failed entry was
	// already cleared); a second attempt always succeeds. Either way the
	// job must not count as resumed.
	status, _, _ := rawInfer(t, tsB.URL, sessID, "idem-fault", ctBytes)
	if status == http.StatusServiceUnavailable {
		status, _, _ = rawInfer(t, tsB.URL, sessID, "idem-fault", ctBytes)
	}
	if status != http.StatusOK {
		t.Fatalf("retry after failed recovery: status %d", status)
	}
	st := fetchStatz(t, tsB.URL)
	if st.FaultsFired == 0 {
		t.Fatalf("armed %s never fired", fault.ServeRecoverErr)
	}
	if st.JobsResumed != 0 {
		t.Fatalf("jobs_resumed = %d after recovery fault, want 0", st.JobsResumed)
	}
}

// TestRecoveryWithoutSessionFailsOpen: a journaled job whose session
// bundle did not survive cannot resume; the retry is told to start over
// rather than left hanging.
func TestRecoveryWithoutSessionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	dur, _, err := openDurable(dir, 1<<30, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := dur.accept("ghost/idem-x", "ghost", time.Time{}, []byte("ciphertext")); err != nil {
		t.Fatal(err)
	}
	dur.close()

	prog, _ := compileLinear(t)
	s, err := New(prog, Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := serveOn(t, "127.0.0.1:0", s)
	defer func() { tsB.Close(); drain(t, s) }()

	// The recovered job settles as failed (its failed idem entry is
	// removed, so the cache empties); nothing may count it as resumed.
	deadline := time.Now().Add(10 * time.Second)
	for s.idem.len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("ghost job never settled")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := fetchStatz(t, tsB.URL); st.JobsResumed != 0 || st.Served != 0 {
		t.Fatalf("ghost job counted as work: %+v", st)
	}
}
