package serve

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"

	"antace/internal/ckks"
)

// session is one registered client: its evaluation-key bundle and the
// memory it occupies. Keys are immutable after registration, so a worker
// holding a session keeps evaluating safely even if the cache evicts the
// entry mid-request — eviction only drops the cache's reference.
type session struct {
	id    string
	keys  *ckks.EvaluationKeySet
	bytes int64
}

// sessionCache is an LRU over registered key bundles with a byte budget.
// Evaluation keys are tens of megabytes at deployment scale, so the
// serving layer's whole point is to upload them once and reuse them
// across requests; the budget bounds how many clients stay resident.
type sessionCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used; values are *session
	byID   map[string]*list.Element

	hits, misses, evictions uint64
}

func newSessionCache(budget int64) *sessionCache {
	return &sessionCache{budget: budget, order: list.New(), byID: map[string]*list.Element{}}
}

func newSessionID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// put registers a key bundle under a fresh id, evicting
// least-recently-used sessions until it fits. A bundle larger than the
// whole budget is refused.
func (c *sessionCache) put(keys *ckks.EvaluationKeySet, size int64) (*session, error) {
	id, err := newSessionID()
	if err != nil {
		return nil, err
	}
	return c.putWithID(id, keys, size)
}

// putWithID inserts a bundle under a caller-chosen id — the reload path
// for sessions spilled to disk, which must keep the id clients already
// hold. If two loads race, the winner's entry is returned and the
// loser's copy dropped.
func (c *sessionCache) putWithID(id string, keys *ckks.EvaluationKeySet, size int64) (*session, error) {
	if size > c.budget {
		return nil, fmt.Errorf("serve: key bundle of %d bytes exceeds the session budget of %d", size, c.budget)
	}
	s := &session{id: id, keys: keys, bytes: size}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[id]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*session), nil
	}
	for c.used+size > c.budget {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		victim := c.order.Remove(oldest).(*session)
		delete(c.byID, victim.id)
		c.used -= victim.bytes
		c.evictions++
	}
	c.byID[id] = c.order.PushFront(s)
	c.used += size
	return s, nil
}

// get looks a session up and marks it most recently used.
func (c *sessionCache) get(id string) (*session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*session), true
}

// drop removes a session explicitly (DELETE /v1/sessions/<id>).
func (c *sessionCache) drop(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return false
	}
	victim := c.order.Remove(el).(*session)
	delete(c.byID, id)
	c.used -= victim.bytes
	return true
}

// all returns the resident sessions, for membership re-replication.
// Keys are immutable after registration, so the returned sessions stay
// safe to marshal outside the lock.
func (c *sessionCache) all() []*session {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*session, 0, len(c.byID))
	for _, el := range c.byID {
		out = append(out, el.Value.(*session))
	}
	return out
}

func (c *sessionCache) snapshot() (count int, used int64, hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byID), c.used, c.hits, c.misses, c.evictions
}
