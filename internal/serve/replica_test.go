package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"antace/internal/cluster"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
	"antace/internal/store"
)

// TestReadyzStates pins the routing signal's three states: ready while
// serving, 503 "recovering" while journal replay is pending, and 503
// "draining" after Drain — both refusals carrying a Retry-After hint,
// while healthz stays a pure liveness probe.
func TestReadyzStates(t *testing.T) {
	s, ts, _ := startServer(t, Config{Workers: 1})

	status, rz, retryAfter := fetchReadyz(t, ts.URL)
	if status != http.StatusOK || rz.Status != "ready" {
		t.Fatalf("fresh server readyz: %d %+v", status, rz)
	}

	// Recovery in flight: unready, but alive.
	s.recovering.Add(1)
	status, rz, retryAfter = fetchReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || rz.Status != "recovering" || rz.PendingRecovery != 1 {
		t.Fatalf("recovering readyz: %d %+v", status, rz)
	}
	if retryAfter == "" {
		t.Fatal("recovering 503 carried no Retry-After")
	}
	resp, err := http.Get(ts.URL + api.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while recovering: %d, want 200 (liveness only)", resp.StatusCode)
	}
	s.recovering.Add(-1)
	if status, rz, _ = fetchReadyz(t, ts.URL); status != http.StatusOK {
		t.Fatalf("readyz after recovery: %d %+v", status, rz)
	}

	drainServer(t, s)
	status, rz, retryAfter = fetchReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || rz.Status != "draining" {
		t.Fatalf("draining readyz: %d %+v", status, rz)
	}
	if retryAfter == "" {
		t.Fatal("draining 503 carried no Retry-After")
	}
}

// TestReplicaApplyTornTail: a shipment cut mid-frame (the wire shape of
// a shard dying mid-stream) applies the intact prefix and reports both
// the applied count and the tear, so the shipper re-sends only the cut
// records. The re-shipped remainder then lands cleanly.
func TestReplicaApplyTornTail(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})

	rec1 := mustEncodeComplete(t, "aaaa/k1", []byte("result-one"))
	rec2 := mustEncodeComplete(t, "aaaa/k2", []byte("result-two"))
	image := store.Image([][]byte{rec1, rec2})

	// Cut inside the second frame.
	cut := len(image) - len(rec2)/2 - 1
	reply := postReplica(t, ts.URL, image[:cut], http.StatusOK)
	if reply.Applied != 1 || !reply.Torn {
		t.Fatalf("torn apply: %+v, want applied=1 torn=true", reply)
	}

	reply = postReplica(t, ts.URL, store.Image([][]byte{rec2}), http.StatusOK)
	if reply.Applied != 1 || reply.Torn {
		t.Fatalf("re-ship apply: %+v, want applied=1 torn=false", reply)
	}
}

// TestReplicaApplyRejectsCorruptImage: a flipped byte inside a frame
// fails the CRC and the whole shipment is refused with 400 — corruption
// is never partially applied.
func TestReplicaApplyRejectsCorruptImage(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})
	image := store.Image([][]byte{mustEncodeComplete(t, "aaaa/k1", []byte("result"))})
	image[len(image)-3] ^= 0xff
	postReplica(t, ts.URL, image, http.StatusBadRequest)
}

// TestReplicaApplyRejectsUnknownRecord: a frame that passes its CRC but
// does not parse as a replication record is a protocol mismatch, not
// wire damage — 400, because re-shipping the same bytes cannot help.
func TestReplicaApplyRejectsUnknownRecord(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})
	postReplica(t, ts.URL, store.Image([][]byte{{0x7f, 0x00}}), http.StatusBadRequest)
}

// TestReplicatedStateServesFailover is the serve half of the failover
// contract, with the replication transport driven by hand: shard A
// registers a session and answers an inference; its bundle and journal
// settlement are shipped to shard B as ACELOG1 records; B then (1)
// serves a fresh inference under the replicated keys with bytes
// identical to A's — FHE evaluation is deterministic given keys and
// input — (2) replays A's completed idempotency key from the replicated
// journal entry without executing, and (3) re-executes that key after a
// replicated forget withdraws it.
func TestReplicatedStateServesFailover(t *testing.T) {
	prog, vres := compileLinear(t)
	dirA := t.TempDir()
	srvA, err := New(prog, Config{Workers: 1, DataDir: dirA})
	if err != nil {
		t.Fatal(err)
	}
	tsA := newTestServer(t, srvA)
	srvB, err := New(prog, Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	tsB := newTestServer(t, srvB)

	ctx := context.Background()
	c, err := fheclient.Dial(ctx, tsA.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Register(ctx, ring.SeedFromInt(31))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := c.Encrypt(testInput(vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	ctBytes, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	want := doInfer(t, tsA.URL, id, "k1", ctBytes, http.StatusOK)

	// Ship the session bundle A spilled to disk, exactly as the cluster
	// shipper would at registration.
	bundle, err := store.ReadFile(filepath.Join(dirA, "sessions", id+".key"))
	if err != nil {
		t.Fatal(err)
	}
	sessRec, err := cluster.EncodeSession(id, bundle)
	if err != nil {
		t.Fatal(err)
	}
	if reply := postReplica(t, tsB.URL, store.Image([][]byte{sessRec}), http.StatusOK); reply.Applied != 1 {
		t.Fatalf("session apply: %+v", reply)
	}

	// (1) B executes the same ciphertext under the replicated keys.
	got := doInfer(t, tsB.URL, id, "fresh", ctBytes, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Fatal("replicated session produced different bytes than the primary")
	}

	// (2) Replicate A's settlement for k1: B must replay, not execute.
	compRec := mustEncodeComplete(t, id+"/k1", want)
	if reply := postReplica(t, tsB.URL, store.Image([][]byte{compRec}), http.StatusOK); reply.Applied != 1 {
		t.Fatalf("completion apply: %+v", reply)
	}
	req, _ := http.NewRequest(http.MethodPost, tsB.URL+api.PathInfer, bytes.NewReader(ctBytes))
	req.Header.Set(api.HeaderSession, id)
	req.Header.Set(api.HeaderIdemKey, "k1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	replayed := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(api.HeaderIdemReplayed) != "1" {
		t.Fatalf("replicated completion not replayed: %d replayed=%q", resp.StatusCode, resp.Header.Get(api.HeaderIdemReplayed))
	}
	if !bytes.Equal(replayed, want) {
		t.Fatal("replicated completion replayed different bytes")
	}

	// (3) A replicated forget withdraws the key; the next attempt
	// re-executes and — determinism again — still matches.
	forgetRec, err := cluster.EncodeForget(id + "/k1")
	if err != nil {
		t.Fatal(err)
	}
	if reply := postReplica(t, tsB.URL, store.Image([][]byte{forgetRec}), http.StatusOK); reply.Applied != 1 {
		t.Fatalf("forget apply: %+v", reply)
	}
	req, _ = http.NewRequest(http.MethodPost, tsB.URL+api.PathInfer, bytes.NewReader(ctBytes))
	req.Header.Set(api.HeaderSession, id)
	req.Header.Set(api.HeaderIdemKey, "k1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	reExec := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(api.HeaderIdemReplayed) != "" {
		t.Fatalf("after forget: %d replayed=%q, want fresh execution", resp.StatusCode, resp.Header.Get(api.HeaderIdemReplayed))
	}
	if !bytes.Equal(reExec, want) {
		t.Fatal("re-execution after forget produced different bytes")
	}

	st := fetchStatz(t, tsB.URL)
	if st.ReplicaSessions != 1 {
		t.Errorf("replica_sessions = %d, want 1", st.ReplicaSessions)
	}
	if st.ReplicaResults != 1 {
		t.Errorf("replica_results = %d, want 1", st.ReplicaResults)
	}
}

// TestReplicaApplyRejectsBadSession: a session record whose bundle does
// not decode must not poison the session table.
func TestReplicaApplyRejectsBadSession(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})
	rec, err := cluster.EncodeSession("0123456789abcdef0123456789abcdef", []byte("not a key bundle"))
	if err != nil {
		t.Fatal(err)
	}
	postReplica(t, ts.URL, store.Image([][]byte{rec}), http.StatusBadRequest)

	rec, err = cluster.EncodeSession("NOT-HEX", []byte{})
	if err != nil {
		t.Fatal(err)
	}
	postReplica(t, ts.URL, store.Image([][]byte{rec}), http.StatusBadRequest)
}

// --- helpers -------------------------------------------------------------

func newTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		drainServer(t, s)
	})
	return ts
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func fetchReadyz(t *testing.T, base string) (int, api.Readyz, string) {
	t.Helper()
	resp, err := http.Get(base + api.PathReadyz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rz api.Readyz
	if err := jsonDecode(resp, &rz); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, rz, resp.Header.Get("Retry-After")
}

func postReplica(t *testing.T, base string, image []byte, wantStatus int) api.ReplicaApply {
	t.Helper()
	resp, err := http.Post(base+api.PathReplica, api.ContentTypeBinary, bytes.NewReader(image))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("replica apply: status %d, want %d; body %s", resp.StatusCode, wantStatus, buf.String())
	}
	var reply api.ReplicaApply
	if wantStatus == http.StatusOK {
		if err := jsonDecode(resp, &reply); err != nil {
			t.Fatal(err)
		}
	}
	return reply
}

func mustEncodeComplete(t *testing.T, key string, body []byte) []byte {
	t.Helper()
	rec, err := cluster.EncodeComplete(key, 0, 0, body)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func doInfer(t *testing.T, base, session, idemKey string, ctBytes []byte, wantStatus int) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+api.PathInfer, bytes.NewReader(ctBytes))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(api.HeaderSession, session)
	if idemKey != "" {
		req.Header.Set(api.HeaderIdemKey, idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("infer %s: status %d, want %d; body %s", idemKey, resp.StatusCode, wantStatus, body)
	}
	return body
}
