package serve

import (
	"context"
	"sync"
	"time"

	"antace/internal/ckks"
)

// job is one inference request in flight: the session whose keys to
// evaluate under, the input ciphertext, and a buffered reply channel so
// the worker never blocks on a handler that already gave up.
type job struct {
	ctx      context.Context
	sess     *session
	ct       *ckks.Ciphertext
	done     chan jobResult
	enqueued time.Time

	// Durability: idemKey is the journal/checkpoint identity of a keyed
	// request (empty for unkeyed ones, which are never journaled), and
	// resume carries the checkpoint a recovered job restarts from (nil
	// to execute from instruction 0).
	idemKey string
	resume  []byte
}

// jobResult carries a finished evaluation back to the handler. When the
// job rode a shared batched ciphertext, stride > 1 and lane say which
// interleaved slots of ct belong to this caller; stride <= 1 is a plain
// solo result.
type jobResult struct {
	ct     *ckks.Ciphertext
	lane   int
	stride int
	err    error
}

// batchGroup is the scheduler's unit of work: one or more jobs that
// share a session and will be evaluated together. The solo path
// enqueues singleton groups, so batched and unbatched serving flow
// through the same queue, drain logic and worker pool.
type batchGroup struct {
	jobs []*job
}

// scheduler owns the bounded queue and the worker pool. Workers pull
// groups in FIFO order and run exec, which builds a per-group machine
// around the session's keys (the Evaluator is per-goroutine; parameters,
// encoder and bootstrapper are shared read-only). exec settles every
// job's done channel itself.
type scheduler struct {
	queue   chan *batchGroup
	wg      sync.WaitGroup
	exec    func(*batchGroup)
	expired func(*job)
}

func newScheduler(depth, workers int, exec func(*batchGroup), expired func(*job)) *scheduler {
	s := &scheduler{queue: make(chan *batchGroup, depth), exec: exec, expired: expired}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for g := range s.queue {
		// A request whose deadline expired while queued is dropped
		// without touching the evaluator: completing doomed work would
		// only delay live requests behind it. In a batched group the
		// expired member is filtered out and the survivors still run —
		// one abandoned caller must not void its window-mates' work.
		live := g.jobs[:0]
		for _, j := range g.jobs {
			if err := j.ctx.Err(); err != nil {
				if s.expired != nil {
					s.expired(j)
				}
				j.done <- jobResult{err: err}
				continue
			}
			live = append(live, j)
		}
		if len(live) == 0 {
			continue
		}
		g.jobs = live
		s.exec(g)
	}
}

// stop closes the queue and waits for the workers to finish everything
// already accepted. The caller must guarantee no further enqueues (the
// server's draining flag, taken under the same lock as the send).
func (s *scheduler) stop() {
	close(s.queue)
	s.wg.Wait()
}
