package serve

import (
	"context"
	"sync"
	"time"

	"antace/internal/ckks"
)

// job is one inference request in flight: the session whose keys to
// evaluate under, the input ciphertext, and a buffered reply channel so
// the worker never blocks on a handler that already gave up.
type job struct {
	ctx      context.Context
	sess     *session
	ct       *ckks.Ciphertext
	done     chan jobResult
	enqueued time.Time

	// Durability: idemKey is the journal/checkpoint identity of a keyed
	// request (empty for unkeyed ones, which are never journaled), and
	// resume carries the checkpoint a recovered job restarts from (nil
	// to execute from instruction 0).
	idemKey string
	resume  []byte
}

type jobResult struct {
	ct  *ckks.Ciphertext
	err error
}

// scheduler owns the bounded queue and the worker pool. Workers pull
// jobs in FIFO order and run exec, which builds a per-request machine
// around the session's keys (the Evaluator is per-goroutine; parameters,
// encoder and bootstrapper are shared read-only).
type scheduler struct {
	queue chan *job
	wg    sync.WaitGroup
	exec  func(*job) jobResult
}

func newScheduler(depth, workers int, exec func(*job) jobResult) *scheduler {
	s := &scheduler{queue: make(chan *job, depth), exec: exec}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		// A request whose deadline expired while queued is dropped
		// without touching the evaluator: completing doomed work would
		// only delay live requests behind it.
		if err := j.ctx.Err(); err != nil {
			j.done <- jobResult{err: err}
			continue
		}
		j.done <- s.exec(j)
	}
}

// stop closes the queue and waits for the workers to finish everything
// already accepted. The caller must guarantee no further enqueues (the
// server's draining flag, taken under the same lock as the send).
func (s *scheduler) stop() {
	close(s.queue)
	s.wg.Wait()
}
