package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"antace/internal/ckksir"
	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

// compileLinearWide lowers the same running-example model as
// compileLinear but forces the ring degree wide (logN 8, 128 slots) so
// the program has spare slot lanes and a batching server transforms it
// to a stride > 1 layout.
func compileLinearWide(t testing.TB) (Program, *vecir.Result) {
	t.Helper()
	m, err := onnx.BuildLinear(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckksir.Lower(sm, ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true, ForceLogN: 8})
	if err != nil {
		t.Fatal(err)
	}
	return Program{Name: "linear_infer_wide", CKKS: res, VecLen: vres.InLayout.L}, vres
}

func startBatchedServer(t testing.TB, cfg Config) (*Server, *httptest.Server, *vecir.Result) {
	t.Helper()
	prog, vres := compileLinearWide(t)
	s, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts, vres
}

// inferChecked runs one inference and compares it against the VECTOR IR
// reference — the solo semantics every batched request must preserve.
func inferChecked(ctx context.Context, c *fheclient.Client, vres *vecir.Result, input []float64) error {
	got, err := c.Infer(ctx, input)
	if err != nil {
		return err
	}
	want, err := vecir.Run(vres.Module.Main(), input)
	if err != nil {
		return err
	}
	for k := 0; k < vres.OutLayout.C; k++ {
		slot := vres.OutLayout.Slot(k, 0, 0)
		if math.Abs(got[slot]-want[slot]) > 1e-4 {
			return fmt.Errorf("class %d: batched %g, solo reference %g", k, got[slot], want[slot])
		}
	}
	return nil
}

// TestBatchedInferenceMatchesSolo is the serving layer's differential:
// several concurrent clients coalesce into one fused evaluation (the
// statz counters prove the requests really shared a ciphertext) and
// every decrypted per-lane result must still match the solo reference.
// Three clients against a four-lane window also covers the partial
// batch: one lane stays empty and nobody notices.
// (The exact bit-level solo-vs-batched differential, including partial
// batches, is TestCompiledModelSimDifferential in internal/batch, where
// both paths run the same deterministic slotwise arithmetic.)
func TestBatchedInferenceMatchesSolo(t *testing.T) {
	_, ts, vres := startBatchedServer(t, Config{
		Workers: 1, BatchMax: 4, BatchWindow: 300 * time.Millisecond,
	})
	ctx := context.Background()
	c := dialRegistered(t, ts.URL, 41)

	stride := c.Spec().BatchStride
	if stride < 4 {
		t.Fatalf("program spec stride %d, want >= 4 (logN 8 leaves spare lanes)", stride)
	}

	const jobs = 3 // one fewer than the lane budget: a partial batch
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			input := testInput(vres.InLayout.L)
			input[0] = float64(g)/7 - 0.2 // distinct data per lane
			errs <- inferChecked(ctx, c, vres, input)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := fetchStatz(t, ts.URL)
	if st.BatchStride != stride || st.BatchLanes != 4 {
		t.Fatalf("statz lanes/stride: %+v", st)
	}
	if st.Served != jobs {
		t.Fatalf("served %d, want %d: %+v", st.Served, jobs, st)
	}
	// All three arrived well inside one 300ms window against a single
	// worker, so at least one multi-request batch must have formed.
	if st.Batches < 1 || st.BatchedJobs < 2 {
		t.Fatalf("no fused evaluation happened: %+v", st)
	}
	if st.Batches == 0 && st.SoloFallbacks == 0 {
		t.Fatalf("counters account for no evaluation at all: %+v", st)
	}
}

// TestBatchedMixedDeadlines coalesces jobs whose deadlines differ: the
// fused run gets the most patient member's deadline and both members
// still complete correctly within their own.
func TestBatchedMixedDeadlines(t *testing.T) {
	_, ts, vres := startBatchedServer(t, Config{
		Workers: 1, BatchMax: 4, BatchWindow: 300 * time.Millisecond,
	})
	c := dialRegistered(t, ts.URL, 42)

	deadlines := []time.Duration{5 * time.Second, time.Minute}
	var wg sync.WaitGroup
	errs := make(chan error, len(deadlines))
	for g, d := range deadlines {
		wg.Add(1)
		go func(g int, d time.Duration) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(context.Background(), d)
			defer cancel()
			input := testInput(vres.InLayout.L)
			input[1] = float64(g) / 3
			errs <- inferChecked(rctx, c, vres, input)
		}(g, d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := fetchStatz(t, ts.URL)
	if st.Served != 2 || st.TimedOut != 0 {
		t.Fatalf("mixed-deadline window: %+v", st)
	}
}

// TestBatchedSoloFallback: a window that closes with one request falls
// back to the solo path — still on the lane-transformed program, so the
// reply carries lane 0 and the client extracts it transparently.
func TestBatchedSoloFallback(t *testing.T) {
	_, ts, vres := startBatchedServer(t, Config{
		Workers: 1, BatchMax: 4, BatchWindow: 10 * time.Millisecond,
	})
	c := dialRegistered(t, ts.URL, 43)
	if err := inferChecked(context.Background(), c, vres, testInput(vres.InLayout.L)); err != nil {
		t.Fatal(err)
	}
	st := fetchStatz(t, ts.URL)
	if st.Served != 1 || st.SoloFallbacks != 1 || st.Batches != 0 {
		t.Fatalf("solo fallback counters: %+v", st)
	}
}

// TestQueueExpiredCounter pins the scheduler observability gap: a job
// whose deadline lapses while queued answers 504 at the handler, and
// when a worker finally dequeues the corpse it must count it under
// queue_expired instead of dropping it silently.
func TestQueueExpiredCounter(t *testing.T) {
	prog, vres := compileLinear(t)
	s, err := New(prog, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	running := make(chan struct{}, 8)
	s.beforeExec = func(*job) {
		running <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx := context.Background()
	c := dialRegistered(t, ts.URL, 44)
	c.SetRetryPolicy(fheclient.RetryPolicy{MaxAttempts: 1})
	input := testInput(vres.InLayout.L)

	// Request 1 parks on the gate inside the worker.
	r1 := make(chan error, 1)
	go func() {
		rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		defer cancel()
		_, err := c.Infer(rctx, input)
		r1 <- err
	}()
	<-running

	// Request 2 expires while queued: the client sees 504 immediately…
	dctx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	_, err = c.Infer(dctx, input)
	var apiErr *fheclient.APIError
	if !errors.As(err, &apiErr) || !apiErr.IsDeadline() {
		t.Fatalf("expected deadline 504, got %v", err)
	}
	if st := fetchStatz(t, ts.URL); st.QueueExpired != 0 {
		t.Fatalf("queue_expired counted before a worker saw the job: %+v", st)
	}

	// …and once the worker drains the queue it counts the corpse.
	release()
	if err := <-r1; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fetchStatz(t, ts.URL)
		if st.QueueExpired == 1 {
			if st.TimedOut != 1 || st.Served != 1 {
				t.Fatalf("counters after expiry: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue_expired never incremented: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	drCtx, drCancel := context.WithTimeout(ctx, 10*time.Second)
	defer drCancel()
	if err := s.Drain(drCtx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosBatchFlushPanic arms batch.flush.panic so a fused evaluation
// dies mid-flight. The blast radius must be exactly that batch: every
// member answers 500 EVAL_PANIC (and the client retry then succeeds),
// the worker survives, and follow-up traffic is served normally.
func TestChaosBatchFlushPanic(t *testing.T) {
	_, ts, vres := startBatchedServer(t, Config{
		Workers: 1, BatchMax: 4, BatchWindow: 300 * time.Millisecond,
	})
	ctx := context.Background()
	c := dialRegistered(t, ts.URL, 45)

	armFaults(t, fault.BatchFlushPanic+":1:0")
	const jobs = 2
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			input := testInput(vres.InLayout.L)
			input[2] = float64(g) / 5
			// The default retry policy retries recovered-panic 500s, so a
			// successful return proves the daemon survived its own batch
			// dying.
			errs <- inferChecked(ctx, c, vres, input)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("inference did not survive an injected batch panic: %v", err)
		}
	}

	st := fetchStatz(t, ts.URL)
	if st.Panics != 1 || st.FaultsFired != 1 {
		t.Fatalf("panic counters did not reconcile: %+v", st)
	}
	// Both members of the doomed batch failed — and only them.
	if st.Failed != jobs {
		t.Fatalf("batch-wide panic failed %d jobs, want exactly %d: %+v", st.Failed, jobs, st)
	}
	if st.Served != jobs {
		t.Fatalf("retries after the panic served %d, want %d: %+v", st.Served, jobs, st)
	}
	// The daemon keeps serving after the blast.
	if err := inferChecked(ctx, c, vres, testInput(vres.InLayout.L)); err != nil {
		t.Fatal(err)
	}
}
