package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"antace/internal/fault"
	"antace/internal/fheclient"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// The chaos suite drives the daemon through injected failures — worker
// panics, dropped responses, queue-full storms — and checks the
// fault-tolerance contract: the daemon keeps serving, counters
// reconcile, and retried inferences still decrypt to the cleartext
// reference. Fault points are process-global, so none of these tests
// may run in parallel.

// armFaults arms a spec for the duration of one test.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)
}

// dialRegistered dials the test server and registers a deterministic
// session.
func dialRegistered(t *testing.T, base string, seed uint64) *fheclient.Client {
	t.Helper()
	ctx := context.Background()
	c, err := fheclient.Dial(ctx, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(seed)); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosWorkerPanicMidInference arms serve.worker.panic so the first
// evaluation dies inside the worker. The daemon must convert the panic
// into a 500 EVAL_PANIC (not crash), the client's retry must succeed,
// and the worker pool must keep serving afterwards.
func TestChaosWorkerPanicMidInference(t *testing.T) {
	s, ts, vres := startServer(t, Config{Workers: 2})
	var execs atomic.Int64
	s.beforeExec = func(*job) { execs.Add(1) }
	c := dialRegistered(t, ts.URL, 31)
	input := testInput(vres.InLayout.L)
	ctx := context.Background()

	armFaults(t, fault.ServeWorkerPanic+":1:0")
	got, err := c.Infer(ctx, input)
	if err != nil {
		t.Fatalf("inference did not survive an injected worker panic: %v", err)
	}
	checkAgainstReference(t, vres, input, got)

	// The daemon is still healthy: a second inference works too.
	if got, err = c.Infer(ctx, input); err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, vres, input, got)

	st := fetchStatz(t, ts.URL)
	if st.Panics != 1 || st.Failed != 1 || st.FaultsFired != 1 {
		t.Fatalf("panic counters did not reconcile: %+v", st)
	}
	if st.Served != 2 {
		t.Fatalf("served %d requests, want 2: %+v", st.Served, st)
	}
	if n := execs.Load(); n != 3 {
		t.Fatalf("expected 3 executions (1 panicked + 2 served), got %d", n)
	}
}

// TestChaosRescaleErrorKeepsServing arms ckks.rescale.err, which fails
// deep inside the evaluator as a returned error (not a panic). The
// request must fail with a typed 500, the retry must succeed, and the
// panic counter must stay untouched — errors and panics are distinct
// rows in the taxonomy.
func TestChaosRescaleErrorKeepsServing(t *testing.T) {
	_, ts, vres := startServer(t, Config{Workers: 1})
	c := dialRegistered(t, ts.URL, 32)
	input := testInput(vres.InLayout.L)

	armFaults(t, fault.CKKSRescaleErr+":1:0")
	got, err := c.Infer(context.Background(), input)
	if err != nil {
		t.Fatalf("inference did not survive an injected rescale error: %v", err)
	}
	checkAgainstReference(t, vres, input, got)

	st := fetchStatz(t, ts.URL)
	if st.Failed != 1 || st.Panics != 0 || st.FaultsFired != 1 || st.Served != 1 {
		t.Fatalf("rescale-error counters did not reconcile: %+v", st)
	}
}

// TestChaosConnResetIdempotentRetry arms client.conn.reset: the server
// completes the evaluation, but the response is lost before the client
// reads it. The retry carries the same idempotency key, so the daemon
// replays the stored result instead of executing the program a second
// time.
func TestChaosConnResetIdempotentRetry(t *testing.T) {
	s, ts, vres := startServer(t, Config{Workers: 1})
	var execs atomic.Int64
	s.beforeExec = func(*job) { execs.Add(1) }
	c := dialRegistered(t, ts.URL, 33)
	input := testInput(vres.InLayout.L)

	armFaults(t, fault.ClientConnReset+":1:0")
	got, err := c.Infer(context.Background(), input)
	if err != nil {
		t.Fatalf("inference did not survive an injected connection reset: %v", err)
	}
	checkAgainstReference(t, vres, input, got)

	if n := execs.Load(); n != 1 {
		t.Fatalf("retried inference executed the program %d times, want exactly 1", n)
	}
	st := fetchStatz(t, ts.URL)
	if st.IdemReplays != 1 || st.Served != 1 || st.Failed != 0 {
		t.Fatalf("idempotent-replay counters did not reconcile: %+v", st)
	}
}

// TestChaosIdemReplayBitIdentical drives the idempotency cache at the
// wire level: two raw requests under one key must return bit-identical
// ciphertext bytes, with the second marked as a replay and the program
// executed exactly once.
func TestChaosIdemReplayBitIdentical(t *testing.T) {
	s, ts, vres := startServer(t, Config{Workers: 1})
	var execs atomic.Int64
	s.beforeExec = func(*job) { execs.Add(1) }
	c := dialRegistered(t, ts.URL, 34)

	ct, err := c.Encrypt(testInput(vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	body, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+api.PathInfer, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", api.ContentTypeBinary)
		req.Header.Set(api.HeaderSession, c.SessionID())
		req.Header.Set(api.HeaderIdemKey, "chaos-replay-key")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		return resp, data
	}

	first, firstBody := post()
	second, secondBody := post()
	if first.Header.Get(api.HeaderIdemReplayed) != "" {
		t.Fatal("first execution must not be marked as a replay")
	}
	if second.Header.Get(api.HeaderIdemReplayed) != "1" {
		t.Fatal("second request under the same key must be marked as a replay")
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatalf("replayed ciphertext differs from the original (%d vs %d bytes)", len(firstBody), len(secondBody))
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("program executed %d times under one idempotency key, want 1", n)
	}
}

// TestChaosQueueFullStorm floods a one-worker, one-slot queue with
// concurrent clients. Rejected requests back off per the server's
// Retry-After and try again; every inference must eventually succeed
// and the counters must reconcile to exactly one success per client.
func TestChaosQueueFullStorm(t *testing.T) {
	const clients = 6
	s, ts, vres := startServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: time.Second})
	s.beforeExec = func(*job) { time.Sleep(10 * time.Millisecond) }
	input := testInput(vres.InLayout.L)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c := dialRegistered(t, ts.URL, 35)
	c.SetRetryPolicy(fheclient.RetryPolicy{MaxAttempts: 10, Budget: 45 * time.Second})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	outs := make([][]float64, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.Infer(ctx, input)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d never got through the storm: %v", i, err)
		}
		checkAgainstReference(t, vres, input, outs[i])
	}

	st := fetchStatz(t, ts.URL)
	if st.Served != clients {
		t.Fatalf("served %d, want %d: %+v", st.Served, clients, st)
	}
	if st.Rejected == 0 {
		t.Fatalf("storm produced no queue-full rejections: %+v", st)
	}
	if st.Failed != 0 || st.Panics != 0 {
		t.Fatalf("storm must only reject, not fail: %+v", st)
	}
}
