package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"antace/internal/store"
)

// durable is the daemon's disk tier: registered evaluation-key bundles
// spilled as checksummed snapshot files, a crash-safe journal of
// idempotent inference jobs, and per-job execution checkpoints. RAM
// stays the hot tier — nothing here sits on the request fast path
// except one fsynced journal append per keyed request — and disk turns
// a daemon restart from "every session and in-flight inference is
// lost" into "sessions reload lazily and journaled jobs resume from
// their last checkpoint".
//
// Layout under the data dir:
//
//	restarts          start counter (atomic snapshot file)
//	sessions/<id>.key registered key bundles, CRC-framed
//	jobs.log          journal: accept / complete / forget records
//	jobs/<hash>.ckpt  latest execution checkpoint per in-flight job
type durable struct {
	root    string
	sessDir string
	jobDir  string

	// mu serializes journal appends, compaction and disk-budget
	// accounting. Key-bundle and checkpoint file writes happen outside
	// it; they are atomic at the store layer.
	mu        sync.Mutex
	journal   *store.Log
	idemCap   int   // completed results retained across restarts
	budget    int64 // session spill budget in bytes
	sessBytes int64 // current bytes under sessDir

	ckptBytes   atomic.Int64  // live checkpoint file bytes
	ckptWritten atomic.Uint64 // cumulative checkpoint bytes (statz)
	storeErrs   atomic.Uint64 // persistence failures (serving continued)
}

// journalCap bounds jobs.log between compactions; crossing it triggers
// a rewrite keeping only live accepts and the retained result LRU.
const journalCap = 64 << 20

// Journal record kinds. A record is its kind byte followed by
// length-prefixed strings and a trailing opaque payload.
const (
	recAccept   = 1 // key, session id, deadline (unix ms), input ciphertext
	recComplete = 2 // key, result ciphertext
	recForget   = 3 // key
	// recCompleteLane extends recComplete for results evaluated inside a
	// shared batched ciphertext: key, lane (uint16), stride (uint16),
	// result ciphertext. Kept as a separate kind so journals written by
	// an unbatched daemon stay byte-identical to the pre-batching format
	// and old journals replay without migration.
	recCompleteLane = 4
)

// journalState is the fold of a journal replay: jobs accepted but not
// yet settled, and settled results in completion order.
type journalState struct {
	pending   map[string]acceptRec
	order     []string // accept order of pending keys
	completed map[string]completedRec
	done      []string // completion order of completed keys
}

// completedRec is one settled result: the reply bytes plus, for results
// that rode a shared batch, the caller's lane (stride <= 1 means solo).
type completedRec struct {
	lane   int
	stride int
	body   []byte
}

type acceptRec struct {
	sessID string
	// deadline is the absolute wall-clock deadline the client's request
	// carried when the job was accepted; zero means none was recorded.
	// Recovery honors it: a restarted daemon resumes the job with the
	// remaining budget rather than a fresh MaxDeadline, and drops jobs
	// whose deadline already passed (the client stopped waiting).
	deadline time.Time
	input    []byte
}

func openDurable(dir string, diskBudget int64, idemCap int) (*durable, *journalState, error) {
	d := &durable{
		root:    dir,
		sessDir: filepath.Join(dir, "sessions"),
		jobDir:  filepath.Join(dir, "jobs"),
		budget:  diskBudget,
		idemCap: idemCap,
	}
	for _, p := range []string{dir, d.sessDir, d.jobDir} {
		if err := os.MkdirAll(p, 0o700); err != nil {
			return nil, nil, err
		}
	}
	journal, records, err := store.OpenLog(filepath.Join(dir, "jobs.log"))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: job journal: %w", err)
	}
	d.journal = journal
	st, err := foldJournal(records)
	if err != nil {
		journal.Close()
		return nil, nil, err
	}
	d.sessBytes = dirBytes(d.sessDir)
	d.ckptBytes.Store(dirBytes(d.jobDir))
	return d, st, nil
}

func dirBytes(dir string) int64 {
	var total int64
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

// bumpRestarts increments the start counter and returns how many
// restarts (starts beyond the first) this data dir has seen.
func (d *durable) bumpRestarts() uint64 {
	var starts uint64
	if raw, err := store.ReadFile(filepath.Join(d.root, "restarts")); err == nil && len(raw) == 8 {
		starts = binary.LittleEndian.Uint64(raw)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], starts+1)
	if err := store.WriteFile(filepath.Join(d.root, "restarts"), buf[:]); err != nil {
		d.storeErrs.Add(1)
	}
	return starts // 0 on the very first start
}

// --- journal record encoding --------------------------------------------

func appendString(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		// Silent truncation of the length field would frame a record that
		// misparses on replay and bricks the next startup.
		return nil, fmt.Errorf("serve: journal string of %d bytes exceeds %d", len(s), math.MaxUint16)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func readString(data []byte) (string, []byte, error) {
	if len(data) < 2 {
		return "", nil, fmt.Errorf("serve: truncated journal string")
	}
	n := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	if len(data) < n {
		return "", nil, fmt.Errorf("serve: journal string %d > %d bytes", n, len(data))
	}
	return string(data[:n]), data[n:], nil
}

func encodeAccept(key, sessID string, deadline time.Time, input []byte) ([]byte, error) {
	buf, err := appendString([]byte{recAccept}, key)
	if err != nil {
		return nil, err
	}
	if buf, err = appendString(buf, sessID); err != nil {
		return nil, err
	}
	var ms int64
	if !deadline.IsZero() {
		ms = deadline.UnixMilli()
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ms))
	return append(buf, input...), nil
}

func encodeComplete(key string, result []byte) ([]byte, error) {
	buf, err := appendString([]byte{recComplete}, key)
	if err != nil {
		return nil, err
	}
	return append(buf, result...), nil
}

func encodeCompleteLane(key string, lane, stride int, result []byte) ([]byte, error) {
	if lane < 0 || lane > math.MaxUint16 || stride < 0 || stride > math.MaxUint16 {
		return nil, fmt.Errorf("serve: journal lane %d/stride %d out of range", lane, stride)
	}
	buf, err := appendString([]byte{recCompleteLane}, key)
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(lane))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(stride))
	return append(buf, result...), nil
}

func encodeForget(key string) ([]byte, error) {
	return appendString([]byte{recForget}, key)
}

// foldJournal reduces replayed records to the live state. Keys with
// limits overlapping (accept → forget → complete, from a handler that
// gave up while the worker finished) resolve in append order, so the
// final record wins.
func foldJournal(records [][]byte) (*journalState, error) {
	st := &journalState{pending: map[string]acceptRec{}, completed: map[string]completedRec{}}
	for i, rec := range records {
		if len(rec) < 1 {
			return nil, fmt.Errorf("serve: empty journal record %d", i)
		}
		kind, rest := rec[0], rec[1:]
		key, rest, err := readString(rest)
		if err != nil {
			return nil, fmt.Errorf("serve: journal record %d: %w", i, err)
		}
		switch kind {
		case recAccept:
			sessID, rest, err := readString(rest)
			if err != nil {
				return nil, fmt.Errorf("serve: journal record %d: %w", i, err)
			}
			if len(rest) < 8 {
				return nil, fmt.Errorf("serve: journal record %d: truncated deadline", i)
			}
			var deadline time.Time
			if ms := int64(binary.LittleEndian.Uint64(rest)); ms != 0 {
				deadline = time.UnixMilli(ms)
			}
			rest = rest[8:]
			if _, dup := st.pending[key]; !dup {
				st.order = append(st.order, key)
			}
			st.pending[key] = acceptRec{sessID: sessID, deadline: deadline, input: append([]byte(nil), rest...)}
		case recComplete:
			st.dropPending(key)
			if _, dup := st.completed[key]; !dup {
				st.done = append(st.done, key)
			}
			st.completed[key] = completedRec{body: append([]byte(nil), rest...)}
		case recCompleteLane:
			if len(rest) < 4 {
				return nil, fmt.Errorf("serve: journal record %d: truncated lane", i)
			}
			lane := int(binary.LittleEndian.Uint16(rest))
			strideV := int(binary.LittleEndian.Uint16(rest[2:]))
			rest = rest[4:]
			st.dropPending(key)
			if _, dup := st.completed[key]; !dup {
				st.done = append(st.done, key)
			}
			st.completed[key] = completedRec{lane: lane, stride: strideV, body: append([]byte(nil), rest...)}
		case recForget:
			st.dropPending(key)
		default:
			return nil, fmt.Errorf("serve: unknown journal record kind %d", kind)
		}
	}
	return st, nil
}

func (st *journalState) dropPending(key string) {
	if _, ok := st.pending[key]; !ok {
		return
	}
	delete(st.pending, key)
	for i, k := range st.order {
		if k == key {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// --- job journal --------------------------------------------------------

// accept journals an admitted idempotent job: key, owning session, the
// request's absolute deadline and the input ciphertext, fsynced before
// the job enters the queue so a crash at any later point can re-execute
// it within the client's remaining time budget.
func (d *durable) accept(key, sessID string, deadline time.Time, input []byte) error {
	rec, err := encodeAccept(key, sessID, deadline, input)
	if err != nil {
		d.storeErrs.Add(1)
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.journal.Append(rec); err != nil {
		d.storeErrs.Add(1)
		return err
	}
	d.compactIfOversized()
	return nil
}

// complete journals a finished job's result bytes — the persisted half
// of the idempotency success LRU — and removes its checkpoint. Results
// of batched evaluations (stride > 1) record their lane so post-restart
// replays carry the same lane headers.
func (d *durable) complete(key string, result []byte, lane, stride int) {
	var rec []byte
	var err error
	if stride > 1 {
		rec, err = encodeCompleteLane(key, lane, stride, result)
	} else {
		rec, err = encodeComplete(key, result)
	}
	if err != nil {
		d.storeErrs.Add(1)
	} else {
		d.mu.Lock()
		if err := d.journal.Append(rec); err != nil {
			d.storeErrs.Add(1)
		}
		d.compactIfOversized()
		d.mu.Unlock()
	}
	d.removeCheckpoint(key)
}

// forget journals that a job's attempt died (failure, timeout, drain):
// a post-restart retry must re-execute rather than resume or replay.
func (d *durable) forget(key string) {
	rec, err := encodeForget(key)
	if err != nil {
		d.storeErrs.Add(1)
	} else {
		d.mu.Lock()
		if err := d.journal.Append(rec); err != nil {
			d.storeErrs.Add(1)
		}
		d.compactIfOversized()
		d.mu.Unlock()
	}
	d.removeCheckpoint(key)
}

// compactIfOversized rewrites the journal down to live state once it
// crosses journalCap. Called with mu held.
func (d *durable) compactIfOversized() {
	if d.journal.Size() <= journalCap {
		return
	}
	data, err := os.ReadFile(d.journal.Path())
	if err != nil {
		d.storeErrs.Add(1)
		return
	}
	records, _, rerr := store.Replay(data)
	if rerr != nil {
		d.storeErrs.Add(1)
		return
	}
	st, err := foldJournal(records)
	if err != nil {
		d.storeErrs.Add(1)
		return
	}
	if err := d.rewrite(st); err != nil {
		d.storeErrs.Add(1)
	}
}

// rewrite compacts the journal to the given state: every pending
// accept plus the most recent idemCap completed results. Called with
// mu held.
func (d *durable) rewrite(st *journalState) error {
	var recs [][]byte
	for _, key := range st.order {
		a := st.pending[key]
		rec, err := encodeAccept(key, a.sessID, a.deadline, a.input)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	done := st.done
	if len(done) > d.idemCap {
		done = done[len(done)-d.idemCap:]
	}
	for _, key := range done {
		c := st.completed[key]
		var rec []byte
		var err error
		if c.stride > 1 {
			rec, err = encodeCompleteLane(key, c.lane, c.stride, c.body)
		} else {
			rec, err = encodeComplete(key, c.body)
		}
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	return d.journal.Rewrite(recs)
}

// --- checkpoints --------------------------------------------------------

// ckptPath names a job's checkpoint file. Idempotency keys are
// client-chosen strings, so they are hashed into fixed-width
// filesystem-safe names.
func (d *durable) ckptPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.jobDir, hex.EncodeToString(sum[:16])+".ckpt")
}

// writeCheckpoint atomically replaces the job's checkpoint file.
func (d *durable) writeCheckpoint(key string, snap []byte) error {
	path := d.ckptPath(key)
	var prev int64
	if info, err := os.Stat(path); err == nil {
		prev = info.Size()
	}
	if err := store.WriteFile(path, snap); err != nil {
		d.storeErrs.Add(1)
		return err
	}
	if info, err := os.Stat(path); err == nil {
		d.ckptBytes.Add(info.Size() - prev)
	}
	d.ckptWritten.Add(uint64(len(snap)))
	return nil
}

// readCheckpoint returns the job's latest checkpoint, or nil when none
// (or an unreadable one — resume falls back to instruction 0).
func (d *durable) readCheckpoint(key string) []byte {
	snap, err := store.ReadFile(d.ckptPath(key))
	if err != nil {
		return nil
	}
	return snap
}

func (d *durable) removeCheckpoint(key string) {
	path := d.ckptPath(key)
	if info, err := os.Stat(path); err == nil {
		if os.Remove(path) == nil {
			d.ckptBytes.Add(-info.Size())
		}
	}
}

// pruneCheckpoints removes checkpoint files with no pending journal
// entry (orphans from handlers that gave up while a worker kept
// checkpointing). Called once during recovery.
func (d *durable) pruneCheckpoints(st *journalState) {
	keep := make(map[string]bool, len(st.pending))
	for key := range st.pending {
		keep[filepath.Base(d.ckptPath(key))] = true
	}
	entries, err := os.ReadDir(d.jobDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !keep[e.Name()] {
			_ = os.Remove(filepath.Join(d.jobDir, e.Name()))
		}
	}
	d.ckptBytes.Store(dirBytes(d.jobDir))
}

// --- session spill ------------------------------------------------------

// validSessionID reports whether id has exactly the 32-lowercase-hex
// form newSessionID produces. Session ids arrive from clients (header,
// query param, URL path) and from replayed journal records, and they
// become file names under sessDir — anything else ("../…", encoded
// separators, the empty string) must be rejected before any disk
// operation or a hostile id escapes the data dir.
func validSessionID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (d *durable) sessPath(id string) string {
	return filepath.Join(d.sessDir, id+".key")
}

// saveSession spills a registered key bundle to the disk tier,
// evicting the stalest spilled sessions when over budget. A bundle
// larger than the whole budget is simply not spilled — the session
// still serves from RAM, it just will not survive a restart.
func (d *durable) saveSession(id string, raw []byte) error {
	if !validSessionID(id) {
		d.storeErrs.Add(1)
		return fmt.Errorf("serve: invalid session id %q", id)
	}
	if int64(len(raw)) > d.budget {
		d.storeErrs.Add(1)
		return fmt.Errorf("serve: bundle of %d bytes exceeds the disk budget of %d", len(raw), d.budget)
	}
	if err := store.WriteFile(d.sessPath(id), raw); err != nil {
		d.storeErrs.Add(1)
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sessBytes = dirBytes(d.sessDir)
	d.evictSessionsLocked(id)
	return nil
}

// evictSessionsLocked removes oldest-used session files (mtime order,
// refreshed on load) until the disk tier fits its budget, never
// touching the id just written.
func (d *durable) evictSessionsLocked(keep string) {
	if d.sessBytes <= d.budget {
		return
	}
	entries, err := os.ReadDir(d.sessDir)
	if err != nil {
		return
	}
	type fileAge struct {
		name string
		size int64
		mod  int64
	}
	var files []fileAge
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || !info.Mode().IsRegular() {
			continue
		}
		files = append(files, fileAge{e.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files {
		if d.sessBytes <= d.budget {
			return
		}
		if f.name == keep+".key" {
			continue
		}
		if os.Remove(filepath.Join(d.sessDir, f.name)) == nil {
			d.sessBytes -= f.size
		}
	}
}

// loadSession reads a spilled key bundle back, bumping its mtime so
// disk eviction approximates LRU.
func (d *durable) loadSession(id string) ([]byte, error) {
	if !validSessionID(id) {
		return nil, fmt.Errorf("serve: invalid session id %q: %w", id, os.ErrNotExist)
	}
	raw, err := store.ReadFile(d.sessPath(id))
	if err != nil {
		return nil, err
	}
	now := time.Now()
	_ = os.Chtimes(d.sessPath(id), now, now)
	return raw, nil
}

func (d *durable) dropSession(id string) bool {
	if !validSessionID(id) {
		return false
	}
	path := d.sessPath(id)
	info, err := os.Stat(path)
	if err != nil {
		return false
	}
	if os.Remove(path) != nil {
		return false
	}
	d.mu.Lock()
	d.sessBytes -= info.Size()
	d.mu.Unlock()
	return true
}

// sessionIDs lists the session ids spilled under sessDir, for
// membership re-replication (the disk tier outlives the RAM cache, so
// it is the authoritative enumeration of what this shard holds).
func (d *durable) sessionIDs() []string {
	entries, err := os.ReadDir(d.sessDir)
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".key") {
			continue
		}
		id := strings.TrimSuffix(name, ".key")
		if validSessionID(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// diskBytes reports the durable layer's total footprint for statz.
func (d *durable) diskBytes() int64 {
	d.mu.Lock()
	sess := d.sessBytes
	journal := d.journal.Size()
	d.mu.Unlock()
	return sess + journal + d.ckptBytes.Load()
}

func (d *durable) close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	_ = d.journal.Close()
}
