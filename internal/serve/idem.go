package serve

import (
	"container/list"
	"sync"
)

// idemEntry tracks one idempotency key's execution: in flight until done
// closes, then either a retained success (ok, body set — the exact bytes
// the first execution produced) or a failure (removed from the cache so
// a retry re-executes).
type idemEntry struct {
	key  string
	done chan struct{}
	ok   bool
	body []byte
	// lane/stride record where in the stored ciphertext the caller's
	// slots live when the execution rode a shared batch (stride <= 1
	// for solo results); replays re-emit them as response headers.
	lane   int
	stride int
	elem   *list.Element // non-nil once retained in the completed LRU
	// restored stashes a replicated completion that arrived while a local
	// attempt under the same key was still in flight (a hedged duplicate
	// racing the original's shipped settlement). If the local attempt is
	// abandoned or fails, the stash is promoted instead of forgetting the
	// key — the replicated bytes are the authoritative result.
	restored *completedResult
}

// idemCache makes /v1/infer retries safe: the first request bearing a
// key owns the execution; concurrent duplicates attach to it and
// replay its stored bytes, so a client that lost the response to a
// connection reset can retry without the program running twice. Only
// successes are retained (bounded LRU) — a failed execution removes its
// entry, because the correct response to "it broke" is a fresh attempt,
// not a replayed error.
type idemCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // completed entries, front = most recent
	byKey    map[string]*idemEntry
}

func newIdemCache(capacity int) *idemCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &idemCache{capacity: capacity, order: list.New(), byKey: map[string]*idemEntry{}}
}

// begin claims the key. The first caller gets owner=true and must
// eventually call complete; later callers get the same entry with
// owner=false and wait on entry.done (which may already be closed when
// the execution finished earlier).
func (c *idemCache) begin(key string) (entry *idemEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		return e, false
	}
	e := &idemEntry{key: key, done: make(chan struct{})}
	c.byKey[key] = e
	return e, true
}

// complete finalizes an owned entry. Success retains the body under the
// LRU cap; failure removes the key so the next attempt re-executes.
// Followers blocked on entry.done observe the final state afterwards.
func (c *idemCache) complete(e *idemEntry, ok bool, body []byte, lane, stride int) {
	c.mu.Lock()
	if !ok && e.restored != nil {
		// The local attempt died, but a replicated completion for this key
		// landed while it ran: promote it rather than forgetting the key,
		// or a hedge loser's cancellation would destroy the winner's
		// settled result.
		ok, body, lane, stride = true, e.restored.body, e.restored.lane, e.restored.stride
	}
	e.restored = nil
	e.ok, e.body = ok, body
	e.lane, e.stride = lane, stride
	if ok {
		e.elem = c.order.PushFront(e)
		for c.order.Len() > c.capacity {
			victim := c.order.Remove(c.order.Back()).(*idemEntry)
			delete(c.byKey, victim.key)
		}
	} else {
		delete(c.byKey, e.key)
	}
	c.mu.Unlock()
	close(e.done)
}

// restore seeds a retained success from the durable journal during
// crash recovery: the entry is born completed (done already closed), so
// a post-restart retry under the same key replays the stored bytes
// exactly as if the daemon had never died. Keys already present — e.g.
// claimed by an in-flight recovered job — are left alone.
func (c *idemCache) restore(key string, body []byte, lane, stride int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byKey[key]; ok {
		if e.elem == nil {
			// In flight here, already settled elsewhere (a hedged duplicate
			// raced the original): stash the authoritative bytes so an
			// abandoned local attempt promotes them instead of losing them.
			e.restored = &completedResult{key: key, lane: lane, stride: stride, body: body}
		}
		return
	}
	e := &idemEntry{key: key, done: make(chan struct{}), ok: true, body: body, lane: lane, stride: stride}
	close(e.done)
	e.elem = c.order.PushFront(e)
	c.byKey[key] = e
	for c.order.Len() > c.capacity {
		victim := c.order.Remove(c.order.Back()).(*idemEntry)
		delete(c.byKey, victim.key)
	}
}

// forgetCompleted removes a retained success, the in-memory half of a
// replicated forget: the shipping shard's attempt under this key died,
// so a retry arriving here must re-execute rather than replay stale
// bytes. In-flight entries are left alone — a local owner already
// racing under the key settles it itself.
func (c *idemCache) forgetCompleted(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if !ok || e.elem == nil {
		return
	}
	c.order.Remove(e.elem)
	delete(c.byKey, key)
}

// completedResult is one retained success, snapshotted for membership
// re-replication.
type completedResult struct {
	key    string
	lane   int
	stride int
	body   []byte
}

// completedSnapshot returns the retained successes oldest-first (LRU
// back to front), so re-replication re-applies them in roughly the
// order they were produced. In-flight entries are skipped — their
// completion ships through the normal path when it lands.
func (c *idemCache) completedSnapshot() []completedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]completedResult, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*idemEntry)
		out = append(out, completedResult{key: e.key, lane: e.lane, stride: e.stride, body: e.body})
	}
	return out
}

// len reports live entries (in-flight plus retained), for tests.
func (c *idemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
