package serve

import (
	"testing"
	"time"

	"antace/internal/ckks"
)

func put(t *testing.T, c *sessionCache, size int64) *session {
	t.Helper()
	s, err := c.put(&ckks.EvaluationKeySet{}, size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionCacheLRUEviction(t *testing.T) {
	c := newSessionCache(100)
	a := put(t, c, 40)
	b := put(t, c, 40)

	// Touch a so b becomes the eviction victim.
	if _, ok := c.get(a.id); !ok {
		t.Fatal("a vanished")
	}
	d := put(t, c, 40) // 120 > 100: evicts b (LRU)
	if _, ok := c.get(b.id); ok {
		t.Fatal("expected b to be evicted")
	}
	if _, ok := c.get(a.id); !ok {
		t.Fatal("a (recently used) must survive")
	}
	if _, ok := c.get(d.id); !ok {
		t.Fatal("d (just inserted) must survive")
	}

	count, used, hits, misses, evictions := c.snapshot()
	if count != 2 || used != 80 {
		t.Fatalf("count %d used %d, want 2/80", count, used)
	}
	if hits != 3 || misses != 1 || evictions != 1 {
		t.Fatalf("hits %d misses %d evictions %d, want 3/1/1", hits, misses, evictions)
	}
}

func TestSessionCacheRejectsOversized(t *testing.T) {
	c := newSessionCache(100)
	if _, err := c.put(&ckks.EvaluationKeySet{}, 101); err == nil {
		t.Fatal("a bundle above the whole budget must be refused")
	}
	// An exact-fit bundle evicts everything else but is accepted.
	put(t, c, 60)
	big := put(t, c, 100)
	count, used, _, _, _ := c.snapshot()
	if count != 1 || used != 100 {
		t.Fatalf("count %d used %d after exact-fit insert", count, used)
	}
	if _, ok := c.get(big.id); !ok {
		t.Fatal("exact-fit session missing")
	}
}

func TestSessionCacheDrop(t *testing.T) {
	c := newSessionCache(100)
	s := put(t, c, 10)
	if !c.drop(s.id) {
		t.Fatal("drop failed")
	}
	if c.drop(s.id) {
		t.Fatal("double drop succeeded")
	}
	if _, used, _, _, _ := c.snapshot(); used != 0 {
		t.Fatalf("bytes leaked after drop: %d", used)
	}
}

func TestSessionIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id, err := newSessionID()
		if err != nil {
			t.Fatal(err)
		}
		if len(id) != 32 || seen[id] {
			t.Fatalf("bad or duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestLatencyWindowQuantiles(t *testing.T) {
	w := newLatencyWindow(8)
	if p50, _, _ := w.quantiles(); p50 != 0 {
		t.Fatal("empty window must report zeros")
	}
	for i := 1; i <= 16; i++ { // overflows the ring: keeps the last 8 (9..16ms)
		w.add(time.Duration(i) * time.Millisecond)
	}
	p50, p90, p99 := w.quantiles()
	if p50 < 9 || p50 > 16 || p90 < p50 || p99 < p90 {
		t.Fatalf("quantiles out of order or range: %g %g %g", p50, p90, p99)
	}
}
