package serve

import (
	"bytes"
	"net/http"
	"strconv"

	"antace/internal/fault"
	"antace/internal/obs"
)

// contentTypeExposition is the media type of the Prometheus text format
// (version 0.0.4), sent on /metrics responses.
const contentTypeExposition = "text/plain; version=0.0.4; charset=utf-8"

// handleProfilez serves the aggregated per-opcode FHE profile: what the
// paper's Figure 6 measures offline, computed continuously over live
// traffic. Counts, total/mean/max times and duration histograms per
// ckks opcode, plus the most recent run's level/scale trajectory.
func (s *Server) handleProfilez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.prof.Snapshot())
}

// handleMetrics serves every statz counter, the request-level
// histograms and the per-opcode profile in Prometheus text exposition
// format. The page is rendered to a buffer first so a formatting error
// can never leave a scraper a half-written page.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := obs.NewExposition()
	st := s.StatzSnapshot()

	e.Family("ace_requests_served_total", "Inference requests completed with a 200.", obs.Counter).Add(float64(st.Served))
	e.Family("ace_requests_rejected_total", "Inference requests bounced 429 on a full queue.", obs.Counter).Add(float64(st.Rejected))
	e.Family("ace_requests_timed_out_total", "Inference requests that exceeded their deadline.", obs.Counter).Add(float64(st.TimedOut))
	e.Family("ace_requests_failed_total", "Inference requests that failed with a 5xx.", obs.Counter).Add(float64(st.Failed))
	e.Family("ace_eval_panics_total", "Evaluations that died in a recovered panic.", obs.Counter).Add(float64(st.Panics))
	e.Family("ace_idem_replays_total", "Responses served from the idempotency cache.", obs.Counter).Add(float64(st.IdemReplays))
	e.Family("ace_queue_expired_total", "Jobs dropped by workers because their deadline passed while queued.", obs.Counter).Add(float64(st.QueueExpired))

	e.Family("ace_batches_total", "Multi-request fused evaluations over shared ciphertexts.", obs.Counter).Add(float64(st.Batches))
	e.Family("ace_batched_jobs_total", "Requests served inside fused evaluations.", obs.Counter).Add(float64(st.BatchedJobs))
	e.Family("ace_batch_solo_fallbacks_total", "Coalescing windows that closed with a single request.", obs.Counter).Add(float64(st.SoloFallbacks))
	e.Family("ace_batch_lanes", "Maximum requests one evaluation carries (1 = batching off).", obs.Gauge).Add(float64(st.BatchLanes))
	e.Family("ace_batch_stride", "Slot-lane stride of the served program (1 = untransformed).", obs.Gauge).Add(float64(st.BatchStride))

	ff := e.Family("ace_fault_fired_total", "Armed fault-injection points fired, per point.", obs.Counter)
	for _, p := range fault.Snapshot() {
		ff.Add(float64(p.Fired), obs.Label{Name: "point", Value: p.Point})
	}

	e.Family("ace_queue_depth", "Jobs currently waiting in the queue.", obs.Gauge).Add(float64(st.QueueDepth))
	e.Family("ace_queue_capacity", "Configured queue bound.", obs.Gauge).Add(float64(st.QueueCap))
	e.Family("ace_workers", "Evaluation worker pool size.", obs.Gauge).Add(float64(st.Workers))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	e.Family("ace_draining", "1 while the server drains, 0 otherwise.", obs.Gauge).Add(draining)

	e.Family("ace_sessions", "Key bundles resident in RAM.", obs.Gauge).Add(float64(st.Sessions))
	e.Family("ace_session_bytes", "Evaluation-key bytes resident in RAM.", obs.Gauge).Add(float64(st.SessionBytes))
	e.Family("ace_session_budget_bytes", "Configured RAM budget for key bundles.", obs.Gauge).Add(float64(st.SessionBudget))
	e.Family("ace_session_hits_total", "Session cache hits.", obs.Counter).Add(float64(st.SessionHits))
	e.Family("ace_session_misses_total", "Session cache misses.", obs.Counter).Add(float64(st.SessionMisses))
	e.Family("ace_session_evictions_total", "Sessions evicted under the RAM budget.", obs.Counter).Add(float64(st.SessionEvictions))

	lq := e.Family("ace_latency_ms", "Request latency quantiles over the rolling window, in milliseconds.", obs.Gauge)
	lq.Add(st.LatencyMsP50, obs.Label{Name: "quantile", Value: "0.5"})
	lq.Add(st.LatencyMsP90, obs.Label{Name: "quantile", Value: "0.9"})
	lq.Add(st.LatencyMsP99, obs.Label{Name: "quantile", Value: "0.99"})

	qw := s.queueWait.Snapshot()
	e.Family("ace_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.", obs.HistogramT).
		AddHistogram(nil, qw.Bounds, qw.Counts, qw.SumSeconds)
	ev := s.evalHist.Snapshot()
	e.Family("ace_eval_seconds", "Wall-clock homomorphic evaluation time per job.", obs.HistogramT).
		AddHistogram(nil, ev.Bounds, ev.Counts, ev.SumSeconds)

	// Per-opcode instruction costs (the live Figure 6): one histogram
	// series per ckks opcode, bucket bounds shared with the request
	// histograms.
	prof := s.prof.Snapshot()
	if len(prof.Ops) > 0 {
		of := e.Family("ace_op_seconds", "Per-instruction execution time by ckks opcode.", obs.HistogramT)
		for _, op := range prof.Ops {
			of.AddHistogram([]obs.Label{{Name: "op", Value: op.Op}},
				obs.DurationBuckets, op.Buckets, op.TotalMs/1e3)
		}
	}
	e.Family("ace_profiled_runs_total", "Evaluations folded into the op profile.", obs.Counter).Add(float64(prof.Runs))

	e.Family("ace_restarts", "Prior starts of this data dir.", obs.Gauge).Add(float64(st.Restarts))
	e.Family("ace_sessions_recovered_total", "Key bundles reloaded from the disk tier.", obs.Counter).Add(float64(st.SessionsRecovered))
	e.Family("ace_jobs_resumed_total", "Journaled jobs resumed from a checkpoint.", obs.Counter).Add(float64(st.JobsResumed))
	e.Family("ace_checkpoint_bytes_total", "Cumulative checkpoint bytes written.", obs.Counter).Add(float64(st.CheckpointBytes))
	e.Family("ace_store_bytes", "Durable layer's current on-disk footprint.", obs.Gauge).Add(float64(st.StoreBytes))
	e.Family("ace_store_errs_total", "Persistence failures serving survived.", obs.Counter).Add(float64(st.StoreErrs))

	e.Family("ace_pending_recovery", "Journaled jobs crash recovery is still re-executing (readiness gate).", obs.Gauge).Add(float64(st.PendingRecovery))
	e.Family("ace_replica_sessions_total", "Replicated key bundles applied on this shard for a peer.", obs.Counter).Add(float64(st.ReplicaSessions))
	e.Family("ace_replica_results_total", "Replicated journal completions applied on this shard.", obs.Counter).Add(float64(st.ReplicaResults))
	e.Family("ace_replica_ship_errs_total", "Replication shipments this shard failed to send.", obs.Counter).Add(float64(st.ReplicaShipErrs))

	e.Family("ace_program_info", "Compiled program served by this daemon; value is always 1.", obs.Gauge).
		Add(1, obs.Label{Name: "name", Value: s.name})

	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, "rendering metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentTypeExposition)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
