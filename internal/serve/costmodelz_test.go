package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"antace/internal/core"
	"antace/internal/costmodel"
	"antace/internal/experiments"
	"antace/internal/fheclient"
	"antace/internal/obs"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// startResNetServer serves the reduced ResNet-20 — the program the
// paper's Figure 6 categories (Conv / Bootstrap / ReLU) are measured
// on — through the full serving stack.
func startResNetServer(t *testing.T) (*Server, *httptest.Server, int) {
	t.Helper()
	m, err := experiments.BuildModel(experiments.ModelSpec{Name: "ResNet-20", Depth: 20, Classes: 10}, experiments.ScaleReduced)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(m, experiments.ReducedConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The deep bootstrap chain needs a key bundle past the 256 MiB
	// default session budget.
	s, err := New(Program{Name: "resnet20-reduced", CKKS: c.CKKS, VecLen: c.VectorLen()},
		Config{Workers: 1, SessionBudget: 2 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts, c.VectorLen()
}

// TestCostmodelDifferential is the end-to-end check on the calibrated
// cost model: after real encrypted traffic through the loopback server,
// the model's per-category predictions (Conv / Bootstrap / ReLU) must
// track what /v1/profilez measured within 2x — under the shipped
// default constants AND under constants recalibrated live from that
// same profile. The comparison crosses /v1/costmodelz so the debug
// endpoint is exercised with its real payload.
func TestCostmodelDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full reduced-model inference")
	}
	_, ts, vecLen := startResNetServer(t)
	ctx := context.Background()

	c, err := fheclient.Dial(ctx, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(ctx, ring.SeedFromInt(23)); err != nil {
		t.Fatal(err)
	}
	input := testInput(vecLen)
	const runs = 2
	for i := 0; i < runs; i++ {
		if _, err := c.Infer(ctx, input); err != nil {
			t.Fatal(err)
		}
	}

	// The profile the fit will read.
	resp, err := http.Get(ts.URL + api.PathProfilez)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(readAll(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Runs != runs || len(snap.LastTrajectory) == 0 {
		t.Fatalf("profilez: runs=%d trajectory=%d", snap.Runs, len(snap.LastTrajectory))
	}

	resp, err = http.Get(ts.URL + api.PathCostmodelz)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d body %s", api.PathCostmodelz, resp.StatusCode, body)
	}
	var cm CostmodelzResponse
	if err := json.Unmarshal(body, &cm); err != nil {
		t.Fatalf("decoding costmodelz: %v\n%s", err, body)
	}
	if cm.Runs != runs {
		t.Errorf("costmodelz runs = %d, want %d", cm.Runs, runs)
	}
	if cm.MeasuredSec == nil {
		t.Fatal("costmodelz has no measured breakdown after traffic")
	}
	if cm.LiveErr != "" || cm.Live == nil || cm.PredictedLiveSec == nil {
		t.Fatalf("live recalibration failed: %q", cm.LiveErr)
	}
	if cm.Live.Source != "profile" {
		t.Errorf("live calibration source = %q, want profile", cm.Live.Source)
	}
	if len(cm.Fits) == 0 {
		t.Error("costmodelz has no per-op fit rows")
	}

	check := func(name string, pred costmodel.Breakdown) {
		t.Helper()
		for _, cat := range []struct {
			label      string
			meas, pred float64
		}{
			{"Conv", cm.MeasuredSec.Conv, pred.Conv},
			{"Bootstrap", cm.MeasuredSec.Bootstrap, pred.Bootstrap},
			{"ReLU", cm.MeasuredSec.ReLU, pred.ReLU},
		} {
			if cat.meas <= 0 {
				t.Errorf("%s: no measured %s time — the reduced ResNet-20 must exercise every category", name, cat.label)
				continue
			}
			r := cat.pred / cat.meas
			if r < 0.5 || r > 2 {
				t.Errorf("%s: %s predicted %.3fs vs measured %.3fs (ratio %.2f, want within 2x)",
					name, cat.label, cat.pred, cat.meas, r)
			}
		}
	}
	check("default-calibration", cm.PredictedDefaultSec)
	check("live-calibration", *cm.PredictedLiveSec)

	// The live fit must not be worse than the default overall: it was
	// fitted to exactly this machine's measurements.
	defErr := relErr(cm.PredictedDefaultSec.Total(), cm.MeasuredSec.Total())
	liveErr := relErr(cm.PredictedLiveSec.Total(), cm.MeasuredSec.Total())
	if liveErr > defErr*1.5 {
		t.Errorf("live calibration (err %.2f) materially worse than default (err %.2f)", liveErr, defErr)
	}
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	r := pred / meas
	if r < 1 {
		r = 1 / r
	}
	return r - 1
}

// TestCostmodelzIdle: before any traffic the endpoint still answers —
// with the default view and an explanatory live_error instead of
// fabricated constants.
func TestCostmodelzIdle(t *testing.T) {
	_, ts, _ := startServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + api.PathCostmodelz)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", api.PathCostmodelz, resp.StatusCode)
	}
	var cm CostmodelzResponse
	if err := json.Unmarshal(body, &cm); err != nil {
		t.Fatal(err)
	}
	if cm.Runs != 0 || cm.Live != nil || cm.LiveErr == "" {
		t.Fatalf("idle costmodelz: runs=%d live=%v live_error=%q, want 0/nil/non-empty", cm.Runs, cm.Live, cm.LiveErr)
	}
	if cm.PredictedDefaultSec.Total() <= 0 {
		t.Error("idle costmodelz has no default prediction")
	}
	if cm.Geometry.LogN <= 0 {
		t.Errorf("geometry %+v not populated", cm.Geometry)
	}
}
