// Package api defines the wire-level contract of the aced serving
// daemon: URL paths, header names and the JSON envelopes exchanged by
// internal/serve (the server) and internal/fheclient (the client).
// Bulk payloads — evaluation-key bundles and ciphertexts — travel as raw
// application/octet-stream bodies in the versioned ckks binary format;
// JSON carries only small control data.
package api

// URL paths of the v1 API.
const (
	PathSessions = "/v1/sessions"
	PathInfer    = "/v1/infer"
	PathProgram  = "/v1/program"
	PathHealthz  = "/v1/healthz"
	// PathReadyz is readiness, distinct from liveness: it answers 503
	// while the server drains or while crash recovery is still replaying
	// the job journal, so a cluster router stops routing to shards that
	// are alive but not yet able to serve. Healthz stays liveness-only.
	PathReadyz = "/v1/readyz"
	PathStatz  = "/v1/statz"
	// PathReplica accepts replication shipments from a peer shard: the
	// body is an ACELOG1 log image (internal/store framing) of session
	// and idempotency-journal records, applied CRC-checked and
	// torn-tail-tolerant so a shipper that died mid-stream leaves the
	// replica with the intact prefix, never garbage.
	PathReplica = "/v1/replica"
	// PathCostmodelz serves the calibrated cost model's view of the
	// served program: the default and live-recalibrated constants, the
	// per-opcode fit, and measured vs predicted per-category breakdowns
	// (JSON, debug endpoint).
	PathCostmodelz = "/v1/costmodelz"
	// PathProfilez serves the per-opcode FHE profile (JSON
	// obs.ProfileSnapshot): aggregated instruction costs over every
	// evaluation since boot plus the last run's level/scale trajectory.
	PathProfilez = "/v1/profilez"
	// PathMetrics serves the same counters in Prometheus text
	// exposition format. It sits outside the /v1 prefix because
	// scrapers conventionally expect the bare path.
	PathMetrics = "/metrics"

	// Cluster membership endpoints. The router owns the membership state
	// machine: PathClusterJoin and PathClusterLeave mutate the ring
	// (adding or draining a shard) and PathClusterMembership reads the
	// current epoch + member list — served by the router authoritatively
	// and by every shard as its last-adopted view, so clients and
	// operators can refresh a stale endpoint list from any live process.
	// PathClusterUpdate is shard-side only: the router broadcasts each
	// committed ring change there and the shard re-replicates the
	// ownership delta before acknowledging.
	PathClusterJoin       = "/v1/cluster/join"
	PathClusterLeave      = "/v1/cluster/leave"
	PathClusterMembership = "/v1/cluster/membership"
	PathClusterUpdate     = "/v1/cluster/update"
)

// Request headers.
const (
	// HeaderSession carries the session ID on inference requests.
	HeaderSession = "X-ACE-Session"
	// HeaderDeadlineMs carries an optional per-request deadline in
	// milliseconds; the server clamps it to its configured maximum and
	// aborts the homomorphic evaluation when it expires.
	HeaderDeadlineMs = "X-ACE-Deadline-Ms"
	// HeaderIdemKey carries an optional idempotency key on /v1/infer. A
	// retried request bearing the same key replays the stored result —
	// bit-identical ciphertext, no re-execution — or attaches to the
	// in-flight execution if one is still running. Keys are scoped to
	// the session.
	HeaderIdemKey = "X-ACE-Idem-Key"
	// HeaderIdemReplayed marks a response served from the idempotency
	// cache rather than a fresh evaluation.
	HeaderIdemReplayed = "X-ACE-Idem-Replayed"
	// HeaderLane and HeaderLaneStride are set on /v1/infer responses
	// when the server evaluated the request inside a shared batched
	// ciphertext: the reply holds BatchStride interleaved results, and
	// this caller's logical slot i lives at physical slot i·stride+lane.
	// Absent (or stride ≤ 1) means the reply is a plain solo ciphertext.
	HeaderLane       = "X-ACE-Lane"
	HeaderLaneStride = "X-ACE-Lane-Stride"
	// HeaderTrace carries the request trace id on /v1/infer, in both
	// directions: a client may supply one (8..64 lowercase hex
	// characters) to correlate its own logs with the server's; anything
	// else — including absence — makes the server mint a fresh id. The
	// response always echoes the id actually used, and every structured
	// log event for the request carries it as the "trace" attribute.
	HeaderTrace = "X-ACE-Trace"
	// HeaderEpoch carries the cluster membership epoch. Replica shipments
	// stamp the shipper's epoch so a receiver on a newer ring can answer
	// 409 with its Membership (the shipper adopts it and re-targets);
	// shards stamp their current epoch on /v1/infer replies so clients can
	// notice a topology change and refresh their endpoint list.
	HeaderEpoch = "X-ACE-Epoch"
)

// ContentTypeBinary is the media type of key and ciphertext bodies.
const ContentTypeBinary = "application/octet-stream"

// ProgramSpec is returned by GET /v1/program: everything a client needs
// to generate compatible key material and encrypt inputs. Params holds a
// serialized ckks.ParametersLiteral — prime generation is deterministic,
// so decoding it yields the server's exact rings.
type ProgramSpec struct {
	Name        string  `json:"name"`
	Params      []byte  `json:"params"`
	LogN        int     `json:"log_n"`
	VecLen      int     `json:"vec_len"`
	InputLevel  int     `json:"input_level"`
	InputScale  float64 `json:"input_scale"`
	Rotations   []int   `json:"rotations"`
	Conjugation bool    `json:"conjugation"`
	NeedRlk     bool    `json:"need_rlk"`
	Bootstraps  int     `json:"bootstraps"`
	// BatchStride > 1 means the server runs a lane-transformed program:
	// clients must encode their VecLen input strided — logical slot i at
	// physical slot i·BatchStride (lane 0) of a VecLen·BatchStride slot
	// vector — and extract their lane from replies per HeaderLane.
	BatchStride int `json:"batch_stride,omitempty"`
}

// SessionReply is returned by POST /v1/sessions.
type SessionReply struct {
	SessionID string `json:"session_id"`
	KeyBytes  int64  `json:"key_bytes"`
	GaloisLen int    `json:"galois_len"`
}

// ErrorReply is the body of every non-2xx response. Code, when present,
// is a stable machine-readable failure class from the internal/fault
// taxonomy (EVAL_PANIC, EVAL_ERROR, FAULT_INJECTED) that clients key
// retry decisions on; Error is human-readable detail.
type ErrorReply struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Healthz is returned by GET /v1/healthz.
type Healthz struct {
	Status string `json:"status"` // "ok" or "draining"
}

// Readyz is returned by GET /v1/readyz: "ready" with 200 once the shard
// accepts inference traffic; "recovering" (journal replay still
// re-executing jobs) or "draining" with 503 otherwise.
type Readyz struct {
	Status string `json:"status"`
	// PendingRecovery counts journaled jobs still being re-executed by
	// crash recovery while the status is "recovering".
	PendingRecovery int64 `json:"pending_recovery,omitempty"`
}

// ReplicaApply is returned by POST /v1/replica: how many records of the
// shipped image were applied. Torn marks an image that ended mid-frame
// — the intact prefix was applied and the shipper should re-send the
// records past Applied.
type ReplicaApply struct {
	Applied int  `json:"applied"`
	Torn    bool `json:"torn,omitempty"`
}

// Membership is the cluster view at one epoch: the sorted member list of
// the consistent-hash ring. Epoch increments by exactly one per committed
// topology change; Members is the full post-change endpoint list (the
// ring is a pure function of it). Returned by GET /v1/cluster/membership
// and as the 409 body of an epoch-stale /v1/replica shipment.
type Membership struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// JoinRequest is the body of POST /v1/cluster/join: the endpoint of a
// running shard to add to the ring. The call returns only after every
// member has adopted the new ring and the ownership delta has been
// re-replicated.
type JoinRequest struct {
	Endpoint string `json:"endpoint"`
}

// LeaveRequest is the body of POST /v1/cluster/leave. A plain leave is a
// drain: the departing shard re-ships all state it holds to the new
// owners, finishes in-flight work, and acknowledges before the epoch
// commits. Force skips contacting the departing shard — used by the
// router's health prober to eject a dead member (its replicas re-ship
// the orphaned state instead).
type LeaveRequest struct {
	Endpoint string `json:"endpoint"`
	Force    bool   `json:"force,omitempty"`
}

// ClusterUpdate is broadcast by the router to every shard on a topology
// change (POST /v1/cluster/update). Leaving names the departing endpoint
// on a drain ("" for joins/ejections); a shard seeing itself in Leaving
// (or absent from Members) re-ships everything it holds and begins
// drain-for-handoff before acknowledging.
type ClusterUpdate struct {
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
	Leaving string   `json:"leaving,omitempty"`
}

// ClusterUpdateReply acknowledges a ClusterUpdate: the epoch the shard
// now serves under and how many replication records the ownership delta
// made it re-ship.
type ClusterUpdateReply struct {
	Epoch     uint64 `json:"epoch"`
	Reshipped int    `json:"reshipped"`
}

// Statz is returned by GET /v1/statz.
type Statz struct {
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	TimedOut uint64 `json:"timed_out"`
	Failed   uint64 `json:"failed"`
	// Panics counts evaluations that died in a recovered panic — the
	// worker survived, the request answered 500 EVAL_PANIC.
	Panics uint64 `json:"panics"`
	// IdemReplays counts /v1/infer responses served from the idempotency
	// cache instead of a fresh evaluation.
	IdemReplays uint64 `json:"idem_replays"`
	// FaultsFired counts armed injection points firing (zero outside
	// chaos runs).
	FaultsFired uint64 `json:"faults_fired"`
	// QueueExpired counts jobs dropped by workers because their deadline
	// passed while queued — previously folded invisibly into TimedOut.
	QueueExpired uint64 `json:"queue_expired"`
	QueueDepth   int    `json:"queue_depth"`
	QueueCap     int    `json:"queue_cap"`
	Workers      int    `json:"workers"`
	Draining     bool   `json:"draining"`

	// Cross-request batching: Batches counts multi-job fused evaluations,
	// BatchedJobs the requests they carried (so BatchedJobs/Batches is
	// the realized mean occupancy), SoloFallbacks coalesced windows that
	// closed with a single job and ran unbatched. BatchLanes/BatchStride
	// echo the effective configuration (lanes ≤ stride; 1 = batching off).
	Batches       uint64 `json:"batches"`
	BatchedJobs   uint64 `json:"batched_jobs"`
	SoloFallbacks uint64 `json:"solo_fallbacks"`
	BatchLanes    int    `json:"batch_lanes"`
	BatchStride   int    `json:"batch_stride"`

	Sessions         int    `json:"sessions"`
	SessionBytes     int64  `json:"session_bytes"`
	SessionBudget    int64  `json:"session_budget"`
	SessionHits      uint64 `json:"session_hits"`
	SessionMisses    uint64 `json:"session_misses"`
	SessionEvictions uint64 `json:"session_evictions"`

	LatencyMsP50 float64 `json:"latency_ms_p50"`
	LatencyMsP90 float64 `json:"latency_ms_p90"`
	LatencyMsP99 float64 `json:"latency_ms_p99"`

	// Durability counters; all zero when the daemon runs without a data
	// dir. Restarts counts prior starts of this data dir (0 on the first
	// boot); SessionsRecovered counts key bundles reloaded from the disk
	// tier; JobsResumed counts journaled jobs that resumed from a
	// checkpoint rather than re-executing from instruction 0.
	Restarts          uint64 `json:"restarts"`
	SessionsRecovered uint64 `json:"sessions_recovered"`
	JobsResumed       uint64 `json:"jobs_resumed"`
	// CheckpointBytes is the cumulative checkpoint volume written;
	// StoreBytes the durable layer's current on-disk footprint;
	// StoreErrs the persistence failures serving survived (fail-open).
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	StoreBytes      int64  `json:"store_bytes"`
	StoreErrs       uint64 `json:"store_errs"`

	// Cluster replication: PendingRecovery is the readiness gate (jobs
	// crash recovery is still re-executing); ReplicaSessions and
	// ReplicaResults count records applied on this shard as a replica for
	// a peer; ReplicaShipErrs counts shipments this shard failed to send
	// to its successor (replication is fail-open — serving continued).
	PendingRecovery int64  `json:"pending_recovery"`
	ReplicaSessions uint64 `json:"replica_sessions"`
	ReplicaResults  uint64 `json:"replica_results"`
	ReplicaShipErrs uint64 `json:"replica_ship_errs"`
}
