package serve

import (
	"errors"
	"log/slog"
	"net/http"
	"strconv"

	"antace/internal/ckks"
	"antace/internal/cluster"
	"antace/internal/serve/api"
	"antace/internal/store"
)

// Replicator receives this shard's durable state as it is produced, to
// ship to a successor shard: the session key bundle at registration and
// every idempotency-journal settlement afterwards. The serve layer only
// calls it — internal/cluster provides the implementation that hashes
// the session onto a ring and POSTs ACELOG1 images to the peer — so a
// shard without cluster wiring keeps the exact single-node behavior.
//
// ShipSession is synchronous: registration does not answer 201 until
// the replica holds the keys (or shipping conclusively failed, which is
// fail-open and counted). ShipComplete and ShipForget are asynchronous;
// a lost completion only costs the replica a deterministic
// re-execution on failover, never a wrong answer.
type Replicator interface {
	ShipSession(id string, bundle []byte) error
	ShipComplete(key string, lane, stride int, body []byte)
	ShipForget(key string)
}

// handleReplicaApply ingests one replication shipment: the body is an
// ACELOG1 log image of cluster replication records. The store layer's
// CRC framing is the integrity check — a corrupt frame rejects the
// shipment with 400, while a torn tail (the shipper died or the
// replica.ship.torn fault cut the stream mid-frame) applies the intact
// prefix and reports how many records landed so the shipper re-sends
// only the remainder.
func (s *Server) handleReplicaApply(w http.ResponseWriter, r *http.Request) {
	// Epoch gate: a shipment stamped with an older membership epoch comes
	// from a shard that has not adopted the current ring — its placement
	// may be wrong. Answer 409 with this shard's membership so the
	// shipper adopts it and re-targets; shipments without the header (or
	// from an equal/newer epoch) apply normally.
	if eh := r.Header.Get(api.HeaderEpoch); eh != "" {
		if view, ok := s.clusterMembership(); ok {
			if shipEpoch, perr := strconv.ParseUint(eh, 10, 64); perr == nil && shipEpoch < view.Epoch {
				writeJSON(w, http.StatusConflict, view)
				return
			}
		}
	}
	body, err := readBody(w, r, s.cfg.MaxUploadBytes+s.cfg.MaxCipherBytes)
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "replica image: %v", err)
		return
	}
	records, _, rerr := store.Replay(body)
	torn := false
	switch {
	case rerr == nil:
	case errors.Is(rerr, store.ErrTorn):
		torn = true
	default:
		writeErr(w, http.StatusBadRequest, "replica image: %v", rerr)
		return
	}
	applied := 0
	for _, raw := range records {
		rec, err := cluster.DecodeRecord(raw)
		if err != nil {
			// The frame passed its CRC but does not parse: a protocol
			// mismatch, not wire damage. Report what landed and refuse the
			// rest — re-shipping the same bytes cannot help.
			writeErr(w, http.StatusBadRequest, "replica record %d: %v", applied, err)
			return
		}
		if err := s.applyReplicaRecord(rec); err != nil {
			writeErr(w, http.StatusBadRequest, "replica record %d: %v", applied, err)
			return
		}
		applied++
	}
	writeJSON(w, http.StatusOK, api.ReplicaApply{Applied: applied, Torn: torn})
}

// applyReplicaRecord lands one replicated record in the same stores a
// local request would use, so failover needs no special read path: a
// replicated session serves /v1/infer via the ordinary session lookup
// and a replicated completion replays via the ordinary idempotency
// cache, bit for bit.
func (s *Server) applyReplicaRecord(rec cluster.Record) error {
	switch rec.Kind {
	case cluster.RecSession:
		if !validSessionID(rec.SessionID) {
			return errInvalidReplicaSession
		}
		keys := &ckks.EvaluationKeySet{}
		if err := keys.UnmarshalBinary(rec.Bundle); err != nil {
			return err
		}
		if err := s.validateKeys(keys); err != nil {
			return err
		}
		if _, err := s.sessions.putWithID(rec.SessionID, keys, int64(len(rec.Bundle))); err != nil {
			return err
		}
		if s.dur != nil {
			// Fail open like local registration: a disk error leaves the
			// replica RAM-only, counted in storeErrs.
			_ = s.dur.saveSession(rec.SessionID, rec.Bundle)
		}
		s.stats.replicaSessions.Add(1)
		s.log.Info("replica.session", slog.String("session", rec.SessionID),
			slog.Int("bytes", len(rec.Bundle)))
	case cluster.RecComplete:
		s.idem.restore(rec.Key, rec.Body, rec.Lane, rec.Stride)
		if s.dur != nil {
			s.dur.complete(rec.Key, rec.Body, rec.Lane, rec.Stride)
		}
		s.stats.replicaResults.Add(1)
	case cluster.RecForget:
		s.idem.forgetCompleted(rec.Key)
		if s.dur != nil {
			s.dur.forget(rec.Key)
		}
	default:
		return errUnknownReplicaRecord
	}
	return nil
}

var (
	errInvalidReplicaSession = errors.New("serve: replicated session id is not 32 lowercase hex")
	errUnknownReplicaRecord  = errors.New("serve: unknown replication record kind")
)

// handleReadyz is the routing signal, distinct from the liveness probe:
// a shard that is draining or still re-executing journaled jobs after a
// crash is alive (healthz says so) but must not receive traffic yet, so
// readiness answers 503 with a Retry-After hint until both clear.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.handingOff.Load() {
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, api.Readyz{Status: "handing-off"})
		return
	}
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, api.Readyz{Status: "draining"})
		return
	}
	if pending := s.recovering.Load(); pending > 0 {
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, api.Readyz{Status: "recovering", PendingRecovery: pending})
		return
	}
	writeJSON(w, http.StatusOK, api.Readyz{Status: "ready"})
}
