package tensor

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAtSet(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 || x.Rank() != 3 {
		t.Fatal("size/rank wrong")
	}
	x.Set(5, 1, 2, 3)
	if x.At(1, 2, 3) != 5 {
		t.Fatal("At/Set round trip failed")
	}
	if x.Data[23] != 5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestReshapeInference(t *testing.T) {
	x := New(2, 3, 4)
	y, err := x.Reshape(6, -1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[1] != 4 {
		t.Fatalf("inferred %d, want 4", y.Shape[1])
	}
	if _, err := x.Reshape(5, -1); err == nil {
		t.Fatal("expected error for non-divisible inference")
	}
	if _, err := x.Reshape(-1, -1); err == nil {
		t.Fatal("expected error for double inference")
	}
	f := x.Flatten()
	if f.Shape[0] != 2 || f.Shape[1] != 12 {
		t.Fatalf("flatten gave %v", f.Shape)
	}
}

func TestGemmIdentity(t *testing.T) {
	// A * I == A
	a := FromData([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	id := New(3, 3)
	for i := 0; i < 3; i++ {
		id.Set(1, i, i)
	}
	out, err := Gemm(a, id, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if !almostEq(out.Data[i], a.Data[i]) {
			t.Fatal("A*I != A")
		}
	}
}

func TestGemmBias(t *testing.T) {
	a := FromData([]float64{1, 0, 0, 1}, 2, 2)
	b := FromData([]float64{1, 2, 3, 4}, 2, 2)
	c := FromData([]float64{10, 20}, 2)
	out, err := Gemm(a, b, c, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 13, 24}
	for i := range want {
		if !almostEq(out.Data[i], want[i]) {
			t.Fatalf("got %v want %v", out.Data, want)
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	m, k, n := 5, 7, 4
	a, b := New(m, k), New(k, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float64()
	}
	out, err := Gemm(a, b, nil, 2.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for l := 0; l < k; l++ {
				want += a.At(i, l) * b.At(l, j)
			}
			if !almostEq(out.At(i, j), 2.5*want) {
				t.Fatalf("gemm mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestConv2DKnown(t *testing.T) {
	// 1x1x3x3 input, 1x1x2x2 kernel of ones, stride 1, no padding:
	// output is the 2x2 sums.
	x := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := FromData([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	out, err := Conv2D(x, w, nil, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 16, 24, 28}
	for i := range want {
		if !almostEq(out.Data[i], want[i]) {
			t.Fatalf("conv got %v want %v", out.Data, want)
		}
	}
}

func TestConv2DPaddingStride(t *testing.T) {
	x := FromData([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	w := FromData([]float64{1}, 1, 1, 1, 1) // identity kernel
	out, err := Conv2D(x, w, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Padded 4x4 sampled at stride 2 with 1x1 kernel: corners of padding.
	if out.Shape[2] != 2 || out.Shape[3] != 2 {
		t.Fatalf("shape %v", out.Shape)
	}
	want := []float64{0, 0, 0, 4}
	for i := range want {
		if !almostEq(out.Data[i], want[i]) {
			t.Fatalf("conv got %v want %v", out.Data, want)
		}
	}
}

func TestConv2DBiasAndChannels(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	x := New(1, 3, 5, 5)
	w := New(2, 3, 3, 3)
	bias := FromData([]float64{0.5, -0.5}, 2)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	for i := range w.Data {
		w.Data[i] = rng.Float64() - 0.5
	}
	out, err := Conv2D(x, w, bias, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape[1] != 2 || out.Shape[2] != 5 || out.Shape[3] != 5 {
		t.Fatalf("shape %v", out.Shape)
	}
	// Spot-check one output element against a direct sum.
	co, oy, ox := 1, 2, 3
	acc := bias.Data[co]
	for ci := 0; ci < 3; ci++ {
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				iy, ix := oy+ky-1, ox+kx-1
				if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
					continue
				}
				acc += x.At(0, ci, iy, ix) * w.At(co, ci, ky, kx)
			}
		}
	}
	if !almostEq(out.At(0, co, oy, ox), acc) {
		t.Fatalf("conv spot check: got %g want %g", out.At(0, co, oy, ox), acc)
	}
}

func TestPools(t *testing.T) {
	x := FromData([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 1, 1, 4, 4)
	avg, err := AveragePool2D(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if !almostEq(avg.Data[i], want[i]) {
			t.Fatalf("avgpool got %v", avg.Data)
		}
	}
	gap, err := GlobalAveragePool2D(x)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(gap.Data[0], 8.5) {
		t.Fatalf("global avg got %g", gap.Data[0])
	}
}

func TestBatchNormFold(t *testing.T) {
	x := New(1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	gamma := FromData([]float64{2, 1}, 2)
	beta := FromData([]float64{1, 0}, 2)
	mean := FromData([]float64{1, 2}, 2)
	variance := FromData([]float64{4, 1}, 2)
	out, err := BatchNorm(x, gamma, beta, mean, variance, 0)
	if err != nil {
		t.Fatal(err)
	}
	// channel 0: y = 2*(x-1)/2 + 1 = x
	for i := 0; i < 4; i++ {
		if !almostEq(out.Data[i], float64(i)) {
			t.Fatalf("bn channel 0: got %v", out.Data[:4])
		}
	}
	// channel 1: y = (x-2)
	for i := 4; i < 8; i++ {
		if !almostEq(out.Data[i], float64(i)-2) {
			t.Fatalf("bn channel 1: got %v", out.Data[4:])
		}
	}
}

func TestReLUAndSoftmaxAndArgMax(t *testing.T) {
	x := FromData([]float64{-1, 0, 2, -3}, 4)
	r := ReLU(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if r.Data[i] != want[i] {
			t.Fatalf("relu got %v", r.Data)
		}
	}
	s := Softmax(FromData([]float64{1, 2, 3}, 3))
	sum := s.Data[0] + s.Data[1] + s.Data[2]
	if !almostEq(sum, 1) {
		t.Fatalf("softmax does not sum to 1: %g", sum)
	}
	if !(s.Data[2] > s.Data[1] && s.Data[1] > s.Data[0]) {
		t.Fatal("softmax not monotone")
	}
	if ArgMax(s) != 2 {
		t.Fatal("argmax wrong")
	}
}

func TestPad2D(t *testing.T) {
	x := FromData([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	p, err := Pad2D(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shape[2] != 4 || p.Shape[3] != 4 {
		t.Fatalf("pad shape %v", p.Shape)
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 1, 1) != 1 || p.At(0, 0, 2, 2) != 4 {
		t.Fatal("pad content wrong")
	}
}

func TestStridedSlice(t *testing.T) {
	x := New(4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out, err := StridedSlice(x, []int{0, 1}, []int{2, 2}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 9, 11}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("strided_slice got %v want %v", out.Data, want)
		}
	}
	if _, err := StridedSlice(x, []int{3, 0}, []int{2, 1}, []int{2, 1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestConvLinearityProperty(t *testing.T) {
	// Conv2D is linear in the input: conv(a*x + y) == a*conv(x) + conv(y).
	w := New(2, 1, 3, 3)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := range w.Data {
		w.Data[i] = rng.Float64() - 0.5
	}
	f := func(seed uint64, alpha int8) bool {
		r2 := rand.New(rand.NewPCG(seed, 1))
		x, y := New(1, 1, 4, 4), New(1, 1, 4, 4)
		for i := range x.Data {
			x.Data[i] = r2.Float64()
			y.Data[i] = r2.Float64()
		}
		a := float64(alpha) / 8
		mix := New(1, 1, 4, 4)
		for i := range mix.Data {
			mix.Data[i] = a*x.Data[i] + y.Data[i]
		}
		c1, _ := Conv2D(mix, w, nil, 1, 1)
		cx, _ := Conv2D(x, w, nil, 1, 1)
		cy, _ := Conv2D(y, w, nil, 1, 1)
		for i := range c1.Data {
			if math.Abs(c1.Data[i]-(a*cx.Data[i]+cy.Data[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
