// Package tensor provides the dense float64 tensor type and the neural
// network operators (convolution, GEMM, pooling, batch normalisation,
// ReLU, softmax) used as the plaintext reference semantics for the
// compiler: the NN IR's operators are defined to match these, and the
// cleartext executors validate every lowering against them.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromData wraps existing data (not copied) with a shape.
func FromData(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: %d elements do not fit shape %v", len(data), shape))
	}
	return t
}

// Size returns the number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: append([]float64(nil), t.Data...)}
}

// At reads the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set writes the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d)", x, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Reshape returns a view with a new shape of identical size. A single -1
// dimension is inferred.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	infer := -1
	n := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				return nil, fmt.Errorf("tensor: multiple -1 dimensions in %v", shape)
			}
			infer = i
			continue
		}
		n *= d
	}
	out := append([]int(nil), shape...)
	if infer >= 0 {
		if t.Size()%n != 0 {
			return nil, fmt.Errorf("tensor: cannot infer dimension for %v from size %d", shape, t.Size())
		}
		out[infer] = t.Size() / n
		n *= out[infer]
	}
	if n != t.Size() {
		return nil, fmt.Errorf("tensor: reshape %v -> %v changes size", t.Shape, shape)
	}
	return &Tensor{Shape: out, Data: t.Data}, nil
}

// Flatten collapses everything after the first axis.
func (t *Tensor) Flatten() *Tensor {
	if len(t.Shape) == 0 {
		return t
	}
	out, _ := t.Reshape(t.Shape[0], -1)
	return out
}

// Add returns t + o elementwise (shapes must match).
func Add(a, b *Tensor) (*Tensor, error) {
	if !sameShape(a.Shape, b.Shape) {
		return nil, fmt.Errorf("tensor: add shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out, nil
}

// Mul returns a ⊙ b elementwise.
func Mul(a, b *Tensor) (*Tensor, error) {
	if !sameShape(a.Shape, b.Shape) {
		return nil, fmt.Errorf("tensor: mul shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out, nil
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sigmoid applies 1/(1+e^-x) elementwise.
func Sigmoid(t *Tensor) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return out
}

// Tanh applies tanh elementwise.
func Tanh(t *Tensor) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(t *Tensor) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Gemm computes alpha*A*B + beta*C for 2-D A (m,k), B (k,n) and
// broadcastable C ((n), (1,n) or (m,n)); C may be nil.
func Gemm(a, b, c *Tensor, alpha, beta float64) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: gemm requires matrices, got %v x %v", a.Shape, b.Shape)
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: gemm inner dimension mismatch %d vs %d", k, k2)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := alpha * a.Data[i*k+l]
			if av == 0 {
				continue
			}
			row := b.Data[l*n : (l+1)*n]
			dst := out.Data[i*n : (i+1)*n]
			for j, bv := range row {
				dst[j] += av * bv
			}
		}
	}
	if c != nil && beta != 0 {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var cv float64
				switch {
				case c.Rank() == 1 && c.Shape[0] == n:
					cv = c.Data[j]
				case c.Rank() == 2 && c.Shape[0] == 1 && c.Shape[1] == n:
					cv = c.Data[j]
				case c.Rank() == 2 && c.Shape[0] == m && c.Shape[1] == n:
					cv = c.Data[i*n+j]
				case c.Rank() == 2 && c.Shape[0] == n && c.Shape[1] == 1:
					cv = c.Data[j]
				default:
					return nil, fmt.Errorf("tensor: gemm bias shape %v not broadcastable to (%d,%d)", c.Shape, m, n)
				}
				out.Data[i*n+j] += beta * cv
			}
		}
	}
	return out, nil
}

// Conv2D computes a 2-D convolution in NCHW layout with OIHW weights,
// symmetric zero padding and the given stride. Bias may be nil.
func Conv2D(x, w, bias *Tensor, stride, pad int) (*Tensor, error) {
	if x.Rank() != 4 || w.Rank() != 4 {
		return nil, fmt.Errorf("tensor: conv2d requires NCHW input and OIHW weights, got %v, %v", x.Shape, w.Shape)
	}
	n, cIn, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	cOut, cIn2, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cIn != cIn2 {
		return nil, fmt.Errorf("tensor: conv2d channel mismatch %d vs %d", cIn, cIn2)
	}
	if bias != nil && bias.Size() != cOut {
		return nil, fmt.Errorf("tensor: conv2d bias size %d, want %d", bias.Size(), cOut)
	}
	oh := (h+2*pad-kh)/stride + 1
	ow := (wd+2*pad-kw)/stride + 1
	out := New(n, cOut, oh, ow)
	for b := 0; b < n; b++ {
		for co := 0; co < cOut; co++ {
			base := 0.0
			if bias != nil {
				base = bias.Data[co]
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := base
					for ci := 0; ci < cIn; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= wd {
									continue
								}
								acc += x.Data[((b*cIn+ci)*h+iy)*wd+ix] * w.Data[((co*cIn+ci)*kh+ky)*kw+kx]
							}
						}
					}
					out.Data[((b*cOut+co)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out, nil
}

// AveragePool2D applies average pooling with the given kernel and stride
// (no padding) in NCHW layout.
func AveragePool2D(x *Tensor, kernel, stride int) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tensor: average_pool requires NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := (h-kernel)/stride + 1
	ow := (w-kernel)/stride + 1
	out := New(n, c, oh, ow)
	inv := 1 / float64(kernel*kernel)
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := 0.0
					for ky := 0; ky < kernel; ky++ {
						for kx := 0; kx < kernel; kx++ {
							acc += x.Data[((b*c+ci)*h+oy*stride+ky)*w+ox*stride+kx]
						}
					}
					out.Data[((b*c+ci)*oh+oy)*ow+ox] = acc * inv
				}
			}
		}
	}
	return out, nil
}

// GlobalAveragePool2D averages each channel to a single value.
func GlobalAveragePool2D(x *Tensor) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tensor: global_average_pool requires NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, 1, 1)
	inv := 1 / float64(h*w)
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			acc := 0.0
			for i := 0; i < h*w; i++ {
				acc += x.Data[(b*c+ci)*h*w+i]
			}
			out.Data[b*c+ci] = acc * inv
		}
	}
	return out, nil
}

// BatchNorm applies the inference-time affine transform
// y = gamma*(x-mean)/sqrt(var+eps) + beta per channel (NCHW).
func BatchNorm(x, gamma, beta, mean, variance *Tensor, eps float64) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tensor: batch_norm requires NCHW input, got %v", x.Shape)
	}
	c := x.Shape[1]
	for _, p := range []*Tensor{gamma, beta, mean, variance} {
		if p.Size() != c {
			return nil, fmt.Errorf("tensor: batch_norm parameter size %d, want %d", p.Size(), c)
		}
	}
	out := x.Clone()
	n, h, w := x.Shape[0], x.Shape[2], x.Shape[3]
	for ci := 0; ci < c; ci++ {
		scale := gamma.Data[ci] / math.Sqrt(variance.Data[ci]+eps)
		shift := beta.Data[ci] - mean.Data[ci]*scale
		for b := 0; b < n; b++ {
			base := (b*c + ci) * h * w
			for i := 0; i < h*w; i++ {
				out.Data[base+i] = out.Data[base+i]*scale + shift
			}
		}
	}
	return out, nil
}

// Pad2D zero-pads the spatial dimensions of an NCHW tensor.
func Pad2D(x *Tensor, pad int) (*Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("tensor: pad2d requires NCHW input, got %v", x.Shape)
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, h+2*pad, w+2*pad)
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				src := x.Data[((b*c+ci)*h+y)*w:]
				dst := out.Data[((b*c+ci)*(h+2*pad)+y+pad)*(w+2*pad)+pad:]
				copy(dst[:w], src[:w])
			}
		}
	}
	return out, nil
}

// StridedSlice extracts out[i] = in[start[i] : start[i]+size[i] : stride[i]]
// per axis (the paper's strided_slice operator).
func StridedSlice(x *Tensor, start, size, stride []int) (*Tensor, error) {
	r := x.Rank()
	if len(start) != r || len(size) != r || len(stride) != r {
		return nil, fmt.Errorf("tensor: strided_slice parameter rank mismatch")
	}
	for i := 0; i < r; i++ {
		if stride[i] <= 0 || size[i] <= 0 {
			return nil, fmt.Errorf("tensor: strided_slice needs positive size and stride")
		}
		last := start[i] + (size[i]-1)*stride[i]
		if start[i] < 0 || last >= x.Shape[i] {
			return nil, fmt.Errorf("tensor: strided_slice out of range on axis %d", i)
		}
	}
	out := New(size...)
	idx := make([]int, r)
	src := make([]int, r)
	var rec func(axis int)
	rec = func(axis int) {
		if axis == r {
			for i := 0; i < r; i++ {
				src[i] = start[i] + idx[i]*stride[i]
			}
			out.Set(x.At(src...), idx...)
			return
		}
		for i := 0; i < size[axis]; i++ {
			idx[axis] = i
			rec(axis + 1)
		}
	}
	rec(0)
	return out, nil
}

// Softmax applies a numerically-stable softmax over the last axis.
func Softmax(x *Tensor) *Tensor {
	out := x.Clone()
	last := x.Shape[len(x.Shape)-1]
	rows := x.Size() / last
	for r := 0; r < rows; r++ {
		row := out.Data[r*last : (r+1)*last]
		maxV := math.Inf(-1)
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for i, v := range row {
			row[i] = math.Exp(v - maxV)
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	return out
}

// ArgMax returns the index of the maximum over the last axis of a
// rank-1 or flattened tensor.
func ArgMax(x *Tensor) int {
	best, bestIdx := math.Inf(-1), 0
	for i, v := range x.Data {
		if v > best {
			best = v
			bestIdx = i
		}
	}
	return bestIdx
}
