// Shape tests that need whole compiled programs live in the external
// test package: core imports costmodel for the plan search, so the
// in-package tests cannot import core back.
package costmodel_test

import (
	"testing"

	"antace/internal/ckksir"
	"antace/internal/core"
	"antace/internal/costmodel"
	"antace/internal/onnx"
	"antace/internal/sihe"
)

func compileFor(t *testing.T, expert bool) *core.Compiled {
	t.Helper()
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(m, core.Config{
		SIHE:     sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS:     ckksir.Options{Mode: ckksir.BootstrapAlways, IgnoreSecurity: true},
		Expert:   expert,
		SkipPoly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInferenceCostShape(t *testing.T) {
	ace := compileFor(t, false)
	expert := compileFor(t, true)
	model := &costmodel.Model{Cal: costmodel.DefaultCalibration(), LogN: 16, Alpha: 2, K: 2}

	bAce := model.InferenceCost(ace.CKKS)
	bExp := model.InferenceCost(expert.CKKS)
	if bAce.Total() <= 0 {
		t.Fatal("zero cost")
	}
	// The paper's headline: ACE beats Expert overall and on every
	// component it optimises.
	if bAce.Total() >= bExp.Total() {
		t.Fatalf("ACE (%.2fs) not faster than Expert (%.2fs)", bAce.Total(), bExp.Total())
	}
	if bAce.Bootstrap >= bExp.Bootstrap {
		t.Fatalf("ACE bootstrap (%.2fs) not faster than Expert (%.2fs)", bAce.Bootstrap, bExp.Bootstrap)
	}
	if bAce.Conv >= bExp.Conv {
		t.Fatalf("ACE conv (%.2fs) not faster than Expert (%.2fs)", bAce.Conv, bExp.Conv)
	}
}

func TestMemoryCostShape(t *testing.T) {
	ace := compileFor(t, false)
	expert := compileFor(t, true)
	model := &costmodel.Model{Cal: costmodel.DefaultCalibration(), LogN: 16, Alpha: 2, K: 2}

	// ACE truncates keys to their used level; the baseline generates
	// full-chain keys.
	mAce := model.MemoryCost(ace.CKKS, 30, true)
	mExp := model.MemoryCost(expert.CKKS, 30, false)
	if mAce.Total() >= mExp.Total() {
		t.Fatalf("ACE memory %g not below Expert %g", mAce.Total(), mExp.Total())
	}
	if share := mAce.KeyShare(); share <= 0 || share >= 1 {
		t.Fatalf("key share %g out of (0,1)", share)
	}
}
