package costmodel

import (
	"math"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/ir"
)

func TestCalibrateSane(t *testing.T) {
	cal, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if cal.NTTPerButterfly <= 0 || cal.NTTPerButterfly > 1e-6 {
		t.Fatalf("NTT constant %g implausible", cal.NTTPerButterfly)
	}
	if cal.PointwisePerCoeff <= 0 || cal.PointwisePerCoeff > 1e-6 {
		t.Fatalf("pointwise constant %g implausible", cal.PointwisePerCoeff)
	}
}

func TestKeySwitchScaling(t *testing.T) {
	m := &Model{Cal: DefaultCalibration(), LogN: 16, Alpha: 2, K: 2}
	// Key switching cost must grow superlinearly with level (the r^2
	// behaviour the paper cites for rotations/multiplications).
	low := m.KeySwitch(4)
	high := m.KeySwitch(20)
	if high < 4*low {
		t.Fatalf("keyswitch cost not superlinear: %g vs %g", low, high)
	}
	// And with ring degree: doubling N slightly more than doubles cost.
	m2 := &Model{Cal: DefaultCalibration(), LogN: 17, Alpha: 2, K: 2}
	if m2.KeySwitch(10) <= m.KeySwitch(10) {
		t.Fatal("keyswitch cost not increasing in N")
	}
}

// TestCalibrateMeasuresEverything: every constant — including basis
// conversion and the three fused key-switch kernels — must come from a
// real microbenchmark, not a fabricated multiple of another constant.
func TestCalibrateMeasuresEverything(t *testing.T) {
	cal, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"BConvPerCoeff":  cal.BConvPerCoeff,
		"ModUpPerUnit":   cal.ModUpPerUnit,
		"MulAddPerUnit":  cal.MulAddPerUnit,
		"ModDownPerUnit": cal.ModDownPerUnit,
	} {
		if v <= 0 || v > 1e-6 {
			t.Errorf("%s = %g implausible", name, v)
		}
	}
	if !cal.fused() {
		t.Error("calibration did not produce the fused-kernel constants")
	}
	if cal.Source != "microbench" {
		t.Errorf("Source = %q, want microbench", cal.Source)
	}
}

// TestCalibrateCrossCheck: the derived constants must reproduce a
// measured end-to-end key switch. The tolerance band is 3x — wide
// enough for CI noise and scheduler jitter, tight enough to catch a
// constant that is off by an order of magnitude (the failure mode the
// warmup fix and the direct BConv benchmark exist for).
func TestCalibrateCrossCheck(t *testing.T) {
	cal, err := Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	e, err := cal.CrossCheckErr()
	if err != nil {
		t.Fatal(err)
	}
	if e > 1.585 { // log2(3)
		t.Fatalf("key-switch cross-check off by 2^%.2f: measured %.3gs, predicted %.3gs",
			e, cal.KeySwitchMeasuredSec, cal.KeySwitchPredictedSec)
	}
}

// TestInferenceCostLevelAccounting pins the level convention with a
// hand-counted schedule: Result.Level is the post-op level, every Model
// method takes the pre-op level, and the one op where the two differ
// (rescale) is translated exactly once — no double increment.
func TestInferenceCostLevelAccounting(t *testing.T) {
	mod := ir.NewModule("hand")
	f := mod.NewFunc("main")
	ct := ir.CipherType(64)
	x := f.NewParam("x", ct)
	x.Level = 3

	v1 := f.Emit(ckksir.OpMulPlain, ct, []*ir.Value{x}, nil)
	v1.Level = 3 // mul_plain keeps the level
	v2 := f.Emit(ckksir.OpRescale, ct, []*ir.Value{v1}, nil)
	v2.Level = 2 // entered at 3, dropped to 2
	v3 := f.Emit(ckksir.OpRotate, ct, []*ir.Value{v2}, map[string]any{"k": 1})
	v3.Level = 2
	f.Ret = v3

	m := &Model{Cal: DefaultCalibration(), LogN: 12, Alpha: 2, K: 2}
	got := m.InferenceCost(&ckksir.Result{Module: mod}).Total()

	// Hand count. mul_plain at level 3: two pointwise passes over 4
	// residues. rescale entered at level 3 (4 residues): one INTT pair
	// over the dropped row and the remaining 3 rows, two pointwise
	// passes over 3 rows, per ciphertext half. rotate at level 2: one
	// key switch of a 3-residue ciphertext plus the slot permutation.
	want := 2*m.pw(4) +
		2*(m.ntt(1)+m.ntt(3)+2*m.pw(3)) +
		m.KeySwitch(2) + 2*m.pw(3)
	if diff := math.Abs(got-want) / want; diff > 1e-12 {
		t.Fatalf("hand-counted schedule: got %.6g, want %.6g (rel diff %g)", got, want, diff)
	}

	// The rescale term must be Rescale(input level), i.e. Rescale(3) —
	// passing the already-incremented result level back into a method
	// that increments again would price a 5-residue rescale.
	if m.Rescale(3) == m.Rescale(4) {
		t.Fatal("Rescale(3) == Rescale(4); the convention test is vacuous")
	}
}
