package costmodel

import (
	"math"
	"testing"

	"antace/internal/ckksir"
	"antace/internal/obs"
)

// synthSnapshot builds a ProfileSnapshot whose measured times are
// *generated* from a known "true" calibration, so FromProfile's fit can
// be checked for exact recovery.
func synthSnapshot(truth Calibration, geom Geometry) obs.ProfileSnapshot {
	m := geom.Model(truth)
	const runs = 4
	type inst struct {
		op    string
		level int // result level, as the trajectory records it
		cost  float64
	}
	instrs := []inst{
		{ckksir.OpAddPlain, 5, 2 * m.pw(6)},
		{ckksir.OpMulPlain, 5, 2 * m.pw(6)},
		{ckksir.OpMulPlain, 4, 2 * m.pw(5)},
		{ckksir.OpRescale, 4, m.Rescale(5)}, // entered at 5
		{ckksir.OpRotate, 4, m.KeySwitch(4) + 2*m.pw(5)},
		{ckksir.OpRotate, 4, m.KeySwitch(4) + 2*m.pw(5)},
		{ckksir.OpEncode, 4, m.ntt(5)},
	}
	snap := obs.ProfileSnapshot{Runs: runs}
	totals := map[string]*obs.OpStat{}
	for pc, in := range instrs {
		snap.LastTrajectory = append(snap.LastTrajectory, obs.TrajPoint{PC: pc, Op: in.op, Level: in.level, Scale: 1})
		st := totals[in.op]
		if st == nil {
			st = &obs.OpStat{Op: in.op}
			totals[in.op] = st
		}
		st.Count += runs
		st.TotalMs += in.cost * 1e3 * runs
	}
	for _, st := range totals {
		st.MeanMs = st.TotalMs / float64(st.Count)
		snap.Ops = append(snap.Ops, *st)
	}
	// Fused kernels: one observation per key switch (the two rotates),
	// priced by the true constants at level 4.
	ksWork := func(op string) float64 { return kernelWork(m, op, 4) }
	for op, unit := range map[string]float64{
		"poly.decomp_modup": truth.ModUpPerUnit,
		"poly.hw_modmuladd": truth.MulAddPerUnit,
		"poly.mod_down":     truth.ModDownPerUnit,
	} {
		mean := unit * ksWork(op)
		snap.Kernels = append(snap.Kernels, obs.OpStat{
			Op: op, Count: 2 * runs, MeanMs: mean * 1e3, TotalMs: mean * 1e3 * 2 * runs,
		})
	}
	return snap
}

// TestFromProfileRecoversConstants: measurements generated from a known
// calibration must be inverted back to it, starting from a deliberately
// wrong base.
func TestFromProfileRecoversConstants(t *testing.T) {
	geom := Geometry{LogN: 12, Alpha: 2, K: 2}
	truth := DefaultCalibration()
	truth.PointwisePerCoeff *= 2.0
	truth.NTTPerButterfly *= 0.6
	truth.ModUpPerUnit *= 1.7
	truth.MulAddPerUnit *= 0.5
	truth.ModDownPerUnit *= 1.4
	snap := synthSnapshot(truth, geom)

	got, fits, err := FromProfile(snap, geom, DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != "profile" {
		t.Errorf("Source = %q, want profile", got.Source)
	}
	within := func(name string, got, want, tol float64) {
		t.Helper()
		if r := got / want; r < 1-tol || r > 1+tol {
			t.Errorf("%s: fitted %g vs true %g (ratio %.3f)", name, got, want, r)
		}
	}
	within("PointwisePerCoeff", got.PointwisePerCoeff, truth.PointwisePerCoeff, 0.05)
	// The NTT fit subtracts the pointwise share of rescale first, so its
	// tolerance is looser.
	within("NTTPerButterfly", got.NTTPerButterfly, truth.NTTPerButterfly, 0.25)
	within("ModUpPerUnit", got.ModUpPerUnit, truth.ModUpPerUnit, 0.05)
	within("MulAddPerUnit", got.MulAddPerUnit, truth.MulAddPerUnit, 0.05)
	within("ModDownPerUnit", got.ModDownPerUnit, truth.ModDownPerUnit, 0.05)

	if len(fits) == 0 {
		t.Fatal("no per-op fit rows")
	}
	for _, f := range fits {
		if f.Ratio < 0.5 || f.Ratio > 2 {
			t.Errorf("op %s fit ratio %.2f outside 2x after recalibration", f.Op, f.Ratio)
		}
	}
}

// TestFromProfileClamps: a nonsense aggregate (one op a thousand times
// slower than physics allows) must not drag a constant beyond the 10x
// guard rail.
func TestFromProfileClamps(t *testing.T) {
	geom := Geometry{LogN: 12, Alpha: 2, K: 2}
	base := DefaultCalibration()
	snap := synthSnapshot(base, geom)
	for i := range snap.Ops {
		snap.Ops[i].TotalMs *= 1000
		snap.Ops[i].MeanMs *= 1000
	}
	got, _, err := FromProfile(snap, geom, base)
	if err != nil {
		t.Fatal(err)
	}
	if got.PointwisePerCoeff > base.PointwisePerCoeff*10.01 {
		t.Errorf("pointwise constant %g escaped the clamp (base %g)", got.PointwisePerCoeff, base.PointwisePerCoeff)
	}
}

// TestFromProfileEmpty: an idle server's snapshot is a calibration
// no-op, reported as an error rather than garbage constants.
func TestFromProfileEmpty(t *testing.T) {
	if _, _, err := FromProfile(obs.ProfileSnapshot{}, Geometry{LogN: 12, Alpha: 2, K: 2}, DefaultCalibration()); err == nil {
		t.Fatal("empty snapshot did not error")
	}
}

// TestMeasuredBreakdownBuckets: the measured bucketing must mirror
// InferenceCost's category mapping exactly.
func TestMeasuredBreakdownBuckets(t *testing.T) {
	snap := obs.ProfileSnapshot{
		Runs: 2,
		Ops: []obs.OpStat{
			{Op: ckksir.OpRotate, TotalMs: 2000},
			{Op: ckksir.OpPoly, TotalMs: 4000},
			{Op: ckksir.OpBootstrap, TotalMs: 6000},
			{Op: ckksir.OpMul, TotalMs: 1000},
		},
	}
	b, err := MeasuredBreakdown(snap)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Conv-1) > 1e-9 || math.Abs(b.ReLU-2.5) > 1e-9 || math.Abs(b.Bootstrap-3) > 1e-9 {
		t.Fatalf("breakdown %+v, want conv=1 relu=2.5 bootstrap=3 (s/run)", b)
	}
	if _, err := MeasuredBreakdown(obs.ProfileSnapshot{}); err == nil {
		t.Fatal("zero-run snapshot did not error")
	}
}
