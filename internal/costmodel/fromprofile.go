package costmodel

import (
	"fmt"
	"math"

	"antace/internal/ckksir"
	"antace/internal/obs"
)

// Geometry is the ring configuration a profile was recorded under —
// everything FromProfile needs to invert measured per-op times back into
// per-element constants.
type Geometry struct {
	LogN  int `json:"log_n"`
	Alpha int `json:"alpha"`
	K     int `json:"k"`
	// BootstrapStages mirrors Model.BootstrapStages (0 = 3).
	BootstrapStages int `json:"bootstrap_stages,omitempty"`
}

// GeometryOf derives the profile geometry from a compiled program.
func GeometryOf(res *ckksir.Result) Geometry {
	return Geometry{LogN: res.Literal.LogN, Alpha: len(res.Literal.LogP), K: len(res.Literal.LogP)}
}

// Model instantiates the cost model for this geometry.
func (g Geometry) Model(cal Calibration) *Model {
	return &Model{Cal: cal, LogN: g.LogN, Alpha: g.Alpha, K: g.K, BootstrapStages: g.BootstrapStages}
}

// OpFit is one opcode's measured-vs-predicted agreement after a profile
// fit: the per-instruction mean the server measured and what the fitted
// model predicts for the same instruction mix.
type OpFit struct {
	Op          string  `json:"op"`
	Count       uint64  `json:"count"`
	MeasuredMs  float64 `json:"measured_ms"`
	PredictedMs float64 `json:"predicted_ms"`
	Ratio       float64 `json:"ratio"` // measured / predicted
}

// fitClamp bounds every profile-derived scale factor: a live aggregate
// polluted by one anomalous run must not drag a constant to nonsense.
const (
	fitClampLo = 0.1
	fitClampHi = 10.0
)

func clampRatio(r float64) float64 {
	if math.IsNaN(r) || r <= 0 {
		return 1
	}
	return math.Min(fitClampHi, math.Max(fitClampLo, r))
}

// trajLevels collects, per opcode, the *input* levels of every
// trajectory point. The trajectory records each instruction's result
// level; rescale is the one op whose result sits a level below its
// input.
func trajLevels(snap obs.ProfileSnapshot) map[string][]int {
	out := map[string][]int{}
	for _, pt := range snap.LastTrajectory {
		l := pt.Level
		if pt.Op == ckksir.OpRescale {
			l++
		}
		out[pt.Op] = append(out[pt.Op], l)
	}
	return out
}

// primitiveMean returns the model's mean predicted seconds for one
// opcode over its trajectory levels, and whether the op is a primitive
// the fit understands. The formulas mirror InferenceCost.
func primitiveMean(m *Model, op string, levels []int) (float64, bool) {
	if len(levels) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, l := range levels {
		switch op {
		case ckksir.OpAdd, ckksir.OpAddPlain, ckksir.OpMulPlain, ckksir.OpMulConst:
			sum += 2 * m.pw(l+1)
		case ckksir.OpMul:
			sum += 5 * m.pw(l+1)
		case ckksir.OpRelin:
			sum += m.KeySwitch(l)
		case ckksir.OpRotate:
			sum += m.KeySwitch(l) + 2*m.pw(l+1)
		case ckksir.OpRescale:
			sum += m.Rescale(l)
		case ckksir.OpEncode:
			sum += m.ntt(l + 1)
		default:
			return 0, false
		}
	}
	return sum / float64(len(levels)), true
}

// pwOps are the opcodes whose cost is purely pointwise — the cleanest
// observations of PointwisePerCoeff.
var pwOps = []string{ckksir.OpAdd, ckksir.OpAddPlain, ckksir.OpMulPlain, ckksir.OpMulConst, ckksir.OpMul}

// kernelWork returns the model's work count (in the kernel's calibration
// units) for one fused-kernel observation at input level l.
func kernelWork(m *Model, kernel string, l int) float64 {
	r := l + 1
	d := float64((r + m.Alpha - 1) / m.Alpha)
	rk := float64(r + m.K)
	n, logN := m.n(), float64(m.LogN)
	switch kernel {
	case "poly.decomp_modup":
		return d * rk * n * (float64(m.Alpha) + logN)
	case "poly.hw_modmuladd":
		return 2 * d * rk * n
	case "poly.mod_down":
		return 2 * (float64(m.K)*n*logN + float64(r)*n*(2*logN+float64(m.K)))
	}
	return 0
}

// FromProfile recalibrates the cost model from a live /v1/profilez
// snapshot: the aggregated per-opcode (and per-fused-kernel) mean times
// measured on *this* machine under *this* geometry are inverted back
// into the per-element constants, starting from base. The last run's
// level/scale trajectory supplies the level each opcode executed at.
//
// The fit is a ratio scaling, op family by op family:
//   - PointwisePerCoeff from the purely pointwise ops (add, add_plain,
//     mul_plain, mul_const, mul), count-weighted;
//   - NTTPerButterfly from rescale + encode after subtracting their
//     fitted pointwise share;
//   - the three fused-kernel constants from the Kernels table, priced at
//     the key-switch levels the trajectory observed;
//   - BConvPerCoeff rides the pointwise ratio (it is only exercised when
//     the fused kernels are absent, in which case there is no kernel
//     table to fit it from).
//
// Macro ops (ckks.poly, ckks.bootstrap) need the compiled schedule's
// attributes; FitSchedule refines their correction scales separately.
// Every ratio is clamped to [0.1, 10] of base.
func FromProfile(snap obs.ProfileSnapshot, geom Geometry, base Calibration) (Calibration, []OpFit, error) {
	if snap.Runs == 0 || len(snap.Ops) == 0 {
		return base, nil, fmt.Errorf("costmodel: profile snapshot has no runs")
	}
	if len(snap.LastTrajectory) == 0 {
		return base, nil, fmt.Errorf("costmodel: profile snapshot has no trajectory (levels unknown)")
	}
	levels := trajLevels(snap)
	stats := map[string]obs.OpStat{}
	for _, st := range snap.Ops {
		stats[st.Op] = st
	}
	m := geom.Model(base)

	c := base
	c.Source = "profile"
	c.KeySwitchMeasuredSec, c.KeySwitchPredictedSec = 0, 0

	// Pointwise family: count-weighted measured vs predicted totals.
	var measPw, predPw float64
	for _, op := range pwOps {
		st, ok := stats[op]
		if !ok {
			continue
		}
		pm, ok := primitiveMean(m, op, levels[op])
		if !ok {
			continue
		}
		measPw += st.TotalMs / 1e3
		predPw += pm * float64(st.Count)
	}
	xPw := clampRatio(measPw / predPw)
	c.PointwisePerCoeff = base.PointwisePerCoeff * xPw
	c.BConvPerCoeff = base.BConvPerCoeff * xPw

	// NTT family from rescale (+ encode): subtract the fitted pointwise
	// share, attribute the rest to the butterflies.
	var measT, predNtt, predPwShare float64
	for _, op := range []string{ckksir.OpRescale, ckksir.OpEncode} {
		st, ok := stats[op]
		if !ok || len(levels[op]) == 0 {
			continue
		}
		for _, l := range levels[op] {
			var nttPart, pwPart float64
			if op == ckksir.OpRescale {
				nttPart = 2 * (m.ntt(1) + m.ntt(l)) // r-1 = l residues after the drop
				pwPart = 4 * m.pw(l)                // 2 halves × 2 passes
			} else {
				nttPart = m.ntt(l + 1)
			}
			w := float64(st.Count) / float64(len(levels[op]))
			predNtt += nttPart * w
			predPwShare += pwPart * w * xPw
		}
		measT += st.TotalMs / 1e3
	}
	if predNtt > 0 {
		c.NTTPerButterfly = base.NTTPerButterfly * clampRatio((measT-predPwShare)/predNtt)
	}

	// Fused kernels: the Kernels table times the three key-switch
	// kernels directly. Price each observation at the key-switch levels
	// the trajectory saw (rotate + relin); bootstrap-internal switches
	// run at nearby levels, and the clamp bounds the residual error.
	ksLevels := append(append([]int{}, levels[ckksir.OpRotate]...), levels[ckksir.OpRelin]...)
	if len(ksLevels) > 0 && len(snap.Kernels) > 0 {
		def := DefaultCalibration()
		for _, st := range snap.Kernels {
			var unit *float64
			var seed float64
			switch st.Op {
			case "poly.decomp_modup":
				unit, seed = &c.ModUpPerUnit, def.ModUpPerUnit
			case "poly.hw_modmuladd":
				unit, seed = &c.MulAddPerUnit, def.MulAddPerUnit
			case "poly.mod_down":
				unit, seed = &c.ModDownPerUnit, def.ModDownPerUnit
			default:
				continue
			}
			if *unit == 0 {
				*unit = seed // seed a fused path for unfused bases
			}
			work := 0.0
			for _, l := range ksLevels {
				work += kernelWork(m, st.Op, l)
			}
			work /= float64(len(ksLevels))
			pred := *unit * work
			meas := st.MeanMs / 1e3
			*unit *= clampRatio(meas / pred)
		}
	}

	// The kernel table aggregates every key switch in the program —
	// bootstrap-internal switches run at other levels than the module's
	// own rotations, so the table-fitted units carry a level-mix bias.
	// Anchor them on the measured rotate/relin op means: one uniform
	// rescale of the three units makes the model reproduce the measured
	// key-switch totals at the levels the trajectory recorded.
	if c.fused() {
		mc := geom.Model(c)
		var measKs, fixedKs, kernKs float64
		for _, op := range []string{ckksir.OpRotate, ckksir.OpRelin} {
			st, ok := stats[op]
			if !ok || len(levels[op]) == 0 {
				continue
			}
			w := float64(st.Count) / float64(len(levels[op]))
			for _, l := range levels[op] {
				kernKs += w * (c.ModUpPerUnit*kernelWork(mc, "poly.decomp_modup", l) +
					c.MulAddPerUnit*kernelWork(mc, "poly.hw_modmuladd", l) +
					c.ModDownPerUnit*kernelWork(mc, "poly.mod_down", l))
				fixed := mc.ntt(l + 1)
				if op == ckksir.OpRotate {
					fixed += 2 * mc.pw(l+1) // slot permutation
				}
				fixedKs += w * fixed
			}
			measKs += st.TotalMs / 1e3
		}
		if kernKs > 0 && measKs > fixedKs {
			x := clampRatio((measKs - fixedKs) / kernKs)
			c.ModUpPerUnit *= x
			c.MulAddPerUnit *= x
			c.ModDownPerUnit *= x
		}
	}

	// Agreement report under the fitted constants.
	fitted := geom.Model(c)
	var fits []OpFit
	for _, st := range snap.Ops {
		pm, ok := primitiveMean(fitted, st.Op, levels[st.Op])
		if !ok {
			continue
		}
		f := OpFit{Op: st.Op, Count: st.Count, MeasuredMs: st.MeanMs, PredictedMs: pm * 1e3}
		if f.PredictedMs > 0 {
			f.Ratio = f.MeasuredMs / f.PredictedMs
		}
		fits = append(fits, f)
	}
	return c, fits, nil
}

// FitSchedule refines the macro-op correction scales against a compiled
// schedule: PolyScale and BootstrapScale are set so the model's
// structural ckks.poly / ckks.bootstrap estimates match the measured
// per-run totals from the snapshot. The primitive constants are left
// untouched — call FromProfile first, then FitSchedule with its result.
func FitSchedule(cal Calibration, geom Geometry, res *ckksir.Result, snap obs.ProfileSnapshot) Calibration {
	if snap.Runs == 0 {
		return cal
	}
	probe := cal
	probe.PolyScale, probe.BootstrapScale = 0, 0 // structural estimates
	m := geom.Model(probe)
	var predPoly, predBoot float64
	for _, in := range res.Module.Main().Body {
		switch in.Op {
		case ckksir.OpPoly:
			predPoly += m.polyEvalCost(in.Attrs["coeffs"].([]float64), in.Args[0].Level)
		case ckksir.OpBootstrap:
			predBoot += m.bootstrapCost(in.AttrInt("target", 1), in.Result.Type.Len())
		}
	}
	if meas := snap.OpSecPerRun(ckksir.OpPoly); meas > 0 && predPoly > 0 {
		cal.PolyScale = clampRatio(meas / predPoly)
	}
	if meas := snap.OpSecPerRun(ckksir.OpBootstrap); meas > 0 && predBoot > 0 {
		cal.BootstrapScale = clampRatio(meas / predBoot)
	}
	return cal
}

// MeasuredBreakdown buckets a snapshot's measured per-opcode time into
// the Figure-6 categories, normalised to seconds per run — the measured
// counterpart of Model.InferenceCost for the same program.
func MeasuredBreakdown(snap obs.ProfileSnapshot) (Breakdown, error) {
	var b Breakdown
	if snap.Runs == 0 {
		return b, fmt.Errorf("costmodel: profile snapshot has no runs")
	}
	for _, st := range snap.Ops {
		b.Add(CategoryOfOp(st.Op), st.TotalMs/1e3/float64(snap.Runs))
	}
	return b, nil
}
