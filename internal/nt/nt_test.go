package nt

import (
	"math/bits"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

var testPrimes = []uint64{
	0x1fffffffffe00001, // 61-bit
	0x0fffffffff840001, // 60-bit range NTT prime
	0x100000000060001,
	65537,
	12289,
	3,
}

// refMulMod is the trusted reference using the hardware 128/64 divide.
func refMulMod(x, y, q uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, r := bits.Div64(hi%q, lo, q)
	return r
}

func TestMulModAgainstDiv(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 2000; i++ {
			x, y := rng.Uint64(), rng.Uint64()
			got := MulMod(x, y, m)
			want := refMulMod(x, y, q)
			if got != want {
				t.Fatalf("MulMod(%d,%d) mod %d = %d, want %d", x, y, q, got, want)
			}
		}
	}
}

func TestMulModProperty(t *testing.T) {
	m := NewModulus(testPrimes[0])
	f := func(x, y uint64) bool {
		return MulMod(x, y, m) == refMulMod(x, y, m.Q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBRedAdd(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 2000; i++ {
			x := rng.Uint64()
			if got := BRedAdd(x, m); got != x%q {
				t.Fatalf("BRedAdd(%d) mod %d = %d, want %d", x, q, got, x%q)
			}
		}
		if BRedAdd(0, m) != 0 {
			t.Fatalf("BRedAdd(0) != 0 for q=%d", q)
		}
	}
}

func TestAddSubNeg(t *testing.T) {
	q := testPrimes[1]
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 2000; i++ {
		x, y := rng.Uint64N(q), rng.Uint64N(q)
		if got := Add(x, y, q); got != (x+y)%q {
			t.Fatalf("Add(%d,%d)=%d", x, y, got)
		}
		want := (x + q - y) % q
		if got := Sub(x, y, q); got != want {
			t.Fatalf("Sub(%d,%d)=%d want %d", x, y, got, want)
		}
		if got := Add(x, Neg(x, q), q); got != 0 {
			t.Fatalf("x + (-x) = %d, want 0", got)
		}
	}
}

func TestMulModShoup(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, q := range testPrimes {
		m := NewModulus(q)
		for i := 0; i < 2000; i++ {
			x, y := rng.Uint64N(q), rng.Uint64N(q)
			yp := ShoupPrec(y, q)
			if got := MulModShoup(x, y, yp, q); got != MulMod(x, y, m) {
				t.Fatalf("MulModShoup(%d,%d) mod %d mismatch", x, y, q)
			}
			lazy := MulModShoupLazy(x, y, yp, q)
			if lazy >= 2*q || lazy%q != MulMod(x, y, m) {
				t.Fatalf("MulModShoupLazy out of [0,2q) or wrong: %d", lazy)
			}
		}
	}
}

func TestModExpInverse(t *testing.T) {
	for _, q := range testPrimes {
		if q < 5 {
			continue
		}
		m := NewModulus(q)
		rng := rand.New(rand.NewPCG(9, q))
		for i := 0; i < 200; i++ {
			x := 1 + rng.Uint64N(q-1)
			inv := ModInverse(x, m)
			if MulMod(x, inv, m) != 1 {
				t.Fatalf("x * x^-1 != 1 for x=%d q=%d", x, q)
			}
		}
		if ModExp(3, 0, m) != 1 {
			t.Fatal("x^0 != 1")
		}
		if ModExp(3, 1, m) != 3%q {
			t.Fatal("x^1 != x")
		}
	}
}

func TestIsPrime(t *testing.T) {
	known := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false,
		65537: true, 65536: false, 12289: true,
		0x1fffffffffe00001: true,
		0x1fffffffffe00003: false, // even+... composite neighbor
		1<<61 - 1:          true,  // Mersenne prime M61
		1<<62 - 1:          false,
		2147483647:         true, // M31
	}
	for n, want := range known {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
	// Carmichael numbers must be rejected.
	for _, n := range []uint64{561, 1105, 1729, 41041, 825265} {
		if IsPrime(n) {
			t.Errorf("IsPrime(%d) = true for Carmichael number", n)
		}
	}
}

func TestFactor(t *testing.T) {
	cases := map[uint64][]uint64{
		2:                  {2},
		12:                 {2, 3},
		360:                {2, 3, 5},
		65537:              {65537},
		1<<61 - 2:          nil, // computed below
		0x1fffffffffe00001: nil,
	}
	for n, want := range cases {
		got := Factor(n)
		if want != nil {
			if len(got) != len(want) {
				t.Fatalf("Factor(%d) = %v, want %v", n, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Factor(%d) = %v, want %v", n, got, want)
				}
			}
		}
		// Every returned factor must be prime and divide n.
		for _, p := range got {
			if !IsPrime(p) {
				t.Fatalf("Factor(%d) returned composite %d", n, p)
			}
			if n%p != 0 {
				t.Fatalf("Factor(%d) returned non-divisor %d", n, p)
			}
		}
	}
}

func TestRootOfUnity(t *testing.T) {
	for _, logN := range []uint64{4, 8, 10, 12} {
		n := uint64(1) << (logN + 1) // 2N-th root for negacyclic NTT
		primes, err := GenerateNTTPrimes(45, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range primes {
			psi, err := RootOfUnity(n, q)
			if err != nil {
				t.Fatal(err)
			}
			m := NewModulus(q)
			if ModExp(psi, n, m) != 1 {
				t.Fatalf("psi^n != 1 mod %d", q)
			}
			if ModExp(psi, n/2, m) != q-1 {
				t.Fatalf("psi^(n/2) != -1 mod %d", q)
			}
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	nthRoot := uint64(1 << 13)
	primes, err := GenerateNTTPrimes(50, nthRoot, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, q := range primes {
		if !IsPrime(q) {
			t.Fatalf("%d not prime", q)
		}
		if q%nthRoot != 1 {
			t.Fatalf("%d not ≡ 1 mod %d", q, nthRoot)
		}
		if seen[q] {
			t.Fatalf("duplicate prime %d", q)
		}
		seen[q] = true
		logQ := bits.Len64(q)
		if logQ < 50 || logQ > 51 {
			t.Fatalf("prime %d has %d bits, want ~50", q, logQ)
		}
	}
	// Avoid list must be honored.
	more, err := GenerateNTTPrimes(50, nthRoot, 8, primes...)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range more {
		if seen[q] {
			t.Fatalf("avoided prime %d regenerated", q)
		}
	}
}

func BenchmarkMulModBarrett(b *testing.B) {
	m := NewModulus(testPrimes[0])
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = MulMod(x, y, m)
	}
	sink = x
}

func BenchmarkMulModShoup(b *testing.B) {
	q := testPrimes[0]
	y := uint64(0x123456789abcdef) % q
	yp := ShoupPrec(y, q)
	x := uint64(0xfedcba987654321) % q
	for i := 0; i < b.N; i++ {
		x = MulModShoup(x, y, yp, q)
	}
	sink = x
}

func BenchmarkMulModDiv64(b *testing.B) {
	q := testPrimes[0]
	x, y := uint64(0x123456789abcdef), uint64(0xfedcba987654321)
	for i := 0; i < b.N; i++ {
		x = refMulMod(x, y, q)
	}
	sink = x
}

var sink uint64
