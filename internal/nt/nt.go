// Package nt provides the 64-bit modular arithmetic primitives underlying
// the RNS-CKKS runtime: Barrett and Shoup modular multiplication, modular
// exponentiation, deterministic Miller–Rabin primality testing, Pollard-rho
// factorisation, and generation of NTT-friendly primes.
//
// All moduli handled by this package are odd primes below 2^62 so that lazy
// representations up to 2q never overflow a uint64.
package nt

import "math/bits"

// Modulus bundles a prime q with the precomputed Barrett constant
// floor(2^128 / q), enabling division-free reduction of 128-bit products.
type Modulus struct {
	Q   uint64    // the prime modulus
	BRC [2]uint64 // floor(2^128 / Q), high and low 64-bit words
}

// NewModulus precomputes the Barrett constant for q. q must be nonzero.
func NewModulus(q uint64) Modulus {
	if q == 0 {
		panic("nt: zero modulus")
	}
	// floor(2^128 / q): divide 2^128 - 1 by q and adjust. Since
	// 2^128 = q*floor(2^128/q) + r with 0 <= r < q, and
	// 2^128 - 1 = q*floor((2^128-1)/q) + r', floor(2^128/q) equals
	// floor((2^128-1)/q) unless q divides 2^128, impossible for odd q > 1.
	// Compute floor((2^128-1)/q) via two chained 64-bit divisions.
	hi, rem := bits.Div64(0, ^uint64(0), q)
	lo, _ := bits.Div64(rem, ^uint64(0), q)
	return Modulus{Q: q, BRC: [2]uint64{hi, lo}}
}

// Add returns x + y mod q. Inputs must be < q.
func Add(x, y, q uint64) uint64 {
	r := x + y
	if r >= q {
		r -= q
	}
	return r
}

// Sub returns x - y mod q. Inputs must be < q.
func Sub(x, y, q uint64) uint64 {
	r := x - y
	if x < y {
		r += q
	}
	return r
}

// Neg returns -x mod q. Input must be < q.
func Neg(x, q uint64) uint64 {
	if x == 0 {
		return 0
	}
	return q - x
}

// BRedAdd reduces x (an arbitrary uint64) modulo q using the Barrett
// constant: r = x mod q.
func BRedAdd(x uint64, m Modulus) uint64 {
	// floor(x/q) ~ floor(x * floor(2^128/q) / 2^128) ~ hi word of x*BRC[0].
	t, _ := bits.Mul64(x, m.BRC[0])
	r := x - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulMod returns x*y mod q via Barrett reduction of the 128-bit product.
// Inputs may be any uint64 values (not necessarily reduced).
func MulMod(x, y uint64, m Modulus) uint64 {
	mhi, mlo := bits.Mul64(x, y)
	return Red128(mhi, mlo, m)
}

// Red128 reduces the 128-bit value hi*2^64 + lo modulo q. It is correct
// for ANY 128-bit input when q < 2^62 (the package-wide bound), not just
// products of reduced operands: the computed quotient word t wraps mod
// 2^64 when floor(x/q) exceeds 2^64, but r = lo - t*q is evaluated in the
// same mod-2^64 arithmetic, so the wrap cancels; t underestimates the
// true quotient by at most 2, leaving a remainder below 3q < 2^64 that
// the correction loop finishes. The lazy 128-bit accumulators in
// internal/ring (key-switch inner product, RNS base conversion) depend on
// this — they hand Red128 sums of many unreduced products.
func Red128(hi, lo uint64, m Modulus) uint64 {
	u1, u0 := m.BRC[0], m.BRC[1]
	// t = floor(x*u / 2^128) where x = hi:lo and u = u1:u0. Expand the
	// four partial products and keep the word at weight 2^128; the true
	// quotient floor(x/q) differs from t by at most 2.
	ahi, _ := bits.Mul64(lo, u0)
	bhi, blo := bits.Mul64(lo, u1)
	chi, clo := bits.Mul64(hi, u0)
	_, dlo := bits.Mul64(hi, u1)
	s, c1 := bits.Add64(ahi, blo, 0)
	_, c2 := bits.Add64(s, clo, 0)
	t := bhi + chi + dlo + c1 + c2
	r := lo - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupPrec returns floor(y * 2^64 / q), the Shoup precomputation enabling
// MulModShoup. y must be < q.
func ShoupPrec(y, q uint64) uint64 {
	p, _ := bits.Div64(y, 0, q)
	return p
}

// MulModShoup returns x*y mod q given yPrec = ShoupPrec(y, q). This is the
// fast path used by NTT butterflies: two multiplications, no division.
// Like the lazy variant below, it accepts ANY x (the pre-subtraction
// value is x*r0/2^64 + q*r1/2^64 < 2q for every uint64 x, so the single
// conditional subtraction fully reduces it); y must be < q.
func MulModShoup(x, y, yPrec, q uint64) uint64 {
	t, _ := bits.Mul64(x, yPrec)
	r := x*y - t*q
	if r >= q {
		r -= q
	}
	return r
}

// MulModShoupLazy is MulModShoup without the final conditional subtraction;
// the result lies in [0, 2q). Unlike MulModShoup's documented contract, the
// lazy form is correct for ANY x (not just x < q): with yPrec exact,
// r = x*y - floor(x*yPrec/2^64)*q satisfies 0 <= r < q*(1 + x/2^64) < 2q,
// which fits a uint64 for q < 2^63. This is what makes Harvey-style lazy
// NTT butterflies sound: operands in [0, 4q) feed straight into the
// multiply with no pre-reduction.
func MulModShoupLazy(x, y, yPrec, q uint64) uint64 {
	t, _ := bits.Mul64(x, yPrec)
	return x*y - t*q
}

// LazyThreshold is the accumulator high-word bound at which lazy 128-bit
// sums must be folded (see MulAdd128). Each partial product of operands
// below 2^62 contributes less than 2^60 to the high word, so folding
// whenever hi >= 2^63 leaves headroom for the next addition:
// 2^63 + 2^60 < 2^64.
const LazyThreshold = 1 << 63

// MulAdd128 adds the 128-bit product x*y into the (hi, lo) accumulator.
// Callers must fold the accumulator with Red128 before hi can overflow;
// with all operands below 2^62 (the package-wide modulus bound), folding
// whenever hi >= LazyThreshold is sufficient. This is the fused
// multiply-accumulate at the core of the key-switch inner product and the
// RNS base-conversion kernels: one reduction per accumulated sum instead
// of one per multiply.
func MulAdd128(x, y, hi, lo uint64) (uint64, uint64) {
	phi, plo := bits.Mul64(x, y)
	var c uint64
	lo, c = bits.Add64(lo, plo, 0)
	hi, _ = bits.Add64(hi, phi, c)
	return hi, lo
}

// ModExp returns base^exp mod q by square-and-multiply.
func ModExp(base, exp uint64, m Modulus) uint64 {
	result := uint64(1)
	b := BRedAdd(base, m)
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod(result, b, m)
		}
		b = MulMod(b, b, m)
		exp >>= 1
	}
	return result
}

// ModInverse returns x^-1 mod q for prime q via Fermat's little theorem.
func ModInverse(x uint64, m Modulus) uint64 {
	return ModExp(x, m.Q-2, m)
}
