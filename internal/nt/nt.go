// Package nt provides the 64-bit modular arithmetic primitives underlying
// the RNS-CKKS runtime: Barrett and Shoup modular multiplication, modular
// exponentiation, deterministic Miller–Rabin primality testing, Pollard-rho
// factorisation, and generation of NTT-friendly primes.
//
// All moduli handled by this package are odd primes below 2^62 so that lazy
// representations up to 2q never overflow a uint64.
package nt

import "math/bits"

// Modulus bundles a prime q with the precomputed Barrett constant
// floor(2^128 / q), enabling division-free reduction of 128-bit products.
type Modulus struct {
	Q   uint64    // the prime modulus
	BRC [2]uint64 // floor(2^128 / Q), high and low 64-bit words
}

// NewModulus precomputes the Barrett constant for q. q must be nonzero.
func NewModulus(q uint64) Modulus {
	if q == 0 {
		panic("nt: zero modulus")
	}
	// floor(2^128 / q): divide 2^128 - 1 by q and adjust. Since
	// 2^128 = q*floor(2^128/q) + r with 0 <= r < q, and
	// 2^128 - 1 = q*floor((2^128-1)/q) + r', floor(2^128/q) equals
	// floor((2^128-1)/q) unless q divides 2^128, impossible for odd q > 1.
	// Compute floor((2^128-1)/q) via two chained 64-bit divisions.
	hi, rem := bits.Div64(0, ^uint64(0), q)
	lo, _ := bits.Div64(rem, ^uint64(0), q)
	return Modulus{Q: q, BRC: [2]uint64{hi, lo}}
}

// Add returns x + y mod q. Inputs must be < q.
func Add(x, y, q uint64) uint64 {
	r := x + y
	if r >= q {
		r -= q
	}
	return r
}

// Sub returns x - y mod q. Inputs must be < q.
func Sub(x, y, q uint64) uint64 {
	r := x - y
	if x < y {
		r += q
	}
	return r
}

// Neg returns -x mod q. Input must be < q.
func Neg(x, q uint64) uint64 {
	if x == 0 {
		return 0
	}
	return q - x
}

// BRedAdd reduces x (an arbitrary uint64) modulo q using the Barrett
// constant: r = x mod q.
func BRedAdd(x uint64, m Modulus) uint64 {
	// floor(x/q) ~ floor(x * floor(2^128/q) / 2^128) ~ hi word of x*BRC[0].
	t, _ := bits.Mul64(x, m.BRC[0])
	r := x - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulMod returns x*y mod q via Barrett reduction of the 128-bit product.
// Inputs may be any uint64 values (not necessarily reduced).
func MulMod(x, y uint64, m Modulus) uint64 {
	mhi, mlo := bits.Mul64(x, y)
	return Red128(mhi, mlo, m)
}

// Red128 reduces the 128-bit value hi*2^64 + lo modulo q, assuming the
// value is below q*2^64 (always true for products of reduced operands).
func Red128(hi, lo uint64, m Modulus) uint64 {
	u1, u0 := m.BRC[0], m.BRC[1]
	// t = floor(x*u / 2^128) where x = hi:lo and u = u1:u0. Expand the
	// four partial products and keep the word at weight 2^128; the true
	// quotient floor(x/q) differs from t by at most 2.
	ahi, _ := bits.Mul64(lo, u0)
	bhi, blo := bits.Mul64(lo, u1)
	chi, clo := bits.Mul64(hi, u0)
	_, dlo := bits.Mul64(hi, u1)
	s, c1 := bits.Add64(ahi, blo, 0)
	_, c2 := bits.Add64(s, clo, 0)
	t := bhi + chi + dlo + c1 + c2
	r := lo - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupPrec returns floor(y * 2^64 / q), the Shoup precomputation enabling
// MulModShoup. y must be < q.
func ShoupPrec(y, q uint64) uint64 {
	p, _ := bits.Div64(y, 0, q)
	return p
}

// MulModShoup returns x*y mod q given yPrec = ShoupPrec(y, q). This is the
// fast path used by NTT butterflies: two multiplications, no division.
// x must be < q (or < 2q for the lazy variant below after final reduction).
func MulModShoup(x, y, yPrec, q uint64) uint64 {
	t, _ := bits.Mul64(x, yPrec)
	r := x*y - t*q
	if r >= q {
		r -= q
	}
	return r
}

// MulModShoupLazy is MulModShoup without the final conditional subtraction;
// the result lies in [0, 2q).
func MulModShoupLazy(x, y, yPrec, q uint64) uint64 {
	t, _ := bits.Mul64(x, yPrec)
	return x*y - t*q
}

// ModExp returns base^exp mod q by square-and-multiply.
func ModExp(base, exp uint64, m Modulus) uint64 {
	result := uint64(1)
	b := BRedAdd(base, m)
	for exp > 0 {
		if exp&1 == 1 {
			result = MulMod(result, b, m)
		}
		b = MulMod(b, b, m)
		exp >>= 1
	}
	return result
}

// ModInverse returns x^-1 mod q for prime q via Fermat's little theorem.
func ModInverse(x uint64, m Modulus) uint64 {
	return ModExp(x, m.Q-2, m)
}
