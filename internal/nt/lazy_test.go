package nt

import (
	"math/big"
	"math/rand"
	"testing"
)

// lazyTestModuli returns primes spanning the supported range, including
// the largest NTT-friendly prime below the 2^62 package bound — the edge
// where the lazy invariants (2q, 4q and folded 128-bit sums staying
// below their overflow lines) have the least slack.
func lazyTestModuli(t testing.TB) []uint64 {
	t.Helper()
	var out []uint64
	for _, logQ := range []uint64{30, 45, 61} {
		ps, err := GenerateNTTPrimes(logQ, 1<<11, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d): %v", logQ, err)
		}
		out = append(out, ps...)
	}
	// Largest prime ≡ 1 mod 2^11 below 2^62.
	nthRoot := uint64(1) << 11
	q := (uint64(1)<<62-1)/nthRoot*nthRoot + 1
	for !IsPrime(q) {
		q -= nthRoot
	}
	return append(out, q)
}

// TestMulModShoupLazyAnyInput checks the contract the Harvey butterflies
// rely on: for ANY x (not just x < q) and y < q, the lazy product is
// below 2q and congruent to x*y, and the strict variant is fully
// reduced.
func TestMulModShoupLazyAnyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range lazyTestModuli(t) {
		m := NewModulus(q)
		for i := 0; i < 2000; i++ {
			x := rng.Uint64() // arbitrary, including >= 4q
			y := rng.Uint64() % q
			yPrec := ShoupPrec(y, q)
			want := MulMod(x, y, m)

			lazy := MulModShoupLazy(x, y, yPrec, q)
			if lazy >= 2*q {
				t.Fatalf("q=%d: MulModShoupLazy(%d, %d) = %d >= 2q", q, x, y, lazy)
			}
			if lazy%q != want {
				t.Fatalf("q=%d: MulModShoupLazy(%d, %d) ≡ %d, want %d", q, x, y, lazy%q, want)
			}
			strict := MulModShoup(x, y, yPrec, q)
			if strict != want {
				t.Fatalf("q=%d: MulModShoup(%d, %d) = %d, want %d", q, x, y, strict, want)
			}
		}
	}
}

// TestRed128ArbitraryInput checks that Red128 fully reduces ANY 128-bit
// value for moduli below 2^62, which is what lets the fused kernels hand
// it sums of many unreduced products.
func TestRed128ArbitraryInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	big64 := new(big.Int).Lsh(big.NewInt(1), 64)
	for _, q := range lazyTestModuli(t) {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		check := func(hi, lo uint64) {
			got := Red128(hi, lo, m)
			if got >= q {
				t.Fatalf("q=%d: Red128(%d, %d) = %d >= q", q, hi, lo, got)
			}
			v := new(big.Int).SetUint64(hi)
			v.Mul(v, big64)
			v.Add(v, new(big.Int).SetUint64(lo))
			want := v.Mod(v, bq).Uint64()
			if got != want {
				t.Fatalf("q=%d: Red128(%d, %d) = %d, want %d", q, hi, lo, got, want)
			}
		}
		check(^uint64(0), ^uint64(0)) // the all-ones extreme
		check(0, 0)
		for i := 0; i < 2000; i++ {
			check(rng.Uint64(), rng.Uint64())
		}
	}
}

// TestMulAdd128Accumulation accumulates long pseudo-random dot products
// with MulAdd128 — folding with Red128 at LazyThreshold exactly as the
// kernels do — and checks the result against exact big.Int arithmetic.
// It also verifies the no-fold guarantee: 8 products of sub-2^62
// operands plus a reduced carry never overflow 128 bits.
func TestMulAdd128Accumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range lazyTestModuli(t) {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		for _, terms := range []int{1, 7, 8, 9, 64, 257} {
			var hi, lo uint64
			want := new(big.Int)
			tmp := new(big.Int)
			for i := 0; i < terms; i++ {
				x := rng.Uint64() % q
				y := rng.Uint64() % q
				hi, lo = MulAdd128(x, y, hi, lo)
				if hi >= LazyThreshold {
					lo = Red128(hi, lo, m)
					hi = 0
				}
				tmp.SetUint64(x)
				tmp.Mul(tmp, new(big.Int).SetUint64(y))
				want.Add(want, tmp)
			}
			got := Red128(hi, lo, m)
			if want.Mod(want, bq); got != want.Uint64() {
				t.Fatalf("q=%d terms=%d: got %d, want %d", q, terms, got, want.Uint64())
			}
		}
		// No-fold bound: 8 worst-case products plus a carried residue.
		var hi, lo uint64
		lo = q - 1
		worst := new(big.Int).SetUint64(q - 1)
		want := new(big.Int).SetUint64(q - 1)
		worst.Mul(worst, worst)
		for i := 0; i < 8; i++ {
			prevHi := hi
			hi, lo = MulAdd128(q-1, q-1, hi, lo)
			if hi < prevHi {
				t.Fatalf("q=%d: 128-bit accumulator overflowed at term %d", q, i)
			}
			want.Add(want, worst)
		}
		got := Red128(hi, lo, m)
		if want.Mod(want, bq); got != want.Uint64() {
			t.Fatalf("q=%d: no-fold batch got %d, want %d", q, got, want.Uint64())
		}
	}
}

// FuzzLazyReduction fuzzes the three lazy primitives against big.Int
// references on the largest supported modulus shape.
func FuzzLazyReduction(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1)<<62, uint64(3), uint64(1)<<61)
	f.Add(uint64(12345678901234567), uint64(987654321), uint64(42))
	moduli := []uint64{
		(1 << 30) + 2049,    // small prime ≡ 1 mod 2^11 if prime; replaced below if not
		4611686018427322369, // near 2^62
		2305843009213554689, // near 2^61
	}
	for i, q := range moduli {
		if !IsPrime(q) {
			// Walk down to the nearest prime so the corpus stays valid
			// even if the literals above rot.
			for !IsPrime(q) {
				q--
			}
			moduli[i] = q
		}
	}
	f.Fuzz(func(t *testing.T, x, y, hi uint64) {
		for _, q := range moduli {
			m := NewModulus(q)
			yq := y % q
			lazy := MulModShoupLazy(x, yq, ShoupPrec(yq, q), q)
			if lazy >= 2*q {
				t.Fatalf("q=%d: lazy product %d >= 2q", q, lazy)
			}
			if lazy%q != MulMod(x, yq, m) {
				t.Fatalf("q=%d: lazy product wrong residue", q)
			}
			if r := Red128(hi, x, m); r >= q {
				t.Fatalf("q=%d: Red128(%d, %d) = %d not reduced", q, hi, x, r)
			}
			h2, l2 := MulAdd128(x%q, yq, 0, hi)
			if r := Red128(h2, l2, m); r >= q {
				t.Fatalf("q=%d: accumulated Red128 not reduced", q)
			}
		}
	})
}
