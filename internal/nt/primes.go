package nt

import "fmt"

// IsPrime reports whether n is prime, using the Miller–Rabin test with a
// base set that is deterministic for all 64-bit integers.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	m := NewModulus(n)
	d := n - 1
	r := 0
	for d&1 == 0 {
		d >>= 1
		r++
	}
	// These bases are a deterministic witness set for n < 2^64.
witness:
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := ModExp(a, d, m)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < r-1; i++ {
			x = MulMod(x, x, m)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// Factor returns the distinct prime factors of n in ascending order,
// using trial division for small factors and Pollard's rho for the rest.
func Factor(n uint64) []uint64 {
	set := map[uint64]bool{}
	var rec func(uint64)
	rec = func(v uint64) {
		if v == 1 {
			return
		}
		if IsPrime(v) {
			set[v] = true
			return
		}
		d := pollardRho(v)
		rec(d)
		rec(v / d)
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47} {
		for n%p == 0 {
			set[p] = true
			n /= p
		}
	}
	rec(n)
	factors := make([]uint64, 0, len(set))
	for p := range set {
		factors = append(factors, p)
	}
	for i := 1; i < len(factors); i++ { // insertion sort; tiny inputs
		for j := i; j > 0 && factors[j-1] > factors[j]; j-- {
			factors[j-1], factors[j] = factors[j], factors[j-1]
		}
	}
	return factors
}

// pollardRho returns a nontrivial factor of composite n > 1.
func pollardRho(n uint64) uint64 {
	if n&1 == 0 {
		return 2
	}
	m := NewModulus(n)
	for c := uint64(1); ; c++ {
		f := func(x uint64) uint64 { return Add(MulMod(x, x, m), c, n) }
		x, y, d := uint64(2), uint64(2), uint64(1)
		for d == 1 {
			x = f(x)
			y = f(f(y))
			diff := Sub(x, y, n)
			if diff == 0 {
				break // cycle without factor; retry with new c
			}
			d = gcd(diff, n)
		}
		if d != 1 && d != n {
			return d
		}
	}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^* for
// prime q, given the distinct prime factors of q-1.
func PrimitiveRoot(q uint64, factors []uint64) uint64 {
	m := NewModulus(q)
search:
	for g := uint64(2); ; g++ {
		for _, p := range factors {
			if ModExp(g, (q-1)/p, m) == 1 {
				continue search
			}
		}
		return g
	}
}

// RootOfUnity returns a primitive nth root of unity mod prime q.
// q-1 must be divisible by n.
func RootOfUnity(n, q uint64) (uint64, error) {
	if (q-1)%n != 0 {
		return 0, fmt.Errorf("nt: %d does not divide %d-1", n, q)
	}
	g := PrimitiveRoot(q, Factor(q-1))
	m := NewModulus(q)
	psi := ModExp(g, (q-1)/n, m)
	// Sanity: psi^(n/2) must be -1 for even n (primitive, not a smaller root).
	if n%2 == 0 && ModExp(psi, n/2, m) != q-1 {
		return 0, fmt.Errorf("nt: failed to find primitive %dth root mod %d", n, q)
	}
	return psi, nil
}

// GenerateNTTPrimes returns count primes congruent to 1 modulo nthRoot,
// each close to 2^logQ, alternating above and below 2^logQ to keep the
// product near 2^(logQ*count). Primes listed in avoid are skipped, which
// lets callers build disjoint Q and P chains at the same bit size.
// nthRoot must be a power of two.
func GenerateNTTPrimes(logQ, nthRoot uint64, count int, avoid ...uint64) ([]uint64, error) {
	if logQ < 10 || logQ > 61 {
		return nil, fmt.Errorf("nt: logQ %d out of range [10, 61]", logQ)
	}
	skip := make(map[uint64]bool, len(avoid))
	for _, q := range avoid {
		skip[q] = true
	}
	var primes []uint64
	center := uint64(1) << logQ
	up := center + 1
	down := center + 1 - nthRoot
	for len(primes) < count {
		if IsPrime(up) && !skip[up] {
			primes = append(primes, up)
			if len(primes) == count {
				break
			}
		}
		up += nthRoot
		if down > nthRoot && IsPrime(down) && !skip[down] {
			primes = append(primes, down)
		}
		if down > nthRoot {
			down -= nthRoot
		}
		if up >= 1<<62 {
			return nil, fmt.Errorf("nt: exhausted candidates for logQ=%d nthRoot=%d", logQ, nthRoot)
		}
	}
	return primes[:count], nil
}
