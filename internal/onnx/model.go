package onnx

import (
	"fmt"

	"antace/internal/tensor"
)

// Element types (onnx.TensorProto.DataType).
const (
	ElemFloat  = 1
	ElemInt64  = 7
	ElemDouble = 11
)

// Attribute types (onnx.AttributeProto.AttributeType).
const (
	AttrFloat   = 1
	AttrInt     = 2
	AttrString  = 3
	AttrTensor  = 4
	AttrFloats  = 6
	AttrInts    = 7
	AttrStrings = 8
)

// Model mirrors onnx.ModelProto (the subset used by inference models).
type Model struct {
	IRVersion    int64
	ProducerName string
	OpsetVersion int64
	Graph        *Graph
}

// Graph mirrors onnx.GraphProto.
type Graph struct {
	Name         string
	Nodes        []*Node
	Initializers []*TensorData
	Inputs       []*ValueInfo
	Outputs      []*ValueInfo
}

// Node mirrors onnx.NodeProto.
type Node struct {
	Name    string
	OpType  string
	Inputs  []string
	Outputs []string
	Attrs   []*Attribute
}

// Attr returns the attribute with the given name, or nil.
func (n *Node) Attr(name string) *Attribute {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AttrInt returns an integer attribute or the default.
func (n *Node) AttrInt(name string, def int64) int64 {
	if a := n.Attr(name); a != nil {
		return a.I
	}
	return def
}

// AttrFloat returns a float attribute or the default.
func (n *Node) AttrFloat(name string, def float64) float64 {
	if a := n.Attr(name); a != nil {
		return float64(a.F)
	}
	return def
}

// AttrInts returns an integer-list attribute or the default.
func (n *Node) AttrInts(name string, def []int64) []int64 {
	if a := n.Attr(name); a != nil {
		return a.Ints
	}
	return def
}

// Attribute mirrors onnx.AttributeProto.
type Attribute struct {
	Name   string
	Type   int
	F      float32
	I      int64
	S      []byte
	Floats []float32
	Ints   []int64
}

// TensorData mirrors onnx.TensorProto (weights/initializers).
type TensorData struct {
	Name     string
	Dims     []int64
	DataType int32
	Floats   []float32
	Int64s   []int64
	Doubles  []float64
	Raw      []byte
}

// ValueInfo mirrors onnx.ValueInfoProto with a tensor type.
type ValueInfo struct {
	Name     string
	ElemType int32
	Shape    []int64
}

// Initializer returns the named initializer, or nil.
func (g *Graph) Initializer(name string) *TensorData {
	for _, t := range g.Initializers {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// ToTensor converts the tensor data to the float64 tensor type used by
// the compiler, decoding raw little-endian payloads when present.
func (td *TensorData) ToTensor() (*tensor.Tensor, error) {
	shape := make([]int, len(td.Dims))
	size := 1
	for i, d := range td.Dims {
		shape[i] = int(d)
		size *= int(d)
	}
	if len(shape) == 0 {
		shape = []int{1}
	}
	data := make([]float64, 0, size)
	switch {
	case len(td.Floats) > 0:
		for _, v := range td.Floats {
			data = append(data, float64(v))
		}
	case len(td.Doubles) > 0:
		data = append(data, td.Doubles...)
	case len(td.Int64s) > 0:
		for _, v := range td.Int64s {
			data = append(data, float64(v))
		}
	case len(td.Raw) > 0:
		vals, err := decodeRaw(td.Raw, td.DataType)
		if err != nil {
			return nil, fmt.Errorf("onnx: initializer %q: %w", td.Name, err)
		}
		data = vals
	}
	if len(data) != size {
		return nil, fmt.Errorf("onnx: initializer %q has %d values for shape %v", td.Name, len(data), td.Dims)
	}
	return tensor.FromData(data, shape...), nil
}

// Ints returns the tensor data as integers (for shape-carrying inputs).
func (td *TensorData) Ints() ([]int64, error) {
	if len(td.Int64s) > 0 {
		return td.Int64s, nil
	}
	t, err := td.ToTensor()
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(t.Data))
	for i, v := range t.Data {
		out[i] = int64(v)
	}
	return out, nil
}

// FromTensor builds float32 tensor data from a float64 tensor.
func FromTensor(name string, t *tensor.Tensor) *TensorData {
	td := &TensorData{Name: name, DataType: ElemFloat}
	for _, d := range t.Shape {
		td.Dims = append(td.Dims, int64(d))
	}
	td.Floats = make([]float32, len(t.Data))
	for i, v := range t.Data {
		td.Floats[i] = float32(v)
	}
	return td
}

// Validate performs structural checks: unique value names, all node
// inputs resolvable, at least one graph input and output.
func (m *Model) Validate() error {
	if m.Graph == nil {
		return fmt.Errorf("onnx: model has no graph")
	}
	g := m.Graph
	if len(g.Inputs) == 0 {
		return fmt.Errorf("onnx: graph %q has no inputs", g.Name)
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("onnx: graph %q has no outputs", g.Name)
	}
	defined := map[string]bool{}
	for _, in := range g.Inputs {
		defined[in.Name] = true
	}
	for _, init := range g.Initializers {
		defined[init.Name] = true
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in == "" {
				continue // optional input
			}
			if !defined[in] {
				return fmt.Errorf("onnx: node %q (%s) consumes undefined value %q", n.Name, n.OpType, in)
			}
		}
		for _, out := range n.Outputs {
			if defined[out] {
				return fmt.Errorf("onnx: value %q defined twice", out)
			}
			defined[out] = true
		}
	}
	for _, out := range g.Outputs {
		if !defined[out.Name] {
			return fmt.Errorf("onnx: graph output %q never produced", out.Name)
		}
	}
	return nil
}
