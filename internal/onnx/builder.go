package onnx

import (
	"fmt"

	"antace/internal/tensor"
)

// Builder assembles ONNX graphs programmatically (the in-repo stand-in
// for exporting models from a training framework).
type Builder struct {
	g       *Graph
	counter int
}

// NewBuilder starts an empty graph.
func NewBuilder(name string) *Builder {
	return &Builder{g: &Graph{Name: name}}
}

// fresh generates a unique value name.
func (b *Builder) fresh(prefix string) string {
	b.counter++
	return fmt.Sprintf("%s_%d", prefix, b.counter)
}

// Input declares a graph input.
func (b *Builder) Input(name string, shape ...int64) string {
	b.g.Inputs = append(b.g.Inputs, &ValueInfo{Name: name, ElemType: ElemFloat, Shape: shape})
	return name
}

// Output declares a graph output.
func (b *Builder) Output(name string, shape ...int64) {
	b.g.Outputs = append(b.g.Outputs, &ValueInfo{Name: name, ElemType: ElemFloat, Shape: shape})
}

// Weight registers an initializer and returns its name.
func (b *Builder) Weight(name string, t *tensor.Tensor) string {
	b.g.Initializers = append(b.g.Initializers, FromTensor(name, t))
	return name
}

// IntWeight registers an int64 initializer (shapes for Reshape etc).
func (b *Builder) IntWeight(name string, vals []int64) string {
	b.g.Initializers = append(b.g.Initializers, &TensorData{
		Name: name, DataType: ElemInt64, Dims: []int64{int64(len(vals))}, Int64s: vals,
	})
	return name
}

// Node appends a generic node with a single fresh output.
func (b *Builder) Node(opType string, inputs []string, attrs ...*Attribute) string {
	out := b.fresh(opType)
	b.g.Nodes = append(b.g.Nodes, &Node{
		Name:    b.fresh("node"),
		OpType:  opType,
		Inputs:  inputs,
		Outputs: []string{out},
		Attrs:   attrs,
	})
	return out
}

// NodeNamed appends a node with an explicit output name.
func (b *Builder) NodeNamed(opType, output string, inputs []string, attrs ...*Attribute) string {
	b.g.Nodes = append(b.g.Nodes, &Node{
		Name:    b.fresh("node"),
		OpType:  opType,
		Inputs:  inputs,
		Outputs: []string{output},
		Attrs:   attrs,
	})
	return output
}

// AttrIntVal builds an integer attribute.
func AttrIntVal(name string, v int64) *Attribute {
	return &Attribute{Name: name, Type: AttrInt, I: v}
}

// AttrIntsVal builds an integer-list attribute.
func AttrIntsVal(name string, vs ...int64) *Attribute {
	return &Attribute{Name: name, Type: AttrInts, Ints: vs}
}

// AttrFloatVal builds a float attribute.
func AttrFloatVal(name string, v float64) *Attribute {
	return &Attribute{Name: name, Type: AttrFloat, F: float32(v)}
}

// Conv appends a Conv node (NCHW/OIHW, symmetric padding).
func (b *Builder) Conv(x, w, bias string, stride, pad int64) string {
	inputs := []string{x, w}
	if bias != "" {
		inputs = append(inputs, bias)
	}
	return b.Node("Conv", inputs,
		AttrIntsVal("strides", stride, stride),
		AttrIntsVal("pads", pad, pad, pad, pad),
		AttrIntsVal("kernel_shape")) // kernel_shape inferred from weights; kept empty
}

// Relu appends a Relu node.
func (b *Builder) Relu(x string) string { return b.Node("Relu", []string{x}) }

// Add appends an elementwise Add.
func (b *Builder) Add(x, y string) string { return b.Node("Add", []string{x, y}) }

// Gemm appends a Gemm node y = x*W^T + bias (transB=1, ONNX convention
// for linear layers).
func (b *Builder) Gemm(x, w, bias string) string {
	inputs := []string{x, w}
	if bias != "" {
		inputs = append(inputs, bias)
	}
	return b.Node("Gemm", inputs, AttrIntVal("transB", 1))
}

// AveragePool appends an AveragePool node.
func (b *Builder) AveragePool(x string, kernel, stride int64) string {
	return b.Node("AveragePool", []string{x},
		AttrIntsVal("kernel_shape", kernel, kernel),
		AttrIntsVal("strides", stride, stride))
}

// GlobalAveragePool appends a GlobalAveragePool node.
func (b *Builder) GlobalAveragePool(x string) string {
	return b.Node("GlobalAveragePool", []string{x})
}

// Flatten appends a Flatten node.
func (b *Builder) Flatten(x string) string {
	return b.Node("Flatten", []string{x}, AttrIntVal("axis", 1))
}

// BatchNorm appends a BatchNormalization node with the given parameter
// initializer names.
func (b *Builder) BatchNorm(x, gamma, beta, mean, variance string, eps float64) string {
	return b.Node("BatchNormalization", []string{x, gamma, beta, mean, variance},
		AttrFloatVal("epsilon", eps))
}

// Reshape appends a Reshape node with a constant shape.
func (b *Builder) Reshape(x string, shape []int64) string {
	s := b.IntWeight(b.fresh("shape"), shape)
	return b.Node("Reshape", []string{x, s})
}

// Model finalizes the graph into a model.
func (b *Builder) Model() *Model {
	return &Model{
		IRVersion:    8,
		ProducerName: "antace-builder",
		OpsetVersion: 17,
		Graph:        b.g,
	}
}
