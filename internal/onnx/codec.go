package onnx

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// Field numbers from onnx.proto (v1.x, stable across opsets).
const (
	modelIRVersion   = 1
	modelProducer    = 2
	modelGraph       = 7
	modelOpsetImport = 8

	opsetVersion = 2

	graphNode        = 1
	graphName        = 2
	graphInitializer = 5
	graphInput       = 11
	graphOutput      = 12

	nodeInput     = 1
	nodeOutput    = 2
	nodeName      = 3
	nodeOpType    = 4
	nodeAttribute = 5

	attrName   = 1
	attrF      = 2
	attrI      = 3
	attrS      = 4
	attrFloats = 7
	attrInts   = 8
	attrType   = 20

	tensorDims     = 1
	tensorDataType = 2
	tensorFloats   = 4
	tensorInt64s   = 7
	tensorName     = 8
	tensorRaw      = 9
	tensorDoubles  = 10

	valueInfoName = 1
	valueInfoType = 2

	typeTensorType = 1

	tensorTypeElem  = 1
	tensorTypeShape = 2

	shapeDim = 1
	dimValue = 1
	dimParam = 2
)

// Unmarshal parses a serialized ModelProto.
func Unmarshal(data []byte) (*Model, error) {
	m := &Model{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case modelIRVersion:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			m.IRVersion = int64(v)
		case modelProducer:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			m.ProducerName = string(b)
		case modelGraph:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			g, err := unmarshalGraph(b)
			if err != nil {
				return nil, err
			}
			m.Graph = g
		case modelOpsetImport:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			od := &decoder{buf: b}
			for !od.done() {
				f, w, err := od.tag()
				if err != nil {
					return nil, err
				}
				if f == opsetVersion && w == wireVarint {
					v, err := od.varint()
					if err != nil {
						return nil, err
					}
					m.OpsetVersion = int64(v)
					continue
				}
				if err := od.skip(w); err != nil {
					return nil, err
				}
			}
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}
	if m.Graph == nil {
		return nil, fmt.Errorf("onnx: model has no graph")
	}
	return m, nil
}

func unmarshalGraph(data []byte) (*Graph, error) {
	g := &Graph{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		b, berr := []byte(nil), error(nil)
		if wt == wireLen {
			b, berr = d.bytes()
			if berr != nil {
				return nil, berr
			}
		} else if err := d.skip(wt); err != nil {
			return nil, err
		}
		switch field {
		case graphNode:
			n, err := unmarshalNode(b)
			if err != nil {
				return nil, err
			}
			g.Nodes = append(g.Nodes, n)
		case graphName:
			g.Name = string(b)
		case graphInitializer:
			t, err := unmarshalTensor(b)
			if err != nil {
				return nil, err
			}
			g.Initializers = append(g.Initializers, t)
		case graphInput:
			vi, err := unmarshalValueInfo(b)
			if err != nil {
				return nil, err
			}
			g.Inputs = append(g.Inputs, vi)
		case graphOutput:
			vi, err := unmarshalValueInfo(b)
			if err != nil {
				return nil, err
			}
			g.Outputs = append(g.Outputs, vi)
		}
	}
	return g, nil
}

func unmarshalNode(data []byte) (*Node, error) {
	n := &Node{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		if wt != wireLen {
			if err := d.skip(wt); err != nil {
				return nil, err
			}
			continue
		}
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		switch field {
		case nodeInput:
			n.Inputs = append(n.Inputs, string(b))
		case nodeOutput:
			n.Outputs = append(n.Outputs, string(b))
		case nodeName:
			n.Name = string(b)
		case nodeOpType:
			n.OpType = string(b)
		case nodeAttribute:
			a, err := unmarshalAttr(b)
			if err != nil {
				return nil, err
			}
			n.Attrs = append(n.Attrs, a)
		}
	}
	return n, nil
}

func unmarshalAttr(data []byte) (*Attribute, error) {
	a := &Attribute{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case attrName:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			a.Name = string(b)
		case attrF:
			v, err := d.fixed32()
			if err != nil {
				return nil, err
			}
			a.F = math.Float32frombits(v)
		case attrI:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			a.I = int64(v)
		case attrS:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			a.S = b
		case attrFloats:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				for i := 0; i+4 <= len(b); i += 4 {
					a.Floats = append(a.Floats, math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
				}
			} else {
				v, err := d.fixed32()
				if err != nil {
					return nil, err
				}
				a.Floats = append(a.Floats, math.Float32frombits(v))
			}
		case attrInts:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				id := &decoder{buf: b}
				for !id.done() {
					v, err := id.varint()
					if err != nil {
						return nil, err
					}
					a.Ints = append(a.Ints, int64(v))
				}
			} else {
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				a.Ints = append(a.Ints, int64(v))
			}
		case attrType:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			a.Type = int(v)
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

func unmarshalTensor(data []byte) (*TensorData, error) {
	t := &TensorData{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case tensorDims:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				id := &decoder{buf: b}
				for !id.done() {
					v, err := id.varint()
					if err != nil {
						return nil, err
					}
					t.Dims = append(t.Dims, int64(v))
				}
			} else {
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				t.Dims = append(t.Dims, int64(v))
			}
		case tensorDataType:
			v, err := d.varint()
			if err != nil {
				return nil, err
			}
			t.DataType = int32(v)
		case tensorFloats:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				for i := 0; i+4 <= len(b); i += 4 {
					t.Floats = append(t.Floats, math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
				}
			} else {
				v, err := d.fixed32()
				if err != nil {
					return nil, err
				}
				t.Floats = append(t.Floats, math.Float32frombits(v))
			}
		case tensorInt64s:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				id := &decoder{buf: b}
				for !id.done() {
					v, err := id.varint()
					if err != nil {
						return nil, err
					}
					t.Int64s = append(t.Int64s, int64(v))
				}
			} else {
				v, err := d.varint()
				if err != nil {
					return nil, err
				}
				t.Int64s = append(t.Int64s, int64(v))
			}
		case tensorName:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			t.Name = string(b)
		case tensorRaw:
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			t.Raw = b
		case tensorDoubles:
			if wt == wireLen {
				b, err := d.bytes()
				if err != nil {
					return nil, err
				}
				for i := 0; i+8 <= len(b); i += 8 {
					t.Doubles = append(t.Doubles, math.Float64frombits(binary.LittleEndian.Uint64(b[i:])))
				}
			} else {
				v, err := d.fixed64()
				if err != nil {
					return nil, err
				}
				t.Doubles = append(t.Doubles, math.Float64frombits(v))
			}
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

func unmarshalValueInfo(data []byte) (*ValueInfo, error) {
	vi := &ValueInfo{}
	d := &decoder{buf: data}
	for !d.done() {
		field, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		if wt != wireLen {
			if err := d.skip(wt); err != nil {
				return nil, err
			}
			continue
		}
		b, err := d.bytes()
		if err != nil {
			return nil, err
		}
		switch field {
		case valueInfoName:
			vi.Name = string(b)
		case valueInfoType:
			td := &decoder{buf: b}
			for !td.done() {
				f, w, err := td.tag()
				if err != nil {
					return nil, err
				}
				if f != typeTensorType || w != wireLen {
					if err := td.skip(w); err != nil {
						return nil, err
					}
					continue
				}
				tb, err := td.bytes()
				if err != nil {
					return nil, err
				}
				if err := parseTensorType(tb, vi); err != nil {
					return nil, err
				}
			}
		}
	}
	return vi, nil
}

func parseTensorType(data []byte, vi *ValueInfo) error {
	d := &decoder{buf: data}
	for !d.done() {
		f, w, err := d.tag()
		if err != nil {
			return err
		}
		switch f {
		case tensorTypeElem:
			v, err := d.varint()
			if err != nil {
				return err
			}
			vi.ElemType = int32(v)
		case tensorTypeShape:
			b, err := d.bytes()
			if err != nil {
				return err
			}
			sd := &decoder{buf: b}
			for !sd.done() {
				sf, sw, err := sd.tag()
				if err != nil {
					return err
				}
				if sf != shapeDim || sw != wireLen {
					if err := sd.skip(sw); err != nil {
						return err
					}
					continue
				}
				db, err := sd.bytes()
				if err != nil {
					return err
				}
				dd := &decoder{buf: db}
				dim := int64(-1)
				for !dd.done() {
					df, dw, err := dd.tag()
					if err != nil {
						return err
					}
					if df == dimValue && dw == wireVarint {
						v, err := dd.varint()
						if err != nil {
							return err
						}
						dim = int64(v)
						continue
					}
					if err := dd.skip(dw); err != nil {
						return err
					}
				}
				vi.Shape = append(vi.Shape, dim)
			}
		default:
			if err := d.skip(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeRaw interprets a raw little-endian tensor payload.
func decodeRaw(raw []byte, dataType int32) ([]float64, error) {
	switch dataType {
	case ElemFloat:
		if len(raw)%4 != 0 {
			return nil, fmt.Errorf("raw float payload length %d not divisible by 4", len(raw))
		}
		out := make([]float64, len(raw)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out, nil
	case ElemDouble:
		if len(raw)%8 != 0 {
			return nil, fmt.Errorf("raw double payload length %d not divisible by 8", len(raw))
		}
		out := make([]float64, len(raw)/8)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		return out, nil
	case ElemInt64:
		if len(raw)%8 != 0 {
			return nil, fmt.Errorf("raw int64 payload length %d not divisible by 8", len(raw))
		}
		out := make([]float64, len(raw)/8)
		for i := range out {
			out[i] = float64(int64(binary.LittleEndian.Uint64(raw[8*i:])))
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported raw data type %d", dataType)
}

// Marshal serializes the model to ModelProto wire format.
func Marshal(m *Model) []byte {
	var e encoder
	if m.IRVersion != 0 {
		e.int64Field(modelIRVersion, m.IRVersion)
	}
	e.stringField(modelProducer, m.ProducerName)
	if m.Graph != nil {
		e.messageField(modelGraph, marshalGraph(m.Graph))
	}
	if m.OpsetVersion != 0 {
		var op encoder
		op.int64Field(opsetVersion, m.OpsetVersion)
		e.messageField(modelOpsetImport, op.buf)
	}
	return e.buf
}

func marshalGraph(g *Graph) []byte {
	var e encoder
	for _, n := range g.Nodes {
		e.messageField(graphNode, marshalNode(n))
	}
	e.stringField(graphName, g.Name)
	for _, t := range g.Initializers {
		e.messageField(graphInitializer, marshalTensor(t))
	}
	for _, vi := range g.Inputs {
		e.messageField(graphInput, marshalValueInfo(vi))
	}
	for _, vi := range g.Outputs {
		e.messageField(graphOutput, marshalValueInfo(vi))
	}
	return e.buf
}

func marshalNode(n *Node) []byte {
	var e encoder
	for _, in := range n.Inputs {
		e.bytesField(nodeInput, []byte(in))
	}
	for _, out := range n.Outputs {
		e.bytesField(nodeOutput, []byte(out))
	}
	e.stringField(nodeName, n.Name)
	e.stringField(nodeOpType, n.OpType)
	for _, a := range n.Attrs {
		e.messageField(nodeAttribute, marshalAttr(a))
	}
	return e.buf
}

func marshalAttr(a *Attribute) []byte {
	var e encoder
	e.stringField(attrName, a.Name)
	switch a.Type {
	case AttrFloat:
		e.floatField(attrF, a.F)
	case AttrInt:
		e.varintField(attrI, uint64(a.I))
	case AttrString:
		e.bytesField(attrS, a.S)
	case AttrFloats:
		e.packedFloats(attrFloats, a.Floats)
	case AttrInts:
		e.packedInt64s(attrInts, a.Ints)
	}
	e.varintField(attrType, uint64(a.Type))
	return e.buf
}

func marshalTensor(t *TensorData) []byte {
	var e encoder
	e.packedInt64s(tensorDims, t.Dims)
	if t.DataType != 0 {
		e.varintField(tensorDataType, uint64(t.DataType))
	}
	e.packedFloats(tensorFloats, t.Floats)
	e.packedInt64s(tensorInt64s, t.Int64s)
	e.stringField(tensorName, t.Name)
	if len(t.Raw) > 0 {
		e.bytesField(tensorRaw, t.Raw)
	}
	return e.buf
}

func marshalValueInfo(vi *ValueInfo) []byte {
	var tt encoder
	tt.varintField(tensorTypeElem, uint64(vi.ElemType))
	var sh encoder
	for _, d := range vi.Shape {
		var dim encoder
		dim.varintField(dimValue, uint64(d))
		sh.messageField(shapeDim, dim.buf)
	}
	tt.messageField(tensorTypeShape, sh.buf)

	var ty encoder
	ty.messageField(typeTensorType, tt.buf)

	var e encoder
	e.stringField(valueInfoName, vi.Name)
	e.messageField(valueInfoType, ty.buf)
	return e.buf
}

// Load reads and parses an ONNX model file.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("onnx: parsing %s: %w", path, err)
	}
	return m, nil
}

// Save writes the model to a file.
func Save(m *Model, path string) error {
	return os.WriteFile(path, Marshal(m), 0o644)
}
