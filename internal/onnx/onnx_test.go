package onnx

import (
	"os"
	"path/filepath"
	"testing"

	"antace/internal/tensor"
)

func TestWireVarintRoundTrip(t *testing.T) {
	var e encoder
	vals := []uint64{0, 1, 127, 128, 300, 1 << 40, ^uint64(0)}
	for _, v := range vals {
		e.varint(v)
	}
	d := &decoder{buf: e.buf}
	for _, want := range vals {
		got, err := d.varint()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("varint round trip: got %d want %d", got, want)
		}
	}
	if !d.done() {
		t.Fatal("decoder not exhausted")
	}
}

func TestWireTruncatedInputs(t *testing.T) {
	d := &decoder{buf: []byte{0x80}} // incomplete varint
	if _, err := d.varint(); err == nil {
		t.Fatal("expected truncated varint error")
	}
	d = &decoder{buf: []byte{0x05, 0x01}} // length 5 but 1 byte left
	if _, err := d.bytes(); err == nil {
		t.Fatal("expected truncated bytes error")
	}
	d = &decoder{buf: []byte{0x01}}
	if _, err := d.fixed32(); err == nil {
		t.Fatal("expected truncated fixed32 error")
	}
}

func TestModelRoundTrip(t *testing.T) {
	m, err := BuildLinear(84, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(m)
	m2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Graph.Name != "linear_infer" {
		t.Fatalf("graph name %q", m2.Graph.Name)
	}
	if len(m2.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Fatalf("node count %d vs %d", len(m2.Graph.Nodes), len(m.Graph.Nodes))
	}
	if m2.OpsetVersion != m.OpsetVersion || m2.IRVersion != m.IRVersion {
		t.Fatal("version fields lost")
	}
	w := m2.Graph.Initializer("fc.weight")
	if w == nil {
		t.Fatal("initializer lost")
	}
	wt, err := w.ToTensor()
	if err != nil {
		t.Fatal(err)
	}
	if wt.Shape[0] != 10 || wt.Shape[1] != 84 {
		t.Fatalf("weight shape %v", wt.Shape)
	}
	orig, _ := m.Graph.Initializer("fc.weight").ToTensor()
	for i := range wt.Data {
		// float32 round trip
		if diff := wt.Data[i] - orig.Data[i]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("weight datum %d changed: %g vs %g", i, wt.Data[i], orig.Data[i])
		}
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.onnx")
	m, err := BuildSmallCNN(SmallCNNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(m, path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m2.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Fatal("node count changed through file round trip")
	}
	if _, err := Load(filepath.Join(dir, "missing.onnx")); err == nil {
		t.Fatal("expected error for missing file")
	}
	// Corrupt file must fail to parse, not crash.
	if err := os.WriteFile(path, []byte{0xff, 0xff, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected parse error for corrupt file")
	}
}

func TestBuildResNetStructure(t *testing.T) {
	for _, depth := range []int{20, 32, 44, 56, 110} {
		m, err := BuildResNet(ResNetConfig{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("resnet%d: %v", depth, err)
		}
		convs := 0
		for _, n := range m.Graph.Nodes {
			if n.OpType == "Conv" {
				convs++
			}
		}
		// 6k 3x3 convs in blocks + stem + 2 projection shortcuts.
		k := (depth - 2) / 6
		want := 6*k + 1 + 2
		if convs != want {
			t.Fatalf("resnet%d: %d convs, want %d", depth, convs, want)
		}
	}
	if _, err := BuildResNet(ResNetConfig{Depth: 21}); err == nil {
		t.Fatal("expected error for invalid depth")
	}
}

func TestBuildResNetDeterministic(t *testing.T) {
	m1, _ := BuildResNet(ResNetConfig{Depth: 20, Seed: 5})
	m2, _ := BuildResNet(ResNetConfig{Depth: 20, Seed: 5})
	b1, b2 := Marshal(m1), Marshal(m2)
	if len(b1) != len(b2) {
		t.Fatal("non-deterministic serialization length")
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("non-deterministic model bytes")
		}
	}
}

func TestResNetCustomWeights(t *testing.T) {
	w := tensor.New(10, 8)
	for i := range w.Data {
		w.Data[i] = float64(i)
	}
	m, err := BuildResNet(ResNetConfig{Depth: 8, BaseChannels: 2, Weights: map[string]*tensor.Tensor{
		"fc.weight": w,
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Graph.Initializer("fc.weight").ToTensor()
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[5] != 5 {
		t.Fatal("custom weights not used")
	}
}

func TestNodeAttrHelpers(t *testing.T) {
	n := &Node{Attrs: []*Attribute{
		AttrIntVal("stride", 2),
		AttrIntsVal("pads", 1, 1, 1, 1),
		AttrFloatVal("epsilon", 1e-5),
	}}
	if n.AttrInt("stride", 0) != 2 {
		t.Fatal("AttrInt")
	}
	if n.AttrInt("missing", 7) != 7 {
		t.Fatal("AttrInt default")
	}
	if got := n.AttrInts("pads", nil); len(got) != 4 {
		t.Fatal("AttrInts")
	}
	if n.AttrFloat("epsilon", 0) == 0 {
		t.Fatal("AttrFloat")
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	b := NewBuilder("broken")
	b.Input("x", 1, 4)
	b.g.Nodes = append(b.g.Nodes, &Node{OpType: "Relu", Inputs: []string{"ghost"}, Outputs: []string{"y"}})
	b.Output("y", 1, 4)
	if err := b.Model().Validate(); err == nil {
		t.Fatal("expected undefined-input error")
	}

	b2 := NewBuilder("nooutput")
	b2.Input("x", 1, 4)
	if err := b2.Model().Validate(); err == nil {
		t.Fatal("expected no-output error")
	}

	b3 := NewBuilder("dangling")
	b3.Input("x", 1, 4)
	b3.Output("nowhere", 1, 4)
	if err := b3.Model().Validate(); err == nil {
		t.Fatal("expected unproduced-output error")
	}
}
