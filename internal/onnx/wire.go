// Package onnx implements the compiler front end's model format: a
// reader and writer for the ONNX protobuf subset needed for inference
// models (ModelProto, GraphProto, NodeProto, AttributeProto, TensorProto,
// ValueInfoProto), implemented directly on the protobuf wire format with
// no generated code, plus builders for the ResNet family the paper
// evaluates.
package onnx

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Protobuf wire types.
const (
	wireVarint = 0
	wireI64    = 1
	wireLen    = 2
	wireI32    = 5
)

// decoder walks a protobuf-encoded buffer.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) varint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("onnx: truncated varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

// tag reads a field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("onnx: length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

func (d *decoder) fixed32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("onnx: truncated fixed32")
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) fixed64() (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("onnx: truncated fixed64")
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// skip discards a field of the given wire type.
func (d *decoder) skip(wt int) error {
	switch wt {
	case wireVarint:
		_, err := d.varint()
		return err
	case wireI64:
		_, err := d.fixed64()
		return err
	case wireLen:
		_, err := d.bytes()
		return err
	case wireI32:
		_, err := d.fixed32()
		return err
	}
	return fmt.Errorf("onnx: unsupported wire type %d", wt)
}

// zigzag is unused by ONNX (no sint fields) but kept for completeness.
func zigzagDecode(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// encoder builds a protobuf-encoded buffer.
type encoder struct {
	buf []byte
}

func (e *encoder) varint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) tag(field, wt int) {
	e.varint(uint64(field)<<3 | uint64(wt))
}

func (e *encoder) bytesField(field int, b []byte) {
	e.tag(field, wireLen)
	e.varint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) stringField(field int, s string) {
	if s == "" {
		return
	}
	e.bytesField(field, []byte(s))
}

func (e *encoder) varintField(field int, v uint64) {
	e.tag(field, wireVarint)
	e.varint(v)
}

func (e *encoder) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	e.varintField(field, uint64(v))
}

func (e *encoder) floatField(field int, v float32) {
	e.tag(field, wireI32)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
}

// packedFloats encodes a packed repeated float field.
func (e *encoder) packedFloats(field int, vs []float32) {
	if len(vs) == 0 {
		return
	}
	e.tag(field, wireLen)
	e.varint(uint64(4 * len(vs)))
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(v))
	}
}

// packedInt64s encodes a packed repeated int64 field.
func (e *encoder) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner encoder
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	e.bytesField(field, inner.buf)
}

// messageField encodes a nested message.
func (e *encoder) messageField(field int, body []byte) {
	e.bytesField(field, body)
}
