package onnx

import (
	"testing"
	"testing/quick"
)

// TestDecoderNeverPanics feeds arbitrary byte strings to the protobuf
// decoder: malformed models must produce errors, never panics (the
// compiler front end is the attack surface closest to untrusted input).
func TestDecoderNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDecoderNeverPanicsOnMutations flips bytes in a valid model: the
// decoder must survive every single-byte corruption.
func TestDecoderNeverPanicsOnMutations(t *testing.T) {
	m, err := BuildLinear(8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	data := Marshal(m)
	step := len(data)/200 + 1
	for i := 0; i < len(data); i += step {
		for _, b := range []byte{0x00, 0xFF, data[i] ^ 0x80} {
			mut := append([]byte(nil), data...)
			mut[i] = b
			if parsed, err := Unmarshal(mut); err == nil && parsed != nil {
				_ = parsed.Validate() // must not panic either
			}
		}
	}
}

// TestTruncationSafety checks every prefix of a valid model parses or
// errors cleanly.
func TestTruncationSafety(t *testing.T) {
	m, _ := BuildSmallCNN(SmallCNNConfig{})
	data := Marshal(m)
	step := len(data)/100 + 1
	for n := 0; n < len(data); n += step {
		_, _ = Unmarshal(data[:n])
	}
}
