package onnx

import (
	"fmt"
	"math"
	"math/rand/v2"

	"antace/internal/tensor"
)

// ResNetConfig describes a CIFAR-style ResNet (He et al.): depth 6k+2,
// three stages of k basic blocks with 16/32/64 base channels.
type ResNetConfig struct {
	Depth         int // 20, 32, 44, 56, 110
	Classes       int // 10 (CIFAR-10) or 100 (CIFAR-100)
	InputSize     int // spatial size, 32 for CIFAR
	InputChannels int // 3 for CIFAR
	BaseChannels  int // 16 for the standard family; smaller for tests
	Seed          uint64
	// Weights, when non-nil, supplies trained weights keyed by
	// initializer name; otherwise deterministic He-initialised weights
	// are generated from Seed.
	Weights map[string]*tensor.Tensor
}

func (c ResNetConfig) withDefaults() ResNetConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.InputSize == 0 {
		c.InputSize = 32
	}
	if c.InputChannels == 0 {
		c.InputChannels = 3
	}
	if c.BaseChannels == 0 {
		c.BaseChannels = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// BuildResNet constructs the ONNX graph of a CIFAR-style ResNet. The
// structure matches the models evaluated in the paper: an initial 3x3
// convolution, three stages of basic blocks (with stride-2 projection
// shortcuts at stage boundaries), global average pooling and a final
// fully-connected layer. Every convolution is followed by batch
// normalisation, which the compiler's NN IR fusion pass folds away.
func BuildResNet(cfg ResNetConfig) (*Model, error) {
	cfg = cfg.withDefaults()
	if (cfg.Depth-2)%6 != 0 || cfg.Depth < 8 {
		return nil, fmt.Errorf("onnx: ResNet depth %d is not 6k+2", cfg.Depth)
	}
	k := (cfg.Depth - 2) / 6
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xACE))
	b := NewBuilder(fmt.Sprintf("resnet%d", cfg.Depth))

	weight := func(name string, shape ...int) string {
		if t, ok := cfg.Weights[name]; ok {
			return b.Weight(name, t)
		}
		t := tensor.New(shape...)
		fanIn := 1
		for _, d := range shape[1:] {
			fanIn *= d
		}
		std := math.Sqrt(2 / float64(fanIn))
		for i := range t.Data {
			t.Data[i] = rng.NormFloat64() * std
		}
		return b.Weight(name, t)
	}
	bnParams := func(name string, ch int) (g, bt, mn, vr string) {
		mk := func(suffix string, def func(int) float64) string {
			full := name + "." + suffix
			if t, ok := cfg.Weights[full]; ok {
				return b.Weight(full, t)
			}
			t := tensor.New(ch)
			for i := range t.Data {
				t.Data[i] = def(i)
			}
			return b.Weight(full, t)
		}
		g = mk("gamma", func(int) float64 { return 1 + 0.05*rng.NormFloat64() })
		bt = mk("beta", func(int) float64 { return 0.05 * rng.NormFloat64() })
		mn = mk("mean", func(int) float64 { return 0.05 * rng.NormFloat64() })
		vr = mk("var", func(int) float64 { return 1 + 0.1*rng.Float64() })
		return
	}
	convBN := func(tag, x string, cin, cout, stride int) string {
		w := weight(tag+".weight", cout, cin, 3, 3)
		y := b.Conv(x, w, "", int64(stride), 1)
		g, bt, mn, vr := bnParams(tag+".bn", cout)
		return b.BatchNorm(y, g, bt, mn, vr, 1e-5)
	}

	x := b.Input("image", 1, int64(cfg.InputChannels), int64(cfg.InputSize), int64(cfg.InputSize))
	cur := convBN("stem", x, cfg.InputChannels, cfg.BaseChannels, 1)
	cur = b.Relu(cur)

	channels := cfg.BaseChannels
	for stage := 0; stage < 3; stage++ {
		outCh := cfg.BaseChannels << stage
		for blk := 0; blk < k; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			tag := fmt.Sprintf("s%db%d", stage, blk)
			shortcut := cur
			if stride != 1 || channels != outCh {
				// Projection shortcut: 1x1 conv.
				w := weight(tag+".proj.weight", outCh, channels, 1, 1)
				shortcut = b.Conv(cur, w, "", int64(stride), 0)
				g, bt, mn, vr := bnParams(tag+".proj.bn", outCh)
				shortcut = b.BatchNorm(shortcut, g, bt, mn, vr, 1e-5)
			}
			y := convBN(tag+".conv1", cur, channels, outCh, stride)
			y = b.Relu(y)
			y = convBN(tag+".conv2", y, outCh, outCh, 1)
			y = b.Add(y, shortcut)
			cur = b.Relu(y)
			channels = outCh
		}
	}

	cur = b.GlobalAveragePool(cur)
	cur = b.Flatten(cur)
	fcW := weight("fc.weight", cfg.Classes, channels)
	fcB := weight("fc.bias", cfg.Classes)
	out := b.Gemm(cur, fcW, fcB)
	b.Output(out, 1, int64(cfg.Classes))

	m := b.Model()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildLinear constructs the paper's Figure-4 running example: a single
// Gemm (gemv) layer "linear_infer" with a (classes x features) weight and
// a bias.
func BuildLinear(features, classes int, seed uint64) (*Model, error) {
	rng := rand.New(rand.NewPCG(seed, 0x11EA4))
	b := NewBuilder("linear_infer")
	x := b.Input("image", 1, int64(features))
	w := tensor.New(classes, features)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() / math.Sqrt(float64(features))
	}
	bias := tensor.New(classes)
	for i := range bias.Data {
		bias.Data[i] = 0.1 * rng.NormFloat64()
	}
	wName := b.Weight("fc.weight", w)
	bName := b.Weight("fc.bias", bias)
	out := b.Gemm(x, wName, bName)
	b.Output(out, 1, int64(classes))
	m := b.Model()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// SmallCNNConfig describes the compact CNN used for the trained accuracy
// experiment (Table 11 substrate) and the reduced-scale end-to-end FHE
// runs.
type SmallCNNConfig struct {
	InputSize     int // spatial size (e.g. 8)
	InputChannels int
	Channels      int // conv width
	Classes       int
	Seed          uint64
	Weights       map[string]*tensor.Tensor
}

// BuildSmallCNN constructs conv3x3-BN-ReLU → avgpool2 → conv3x3-BN-ReLU →
// global average pool → FC.
func BuildSmallCNN(cfg SmallCNNConfig) (*Model, error) {
	if cfg.InputSize == 0 {
		cfg.InputSize = 8
	}
	if cfg.InputChannels == 0 {
		cfg.InputChannels = 1
	}
	if cfg.Channels == 0 {
		cfg.Channels = 4
	}
	if cfg.Classes == 0 {
		cfg.Classes = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 2
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5CC))
	b := NewBuilder("small_cnn")
	weight := func(name string, shape ...int) string {
		if t, ok := cfg.Weights[name]; ok {
			return b.Weight(name, t)
		}
		t := tensor.New(shape...)
		fanIn := 1
		for _, d := range shape[1:] {
			fanIn *= d
		}
		std := math.Sqrt(2 / float64(fanIn))
		for i := range t.Data {
			t.Data[i] = rng.NormFloat64() * std
		}
		return b.Weight(name, t)
	}
	x := b.Input("image", 1, int64(cfg.InputChannels), int64(cfg.InputSize), int64(cfg.InputSize))
	w1 := weight("conv1.weight", cfg.Channels, cfg.InputChannels, 3, 3)
	bias1 := weight("conv1.bias", cfg.Channels)
	cur := b.Conv(x, w1, bias1, 1, 1)
	cur = b.Relu(cur)
	cur = b.AveragePool(cur, 2, 2)
	w2 := weight("conv2.weight", cfg.Channels*2, cfg.Channels, 3, 3)
	bias2 := weight("conv2.bias", cfg.Channels*2)
	cur = b.Conv(cur, w2, bias2, 1, 1)
	cur = b.Relu(cur)
	cur = b.GlobalAveragePool(cur)
	cur = b.Flatten(cur)
	fcW := weight("fc.weight", cfg.Classes, cfg.Channels*2)
	fcB := weight("fc.bias", cfg.Classes)
	out := b.Gemm(cur, fcW, fcB)
	b.Output(out, 1, int64(cfg.Classes))
	m := b.Model()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
