// Package sihe implements the SIHE IR (Scheme-Independent Homomorphic
// Encryption level): VECTOR IR computations are re-typed onto Cipher,
// Plain and Vector values by dataflow type inference, encode operations
// are inserted where cleartext constants meet ciphertexts, and nonlinear
// functions (ReLU) are recognised and replaced by composite polynomial
// approximations — all without committing to a particular FHE scheme.
package sihe

import (
	"fmt"

	"antace/internal/ir"
	"antace/internal/poly"
	"antace/internal/vecir"
)

// Op names.
const (
	OpAdd    = "sihe.add"
	OpSub    = "sihe.sub"
	OpMul    = "sihe.mul"
	OpNeg    = "sihe.neg"
	OpRotate = "sihe.rotate"
	OpEncode = "sihe.encode"
	// OpPoly evaluates one polynomial stage on a ciphertext. Attributes:
	// "coeffs" []float64 (monomial basis), "target" float64 hint.
	OpPoly = "sihe.poly"
	// OpMulConst multiplies a ciphertext by the scalar attribute "c".
	OpMulConst = "sihe.mul_const"
)

func init() {
	C := []ir.Kind{ir.KindCipher}
	CP := []ir.Kind{ir.KindCipher, ir.KindPlain}
	V := []ir.Kind{ir.KindVector}
	ir.RegisterOp(ir.OpSpec{Name: OpAdd, Args: [][]ir.Kind{C, CP}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpSub, Args: [][]ir.Kind{C, CP}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpMul, Args: [][]ir.Kind{C, CP}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpNeg, Args: [][]ir.Kind{C}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpRotate, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"k"}})
	ir.RegisterOp(ir.OpSpec{Name: OpEncode, Args: [][]ir.Kind{V}, Result: ir.KindPlain})
	ir.RegisterOp(ir.OpSpec{Name: OpPoly, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"coeffs"}})
	ir.RegisterOp(ir.OpSpec{Name: OpMulConst, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"c"}})
}

// Options configures the nonlinear approximation.
type Options struct {
	// ReLUAlpha is the target precision (bits) of the sign composite.
	ReLUAlpha int
	// ReLUEps is the relative half-width of the gap around zero where
	// the sign approximation is unconstrained.
	ReLUEps float64
	// SmoothDegree is the Chebyshev degree used for smooth
	// nonlinearities (sigmoid, tanh). Default 23.
	SmoothDegree int
}

func (o Options) withDefaults() Options {
	if o.ReLUAlpha == 0 {
		o.ReLUAlpha = 7
	}
	if o.ReLUEps == 0 {
		o.ReLUEps = 1.0 / 32
	}
	if o.SmoothDegree == 0 {
		o.SmoothDegree = 23
	}
	return o
}

// ReLUStages builds the composite polynomial program for
// relu(x) = x * h(y), y = x/bound, h = 0.5 + 0.5*sign(y): the stages are
// evaluated on the explicitly normalised y (the normalisation is a
// separate constant multiplication so power-basis values stay in
// [-1,1]); the last stage absorbs the affine 0.5(1+s) map. Stages are in
// monomial basis.
func ReLUStages(bound float64, opts Options) ([][]float64, error) {
	opts = opts.withDefaults()
	stages, err := poly.SignComposite(opts.ReLUEps, opts.ReLUAlpha)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(stages))
	for i, st := range stages {
		out[i] = append([]float64(nil), st.Coeffs...)
	}
	// Fold h = 0.5 + 0.5*s into the last stage.
	last := out[len(out)-1]
	for i := range last {
		last[i] *= 0.5
	}
	last[0] += 0.5
	return out, nil
}

// ReLUDepth returns the multiplicative depth the CKKS backend consumes
// for a ReLU lowered with the given stages: the input normalisation,
// the per-stage BSGS depths, and the final ciphertext-ciphertext
// product.
func ReLUDepth(stages [][]float64) int {
	d := 1 // normalisation x/bound
	for _, coeffs := range stages {
		d += StageDepth(coeffs)
	}
	return d + 1
}

// StageDepthInstr returns the level consumption of a sihe.poly/ckks.poly
// instruction, accounting for the Chebyshev affine domain map when the
// interval differs from [-1,1].
func StageDepthInstr(coeffs []float64, basis string, a, b float64) int {
	d := StageDepth(coeffs)
	if basis == "cheb" && (a != -1 || b != 1) {
		d++ // affine input normalisation inside the evaluator
	}
	return d
}

// StageDepth returns the level consumption of one polynomial stage under
// the runtime's BSGS evaluator: ceil(log2(deg+1)) plus one (the extra
// rescale that keeps baby-step coefficients precisely encodable).
func StageDepth(coeffs []float64) int {
	deg := 0
	for i, c := range coeffs {
		if c != 0 {
			deg = i
		}
	}
	if deg <= 1 {
		// A linear stage is a single constant multiplication + rescale.
		return 1
	}
	depth := 0
	for (1 << depth) < deg+1 {
		depth++
	}
	return depth + 1
}

// Lower re-types a VECTOR IR module into SIHE, inserting encode ops and
// expanding vec.relu into its polynomial program.
func Lower(vm *ir.Module, opts Options) (*ir.Module, error) {
	opts = opts.withDefaults()
	src := vm.Main()
	if src == nil {
		return nil, fmt.Errorf("sihe: empty module")
	}
	n := src.Params[0].Type.Len()
	ct := ir.CipherType(n)
	pt := ir.PlainType(n)
	vt := ir.VectorType(n)

	mod := ir.NewModule(vm.Name)
	for k, v := range vm.Attrs {
		mod.Attrs[k] = v
	}
	f := mod.NewFunc(src.Name)
	vals := map[*ir.Value]*ir.Value{src.Params[0]: f.NewParam(src.Params[0].Name, ct)}

	// encodeCache interns the Plain version of each Vector constant.
	encodeCache := map[*ir.Value]*ir.Value{}
	asPlain := func(v *ir.Value) *ir.Value {
		if p, ok := encodeCache[v]; ok {
			return p
		}
		cv := f.NewConst(v.Name, vt, v.Const)
		p := f.Emit(OpEncode, pt, []*ir.Value{cv}, nil)
		encodeCache[v] = p
		return p
	}
	// arg maps a VECTOR value to its SIHE counterpart; constants become
	// encoded plaintexts.
	arg := func(v *ir.Value) (*ir.Value, error) {
		if v.IsConst() {
			return asPlain(v), nil
		}
		s, ok := vals[v]
		if !ok {
			return nil, fmt.Errorf("sihe: value %s not lowered", v)
		}
		return s, nil
	}

	for _, in := range src.Body {
		switch in.Op {
		case vecir.OpAdd, vecir.OpMul:
			op := OpAdd
			if in.Op == vecir.OpMul {
				op = OpMul
			}
			a, err := arg(in.Args[0])
			if err != nil {
				return nil, err
			}
			b, err := arg(in.Args[1])
			if err != nil {
				return nil, err
			}
			// Homomorphic ops put the ciphertext first.
			if a.Type.Kind == ir.KindPlain && b.Type.Kind == ir.KindCipher {
				a, b = b, a
			}
			if a.Type.Kind != ir.KindCipher {
				return nil, fmt.Errorf("sihe: %s between two cleartext values should have been folded", in.Op)
			}
			vals[in.Result] = f.Emit(op, ct, []*ir.Value{a, b}, nil)
		case vecir.OpRoll:
			a, err := arg(in.Args[0])
			if err != nil {
				return nil, err
			}
			vals[in.Result] = f.Emit(OpRotate, ct, []*ir.Value{a}, map[string]any{"k": in.AttrInt("k", 0)})
		case vecir.OpRelu:
			a, err := arg(in.Args[0])
			if err != nil {
				return nil, err
			}
			bound := in.AttrFloat("bound", 40)
			stages, err := ReLUStages(bound, opts)
			if err != nil {
				return nil, err
			}
			// y = x / bound keeps the polynomial power basis within
			// [-1,1]; the final product restores the magnitude. The
			// relu_* attributes let the CKKS lowering place bootstraps at
			// the normalisation point and coordinate the exact scale of
			// the final product.
			h := f.Emit(OpMulConst, ct, []*ir.Value{a}, map[string]any{"c": 1 / bound, "relu_norm": true, "bound": bound})
			for i, coeffs := range stages {
				attrs := map[string]any{"coeffs": coeffs}
				if i == len(stages)-1 {
					attrs["relu_last"] = true
				}
				h = f.Emit(OpPoly, ct, []*ir.Value{h}, attrs)
			}
			vals[in.Result] = f.Emit(OpMul, ct, []*ir.Value{a, h}, map[string]any{"relu_final": true})
		case vecir.OpNonlinear:
			a, err := arg(in.Args[0])
			if err != nil {
				return nil, err
			}
			bound := in.AttrFloat("bound", 8)
			kind, _ := in.Attrs["kind"].(string)
			var p *poly.Polynomial
			switch kind {
			case "tanh":
				p = poly.Tanh(-bound, bound, opts.SmoothDegree)
			case "sigmoid":
				p = poly.Sigmoid(-bound, bound, opts.SmoothDegree)
			default:
				return nil, fmt.Errorf("sihe: unknown nonlinearity %q", kind)
			}
			vals[in.Result] = f.Emit(OpPoly, ct, []*ir.Value{a}, map[string]any{
				"coeffs": append([]float64(nil), p.Coeffs...),
				"basis":  "cheb", "a": p.A, "b": p.B,
			})
		default:
			return nil, fmt.Errorf("sihe: cannot lower %q", in.Op)
		}
	}
	ret, ok := vals[src.Ret]
	if !ok {
		return nil, fmt.Errorf("sihe: return value not lowered")
	}
	f.Ret = ret
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return mod, nil
}

// Run executes a SIHE function on cleartext data (ciphers and plains are
// both []float64), faithfully applying the polynomial approximations: it
// predicts what the encrypted execution computes, up to CKKS noise.
func Run(f *ir.Func, input []float64) ([]float64, error) {
	env := map[*ir.Value][]float64{f.Params[0]: input}
	get := func(v *ir.Value) ([]float64, error) {
		if v.IsConst() {
			c, ok := v.Const.([]float64)
			if !ok {
				return nil, fmt.Errorf("sihe: constant %s is not a vector", v)
			}
			return c, nil
		}
		x, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("sihe: %s not computed", v)
		}
		return x, nil
	}
	n := len(input)
	for _, in := range f.Body {
		args := make([][]float64, len(in.Args))
		for i, a := range in.Args {
			v, err := get(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out := make([]float64, n)
		switch in.Op {
		case OpAdd:
			for i := range out {
				out[i] = args[0][i] + args[1][i]
			}
		case OpSub:
			for i := range out {
				out[i] = args[0][i] - args[1][i]
			}
		case OpMul:
			for i := range out {
				out[i] = args[0][i] * args[1][i]
			}
		case OpNeg:
			for i := range out {
				out[i] = -args[0][i]
			}
		case OpRotate:
			k := in.AttrInt("k", 0)
			for i := range out {
				out[i] = args[0][(i+k)%n]
			}
		case OpEncode:
			copy(out, args[0])
		case OpMulConst:
			c := in.AttrFloat("c", 1)
			for i := range out {
				out[i] = args[0][i] * c
			}
		case OpPoly:
			coeffs := in.Attrs["coeffs"].([]float64)
			if basis, _ := in.Attrs["basis"].(string); basis == "cheb" {
				p := &poly.Polynomial{Coeffs: coeffs, Basis: poly.Chebyshev,
					A: in.AttrFloat("a", -1), B: in.AttrFloat("b", 1)}
				for i := range out {
					out[i] = p.Eval(args[0][i])
				}
				break
			}
			for i := range out {
				acc := 0.0
				for j := len(coeffs) - 1; j >= 0; j-- {
					acc = acc*args[0][i] + coeffs[j]
				}
				out[i] = acc
			}
		default:
			return nil, fmt.Errorf("sihe: unknown op %q", in.Op)
		}
		env[in.Result] = out
	}
	return get(f.Ret)
}
