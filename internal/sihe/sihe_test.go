package sihe

import (
	"math"
	"math/rand/v2"
	"testing"

	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/tensor"
	"antace/internal/vecir"
)

func lowerModel(t *testing.T, m *onnx.Model, opts Options) (*ir.Module, *vecir.Result, *ir.Module) {
	t.Helper()
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{DefaultReLUBound: 10})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Lower(vres.Module, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nn, vres, sm
}

func TestLowerLinearNoEncodeLoss(t *testing.T) {
	m, err := onnx.BuildLinear(32, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	nn, vres, sm := lowerModel(t, m, Options{})
	// Linear model: SIHE must match NN reference almost exactly (no
	// nonlinear approximations involved).
	rng := rand.New(rand.NewPCG(1, 1))
	x := tensor.New(1, 32)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	want, err := nnir.Run(nn.Main(), map[string]*tensor.Tensor{"image": x})
	if err != nil {
		t.Fatal(err)
	}
	packed, _ := vres.InLayout.Pack(x.Data)
	outVec, err := Run(sm.Main(), packed)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vres.OutLayout.Unpack(outVec)
	for i := range want.Data {
		if math.Abs(got[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("output %d: %g vs %g", i, got[i], want.Data[i])
		}
	}
	// Every constant touching a cipher must pass through sihe.encode.
	if sm.Main().InstrCount(OpEncode) == 0 {
		t.Fatal("no encode ops inserted")
	}
}

func TestLowerCNNReLUApproximation(t *testing.T) {
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 4})
	if err != nil {
		t.Fatal(err)
	}
	nn, vres, sm := lowerModel(t, m, Options{ReLUAlpha: 9, ReLUEps: 1.0 / 64})
	if sm.Main().InstrCount(OpPoly) == 0 {
		t.Fatal("ReLU was not expanded into polynomial stages")
	}
	rng := rand.New(rand.NewPCG(2, 2))
	x := tensor.New(1, 1, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	want, err := nnir.Run(nn.Main(), map[string]*tensor.Tensor{"image": x})
	if err != nil {
		t.Fatal(err)
	}
	packed, _ := vres.InLayout.Pack(x.Data)
	outVec, err := Run(sm.Main(), packed)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vres.OutLayout.Unpack(outVec)
	for i := range want.Data {
		if math.Abs(got[i]-want.Data[i]) > 0.05 {
			t.Fatalf("output %d: sihe %g vs nn %g (relu approximation too loose)", i, got[i], want.Data[i])
		}
	}
}

func TestReLUStagesApproximateReLU(t *testing.T) {
	bound := 10.0
	stages, err := ReLUStages(bound, Options{ReLUAlpha: 10, ReLUEps: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	evalStages := func(x float64) float64 {
		v := x / bound
		for _, coeffs := range stages {
			acc := 0.0
			for j := len(coeffs) - 1; j >= 0; j-- {
				acc = acc*v + coeffs[j]
			}
			v = acc
		}
		return x * v
	}
	for x := -bound; x <= bound; x += 0.37 {
		want := math.Max(0, x)
		got := evalStages(x)
		tol := 0.02 * bound
		if math.Abs(x) > bound/16 {
			tol = 0.01
		}
		if math.Abs(got-want) > tol {
			t.Fatalf("relu(%g): got %g want %g", x, got, want)
		}
	}
	if d := ReLUDepth(stages); d < 4 || d > 50 {
		t.Fatalf("relu depth %d implausible", d)
	}
}

func TestStageDepth(t *testing.T) {
	cases := map[int]int{1: 1, 3: 3, 7: 4, 15: 5}
	for deg, want := range cases {
		coeffs := make([]float64, deg+1)
		coeffs[deg] = 1
		if got := StageDepth(coeffs); got != want {
			t.Errorf("StageDepth(deg %d) = %d, want %d", deg, got, want)
		}
	}
}
