package ring

import (
	"errors"
	"math/big"
	"sync"

	"antace/internal/nt"
	"antace/internal/par"
)

// DivRoundByLastModulus divides p (coefficient domain, level l) by its last
// modulus q_l with rounding, writing the level l-1 result into pOut.
// This is the CKKS rescale primitive. Rescaling at level 0 is a state
// error a caller can reach with exhausted ciphertexts, so it is reported
// rather than panicked.
func (r *Ring) DivRoundByLastModulus(p, pOut *Poly) error {
	l := p.Level()
	if l == 0 {
		return errRescaleLevel0
	}
	n := r.N
	ql := r.Moduli[l]
	half := ql >> 1
	last := p.Coeffs[l]
	par.For(l, r.grainPW, func(start, end int) {
		for i := start; i < end; i++ {
			qi := r.Moduli[i]
			mi := r.Mods[i]
			inv := r.rescaleQlInv[l][i]
			invShoup := r.rescaleQlInvShoup[l][i]
			a, b := p.Coeffs[i], pOut.Coeffs[i]
			for j := 0; j < n; j++ {
				// Centered remainder of the last row, reduced mod q_i.
				xl := last[j]
				var delta uint64
				if xl > half {
					delta = qi - nt.BRedAdd(ql-xl, mi)
					if delta == qi {
						delta = 0
					}
				} else {
					delta = nt.BRedAdd(xl, mi)
				}
				b[j] = nt.MulModShoup(nt.Sub(a[j], delta, qi), inv, invShoup, qi)
			}
		}
	})
	pOut.Coeffs = pOut.Coeffs[:l]
	return nil
}

// DivRoundByLastModulusNTT is DivRoundByLastModulus for polynomials in NTT
// domain: it INTTs only the last row, forms the per-modulus correction and
// NTTs it back, avoiding a full domain round trip.
func (r *Ring) DivRoundByLastModulusNTT(p, pOut *Poly) error {
	l := p.Level()
	if l == 0 {
		return errRescaleLevel0
	}
	n := r.N
	ql := r.Moduli[l]
	half := ql >> 1
	last := r.getBuf()
	defer r.putBuf(last)
	copy(last, p.Coeffs[l])
	r.inttRow(last, l)
	par.For(l, r.grainNTT, func(start, end int) {
		delta := r.getBuf()
		defer r.putBuf(delta)
		for i := start; i < end; i++ {
			qi := r.Moduli[i]
			mi := r.Mods[i]
			inv := r.rescaleQlInv[l][i]
			invShoup := r.rescaleQlInvShoup[l][i]
			for j := 0; j < n; j++ {
				xl := last[j]
				if xl > half {
					d := qi - nt.BRedAdd(ql-xl, mi)
					if d == qi {
						d = 0
					}
					delta[j] = d
				} else {
					delta[j] = nt.BRedAdd(xl, mi)
				}
			}
			r.nttRow(delta, i)
			a, b := p.Coeffs[i], pOut.Coeffs[i]
			for j := 0; j < n; j++ {
				b[j] = nt.MulModShoup(nt.Sub(a[j], delta[j], qi), inv, invShoup, qi)
			}
		}
	})
	pOut.Coeffs = pOut.Coeffs[:l]
	return nil
}

// errRescaleLevel0 is returned by both rescale primitives when the input
// has no modulus left to drop.
var errRescaleLevel0 = errors.New("ring: cannot rescale at level 0")

// ModulusAtLevel returns Q_l = prod_{i<=l} q_i as a big integer.
func (r *Ring) ModulusAtLevel(l int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= l; i++ {
		q.Mul(q, new(big.Int).SetUint64(r.Moduli[i]))
	}
	return q
}

// BasisExtender converts polynomials between the RNS bases of two rings
// (typically Q and P) using the approximate (HPS) fast base conversion, and
// implements the ModDown operation of hybrid key switching.
type BasisExtender struct {
	rQ, rP *Ring

	// For each level l of Q: (Q_l/q_i)^-1 mod q_i and Q_l/q_i mod p_j.
	qoverqiInv      [][]uint64   // [l][i]
	qoverqiInvShoup [][]uint64   // [l][i]
	qoverqiModP     [][][]uint64 // [l][i][j]

	// P -> Q conversion: (P/p_j)^-1 mod p_j and P/p_j mod q_i, P mod q_i.
	poverpjInv      []uint64
	poverpjInvShoup []uint64
	poverpjModQ     [][]uint64 // [j][i]
	pInvModQ        []uint64   // P^-1 mod q_i
	pInvModQShoup   []uint64
	pModQ           []uint64 // P mod q_i

	// Gadget constants per digit span [start, end), built lazily on first
	// use: the spans are fixed by the key-switching digit layout, so each
	// table is computed once and ModUpDigitQP's hot path stays free of
	// big-integer arithmetic.
	mu        sync.Mutex
	digitTabs map[int]*digitTable
}

// digitTable caches, for one digit span with product D = prod d_t:
// the CRT weights (D/d_t)^-1 mod d_t and, for every output modulus m in
// Q ∪ P, the residues (D/d_t) mod m.
type digitTable struct {
	inv      []uint64   // [t]
	invShoup []uint64   // [t]
	overQ    [][]uint64 // [i][t] = (D/d_t) mod q_i
	overP    [][]uint64 // [j][t] = (D/d_t) mod p_j
}

func (be *BasisExtender) digitTableFor(start, end int) *digitTable {
	key := start<<16 | end
	be.mu.Lock()
	defer be.mu.Unlock()
	if dt, ok := be.digitTabs[key]; ok {
		return dt
	}
	L := len(be.rQ.Moduli)
	K := len(be.rP.Moduli)
	digitMods := be.rQ.Moduli[start:end]
	d := end - start
	D := big.NewInt(1)
	for _, q := range digitMods {
		D.Mul(D, new(big.Int).SetUint64(q))
	}
	dt := &digitTable{
		inv:      make([]uint64, d),
		invShoup: make([]uint64, d),
		overQ:    make([][]uint64, L),
		overP:    make([][]uint64, K),
	}
	for i := 0; i < L; i++ {
		dt.overQ[i] = make([]uint64, d)
	}
	for j := 0; j < K; j++ {
		dt.overP[j] = make([]uint64, d)
	}
	tmp := new(big.Int)
	for t, q := range digitMods {
		qi := new(big.Int).SetUint64(q)
		dit := new(big.Int).Quo(D, qi)
		inv := new(big.Int).ModInverse(tmp.Mod(dit, qi), qi).Uint64()
		dt.inv[t] = inv
		dt.invShoup[t] = nt.ShoupPrec(inv, q)
		for i := 0; i < L; i++ {
			dt.overQ[i][t] = tmp.Mod(dit, new(big.Int).SetUint64(be.rQ.Moduli[i])).Uint64()
		}
		for j := 0; j < K; j++ {
			dt.overP[j][t] = tmp.Mod(dit, new(big.Int).SetUint64(be.rP.Moduli[j])).Uint64()
		}
	}
	be.digitTabs[key] = dt
	return dt
}

// NewBasisExtender precomputes conversion tables between rQ and rP.
func NewBasisExtender(rQ, rP *Ring) *BasisExtender {
	be := &BasisExtender{rQ: rQ, rP: rP, digitTabs: make(map[int]*digitTable)}
	L := len(rQ.Moduli)
	K := len(rP.Moduli)

	be.qoverqiInv = make([][]uint64, L)
	be.qoverqiInvShoup = make([][]uint64, L)
	be.qoverqiModP = make([][][]uint64, L)
	for l := 0; l < L; l++ {
		Ql := rQ.ModulusAtLevel(l)
		be.qoverqiInv[l] = make([]uint64, l+1)
		be.qoverqiInvShoup[l] = make([]uint64, l+1)
		be.qoverqiModP[l] = make([][]uint64, l+1)
		for i := 0; i <= l; i++ {
			qi := new(big.Int).SetUint64(rQ.Moduli[i])
			qli := new(big.Int).Quo(Ql, qi)
			inv := new(big.Int).ModInverse(new(big.Int).Mod(qli, qi), qi)
			be.qoverqiInv[l][i] = inv.Uint64()
			be.qoverqiInvShoup[l][i] = nt.ShoupPrec(inv.Uint64(), rQ.Moduli[i])
			be.qoverqiModP[l][i] = make([]uint64, K)
			for j := 0; j < K; j++ {
				pj := new(big.Int).SetUint64(rP.Moduli[j])
				be.qoverqiModP[l][i][j] = new(big.Int).Mod(qli, pj).Uint64()
			}
		}
	}

	P := rP.ModulusAtLevel(K - 1)
	be.poverpjInv = make([]uint64, K)
	be.poverpjInvShoup = make([]uint64, K)
	be.poverpjModQ = make([][]uint64, K)
	for j := 0; j < K; j++ {
		pj := new(big.Int).SetUint64(rP.Moduli[j])
		ppj := new(big.Int).Quo(P, pj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(ppj, pj), pj)
		be.poverpjInv[j] = inv.Uint64()
		be.poverpjInvShoup[j] = nt.ShoupPrec(inv.Uint64(), rP.Moduli[j])
		be.poverpjModQ[j] = make([]uint64, L)
		for i := 0; i < L; i++ {
			qi := new(big.Int).SetUint64(rQ.Moduli[i])
			be.poverpjModQ[j][i] = new(big.Int).Mod(ppj, qi).Uint64()
		}
	}
	be.pInvModQ = make([]uint64, L)
	be.pInvModQShoup = make([]uint64, L)
	be.pModQ = make([]uint64, L)
	for i := 0; i < L; i++ {
		qi := new(big.Int).SetUint64(rQ.Moduli[i])
		pModQi := new(big.Int).Mod(P, qi)
		be.pModQ[i] = pModQi.Uint64()
		inv := new(big.Int).ModInverse(pModQi, qi)
		be.pInvModQ[i] = inv.Uint64()
		be.pInvModQShoup[i] = nt.ShoupPrec(inv.Uint64(), rQ.Moduli[i])
	}
	return be
}

// ModUpDigitQP lifts the digit x = pQ mod D (where D is the product of the
// Q-basis primes with indices [start, end)) into the full basis
// Q_level ∪ P: outQ receives rows 0..level (digit rows copied verbatim,
// the others base-converted) and outP receives all K rows of the P basis.
// Input and outputs are in coefficient domain. The conversion is the
// approximate CRT lift: the result equals x + u*D for a small integer
// |u| <= end-start, which hybrid key switching tolerates.
func (be *BasisExtender) ModUpDigitQP(pQ *Poly, start, end, level int, outQ, outP *Poly) {
	n := be.rQ.N
	K := len(be.rP.Moduli)
	d := end - start
	digitMods := be.rQ.Moduli[start:end]
	dt := be.digitTableFor(start, end)
	// y_i = x_i * (D/d_i)^-1 mod d_i, then x mod m ~= sum_i y_i*(D/d_i) mod m.
	ys := make([][]uint64, d)
	defer func() {
		for _, y := range ys {
			be.rQ.putBuf(y)
		}
	}()
	for i := range ys {
		ys[i] = be.rQ.getBuf()
	}
	par.For(d, be.rQ.grainPW, func(dStart, dEnd int) {
		for i := dStart; i < dEnd; i++ {
			q := digitMods[i]
			src := pQ.Coeffs[start+i]
			y := ys[i]
			for k := 0; k < n; k++ {
				y[k] = nt.MulModShoup(src[k], dt.inv[i], dt.invShoup[i], q)
			}
		}
	})
	convertTo := func(m nt.Modulus, over, dst []uint64) {
		for k := 0; k < n; k++ {
			acc := uint64(0)
			for i := 0; i < d; i++ {
				acc = nt.Add(acc, nt.MulMod(ys[i][k], over[i], m), m.Q)
			}
			dst[k] = acc
		}
	}
	// The output rows — level+1 in the Q basis plus K in the P basis — are
	// independent; distribute them over one flat index space. The grain
	// accounts for the O(d·N) inner product per row.
	par.For(level+1+K, par.Grain(d*n), func(rStart, rEnd int) {
		for i := rStart; i < rEnd; i++ {
			switch {
			case i > level:
				j := i - level - 1
				convertTo(be.rP.Mods[j], dt.overP[j], outP.Coeffs[j])
			case i >= start && i < end:
				copy(outQ.Coeffs[i], pQ.Coeffs[i])
			default:
				convertTo(be.rQ.Mods[i], dt.overQ[i], outQ.Coeffs[i])
			}
		}
	})
}

// ModDownQP computes round((xQ, xP) / P) mod Q_l: the P-part is base-
// converted to Q and subtracted, then the result is multiplied by P^-1.
// All polynomials are in coefficient domain. pQ is both input (level l)
// and output.
func (be *BasisExtender) ModDownQP(pQ, pP *Poly) {
	l := pQ.Level()
	n := be.rQ.N
	K := len(be.rP.Moduli)
	// y_j = x_j * (P/p_j)^-1 mod p_j.
	ys := make([][]uint64, K)
	defer func() {
		for _, y := range ys {
			be.rQ.putBuf(y)
		}
	}()
	for j := 0; j < K; j++ {
		ys[j] = be.rQ.getBuf()
	}
	par.For(K, be.rQ.grainPW, func(start, end int) {
		for j := start; j < end; j++ {
			mp := be.rP.Mods[j]
			src := pP.Coeffs[j]
			y := ys[j]
			for k := 0; k < n; k++ {
				y[k] = nt.MulModShoup(src[k], be.poverpjInv[j], be.poverpjInvShoup[j], mp.Q)
			}
		}
	})
	par.For(l+1, par.Grain(K*n), func(start, end int) {
		for i := start; i < end; i++ {
			mq := be.rQ.Mods[i]
			qi := mq.Q
			dst := pQ.Coeffs[i]
			for k := 0; k < n; k++ {
				conv := uint64(0)
				for j := 0; j < K; j++ {
					conv = nt.Add(conv, nt.MulMod(ys[j][k], be.poverpjModQ[j][i], mq), qi)
				}
				dst[k] = nt.MulModShoup(nt.Sub(dst[k], conv, qi), be.pInvModQ[i], be.pInvModQShoupAt(i), qi)
			}
		}
	})
}

func (be *BasisExtender) pInvModQShoupAt(i int) uint64 { return be.pInvModQShoup[i] }

// PModQ returns P mod q_i, used to pre-multiply before key switching.
func (be *BasisExtender) PModQ(i int) uint64 { return be.pModQ[i] }
