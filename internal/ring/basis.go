package ring

import (
	"math/big"

	"antace/internal/nt"
)

// DivRoundByLastModulus divides p (coefficient domain, level l) by its last
// modulus q_l with rounding, writing the level l-1 result into pOut.
// This is the CKKS rescale primitive.
func (r *Ring) DivRoundByLastModulus(p, pOut *Poly) {
	l := p.Level()
	if l == 0 {
		panic("ring: cannot rescale at level 0")
	}
	n := r.N
	ql := r.Moduli[l]
	half := ql >> 1
	last := p.Coeffs[l]
	for i := 0; i < l; i++ {
		qi := r.Moduli[i]
		mi := r.Mods[i]
		inv := r.rescaleQlInv[l][i]
		invShoup := r.rescaleQlInvShoup[l][i]
		a, b := p.Coeffs[i], pOut.Coeffs[i]
		for j := 0; j < n; j++ {
			// Centered remainder of the last row, reduced mod q_i.
			xl := last[j]
			var delta uint64
			if xl > half {
				delta = qi - nt.BRedAdd(ql-xl, mi)
				if delta == qi {
					delta = 0
				}
			} else {
				delta = nt.BRedAdd(xl, mi)
			}
			b[j] = nt.MulModShoup(nt.Sub(a[j], delta, qi), inv, invShoup, qi)
		}
	}
	pOut.Coeffs = pOut.Coeffs[:l]
}

// DivRoundByLastModulusNTT is DivRoundByLastModulus for polynomials in NTT
// domain: it INTTs only the last row, forms the per-modulus correction and
// NTTs it back, avoiding a full domain round trip.
func (r *Ring) DivRoundByLastModulusNTT(p, pOut *Poly) {
	l := p.Level()
	if l == 0 {
		panic("ring: cannot rescale at level 0")
	}
	n := r.N
	ql := r.Moduli[l]
	half := ql >> 1
	last := append([]uint64(nil), p.Coeffs[l]...)
	r.inttRow(last, l)
	delta := make([]uint64, n)
	for i := 0; i < l; i++ {
		qi := r.Moduli[i]
		mi := r.Mods[i]
		inv := r.rescaleQlInv[l][i]
		invShoup := r.rescaleQlInvShoup[l][i]
		for j := 0; j < n; j++ {
			xl := last[j]
			if xl > half {
				d := qi - nt.BRedAdd(ql-xl, mi)
				if d == qi {
					d = 0
				}
				delta[j] = d
			} else {
				delta[j] = nt.BRedAdd(xl, mi)
			}
		}
		r.nttRow(delta, i)
		a, b := p.Coeffs[i], pOut.Coeffs[i]
		for j := 0; j < n; j++ {
			b[j] = nt.MulModShoup(nt.Sub(a[j], delta[j], qi), inv, invShoup, qi)
		}
	}
	pOut.Coeffs = pOut.Coeffs[:l]
}

// ModulusAtLevel returns Q_l = prod_{i<=l} q_i as a big integer.
func (r *Ring) ModulusAtLevel(l int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= l; i++ {
		q.Mul(q, new(big.Int).SetUint64(r.Moduli[i]))
	}
	return q
}

// BasisExtender converts polynomials between the RNS bases of two rings
// (typically Q and P) using the approximate (HPS) fast base conversion, and
// implements the ModDown operation of hybrid key switching.
type BasisExtender struct {
	rQ, rP *Ring

	// For each level l of Q: (Q_l/q_i)^-1 mod q_i and Q_l/q_i mod p_j.
	qoverqiInv      [][]uint64   // [l][i]
	qoverqiInvShoup [][]uint64   // [l][i]
	qoverqiModP     [][][]uint64 // [l][i][j]

	// P -> Q conversion: (P/p_j)^-1 mod p_j and P/p_j mod q_i, P mod q_i.
	poverpjInv      []uint64
	poverpjInvShoup []uint64
	poverpjModQ     [][]uint64 // [j][i]
	pInvModQ        []uint64   // P^-1 mod q_i
	pInvModQShoup   []uint64
	pModQ           []uint64 // P mod q_i
}

// NewBasisExtender precomputes conversion tables between rQ and rP.
func NewBasisExtender(rQ, rP *Ring) *BasisExtender {
	be := &BasisExtender{rQ: rQ, rP: rP}
	L := len(rQ.Moduli)
	K := len(rP.Moduli)

	be.qoverqiInv = make([][]uint64, L)
	be.qoverqiInvShoup = make([][]uint64, L)
	be.qoverqiModP = make([][][]uint64, L)
	for l := 0; l < L; l++ {
		Ql := rQ.ModulusAtLevel(l)
		be.qoverqiInv[l] = make([]uint64, l+1)
		be.qoverqiInvShoup[l] = make([]uint64, l+1)
		be.qoverqiModP[l] = make([][]uint64, l+1)
		for i := 0; i <= l; i++ {
			qi := new(big.Int).SetUint64(rQ.Moduli[i])
			qli := new(big.Int).Quo(Ql, qi)
			inv := new(big.Int).ModInverse(new(big.Int).Mod(qli, qi), qi)
			be.qoverqiInv[l][i] = inv.Uint64()
			be.qoverqiInvShoup[l][i] = nt.ShoupPrec(inv.Uint64(), rQ.Moduli[i])
			be.qoverqiModP[l][i] = make([]uint64, K)
			for j := 0; j < K; j++ {
				pj := new(big.Int).SetUint64(rP.Moduli[j])
				be.qoverqiModP[l][i][j] = new(big.Int).Mod(qli, pj).Uint64()
			}
		}
	}

	P := rP.ModulusAtLevel(K - 1)
	be.poverpjInv = make([]uint64, K)
	be.poverpjInvShoup = make([]uint64, K)
	be.poverpjModQ = make([][]uint64, K)
	for j := 0; j < K; j++ {
		pj := new(big.Int).SetUint64(rP.Moduli[j])
		ppj := new(big.Int).Quo(P, pj)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(ppj, pj), pj)
		be.poverpjInv[j] = inv.Uint64()
		be.poverpjInvShoup[j] = nt.ShoupPrec(inv.Uint64(), rP.Moduli[j])
		be.poverpjModQ[j] = make([]uint64, L)
		for i := 0; i < L; i++ {
			qi := new(big.Int).SetUint64(rQ.Moduli[i])
			be.poverpjModQ[j][i] = new(big.Int).Mod(ppj, qi).Uint64()
		}
	}
	be.pInvModQ = make([]uint64, L)
	be.pInvModQShoup = make([]uint64, L)
	be.pModQ = make([]uint64, L)
	for i := 0; i < L; i++ {
		qi := new(big.Int).SetUint64(rQ.Moduli[i])
		pModQi := new(big.Int).Mod(P, qi)
		be.pModQ[i] = pModQi.Uint64()
		inv := new(big.Int).ModInverse(pModQi, qi)
		be.pInvModQ[i] = inv.Uint64()
		be.pInvModQShoup[i] = nt.ShoupPrec(inv.Uint64(), rQ.Moduli[i])
	}
	return be
}

// ModUpDigitQP lifts the digit x = pQ mod D (where D is the product of the
// Q-basis primes with indices [start, end)) into the full basis
// Q_level ∪ P: outQ receives rows 0..level (digit rows copied verbatim,
// the others base-converted) and outP receives all K rows of the P basis.
// Input and outputs are in coefficient domain. The conversion is the
// approximate CRT lift: the result equals x + u*D for a small integer
// |u| <= end-start, which hybrid key switching tolerates.
func (be *BasisExtender) ModUpDigitQP(pQ *Poly, start, end, level int, outQ, outP *Poly) {
	n := be.rQ.N
	K := len(be.rP.Moduli)
	d := end - start
	digitMods := be.rQ.Moduli[start:end]
	D := big.NewInt(1)
	for _, q := range digitMods {
		D.Mul(D, new(big.Int).SetUint64(q))
	}
	// y_i = x_i * (D/d_i)^-1 mod d_i, then x mod m ~= sum_i y_i*(D/d_i) mod m.
	ys := make([][]uint64, d)
	di := make([]*big.Int, d)
	for i, q := range digitMods {
		qi := new(big.Int).SetUint64(q)
		di[i] = new(big.Int).Quo(D, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(di[i], qi), qi).Uint64()
		invShoup := nt.ShoupPrec(inv, q)
		ys[i] = make([]uint64, n)
		src := pQ.Coeffs[start+i]
		for k := 0; k < n; k++ {
			ys[i][k] = nt.MulModShoup(src[k], inv, invShoup, q)
		}
	}
	convertTo := func(m nt.Modulus, dst []uint64) {
		over := make([]uint64, d)
		mb := new(big.Int).SetUint64(m.Q)
		for i := 0; i < d; i++ {
			over[i] = new(big.Int).Mod(di[i], mb).Uint64()
		}
		for k := 0; k < n; k++ {
			acc := uint64(0)
			for i := 0; i < d; i++ {
				acc = nt.Add(acc, nt.MulMod(ys[i][k], over[i], m), m.Q)
			}
			dst[k] = acc
		}
	}
	for i := 0; i <= level; i++ {
		if i >= start && i < end {
			copy(outQ.Coeffs[i], pQ.Coeffs[i])
			continue
		}
		convertTo(be.rQ.Mods[i], outQ.Coeffs[i])
	}
	for j := 0; j < K; j++ {
		convertTo(be.rP.Mods[j], outP.Coeffs[j])
	}
}

// ModDownQP computes round((xQ, xP) / P) mod Q_l: the P-part is base-
// converted to Q and subtracted, then the result is multiplied by P^-1.
// All polynomials are in coefficient domain. pQ is both input (level l)
// and output.
func (be *BasisExtender) ModDownQP(pQ, pP *Poly) {
	l := pQ.Level()
	n := be.rQ.N
	K := len(be.rP.Moduli)
	// y_j = x_j * (P/p_j)^-1 mod p_j.
	ys := make([][]uint64, K)
	for j := 0; j < K; j++ {
		ys[j] = make([]uint64, n)
		mp := be.rP.Mods[j]
		src := pP.Coeffs[j]
		for k := 0; k < n; k++ {
			ys[j][k] = nt.MulModShoup(src[k], be.poverpjInv[j], be.poverpjInvShoup[j], mp.Q)
		}
	}
	for i := 0; i <= l; i++ {
		mq := be.rQ.Mods[i]
		qi := mq.Q
		dst := pQ.Coeffs[i]
		for k := 0; k < n; k++ {
			conv := uint64(0)
			for j := 0; j < K; j++ {
				conv = nt.Add(conv, nt.MulMod(ys[j][k], be.poverpjModQ[j][i], mq), qi)
			}
			dst[k] = nt.MulModShoup(nt.Sub(dst[k], conv, qi), be.pInvModQ[i], be.pInvModQShoupAt(i), qi)
		}
	}
}

func (be *BasisExtender) pInvModQShoupAt(i int) uint64 { return be.pInvModQShoup[i] }

// PModQ returns P mod q_i, used to pre-multiply before key switching.
func (be *BasisExtender) PModQ(i int) uint64 { return be.pModQ[i] }
