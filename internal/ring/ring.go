// Package ring implements arithmetic over the cyclotomic rings
// Z_Q[X]/(X^N+1) in RNS (residue number system) representation, the
// computational substrate of the RNS-CKKS scheme: negacyclic NTT, pointwise
// operations, Galois automorphisms, RNS basis conversion, rescaling and
// modulus switching, plus the samplers needed for key generation and
// encryption.
package ring

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"antace/internal/nt"
	"antace/internal/par"
)

// Poly is a polynomial in RNS representation: Coeffs[i][j] is the j-th
// coefficient modulo the ring's i-th prime. A Poly with L+1 rows is said to
// be at level L. Whether the rows are in coefficient or NTT domain is
// tracked by the owner (ciphertexts in this library live in NTT domain).
type Poly struct {
	Coeffs [][]uint64

	// pooled, when non-nil, holds the full-chain backing rows of a
	// pool-owned polynomial (see Ring.GetPoly); Coeffs is a level view
	// into it.
	pooled [][]uint64
}

// Level returns the level of the polynomial (number of rows minus one).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// N returns the ring degree of the polynomial.
func (p *Poly) N() int {
	if len(p.Coeffs) == 0 {
		return 0
	}
	return len(p.Coeffs[0])
}

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs))}
	if len(p.Coeffs) == 0 {
		return q
	}
	n := len(p.Coeffs[0])
	backing := make([]uint64, len(p.Coeffs)*n)
	for i := range p.Coeffs {
		row := backing[i*n : (i+1)*n : (i+1)*n]
		copy(row, p.Coeffs[i])
		q.Coeffs[i] = row
	}
	return q
}

// Copy copies p into q, which must have at least as many rows.
func (p *Poly) Copy(q *Poly) {
	for i := range p.Coeffs {
		copy(q.Coeffs[i], p.Coeffs[i])
	}
}

// Zero clears all coefficients of p.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// Resize truncates or extends (with zero rows) p to the given level.
func (p *Poly) Resize(level int, n int) {
	for len(p.Coeffs) <= level {
		p.Coeffs = append(p.Coeffs, make([]uint64, n))
	}
	p.Coeffs = p.Coeffs[:level+1]
}

// Equal reports whether p and q have identical coefficients.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if len(p.Coeffs[i]) != len(q.Coeffs[i]) {
			return false
		}
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// nttTables holds per-modulus NTT twiddle factors in bit-reversed order,
// with Shoup precomputations for the fast butterfly.
type nttTables struct {
	psiRev         []uint64 // psi^brv(i), psi a primitive 2N-th root
	psiRevShoup    []uint64
	psiInvRev      []uint64 // psi^-brv(i)
	psiInvRevShoup []uint64
	nInv           uint64 // N^-1 mod q
	nInvShoup      uint64
}

// Ring is Z_Q[X]/(X^N+1) for Q the product of a chain of NTT-friendly
// primes. It precomputes NTT tables and the RNS rescaling constants.
//
// All Ring methods are safe for concurrent use: precomputed tables are
// read-only after construction, results go only to caller-provided
// outputs, and internal scratch comes from per-ring pools. Limb loops are
// distributed over the internal/par worker pool; because every limb is an
// independent exact modular computation, parallel results are
// bit-identical to serial ones.
type Ring struct {
	N      int
	LogN   int
	Moduli []uint64
	Mods   []nt.Modulus

	tables []nttTables

	// rescaleQlInv[l][i] = q_l^-1 mod q_i (Shoup pair), used by
	// DivRoundByLastModulus at level l for row i < l.
	rescaleQlInv      [][]uint64
	rescaleQlInvShoup [][]uint64

	// grainPW (pointwise, O(N) per limb) and grainNTT (O(N logN) per
	// limb) are the minimum limbs per worker chunk; tiny test rings fall
	// below the threshold and run serially.
	grainPW  int
	grainNTT int

	// The scratch pools live behind atomic pointers so DiscardPools can
	// swap them wholesale after a recovered panic: buffers already
	// returned to the old pool are orphaned instead of recycled
	// (see pool.go).
	bufPool  atomic.Pointer[sync.Pool] // *[]uint64 scratch rows, length N
	polyPool atomic.Pointer[sync.Pool] // *Poly at the full chain (see pool.go)
}

// NewRing constructs the ring of degree n (a power of two) with the given
// prime modulus chain. Every modulus must be ≡ 1 mod 2n.
func NewRing(n int, moduli []uint64) (*Ring, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("ring: degree %d is not a power of two >= 2", n)
	}
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: empty modulus chain")
	}
	r := &Ring{
		N:        n,
		LogN:     bits.Len(uint(n)) - 1,
		Moduli:   append([]uint64(nil), moduli...),
		grainPW:  par.Grain(n),
		grainNTT: par.Grain(n * (bits.Len(uint(n)) - 1)),
	}
	r.bufPool.Store(new(sync.Pool))
	r.polyPool.Store(new(sync.Pool))
	r.Mods = make([]nt.Modulus, len(moduli))
	r.tables = make([]nttTables, len(moduli))
	for i, q := range moduli {
		if q >= 1<<62 {
			// The lazy NTT keeps coefficients in [0, 4q) and the fused
			// kernels keep 2q-lazy operands; both need 4q < 2^64.
			return nil, fmt.Errorf("ring: modulus %d is not below 2^62", q)
		}
		if q%(2*uint64(n)) != 1 {
			return nil, fmt.Errorf("ring: modulus %d is not ≡ 1 mod 2N", q)
		}
		if !nt.IsPrime(q) {
			return nil, fmt.Errorf("ring: modulus %d is not prime", q)
		}
		r.Mods[i] = nt.NewModulus(q)
		psi, err := nt.RootOfUnity(2*uint64(n), q)
		if err != nil {
			return nil, err
		}
		r.tables[i] = newNTTTables(n, psi, r.Mods[i])
	}
	// Rescaling constants.
	L := len(moduli)
	r.rescaleQlInv = make([][]uint64, L)
	r.rescaleQlInvShoup = make([][]uint64, L)
	for l := 1; l < L; l++ {
		r.rescaleQlInv[l] = make([]uint64, l)
		r.rescaleQlInvShoup[l] = make([]uint64, l)
		for i := 0; i < l; i++ {
			inv := nt.ModInverse(moduli[l]%moduli[i], r.Mods[i])
			r.rescaleQlInv[l][i] = inv
			r.rescaleQlInvShoup[l][i] = nt.ShoupPrec(inv, moduli[i])
		}
	}
	return r, nil
}

// NewPoly allocates a zero polynomial at the given level. All rows share
// one contiguous backing array: three heap objects total instead of one
// per limb, and sequential-limb passes walk memory linearly.
func (r *Ring) NewPoly(level int) *Poly {
	if level < 0 || level >= len(r.Moduli) {
		panic(fmt.Sprintf("ring: level %d out of range [0,%d]", level, len(r.Moduli)-1))
	}
	backing := make([]uint64, (level+1)*r.N)
	p := &Poly{Coeffs: make([][]uint64, level+1)}
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*r.N : (i+1)*r.N : (i+1)*r.N]
	}
	return p
}

// MaxLevel returns the top level of the modulus chain.
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// minLevel returns the smallest level among the given polynomials.
func minLevel(ps ...*Poly) int {
	l := ps[0].Level()
	for _, p := range ps[1:] {
		if pl := p.Level(); pl < l {
			l = pl
		}
	}
	return l
}

// Add sets p3 = p1 + p2 over the common rows of all three.
func (r *Ring) Add(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	if par.Inline(l+1, r.grainPW) {
		r.addRows(p1, p2, p3, 0, l+1)
		return
	}
	par.For(l+1, r.grainPW, func(start, end int) { r.addRows(p1, p2, p3, start, end) })
}

func (r *Ring) addRows(p1, p2, p3 *Poly, start, end int) {
	for i := start; i < end; i++ {
		q := r.Moduli[i]
		c := p3.Coeffs[i][:r.N]
		a := p1.Coeffs[i][:len(c)]
		b := p2.Coeffs[i][:len(c)]
		for j := range c {
			c[j] = nt.Add(a[j], b[j], q)
		}
	}
}

// Sub sets p3 = p1 - p2 over the common rows of all three.
func (r *Ring) Sub(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	par.For(l+1, r.grainPW, func(start, end int) {
		for i := start; i < end; i++ {
			q := r.Moduli[i]
			a, b, c := p1.Coeffs[i], p2.Coeffs[i], p3.Coeffs[i]
			for j := 0; j < r.N; j++ {
				c[j] = nt.Sub(a[j], b[j], q)
			}
		}
	})
}

// Neg sets p2 = -p1 over the common rows.
func (r *Ring) Neg(p1, p2 *Poly) {
	l := minLevel(p1, p2)
	par.For(l+1, r.grainPW, func(start, end int) {
		for i := start; i < end; i++ {
			q := r.Moduli[i]
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			for j := 0; j < r.N; j++ {
				b[j] = nt.Neg(a[j], q)
			}
		}
	})
}

// MulCoeffs sets p3 = p1 ⊙ p2 (pointwise), valid in NTT domain.
func (r *Ring) MulCoeffs(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	if par.Inline(l+1, r.grainPW) {
		r.mulCoeffsRows(p1, p2, p3, 0, l+1)
		return
	}
	par.For(l+1, r.grainPW, func(start, end int) { r.mulCoeffsRows(p1, p2, p3, start, end) })
}

func (r *Ring) mulCoeffsRows(p1, p2, p3 *Poly, start, end int) {
	for i := start; i < end; i++ {
		m := r.Mods[i]
		c := p3.Coeffs[i][:r.N]
		a := p1.Coeffs[i][:len(c)]
		b := p2.Coeffs[i][:len(c)]
		for j := range c {
			c[j] = nt.MulMod(a[j], b[j], m)
		}
	}
}

// MulCoeffsThenAdd sets p3 += p1 ⊙ p2 (pointwise), valid in NTT domain.
func (r *Ring) MulCoeffsThenAdd(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	if par.Inline(l+1, r.grainPW) {
		r.mulCoeffsThenAddRows(p1, p2, p3, 0, l+1)
		return
	}
	par.For(l+1, r.grainPW, func(start, end int) { r.mulCoeffsThenAddRows(p1, p2, p3, start, end) })
}

func (r *Ring) mulCoeffsThenAddRows(p1, p2, p3 *Poly, start, end int) {
	for i := start; i < end; i++ {
		m := r.Mods[i]
		q := r.Moduli[i]
		c := p3.Coeffs[i][:r.N]
		a := p1.Coeffs[i][:len(c)]
		b := p2.Coeffs[i][:len(c)]
		for j := range c {
			c[j] = nt.Add(c[j], nt.MulMod(a[j], b[j], m), q)
		}
	}
}

// MulScalar sets p2 = p1 * scalar, where scalar is a non-negative integer.
func (r *Ring) MulScalar(p1 *Poly, scalar uint64, p2 *Poly) {
	l := minLevel(p1, p2)
	par.For(l+1, r.grainPW, func(start, end int) {
		for i := start; i < end; i++ {
			m := r.Mods[i]
			s := nt.BRedAdd(scalar, m)
			sp := nt.ShoupPrec(s, m.Q)
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			for j := 0; j < r.N; j++ {
				b[j] = nt.MulModShoup(a[j], s, sp, m.Q)
			}
		}
	})
}

// AddScalar sets p2 = p1 + scalar (added to the constant coefficient in
// coefficient domain; in NTT domain it adds to all evaluation points,
// which is the correct embedding of a constant).
func (r *Ring) AddScalar(p1 *Poly, scalar uint64, p2 *Poly) {
	l := minLevel(p1, p2)
	par.For(l+1, r.grainPW, func(start, end int) {
		for i := start; i < end; i++ {
			m := r.Mods[i]
			s := nt.BRedAdd(scalar, m)
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			for j := 0; j < r.N; j++ {
				b[j] = nt.Add(a[j], s, m.Q)
			}
		}
	})
}

// MulByVectorMontgomeryThenAdd is not provided; see MulCoeffsThenAdd.

// Shift applies the negacyclic shift by k positions in coefficient domain:
// p2(X) = p1(X) * X^k mod (X^N+1). k may be negative.
func (r *Ring) Shift(p1 *Poly, k int, p2 *Poly) {
	n := r.N
	k = ((k % (2 * n)) + 2*n) % (2 * n)
	l := minLevel(p1, p2)
	par.For(l+1, r.grainPW, func(start, end int) {
		// One scratch row per chunk: the shift writes every index of b
		// (j -> idx is a bijection), so it needs no zeroing between limbs.
		b := r.getBuf()
		defer r.putBuf(b)
		for i := start; i < end; i++ {
			q := r.Moduli[i]
			a := p1.Coeffs[i]
			for j := 0; j < n; j++ {
				idx := j + k
				neg := false
				if idx >= 2*n {
					idx -= 2 * n
				}
				if idx >= n {
					idx -= n
					neg = true
				}
				if neg {
					b[idx] = nt.Neg(a[j], q)
				} else {
					b[idx] = a[j]
				}
			}
			copy(p2.Coeffs[i], b)
		}
	})
}
