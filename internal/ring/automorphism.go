package ring

import (
	"antace/internal/nt"
	"antace/internal/par"
)

// Automorphism applies the Galois automorphism X -> X^gal (gal odd, taken
// mod 2N) to p1 in coefficient domain, writing the result to p2.
func (r *Ring) Automorphism(p1 *Poly, gal uint64, p2 *Poly) {
	n := uint64(r.N)
	mask := 2*n - 1
	l := minLevel(p1, p2)
	par.For(l+1, r.grainPW, func(start, end int) {
		// j -> (j*gal)&mask is a bijection for odd gal, so the scratch row
		// is fully overwritten per limb and needs no zeroing.
		tmp := r.getBuf()
		defer r.putBuf(tmp)
		for i := start; i < end; i++ {
			q := r.Moduli[i]
			a := p1.Coeffs[i]
			for j := uint64(0); j < n; j++ {
				idx := (j * gal) & mask
				if idx < n {
					tmp[idx] = a[j]
				} else {
					tmp[idx-n] = nt.Neg(a[j], q)
				}
			}
			copy(p2.Coeffs[i], tmp)
		}
	})
}

// AutomorphismNTTIndex precomputes the permutation applied by the Galois
// automorphism X -> X^gal when polynomials are in NTT domain: slot i of the
// output takes its value from slot index[i] of the input.
func (r *Ring) AutomorphismNTTIndex(gal uint64) []int {
	n := uint64(r.N)
	mask := 2*n - 1
	index := make([]int, n)
	for i := uint64(0); i < n; i++ {
		// Slot i holds the evaluation at exponent e = 2*brv(i)+1.
		// The automorphism maps a(X) to a(X^gal), whose evaluation at
		// psi^e equals the input's evaluation at psi^(e*gal).
		e := 2*uint64(bitReverse(int(i), r.LogN)) + 1
		src := ((gal*e)&mask - 1) >> 1
		index[i] = bitReverse(int(src), r.LogN)
	}
	return index
}

// AutomorphismNTT applies the automorphism to p1 in NTT domain using a
// precomputed index table, writing to p2 (which must differ from p1 or the
// caller must accept in-place semantics via the internal buffer).
func (r *Ring) AutomorphismNTT(p1 *Poly, index []int, p2 *Poly) {
	l := minLevel(p1, p2)
	n := r.N
	par.For(l+1, r.grainPW, func(start, end int) {
		var tmp []uint64
		for i := start; i < end; i++ {
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			if &a[0] == &b[0] {
				if tmp == nil {
					tmp = r.getBuf()
					defer r.putBuf(tmp)
				}
				copy(tmp, a)
				a = tmp
			}
			for j := 0; j < n; j++ {
				b[j] = a[index[j]]
			}
		}
	})
}

// GaloisElementForRotation returns the Galois element 5^k mod 2N realising
// a cyclic rotation of the CKKS slot vector by k positions (k may be
// negative).
func (r *Ring) GaloisElementForRotation(k int) uint64 {
	n2 := uint64(2 * r.N)
	order := uint64(r.N / 2) // order of 5 in Z_2N^* / {±1}
	kk := uint64(((k % int(order)) + int(order))) % order
	gal := uint64(1)
	base := uint64(5)
	for e := kk; e > 0; e >>= 1 {
		if e&1 == 1 {
			gal = gal * base % n2
		}
		base = base * base % n2
	}
	return gal
}

// GaloisElementForConjugation returns the Galois element 2N-1 realising
// complex conjugation of the CKKS slots.
func (r *Ring) GaloisElementForConjugation() uint64 {
	return uint64(2*r.N - 1)
}
