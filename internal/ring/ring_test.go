package ring

import (
	"math/big"
	"math/rand/v2"
	"testing"

	"antace/internal/nt"
)

func testRing(t testing.TB, logN int, levels int) *Ring {
	t.Helper()
	n := 1 << logN
	primes, err := nt.GenerateNTTPrimes(45, uint64(2*n), levels)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randomPoly(r *Ring, level int, seed uint64) *Poly {
	p := r.NewPoly(level)
	s := NewSampler(r, SeedFromInt(seed))
	s.Uniform(p)
	return p
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(100, []uint64{65537}); err == nil {
		t.Fatal("expected error for non power-of-two degree")
	}
	if _, err := NewRing(16, nil); err == nil {
		t.Fatal("expected error for empty modulus chain")
	}
	if _, err := NewRing(1<<10, []uint64{7681}); err == nil {
		t.Fatal("expected error for modulus not 1 mod 2N")
	}
	if _, err := NewRing(1<<10, []uint64{(1 << 11) * 6}); err == nil {
		t.Fatal("expected error for composite modulus")
	}
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 8, 3)
	p := randomPoly(r, 2, 1)
	q := p.CopyNew()
	r.NTT(q, q)
	if p.Equal(q) {
		t.Fatal("NTT did not change the polynomial")
	}
	r.INTT(q, q)
	if !p.Equal(q) {
		t.Fatal("INTT(NTT(p)) != p")
	}
}

func TestNTTMatchesNaiveMul(t *testing.T) {
	r := testRing(t, 6, 2)
	p1 := randomPoly(r, 1, 2)
	p2 := randomPoly(r, 1, 3)
	want := r.NewPoly(1)
	r.MulPolyNaive(p1, p2, want)

	a, b := p1.CopyNew(), p2.CopyNew()
	r.NTT(a, a)
	r.NTT(b, b)
	got := r.NewPoly(1)
	r.MulCoeffs(a, b, got)
	r.INTT(got, got)
	if !got.Equal(want) {
		t.Fatal("NTT-based multiplication disagrees with schoolbook negacyclic convolution")
	}
}

func TestNTTLinearity(t *testing.T) {
	r := testRing(t, 7, 2)
	p1 := randomPoly(r, 1, 4)
	p2 := randomPoly(r, 1, 5)
	sum := r.NewPoly(1)
	r.Add(p1, p2, sum)
	r.NTT(sum, sum)

	a, b := p1.CopyNew(), p2.CopyNew()
	r.NTT(a, a)
	r.NTT(b, b)
	sum2 := r.NewPoly(1)
	r.Add(a, b, sum2)
	if !sum.Equal(sum2) {
		t.Fatal("NTT is not additive")
	}
}

func TestAddSubNegIdentities(t *testing.T) {
	r := testRing(t, 6, 3)
	p := randomPoly(r, 2, 6)
	zero := r.NewPoly(2)
	out := r.NewPoly(2)

	r.Sub(p, p, out)
	if !out.Equal(zero) {
		t.Fatal("p - p != 0")
	}
	neg := r.NewPoly(2)
	r.Neg(p, neg)
	r.Add(p, neg, out)
	if !out.Equal(zero) {
		t.Fatal("p + (-p) != 0")
	}
	r.Add(p, zero, out)
	if !out.Equal(p) {
		t.Fatal("p + 0 != p")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 6, 2)
	p := randomPoly(r, 1, 7)
	out := r.NewPoly(1)
	r.MulScalar(p, 3, out)
	want := r.NewPoly(1)
	r.Add(p, p, want)
	r.Add(want, p, want)
	if !out.Equal(want) {
		t.Fatal("3*p != p+p+p")
	}
}

func TestShift(t *testing.T) {
	r := testRing(t, 5, 1)
	p := r.NewPoly(0)
	p.Coeffs[0][0] = 1 // p(X) = 1
	out := r.NewPoly(0)
	r.Shift(p, 1, out) // X
	if out.Coeffs[0][1] != 1 {
		t.Fatal("shift by 1 of constant 1 should be X")
	}
	// X^(N-1) * X^2 = X^(N+1) = -X
	p.Zero()
	p.Coeffs[0][r.N-1] = 1
	r.Shift(p, 2, out)
	q := r.Moduli[0]
	if out.Coeffs[0][1] != q-1 {
		t.Fatalf("negacyclic wraparound failed: got %d want %d", out.Coeffs[0][1], q-1)
	}
	// Round trip.
	p = randomPoly(r, 0, 8)
	r.Shift(p, 5, out)
	back := r.NewPoly(0)
	r.Shift(out, -5, back)
	if !back.Equal(p) {
		t.Fatal("shift round trip failed")
	}
}

func TestAutomorphismCoeffDomain(t *testing.T) {
	r := testRing(t, 5, 2)
	p := randomPoly(r, 1, 9)
	// gal = 1 is the identity.
	out := r.NewPoly(1)
	r.Automorphism(p, 1, out)
	if !out.Equal(p) {
		t.Fatal("automorphism by 1 is not identity")
	}
	// Composition: aut_g1(aut_g2(p)) == aut_{g1*g2 mod 2N}(p).
	g1, g2 := uint64(5), uint64(25)
	a := r.NewPoly(1)
	b := r.NewPoly(1)
	r.Automorphism(p, g2, a)
	r.Automorphism(a, g1, b)
	want := r.NewPoly(1)
	r.Automorphism(p, g1*g2%uint64(2*r.N), want)
	if !b.Equal(want) {
		t.Fatal("automorphism composition failed")
	}
}

func TestAutomorphismNTTMatchesCoeff(t *testing.T) {
	r := testRing(t, 6, 2)
	p := randomPoly(r, 1, 10)
	for _, gal := range []uint64{5, 25, 3, uint64(2*r.N - 1), r.GaloisElementForRotation(3)} {
		want := r.NewPoly(1)
		r.Automorphism(p, gal, want)

		nttP := p.CopyNew()
		r.NTT(nttP, nttP)
		idx := r.AutomorphismNTTIndex(gal)
		got := r.NewPoly(1)
		r.AutomorphismNTT(nttP, idx, got)
		r.INTT(got, got)
		if !got.Equal(want) {
			t.Fatalf("NTT-domain automorphism mismatch for gal=%d", gal)
		}
	}
}

func TestGaloisElements(t *testing.T) {
	r := testRing(t, 6, 1)
	if r.GaloisElementForRotation(0) != 1 {
		t.Fatal("rotation by 0 should be identity element")
	}
	// 5^k composition: rot(a)*rot(b) = rot(a+b).
	n2 := uint64(2 * r.N)
	ga, gb := r.GaloisElementForRotation(3), r.GaloisElementForRotation(4)
	if ga*gb%n2 != r.GaloisElementForRotation(7) {
		t.Fatal("rotation Galois elements do not compose additively")
	}
	if r.GaloisElementForConjugation() != n2-1 {
		t.Fatal("conjugation element should be 2N-1")
	}
	// Negative rotation composes to identity with positive.
	gn := r.GaloisElementForRotation(-3)
	if ga*gn%n2 != 1 {
		t.Fatal("rot(3)*rot(-3) != identity")
	}
}

func TestDivRoundByLastModulus(t *testing.T) {
	r := testRing(t, 5, 3)
	rng := rand.New(rand.NewPCG(11, 12))
	// Build a polynomial whose integer coefficients are known and small
	// enough to recover: x in [0, q0*q1*q2) but we use small values.
	l := 2
	p := r.NewPoly(l)
	want := make([]uint64, r.N)
	ql := r.Moduli[l]
	for j := 0; j < r.N; j++ {
		x := rng.Uint64N(1 << 40)
		for i := 0; i <= l; i++ {
			p.Coeffs[i][j] = x % r.Moduli[i]
		}
		want[j] = (x + ql/2) / ql // round(x/ql)
	}
	out := r.NewPoly(l)
	r.DivRoundByLastModulus(p, out)
	if out.Level() != l-1 {
		t.Fatalf("level after rescale = %d, want %d", out.Level(), l-1)
	}
	for i := 0; i < l; i++ {
		for j := 0; j < r.N; j++ {
			if out.Coeffs[i][j] != want[j]%r.Moduli[i] {
				t.Fatalf("rescale row %d coeff %d: got %d want %d", i, j, out.Coeffs[i][j], want[j]%r.Moduli[i])
			}
		}
	}
}

func TestDivRoundByLastModulusNTT(t *testing.T) {
	r := testRing(t, 5, 3)
	p := randomPoly(r, 2, 13)
	// Reference: coefficient-domain rescale.
	want := r.NewPoly(2)
	r.DivRoundByLastModulus(p, want)

	nttP := p.CopyNew()
	r.NTT(nttP, nttP)
	got := r.NewPoly(2)
	r.DivRoundByLastModulusNTT(nttP, got)
	r.INTT(got, got)
	if !got.Equal(want) {
		t.Fatal("NTT-domain rescale disagrees with coefficient-domain rescale")
	}
}

func TestModUpDigitQP(t *testing.T) {
	n := 1 << 5
	qPrimes, err := nt.GenerateNTTPrimes(40, uint64(2*n), 4)
	if err != nil {
		t.Fatal(err)
	}
	pPrimes, err := nt.GenerateNTTPrimes(41, uint64(2*n), 2, qPrimes...)
	if err != nil {
		t.Fatal(err)
	}
	rQ, err := NewRing(n, qPrimes)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(n, pPrimes)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBasisExtender(rQ, rP)

	// Digit spans rows [1,3). Choose x < d1*d2 so the lift is near-exact
	// (up to +u*D which we check modulo small bound).
	level := 3
	pQ := rQ.NewPoly(level)
	xs := make([]*big.Int, n)
	rng := rand.New(rand.NewPCG(1, 7))
	D := new(big.Int).Mul(new(big.Int).SetUint64(qPrimes[1]), new(big.Int).SetUint64(qPrimes[2]))
	for j := 0; j < n; j++ {
		x := new(big.Int).SetUint64(rng.Uint64())
		x.Lsh(x, 64)
		x.Or(x, new(big.Int).SetUint64(rng.Uint64()))
		xs[j] = x.Mod(x, D)
		for i := 1; i < 3; i++ {
			pQ.Coeffs[i][j] = new(big.Int).Mod(xs[j], new(big.Int).SetUint64(qPrimes[i])).Uint64()
		}
	}
	outQ := rQ.NewPoly(level)
	outP := rP.NewPoly(rP.MaxLevel())
	be.ModUpDigitQP(pQ, 1, 3, level, outQ, outP)

	check := func(val uint64, q uint64, x *big.Int) bool {
		// Accept x + u*D for |u| <= 2.
		for u := int64(-2); u <= 2; u++ {
			t := new(big.Int).Add(x, new(big.Int).Mul(big.NewInt(u), D))
			if new(big.Int).Mod(t, new(big.Int).SetUint64(q)).Uint64() == val {
				return true
			}
		}
		return false
	}
	for j := 0; j < n; j++ {
		for i := 0; i <= level; i++ {
			if !check(outQ.Coeffs[i][j], qPrimes[i], xs[j]) {
				t.Fatalf("Q row %d coeff %d: lift error too large", i, j)
			}
		}
		for i := range pPrimes {
			if !check(outP.Coeffs[i][j], pPrimes[i], xs[j]) {
				t.Fatalf("P row %d coeff %d: lift error too large", i, j)
			}
		}
	}
}

func TestModDownQP(t *testing.T) {
	n := 1 << 5
	qPrimes, err := nt.GenerateNTTPrimes(40, uint64(2*n), 3)
	if err != nil {
		t.Fatal(err)
	}
	pPrimes, err := nt.GenerateNTTPrimes(41, uint64(2*n), 2, qPrimes...)
	if err != nil {
		t.Fatal(err)
	}
	rQ, _ := NewRing(n, qPrimes)
	rP, _ := NewRing(n, pPrimes)
	be := NewBasisExtender(rQ, rP)

	P := rP.ModulusAtLevel(rP.MaxLevel())
	level := 2
	// x = P*y + e with small e; ModDown should recover y (± small error).
	rng := rand.New(rand.NewPCG(3, 9))
	pQ := rQ.NewPoly(level)
	pP := rP.NewPoly(rP.MaxLevel())
	ys := make([]uint64, n)
	for j := 0; j < n; j++ {
		y := rng.Uint64N(1 << 30)
		e := int64(rng.Uint64N(100)) - 50
		ys[j] = y
		x := new(big.Int).Mul(P, new(big.Int).SetUint64(y))
		x.Add(x, big.NewInt(e))
		for i := 0; i <= level; i++ {
			pQ.Coeffs[i][j] = new(big.Int).Mod(x, new(big.Int).SetUint64(qPrimes[i])).Uint64()
		}
		for i := range pPrimes {
			pP.Coeffs[i][j] = new(big.Int).Mod(x, new(big.Int).SetUint64(pPrimes[i])).Uint64()
		}
	}
	be.ModDownQP(pQ, pP)
	for j := 0; j < n; j++ {
		for i := 0; i <= level; i++ {
			got := pQ.Coeffs[i][j]
			q := qPrimes[i]
			// Accept y + u for small |u| (conversion error).
			ok := false
			for u := int64(-4); u <= 4; u++ {
				want := new(big.Int).Add(new(big.Int).SetUint64(ys[j]), big.NewInt(u))
				if new(big.Int).Mod(want, new(big.Int).SetUint64(q)).Uint64() == got {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("ModDown row %d coeff %d: got %d, want ~%d", i, j, got, ys[j])
			}
		}
	}
}

func TestSamplerDistributions(t *testing.T) {
	r := testRing(t, 10, 2)
	s := NewSampler(r, SeedFromInt(42))

	tern := r.NewPoly(1)
	s.Ternary(tern)
	q0 := r.Moduli[0]
	counts := map[int]int{}
	for j := 0; j < r.N; j++ {
		v := tern.Coeffs[0][j]
		switch v {
		case 0:
			counts[0]++
		case 1:
			counts[1]++
		case q0 - 1:
			counts[-1]++
		default:
			t.Fatalf("ternary coefficient %d not in {-1,0,1}", v)
		}
		// Rows must agree as integers.
		v1 := tern.Coeffs[1][j]
		q1 := r.Moduli[1]
		if (v == 0 && v1 != 0) || (v == 1 && v1 != 1) || (v == q0-1 && v1 != q1-1) {
			t.Fatal("ternary rows disagree")
		}
	}
	if counts[0] < r.N/3 || counts[0] > 2*r.N/3 {
		t.Fatalf("ternary zero count %d implausible for N=%d", counts[0], r.N)
	}

	gauss := r.NewPoly(0)
	s.Gaussian(gauss)
	var sum, sumSq float64
	for j := 0; j < r.N; j++ {
		v := gauss.Coeffs[0][j]
		var x float64
		if v > q0/2 {
			x = -float64(q0 - v)
		} else {
			x = float64(v)
		}
		if x < -20 || x > 20 {
			t.Fatalf("gaussian sample %f outside 6-sigma truncation", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(r.N)
	std := sumSq/float64(r.N) - mean*mean
	if mean < -0.5 || mean > 0.5 {
		t.Fatalf("gaussian mean %f too far from 0", mean)
	}
	if std < 6 || std > 16 { // sigma^2 = 10.24
		t.Fatalf("gaussian variance %f too far from 10.24", std)
	}

	// Determinism: same seed, same output.
	s2 := NewSampler(r, SeedFromInt(42))
	tern2 := r.NewPoly(1)
	s2.Ternary(tern2)
	if !tern.Equal(tern2) {
		t.Fatal("sampler is not deterministic under a fixed seed")
	}
}

func TestPolyHelpers(t *testing.T) {
	r := testRing(t, 4, 3)
	p := randomPoly(r, 2, 14)
	c := p.CopyNew()
	if !c.Equal(p) {
		t.Fatal("CopyNew not equal")
	}
	c.Coeffs[0][0]++
	if c.Equal(p) {
		t.Fatal("CopyNew aliases original")
	}
	p.Resize(1, r.N)
	if p.Level() != 1 {
		t.Fatal("Resize down failed")
	}
	p.Resize(2, r.N)
	if p.Level() != 2 {
		t.Fatal("Resize up failed")
	}
	for _, v := range p.Coeffs[2] {
		if v != 0 {
			// Resize reuses the old backing row, which still holds data;
			// the contract is only that rows exist. Zero explicitly.
			break
		}
	}
	p.Zero()
	for i := range p.Coeffs {
		for _, v := range p.Coeffs[i] {
			if v != 0 {
				t.Fatal("Zero left nonzero coefficient")
			}
		}
	}
}

func BenchmarkNTT(b *testing.B) {
	for _, logN := range []int{12, 13, 14} {
		r := testRing(b, logN, 1)
		p := randomPoly(r, 0, 1)
		b.Run(sizeName(logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.nttRow(p.Coeffs[0], 0)
			}
		})
	}
}

func sizeName(logN int) string {
	return "N=2^" + string(rune('0'+logN/10)) + string(rune('0'+logN%10))
}
