package ring

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"math"
	"math/rand/v2"

	"antace/internal/nt"
)

// Sampler draws the random polynomials used in key generation and
// encryption: uniform over R_Q, ternary secrets, and discrete Gaussian
// errors. It is deterministic given a seed, which the tests exploit; for
// production keys use NewSampler with a nil seed to draw one from
// crypto/rand.
//
// Note: the Gaussian sampler is not constant-time; this library is a
// research artifact, not a hardened implementation.
type Sampler struct {
	r   *Ring
	rng *rand.Rand
	// Gaussian parameters.
	sigma float64
	bound int64
}

// DefaultSigma is the standard deviation of the error distribution used
// throughout (the value standardised by the HE security guidelines).
const DefaultSigma = 3.2

// NewSampler creates a sampler for ring r. If seed is nil a fresh seed is
// drawn from crypto/rand; otherwise the 32-byte seed makes it
// deterministic.
func NewSampler(r *Ring, seed *[32]byte) *Sampler {
	var s [32]byte
	if seed == nil {
		if _, err := cryptorand.Read(s[:]); err != nil {
			panic("ring: crypto/rand failure: " + err.Error())
		}
	} else {
		s = *seed
	}
	return &Sampler{
		r:     r,
		rng:   rand.New(rand.NewChaCha8(s)),
		sigma: DefaultSigma,
		bound: int64(math.Ceil(6 * DefaultSigma)),
	}
}

// SeedFromInt expands a small integer into a 32-byte seed, convenient for
// reproducible tests.
func SeedFromInt(x uint64) *[32]byte {
	var s [32]byte
	binary.LittleEndian.PutUint64(s[:8], x)
	return &s
}

// Uniform fills p with coefficients uniform in [0, q_i) for each row.
func (s *Sampler) Uniform(p *Poly) {
	for i := range p.Coeffs {
		q := s.r.Moduli[i]
		row := p.Coeffs[i]
		for j := range row {
			row[j] = s.rng.Uint64N(q)
		}
	}
}

// TernarySparse fills p with a ternary polynomial of exactly h nonzero
// coefficients (the Hamming-weight distribution used for bootstrappable
// secrets: the integer polynomial I appearing after ModRaise has
// coefficients bounded by ~sqrt(h/12) standard deviations, independent
// of the ring degree).
func (s *Sampler) TernarySparse(p *Poly, h int) {
	n := s.r.N
	if h > n {
		h = n
	}
	vals := make([]int8, n)
	// Sample h distinct positions.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < h; i++ {
		j := i + int(s.rng.Uint64N(uint64(n-i)))
		perm[i], perm[j] = perm[j], perm[i]
		if s.rng.Uint64N(2) == 0 {
			vals[perm[i]] = 1
		} else {
			vals[perm[i]] = -1
		}
	}
	s.setSigned(p, vals)
}

// Ternary fills p with a ternary polynomial: each coefficient is -1, 0, or
// +1 with probabilities 1/4, 1/2, 1/4, identical across RNS rows (the
// underlying integer polynomial is ternary).
func (s *Sampler) Ternary(p *Poly) {
	n := s.r.N
	vals := make([]int8, n)
	for j := 0; j < n; j++ {
		switch s.rng.Uint64N(4) {
		case 0:
			vals[j] = 1
		case 1:
			vals[j] = -1
		default:
			vals[j] = 0
		}
	}
	s.setSigned(p, vals)
}

// Gaussian fills p with a discrete Gaussian polynomial of standard
// deviation sigma (truncated at 6 sigma), identical across RNS rows.
func (s *Sampler) Gaussian(p *Poly) {
	n := s.r.N
	iv := make([]int64, n)
	for j := 0; j < n; j++ {
		for {
			v := int64(math.Round(s.rng.NormFloat64() * s.sigma))
			if v >= -s.bound && v <= s.bound {
				iv[j] = v
				break
			}
		}
	}
	s.setSigned64(p, iv)
}

// setSigned writes a small signed integer polynomial into RNS form.
func (s *Sampler) setSigned(p *Poly, vals []int8) {
	iv := make([]int64, len(vals))
	for j, v := range vals {
		iv[j] = int64(v)
	}
	s.setSigned64(p, iv)
}

func (s *Sampler) setSigned64(p *Poly, vals []int64) {
	for i := range p.Coeffs {
		q := s.r.Moduli[i]
		row := p.Coeffs[i]
		for j, v := range vals {
			if v >= 0 {
				row[j] = uint64(v) % q
			} else {
				row[j] = q - uint64(-v)%q
				if row[j] == q {
					row[j] = 0
				}
			}
		}
	}
}

// SetBigCentered writes the centered small integer vector vals (|v| < q_i
// for all rows) into p; exported for encoder use.
func (r *Ring) SetSigned(p *Poly, vals []int64) {
	for i := range p.Coeffs {
		q := r.Moduli[i]
		m := nt.NewModulus(q)
		row := p.Coeffs[i]
		for j, v := range vals {
			if v >= 0 {
				row[j] = nt.BRedAdd(uint64(v), m)
			} else {
				row[j] = nt.Neg(nt.BRedAdd(uint64(-v), m), q)
			}
		}
	}
}
