package ring

import (
	"sync"

	"antace/internal/par"
)

// Scratch pooling. The CKKS hot path (key switching, hoisted rotations,
// rescaling, bootstrapping) used to allocate fresh coefficient slices for
// every intermediate polynomial — tens of megabytes per ciphertext
// multiplication at real parameter sizes, all garbage within the call.
// Each Ring therefore owns two sync.Pool-backed free lists:
//
//   - a row pool of bare []uint64 scratch rows of length N, used inside
//     limb loops (automorphism permutation buffers, rescale deltas,
//     basis-conversion intermediates);
//   - a Poly pool of full-chain polynomials, handed out at any level via
//     GetPoly/GetPolyNoZero and returned with PutPoly.
//
// Ownership contract: whoever calls GetPoly must either PutPoly it or
// hand it to a caller that does. Returning a poly twice, or using it
// after PutPoly, is a data race exactly like a double free; the
// -race differential suite guards the disciplined call sites in
// internal/ckks and internal/bootstrap. Polys are zeroed on Get (not on
// Put), so GetPolyNoZero is safe only when every row is fully overwritten
// before being read.
//
// Both pools are safe for concurrent use, as is the Ring itself: all Ring
// methods are either read-only on the receiver or write only to
// caller-provided outputs.

// getBuf returns a scratch row of length N with undefined contents.
func (r *Ring) getBuf() []uint64 {
	if v := r.bufPool.Load().Get(); v != nil {
		return *(v.(*[]uint64))
	}
	return make([]uint64, r.N)
}

// putBuf returns a scratch row obtained from getBuf.
func (r *Ring) putBuf(b []uint64) {
	if len(b) != r.N {
		return
	}
	r.bufPool.Load().Put(&b)
}

// DiscardPools replaces both scratch pools with fresh empty ones. It is
// the panic-recovery hygiene step: a panic that unwound through pooled
// scratch leaves buffers in an unknown state (partially written, already
// returned by defers mid-unwind, or potentially still referenced), so
// instead of auditing them the recovery boundary orphans the entire pool
// and lets the GC collect it. Healthy buffers in flight are released
// into whichever pool is current when their holder calls Put — losing a
// few to the orphaned pool costs one reallocation each, which is noise
// next to a recovered crash. Safe to call concurrently with Get/Put.
func (r *Ring) DiscardPools() {
	r.bufPool.Store(new(sync.Pool))
	r.polyPool.Store(new(sync.Pool))
}

// GetPoly returns a zeroed polynomial at the given level from the pool.
func (r *Ring) GetPoly(level int) *Poly {
	p := r.GetPolyNoZero(level)
	if par.Inline(level+1, r.grainPW) {
		zeroRows(p, 0, level+1)
		return p
	}
	par.For(level+1, r.grainPW, func(start, end int) { zeroRows(p, start, end) })
	return p
}

func zeroRows(p *Poly, start, end int) {
	for i := start; i < end; i++ {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// GetPolyNoZero returns a pooled polynomial at the given level whose
// coefficients are undefined (leftovers from a previous user). Use only
// when every row will be fully written before it is read.
func (r *Ring) GetPolyNoZero(level int) *Poly {
	if level < 0 || level >= len(r.Moduli) {
		panic("ring: pooled poly level out of range")
	}
	var p *Poly
	if v := r.polyPool.Load().Get(); v != nil {
		p = v.(*Poly)
	} else {
		p = r.NewPoly(r.MaxLevel())
		p.pooled = p.Coeffs
	}
	p.Coeffs = p.pooled[:level+1]
	return p
}

// PutPoly returns a polynomial obtained from GetPoly/GetPolyNoZero to the
// pool. Polys not originating from this ring's pool are ignored, so
// callers may unconditionally release what they were given.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || p.pooled == nil {
		return
	}
	if len(p.pooled) != len(r.Moduli) || len(p.pooled[0]) != r.N {
		return
	}
	p.Coeffs = p.pooled
	r.polyPool.Load().Put(p)
}
