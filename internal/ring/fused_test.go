package ring

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"antace/internal/nt"
	"antace/internal/par"
)

// lazyTestRings returns rings spanning the supported modulus range,
// including primes just under the 2^62 bound where the lazy invariants
// (values held in [0,4q) between butterfly stages) have the least
// headroom.
func lazyTestRings(t testing.TB, logN int) []*Ring {
	t.Helper()
	n := 1 << logN
	var rings []*Ring
	for _, logQ := range []uint64{30, 45, 61} {
		primes, err := nt.GenerateNTTPrimes(logQ, uint64(2*n), 3)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d): %v", logQ, err)
		}
		r, err := NewRing(n, primes)
		if err != nil {
			t.Fatal(err)
		}
		rings = append(rings, r)
	}
	return rings
}

// eagerNTTRow is a strict textbook Cooley–Tukey negacyclic transform over
// the same twiddle tables as nttRow, with every butterfly fully reduced.
// It is the reference the lazy kernel must match bit for bit.
func eagerNTTRow(r *Ring, a []uint64, row int) {
	n := r.N
	m := r.Mods[row]
	q := r.Moduli[row]
	tab := &r.tables[row]
	t := n
	for mm := 1; mm < n; mm <<= 1 {
		t >>= 1
		for i := 0; i < mm; i++ {
			w := tab.psiRev[mm+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := nt.MulMod(a[j+t], w, m)
				a[j] = nt.Add(u, v, q)
				a[j+t] = nt.Sub(u, v, q)
			}
		}
	}
}

// eagerINTTRow is the strict Gentleman–Sande inverse, fully reduced at
// every step.
func eagerINTTRow(r *Ring, a []uint64, row int) {
	n := r.N
	m := r.Mods[row]
	q := r.Moduli[row]
	tab := &r.tables[row]
	t := 1
	for mm := n; mm > 1; mm >>= 1 {
		h := mm >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := tab.psiInvRev[h+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = nt.Add(u, v, q)
				a[j+t] = nt.MulMod(nt.Sub(u, v, q), w, m)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = nt.MulMod(a[j], tab.nInv, m)
	}
}

func randomPolyRNG(r *Ring, rng *rand.Rand, level int) *Poly {
	p := r.NewPoly(level)
	for i := range p.Coeffs {
		q := r.Moduli[i]
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % q
		}
	}
	return p
}

func assertReduced(t *testing.T, r *Ring, p *Poly, what string) {
	t.Helper()
	for i := range p.Coeffs {
		q := r.Moduli[i]
		for j, c := range p.Coeffs[i] {
			if c >= q {
				t.Fatalf("%s: row %d coeff %d = %d >= q = %d (not fully reduced)", what, i, j, c, q)
			}
		}
	}
}

// TestLazyNTTBitIdenticalToEager checks that the lazy-reduction forward
// and inverse transforms produce outputs that are (a) fully reduced and
// (b) bit-identical to strict eager butterflies, across random rows and
// moduli up to the 2^62 edge.
func TestLazyNTTBitIdenticalToEager(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	for _, r := range lazyTestRings(t, 8) {
		for trial := 0; trial < 8; trial++ {
			p := randomPolyRNG(r, rng, r.MaxLevel())
			lazy := p.CopyNew()
			eager := p.CopyNew()
			r.NTT(lazy, lazy)
			for i := range eager.Coeffs {
				eagerNTTRow(r, eager.Coeffs[i], i)
			}
			assertReduced(t, r, lazy, fmt.Sprintf("q=%d lazy NTT", r.Moduli[0]))
			if !lazy.Equal(eager) {
				t.Fatalf("q=%d: lazy NTT differs from eager reference", r.Moduli[0])
			}

			r.INTT(lazy, lazy)
			for i := range eager.Coeffs {
				eagerINTTRow(r, eager.Coeffs[i], i)
			}
			assertReduced(t, r, lazy, fmt.Sprintf("q=%d lazy INTT", r.Moduli[0]))
			if !lazy.Equal(eager) {
				t.Fatalf("q=%d: lazy INTT differs from eager reference", r.Moduli[0])
			}
			if !lazy.Equal(p) {
				t.Fatalf("q=%d: NTT/INTT round trip not the identity", r.Moduli[0])
			}
		}
	}
}

// TestLazyNTTExtremeInputs drives the transforms with coefficient
// patterns at the reduction boundaries (all q-1, alternating 0 and q-1),
// where a missed fold would first show.
func TestLazyNTTExtremeInputs(t *testing.T) {
	for _, r := range lazyTestRings(t, 8) {
		p := r.NewPoly(r.MaxLevel())
		for i := range p.Coeffs {
			q := r.Moduli[i]
			for j := range p.Coeffs[i] {
				if j%2 == 0 {
					p.Coeffs[i][j] = q - 1
				}
			}
		}
		lazy := p.CopyNew()
		eager := p.CopyNew()
		r.NTT(lazy, lazy)
		for i := range eager.Coeffs {
			eagerNTTRow(r, eager.Coeffs[i], i)
		}
		assertReduced(t, r, lazy, "extreme NTT")
		if !lazy.Equal(eager) {
			t.Fatalf("q=%d: lazy NTT differs on extreme inputs", r.Moduli[0])
		}
		r.INTT(lazy, lazy)
		assertReduced(t, r, lazy, "extreme INTT")
		if !lazy.Equal(p) {
			t.Fatalf("q=%d: round trip lost extreme inputs", r.Moduli[0])
		}
	}
}

// fusedTestQP builds a Q/P ring pair for fused-kernel differential tests.
func fusedTestQP(t testing.TB, logN int, logQ uint64, qCount, pCount int) (*Ring, *Ring, *BasisExtender) {
	t.Helper()
	n := 1 << logN
	qPrimes, err := nt.GenerateNTTPrimes(logQ, uint64(2*n), qCount)
	if err != nil {
		t.Fatal(err)
	}
	pPrimes, err := nt.GenerateNTTPrimes(logQ, uint64(2*n), pCount, qPrimes...)
	if err != nil {
		t.Fatal(err)
	}
	rQ, err := NewRing(n, qPrimes)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(n, pPrimes)
	if err != nil {
		t.Fatal(err)
	}
	return rQ, rP, NewBasisExtender(rQ, rP)
}

// TestDecompModUpNTTMatchesUnfused checks the fused digit lift against
// the primitive sequence it replaces — ModUpDigitQP followed by forward
// NTTs — bit for bit, over several digit spans and moduli including the
// 2^62 edge.
func TestDecompModUpNTTMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for _, logQ := range []uint64{40, 61} {
		rQ, rP, be := fusedTestQP(t, 6, logQ, 5, 2)
		level := rQ.MaxLevel()
		for _, span := range [][2]int{{0, 1}, {1, 3}, {0, 4}, {2, 5}} {
			pQ := randomPolyRNG(rQ, rng, level)
			fusedQ := rQ.NewPoly(level)
			fusedP := rP.NewPoly(rP.MaxLevel())
			be.DecompModUpNTT(pQ, span[0], span[1], level, fusedQ, fusedP)

			refQ := rQ.NewPoly(level)
			refP := rP.NewPoly(rP.MaxLevel())
			be.ModUpDigitQP(pQ, span[0], span[1], level, refQ, refP)
			rQ.NTT(refQ, refQ)
			rP.NTT(refP, refP)

			what := fmt.Sprintf("logQ=%d span=%v", logQ, span)
			assertReduced(t, rQ, fusedQ, what+" Q")
			assertReduced(t, rP, fusedP, what+" P")
			if !fusedQ.Equal(refQ) || !fusedP.Equal(refP) {
				t.Fatalf("%s: fused DecompModUpNTT differs from ModUpDigitQP+NTT", what)
			}
		}
	}
}

// TestInnerProductMatchesUnfused checks the 128-bit lazy inner product
// against a zeroed accumulator driven by MulCoeffsThenAdd, across digit
// counts straddling the fusedDigitBatch boundary.
func TestInnerProductMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 13))
	for _, r := range lazyTestRings(t, 7) {
		for _, D := range []int{1, 2, fusedDigitBatch, fusedDigitBatch + 1, 2*fusedDigitBatch + 3} {
			as := make([]*Poly, D)
			bs := make([]*Poly, D)
			for d := 0; d < D; d++ {
				as[d] = randomPolyRNG(r, rng, r.MaxLevel())
				bs[d] = randomPolyRNG(r, rng, r.MaxLevel())
			}
			fused := r.GetPolyNoZero(r.MaxLevel())
			r.InnerProduct(as, bs, fused)

			ref := r.NewPoly(r.MaxLevel())
			for d := 0; d < D; d++ {
				r.MulCoeffsThenAdd(as[d], bs[d], ref)
			}
			what := fmt.Sprintf("q=%d D=%d", r.Moduli[0], D)
			assertReduced(t, r, fused, what)
			if !fused.Equal(ref) {
				t.Fatalf("%s: fused InnerProduct differs from MulCoeffsThenAdd loop", what)
			}
			r.PutPoly(fused)
		}
		// An empty digit list must zero the (pooled, dirty) output.
		dirty := r.GetPolyNoZero(r.MaxLevel())
		for i := range dirty.Coeffs {
			for j := range dirty.Coeffs[i] {
				dirty.Coeffs[i][j] = r.Moduli[i] - 1
			}
		}
		r.InnerProduct(nil, nil, dirty)
		if !dirty.Equal(r.NewPoly(r.MaxLevel())) {
			t.Fatal("InnerProduct with no digits must zero the output")
		}
		r.PutPoly(dirty)
	}
}

// TestModDownNTTMatchesUnfused checks the fused NTT-domain ModDown
// against the primitive sequence it replaces: INTT both bases, ModDownQP
// in coefficient domain, NTT back.
func TestModDownNTTMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 17))
	for _, logQ := range []uint64{40, 61} {
		rQ, rP, be := fusedTestQP(t, 6, logQ, 4, 2)
		for level := 0; level <= rQ.MaxLevel(); level++ {
			pQ := randomPolyRNG(rQ, rng, level)
			pP := randomPolyRNG(rP, rng, rP.MaxLevel())

			fusedQ := pQ.CopyNew()
			fusedP := pP.CopyNew()
			be.ModDownNTT(fusedQ, fusedP)

			refQ := pQ.CopyNew()
			refP := pP.CopyNew()
			rQ.INTT(refQ, refQ)
			rP.INTT(refP, refP)
			be.ModDownQP(refQ, refP)
			rQ.NTT(refQ, refQ)

			what := fmt.Sprintf("logQ=%d level=%d", logQ, level)
			assertReduced(t, rQ, fusedQ, what)
			if !fusedQ.Equal(refQ) {
				t.Fatalf("%s: fused ModDownNTT differs from INTT+ModDownQP+NTT", what)
			}
		}
	}
}

// TestNTTSerialZeroAlloc pins the satellite fix for the 32 B/op closure
// escape: with one worker the transforms must not allocate at all.
func TestNTTSerialZeroAlloc(t *testing.T) {
	prev := par.Workers()
	par.SetWorkers(1)
	defer par.SetWorkers(prev)

	r := testRing(t, 10, 3)
	rng := rand.New(rand.NewPCG(19, 29))
	p := randomPolyRNG(r, rng, r.MaxLevel())
	if allocs := testing.AllocsPerRun(16, func() { r.NTT(p, p) }); allocs != 0 {
		t.Fatalf("serial NTT allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(16, func() { r.INTT(p, p) }); allocs != 0 {
		t.Fatalf("serial INTT allocates %.1f objects per run, want 0", allocs)
	}
}

// FuzzLazyNTTRow fuzzes single-row transforms against the eager
// reference: arbitrary seeds expand to a full row via a PCG stream, so
// the fuzzer explores coefficient patterns rather than just lengths.
func FuzzLazyNTTRow(f *testing.F) {
	f.Add(uint64(0), uint64(0), false)
	f.Add(uint64(1), uint64(2), true)
	f.Add(^uint64(0), uint64(7), false)
	f.Fuzz(func(t *testing.T, s1, s2 uint64, inverse bool) {
		for _, r := range lazyTestRings(t, 6) {
			rng := rand.New(rand.NewPCG(s1, s2))
			row := len(r.Moduli) - 1
			q := r.Moduli[row]
			lazy := make([]uint64, r.N)
			eager := make([]uint64, r.N)
			for j := range lazy {
				lazy[j] = rng.Uint64() % q
			}
			copy(eager, lazy)
			if inverse {
				r.inttRow(lazy, row)
				eagerINTTRow(r, eager, row)
			} else {
				r.nttRow(lazy, row)
				eagerNTTRow(r, eager, row)
			}
			for j := range lazy {
				if lazy[j] >= q {
					t.Fatalf("q=%d inverse=%v: coeff %d = %d not reduced", q, inverse, j, lazy[j])
				}
				if lazy[j] != eager[j] {
					t.Fatalf("q=%d inverse=%v: coeff %d: lazy %d != eager %d", q, inverse, j, lazy[j], eager[j])
				}
			}
		}
	})
}
