package ring

import (
	"antace/internal/nt"
	"antace/internal/par"
)

// Fused key-switching kernels. The polyir compiler pass FuseOperators
// already rewrites decomp+mod_up into poly.decomp_modup and
// modmul+modadd into poly.hw_modmuladd; this file makes the runtime
// execute those ops the way the IR describes them, instead of lowering
// back to one memory round trip per primitive:
//
//   - DecompModUpNTT converts each output row of the RNS digit lift and
//     immediately forward-NTTs it while the row is cache-hot, so the
//     coefficient-domain intermediate never travels back through memory;
//   - InnerProduct accumulates the evaluation-key inner product in
//     128-bit (hi, lo) pairs per coefficient, reducing once per digit
//     sum instead of once per multiply;
//   - ModDownNTT runs the whole INTT → base-conversion → P^-1 → NTT
//     tail of key switching as one pass per RNS row.
//
// All three use the same lazy-reduction discipline as the Harvey NTT
// (see ntt.go): with every modulus below 2^62 (enforced by NewRing),
// partial products of reduced operands are below 2^124, so each adds
// less than 2^60 to the accumulator's high word; folding with Red128
// whenever hi >= nt.LazyThreshold (2^63) leaves headroom for the next
// addition, and Red128 is exact for arbitrary 128-bit inputs at these
// moduli. Deferred reduction is exact modular arithmetic, so every
// kernel's fully-reduced output is bit-identical to the unfused
// primitive sequence it replaces — the differential and replay suites
// rely on that.

// fusedDigitBatch bounds both the digit-row pointers hoisted onto the
// stack per inner-product row and the number of unreduced products one
// (hi, lo) accumulator absorbs without an overflow check: 8 products of
// operands below 2^62 sum to less than 8 * 2^124 = 2^127, plus a carried
// reduced residue (< 2^62), which never overflows 128 bits — so inner
// loops over at most fusedDigitBatch terms need no fold branch at all.
// Longer digit lists are processed in batches, carrying the running sum
// through the reduced accumulator between them (exact, since reduction
// preserves the residue).
const fusedDigitBatch = 8

// DecompModUpNTT lifts the digit x = pQ mod D (D the product of the
// Q-basis primes with indices [start, end)) into the full basis
// Q_level ∪ P and forward-NTTs every output row, fusing
// poly.decomp_modup: outQ receives rows 0..level and outP all K rows of
// the P basis, all in NTT domain. pQ is in coefficient domain. The lift
// is the same approximate CRT conversion as ModUpDigitQP (result off by
// u*D, |u| <= end-start), with the per-term Barrett reduction of the
// inner product replaced by one lazy 128-bit accumulation per
// coefficient.
func (be *BasisExtender) DecompModUpNTT(pQ *Poly, start, end, level int, outQ, outP *Poly) {
	d := end - start
	dt := be.digitTableFor(start, end)
	// y_i = x_i * (D/d_i)^-1 mod d_i, shared by every output row.
	ys := be.rQ.GetPolyNoZero(d - 1)
	if par.Inline(d, be.rQ.grainPW) {
		be.scaleDigitRows(pQ, ys, dt, start, 0, d)
	} else {
		par.For(d, be.rQ.grainPW, func(s, e int) {
			be.scaleDigitRows(pQ, ys, dt, start, s, e)
		})
	}
	// Output rows are independent; each is converted (or copied, for the
	// digit's own rows) and NTT'd in one pass. The grain accounts for the
	// O(d·N) inner product plus the O(N·logN) transform per row.
	rows := level + 1 + len(be.rP.Moduli)
	grain := par.Grain(be.rQ.N * (d + be.rQ.LogN))
	if par.Inline(rows, grain) {
		be.modUpNTTRows(pQ, ys, dt, start, end, level, outQ, outP, 0, rows)
	} else {
		par.For(rows, grain, func(s, e int) {
			be.modUpNTTRows(pQ, ys, dt, start, end, level, outQ, outP, s, e)
		})
	}
	be.rQ.PutPoly(ys)
}

// scaleDigitRows computes ys rows [rs, re): the digit residues scaled by
// the CRT weights (D/d_t)^-1 mod d_t.
func (be *BasisExtender) scaleDigitRows(pQ, ys *Poly, dt *digitTable, start, rs, re int) {
	n := be.rQ.N
	for i := rs; i < re; i++ {
		q := be.rQ.Moduli[start+i]
		inv, invShoup := dt.inv[i], dt.invShoup[i]
		src := pQ.Coeffs[start+i]
		y := ys.Coeffs[i][:n]
		src = src[:len(y)]
		for k := range src {
			y[k] = nt.MulModShoup(src[k], inv, invShoup, q)
		}
	}
}

// modUpNTTRows converts-and-transforms output rows [rs, re) of the flat
// index space (Q rows first, then P rows).
func (be *BasisExtender) modUpNTTRows(pQ, ys *Poly, dt *digitTable, start, end, level int, outQ, outP *Poly, rs, re int) {
	for i := rs; i < re; i++ {
		switch {
		case i > level:
			j := i - level - 1
			convertRowLazy(ys.Coeffs, be.rP.Mods[j], dt.overP[j], outP.Coeffs[j])
			be.rP.nttRow(outP.Coeffs[j], j)
		case i >= start && i < end:
			copy(outQ.Coeffs[i], pQ.Coeffs[i])
			be.rQ.nttRow(outQ.Coeffs[i], i)
		default:
			convertRowLazy(ys.Coeffs, be.rQ.Mods[i], dt.overQ[i], outQ.Coeffs[i])
			be.rQ.nttRow(outQ.Coeffs[i], i)
		}
	}
}

// convertRowLazy writes dst[k] = sum_i ys[i][k] * over[i] mod m with one
// lazy 128-bit accumulator per coefficient, batching fusedDigitBatch
// digits per accumulator so the inner loop carries no overflow branch.
func convertRowLazy(ys [][]uint64, m nt.Modulus, over, dst []uint64) {
	D := len(over)
	var yr [fusedDigitBatch][]uint64
	var ov [fusedDigitBatch]uint64
	for g := 0; g < D; g += fusedDigitBatch {
		b := D - g
		if b > fusedDigitBatch {
			b = fusedDigitBatch
		}
		for i := 0; i < b; i++ {
			yr[i] = ys[g+i]
			ov[i] = over[g+i]
		}
		for k := range dst {
			var hi, lo uint64
			if g > 0 {
				lo = dst[k]
			}
			for i := 0; i < b; i++ {
				hi, lo = nt.MulAdd128(yr[i][k], ov[i], hi, lo)
			}
			dst[k] = nt.Red128(hi, lo, m)
		}
	}
}

// InnerProduct sets out[k] = sum_d as[d][k] * bs[d][k] over the common
// rows (pointwise, NTT domain), fusing poly.hw_modmuladd: the digit sum
// is kept in a 128-bit (hi, lo) pair per coefficient and reduced once,
// and out is written exactly once — no per-digit accumulator reads and
// writes. as and bs must have equal length; an empty digit list zeroes
// out (so pooled, non-zeroed accumulators are safe to pass).
func (r *Ring) InnerProduct(as, bs []*Poly, out *Poly) {
	if len(as) != len(bs) {
		panic("ring: InnerProduct digit count mismatch")
	}
	l := out.Level()
	for d := range as {
		if al := as[d].Level(); al < l {
			l = al
		}
		if bl := bs[d].Level(); bl < l {
			l = bl
		}
	}
	grain := par.Grain(r.N * (len(as) + 1))
	if par.Inline(l+1, grain) {
		r.innerProductRows(as, bs, out, 0, l+1)
	} else {
		par.For(l+1, grain, func(s, e int) { r.innerProductRows(as, bs, out, s, e) })
	}
}

// innerProductRows computes the digit inner product for rows
// [start, end). Digit row pointers are hoisted into fixed stack arrays
// in batches of fusedDigitBatch; between batches the running sum is
// carried through the reduced accumulator (exact, since reduction
// preserves the residue).
func (r *Ring) innerProductRows(as, bs []*Poly, out *Poly, start, end int) {
	n := r.N
	D := len(as)
	var ar, br [fusedDigitBatch][]uint64
	for i := start; i < end; i++ {
		m := r.Mods[i]
		dst := out.Coeffs[i]
		if D == 0 {
			for k := 0; k < n; k++ {
				dst[k] = 0
			}
			continue
		}
		for g := 0; g < D; g += fusedDigitBatch {
			b := D - g
			if b > fusedDigitBatch {
				b = fusedDigitBatch
			}
			for d := 0; d < b; d++ {
				ar[d] = as[g+d].Coeffs[i]
				br[d] = bs[g+d].Coeffs[i]
			}
			for k := 0; k < n; k++ {
				var hi, lo uint64
				if g > 0 {
					lo = dst[k]
				}
				for d := 0; d < b; d++ {
					hi, lo = nt.MulAdd128(ar[d][k], br[d][k], hi, lo)
				}
				dst[k] = nt.Red128(hi, lo, m)
			}
		}
	}
}

// ModDownNTT computes round((xQ, xP) / P) mod Q_l for polynomials in NTT
// domain, writing the NTT-domain result into pQ (input and output at
// level l). It fuses the whole key-switch tail that was previously four
// full-polynomial passes (INTT Q, INTT P, ModDownQP, NTT Q): each P row
// is inverse-transformed and scaled in one pass, then each Q row is
// inverse-transformed, base-converted (lazy 128-bit accumulation),
// corrected by P^-1 and forward-transformed while still cache-resident.
func (be *BasisExtender) ModDownNTT(pQ, pP *Poly) {
	l := pQ.Level()
	K := len(be.rP.Moduli)
	// y_j = INTT(x_j) * (P/p_j)^-1 mod p_j.
	ys := be.rP.GetPolyNoZero(K - 1)
	if par.Inline(K, be.rP.grainNTT) {
		be.modDownPRows(pP, ys, 0, K)
	} else {
		par.For(K, be.rP.grainNTT, func(s, e int) { be.modDownPRows(pP, ys, s, e) })
	}
	grain := par.Grain(be.rQ.N * (K + 2*be.rQ.LogN))
	if par.Inline(l+1, grain) {
		be.modDownQRowsNTT(pQ, ys, 0, l+1)
	} else {
		par.For(l+1, grain, func(s, e int) { be.modDownQRowsNTT(pQ, ys, s, e) })
	}
	be.rP.PutPoly(ys)
}

// modDownPRows fills ys rows [start, end): INTT of the P-basis rows
// scaled by the CRT weights (P/p_j)^-1 mod p_j.
func (be *BasisExtender) modDownPRows(pP, ys *Poly, start, end int) {
	n := be.rP.N
	for j := start; j < end; j++ {
		y := ys.Coeffs[j]
		copy(y, pP.Coeffs[j])
		be.rP.inttRow(y, j)
		q := be.rP.Moduli[j]
		inv, invShoup := be.poverpjInv[j], be.poverpjInvShoup[j]
		yn := y[:n]
		for k := range yn {
			yn[k] = nt.MulModShoup(yn[k], inv, invShoup, q)
		}
	}
}

// modDownQRowsNTT finishes Q rows [start, end): INTT, subtract the
// base-converted P part, multiply by P^-1 and NTT back, all in one pass
// over the row.
func (be *BasisExtender) modDownQRowsNTT(pQ, ys *Poly, start, end int) {
	n := be.rQ.N
	K := len(be.rP.Moduli)
	yrows := ys.Coeffs
	var yr [fusedDigitBatch][]uint64
	var ov [fusedDigitBatch]uint64
	for i := start; i < end; i++ {
		mq := be.rQ.Mods[i]
		qi := mq.Q
		dst := pQ.Coeffs[i]
		be.rQ.inttRow(dst, i)
		pinv, pinvShoup := be.pInvModQ[i], be.pInvModQShoup[i]
		if K <= fusedDigitBatch {
			for j := 0; j < K; j++ {
				yr[j] = yrows[j]
				ov[j] = be.poverpjModQ[j][i]
			}
			for k := 0; k < n; k++ {
				var hi, lo uint64
				for j := 0; j < K; j++ {
					hi, lo = nt.MulAdd128(yr[j][k], ov[j], hi, lo)
				}
				conv := nt.Red128(hi, lo, mq)
				dst[k] = nt.MulModShoup(nt.Sub(dst[k], conv, qi), pinv, pinvShoup, qi)
			}
		} else {
			for k := 0; k < n; k++ {
				var hi, lo uint64
				for j := 0; j < K; j++ {
					hi, lo = nt.MulAdd128(yrows[j][k], be.poverpjModQ[j][i], hi, lo)
					if hi >= nt.LazyThreshold {
						lo = nt.Red128(hi, lo, mq)
						hi = 0
					}
				}
				conv := nt.Red128(hi, lo, mq)
				dst[k] = nt.MulModShoup(nt.Sub(dst[k], conv, qi), pinv, pinvShoup, qi)
			}
		}
		be.rQ.nttRow(dst, i)
	}
}
