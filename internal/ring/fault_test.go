package ring

import "testing"

// TestRescaleAtLevel0ReturnsError: the rescale primitives report level
// exhaustion as an error rather than panicking — callers (the ckks
// evaluator, and transitively the serving layer) propagate it.
func TestRescaleAtLevel0ReturnsError(t *testing.T) {
	r := testRing(t, 5, 3)
	p := r.NewPoly(0)
	out := r.NewPoly(0)
	if err := r.DivRoundByLastModulus(p, out); err == nil {
		t.Fatal("DivRoundByLastModulus at level 0 returned nil error")
	}
	if err := r.DivRoundByLastModulusNTT(p, out); err == nil {
		t.Fatal("DivRoundByLastModulusNTT at level 0 returned nil error")
	}
}

// TestDiscardPools pins the panic-hygiene contract: after DiscardPools,
// a polynomial previously returned to the pool is never handed out
// again — the pool it sits in is orphaned wholesale.
func TestDiscardPools(t *testing.T) {
	r := testRing(t, 5, 3)

	p := r.GetPoly(r.MaxLevel())
	suspectBacking := &p.pooled[0][0]
	r.PutPoly(p)
	r.DiscardPools()

	// The fresh pool is empty, so this Get must allocate new backing.
	q := r.GetPolyNoZero(r.MaxLevel())
	if &q.pooled[0][0] == suspectBacking {
		t.Fatal("pool handed out a discarded polynomial after DiscardPools")
	}
	// The new pool recycles normally.
	r.PutPoly(q)
	if got := r.GetPolyNoZero(r.MaxLevel()); &got.pooled[0][0] != &q.pooled[0][0] {
		// Not guaranteed by sync.Pool in general, but deterministic for a
		// same-goroutine put/get with no GC in between; if this ever
		// flakes the assertion below still holds the real contract.
		t.Log("note: fresh pool did not recycle the last put poly")
	}

	// Row buffers follow the same contract.
	b := r.getBuf()
	r.putBuf(b)
	r.DiscardPools()
	b2 := r.getBuf()
	if len(b2) != r.N {
		t.Fatalf("getBuf after discard returned %d-len row", len(b2))
	}
	r.putBuf(b2)
}
