package ring

import (
	"testing"

	"antace/internal/nt"
	"antace/internal/par"
)

// runWithWorkers executes fn under the given worker count, restoring the
// previous count afterwards.
func runWithWorkers(n int, fn func()) {
	prev := par.Workers()
	par.SetWorkers(n)
	defer par.SetWorkers(prev)
	fn()
}

// TestParallelMatchesSerial runs every parallelised ring operation under
// 1 and 8 workers and asserts bit-identical outputs. par.SetMinWork(1)
// forces parallel chunking even on the tiny test ring; since rings
// capture their grain at construction, the override precedes testRing.
func TestParallelMatchesSerial(t *testing.T) {
	par.SetMinWork(1)
	defer par.SetMinWork(0)

	n := 1 << 8
	qPrimes, err := nt.GenerateNTTPrimes(45, uint64(2*n), 6)
	if err != nil {
		t.Fatal(err)
	}
	pPrimes, err := nt.GenerateNTTPrimes(46, uint64(2*n), 2, qPrimes...)
	if err != nil {
		t.Fatal(err)
	}
	rQ, err := NewRing(n, qPrimes)
	if err != nil {
		t.Fatal(err)
	}
	rP, err := NewRing(n, pPrimes)
	if err != nil {
		t.Fatal(err)
	}
	be := NewBasisExtender(rQ, rP)
	level := rQ.MaxLevel()
	a := randomPoly(rQ, level, 11)
	b := randomPoly(rQ, level, 22)
	gal := rQ.GaloisElementForRotation(3)
	idx := rQ.AutomorphismNTTIndex(gal)

	cases := []struct {
		name string
		run  func() []*Poly
	}{
		{"NTT", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.NTT(a, out)
			return []*Poly{out}
		}},
		{"INTT", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.INTT(a, out)
			return []*Poly{out}
		}},
		{"Add", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.Add(a, b, out)
			return []*Poly{out}
		}},
		{"Sub", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.Sub(a, b, out)
			return []*Poly{out}
		}},
		{"MulCoeffs", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.MulCoeffs(a, b, out)
			return []*Poly{out}
		}},
		{"MulCoeffsThenAdd", func() []*Poly {
			out := b.CopyNew()
			rQ.MulCoeffsThenAdd(a, b, out)
			return []*Poly{out}
		}},
		{"MulScalar", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.MulScalar(a, 12345, out)
			return []*Poly{out}
		}},
		{"Automorphism", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.Automorphism(a, gal, out)
			return []*Poly{out}
		}},
		{"AutomorphismNTT", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.AutomorphismNTT(a, idx, out)
			return []*Poly{out}
		}},
		{"AutomorphismNTTInPlace", func() []*Poly {
			out := a.CopyNew()
			rQ.AutomorphismNTT(out, idx, out)
			return []*Poly{out}
		}},
		{"Shift", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.Shift(a, 7, out)
			return []*Poly{out}
		}},
		{"MulPolyNaive", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.MulPolyNaive(a, b, out)
			return []*Poly{out}
		}},
		{"DivRoundByLastModulus", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.DivRoundByLastModulus(a, out)
			return []*Poly{out}
		}},
		{"DivRoundByLastModulusNTT", func() []*Poly {
			out := rQ.NewPoly(level)
			rQ.DivRoundByLastModulusNTT(a, out)
			return []*Poly{out}
		}},
		{"ModUpDigitQP", func() []*Poly {
			outQ := rQ.NewPoly(level)
			outP := rP.NewPoly(rP.MaxLevel())
			be.ModUpDigitQP(a, 1, 3, level, outQ, outP)
			return []*Poly{outQ, outP}
		}},
		{"ModDownQP", func() []*Poly {
			outQ := a.CopyNew()
			outP := randomPoly(rP, rP.MaxLevel(), 33)
			be.ModDownQP(outQ, outP)
			return []*Poly{outQ}
		}},
		{"GetPolyZeroed", func() []*Poly {
			p := rQ.GetPoly(level)
			out := p.CopyNew()
			rQ.PutPoly(p)
			return []*Poly{out}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var serial, parallel []*Poly
			runWithWorkers(1, func() { serial = tc.run() })
			runWithWorkers(8, func() { parallel = tc.run() })
			if len(serial) != len(parallel) {
				t.Fatalf("result count mismatch: %d vs %d", len(serial), len(parallel))
			}
			for i := range serial {
				if !serial[i].Equal(parallel[i]) {
					t.Fatalf("output %d differs between 1 and 8 workers", i)
				}
			}
		})
	}
}
