package ring

import (
	"math/bits"

	"antace/internal/nt"
	"antace/internal/par"
)

// bitReverse returns the logN-bit reversal of i.
func bitReverse(i, logN int) int {
	return int(bits.Reverse64(uint64(i)) >> (64 - logN))
}

// newNTTTables precomputes the bit-reversed twiddle tables for the
// negacyclic NTT (Longa–Naehrig style) modulo m.Q with 2N-th root psi.
func newNTTTables(n int, psi uint64, m nt.Modulus) nttTables {
	logN := bits.Len(uint(n)) - 1
	t := nttTables{
		psiRev:         make([]uint64, n),
		psiRevShoup:    make([]uint64, n),
		psiInvRev:      make([]uint64, n),
		psiInvRevShoup: make([]uint64, n),
	}
	psiInv := nt.ModInverse(psi, m)
	pow, powInv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitReverse(i, logN)
		t.psiRev[j] = pow
		t.psiInvRev[j] = powInv
		pow = nt.MulMod(pow, psi, m)
		powInv = nt.MulMod(powInv, psiInv, m)
	}
	for i := 0; i < n; i++ {
		t.psiRevShoup[i] = nt.ShoupPrec(t.psiRev[i], m.Q)
		t.psiInvRevShoup[i] = nt.ShoupPrec(t.psiInvRev[i], m.Q)
	}
	t.nInv = nt.ModInverse(uint64(n), m)
	t.nInvShoup = nt.ShoupPrec(t.nInv, m.Q)
	return t
}

// NTT transforms p (coefficient domain) into pOut (NTT domain) in place per
// row. The output ordering places the evaluation at psi^(2*brv(i)+1) in
// slot i, the convention assumed by the automorphism index tables.
func (r *Ring) NTT(p, pOut *Poly) {
	l := minLevel(p, pOut)
	par.For(l+1, r.grainNTT, func(start, end int) {
		for i := start; i < end; i++ {
			if &p.Coeffs[i][0] != &pOut.Coeffs[i][0] {
				copy(pOut.Coeffs[i], p.Coeffs[i])
			}
			r.nttRow(pOut.Coeffs[i], i)
		}
	})
}

// INTT transforms p (NTT domain) into pOut (coefficient domain).
func (r *Ring) INTT(p, pOut *Poly) {
	l := minLevel(p, pOut)
	par.For(l+1, r.grainNTT, func(start, end int) {
		for i := start; i < end; i++ {
			if &p.Coeffs[i][0] != &pOut.Coeffs[i][0] {
				copy(pOut.Coeffs[i], p.Coeffs[i])
			}
			r.inttRow(pOut.Coeffs[i], i)
		}
	})
}

// nttRow applies the forward negacyclic NTT in place on one RNS row.
func (r *Ring) nttRow(a []uint64, row int) {
	n := r.N
	q := r.Moduli[row]
	tab := &r.tables[row]
	t := n
	for m := 1; m < n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := tab.psiRev[m+i]
			wp := tab.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := nt.MulModShoup(a[j+t], w, wp, q)
				a[j] = nt.Add(u, v, q)
				a[j+t] = nt.Sub(u, v, q)
			}
		}
	}
}

// inttRow applies the inverse negacyclic NTT in place on one RNS row.
func (r *Ring) inttRow(a []uint64, row int) {
	n := r.N
	q := r.Moduli[row]
	tab := &r.tables[row]
	t := 1
	for m := n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := tab.psiInvRev[h+i]
			wp := tab.psiInvRevShoup[h+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				a[j] = nt.Add(u, v, q)
				a[j+t] = nt.MulModShoup(nt.Sub(u, v, q), w, wp, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := 0; j < n; j++ {
		a[j] = nt.MulModShoup(a[j], tab.nInv, tab.nInvShoup, q)
	}
}

// MulPolyNaive computes p3 = p1 * p2 by schoolbook negacyclic convolution
// in coefficient domain. Quadratic; used only by tests as a reference.
// Every (j,k) pair is accumulated unconditionally — no sparsity shortcut —
// so the reference exercises the exact same index arithmetic for zero and
// nonzero coefficients alike.
func (r *Ring) MulPolyNaive(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	n := r.N
	par.For(l+1, par.Grain(n*n), func(start, end int) {
		c := r.getBuf()
		defer r.putBuf(c)
		for i := start; i < end; i++ {
			m := r.Mods[i]
			q := r.Moduli[i]
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			for j := range c {
				c[j] = 0
			}
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					prod := nt.MulMod(a[j], b[k], m)
					idx := j + k
					if idx >= n {
						c[idx-n] = nt.Sub(c[idx-n], prod, q)
					} else {
						c[idx] = nt.Add(c[idx], prod, q)
					}
				}
			}
			copy(p3.Coeffs[i], c)
		}
	})
}
