package ring

import (
	"math/bits"

	"antace/internal/nt"
	"antace/internal/par"
)

// bitReverse returns the logN-bit reversal of i.
func bitReverse(i, logN int) int {
	return int(bits.Reverse64(uint64(i)) >> (64 - logN))
}

// newNTTTables precomputes the bit-reversed twiddle tables for the
// negacyclic NTT (Longa–Naehrig style) modulo m.Q with 2N-th root psi.
func newNTTTables(n int, psi uint64, m nt.Modulus) nttTables {
	logN := bits.Len(uint(n)) - 1
	t := nttTables{
		psiRev:         make([]uint64, n),
		psiRevShoup:    make([]uint64, n),
		psiInvRev:      make([]uint64, n),
		psiInvRevShoup: make([]uint64, n),
	}
	psiInv := nt.ModInverse(psi, m)
	pow, powInv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		j := bitReverse(i, logN)
		t.psiRev[j] = pow
		t.psiInvRev[j] = powInv
		pow = nt.MulMod(pow, psi, m)
		powInv = nt.MulMod(powInv, psiInv, m)
	}
	for i := 0; i < n; i++ {
		t.psiRevShoup[i] = nt.ShoupPrec(t.psiRev[i], m.Q)
		t.psiInvRevShoup[i] = nt.ShoupPrec(t.psiInvRev[i], m.Q)
	}
	t.nInv = nt.ModInverse(uint64(n), m)
	t.nInvShoup = nt.ShoupPrec(t.nInv, m.Q)
	return t
}

// NTT transforms p (coefficient domain) into pOut (NTT domain) in place per
// row. The output ordering places the evaluation at psi^(2*brv(i)+1) in
// slot i, the convention assumed by the automorphism index tables.
func (r *Ring) NTT(p, pOut *Poly) {
	l := minLevel(p, pOut)
	if par.Inline(l+1, r.grainNTT) {
		r.nttRows(p, pOut, 0, l+1)
		return
	}
	par.For(l+1, r.grainNTT, func(start, end int) { r.nttRows(p, pOut, start, end) })
}

// INTT transforms p (NTT domain) into pOut (coefficient domain).
func (r *Ring) INTT(p, pOut *Poly) {
	l := minLevel(p, pOut)
	if par.Inline(l+1, r.grainNTT) {
		r.inttRows(p, pOut, 0, l+1)
		return
	}
	par.For(l+1, r.grainNTT, func(start, end int) { r.inttRows(p, pOut, start, end) })
}

// nttRows forward-transforms rows [start, end), copying out-of-place
// inputs first. Named (rather than a closure) so the serial path of
// NTT/INTT allocates nothing.
func (r *Ring) nttRows(p, pOut *Poly, start, end int) {
	for i := start; i < end; i++ {
		if &p.Coeffs[i][0] != &pOut.Coeffs[i][0] {
			copy(pOut.Coeffs[i], p.Coeffs[i])
		}
		r.nttRow(pOut.Coeffs[i], i)
	}
}

// inttRows is the inverse-transform sibling of nttRows.
func (r *Ring) inttRows(p, pOut *Poly, start, end int) {
	for i := start; i < end; i++ {
		if &p.Coeffs[i][0] != &pOut.Coeffs[i][0] {
			copy(pOut.Coeffs[i], p.Coeffs[i])
		}
		r.inttRow(pOut.Coeffs[i], i)
	}
}

// nttRow applies the forward negacyclic NTT in place on one RNS row,
// using Harvey-style lazy butterflies: coefficients are kept in [0, 4q)
// across stages, each butterfly performs at most one conditional
// subtraction (folding the top operand back into [0, 2q)), and the full
// Barrett-style correction runs only once, folded into the final stage.
// MulModShoupLazy tolerates any uint64 input and returns [0, 2q), so
// with q < 2^62 (enforced by NewRing) the invariant
//
//	a[j] = u + v           < 2q + 2q = 4q < 2^64
//	a[j+t] = u + 2q - v    < 4q
//
// holds for every stage. The outputs are fully reduced (< q) and — since
// lazy reduction is exact modular arithmetic with deferred carries —
// bit-identical to the eager butterfly's.
func (r *Ring) nttRow(a []uint64, row int) {
	n := r.N
	q := r.Moduli[row]
	twoQ := q << 1
	tab := &r.tables[row]
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := tab.psiRev[m+i]
			wp := tab.psiRevShoup[m+i]
			j1 := 2 * i * t
			// Slicing the two butterfly halves to equal length lets the
			// compiler drop the bounds checks from the inner loop.
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			y = y[:len(x)]
			for j := range x {
				u := x[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := nt.MulModShoupLazy(y[j], w, wp, q)
				x[j] = u + v
				y[j] = u + twoQ - v
			}
		}
	}
	// Final stage (t == 1): same butterfly with the batch reduction from
	// [0, 4q) to [0, q) folded in, so no separate correction pass over the
	// row is needed.
	for i, m := 0, n>>1; i < m; i++ {
		w := tab.psiRev[m+i]
		wp := tab.psiRevShoup[m+i]
		j := 2 * i
		u := a[j]
		if u >= twoQ {
			u -= twoQ
		}
		v := nt.MulModShoupLazy(a[j+1], w, wp, q)
		x := u + v
		if x >= twoQ {
			x -= twoQ
		}
		if x >= q {
			x -= q
		}
		a[j] = x
		y := u + twoQ - v
		if y >= twoQ {
			y -= twoQ
		}
		if y >= q {
			y -= q
		}
		a[j+1] = y
	}
}

// inttRow applies the inverse negacyclic NTT in place on one RNS row.
// The inverse butterflies keep coefficients in [0, 2q): the sum gets one
// conditional subtraction, the difference u + 2q - v (< 4q) feeds the
// lazy Shoup multiply which lands back in [0, 2q). The n^-1 fold performs
// the only strict reduction — MulModShoup's single conditional
// subtraction fully reduces any input in [0, 2^64).
func (r *Ring) inttRow(a []uint64, row int) {
	n := r.N
	q := r.Moduli[row]
	twoQ := q << 1
	tab := &r.tables[row]
	t := 1
	for m := n; m > 1; m >>= 1 {
		h := m >> 1
		j1 := 0
		for i := 0; i < h; i++ {
			w := tab.psiInvRev[h+i]
			wp := tab.psiInvRevShoup[h+i]
			lox := a[j1 : j1+t : j1+t]
			hix := a[j1+t : j1+2*t : j1+2*t]
			hix = hix[:len(lox)]
			for j := range lox {
				u := lox[j]
				v := hix[j]
				x := u + v
				if x >= twoQ {
					x -= twoQ
				}
				lox[j] = x
				hix[j] = nt.MulModShoupLazy(u+twoQ-v, w, wp, q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = nt.MulModShoup(a[j], tab.nInv, tab.nInvShoup, q)
	}
}

// MulPolyNaive computes p3 = p1 * p2 by schoolbook negacyclic convolution
// in coefficient domain. Quadratic; used only by tests as a reference.
// Every (j,k) pair is accumulated unconditionally — no sparsity shortcut —
// so the reference exercises the exact same index arithmetic for zero and
// nonzero coefficients alike.
func (r *Ring) MulPolyNaive(p1, p2, p3 *Poly) {
	l := minLevel(p1, p2, p3)
	n := r.N
	par.For(l+1, par.Grain(n*n), func(start, end int) {
		c := r.getBuf()
		defer r.putBuf(c)
		for i := start; i < end; i++ {
			m := r.Mods[i]
			q := r.Moduli[i]
			a, b := p1.Coeffs[i], p2.Coeffs[i]
			for j := range c {
				c[j] = 0
			}
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					prod := nt.MulMod(a[j], b[k], m)
					idx := j + k
					if idx >= n {
						c[idx-n] = nt.Sub(c[idx-n], prod, q)
					} else {
						c[idx] = nt.Add(c[idx], prod, q)
					}
				}
			}
			copy(p3.Coeffs[i], c)
		}
	})
}
