package vm

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"

	"antace/internal/fault"
)

// TestRunCtxRecoversInjectedPanic: an armed vm.instr.panic mid-program
// surfaces as a typed *fault.RuntimeError, and the machine stays usable
// for the next run — the recovery discards scratch pools instead of the
// process.
func TestRunCtxRecoversInjectedPanic(t *testing.T) {
	t.Cleanup(fault.Disarm)
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, nil)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, vres.InLayout.L)
	ct, err := client.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}

	// Panic on the third instruction of the first run only.
	if err := fault.Arm("vm.instr.panic:1:2"); err != nil {
		t.Fatal(err)
	}
	_, err = machine.RunCtx(context.Background(), res.Module, ct)
	var re *fault.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("RunCtx returned %v, want *fault.RuntimeError", err)
	}
	if re.Code != fault.CodeEvalPanic || len(re.Stack) == 0 {
		t.Fatalf("RuntimeError %+v, want code %s with a stack", re, fault.CodeEvalPanic)
	}

	// The fault window is exhausted; the same machine evaluates cleanly.
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		t.Fatalf("machine unusable after recovered panic: %v", err)
	}
}

// TestRunCtxInjectedError: vm.instr.err fails the instruction with a
// returned error carrying the injected cause, no panic involved.
func TestRunCtxInjectedError(t *testing.T) {
	t.Cleanup(fault.Disarm)
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("vm.instr.err:1:0"); err != nil {
		t.Fatal(err)
	}
	_, err = machine.RunCtx(context.Background(), res.Module, ct)
	var inj *fault.InjectedError
	if !errors.As(err, &inj) || inj.Point != fault.VMInstrErr {
		t.Fatalf("RunCtx returned %v, want wrapped *fault.InjectedError", err)
	}
}

// TestRunCtxCancelThenPanicPoint pins ordering (a): the context is
// cancelled before the armed panic instruction is reached, so the run
// aborts with the context error and the fault never fires.
func TestRunCtxCancelThenPanicPoint(t *testing.T) {
	t.Cleanup(fault.Disarm)
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	// Arm far into the program; cancel before running.
	if err := fault.Arm("vm.instr.panic:1:3"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = machine.RunCtx(ctx, res.Module, ct)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx returned %v, want context.Canceled", err)
	}
	if fault.TotalFired() != 0 {
		t.Fatalf("fault fired despite prior cancellation: %+v", fault.Snapshot())
	}
}

// TestRunCtxPanicThenCancel pins ordering (b): the panic fires on the
// first instruction, before the (late) cancellation, so the typed panic
// error wins.
func TestRunCtxPanicThenCancel(t *testing.T) {
	t.Cleanup(fault.Disarm)
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("vm.instr.panic:1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, err = machine.RunCtx(ctx, res.Module, ct)
	cancel() // cancellation arrives after the panic was already converted
	var re *fault.RuntimeError
	if !errors.As(err, &re) || re.Code != fault.CodeEvalPanic {
		t.Fatalf("RunCtx returned %v, want EVAL_PANIC RuntimeError", err)
	}
}

// TestRunCtxCancellationRacesPanic drives the two abort paths against
// each other under -race: a worker goroutine runs a program whose
// mid-program instruction is armed to panic while another goroutine
// cancels concurrently. Whichever side wins, the outcome must be one of
// the two typed failures and the machine must survive to run again.
func TestRunCtxCancellationRacesPanic(t *testing.T) {
	t.Cleanup(fault.Disarm)
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 20
	for i := 0; i < rounds; i++ {
		// Re-arm each round; alternate the armed instruction so the
		// panic lands at different depths relative to the cancel.
		if err := fault.Arm("vm.instr.panic:1:" + strconv.Itoa(i%4)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel()
		}()
		_, err := machine.RunCtx(ctx, res.Module, ct)
		wg.Wait()
		var re *fault.RuntimeError
		switch {
		case errors.Is(err, context.Canceled):
		case errors.As(err, &re) && re.Code == fault.CodeEvalPanic:
		default:
			t.Fatalf("round %d: RunCtx returned %v, want Canceled or EVAL_PANIC", i, err)
		}
	}

	// After twenty recovered crashes and cancellations, the machine and
	// its (possibly repeatedly discarded) scratch pools still evaluate
	// correctly.
	fault.Disarm()
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		t.Fatalf("machine broken after race rounds: %v", err)
	}
}
