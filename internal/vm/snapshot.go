package vm

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/ir"
)

// Execution snapshots make a long-running encrypted inference
// resumable across a process crash: a snapshot is the program counter
// plus every live ciphertext register, serialized with the existing
// ckks wire format. Plaintext registers are deliberately NOT included
// — they are all produced by ckks.encode of compile-time constants
// (model weights), so a resume re-encodes the ones still needed, which
// keeps snapshots proportional to the handful of live ciphertexts
// instead of the whole model.
//
// A snapshot embeds a fingerprint of the instruction stream it was
// taken against; Restore refuses a snapshot from a different program,
// so a daemon recompiled against a new model cannot resume state whose
// register numbering no longer matches.

// CheckpointPolicy makes RunCtx emit snapshots while it executes:
// after every EveryN instructions, or whenever Every has elapsed since
// the last snapshot, whichever fires first (either may be zero to
// disable that trigger). Sink receives the serialized snapshot; a Sink
// error does not abort the evaluation — checkpointing is best effort,
// and the sink owns counting its own failures.
type CheckpointPolicy struct {
	EveryN int
	Every  time.Duration
	Sink   func(snap []byte) error
}

func (p *CheckpointPolicy) active() bool {
	return p != nil && p.Sink != nil && (p.EveryN > 0 || p.Every > 0)
}

// execState is a paused execution: the index of the next instruction
// and the register files. It lives on the Machine only between Restore
// and the RunCtx call that consumes it.
type execState struct {
	pc  int
	cts map[*ir.Value]*ckks.Ciphertext
	pts map[*ir.Value]*ckks.Plaintext
}

const snapMagic = "ACEVMS1\n"

// Fingerprint hashes a function's instruction stream — ops, value
// numbering, parameter list — so snapshots are bound to the exact
// program they were taken against. Attribute payloads (weights) are
// excluded: the compiler derives value numbering and ops from them
// deterministically, and hashing every weight on each checkpoint would
// dominate the checkpoint cost.
func Fingerprint(f *ir.Func) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	word(uint64(len(f.Params)))
	for _, p := range f.Params {
		word(uint64(p.ID))
	}
	for _, in := range f.Body {
		h.Write([]byte(in.Op))
		word(uint64(in.Result.ID))
		word(uint64(len(in.Args)))
		for _, a := range in.Args {
			word(uint64(a.ID))
		}
	}
	if f.Ret != nil {
		word(uint64(f.Ret.ID))
	}
	return h.Sum64()
}

// lastUses maps every value to the last instruction index that reads
// it; the return value is pinned to len(Body) so it is live forever.
func lastUses(f *ir.Func) map[*ir.Value]int {
	last := make(map[*ir.Value]int, len(f.Body))
	for idx, in := range f.Body {
		for _, a := range in.Args {
			last[a] = idx
		}
	}
	if f.Ret != nil {
		last[f.Ret] = len(f.Body)
	}
	return last
}

// marshalState serializes a paused execution: magic, program
// fingerprint, pc, then each live ciphertext register as (value ID,
// length-prefixed ckks wire bytes).
func marshalState(f *ir.Func, st *execState, last map[*ir.Value]int) ([]byte, error) {
	type reg struct {
		id int
		ct *ckks.Ciphertext
	}
	var live []reg
	for v, ct := range st.cts {
		if last[v] >= st.pc {
			live = append(live, reg{v.ID, ct})
		}
	}
	buf := []byte(snapMagic)
	buf = binary.LittleEndian.AppendUint64(buf, Fingerprint(f))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(st.pc))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(live)))
	for _, r := range live {
		ctb, err := r.ct.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("vm: snapshot register %%v%d: %w", r.id, err)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ctb)))
		buf = append(buf, ctb...)
	}
	return buf, nil
}

// Snapshot serializes the machine's paused execution state (present
// between a Restore and the RunCtx that consumes it). Checkpoints
// during a run are produced internally by the CheckpointPolicy; this
// accessor exists for tests and tooling.
func (m *Machine) Snapshot(mod *ir.Module) ([]byte, error) {
	if m.st == nil {
		return nil, fmt.Errorf("vm: no paused execution to snapshot")
	}
	f := mod.Main()
	if f == nil {
		return nil, fmt.Errorf("vm: empty module")
	}
	return marshalState(f, m.st, lastUses(f))
}

// Restore primes the machine with a serialized snapshot; the next
// RunCtx call continues from the recorded program counter instead of
// instruction 0. It validates framing, the program fingerprint and
// every register's identity, returning an error — never panicking —
// on torn or corrupted input.
func (m *Machine) Restore(mod *ir.Module, data []byte) error {
	f := mod.Main()
	if f == nil {
		return fmt.Errorf("vm: empty module")
	}
	if len(data) < len(snapMagic)+16 {
		return fmt.Errorf("vm: truncated snapshot (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("vm: bad snapshot magic")
	}
	rest := data[len(snapMagic):]
	fp := binary.LittleEndian.Uint64(rest)
	if want := Fingerprint(f); fp != want {
		return fmt.Errorf("vm: snapshot fingerprint %016x does not match program %016x", fp, want)
	}
	pc := int(binary.LittleEndian.Uint32(rest[8:]))
	count := int(binary.LittleEndian.Uint32(rest[12:]))
	rest = rest[16:]
	if pc < 0 || pc > len(f.Body) {
		return fmt.Errorf("vm: snapshot pc %d outside program of %d instructions", pc, len(f.Body))
	}
	// One frame per register needs at least its 8-byte header; a forged
	// count cannot force a large allocation.
	if count < 0 || count > len(rest)/8+1 {
		return fmt.Errorf("vm: implausible snapshot register count %d for %d bytes", count, len(rest))
	}

	byID := make(map[int]*ir.Value, len(f.Body)+len(f.Params))
	for _, p := range f.Params {
		byID[p.ID] = p
	}
	for _, in := range f.Body {
		byID[in.Result.ID] = in.Result
	}

	st := &execState{
		pc:  pc,
		cts: make(map[*ir.Value]*ckks.Ciphertext, count),
		pts: map[*ir.Value]*ckks.Plaintext{},
	}
	for i := 0; i < count; i++ {
		if len(rest) < 8 {
			return fmt.Errorf("vm: truncated snapshot register %d", i)
		}
		id := int(binary.LittleEndian.Uint32(rest))
		n := int(binary.LittleEndian.Uint32(rest[4:]))
		rest = rest[8:]
		if n < 0 || n > len(rest) {
			return fmt.Errorf("vm: snapshot register %d claims %d bytes, %d remain", i, n, len(rest))
		}
		v, ok := byID[id]
		if !ok {
			return fmt.Errorf("vm: snapshot register %%v%d not defined by the program", id)
		}
		if _, dup := st.cts[v]; dup {
			return fmt.Errorf("vm: duplicate snapshot register %%v%d", id)
		}
		ct := &ckks.Ciphertext{}
		if err := ct.UnmarshalBinary(rest[:n]); err != nil {
			return fmt.Errorf("vm: snapshot register %%v%d: %w", id, err)
		}
		st.cts[v] = ct
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("vm: %d trailing snapshot bytes", len(rest))
	}
	m.st = st
	return nil
}

// replayEncodes re-materializes the plaintext registers a resumed
// execution still needs: every encode instruction before pc whose
// result is read at or after pc is re-run. Encoding a compile-time
// constant is deterministic, so the resumed run is bit-identical to
// one that never paused.
func (m *Machine) replayEncodes(f *ir.Func, st *execState, last map[*ir.Value]int) error {
	for idx := 0; idx < st.pc; idx++ {
		in := f.Body[idx]
		if in.Op != ckksir.OpEncode || last[in.Result] < st.pc {
			continue
		}
		vec, ok := in.Args[0].Const.([]float64)
		if !ok {
			return fmt.Errorf("vm: resume instr %d: encode argument is not a vector constant", idx)
		}
		pt, err := m.enc.EncodeReal(vec, in.AttrInt("level", 0), in.AttrFloat("scale", 0))
		if err != nil {
			return fmt.Errorf("vm: resume instr %d: %w", idx, err)
		}
		st.pts[in.Result] = pt
	}
	return nil
}
