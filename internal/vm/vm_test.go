package vm

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/obs"
	"antace/internal/onnx"
	"antace/internal/ring"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

func compileLinear(t testing.TB) (*ckksir.Result, *vecir.Result) {
	t.Helper()
	m, err := onnx.BuildLinear(16, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ckksir.Lower(sm, ckksir.Options{Mode: ckksir.BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	return res, vres
}

func TestMachineRunsLinearModel(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(7))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%5)/5 - 0.4
	}
	ct, err := client.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(res.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	got := client.Decrypt(out)
	// Reference: vector executor on the same slots.
	want, err := vecir.Run(vres.Module.Main(), input)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		slot := vres.OutLayout.Slot(k, 0, 0)
		if math.Abs(got[slot]-want[slot]) > 1e-4 {
			t.Fatalf("class %d: vm %g vs vec %g", k, got[slot], want[slot])
		}
	}
	if machine.KeyCount != len(res.Rotations) {
		t.Fatalf("key count %d, analysis says %d", machine.KeyCount, len(res.Rotations))
	}
}

// TestRunCtxCancellation proves server deadlines reach the run loop: a
// context canceled mid-flight aborts the program between instructions.
func TestRunCtxCancellation(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(11))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := machine.RunCtx(ctx, res.Module, ct); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, err := machine.RunCtx(ctx2, res.Module, ct); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected context.DeadlineExceeded, got %v", err)
	}

	// A live context still runs to completion.
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		t.Fatal(err)
	}
}

// TestNewMachineFromWireKeys replays the serving flow in miniature: the
// client generates keys, ships them as bytes, and a machine built from
// the deserialized set produces the same decrypted result as the
// locally keyed one.
func TestNewMachineFromWireKeys(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(12))
	if err != nil {
		t.Fatal(err)
	}

	params, err := ckks.NewParameters(res.Literal)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(12))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys(res.Rotations, false, sk),
	}
	wire, err := keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got ckks.EvaluationKeySet
	if err := got.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}

	remote := NewMachine(params, &got, nil, nil)
	input := make([]float64, vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%3)/3 - 0.3
	}
	ct, err := client.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := machine.Run(res.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := remote.Run(res.Module, ct)
	if err != nil {
		t.Fatal(err)
	}
	a, b := client.Decrypt(out1), client.Decrypt(out2)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-4 {
			t.Fatalf("slot %d: local keys %g, wire keys %g", i, a[i], b[i])
		}
	}
}

func TestEncryptRejectsWrongLength(t *testing.T) {
	res, vres := compileLinear(t)
	_, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Encrypt(make([]float64, 3)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestMachineDetectsCompilerMismatch(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(9))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the tracked level of one instruction: the VM must notice.
	var victim *ir.Instr
	for _, in := range res.Module.Main().Body {
		if in.Result.Type.Kind == ir.KindCipher {
			victim = in
			break
		}
	}
	if victim == nil {
		t.Fatal("no cipher instruction found")
	}
	victim.Result.Level += 3
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.Run(res.Module, ct); err == nil {
		t.Fatal("expected a level-mismatch error")
	}
}

func TestMachineRejectsBootstrapWithoutBootstrapper(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(10))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Module.Main()
	// Splice a bootstrap op onto the parameter (ill-typed level-wise, but
	// the bootstrapper check fires first).
	bt := &ir.Instr{Op: ckksir.OpBootstrap, Args: []*ir.Value{f.Params[0]},
		Attrs: map[string]any{"target": 1}, Result: f.NewValue("", ir.CipherType(vres.InLayout.L))}
	bt.Result.Def = bt
	f.Body = append([]*ir.Instr{bt}, f.Body...)
	ct, _ := client.Encrypt(make([]float64, vres.InLayout.L))
	if _, err := machine.Run(res.Module, ct); err == nil {
		t.Fatal("expected missing-bootstrapper error")
	}
}

// TestRunProfileInstrumentation proves the profiler sees every executed
// instruction: counts match the program body, the op-time sum tracks
// the wall-clock run within the 10% budget the paper-figure check
// demands, and the trajectory mirrors each result's level and scale.
func TestRunProfileInstrumentation(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(21))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}

	machine.Prof = obs.NewRunProfile()
	start := time.Now()
	if _, err := machine.Run(res.Module, ct); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)

	body := res.Module.Main().Body
	if got := machine.Prof.Steps(); got != uint64(len(body)) {
		t.Fatalf("profiled %d instructions, program has %d", got, len(body))
	}
	// Per-op counts must match the static instruction mix.
	wantByOp := map[string]uint64{}
	for _, in := range body {
		wantByOp[in.Op]++
	}
	for _, st := range machine.Prof.Ops() {
		if st.Count != wantByOp[st.Op] {
			t.Errorf("op %s: profiled %d, program has %d", st.Op, st.Count, wantByOp[st.Op])
		}
	}
	if sum := machine.Prof.Total(); sum > wall || float64(sum) < 0.9*float64(wall)-float64(5*time.Millisecond) {
		t.Errorf("op-time sum %v outside 10%% of wall %v", sum, wall)
	}
	// Trajectory: one point per ciphertext-producing instruction, levels
	// and scales as the compiler tracked them.
	for _, pt := range machine.Prof.Trajectory {
		in := body[pt.PC]
		if in.Op != pt.Op {
			t.Fatalf("trajectory pc %d records op %s, program has %s", pt.PC, pt.Op, in.Op)
		}
		if in.Result.Type.Kind != ir.KindCipher3 && pt.Level != in.Result.Level {
			t.Errorf("trajectory pc %d level %d, compiler %d", pt.PC, pt.Level, in.Result.Level)
		}
	}

	// A second run on the same machine with a fresh profile starts clean.
	machine.Prof = obs.NewRunProfile()
	if _, err := machine.Run(res.Module, ct); err != nil {
		t.Fatal(err)
	}
	if got := machine.Prof.Steps(); got != uint64(len(body)) {
		t.Fatalf("second run profiled %d instructions, want %d", got, len(body))
	}
}
