package vm

import (
	"context"
	"testing"

	"antace/internal/ring"
)

// FuzzSnapshotRestore feeds arbitrary bytes to Machine.Restore:
// corrupt or truncated checkpoint blobs must return an error, never
// panic, and a valid snapshot must survive a mutation-free round trip.
func FuzzSnapshotRestore(f *testing.F) {
	res, vres := compileLinear(f)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(61))
	if err != nil {
		f.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		f.Fatal(err)
	}
	var snap []byte
	machine.Ckpt = &CheckpointPolicy{EveryN: 2, Sink: func(s []byte) error {
		snap = append([]byte(nil), s...)
		return nil
	}}
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		f.Fatal(err)
	}
	if snap == nil {
		f.Fatal("no checkpoint captured")
	}
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte("ACEVMS1\n"))
	f.Add(snap[:len(snap)/2])
	truncHeader := append([]byte(nil), snap[:24]...)
	f.Add(truncHeader)

	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMachine(machine.Params, machine.Eval.Keys(), machine.Boot, nil)
		if err := m.Restore(res.Module, data); err != nil {
			return
		}
		// A blob that restores cleanly must also execute to completion:
		// the fingerprint pins the program, Unmarshal pins each
		// register, so the only accepted inputs are real snapshots.
		if _, err := m.RunCtx(context.Background(), res.Module, nil); err != nil {
			t.Logf("restored snapshot failed to run: %v", err)
		}
	})
}
