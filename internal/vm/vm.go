// Package vm executes compiled CKKS IR modules against the real RNS-CKKS
// runtime: it instantiates the selected parameters, generates exactly the
// keys the compiler's analysis requested, runs the instruction stream on
// encrypted data, and asserts at every step that the runtime's level and
// scale match what the compiler tracked — a strong end-to-end check of
// the whole lowering pipeline.
package vm

import (
	"context"
	"fmt"
	"math"
	"time"

	"antace/internal/batch"
	"antace/internal/bootstrap"
	"antace/internal/ckks"
	"antace/internal/ckksir"
	"antace/internal/fault"
	"antace/internal/ir"
	"antace/internal/obs"
	"antace/internal/poly"
)

// Machine is the server side: parameters, evaluation keys and the
// bootstrapper. It never sees the secret key.
type Machine struct {
	Params *ckks.Parameters
	Eval   *ckks.Evaluator
	Boot   *bootstrap.Bootstrapper
	enc    *ckks.Encoder
	// KeyCount reports the number of Galois keys generated (the paper's
	// Figure 7 memory analysis).
	KeyCount int
	// Ckpt, when set, makes RunCtx emit resumable snapshots of the
	// execution on the policy's cadence (see CheckpointPolicy).
	Ckpt *CheckpointPolicy
	// StepDelay, when positive, sleeps between instructions. It exists
	// for chaos and durability testing — stretching a fast test program
	// into one long enough to crash mid-flight deterministically — and
	// must stay zero in production.
	StepDelay time.Duration
	// Prof, when set, receives one Record per executed instruction and
	// one Step per produced ciphertext (the level/scale trajectory of
	// the paper's Figure 6). Instruction timing starts before the
	// StepDelay sleep, so summed op times track wall-clock evaluation
	// time even in stretched chaos tests.
	Prof *obs.RunProfile

	// st holds execution state restored by Restore until the next
	// RunCtx consumes it.
	st *execState
}

// Client is the paper's ANT-ACE-generated encryptor/decryptor pair: it
// owns the secret key and the packing configuration.
type Client struct {
	Params     *ckks.Parameters
	Encoder    *ckks.Encoder
	Encryptor  *ckks.Encryptor
	Decryptor  *ckks.Decryptor
	InputLevel int
	InputScale float64
	VecLen     int
	// Stride > 1 targets a lane-transformed module (cross-request slot
	// batching): Encrypt places the logical vector strided into lane 0
	// and DecryptLane extracts one lane of a shared result. Zero or one
	// is the plain solo layout.
	Stride int
}

// New builds the machine and client for a compiled program. A nil seed
// draws fresh randomness.
func New(res *ckksir.Result, vecLen int, seed *[32]byte) (*Machine, *Client, error) {
	params, err := ckks.NewParameters(res.Literal)
	if err != nil {
		return nil, nil, err
	}
	kg := ckks.NewKeyGenerator(params, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)

	var bt *bootstrap.Bootstrapper
	rotations := append([]int(nil), res.Rotations...)
	needConj := false
	if res.Boot != nil {
		bt, err = bootstrap.NewBootstrapper(params, *res.Boot, res.InputScale)
		if err != nil {
			return nil, nil, err
		}
		rotations = append(rotations, bt.RequiredRotations()...)
		needConj = true
	}
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys(rotations, needConj, sk),
	}
	m := &Machine{
		Params:   params,
		Eval:     ckks.NewEvaluator(params, keys),
		Boot:     bt,
		enc:      ckks.NewEncoder(params),
		KeyCount: len(keys.Galois),
	}
	c := &Client{
		Params:     params,
		Encoder:    ckks.NewEncoder(params),
		Encryptor:  ckks.NewEncryptor(params, pk),
		Decryptor:  ckks.NewDecryptor(params, sk),
		InputLevel: res.InputLevel,
		InputScale: res.InputScale,
		VecLen:     vecLen,
	}
	return m, c, nil
}

// NewMachine assembles a server machine from shared, read-only parts and
// one client's evaluation keys: the serving layer holds a single set of
// parameters, one encoder and (when the program bootstraps) one
// bootstrapper, all safe to share across machines, while the Evaluator is
// created fresh here because it is per-goroutine. The keys typically
// arrive over the wire (ckks.EvaluationKeySet.UnmarshalBinary) rather
// than from a local KeyGenerator — the server never sees a secret key.
func NewMachine(params *ckks.Parameters, keys *ckks.EvaluationKeySet, bt *bootstrap.Bootstrapper, enc *ckks.Encoder) *Machine {
	if enc == nil {
		enc = ckks.NewEncoder(params)
	}
	return &Machine{
		Params:   params,
		Eval:     ckks.NewEvaluator(params, keys),
		Boot:     bt,
		enc:      enc,
		KeyCount: len(keys.Galois),
	}
}

// Encrypt packs and encrypts a slot vector at the compiled input level
// and scale.
func (c *Client) Encrypt(values []float64) (*ckks.Ciphertext, error) {
	if len(values) != c.VecLen {
		return nil, fmt.Errorf("vm: input length %d, compiled for %d", len(values), c.VecLen)
	}
	if c.Stride > 1 {
		exp, err := batch.ExpandLane(values, 0, c.Stride)
		if err != nil {
			return nil, err
		}
		values = exp
	}
	pt, err := c.Encoder.EncodeReal(values, c.InputLevel, c.InputScale)
	if err != nil {
		return nil, err
	}
	return c.Encryptor.Encrypt(pt), nil
}

// Decrypt decrypts and decodes back to the slot vector (lane 0 when the
// client targets a lane-transformed module).
func (c *Client) Decrypt(ct *ckks.Ciphertext) []float64 {
	return c.DecryptLane(ct, 0)
}

// DecryptLane decrypts a shared batched result and returns the logical
// vector riding the given lane. With Stride <= 1 only lane 0 exists and
// the decode is the plain solo layout.
func (c *Client) DecryptLane(ct *ckks.Ciphertext, lane int) []float64 {
	if c.Stride <= 1 {
		return c.Encoder.DecodeReal(c.Decryptor.Decrypt(ct), c.VecLen)
	}
	wide := c.Encoder.DecodeReal(c.Decryptor.Decrypt(ct), c.VecLen*c.Stride)
	out, err := batch.ExtractLane(wide, lane, c.Stride)
	if err != nil {
		panic(fmt.Sprintf("vm: lane %d out of range for stride %d", lane, c.Stride))
	}
	return out
}

// Run executes the module's main function on an encrypted input.
func (m *Machine) Run(mod *ir.Module, input *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	return m.RunCtx(context.Background(), mod, input)
}

// RunCtx executes the module's main function on an encrypted input,
// checking ctx between instructions: when a serving deadline expires the
// run aborts with ctx.Err() instead of completing doomed work. One
// instruction is the abort granularity — a bootstrap, the longest single
// op, still runs to completion once started.
//
// RunCtx is a panic-isolation boundary: a panic anywhere below it — the
// evaluator, the ring engine, a par worker — is recovered, converted to
// a typed *fault.RuntimeError (code EVAL_PANIC, stack attached), and
// returned like any other evaluation failure. Because the panic unwound
// through pooled scratch in an unknown state, the recovery also discards
// the parameter set's scratch pools before returning, so no suspect
// buffer is ever recycled into a later evaluation.
// A restored snapshot (see Restore) makes RunCtx continue from the
// recorded program counter instead of instruction 0; the resumed run
// produces bit-identical output to one that never paused, because
// every CKKS operation is deterministic given the same keys and
// registers. When m.Ckpt is set, RunCtx emits resumable snapshots on
// the policy's cadence between instructions.
func (m *Machine) RunCtx(ctx context.Context, mod *ir.Module, input *ckks.Ciphertext) (out *ckks.Ciphertext, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m.Params.DiscardScratch()
			out, err = nil, fault.FromPanic("vm.RunCtx", rec)
		}
	}()
	f := mod.Main()
	if f == nil {
		return nil, fmt.Errorf("vm: empty module")
	}
	if len(f.Params) != 1 {
		return nil, fmt.Errorf("vm: expected one parameter, have %d", len(f.Params))
	}
	ev := m.Eval
	// Attribute fused key-switch kernel time (decomp_modup, hw_modmuladd,
	// mod_down) to the run profile alongside the per-instruction records.
	// The observer is cleared on exit so a profile from one run never
	// receives kernel events from a later one.
	if m.Prof != nil {
		ev.KernelObserver = m.Prof.RecordKernel
		defer func() { ev.KernelObserver = nil }()
	}

	// Adopt restored state, or start fresh. The state is popped off the
	// machine either way: after a failure it must not leak into a later
	// run.
	st := m.st
	m.st = nil
	var last map[*ir.Value]int
	if m.Ckpt.active() || st != nil {
		last = lastUses(f)
	}
	if st == nil {
		if input == nil {
			return nil, fmt.Errorf("vm: nil input and no restored snapshot")
		}
		st = &execState{
			cts: map[*ir.Value]*ckks.Ciphertext{f.Params[0]: input},
			pts: map[*ir.Value]*ckks.Plaintext{},
		}
		if err := m.check(f.Params[0], input); err != nil {
			return nil, fmt.Errorf("vm: input: %w", err)
		}
	} else if err := m.replayEncodes(f, st, last); err != nil {
		return nil, err
	}
	cts, pts := st.cts, st.pts

	sinceCkpt := 0
	lastCkpt := time.Now()
	for idx := st.pc; idx < len(f.Body); idx++ {
		in := f.Body[idx]
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("vm: aborted before instr %d (%s): %w", idx, in.Op, err)
		}
		instrStart := time.Now()
		if m.StepDelay > 0 {
			time.Sleep(m.StepDelay)
		}
		// Deterministic chaos hooks: an armed vm.instr.err fails this
		// instruction with a returned error; vm.instr.panic crashes it,
		// exercising the recover boundary above.
		fault.InjectPanic(fault.VMInstrPanic)
		if ferr := fault.Inject(fault.VMInstrErr); ferr != nil {
			return nil, fmt.Errorf("vm: instr %d (%s): %w", idx, in.Op, ferr)
		}
		var err error
		switch in.Op {
		case ckksir.OpEncode:
			vec, ok := in.Args[0].Const.([]float64)
			if !ok {
				return nil, fmt.Errorf("vm: encode argument is not a vector constant")
			}
			var pt *ckks.Plaintext
			pt, err = m.enc.EncodeReal(vec, in.AttrInt("level", 0), in.AttrFloat("scale", 0))
			pts[in.Result] = pt
		case ckksir.OpAdd:
			cts[in.Result], err = ev.Add(cts[in.Args[0]], cts[in.Args[1]])
		case ckksir.OpAddPlain:
			cts[in.Result], err = ev.AddPlain(cts[in.Args[0]], pts[in.Args[1]])
		case ckksir.OpMulPlain:
			cts[in.Result] = ev.MulPlain(cts[in.Args[0]], pts[in.Args[1]])
		case ckksir.OpMul:
			cts[in.Result], err = ev.Mul(cts[in.Args[0]], cts[in.Args[1]])
		case ckksir.OpRelin:
			cts[in.Result], err = ev.Relinearize(cts[in.Args[0]])
		case ckksir.OpRescale:
			cts[in.Result], err = ev.Rescale(cts[in.Args[0]])
		case ckksir.OpRotate:
			cts[in.Result], err = ev.Rotate(cts[in.Args[0]], in.AttrInt("k", 0))
		case ckksir.OpModSwitch:
			ct := cts[in.Args[0]].CopyNew()
			err = ev.DropLevel(ct, in.AttrInt("down", 0))
			cts[in.Result] = ct
		case ckksir.OpMulConst:
			cts[in.Result] = ev.MulByConst(cts[in.Args[0]], in.AttrFloat("c", 1), in.AttrFloat("const_scale", 1))
		case ckksir.OpPoly:
			coeffs := in.Attrs["coeffs"].([]float64)
			var p *poly.Polynomial
			if basis, _ := in.Attrs["basis"].(string); basis == "cheb" {
				p = &poly.Polynomial{Coeffs: coeffs, Basis: poly.Chebyshev,
					A: in.AttrFloat("a", -1), B: in.AttrFloat("b", 1)}
			} else {
				p = poly.NewMonomial(coeffs...)
			}
			cts[in.Result], err = ev.EvaluatePolynomial(cts[in.Args[0]], p, in.AttrFloat("target", 0))
		case ckksir.OpBootstrap:
			if m.Boot == nil {
				return nil, fmt.Errorf("vm: program contains bootstrap but no bootstrapper configured")
			}
			cts[in.Result], err = m.Boot.Bootstrap(ev, cts[in.Args[0]], in.AttrInt("target", 0))
		case ckksir.OpReinterpret:
			ct := cts[in.Args[0]].CopyNew()
			ct.Scale /= in.AttrFloat("factor", 1)
			cts[in.Result] = ct
		default:
			return nil, fmt.Errorf("vm: unknown op %q", in.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("vm: instr %d (%s): %w", idx, in.Op, err)
		}
		if m.Prof != nil {
			m.Prof.Record(in.Op, time.Since(instrStart))
		}
		if ct := cts[in.Result]; ct != nil {
			if err := m.check(in.Result, ct); err != nil {
				return nil, fmt.Errorf("vm: instr %d (%s): %w", idx, in.Op, err)
			}
			if m.Prof != nil {
				m.Prof.Step(idx, in.Op, ct.Level(), ct.Scale)
			}
		}
		st.pc = idx + 1
		if m.Ckpt.active() {
			sinceCkpt++
			if (m.Ckpt.EveryN > 0 && sinceCkpt >= m.Ckpt.EveryN) ||
				(m.Ckpt.Every > 0 && time.Since(lastCkpt) >= m.Ckpt.Every) {
				snap, serr := marshalState(f, st, last)
				if serr == nil {
					// Sink errors are deliberately swallowed: losing a
					// checkpoint only costs resume granularity, never
					// the evaluation; the sink counts its own failures.
					_ = m.Ckpt.Sink(snap)
				}
				sinceCkpt = 0
				lastCkpt = time.Now()
			}
		}
	}
	out, ok := cts[f.Ret]
	if !ok {
		return nil, fmt.Errorf("vm: return value never computed")
	}
	return out, nil
}

// check asserts the runtime state matches the compiler's tracking.
func (m *Machine) check(v *ir.Value, ct *ckks.Ciphertext) error {
	if v.Type.Kind == ir.KindCipher3 {
		return nil // transient degree-2 value; level/scale checked after relin
	}
	if ct.Level() != v.Level {
		return fmt.Errorf("level mismatch: runtime %d, compiler %d", ct.Level(), v.Level)
	}
	if v.Scale != 0 {
		if rel := math.Abs(ct.Scale/v.Scale - 1); rel > 1e-6 {
			return fmt.Errorf("scale mismatch: runtime %g, compiler %g", ct.Scale, v.Scale)
		}
	}
	return nil
}
