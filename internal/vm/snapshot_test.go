package vm

import (
	"bytes"
	"context"
	"testing"

	"antace/internal/ring"
)

// TestSnapshotResumeBitIdentical is the durability layer's core
// invariant: for every checkpoint taken during a run, restoring it on
// a fresh machine and executing the remaining instructions yields a
// result bit-identical to the uninterrupted run.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(51))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, vres.InLayout.L)
	for i := range input {
		input[i] = float64(i%7)/7 - 0.3
	}
	ct, err := client.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint after every instruction, capturing each snapshot.
	var snaps [][]byte
	machine.Ckpt = &CheckpointPolicy{EveryN: 1, Sink: func(s []byte) error {
		snaps = append(snaps, append([]byte(nil), s...))
		return nil
	}}
	want, err := machine.RunCtx(context.Background(), res.Module, ct.CopyNew())
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	nInstr := len(res.Module.Main().Body)
	if len(snaps) != nInstr {
		t.Fatalf("took %d snapshots over %d instructions", len(snaps), nInstr)
	}

	// Resume from a spread of checkpoints, including the very last one
	// (pc == len(Body): no instructions left to run).
	for _, i := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		m2 := NewMachine(machine.Params, machine.Eval.Keys(), machine.Boot, nil)
		if err := m2.Restore(res.Module, snaps[i]); err != nil {
			t.Fatalf("restore snapshot %d: %v", i, err)
		}
		got, err := m2.RunCtx(context.Background(), res.Module, nil)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", i, err)
		}
		gotBytes, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("resume from snapshot %d diverged from the uninterrupted run", i)
		}
	}
}

// TestRestoreRejectsWrongProgram: a snapshot is bound to its
// instruction stream; restoring it against a different module must be
// refused by the fingerprint check.
func TestRestoreRejectsWrongProgram(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(52))
	if err != nil {
		t.Fatal(err)
	}
	input := make([]float64, vres.InLayout.L)
	ct, err := client.Encrypt(input)
	if err != nil {
		t.Fatal(err)
	}
	var snap []byte
	machine.Ckpt = &CheckpointPolicy{EveryN: 1, Sink: func(s []byte) error {
		if snap == nil {
			snap = append([]byte(nil), s...)
		}
		return nil
	}}
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		t.Fatal(err)
	}

	// Mutate a copy of the program: drop the last instruction.
	res2, _ := compileLinear(t)
	main := res2.Module.Main()
	main.Body = main.Body[:len(main.Body)-1]
	m2 := NewMachine(machine.Params, machine.Eval.Keys(), machine.Boot, nil)
	if err := m2.Restore(res2.Module, snap); err == nil {
		t.Fatal("snapshot restored against a different program")
	}
}

// TestRunCtxNilInputWithoutSnapshot: a fresh run demands an input.
func TestRunCtxNilInputWithoutSnapshot(t *testing.T) {
	res, vres := compileLinear(t)
	machine, _, err := New(res, vres.InLayout.L, ring.SeedFromInt(53))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := machine.RunCtx(context.Background(), res.Module, nil); err == nil {
		t.Fatal("nil input without a restored snapshot must fail")
	}
}

// TestSnapshotLiveSetShrinks: snapshots carry only registers still
// read by the remaining instructions, so late checkpoints must not
// grow monotonically with program position.
func TestSnapshotLiveSetShrinks(t *testing.T) {
	res, vres := compileLinear(t)
	machine, client, err := New(res, vres.InLayout.L, ring.SeedFromInt(54))
	if err != nil {
		t.Fatal(err)
	}
	ct, err := client.Encrypt(make([]float64, vres.InLayout.L))
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	machine.Ckpt = &CheckpointPolicy{EveryN: 1, Sink: func(s []byte) error {
		sizes = append(sizes, len(s))
		return nil
	}}
	if _, err := machine.RunCtx(context.Background(), res.Module, ct); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	maxLive := 0
	for _, s := range sizes {
		if s > maxLive {
			maxLive = s
		}
	}
	// The whole-program register file is strictly larger than any live
	// set mid-run for this program; a snapshot the size of the sum of
	// all registers would mean liveness is not applied.
	if maxLive*len(sizes) <= total {
		t.Fatalf("live-set filtering had no effect: max %d, total %d over %d snaps", maxLive, total, len(sizes))
	}
}
