package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DurationBuckets are the histogram upper bounds, in seconds, used for
// per-opcode and request-latency histograms. FHE op costs span five
// orders of magnitude between the reduced test profile (sub-millisecond
// adds) and paper-scale bootstraps (tens of seconds), so the buckets
// are decade-spaced with extra resolution in the millisecond range.
var DurationBuckets = []float64{
	1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10, 60,
}

// bucketIndex returns the first bucket whose bound holds d, or
// len(DurationBuckets) for the implicit +Inf bucket.
func bucketIndex(d time.Duration) int {
	s := d.Seconds()
	for i, b := range DurationBuckets {
		if s <= b {
			return i
		}
	}
	return len(DurationBuckets)
}

// TrajPoint is one step of a run's level-and-scale trajectory: after
// instruction PC (op Op) executed, the result ciphertext sat at Level
// with scale Scale. The sequence is the CKKS analogue of a flame graph
// x-axis — it shows exactly where the compiled program spends its
// multiplicative depth and where rescales and bootstraps restore it.
type TrajPoint struct {
	PC    int     `json:"pc"`
	Op    string  `json:"op"`
	Level int     `json:"level"`
	Scale float64 `json:"scale"`
}

// maxTrajPoints bounds one run's recorded trajectory; deeper programs
// record the first maxTrajPoints steps and count the rest in
// TrajDropped, so profiling memory stays O(1) per request.
const maxTrajPoints = 4096

// opRec accumulates one opcode's cost within a single run. buckets has
// len(DurationBuckets)+1 entries, the last being the +Inf overflow.
type opRec struct {
	count   uint64
	total   time.Duration
	max     time.Duration
	buckets []uint64
}

func newOpRec() *opRec {
	return &opRec{buckets: make([]uint64, len(DurationBuckets)+1)}
}

// FusedConstituents maps each fused kernel opcode — as reported by the
// runtime's KernelObserver and named by internal/polyir's FuseOperators
// pass — to the primitive opcodes whose work it subsumes. Live Figure 6
// comparisons against pre-fusion profiles read this to know which
// primitive rows a fused row replaced: poly.decomp_modup folds the digit
// decomposition, the RNS mod-up and the surrounding inverse/forward
// transforms into one pass; poly.hw_modmuladd folds the evaluation-key
// multiply and accumulate; the fused poly.mod_down kernel additionally
// absorbs the INTT/NTT pair that used to bracket the primitive mod_down.
//
// The strings are literals rather than polyir constants because obs is a
// stdlib-only leaf package; a test in polyir asserts they stay equal to
// the IR opcode names.
var FusedConstituents = map[string][]string{
	"poly.decomp_modup": {"poly.decomp", "poly.mod_up", "poly.hw_intt", "poly.hw_ntt"},
	"poly.hw_modmuladd": {"poly.hw_modmul", "poly.hw_modadd"},
	"poly.mod_down":     {"poly.mod_down", "poly.hw_intt", "poly.hw_ntt"},
}

// RunProfile records one execution's per-opcode costs and trajectory.
// A run is single-goroutine, so RunProfile is not synchronized; merge
// it into an Aggregate for cross-request accounting.
//
// Instruction-level costs (Record) and fused-kernel costs (RecordKernel)
// are kept in separate tables: kernel time is a sub-measurement *inside*
// instructions already counted by Record, so folding it into the op
// table would double-count evaluation time.
type RunProfile struct {
	ops     map[string]*opRec
	kernels map[string]*opRec

	Trajectory  []TrajPoint
	TrajDropped int
}

// NewRunProfile returns an empty per-run recorder.
func NewRunProfile() *RunProfile {
	return &RunProfile{
		ops:     make(map[string]*opRec, 16),
		kernels: make(map[string]*opRec, 4),
	}
}

func record(tab map[string]*opRec, op string, d time.Duration) {
	r := tab[op]
	if r == nil {
		r = newOpRec()
		tab[op] = r
	}
	r.count++
	r.total += d
	if d > r.max {
		r.max = d
	}
	r.buckets[bucketIndex(d)]++
}

// Record adds one instruction's duration under its opcode.
func (p *RunProfile) Record(op string, d time.Duration) {
	record(p.ops, op, d)
}

// RecordKernel adds one fused-kernel execution under its opcode. It has
// the signature of ckks.Evaluator.KernelObserver so the VM can wire it
// up directly.
func (p *RunProfile) RecordKernel(op string, d time.Duration) {
	record(p.kernels, op, d)
}

// Step appends one trajectory point, bounded by maxTrajPoints.
func (p *RunProfile) Step(pc int, op string, level int, scale float64) {
	if len(p.Trajectory) >= maxTrajPoints {
		p.TrajDropped++
		return
	}
	p.Trajectory = append(p.Trajectory, TrajPoint{PC: pc, Op: op, Level: level, Scale: scale})
}

// Steps reports how many instructions were recorded.
func (p *RunProfile) Steps() uint64 {
	var n uint64
	for _, r := range p.ops {
		n += r.count
	}
	return n
}

// Total sums all recorded instruction durations.
func (p *RunProfile) Total() time.Duration {
	var t time.Duration
	for _, r := range p.ops {
		t += r.total
	}
	return t
}

// OpStat is one opcode's aggregated cost, in the shape /v1/profilez
// serves and acebench -profile-ops prints.
type OpStat struct {
	Op      string  `json:"op"`
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MeanMs  float64 `json:"mean_ms"`
	MaxMs   float64 `json:"max_ms"`
	// Buckets are per-bucket (non-cumulative) counts aligned with
	// BucketBoundsMs in the enclosing snapshot; the last entry is the
	// overflow (+Inf) bucket.
	Buckets []uint64 `json:"buckets"`
}

// Ops returns the run's per-opcode stats sorted by total time,
// costliest first.
func (p *RunProfile) Ops() []OpStat {
	return opStats(p.ops)
}

// Kernels returns the run's fused-kernel stats sorted by total time,
// costliest first.
func (p *RunProfile) Kernels() []OpStat {
	return opStats(p.kernels)
}

func opStats(tab map[string]*opRec) []OpStat {
	out := make([]OpStat, 0, len(tab))
	for op, r := range tab {
		st := OpStat{
			Op:      op,
			Count:   r.count,
			TotalMs: float64(r.total) / float64(time.Millisecond),
			MaxMs:   float64(r.max) / float64(time.Millisecond),
			Buckets: append([]uint64(nil), r.buckets...),
		}
		if r.count > 0 {
			st.MeanMs = st.TotalMs / float64(r.count)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalMs > out[j].TotalMs })
	return out
}

// ProfileSnapshot is the /v1/profilez reply: per-opcode aggregates over
// every profiled run since boot, the bucket bounds the histograms use,
// and the most recent run's level/scale trajectory.
type ProfileSnapshot struct {
	Runs uint64 `json:"runs"`
	// EvalMsTotal is wall-clock evaluation time summed over runs, as
	// measured around the whole VM execution; OpMsTotal sums the
	// per-instruction measurements. The two bracket each other — their
	// gap is loop overhead — and the paper-figure reproduction checks
	// they agree within 10%.
	EvalMsTotal    float64   `json:"eval_ms_total"`
	OpMsTotal      float64   `json:"op_ms_total"`
	BucketBoundsMs []float64 `json:"bucket_bounds_ms"`
	Ops            []OpStat  `json:"ops"`
	// Kernels breaks key-switch instruction time down into the fused
	// kernels executed beneath them (poly.decomp_modup, poly.hw_modmuladd,
	// poly.mod_down). Kernel time is a refinement of time already counted
	// in Ops/OpMsTotal, never additional to it, so KernelMsTotal must not
	// be summed with OpMsTotal. FusedOps maps each fused opcode to the
	// primitive opcodes it subsumes, keeping comparisons against
	// pre-fusion profiles interpretable.
	Kernels        []OpStat            `json:"kernels,omitempty"`
	KernelMsTotal  float64             `json:"kernel_ms_total"`
	FusedOps       map[string][]string `json:"fused_ops,omitempty"`
	LastTrajectory []TrajPoint         `json:"last_trajectory,omitempty"`
}

// Op finds one opcode's aggregated stats by name.
func (s ProfileSnapshot) Op(name string) (OpStat, bool) {
	for _, st := range s.Ops {
		if st.Op == name {
			return st, true
		}
	}
	return OpStat{}, false
}

// OpSecPerRun returns one opcode's measured seconds per run (0 when the
// op never executed or no run completed) — the unit the cost model's
// per-run predictions are compared against.
func (s ProfileSnapshot) OpSecPerRun(name string) float64 {
	st, ok := s.Op(name)
	if !ok || s.Runs == 0 {
		return 0
	}
	return st.TotalMs / 1e3 / float64(s.Runs)
}

// Aggregate folds RunProfiles from concurrent workers into the
// process-wide per-opcode table. All methods are safe for concurrent
// use.
type Aggregate struct {
	mu       sync.Mutex
	ops      map[string]*opRec
	kernels  map[string]*opRec
	runs     uint64
	eval     time.Duration
	lastTraj []TrajPoint
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		ops:     make(map[string]*opRec, 16),
		kernels: make(map[string]*opRec, 4),
	}
}

// Merge folds one finished run into the aggregate. eval is the
// wall-clock duration of the whole execution, measured by the caller
// around the VM run.
func (a *Aggregate) Merge(p *RunProfile, eval time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	a.eval += eval
	mergeOpRecs(a.ops, p.ops)
	mergeOpRecs(a.kernels, p.kernels)
	if len(p.Trajectory) > 0 {
		a.lastTraj = append(a.lastTraj[:0], p.Trajectory...)
	}
}

func mergeOpRecs(dstTab, srcTab map[string]*opRec) {
	for op, r := range srcTab {
		dst := dstTab[op]
		if dst == nil {
			dst = newOpRec()
			dstTab[op] = dst
		}
		dst.count += r.count
		dst.total += r.total
		if r.max > dst.max {
			dst.max = r.max
		}
		for i := range r.buckets {
			dst.buckets[i] += r.buckets[i]
		}
	}
}

// Snapshot assembles the current profile, ops sorted costliest first.
func (a *Aggregate) Snapshot() ProfileSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	snap := ProfileSnapshot{
		Runs:           a.runs,
		EvalMsTotal:    float64(a.eval) / float64(time.Millisecond),
		BucketBoundsMs: make([]float64, len(DurationBuckets)),
		Ops:            make([]OpStat, 0, len(a.ops)),
		LastTrajectory: append([]TrajPoint(nil), a.lastTraj...),
	}
	for i, b := range DurationBuckets {
		snap.BucketBoundsMs[i] = b * 1e3
	}
	snap.Ops = opStats(a.ops)
	for _, st := range snap.Ops {
		snap.OpMsTotal += st.TotalMs
	}
	if len(a.kernels) > 0 {
		snap.Kernels = opStats(a.kernels)
		for _, st := range snap.Kernels {
			snap.KernelMsTotal += st.TotalMs
		}
		snap.FusedOps = FusedConstituents
	}
	return snap
}

// Histogram is a fixed-bucket concurrent duration histogram for
// request-level timings (queue wait, end-to-end latency). Observe is
// lock-free; Snapshot is approximate under concurrent writes, which is
// fine for a metrics page.
type Histogram struct {
	bounds  []float64 // seconds, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// NewHistogram builds a histogram over the given second-denominated
// bounds (nil uses DurationBuckets); an implicit +Inf bucket is added.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DurationBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if s <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// HistSnapshot is a histogram's point-in-time state: per-bucket
// (non-cumulative) counts aligned with Bounds plus overflow, the total
// observation count and the sum in seconds.
type HistSnapshot struct {
	Bounds     []float64
	Counts     []uint64
	Count      uint64
	SumSeconds float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:     h.bounds,
		Counts:     make([]uint64, len(h.buckets)),
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNs.Load()) / 1e9,
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
