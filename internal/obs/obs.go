// Package obs is the serving stack's observability layer: request trace
// ids carried through context, per-instruction FHE profiling, and
// Prometheus text-format metric exposition. It is deliberately
// stdlib-only (crypto/rand, log/slog, sync/atomic) and sits below every
// other serving package — vm, serve, fheclient and the cmd binaries all
// import it, it imports none of them.
//
// The three concerns mirror the paper's evaluation methodology (§6):
// Figures 5–7 rest on knowing where time goes per operation and how the
// ciphertext level/scale evolve through a program, and a production
// daemon needs the same visibility on live traffic. A trace id minted
// per request (or accepted from the X-ACE-Trace header) makes one
// request's life greppable across the queue, the VM and the durability
// journal; a RunProfile records each instruction's cost and the CKKS
// level/scale trajectory; Aggregate folds runs into per-opcode
// histograms behind GET /v1/profilez and GET /metrics.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

type traceKey struct{}

// NewTraceID mints a 32-hex-char (16 random bytes) trace id. It never
// fails: if the system randomness source is unavailable the id falls
// back to a fixed sentinel, which keeps requests serviceable (trace ids
// gate nothing security-relevant).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied trace id is safe to
// adopt: 8..64 characters of lowercase hex, so it greps cleanly and
// cannot smuggle log-injection payloads or unbounded strings into
// structured logs.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WithTrace attaches a trace id to the context; the id travels with the
// request through the queue into vm.Machine.RunCtx and the checkpoint
// sink.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the context's trace id, or "" when none is attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Logger returns base (or slog.Default when base is nil) with the
// context's trace id attached as the "trace" attribute, so every event
// logged for one request carries the same greppable id.
func Logger(ctx context.Context, base *slog.Logger) *slog.Logger {
	if base == nil {
		base = slog.Default()
	}
	if id := TraceID(ctx); id != "" {
		return base.With(slog.String("trace", id))
	}
	return base
}
