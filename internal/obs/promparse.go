package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// A strict Prometheus text-format parser. It exists so the repo's own
// /metrics page is tested against the exposition grammar rather than
// "looks about right": every sample must belong to a family declared
// with # TYPE before its first sample, metric and label names must
// match the grammar, values must parse as floats, and histogram series
// must carry cumulative, le-labelled buckets with consistent _sum and
// _count. make obs-smoke and the serve tests run every scrape through
// it.

// ParsedSample is one accepted sample line.
type ParsedSample struct {
	Name   string // full name as written, including _bucket/_sum/_count
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one accepted metric family.
type ParsedFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []ParsedSample
}

// ParseExposition reads a complete text-format page, enforcing the
// grammar strictly. It returns families keyed by name.
func ParseExposition(r io.Reader) (map[string]*ParsedFamily, error) {
	families := map[string]*ParsedFamily{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, families); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(families, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE declaration", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("family %q has # HELP but no # TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func parseComment(line string, families map[string]*ParsedFamily) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		f := families[name]
		if f == nil {
			f = &ParsedFamily{Name: name}
			families[name] = f
		}
		if f.Type != "" {
			return fmt.Errorf("family %q declared # TYPE twice", name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("family %q has samples before its # TYPE", name)
		}
		f.Type = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP line", name)
		}
		f := families[name]
		if f == nil {
			f = &ParsedFamily{Name: name}
			families[name] = f
		}
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	}
	return nil
}

// familyFor resolves a sample name to its declared family, stripping
// the histogram/summary suffixes for lookup.
func familyFor(families map[string]*ParsedFamily, name string) *ParsedFamily {
	if f, ok := families[name]; ok && f.Type != "" {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return f
		}
	}
	return nil
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line

	// Metric name runs up to '{', ' ' or tab.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]

	if rest[0] == '{' {
		closing := labelSetEnd(rest)
		if closing < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:closing], s.Labels); err != nil {
			return s, err
		}
		rest = rest[closing+1:]
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], have %d fields", line, len(fields))
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return s, nil
}

// labelSetEnd finds the index of the '}' closing the label set opened
// at rest[0], skipping braces inside quoted label values.
func labelSetEnd(rest string) int {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func parseLabels(body string, into map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label pair %q missing '='", body[i:])
		}
		name := strings.TrimSpace(body[i : i+eq])
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return fmt.Errorf("label %q value unterminated", name)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return fmt.Errorf("label %q value ends in backslash", name)
				}
				switch body[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("label %q has bad escape \\%c", name, body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[name]; dup {
			return fmt.Errorf("label %q appears twice", name)
		}
		into[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				return fmt.Errorf("expected ',' between labels, found %q", body[i:])
			}
			i++
		}
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// checkHistogram verifies each label-set series of a histogram family
// has monotone non-decreasing buckets ending at le="+Inf", and that
// _count equals the +Inf bucket.
func checkHistogram(f *ParsedFamily) error {
	type series struct {
		lastCum  float64
		infSeen  bool
		infValue float64
		count    float64
		hasCount bool
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		parts := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sortStrings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range f.Samples {
		k := key(s.Labels)
		sr := byKey[k]
		if sr == nil {
			sr = &series{}
			byKey[k] = sr
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram %q bucket without le label", f.Name)
			}
			if s.Value+1e-9 < sr.lastCum {
				return fmt.Errorf("histogram %q has non-monotone buckets (series %q)", f.Name, k)
			}
			sr.lastCum = s.Value
			if s.Labels["le"] == "+Inf" {
				sr.infSeen = true
				sr.infValue = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			sr.count = s.Value
			sr.hasCount = true
		}
	}
	for k, sr := range byKey {
		if !sr.infSeen {
			return fmt.Errorf("histogram %q series %q has no le=\"+Inf\" bucket", f.Name, k)
		}
		if sr.hasCount && sr.count != sr.infValue {
			return fmt.Errorf("histogram %q series %q: _count %g != +Inf bucket %g", f.Name, k, sr.count, sr.infValue)
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
