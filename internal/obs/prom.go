package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), implemented
// against the exposition-format grammar with no dependency. The daemon
// builds an Exposition per scrape from its live counters; families are
// emitted in insertion order with `# HELP`/`# TYPE` headers, label
// values escaped, and metric names validated against the
// [a-zA-Z_:][a-zA-Z0-9_:]* rule so a strict scraper accepts the page.

// MetricType is the exposition family type.
type MetricType string

const (
	Counter    MetricType = "counter"
	Gauge      MetricType = "gauge"
	HistogramT MetricType = "histogram"
)

// Label is one name="value" pair. Order is preserved as given.
type Label struct{ Name, Value string }

// sample is one exposition line: the family name plus an optional
// suffix (_bucket, _sum, _count for histograms), its labels and value.
type sample struct {
	suffix string
	labels []Label
	value  float64
}

// Family is one metric family: a name, help text, a type and its
// samples.
type Family struct {
	name    string
	help    string
	typ     MetricType
	samples []sample
}

// Add appends a plain sample (counter or gauge).
func (f *Family) Add(value float64, labels ...Label) {
	f.samples = append(f.samples, sample{labels: labels, value: value})
}

// AddRaw appends a sample under an explicit full sample name — the
// family name plus an optional histogram suffix (_bucket, _sum,
// _count). It exists for federation: re-emitting a parsed page keeps
// each sample's exact name, so histograms survive the round trip
// without being re-bucketed.
func (f *Family) AddRaw(fullName string, value float64, labels ...Label) {
	f.samples = append(f.samples, sample{
		suffix: strings.TrimPrefix(fullName, f.name),
		labels: labels,
		value:  value,
	})
}

// AddHistogram appends a full histogram series under the given labels:
// cumulative _bucket samples for each bound plus +Inf, then _sum and
// _count. counts are per-bucket (non-cumulative) tallies aligned with
// bounds; the final entry is the overflow bucket.
func (f *Family) AddHistogram(labels []Label, bounds []float64, counts []uint64, sumSeconds float64) {
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		f.samples = append(f.samples, sample{
			suffix: "_bucket",
			labels: append(append([]Label(nil), labels...), Label{"le", le}),
			value:  float64(cum),
		})
	}
	f.samples = append(f.samples,
		sample{suffix: "_sum", labels: labels, value: sumSeconds},
		sample{suffix: "_count", labels: labels, value: float64(cum)})
}

// Exposition is one scrape's worth of metric families, written in the
// order they were declared.
type Exposition struct {
	families []*Family
	byName   map[string]*Family
}

// NewExposition returns an empty exposition page.
func NewExposition() *Exposition {
	return &Exposition{byName: map[string]*Family{}}
}

// Family declares (or retrieves) a metric family. Declaring the same
// name twice returns the first family; mismatched redeclarations are a
// programming error surfaced at Write time via the name check.
func (e *Exposition) Family(name, help string, typ MetricType) *Family {
	if f, ok := e.byName[name]; ok {
		return f
	}
	f := &Family{name: name, help: help, typ: typ}
	e.byName[name] = f
	e.families = append(e.families, f)
	return f
}

// validMetricName enforces the exposition grammar's metric-name rule.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName enforces the label-name rule ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue escapes backslash, double quote and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders the exposition page. Every family and label name is
// validated; the first violation aborts with an error so a malformed
// metric can never reach a scraper half-written (callers render to a
// buffer first).
func (e *Exposition) Write(w io.Writer) error {
	for _, f := range e.families {
		if !validMetricName(f.name) {
			return fmt.Errorf("obs: invalid metric name %q", f.name)
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, s sample) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.suffix)
	if len(s.labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.labels {
			if !validLabelName(l.Name) {
				return fmt.Errorf("obs: invalid label name %q on %s", l.Name, name)
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
