package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDMintAndValidate(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two minted trace ids collided: %s", a)
	}
	if !ValidTraceID(a) || !ValidTraceID(b) {
		t.Fatalf("minted ids fail validation: %s %s", a, b)
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("a", 65), // length bounds
		"ABCDEF1234", "ghijklmn", "1234-5678", // alphabet
		"deadbeef\n12345678", `deadbeef"1234567`, // log injection
	} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true", bad)
		}
	}
	if !ValidTraceID("deadbeef") || !ValidTraceID(strings.Repeat("0", 64)) {
		t.Error("boundary-length hex ids rejected")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context carries a trace id")
	}
	id := NewTraceID()
	ctx = WithTrace(ctx, id)
	if got := TraceID(ctx); got != id {
		t.Fatalf("TraceID = %q, want %q", got, id)
	}
}

func TestLoggerAttachesTrace(t *testing.T) {
	var buf bytes.Buffer
	base := slog.New(slog.NewJSONHandler(&buf, nil))
	id := NewTraceID()
	Logger(WithTrace(context.Background(), id), base).Info("event")
	if !strings.Contains(buf.String(), `"trace":"`+id+`"`) {
		t.Fatalf("log line missing trace attr: %s", buf.String())
	}
	buf.Reset()
	Logger(context.Background(), base).Info("event")
	if strings.Contains(buf.String(), `"trace"`) {
		t.Fatalf("traceless context produced a trace attr: %s", buf.String())
	}
}

func TestRunProfileRecordsOps(t *testing.T) {
	p := NewRunProfile()
	p.Record("ckks.mul", 3*time.Millisecond)
	p.Record("ckks.mul", 5*time.Millisecond)
	p.Record("ckks.rescale", time.Millisecond)
	p.Step(0, "ckks.mul", 3, 1e10)
	p.Step(1, "ckks.rescale", 2, 1e9)

	if got := p.Steps(); got != 3 {
		t.Fatalf("Steps = %d, want 3", got)
	}
	if got, want := p.Total(), 9*time.Millisecond; got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	ops := p.Ops()
	if len(ops) != 2 || ops[0].Op != "ckks.mul" {
		t.Fatalf("Ops not sorted costliest first: %+v", ops)
	}
	if ops[0].Count != 2 || ops[0].MaxMs != 5 || ops[0].TotalMs != 8 {
		t.Fatalf("mul stats wrong: %+v", ops[0])
	}
	if len(p.Trajectory) != 2 || p.Trajectory[1].Level != 2 {
		t.Fatalf("trajectory wrong: %+v", p.Trajectory)
	}
}

func TestRunProfileTrajectoryBounded(t *testing.T) {
	p := NewRunProfile()
	for i := 0; i < maxTrajPoints+10; i++ {
		p.Step(i, "ckks.add", 1, 1)
	}
	if len(p.Trajectory) != maxTrajPoints || p.TrajDropped != 10 {
		t.Fatalf("trajectory len %d dropped %d", len(p.Trajectory), p.TrajDropped)
	}
}

func TestAggregateMergeConcurrent(t *testing.T) {
	a := NewAggregate()
	const workers, runsPer = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsPer; i++ {
				p := NewRunProfile()
				p.Record("ckks.mul", 2*time.Millisecond)
				p.Record("ckks.add", time.Millisecond)
				p.Step(0, "ckks.mul", 3, 1e10)
				a.Merge(p, 4*time.Millisecond)
			}
		}()
	}
	wg.Wait()

	snap := a.Snapshot()
	if snap.Runs != workers*runsPer {
		t.Fatalf("runs = %d, want %d", snap.Runs, workers*runsPer)
	}
	if snap.EvalMsTotal != float64(workers*runsPer*4) {
		t.Fatalf("eval total = %g", snap.EvalMsTotal)
	}
	if snap.OpMsTotal != float64(workers*runsPer*3) {
		t.Fatalf("op total = %g", snap.OpMsTotal)
	}
	if len(snap.Ops) != 2 || snap.Ops[0].Op != "ckks.mul" || snap.Ops[0].Count != workers*runsPer {
		t.Fatalf("ops = %+v", snap.Ops)
	}
	if len(snap.LastTrajectory) != 1 {
		t.Fatalf("last trajectory = %+v", snap.LastTrajectory)
	}
	// Bucket counts must sum to the op count.
	var inBuckets uint64
	for _, c := range snap.Ops[0].Buckets {
		inBuckets += c
	}
	if inBuckets != snap.Ops[0].Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, snap.Ops[0].Count)
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(nil)
	durations := []time.Duration{50 * time.Microsecond, 2 * time.Millisecond, 30 * time.Second, 5 * time.Minute}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durations)) {
		t.Fatalf("count = %d", s.Count)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	// 5 minutes exceeds the last bound, so the overflow bucket holds it.
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	wantSum := 0.0
	for _, d := range durations {
		wantSum += d.Seconds()
	}
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}
