package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestExpositionRoundTrip(t *testing.T) {
	e := NewExposition()
	e.Family("ace_requests_total", "Requests served.", Counter).Add(42)
	g := e.Family("ace_queue_depth", "Jobs waiting.", Gauge)
	g.Add(3, Label{"pool", "default"})
	g.Add(0, Label{"pool", "bulk"})
	e.Family("ace_weird_values", "Edge-case floats.", Gauge).Add(math.Inf(1))
	e.Family("ace_escapes", "Label escaping.", Gauge).
		Add(1, Label{"path", "a\\b\"c\nd"})

	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)
	hs := h.Snapshot()
	e.Family("ace_eval_seconds", "Eval wall time.", HistogramT).
		AddHistogram(nil, hs.Bounds, hs.Counts, hs.SumSeconds)

	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	page := buf.String()

	fams, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatalf("strict parser rejected our own page: %v\n%s", err, page)
	}
	if fams["ace_requests_total"].Samples[0].Value != 42 {
		t.Fatalf("counter value lost: %+v", fams["ace_requests_total"])
	}
	if got := len(fams["ace_queue_depth"].Samples); got != 2 {
		t.Fatalf("gauge label series = %d, want 2", got)
	}
	if v := fams["ace_escapes"].Samples[0].Labels["path"]; v != "a\\b\"c\nd" {
		t.Fatalf("escape round-trip: %q", v)
	}
	hist := fams["ace_eval_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	// 3 bounds + +Inf bucket + _sum + _count = 6 samples.
	if len(hist.Samples) != 6 {
		t.Fatalf("histogram samples = %d, want 6", len(hist.Samples))
	}
}

func TestExpositionFamilyDedup(t *testing.T) {
	e := NewExposition()
	a := e.Family("ace_x", "help", Counter)
	b := e.Family("ace_x", "other", Gauge)
	if a != b {
		t.Fatal("re-declared family not deduplicated")
	}
	a.Add(1)
	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "# TYPE ace_x") != 1 {
		t.Fatalf("TYPE emitted more than once:\n%s", buf.String())
	}
}

func TestExpositionRejectsBadNames(t *testing.T) {
	e := NewExposition()
	e.Family("0bad", "starts with digit", Counter).Add(1)
	if err := e.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("bad metric name accepted")
	}

	e = NewExposition()
	e.Family("ace_ok", "h", Counter).Add(1, Label{"bad-label", "v"})
	if err := e.Write(&bytes.Buffer{}); err == nil {
		t.Fatal("bad label name accepted")
	}
}

func TestParserRejectsMalformedPages(t *testing.T) {
	cases := []struct {
		name string
		page string
	}{
		{"sample without TYPE", "ace_x 1\n"},
		{"HELP only", "# HELP ace_x halp\nace_x 1\n"},
		{"bad metric name", "# TYPE 0x counter\n0x 1\n"},
		{"bad value", "# TYPE ace_x counter\nace_x notanumber\n"},
		{"duplicate TYPE", "# TYPE ace_x counter\n# TYPE ace_x counter\nace_x 1\n"},
		{"TYPE after sample", "# TYPE ace_x counter\nace_y 1\n# TYPE ace_y counter\n"},
		{"unknown type", "# TYPE ace_x widget\nace_x 1\n"},
		{"unterminated labels", "# TYPE ace_x counter\nace_x{a=\"b\" 1\n"},
		{"unquoted label value", "# TYPE ace_x counter\nace_x{a=b} 1\n"},
		{"duplicate label", "# TYPE ace_x counter\nace_x{a=\"1\",a=\"2\"} 1\n"},
		{"bad label name", "# TYPE ace_x counter\nace_x{0a=\"b\"} 1\n"},
		{"missing value", "# TYPE ace_x counter\nace_x\n"},
		{"non-monotone histogram", "# TYPE ace_h histogram\n" +
			"ace_h_bucket{le=\"0.1\"} 5\nace_h_bucket{le=\"+Inf\"} 3\nace_h_count 3\nace_h_sum 1\n"},
		{"histogram without +Inf", "# TYPE ace_h histogram\n" +
			"ace_h_bucket{le=\"0.1\"} 5\nace_h_count 5\nace_h_sum 1\n"},
		{"count mismatch", "# TYPE ace_h histogram\n" +
			"ace_h_bucket{le=\"+Inf\"} 5\nace_h_count 4\nace_h_sum 1\n"},
		{"bucket without le", "# TYPE ace_h histogram\nace_h_bucket 5\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition(strings.NewReader(tc.page)); err == nil {
			t.Errorf("%s: parser accepted malformed page:\n%s", tc.name, tc.page)
		}
	}
}

func TestParserAcceptsValidEdgeCases(t *testing.T) {
	page := "# HELP ace_x with help\n# TYPE ace_x gauge\n" +
		"ace_x{v=\"brace } inside\"} +Inf\n" +
		"ace_x{v=\"esc \\\" \\\\ \\n\"} -Inf\n" +
		"ace_x NaN\n" +
		"ace_x 1.5e-3 1700000000000\n" + // with timestamp
		"\n# just a comment\n"
	fams, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatalf("valid page rejected: %v", err)
	}
	samples := fams["ace_x"].Samples
	if len(samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(samples))
	}
	if samples[0].Labels["v"] != "brace } inside" {
		t.Fatalf("brace-in-value label mangled: %q", samples[0].Labels["v"])
	}
	if !math.IsInf(samples[0].Value, 1) || !math.IsInf(samples[1].Value, -1) || !math.IsNaN(samples[2].Value) {
		t.Fatalf("special floats mishandled: %+v", samples)
	}
}
