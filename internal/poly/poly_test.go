package poly

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMonomialEval(t *testing.T) {
	p := NewMonomial(1, 2, 3) // 1 + 2x + 3x^2
	cases := map[float64]float64{0: 1, 1: 6, -1: 2, 2: 17}
	for x, want := range cases {
		if got := p.Eval(x); math.Abs(got-want) > 1e-12 {
			t.Errorf("p(%g) = %g, want %g", x, got, want)
		}
	}
	if p.Degree() != 2 {
		t.Errorf("degree = %d", p.Degree())
	}
}

func TestDepth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 31: 5}
	for deg, want := range cases {
		coeffs := make([]float64, deg+1)
		coeffs[deg] = 1
		p := NewMonomial(coeffs...)
		if got := p.Depth(); got != want {
			t.Errorf("Depth(deg %d) = %d, want %d", deg, got, want)
		}
	}
}

func TestChebyshevInterpolateExp(t *testing.T) {
	p := Exp(-1, 1, 10)
	if e := MaxError(p, math.Exp, -1, 1, 1000); e > 1e-9 {
		t.Fatalf("degree-10 Chebyshev exp error %g too large", e)
	}
	// Wider interval, same degree: error grows but stays reasonable.
	p2 := Exp(-4, 4, 15)
	if e := MaxError(p2, math.Exp, -4, 4, 1000); e > 1e-4 {
		t.Fatalf("degree-15 exp on [-4,4] error %g too large", e)
	}
}

func TestChebyshevClenshawMatchesMonomial(t *testing.T) {
	p := ChebyshevInterpolate(math.Sin, -1, 1, 9)
	m, err := p.ToMonomial()
	if err != nil {
		t.Fatal(err)
	}
	for x := -1.0; x <= 1.0; x += 0.05 {
		if math.Abs(p.Eval(x)-m.Eval(x)) > 1e-10 {
			t.Fatalf("Chebyshev and monomial eval disagree at %g", x)
		}
	}
}

func TestToMonomialRequiresUnitInterval(t *testing.T) {
	p := ChebyshevInterpolate(math.Exp, 0, 2, 5)
	if _, err := p.ToMonomial(); err == nil {
		t.Fatal("expected error for non-unit interval")
	}
}

func TestComposeAffine(t *testing.T) {
	p := NewMonomial(0, 0, 1) // x^2
	q := p.ComposeAffine(2, 1)
	// q(x) = (2x+1)^2 = 4x^2 + 4x + 1
	want := []float64{1, 4, 4}
	for i, w := range want {
		if math.Abs(q.Coeffs[i]-w) > 1e-12 {
			t.Fatalf("coeff %d = %g, want %g", i, q.Coeffs[i], w)
		}
	}
}

func TestRemezSqrt(t *testing.T) {
	f := math.Sqrt
	p, eps, err := Remez(f, 0.25, 1, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	actual := MaxError(p, f, 0.25, 1, 2000)
	if actual > 5e-5 {
		t.Fatalf("Remez sqrt error %g too large", actual)
	}
	// Minimax should beat plain interpolation at the same degree, or at
	// least not be dramatically worse, and the reported eps should match
	// the measured error.
	if actual > 2*eps+1e-12 {
		t.Fatalf("measured error %g inconsistent with levelled error %g", actual, eps)
	}
}

func TestRemezBeatsInterpolationOnRunge(t *testing.T) {
	f := func(x float64) float64 { return 1 / (1 + 25*x*x) }
	interp := ChebyshevInterpolate(f, -1, 1, 14)
	minimax, _, err := Remez(f, -1, 1, 14, 40)
	if err != nil {
		t.Fatal(err)
	}
	ei := MaxError(interp, f, -1, 1, 4000)
	em := MaxError(minimax, f, -1, 1, 4000)
	if em > ei*1.05 {
		t.Fatalf("minimax error %g worse than interpolation %g", em, ei)
	}
}

func TestFNProperties(t *testing.T) {
	for n := 1; n <= 4; n++ {
		f := FN(n)
		if !f.IsOdd() {
			t.Fatalf("f_%d is not odd", n)
		}
		if math.Abs(f.Eval(1)-1) > 1e-9 || math.Abs(f.Eval(-1)+1) > 1e-9 {
			t.Fatalf("f_%d does not fix ±1: f(1)=%g", n, f.Eval(1))
		}
		// Contraction towards sign: |f(x)| >= |x| on (0,1).
		for x := 0.05; x < 1; x += 0.05 {
			v := f.Eval(x)
			if v < x-1e-9 || v > 1+1e-9 {
				t.Fatalf("f_%d(%g) = %g escapes [x, 1]", n, x, v)
			}
		}
	}
}

func TestMinimaxSignStage(t *testing.T) {
	st, err := MinimaxSignStage(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsOdd() {
		t.Fatal("sign stage must be odd")
	}
	lo, hi := rangeOn(st, 0.3, 1)
	if lo <= 0.3 {
		t.Fatalf("stage does not expand the gap: lo=%g", lo)
	}
	if hi > 1.7 {
		t.Fatalf("stage overshoots badly: hi=%g", hi)
	}
}

func TestSignComposite(t *testing.T) {
	eps := 1.0 / 64
	stages, err := SignComposite(eps, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := signCompositeError(stages, eps); got > math.Exp2(-10) {
		t.Fatalf("composite error %g exceeds 2^-10", got)
	}
	// Symmetry: composition is odd.
	for x := eps; x <= 1; x += 0.07 {
		if math.Abs(EvalComposite(stages, x)+EvalComposite(stages, -x)) > 1e-9 {
			t.Fatalf("composition is not odd at %g", x)
		}
	}
	// Depth must be sane (not hundreds of levels).
	if d := CompositeDepth(stages); d < 4 || d > 40 {
		t.Fatalf("composite depth %d out of plausible band", d)
	}
	if ReLUFromSign(stages) != CompositeDepth(stages)+1 {
		t.Fatal("ReLU depth must be sign depth + 1")
	}
}

func TestSignCompositeRejectsBadEps(t *testing.T) {
	if _, err := SignComposite(0, 10); err == nil {
		t.Fatal("expected error for eps=0")
	}
	if _, err := SignComposite(1.5, 10); err == nil {
		t.Fatal("expected error for eps>1")
	}
}

func TestFunctionCatalog(t *testing.T) {
	if _, err := Log(-1, 1, 5); err == nil {
		t.Fatal("log on negative domain must error")
	}
	lg, err := Log(0.5, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxError(lg, math.Log, 0.5, 2, 1000); e > 1e-6 {
		t.Fatalf("log error %g", e)
	}
	sg := Sigmoid(-6, 6, 15)
	f := func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
	if e := MaxError(sg, f, -6, 6, 1000); e > 1e-3 {
		t.Fatalf("sigmoid error %g", e)
	}
	th := Tanh(-4, 4, 23)
	if e := MaxError(th, math.Tanh, -4, 4, 1000); e > 1e-3 {
		t.Fatalf("tanh error %g", e)
	}
	gl := GELU(-4, 4, 16)
	gf := func(x float64) float64 { return 0.5 * x * (1 + math.Erf(x/math.Sqrt2)) }
	if e := MaxError(gl, gf, -4, 4, 1000); e > 1e-2 {
		t.Fatalf("gelu error %g", e)
	}
	if _, err := InvSqrt(0, 1, 5); err == nil {
		t.Fatal("inv-sqrt domain must be positive")
	}
}

func TestClenshawProperty(t *testing.T) {
	// Property: Chebyshev evaluation is linear in the coefficients.
	f := func(c0, c1, c2 float64) bool {
		p := &Polynomial{Coeffs: []float64{c0, c1, c2}, Basis: Chebyshev, A: -1, B: 1}
		q0 := &Polynomial{Coeffs: []float64{c0, 0, 0}, Basis: Chebyshev, A: -1, B: 1}
		q1 := &Polynomial{Coeffs: []float64{0, c1, 0}, Basis: Chebyshev, A: -1, B: 1}
		q2 := &Polynomial{Coeffs: []float64{0, 0, c2}, Basis: Chebyshev, A: -1, B: 1}
		for _, x := range []float64{-0.9, -0.3, 0, 0.4, 0.8} {
			sum := q0.Eval(x) + q1.Eval(x) + q2.Eval(x)
			if math.Abs(p.Eval(x)-sum) > 1e-9*(1+math.Abs(sum)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a, b, c int8) bool {
		return f(float64(a)/16, float64(b)/16, float64(c)/16)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
